// Command coalsmoke is the commit-coalescing smoke gate
// (`make smoke-coalesce`, DESIGN.md §14): for each engine it starts an
// in-process txkvserver with per-shard commit coalescing on, the
// durable commit log in group-fsync mode, and the admin surface bound;
// subscribes a change-feed tailer to every shard from sequence 1
// BEFORE any load; then drives pipelined load over real TCP — an
// open-loop update-heavy run through the coalesced path and a
// closed-loop transfer run for the balance-conservation oracle. It
// fails on:
//
//   - a violated over-the-wire oracle (key population, balance
//     conservation),
//   - a lost or duplicated reply (completed ops != offered ops, or any
//     shed reply in a run structurally below every admission limit),
//   - a coalesced path that never engaged (no batches flushed),
//   - a feed subscriber that misses an event, sees one twice or out of
//     commit order (non-contiguous sequences, or a replay of the feed
//     that disagrees with the store's final state),
//   - a subscriber still stalled 10s after the server drained, and
//   - a /metrics page without a positive batch-size histogram.
//
// Exit status 0 means every engine passed.
package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
	"swisstm/internal/txkvwire"
	"swisstm/internal/wal"
)

const (
	smokeKeys = 512
	opsOpen   = 1200
	opsClosed = 600
)

func main() {
	failures := 0
	for _, kind := range []string{"swisstm", "tl2", "tinystm", "rstm"} {
		if err := run(kind); err != nil {
			fmt.Fprintf(os.Stderr, "coalsmoke: %s: %v\n", kind, err)
			failures++
			continue
		}
		fmt.Printf("coalsmoke: %s OK\n", kind)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "coalsmoke: %d engine(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("smoke-coalesce OK: coalesced commits, exactly-once feeds and oracles green on all engines")
}

// subResult is one shard tailer's complete observation: every event
// streamed until the server's drain closed the feed.
type subResult struct {
	shard  int
	events []txkvwire.FeedEvent
	err    error
}

func run(kind string) error {
	walDir, err := os.MkdirTemp("", "coalsmoke-"+kind+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)

	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine:        harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:          smokeKeys,
		Admin:         "127.0.0.1:0",
		WALDir:        walDir,
		WALSync:       wal.SyncGroup,
		Pipeline:      16,
		CoalesceBatch: 16,
		CoalesceWait:  200 * time.Microsecond,
	})
	if err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	drained := false
	defer func() {
		if !drained {
			srv.Close()
		}
	}()
	addr := srv.Addr().String()
	shards := txkv.ConfigForKeys(smokeKeys).Shards

	// Tail every shard's feed from sequence 1, before any load: the
	// subscribers must observe the full history.
	subc := make(chan subResult, shards)
	for sh := 0; sh < shards; sh++ {
		sub, err := txkvclient.DialSubscribe(addr, sh, 1)
		if err != nil {
			return fmt.Errorf("subscribe shard %d: %w", sh, err)
		}
		go func(sh int, sub *txkvclient.Sub) {
			defer sub.Close()
			var evs []txkvwire.FeedEvent
			for {
				batch, err := sub.Next()
				if errors.Is(err, txkvclient.ErrFeedClosed) {
					subc <- subResult{shard: sh, events: evs}
					return
				}
				if err != nil {
					subc <- subResult{shard: sh, err: err}
					return
				}
				evs = append(evs, batch...)
			}
		}(sh, sub)
	}

	// Open-loop update-heavy load through the coalesced path. This run
	// sits structurally below every admission limit (2 conns × window
	// 16 in flight vs a 256-deep shard queue, no TTL, no drain), so a
	// single shed reply is a bug, not an overload.
	open, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr: addr, Mix: txkv.UpdateHeavy, Conns: 2,
		Keys: smokeKeys, Ops: opsOpen, Rate: 6000, Seed: 1,
		Pipeline: 16, LateThreshold: time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("open-loop run: %w", err)
	}
	if open.OracleErr != nil {
		return fmt.Errorf("open-loop oracle: %w", open.OracleErr)
	}
	if open.Ops != opsOpen {
		return fmt.Errorf("lost or duplicated reply: completed %d of %d open-loop ops", open.Ops, opsOpen)
	}
	if open.ErrOps != 0 {
		return fmt.Errorf("%d shed replies in a run below every admission limit", open.ErrOps)
	}
	if open.Server.CoalesceBatches == 0 || open.Server.CoalesceItems < open.Server.CoalesceBatches {
		return fmt.Errorf("coalescing never engaged: batches=%d items=%d",
			open.Server.CoalesceBatches, open.Server.CoalesceItems)
	}

	// Closed-loop transfers arm the balance-conservation oracle over
	// the same pipelined wire, interleaving the pooled multi-key path's
	// feed publications with the coalescer's.
	closed, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr: addr, Mix: txkv.TransferMix, Conns: 2,
		Keys: smokeKeys, Ops: opsClosed, Seed: 2, Pipeline: 16,
	})
	if err != nil {
		return fmt.Errorf("transfer run: %w", err)
	}
	if closed.OracleErr != nil {
		return fmt.Errorf("transfer oracle: %w", closed.OracleErr)
	}
	if closed.Ops != opsClosed {
		return fmt.Errorf("lost or duplicated reply: completed %d of %d transfer ops", closed.Ops, opsClosed)
	}

	// The store's final state, read before drain: the feed replay must
	// reproduce it exactly.
	final, err := readStore(addr)
	if err != nil {
		return err
	}

	// The batch-size histogram is the coalescer's primary observable.
	body, err := httpGet("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		return err
	}
	if v, ok := metricValue(body, "txkv_coalesce_batch_size_count"); !ok || v <= 0 {
		return fmt.Errorf("/metrics missing a positive txkv_coalesce_batch_size_count (got %v, present=%v)", v, ok)
	}

	// Drain: remaining feed events flush to the subscribers, then each
	// stream ends with a Draining frame.
	drained = true
	if err := srv.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	timeout := time.After(10 * time.Second)
	subs := make([]subResult, 0, shards)
	for i := 0; i < shards; i++ {
		select {
		case r := <-subc:
			if r.err != nil {
				return fmt.Errorf("shard %d subscriber: %w", r.shard, r.err)
			}
			subs = append(subs, r)
		case <-timeout:
			return fmt.Errorf("stalled feed subscriber: %d of %d shards finished within 10s of drain", i, shards)
		}
	}

	// Exactly-once, in commit order: per shard the sequences must be
	// contiguous from 1, and replaying every event over the pre-filled
	// state must land exactly on the store's final state.
	state := make(map[uint64]uint64, smokeKeys)
	for k := uint64(1); k <= smokeKeys; k++ {
		state[k] = uint64(txkv.DefaultBalance)
	}
	total := 0
	for _, r := range subs {
		for i, e := range r.events {
			if e.Seq != uint64(i)+1 {
				return fmt.Errorf("shard %d: event %d has seq %d, want %d (lost, duplicated or reordered feed event)",
					r.shard, i, e.Seq, i+1)
			}
			if e.Del {
				delete(state, e.Key)
			} else {
				state[e.Key] = e.Val
			}
		}
		total += len(r.events)
	}
	if total == 0 {
		return errors.New("no feed events observed across any shard")
	}
	if len(state) != len(final) {
		return fmt.Errorf("feed replay has %d keys, store has %d", len(state), len(final))
	}
	for k, v := range final {
		if rv, ok := state[k]; !ok || rv != v {
			return fmt.Errorf("feed replay diverges from store at key %d: replay=(%d,%v) store=%d", k, rv, ok, v)
		}
	}
	return nil
}

// readStore fetches every pre-filled key's current value over a plain
// synchronous connection.
func readStore(addr string) (map[uint64]uint64, error) {
	c, err := txkvclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	final := make(map[uint64]uint64, smokeKeys)
	for k := uint64(1); k <= smokeKeys; k++ {
		v, found, err := c.Get(k)
		if err != nil {
			return nil, fmt.Errorf("final read of key %d: %w", k, err)
		}
		if found {
			final[k] = v
		}
	}
	return final, nil
}

// metricValue finds an unlabelled series by name prefix and parses its
// value.
func metricValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != name {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err == nil {
			return v, true
		}
	}
	return 0, false
}

func httpGet(url string) (string, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}
