// Command stmbench7 runs the STMBench7-style workload (paper Figure 2) on
// a chosen engine and workload mix, printing throughput and abort
// statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine  = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads = flag.Int("threads", 4, "worker threads")
		dur     = flag.Duration("dur", 2*time.Second, "measurement duration")
		mix     = flag.String("mix", "read", "workload mix: read | rw | write")
		manager = flag.String("cm", "serializer", "RSTM contention manager")
		policy  = flag.String("policy", "", "SwissTM CM policy: twophase|greedy|timid")
	)
	flag.Parse()
	ro := map[string]int{"read": 90, "rw": 60, "write": 10}[*mix]
	if ro == 0 && *mix != "write" {
		fmt.Fprintf(os.Stderr, "stmbench7: unknown mix %q\n", *mix)
		os.Exit(2)
	}

	spec := harness.EngineSpec{Kind: *engine, Manager: *manager, Policy: *policy}
	var b *bench7.Bench
	w := harness.Workload{
		Setup: func(e stm.STM) error {
			b = bench7.Setup(e, bench7.Config{ReadOnlyPct: ro})
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			b.Op(th, rng)
		},
		Check: func(e stm.STM) error { return b.Check() },
	}
	res, err := harness.MeasureThroughput(spec, w, *threads, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench7:", err)
		os.Exit(1)
	}
	fmt.Printf("engine=%s mix=%s threads=%d throughput=%.1f tx/s aborts=%d abort-rate=%.2f%% (structure verified)\n",
		spec.DisplayName(), *mix, *threads, res.Throughput(),
		res.Stats.Aborts, 100*res.Stats.AbortRate())
}
