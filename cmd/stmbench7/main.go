// Command stmbench7 runs the STMBench7-style workload (paper Figure 2) on
// a chosen engine and workload mix, printing throughput and abort
// statistics and optionally persisting structured records (DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine  = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads = flag.Int("threads", 4, "worker threads")
		dur     = flag.Duration("dur", 2*time.Second, "measurement duration")
		mix     = flag.String("mix", "read", "workload mix: read | rw | write")
		manager = flag.String("cm", "serializer", "RSTM contention manager")
		policy  = flag.String("policy", "", "SwissTM CM policy: twophase|greedy|timid")
		repeats = flag.Int("repeats", 1, "measured repeats (summary reports medians)")
		seed    = flag.Uint64("seed", 0, "deterministic mode: seeded RNGs + fixed op count (0 = off)")
		ops     = flag.Uint64("ops", 0, "per-worker op quota (overrides the seeded-mode default of 2000)")
		format  = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir  = flag.String("out", "", "directory for result files (required for csv/jsonl)")
	)
	flag.Parse()
	ro := map[string]int{"read": 90, "rw": 60, "write": 10}[*mix]
	if ro == 0 && *mix != "write" {
		fmt.Fprintf(os.Stderr, "stmbench7: unknown mix %q\n", *mix)
		os.Exit(2)
	}
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "stmbench7: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		fmt.Fprintf(os.Stderr, "stmbench7: -format %s requires -out <dir>\n", *format)
		os.Exit(2)
	}

	spec := harness.EngineSpec{Kind: *engine, Manager: *manager, Policy: *policy}
	mk := func(seed uint64) harness.Workload {
		var b *bench7.Bench
		return harness.Workload{
			Setup: func(e stm.STM) error {
				b = bench7.Setup(e, bench7.Config{ReadOnlyPct: ro})
				return nil
			},
			BindOp: func(th stm.Thread, worker int, rng *util.Rand) func() {
				return b.NewOps(th, rng).Op
			},
			Check: func(e stm.STM) error { return b.Check() },
		}
	}
	recs, err := harness.RepeatThroughput(spec, mk, harness.RunConfig{
		Experiment: "stmbench7", Workload: "stmbench7/" + *mix,
		Threads: *threads, Duration: *dur, FixedOps: *ops,
		Repeats: *repeats, Seed: *seed,
	})
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, "stmbench7", *format, recs); werr != nil {
			fmt.Fprintln(os.Stderr, "stmbench7:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench7:", err)
		os.Exit(1)
	}
	for _, a := range results.Aggregate(recs) {
		fmt.Printf("engine=%s mix=%s threads=%d repeats=%d throughput=%.1f tx/s (median) abort-rate=%.2f%% (structure verified)\n",
			a.Engine, *mix, a.Threads, a.Repeats,
			a.Throughput.Median, 100*a.AbortRate.Median)
	}
}
