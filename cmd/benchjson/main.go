// Command benchjson measures the per-operation hot-path cost (ns/op,
// allocs/op) of the core engine micro-benchmarks — rbtree lookup-heavy,
// STMBench7 read-dominated, txkv read-heavy — on every engine, and emits
// a machine-readable JSON artifact through internal/results. CI runs it
// non-gating (`make bench-json`) so the perf trajectory accumulates one
// BENCH_PR<n>.json per change; compare two artifacts (or benchstat two
// `go test -bench` runs, README § Performance) to price a PR.
//
// Measurements run single-goroutine via testing.Benchmark: the point is
// per-access overhead — the quantity the paper's §3 design choices
// minimize — not parallel scalability, which the figure experiments and
// the structured results pipeline already cover.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/rbtree"
	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/util"
)

var (
	out     = flag.String("out", "BENCH_PR3.json", "output JSON path")
	repeats = flag.Int("repeats", 5, "repeats per benchmark (median reported)")
	benchMs = flag.Int("benchms", 300, "target measurement time per repeat, milliseconds")
)

// engines is the sweep: the three word-based engines plus object-based
// RSTM (which runs the object-API workloads only — same coverage as the
// paper's figures).
var engines = []harness.EngineSpec{
	{Kind: "swisstm"},
	{Kind: "tl2"},
	{Kind: "tinystm"},
	{Kind: "rstm", Manager: "polka", Label: "RSTM"},
}

type workload struct {
	name string
	// setup builds shared state and returns the per-iteration op.
	setup func(spec harness.EngineSpec) func()
}

func workloads() []workload {
	return []workload{
		{name: "rbtree-lookup", setup: func(spec harness.EngineSpec) func() {
			e := spec.New()
			th := e.NewThread(0)
			tree := rbtree.New(th)
			rng := util.NewRand(3)
			for i := 0; i < 2048; i++ {
				k := stm.Word(rng.Intn(4096) + 1)
				th.Atomic(func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			var k stm.Word
			lookup := func(tx stm.Tx) { tree.Lookup(tx, k) }
			insert := func(tx stm.Tx) { tree.Insert(tx, k, k) }
			del := func(tx stm.Tx) { tree.Delete(tx, k) }
			return func() {
				k = stm.Word(rng.Intn(4096) + 1)
				switch c := rng.Intn(100); {
				case c < 5:
					th.Atomic(insert)
				case c < 10:
					th.Atomic(del)
				default:
					th.Atomic(lookup)
				}
			}
		}},
		{name: "bench7-read", setup: func(spec harness.EngineSpec) func() {
			cfg := bench7.Config{
				Levels: 3, Fanout: 3, CompPool: 32,
				AtomicPerComp: 10, ReadOnlyPct: 90,
			}
			e := spec.New()
			b := bench7.Setup(e, cfg)
			th := e.NewThread(1)
			rng := util.NewRand(99)
			return func() { b.Op(th, rng) }
		}},
		{name: "txkv-read", setup: func(spec harness.EngineSpec) func() {
			e := spec.New()
			th := e.NewThread(0)
			s := txkv.New(th, txkv.ConfigForKeys(4096))
			for k := 1; k <= 4096; k++ {
				kk := stm.Word(k)
				th.Atomic(func(tx stm.Tx) { s.Put(tx, kk, kk) })
			}
			zipf := util.NewZipf(4096, 0.99)
			rng := util.NewRand(977)
			var k stm.Word
			get := func(tx stm.Tx) { s.Get(tx, k) }
			return func() {
				k = stm.Word(zipf.Next(rng) + 1)
				th.Atomic(get)
			}
		}},
	}
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func main() {
	testing.Init() // registers test.* flags so benchtime is settable
	flag.Parse()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%dms", *benchMs)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var recs []results.BenchRecord
	for _, wl := range workloads() {
		for _, spec := range engines {
			op := wl.setup(spec)
			var ns, allocs, bytes []float64
			ops := 0
			for r := 0; r < *repeats; r++ {
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						op()
					}
				})
				ns = append(ns, float64(res.NsPerOp()))
				allocs = append(allocs, float64(res.AllocsPerOp()))
				bytes = append(bytes, float64(res.AllocedBytesPerOp()))
				ops = res.N
			}
			rec := results.BenchRecord{
				Name:        wl.name + "/" + spec.DisplayName(),
				Workload:    wl.name,
				Engine:      spec.DisplayName(),
				EngineKind:  spec.Kind,
				Ops:         ops,
				NsPerOp:     median(ns),
				AllocsPerOp: median(allocs),
				BytesPerOp:  median(bytes),
				Repeats:     *repeats,
			}
			recs = append(recs, rec)
			fmt.Printf("%-28s %10.1f ns/op %8.2f allocs/op\n",
				rec.Name, rec.NsPerOp, rec.AllocsPerOp)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := results.WriteBenchJSON(f, recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
