// Command benchjson measures the per-operation hot-path cost (ns/op,
// allocs/op) of the core engine micro-benchmarks — rbtree lookup-heavy,
// STMBench7 read-dominated, txkv read-heavy, the PR 4 abort tier, plus
// the PR 5 ro-fastpath tier — on every engine, and emits a
// machine-readable JSON artifact through internal/results. CI runs it non-gating (`make bench-json`) so the
// perf trajectory accumulates one BENCH_PR<n>.json per change; compare
// two artifacts with `make bench-compare` (or benchstat two
// `go test -bench` runs, README § Performance) to price a PR.
//
// The abort tier targets the quantity this repo's panic-free abort
// refactor changes (DESIGN.md §8):
//
//   - abort-forced drives stmtest.ForcedAbort — exactly one
//     deterministic commit-time abort per op — on each engine twice:
//     once normal (checked-return delivery) and once under the
//     UnwindAborts ablation (the old panic/recover delivery). The pair
//     of ns_per_abort values is the before/after price of one abort.
//   - abort-heavy is a high-contention mix over a tiny object pool
//     (every transaction writes; an injected conflicting transaction
//     lands mid-body), reporting the realistic aborts_per_op blend of
//     unwound and returned deliveries.
//
// The ro-fastpath tier prices the declared read-only mode of the v2 API
// (DESIGN.md §9): each engine runs the 100%-read txkv stream and the
// 100%-read-only STMBench7 mix twice — once through stm.AtomicRO (the
// declared fast path) and once through plain stm.Atomic (the "(plain)"
// twin) — so the artifact holds the ablation pair side by side.
//
// The obs tier prices the per-transaction telemetry (DESIGN.md §11):
// each engine runs the txkv read and update streams twice — once bare
// and once with a TxnObs armed (the "(obs)" twin), which records the
// retry-count and read/write-set-size histograms on every commit. The
// contract is 0 allocs/op with instrumentation on; the ns/op delta is
// a few ns per commit — single-digit percent on the leanest engines
// (measured numbers in DESIGN.md §11.4).
//
// The wal tier prices the durable commit log (DESIGN.md §12): each
// engine runs the zipf txkv update stream three ways — bare, with a
// "(wal-none)" twin that appends a RedoPut frame per committed put
// through the real log writer in fsync-none mode (the pure append-path
// cost: encode + ticket + buffered write, no durability wait), and a
// "(wal-group)" twin under group fsync whose rows carry the writer's
// own append/fsync latency quantiles (wal_append_p99_ns is the
// acked-write durability wait). The ≤15% target in ISSUE 8 compares
// the (wal-none) twin against the bare row.
//
// The coalesce tier prices per-shard commit coalescing at the service
// level (DESIGN.md §14): per engine, an in-process server with the
// commit log in group-fsync mode is driven by the pipelined open-loop
// load generator at a fixed offered rate, once with coalescing off and
// once with batch 32 — the "(coalesce)" twin. Its rows report
// commits_per_op and fsyncs_per_op, the amortization ratios: the
// coalesced twin folds many single-key ops into one engine commit and
// one log frame, so both drop at equal offered load.
//
// Measurements run single-goroutine via testing.Benchmark: the point is
// per-access overhead — the quantity the paper's §3 design choices
// minimize — not parallel scalability, which the figure experiments and
// the structured results pipeline already cover. The abort workloads
// inject their conflicting transactions from a second engine thread on
// the same goroutine, so conflict schedules are exact, not racy.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/obs"
	"swisstm/internal/rbtree"
	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
	"swisstm/internal/util"
	"swisstm/internal/wal"
)

var (
	out     = flag.String("out", "BENCH_PR10.json", "output JSON path")
	repeats = flag.Int("repeats", 5, "repeats per benchmark (median reported)")
	benchMs = flag.Int("benchms", 300, "target measurement time per repeat, milliseconds")
	run     = flag.String("run", "", "regexp selecting workload names (empty = all)")
)

// defaultEngines is the standard sweep: the three word-based engines
// plus object-based RSTM (which runs the object-API workloads only —
// same coverage as the paper's figures).
var defaultEngines = []harness.EngineSpec{
	{Kind: "swisstm"},
	{Kind: "tl2"},
	{Kind: "tinystm"},
	{Kind: "rstm", Manager: "polka", Label: "RSTM"},
}

// abortEngines pairs each engine with its UnwindAborts ablation twin, so
// one artifact holds the checked-return and panic-delivery costs side by
// side. Back-off is pinned to the minimum: the abort path, not the
// retry policy, is the measurand.
func abortEngines() []harness.EngineSpec {
	specs := make([]harness.EngineSpec, 0, 8)
	for _, s := range defaultEngines {
		s.NoBackoff = true
		s.BackoffUnit = 1
		checked := s
		specs = append(specs, checked)
		unwind := s
		unwind.UnwindAborts = true
		unwind.Label = s.DisplayName() + "(unwind)"
		specs = append(specs, unwind)
	}
	return specs
}

// roEngines pairs each engine with a plain-Atomic twin: the "(plain)"
// label routes the same read-only operation stream through the
// read-write machinery, so one artifact prices the declared read-only
// mode (DESIGN.md §9.3) per engine.
func roEngines() []harness.EngineSpec {
	specs := make([]harness.EngineSpec, 0, 8)
	for _, s := range defaultEngines {
		specs = append(specs, s)
		plain := s
		plain.Label = s.DisplayName() + "(plain)"
		specs = append(specs, plain)
	}
	return specs
}

// plainTwin reports whether spec is a ro-fastpath plain-Atomic twin.
func plainTwin(spec harness.EngineSpec) bool {
	return strings.HasSuffix(spec.DisplayName(), "(plain)")
}

// obsEngines pairs each engine with a telemetry-armed twin: the "(obs)"
// label makes setup wire a fresh obs.TxnObs into the engine instance,
// so one artifact prices the instrumented hot path against the bare one.
func obsEngines() []harness.EngineSpec {
	specs := make([]harness.EngineSpec, 0, 8)
	for _, s := range defaultEngines {
		specs = append(specs, s)
		armed := s
		armed.Label = s.DisplayName() + "(obs)"
		specs = append(specs, armed)
	}
	return specs
}

// obsTwin reports whether spec is a telemetry-armed obs twin.
func obsTwin(spec harness.EngineSpec) bool {
	return strings.HasSuffix(spec.DisplayName(), "(obs)")
}

// walEngines triples each engine: bare, a "(wal-none)" twin that
// appends a redo frame per committed update without waiting for
// durability, and a "(wal-group)" twin that waits out group fsync.
func walEngines() []harness.EngineSpec {
	specs := make([]harness.EngineSpec, 0, 12)
	for _, s := range defaultEngines {
		specs = append(specs, s)
		none := s
		none.Label = s.DisplayName() + "(wal-none)"
		specs = append(specs, none)
		group := s
		group.Label = s.DisplayName() + "(wal-group)"
		specs = append(specs, group)
	}
	return specs
}

// walSync maps a wal-tier twin to its sync mode; ok is false for the
// bare row.
func walSync(spec harness.EngineSpec) (wal.SyncMode, bool) {
	name := spec.DisplayName()
	switch {
	case strings.HasSuffix(name, "(wal-none)"):
		return wal.SyncNone, true
	case strings.HasSuffix(name, "(wal-group)"):
		return wal.SyncGroup, true
	}
	return 0, false
}

// walFinish, when set by a workload's setup, folds run-wide extras —
// the log writer's latency quantiles — into the finished record and
// releases the writer's temp directory. Reset before every setup; the
// tool is single-goroutine so a package variable is safe.
var walFinish func(*results.BenchRecord)

// armObs gives the spec its own TxnObs when it is an obs twin. Specs
// are value copies, so each benchmark instance gets a private one.
func armObs(spec harness.EngineSpec) harness.EngineSpec {
	if obsTwin(spec) {
		spec.TxnObs = obs.NewTxnObs()
	}
	return spec
}

// abortShape maps an engine kind to the commit-time conflict class its
// design detects (see stmtest.AbortShape).
func abortShape(kind string) stmtest.AbortShape {
	switch kind {
	case "tl2":
		return stmtest.ShapeLockAcquire
	case "rstm":
		return stmtest.ShapeObjectValidation
	default:
		return stmtest.ShapeReadValidation
	}
}

type workload struct {
	name string
	// engines overrides the default engine sweep when non-nil.
	engines []harness.EngineSpec
	// setup builds shared state and returns the per-iteration op plus a
	// snapshot function over the stats of every thread the op drives.
	setup func(spec harness.EngineSpec) (op func(), stats func() stm.Stats)
}

func workloads() []workload {
	return []workload{
		{name: "rbtree-lookup", setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
			e := spec.New()
			th := e.NewThread(0)
			tree := rbtree.New(th)
			rng := util.NewRand(3)
			for i := 0; i < 2048; i++ {
				k := stm.Word(rng.Intn(4096) + 1)
				stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			var k stm.Word
			lookup := func(tx stm.TxRO) stm.Word { v, _ := tree.Lookup(tx, k); return v }
			insert := func(tx stm.Tx) bool { return tree.Insert(tx, k, k) }
			del := func(tx stm.Tx) bool { return tree.Delete(tx, k) }
			return func() {
				k = stm.Word(rng.Intn(4096) + 1)
				switch c := rng.Intn(100); {
				case c < 5:
					stm.Atomic(th, insert)
				case c < 10:
					stm.Atomic(th, del)
				default:
					stm.AtomicRO(th, lookup)
				}
			}, th.Stats
		}},
		{name: "bench7-read", setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
			cfg := bench7.Config{
				Levels: 3, Fanout: 3, CompPool: 32,
				AtomicPerComp: 10, ReadOnlyPct: 90,
			}
			e := spec.New()
			b := bench7.Setup(e, cfg)
			th := e.NewThread(1)
			ops := b.NewOps(th, util.NewRand(99))
			return ops.Op, th.Stats
		}},
		{name: "txkv-read", setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
			e := spec.New()
			th := e.NewThread(0)
			s := txkv.New(th, txkv.ConfigForKeys(4096))
			for k := 1; k <= 4096; k++ {
				kk := stm.Word(k)
				stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, kk, kk) })
			}
			zipf := util.NewZipf(4096, 0.99)
			rng := util.NewRand(977)
			var k stm.Word
			get := func(tx stm.TxRO) stm.Word { v, _ := s.Get(tx, k); return v }
			return func() {
				k = stm.Word(zipf.Next(rng) + 1)
				stm.AtomicRO(th, get)
			}, th.Stats
		}},
		{name: "obs-txkv-read", engines: obsEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				e := armObs(spec).New()
				th := e.NewThread(0)
				s := txkv.New(th, txkv.ConfigForKeys(4096))
				for k := 1; k <= 4096; k++ {
					kk := stm.Word(k)
					stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, kk, kk) })
				}
				zipf := util.NewZipf(4096, 0.99)
				rng := util.NewRand(977)
				var k stm.Word
				get := func(tx stm.TxRO) stm.Word { v, _ := s.Get(tx, k); return v }
				return func() {
					k = stm.Word(zipf.Next(rng) + 1)
					stm.AtomicRO(th, get)
				}, th.Stats
			}},
		{name: "obs-txkv-update", engines: obsEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				e := armObs(spec).New()
				th := e.NewThread(0)
				s := txkv.New(th, txkv.ConfigForKeys(4096))
				for k := 1; k <= 4096; k++ {
					kk := stm.Word(k)
					stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, kk, kk) })
				}
				zipf := util.NewZipf(4096, 0.99)
				rng := util.NewRand(1201)
				var k, v stm.Word
				put := func(tx stm.Tx) bool { return s.Put(tx, k, v) }
				return func() {
					k = stm.Word(zipf.Next(rng) + 1)
					v++
					stm.Atomic(th, put)
				}, th.Stats
			}},
		{name: "wal-txkv-update", engines: walEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				e := spec.New()
				th := e.NewThread(0)
				s := txkv.New(th, txkv.ConfigForKeys(4096))
				for k := 1; k <= 4096; k++ {
					kk := stm.Word(k)
					stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, kk, kk) })
				}
				zipf := util.NewZipf(4096, 0.99)
				rng := util.NewRand(1201)
				var k, v stm.Word
				put := func(tx stm.Tx) bool { return s.Put(tx, k, v) }
				mode, withWal := walSync(spec)
				if !withWal {
					return func() {
						k = stm.Word(zipf.Next(rng) + 1)
						v++
						stm.Atomic(th, put)
					}, th.Stats
				}
				dir, err := os.MkdirTemp("", "benchwal-")
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(1)
				}
				m := wal.NewMetrics(obs.NewRegistry())
				w, err := wal.Open(wal.Options{Dir: dir, Sync: mode, Metrics: m})
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(1)
				}
				walFinish = func(rec *results.BenchRecord) {
					ap := m.AppendNs.Snapshot()
					fy := m.FsyncNs.Snapshot()
					rec.WalAppendP50Ns = ap.Quantile(0.50)
					rec.WalAppendP99Ns = ap.Quantile(0.99)
					rec.WalFsyncP99Ns = fy.Quantile(0.99)
					w.Close()
					os.RemoveAll(dir)
				}
				// The server's ticket discipline (DESIGN.md §12): abandon a
				// retried attempt's ticket at body re-entry, reserve as the
				// body's last step so ticket order agrees with commit order,
				// publish the redo frame after the engine commit.
				var tk wal.Ticket
				live := false
				buf := make([]byte, 0, 64)
				entry := []txkv.RedoEntry{{Op: txkv.RedoPut}}
				putTk := func(tx stm.Tx) bool {
					if live {
						w.Abandon(tk)
						live = false
					}
					ok := s.Put(tx, k, v)
					tk = w.Reserve()
					live = true
					return ok
				}
				return func() {
					k = stm.Word(zipf.Next(rng) + 1)
					v++
					stm.Atomic(th, putTk)
					live = false
					entry[0].Key, entry[0].Val = k, v
					buf, _ = txkv.AppendRedo(buf[:0], entry)
					if err := w.Publish(tk, buf); err != nil {
						fmt.Fprintln(os.Stderr, "benchjson: wal publish:", err)
						os.Exit(1)
					}
				}, th.Stats
			}},
		{name: "ro-fastpath-txkv", engines: roEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				e := spec.New()
				th := e.NewThread(0)
				s := txkv.New(th, txkv.ConfigForKeys(4096))
				for k := 1; k <= 4096; k++ {
					kk := stm.Word(k)
					stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, kk, kk) })
				}
				zipf := util.NewZipf(4096, 0.99)
				rng := util.NewRand(977)
				var k stm.Word
				getRO := func(tx stm.TxRO) stm.Word { v, _ := s.Get(tx, k); return v }
				getRW := func(tx stm.Tx) stm.Word { v, _ := s.Get(tx, k); return v }
				if plainTwin(spec) {
					return func() {
						k = stm.Word(zipf.Next(rng) + 1)
						stm.Atomic(th, getRW)
					}, th.Stats
				}
				return func() {
					k = stm.Word(zipf.Next(rng) + 1)
					stm.AtomicRO(th, getRO)
				}, th.Stats
			}},
		{name: "ro-fastpath-bench7", engines: roEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				cfg := bench7.Config{
					Levels: 3, Fanout: 3, CompPool: 32,
					AtomicPerComp: 10, ReadOnlyPct: 100,
					PlainReads: plainTwin(spec),
				}
				e := spec.New()
				b := bench7.Setup(e, cfg)
				th := e.NewThread(1)
				ops := b.NewOps(th, util.NewRand(420))
				return ops.Op, th.Stats
			}},
		{name: "abort-forced", engines: abortEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				spec.ArenaWords = 1 << 12
				spec.TableBits = 10
				fa := stmtest.NewForcedAbort(spec.New(), abortShape(spec.Kind))
				return fa.Op, fa.Stats
			}},
		{name: "abort-heavy", engines: abortEngines(),
			setup: func(spec harness.EngineSpec) (func(), func() stm.Stats) {
				spec.ArenaWords = 1 << 12
				spec.TableBits = 10
				return setupAbortHeavy(spec.New())
			}},
	}
}

// setupAbortHeavy builds the high-contention 100%-write mix: a pool of
// 8 single-field objects; the victim reads two and updates two per
// transaction while a conflicting updater transaction is injected
// mid-body from a second thread (same goroutine, exact interleaving).
// The injected writer commits before the victim resumes, so the victim
// aborts on read validation — mid-body (unwound) when the conflict
// surfaces at its second read, at commit (returned) otherwise — and the
// retry runs conflict-free. No transaction ever waits on a suspended
// lock holder, so the schedule cannot wedge under any CM.
func setupAbortHeavy(e stm.STM) (func(), func() stm.Stats) {
	thA := e.NewThread(stm.MaxThreads - 1)
	thB := e.NewThread(stm.MaxThreads - 2)
	const pool = 8
	var objs [pool]stm.Handle
	stm.AtomicVoid(thA, func(tx stm.Tx) {
		for i := range objs {
			objs[i] = tx.NewObject(1)
		}
	})
	rng := util.NewRand(0xab0a7)
	inject := false
	var r [6]int
	bump := func(tx stm.Tx) {
		tx.WriteField(objs[r[4]], 0, tx.ReadField(objs[r[4]], 0)+1)
		tx.WriteField(objs[r[5]], 0, tx.ReadField(objs[r[5]], 0)+1)
	}
	body := func(tx stm.Tx) {
		v := tx.ReadField(objs[r[0]], 0)
		if inject {
			inject = false
			stm.AtomicVoid(thB, bump)
		}
		v += tx.ReadField(objs[r[1]], 0)
		tx.WriteField(objs[r[2]], 0, v)
		tx.WriteField(objs[r[3]], 0, v+1)
	}
	stats := func() stm.Stats {
		s := thA.Stats()
		s.Add(thB.Stats())
		return s
	}
	return func() {
		for i := range r {
			r[i] = rng.Intn(pool)
		}
		inject = true
		stm.AtomicVoid(thA, body)
	}, stats
}

// coalesceTier measures the commit-coalescing amortization at the
// service level: a real server over TCP per (engine, batch) twin, the
// pipelined open-loop load at a fixed offered rate, and the engine
// commit / log fsync counter deltas divided by completed operations.
// NsPerOp carries the client-observed p50 from scheduled arrival — the
// fair per-op latency at equal offered load.
func coalesceTier(sel *regexp.Regexp, repeats int) []results.BenchRecord {
	const name = "coalesce-service"
	if !sel.MatchString(name) {
		return nil
	}
	var recs []results.BenchRecord
	for _, spec := range defaultEngines {
		for _, batch := range []int{0, 32} {
			label := spec.DisplayName()
			if batch > 0 {
				label += "(coalesce)"
			}
			var p50s, commits, fsyncs []float64
			opsRun := 0
			for r := 0; r < repeats; r++ {
				res, err := runCoalescePoint(spec, batch, uint64(r+1))
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: coalesce tier %s: %v\n", label, err)
					os.Exit(1)
				}
				p50s = append(p50s, res.P50Ns)
				commits = append(commits, float64(res.Server.Commits)/float64(res.Ops))
				fsyncs = append(fsyncs, float64(res.Server.WalFsyncs)/float64(res.Ops))
				opsRun = int(res.Ops)
			}
			rec := results.BenchRecord{
				Name:         name + "/" + label,
				Workload:     name,
				Engine:       label,
				EngineKind:   spec.Kind,
				Ops:          opsRun,
				NsPerOp:      median(p50s),
				CommitsPerOp: median(commits),
				FsyncsPerOp:  median(fsyncs),
				Repeats:      repeats,
			}
			recs = append(recs, rec)
			fmt.Printf("%-36s %10.1f ns/op %8.3f commits/op %8.3f fsyncs/op\n",
				rec.Name, rec.NsPerOp, rec.CommitsPerOp, rec.FsyncsPerOp)
		}
	}
	return recs
}

// runCoalescePoint is one coalesce-tier measurement: a fresh server
// with the durable log in group-fsync mode, driven update-heavy at the
// tier's fixed offered rate over pipelined connections.
func runCoalescePoint(spec harness.EngineSpec, batch int, seed uint64) (txkvclient.Result, error) {
	dir, err := os.MkdirTemp("", "benchcoalesce-")
	if err != nil {
		return txkvclient.Result{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine: spec, Keys: 1024,
		WALDir: dir, WALSync: wal.SyncGroup,
		Pipeline: 32, CoalesceBatch: batch, CoalesceWait: time.Millisecond,
	})
	if err != nil {
		return txkvclient.Result{}, err
	}
	defer srv.Close()
	// The point is amortization at equal offered load: a rate both
	// twins sustain, a gather window (1ms) long enough that the
	// coalesced twin's log frames arrive sparser than the group-fsync
	// cadence. The uncoalesced twin publishes one frame per write and
	// keeps the syncer saturated; the coalesced twin folds a batch into
	// one commit and one frame, so both ratios drop.
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr: srv.Addr().String(), Mix: txkv.UpdateHeavy, Conns: 4,
		Keys: 1024, Ops: 8000, Rate: 20000, Seed: seed,
		Pipeline: 32, LateThreshold: time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	if res.OracleErr != nil {
		return res, fmt.Errorf("oracle: %w", res.OracleErr)
	}
	return res, nil
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func main() {
	testing.Init() // registers test.* flags so benchtime is settable
	flag.Parse()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%dms", *benchMs)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sel, err := regexp.Compile(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad -run regexp:", err)
		os.Exit(2)
	}
	var recs []results.BenchRecord
	for _, wl := range workloads() {
		if !sel.MatchString(wl.name) {
			continue
		}
		engines := wl.engines
		if engines == nil {
			engines = defaultEngines
		}
		for _, spec := range engines {
			walFinish = nil
			op, stats := wl.setup(spec)
			var ns, allocs, bytes, aborts, roCommits, valReads []float64
			ops := 0
			for r := 0; r < *repeats; r++ {
				before := stats()
				// testing.Benchmark calls the function several times while
				// calibrating b.N; count every iteration so the stat
				// deltas divide by what actually ran, not just the final N.
				var iters uint64
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						op()
					}
					iters += uint64(b.N)
				})
				after := stats()
				ns = append(ns, float64(res.NsPerOp()))
				allocs = append(allocs, float64(res.AllocsPerOp()))
				bytes = append(bytes, float64(res.AllocedBytesPerOp()))
				aborts = append(aborts, float64(after.Aborts-before.Aborts)/float64(iters))
				roCommits = append(roCommits, float64(after.ROCommits-before.ROCommits)/float64(iters))
				valReads = append(valReads, float64(after.ValidationReads-before.ValidationReads)/float64(iters))
				ops = res.N
			}
			rec := results.BenchRecord{
				Name:                 wl.name + "/" + spec.DisplayName(),
				Workload:             wl.name,
				Engine:               spec.DisplayName(),
				EngineKind:           spec.Kind,
				Ops:                  ops,
				NsPerOp:              median(ns),
				AllocsPerOp:          median(allocs),
				BytesPerOp:           median(bytes),
				AbortsPerOp:          median(aborts),
				ROCommitsPerOp:       median(roCommits),
				ValidationReadsPerOp: median(valReads),
				Repeats:              *repeats,
			}
			if rec.AbortsPerOp > 0 {
				rec.NsPerAbort = rec.NsPerOp / rec.AbortsPerOp
			}
			if walFinish != nil {
				walFinish(&rec)
			}
			recs = append(recs, rec)
			fmt.Printf("%-36s %10.1f ns/op %8.2f allocs/op %8.3f aborts/op\n",
				rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.AbortsPerOp)
		}
	}
	recs = append(recs, coalesceTier(sel, *repeats)...)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := results.WriteBenchJSON(f, recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
