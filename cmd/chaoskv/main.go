// Command chaoskv is the network-fault/overload oracle (DESIGN.md
// §13): per engine it starts a real txkvserver with admission control
// armed, puts the seeded chaos proxy (internal/chaos) in front of it,
// and drives open-loop load through the proxy — added latency, jitter,
// mid-frame truncation, hard resets and blackholes included — while a
// direct (un-proxied) control connection watches the server. It then
// checks:
//
//  1. Zero acked-write loss: each worker writes monotone values to its
//     own key and records the last acknowledged one; after the storm
//     the server must hold a value in [last acked, last issued] for
//     every key — through every reset and truncation.
//  2. Typed errors only: every error reply that reaches a client
//     carries a valid wire Code (an untyped error is a server bug).
//  3. Overload is real and shed: the server's shed counter must move
//     (otherwise the gate tested nothing), and the p99 latency of
//     ACCEPTED requests must stay under -p99-limit — bounded
//     time-in-system for admitted work while offered load exceeds
//     capacity. Latency is measured send→reply of the successful
//     attempt, not from the scheduled arrival: the open-loop backlog
//     is unbounded by design, the server's promise is only about what
//     it accepts.
//  4. No crash, no deadlock: the server must stay up through the storm
//     and drain cleanly (bounded time) afterwards.
//
// Any violation exits non-zero.
//
// Usage:
//
//	go run ./cmd/chaoskv -engines swisstm,tl2 -seed 1 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"swisstm/internal/chaos"
	"swisstm/internal/harness"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
	"swisstm/internal/txkvwire"
)

func main() {
	var (
		engines  = flag.String("engines", "swisstm,tl2", "comma-separated engine kinds to storm")
		seed     = flag.Uint64("seed", 1, "chaos plan seed (same seed + same conn order = same faults)")
		duration = flag.Duration("duration", 2*time.Second, "storm duration per engine")
		clients  = flag.Int("clients", 16, "concurrent proxied load connections")
		rate     = flag.Float64("rate", 8000, "open-loop arrival rate, ops/sec (set above capacity)")
		keys     = flag.Int("keys", 32768, "server key population (scans of it are the convoy-forming heavy op)")
		threads  = flag.Int("threads", 1, "server engine thread pool (small, so overload is cheap to reach)")
		maxQueue = flag.Int("max-queue", 8, "server admission queue cap")
		maxWait  = flag.Duration("max-queue-wait", time.Millisecond, "server queue wait bound")
		budget   = flag.Duration("budget", 150*time.Millisecond, "client per-request deadline budget (wire TTL; also bounds the transport wait)")
		opTO     = flag.Duration("op-timeout", 250*time.Millisecond, "client per-attempt timeout (rescues blackholed connections)")
		p99Limit = flag.Duration("p99-limit", 750*time.Millisecond, "bound on the p99 latency of accepted requests (the heaviest accepted op is a batch of 8 full-store scans, so the bound is engine-speed headroom, not a queueing SLO)")
		lat      = flag.Duration("chaos-lat", 500*time.Microsecond, "proxy added latency per chunk")
		jitter   = flag.Duration("chaos-jitter", time.Millisecond, "proxy latency jitter")
		bw       = flag.Int("chaos-bw", 0, "proxy bandwidth throttle, bytes/sec (0 = unlimited)")
		pTrunc   = flag.Float64("p-trunc", 0.12, "per-connection mid-stream truncation probability")
		pRST     = flag.Float64("p-rst", 0.12, "per-connection hard-reset probability")
		pHole    = flag.Float64("p-hole", 0.06, "per-connection blackhole probability")
	)
	flag.Parse()

	plan := chaos.Plan{
		Seed: *seed, Latency: *lat, Jitter: *jitter, BandwidthBps: *bw,
		TruncateProb: *pTrunc, RSTProb: *pRST, BlackholeProb: *pHole,
		FireAfterMin: 64, FireAfterMax: 4096,
	}
	cfg := stormConfig{
		plan: plan, duration: *duration, clients: *clients, rate: *rate,
		keys: *keys, threads: *threads, maxQueue: *maxQueue, maxWait: *maxWait,
		budget: *budget, opTO: *opTO, p99Limit: *p99Limit,
	}

	failed := false
	for _, kind := range strings.Split(*engines, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		if err := stormOne(kind, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "chaoskv: %s: FAIL: %v\n", kind, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("chaoskv OK: no acked-write loss, typed sheds only, bounded accepted-p99, clean drain")
}

type stormConfig struct {
	plan     chaos.Plan
	duration time.Duration
	clients  int
	rate     float64
	keys     int
	threads  int
	maxQueue int
	maxWait  time.Duration
	budget   time.Duration
	opTO     time.Duration
	p99Limit time.Duration
}

// worker is one proxied load connection's bookkeeping.
type worker struct {
	id         int
	lastIssued uint64
	lastAcked  uint64
	accepted   []time.Duration // send→reply of successful attempts
	codes      map[txkvwire.Code]uint64
	untyped    uint64 // error replies without a valid code — must stay 0
	transport  uint64 // attempts lost to the network (resets, timeouts, torn frames)
}

func stormOne(kind string, cfg stormConfig) error {
	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine:       harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:         cfg.keys,
		Threads:      cfg.threads,
		MaxConns:     2*cfg.clients + 8, // headroom for the control conn and redial churn
		MaxQueue:     cfg.maxQueue,
		MaxQueueWait: cfg.maxWait,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Second,
	})
	if err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer srv.Close()

	proxy, err := chaos.New("127.0.0.1:0", srv.Addr().String(), cfg.plan)
	if err != nil {
		return fmt.Errorf("start proxy: %w", err)
	}
	defer proxy.Close()
	fmt.Printf("chaoskv: %s: server=%s proxy=%s plan: %s\n", kind, srv.Addr(), proxy.Addr(), cfg.plan)

	// Direct (un-proxied) control connection: counter baselines now,
	// acked-write verification after the storm.
	// Retries on the control path outlast the residual queue: for a
	// short while after the workers stop, batches they abandoned are
	// still occupying the engine, so even direct verification reads can
	// be shed. That is correct server behavior — the reader just tries
	// again.
	ctl, err := txkvclient.DialRetryOptions(srv.Addr().String(), 5*time.Second, txkvclient.Options{
		Timeout: 2 * time.Second, MaxRetries: 100, BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("dial control: %w", err)
	}
	defer ctl.Close()
	stats0, err := ctl.Stats()
	if err != nil {
		return fmt.Errorf("baseline stats: %w", err)
	}

	// Open-loop arrival process: tokens at cfg.rate for cfg.duration.
	// The buffered channel holds the whole backlog so the generator
	// never blocks; workers drain what the proxied path can carry and
	// the rest is abandoned at stop (reported, not an error — offered
	// load exceeding capacity is the point).
	total := uint64(cfg.rate * cfg.duration.Seconds())
	tokens := make(chan struct{}, total)
	stop := make(chan struct{})
	go func() {
		interval := float64(time.Second) / cfg.rate
		start := time.Now()
		for i := uint64(0); i < total; i++ {
			sched := start.Add(time.Duration(float64(i) * interval))
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			tokens <- struct{}{}
		}
		close(stop)
	}()

	workers := make([]*worker, cfg.clients)
	var wg sync.WaitGroup
	for g := 0; g < cfg.clients; g++ {
		w := &worker{id: g, codes: map[txkvwire.Code]uint64{}}
		workers[g] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(w, proxy.Addr().String(), cfg, tokens, stop)
		}()
	}
	wg.Wait()

	// The server must still be alive.
	select {
	case <-srv.Done():
		return fmt.Errorf("server accept loop died during the storm: %v", srv.Err())
	default:
	}

	// Fold the verdicts.
	var issued, ackedOps, untyped, transport uint64
	var lats []time.Duration
	codes := map[txkvwire.Code]uint64{}
	for _, w := range workers {
		issued += w.lastIssued
		ackedOps += w.lastAcked
		untyped += w.untyped
		transport += w.transport
		lats = append(lats, w.accepted...)
		for c, n := range w.codes {
			codes[c] += n
		}
	}
	if untyped > 0 {
		return fmt.Errorf("%d error replies carried no valid code", untyped)
	}
	if ackedOps == 0 {
		return fmt.Errorf("no write was ever acknowledged; the storm tested nothing (lower -rate or raise -duration)")
	}

	// Acked-write oracle over the direct connection, crashkv-style:
	// monotone per-key values make survival a range check.
	for _, w := range workers {
		if w.lastAcked == 0 {
			continue
		}
		v, found, err := ctl.Get(workerKey(w.id))
		if err != nil {
			return fmt.Errorf("worker %d: verification read: %w", w.id, err)
		}
		if !found {
			return fmt.Errorf("worker %d: acked writes up to %d but key is gone — ACKED WRITE LOST", w.id, w.lastAcked)
		}
		if v < w.lastAcked || v > w.lastIssued {
			return fmt.Errorf("worker %d: value %d outside [last acked %d, last issued %d] — ACKED WRITE LOST",
				w.id, v, w.lastAcked, w.lastIssued)
		}
	}

	stats1, err := ctl.Stats()
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}
	sheds := stats1.Sheds - stats0.Sheds
	deadlines := stats1.DeadlineExceeded - stats0.DeadlineExceeded
	connRej := stats1.ConnsRejected - stats0.ConnsRejected
	if sheds == 0 {
		return fmt.Errorf("server shed nothing — overload never engaged, the gate tested nothing (raise -rate or shrink -max-queue)")
	}

	// Bounded time-in-system for accepted work.
	if len(lats) == 0 {
		return fmt.Errorf("no request was ever accepted")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[(len(lats)*99+99)/100-1] // nearest-rank
	if p99 > cfg.p99Limit {
		return fmt.Errorf("accepted-request p99 %v exceeds %v — admission control is not bounding time-in-system", p99, cfg.p99Limit)
	}

	// No deadlock: drain must complete in bounded time.
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()
	select {
	case err := <-drained:
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server drain hung — deadlock")
	}

	ps := proxy.Stats()
	fmt.Printf("chaoskv: %s: issued=%d acked=%d accepted=%d p99=%v sheds=%d deadline=%d connrej=%d transport=%d codes=%v faults{trunc=%d rst=%d hole=%d}/%d conns\n",
		kind, issued, ackedOps, len(lats), p99.Round(time.Microsecond),
		sheds, deadlines, connRej, transport, fmtCodes(codes),
		ps.Truncates, ps.RSTs, ps.Blackholes, ps.Conns)
	return nil
}

func workerKey(id int) uint64 { return uint64(100_000 + id) }

// runWorker drains arrival tokens through one proxied connection until
// the stop signal: 60% monotone Puts to its own key, 20% Gets of a
// neighbor key, 20% full-store scans. The scans hold an engine thread
// for whole milliseconds, so arrivals behind them pile into the
// admission queue — that convoy is what makes the shed counters move
// with a deliberately small thread pool. Fail-fast client (no built-in
// retry) so every attempt
// is observed and timed individually; transport failures re-dial
// through the proxy and move on — a mutation is never blindly
// re-issued, the [acked, issued] range check absorbs the uncertainty.
func runWorker(w *worker, proxyAddr string, cfg stormConfig, tokens <-chan struct{}, stop <-chan struct{}) {
	opts := txkvclient.Options{Timeout: cfg.opTO}
	cl, err := txkvclient.DialOptions(proxyAddr, opts)
	if err != nil {
		return
	}
	defer func() { cl.Close() }()

	key := workerKey(w.id)
	var v uint64
	for n := uint64(0); ; n++ {
		select {
		case <-stop:
			return
		case <-tokens:
		}
		var req txkvwire.Req
		mutation := false
		switch {
		case n%10 < 6:
			mutation = true
			v++
			w.lastIssued = v
			req = txkvwire.Req{Op: txkvwire.OpPut, Key: key, Val: v, TTL: cfg.budget}
		case n%10 < 8:
			req = txkvwire.Req{Op: txkvwire.OpGet, Key: workerKey(int(n) % cfg.clients), TTL: cfg.budget}
		default:
			// A batch of full-store scans occupies an engine thread for
			// several milliseconds on every engine — long enough that
			// requests queued behind it overrun the queue-wait bound.
			sub := make([]txkvwire.Req, 8)
			for i := range sub {
				sub[i] = txkvwire.Req{Op: txkvwire.OpSum, Shard: -1}
			}
			req = txkvwire.Req{Op: txkvwire.OpBatch, Sub: sub, TTL: cfg.budget}
		}
		t0 := time.Now()
		reply, err := cl.Do(req)
		if err != nil {
			w.transport++
			cl.Close()
			if cl, err = txkvclient.DialOptions(proxyAddr, opts); err != nil {
				return // proxy itself is gone; the storm is over
			}
			continue
		}
		if reply.Err != "" {
			if reply.Code == txkvwire.CodeNone {
				w.untyped++
			}
			w.codes[reply.Code]++
			continue
		}
		w.accepted = append(w.accepted, time.Since(t0))
		if mutation {
			w.lastAcked = v
		}
	}
}

func fmtCodes(codes map[txkvwire.Code]uint64) string {
	if len(codes) == 0 {
		return "{}"
	}
	keys := make([]txkvwire.Code, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, c := range keys {
		parts[i] = fmt.Sprintf("%s:%d", c, codes[c])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
