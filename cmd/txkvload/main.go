// Command txkvload drives YCSB-style workload mixes against a txkv
// network server over real TCP connections and persists latency-under-
// load measurements in the results schema (DESIGN.md §5, §10): client-
// observed p50/p99/p999, the server's per-request phase timing means
// (parse/queue/txn/commit/reply), and — in open-loop mode — offered vs
// achieved arrival rate plus the late-request count.
//
// Two ways to point it at a server:
//
//   - -launch starts an in-process server per (engine, point) on an
//     ephemeral loopback port — still real TCP end to end — which is
//     what `make smoke-server` and the experiment grid use, and gives
//     every repeat a freshly pre-filled store.
//   - -addr drives an externally started cmd/txkvserver.
//
// Every run arms the over-the-wire correctness oracles (key population
// intact; balance conserved for mixes without blind updates); a failed
// oracle exits non-zero after persisting the evidence.
//
// Usage:
//
//	txkvload -launch -engines swisstm,tl2 -mixes transfer -conns 1,4 -ops 4000 -seed 1
//	txkvload -launch -engines swisstm -mixes read-heavy -conns 4 -rate 5000 -ops 2000
//	txkvload -addr 127.0.0.1:7070 -engines swisstm -mixes update-heavy -conns 8 -ops 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
	"swisstm/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", "", "address of an already-running txkvserver (mutually exclusive with -launch)")
		launch   = flag.Bool("launch", false, "launch an in-process server per engine on an ephemeral loopback port")
		engines  = flag.String("engines", "swisstm,tinystm,rstm,tl2", "comma-separated engine kinds (launch mode); label for -addr mode")
		manager  = flag.String("cm", "polka", "RSTM contention manager (launch mode)")
		mixes    = flag.String("mixes", "read-heavy,update-heavy,transfer", "comma-separated workload mixes")
		conns    = flag.String("conns", "2", "comma-separated connection-count sweep")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in ops/sec (0 = closed loop)")
		ops      = flag.Uint64("ops", 2000, "total operations per measured point")
		keys     = flag.Int("keys", 1024, "key population (server pre-filled with keys 1..n)")
		zipf     = flag.Float64("zipf", 0.99, "zipfian key-popularity skew θ in (0,1); 0 = uniform")
		seed     = flag.Uint64("seed", 1, "base seed for the per-connection RNGs (0 = time-derived)")
		late     = flag.Duration("late", time.Millisecond, "open-loop late-dispatch threshold")
		repeats  = flag.Int("repeats", 1, "measured repeats per point")
		format   = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir   = flag.String("out", "", "directory for result files (default txkvload_runs for csv/jsonl)")
		name     = flag.String("name", "txkvload", "result file base name")
		walDir   = flag.String("wal", "", "launch mode: durable commit log directory for the launched server (a fresh subdirectory per point; off when empty)")
		fsync    = flag.String("fsync", "group", "launch mode: commit log durability, always | group | none")
		timeout  = flag.Duration("timeout", 0, "per-request client deadline (0 = none)")
		retries  = flag.Int("retries", 0, "per-request retry budget for retryable shed replies and transport failures (0 = fail fast)")
		retryMut = flag.Bool("retry-mutations", false, "opt mutations into transport-failure retry (at-least-once)")
		budget   = flag.Duration("budget", 0, "per-request deadline budget propagated to the server as the wire TTL (0 = none)")
		pipeline = flag.Int("pipeline", 0, "per-connection in-flight window; >1 switches the client to pipelined mode (sheds counted, not retried)")
		coBatch  = flag.Int("coalesce-batch", 0, "launch mode: per-shard commit coalescing batch size for the launched server (0 = off)")
		coWait   = flag.Duration("coalesce-wait", 200*time.Microsecond, "launch mode: commit coalescing max batch wait for the launched server")
	)
	flag.Parse()
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "txkvload: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if (*addr == "") == !*launch {
		fmt.Fprintln(os.Stderr, "txkvload: give exactly one of -addr or -launch")
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		*outDir = "txkvload_runs"
		fmt.Fprintf(os.Stderr, "txkvload: no -out given; writing %s files to %s/\n", *format, *outDir)
	}
	if *zipf < 0 || *zipf >= 1 {
		fmt.Fprintf(os.Stderr, "txkvload: -zipf %v out of range (want 0 for uniform, or θ in (0,1))\n", *zipf)
		os.Exit(2)
	}
	syncMode, err := wal.ParseSyncMode(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvload:", err)
		os.Exit(2)
	}
	if *walDir != "" && !*launch {
		fmt.Fprintln(os.Stderr, "txkvload: -wal only applies to -launch mode (point -addr at a server started with -wal instead)")
		os.Exit(2)
	}
	if *coBatch > 0 && !*launch {
		fmt.Fprintln(os.Stderr, "txkvload: -coalesce-batch only applies to -launch mode (start the server with -coalesce-batch instead)")
		os.Exit(2)
	}

	var specs []harness.EngineSpec
	for _, kind := range splitList(*engines) {
		switch kind {
		case "swisstm", "tl2", "tinystm", "rstm":
			specs = append(specs, harness.EngineSpec{Kind: kind, Manager: *manager})
		default:
			fmt.Fprintf(os.Stderr, "txkvload: unknown engine %q\n", kind)
			os.Exit(2)
		}
	}
	if *addr != "" && len(specs) != 1 {
		fmt.Fprintln(os.Stderr, "txkvload: -addr mode labels records with exactly one -engines entry")
		os.Exit(2)
	}
	var mixList []txkv.Mix
	for _, mname := range splitList(*mixes) {
		m, ok := txkv.MixByName(mname)
		if !ok {
			fmt.Fprintf(os.Stderr, "txkvload: unknown mix %q\n", mname)
			os.Exit(2)
		}
		mixList = append(mixList, m)
	}
	var sweep []int
	for _, part := range splitList(*conns) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "txkvload: bad connection count %q\n", part)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}

	dist := "uniform"
	if *zipf > 0 {
		dist = "zipf"
	}
	mode := "closed"
	if *rate > 0 {
		mode = "open"
	}

	var all []results.Record
	oracleFailures := 0
	runErr := func() error {
		for _, spec := range specs {
			for _, mix := range mixList {
				wl := fmt.Sprintf("txkvsrv/%s-%s-%s", mix.Name, dist, mode)
				for _, nc := range sweep {
					for rep := 0; rep < *repeats; rep++ {
						target := *addr
						var srv *txkvserver.Server
						if *launch {
							scfg := txkvserver.Config{
								Engine: spec, Keys: *keys,
								CoalesceBatch: *coBatch, CoalesceWait: *coWait,
							}
							if *walDir != "" {
								// A fresh log directory per point: replaying a
								// previous point's log would skew the oracles.
								scfg.WALDir = filepath.Join(*walDir,
									fmt.Sprintf("%s-%s-c%d-r%d", spec.Kind, mix.Name, nc, rep))
								scfg.WALSync = syncMode
							}
							var err error
							srv, err = txkvserver.Start("127.0.0.1:0", scfg)
							if err != nil {
								return fmt.Errorf("%s: launch %s: %w", wl, spec.Kind, err)
							}
							target = srv.Addr().String()
						}
						runSeed := *seed
						if runSeed != 0 {
							runSeed = harness.DeriveSeed(runSeed, spec.Kind+"/"+wl, nc, rep)
						}
						res, err := txkvclient.Run(txkvclient.LoadConfig{
							Addr: target, Mix: mix, Conns: nc,
							Keys: *keys, Zipf: *zipf, Seed: runSeed,
							Ops: *ops, Rate: *rate, LateThreshold: *late,
							Timeout: *timeout, Retries: *retries,
							RetryMutations: *retryMut, Budget: *budget,
							Pipeline: *pipeline,
						})
						if srv != nil {
							srv.Close()
						}
						if err != nil {
							return fmt.Errorf("%s: %w", wl, err)
						}
						rec := res.Record("txkvload", wl, spec.DisplayName(), spec.Kind, nc, rep, runSeed)
						rec.Pipeline, rec.CoalesceBatch = *pipeline, *coBatch
						all = append(all, rec)
						if res.OracleErr != nil {
							oracleFailures++
							fmt.Fprintf(os.Stderr, "txkvload: ORACLE FAILED %s %s conns=%d rep=%d: %v\n",
								spec.Kind, wl, nc, rep, res.OracleErr)
						}
					}
				}
			}
		}
		return nil
	}()
	// Persist whatever was measured even when something failed, so the
	// run directory holds the evidence.
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, *name, *format, all); werr != nil {
			fmt.Fprintln(os.Stderr, "txkvload:", werr)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "txkvload:", runErr)
		os.Exit(1)
	}
	for _, r := range all {
		fmt.Printf("workload=%s engine=%s conns=%d rep=%d ops=%d tput=%.0f/s p50=%.0fns p99=%.0fns p999=%.0fns srv_p50=%dns srv_p99=%dns srv_p999=%dns aborts=%d(vr=%d vc=%d lk=%d) offered=%.0f achieved=%.0f late=%d checked=%v\n",
			r.Workload, r.Engine, r.Threads, r.Repeat, r.Ops, r.Throughput,
			r.LatP50Ns, r.LatP99Ns, r.LatP999Ns,
			r.SrvP50Ns, r.SrvP99Ns, r.SrvP999Ns,
			r.Aborts, r.AbortsValidRead, r.AbortsValidCommit,
			r.AbortsWW+r.AbortsLocked+r.LockAcquireFail,
			r.OfferedRate, r.AchievedRate, r.LateOps, r.CheckedOK)
		if r.WalFrames > 0 || r.Retries > 0 || r.Reconnects > 0 {
			fmt.Printf("  wal: frames=%d bytes=%d mean_wal=%.0fns recovered=%d retries=%d reconnects=%d\n",
				r.WalFrames, r.WalBytes, r.PhaseWalNs, r.WalRecoveredFrames, r.Retries, r.Reconnects)
		}
		if r.CoalesceBatches > 0 {
			fmt.Printf("  coalesce: batches=%d items=%d commits/op=%.3f fsyncs/op=%.3f feed_events=%d\n",
				r.CoalesceBatches, r.CoalesceItems,
				float64(r.Commits)/float64(r.Ops), float64(r.WalFsyncs)/float64(r.Ops), r.FeedEvents)
		}
	}
	if oracleFailures > 0 {
		fmt.Fprintf(os.Stderr, "txkvload: %d point(s) failed their oracles\n", oracleFailures)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
