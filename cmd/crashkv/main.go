// Command crashkv is the kill/recover durability oracle (DESIGN.md
// §12): per engine it launches a real txkvserver process with the
// commit log on, applies concurrent load over TCP while recording the
// last acknowledged write per client, SIGKILLs the server mid-load,
// and then checks three things:
//
//  1. The log's clean prefix replays without checksum errors
//     (an independent in-process replay, not the server's).
//  2. Every acknowledged write survived: for each client key,
//     replayed value is between the last acked and last issued write
//     (a later unacked write may legitimately have reached the log).
//  3. A restarted server on the same directory serves exactly the
//     replayed state (per-key values, key count, total balance) —
//     and then shuts down cleanly on SIGTERM.
//
// Any violation exits non-zero. This is the crash half of the
// durability contract; the graceful half (drain loses nothing) is
// pinned by the txkvserver tests.
//
// Usage:
//
//	go build -o bin/txkvserver ./cmd/txkvserver
//	go run ./cmd/crashkv -server bin/txkvserver -engines swisstm,tl2,tinystm,rstm
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/wal"
)

func main() {
	var (
		serverBin = flag.String("server", "bin/txkvserver", "path to a txkvserver binary (a real process, so SIGKILL is a real crash)")
		engines   = flag.String("engines", "swisstm,tl2,tinystm,rstm", "comma-separated engine kinds to crash")
		fsync     = flag.String("fsync", "group", "commit log durability mode under test")
		keys      = flag.Int("keys", 256, "server key population")
		clients   = flag.Int("clients", 4, "concurrent load connections")
		warm      = flag.Duration("warm", 200*time.Millisecond, "load duration before the kill")
	)
	flag.Parse()
	if _, err := os.Stat(*serverBin); err != nil {
		fmt.Fprintf(os.Stderr, "crashkv: server binary: %v (build it: go build -o bin/txkvserver ./cmd/txkvserver)\n", err)
		os.Exit(2)
	}
	failed := false
	for _, kind := range strings.Split(*engines, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		if err := crashOne(*serverBin, kind, *fsync, *keys, *clients, *warm); err != nil {
			fmt.Fprintf(os.Stderr, "crashkv: %s: FAIL: %v\n", kind, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("crashkv OK: every acked write survived SIGKILL on every engine")
}

// server is one launched txkvserver process.
type server struct {
	cmd  *exec.Cmd
	addr string
}

// launch starts the server binary with the commit log in dir and waits
// for its portfile to announce the bound address.
func launch(bin, kind, fsync string, keys int, dir string) (*server, error) {
	pf := filepath.Join(dir, "..", filepath.Base(dir)+".port")
	os.Remove(pf)
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-engine", kind, "-keys", fmt.Sprint(keys),
		"-wal", dir, "-fsync", fsync, "-portfile", pf)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(pf)
		if err == nil && len(b) > 0 {
			return &server{cmd: cmd, addr: strings.TrimSpace(string(b))}, nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("server never wrote %s", pf)
		}
		if cmd.ProcessState != nil {
			return nil, fmt.Errorf("server exited before listening")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func crashOne(bin, kind, fsync string, keys, clients int, warm time.Duration) error {
	base, err := os.MkdirTemp("", "crashkv-"+kind+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)
	dir := filepath.Join(base, "wal")

	srv, err := launch(bin, kind, fsync, keys, dir)
	if err != nil {
		return fmt.Errorf("launch: %w", err)
	}
	defer func() {
		srv.cmd.Process.Kill()
		srv.cmd.Wait()
	}()

	// Load: each client owns one fresh key and writes v=1,2,3,...
	// recording the last acknowledged and last issued value. Monotone
	// per-key values make "did my acked write survive" a ≤ check.
	lastAcked := make([]uint64, clients)
	lastIssued := make([]uint64, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := txkvclient.DialRetry(srv.addr, 5*time.Second)
			if err != nil {
				return // the kill can race the dial; the ack check below decides
			}
			defer cl.Close()
			key := uint64(10_000 + g)
			for v := uint64(1); ; v++ {
				lastIssued[g] = v
				if _, err := cl.Put(key, v); err != nil {
					return // server is gone
				}
				lastAcked[g] = v
			}
		}()
	}
	time.Sleep(warm)
	if err := srv.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		return fmt.Errorf("kill: %w", err)
	}
	srv.cmd.Wait()
	wg.Wait()

	var acked uint64
	for _, v := range lastAcked {
		acked += v
	}
	if acked == 0 {
		return fmt.Errorf("no write was acknowledged before the kill; nothing tested (raise -warm)")
	}

	// Independent replay of the log's clean prefix. A checksum or
	// divergence error here is a durability bug, not a torn tail —
	// Recover stops cleanly at those.
	spec := harness.EngineSpec{Kind: kind, Manager: "polka"}
	th := spec.New().NewThread(0)
	store, info, err := txkv.ReplayWAL(wal.OSFS{}, dir, th)
	if err != nil || store == nil {
		return fmt.Errorf("replaying log after crash: %w (store nil: %v)", err, store == nil)
	}
	var replayLen, replaySum uint64
	replayVals := make([]uint64, clients)
	replayFound := make([]bool, clients)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		replayLen = uint64(store.Len(tx))
		replaySum = uint64(store.SumAll(tx))
		for g := 0; g < clients; g++ {
			v, ok := store.Get(tx, stm.Word(10_000+g))
			replayVals[g], replayFound[g] = uint64(v), ok
		}
	})
	for g := 0; g < clients; g++ {
		if lastAcked[g] == 0 {
			continue
		}
		if !replayFound[g] {
			return fmt.Errorf("client %d: acked writes up to %d but key missing from replayed log", g, lastAcked[g])
		}
		if replayVals[g] < lastAcked[g] || replayVals[g] > lastIssued[g] {
			return fmt.Errorf("client %d: replayed value %d outside [last acked %d, last issued %d]",
				g, replayVals[g], lastAcked[g], lastIssued[g])
		}
	}

	// Restart on the same directory: the server must serve exactly the
	// replayed state.
	srv2, err := launch(bin, kind, fsync, keys, dir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer func() {
		srv2.cmd.Process.Kill()
		srv2.cmd.Wait()
	}()
	cl, err := txkvclient.DialRetry(srv2.addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dial restarted server: %w", err)
	}
	defer cl.Close()
	if n, err := cl.Len(); err != nil || n != replayLen {
		return fmt.Errorf("restarted Len = %d (err %v), replay says %d", n, err, replayLen)
	}
	if sum, err := cl.Sum(-1); err != nil || sum != replaySum {
		return fmt.Errorf("restarted Sum = %d (err %v), replay says %d", sum, err, replaySum)
	}
	for g := 0; g < clients; g++ {
		if lastAcked[g] == 0 {
			continue
		}
		v, found, err := cl.Get(uint64(10_000 + g))
		if err != nil || !found || v != replayVals[g] {
			return fmt.Errorf("client %d: restarted server has %d/%v (err %v), replay says %d",
				g, v, found, err, replayVals[g])
		}
	}

	// Graceful exit: SIGTERM must drain and exit zero.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	if err := srv2.cmd.Wait(); err != nil {
		return fmt.Errorf("restarted server did not exit cleanly on SIGTERM: %w", err)
	}

	fmt.Printf("crashkv: %s: acked=%d frames=%d truncated=%v — all acked writes recovered\n",
		kind, acked, info.Frames, info.Truncated)
	return nil
}
