// Command leetm runs the Lee-TM circuit-routing benchmark (paper
// Figures 4 and 8) on a chosen engine and board, printing the routing
// time and verifying all laid tracks.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine    = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads   = flag.Int("threads", 4, "worker threads")
		boardName = flag.String("board", "memory", "board: memory | main")
		irregular = flag.Int("irregular", 0, "percentage of transactions updating the shared object Oc (Figure 8)")
	)
	flag.Parse()
	var board leetm.Board
	switch *boardName {
	case "memory":
		board = leetm.MemoryBoard()
	case "main":
		board = leetm.MainBoard()
	default:
		fmt.Fprintf(os.Stderr, "leetm: unknown board %q\n", *boardName)
		os.Exit(2)
	}
	board.IrregularPct = *irregular

	var r *leetm.Router
	spec := harness.EngineSpec{Kind: *engine, Manager: "polka"}
	res, err := harness.MeasureWork(spec,
		func(e stm.STM) error { r = leetm.Setup(e, board); return nil },
		func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
			r.Work(e, th, worker, t, rng)
		},
		func(e stm.STM) error { return r.Check() },
		*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leetm:", err)
		os.Exit(1)
	}
	fmt.Printf("board=%s engine=%s threads=%d time=%v routed=%d/%d aborts=%d (tracks verified)\n",
		board.Name, spec.DisplayName(), *threads, res.Duration.Round(time.Millisecond),
		r.Routed.Load(), len(board.Nets), res.Stats.Aborts)
}
