// Command leetm runs the Lee-TM circuit-routing benchmark (paper
// Figures 4 and 8) on a chosen engine and board, printing the routing
// time, verifying all laid tracks, and optionally persisting structured
// records (DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine    = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads   = flag.Int("threads", 4, "worker threads")
		boardName = flag.String("board", "memory", "board: memory | main")
		irregular = flag.Int("irregular", 0, "percentage of transactions updating the shared object Oc (Figure 8)")
		repeats   = flag.Int("repeats", 1, "measured repeats (summary reports medians)")
		seed      = flag.Uint64("seed", 0, "seed for the worker RNG streams (0 = legacy fixed seeds)")
		format    = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir    = flag.String("out", "", "directory for result files (required for csv/jsonl)")
	)
	flag.Parse()
	var board leetm.Board
	switch *boardName {
	case "memory":
		board = leetm.MemoryBoard()
	case "main":
		board = leetm.MainBoard()
	default:
		fmt.Fprintf(os.Stderr, "leetm: unknown board %q\n", *boardName)
		os.Exit(2)
	}
	board.IrregularPct = *irregular
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "leetm: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		fmt.Fprintf(os.Stderr, "leetm: -format %s requires -out <dir>\n", *format)
		os.Exit(2)
	}

	spec := harness.EngineSpec{Kind: *engine, Manager: "polka"}
	var routed []uint64 // per-repeat routed-net counts, in repeat order
	mk := func(seed uint64) harness.WorkSpec {
		var r *leetm.Router
		return harness.WorkSpec{
			Setup: func(e stm.STM) error { r = leetm.Setup(e, board); return nil },
			Work: func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
				r.Work(e, th, worker, t, rng)
			},
			Check: func(e stm.STM) error {
				routed = append(routed, r.Routed.Load())
				return r.Check()
			},
		}
	}
	recs, err := harness.RepeatWork(spec, mk, harness.RunConfig{
		Experiment: "leetm", Workload: "leetm/" + board.Name,
		Threads: *threads, Repeats: *repeats, Seed: *seed,
	})
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, "leetm-"+board.Name, *format, recs); werr != nil {
			fmt.Fprintln(os.Stderr, "leetm:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leetm:", err)
		os.Exit(1)
	}
	// All repeats route the same board, so the counts normally agree;
	// report the spread if they ever do not.
	minR, maxR := routed[0], routed[0]
	for _, r := range routed[1:] {
		minR, maxR = min(minR, r), max(maxR, r)
	}
	routedStr := fmt.Sprintf("%d", minR)
	if maxR != minR {
		routedStr = fmt.Sprintf("%d..%d", minR, maxR)
	}
	for _, a := range results.Aggregate(recs) {
		fmt.Printf("board=%s engine=%s threads=%d repeats=%d time=%v (median) routed=%s/%d abort-rate=%.2f%% (tracks verified)\n",
			board.Name, a.Engine, a.Threads, a.Repeats,
			time.Duration(a.Duration.Median*float64(time.Second)).Round(time.Millisecond),
			routedStr, len(board.Nets), 100*a.AbortRate.Median)
	}
}
