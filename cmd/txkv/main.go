// Command txkv runs the transactional key-value store under YCSB-style
// workload mixes (DESIGN.md §6) across engines and thread counts, and
// persists structured records (DESIGN.md §5). Every run arms the
// cross-engine correctness oracles: the total-balance invariant under
// multi-key transfers and the per-key last-write check under updates;
// a failed oracle exits non-zero after persisting the evidence.
//
// Usage:
//
//	txkv -repeats 3 -seed 1 -format csv
//	txkv -engines swisstm,tl2 -mixes transfer -threads 1,2,4,8 -dur 2s
//	txkv -zipf 0 -keys 65536 -threads 8 -repeats 5 -format jsonl -out runs/kv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/txkv"
)

func main() {
	var (
		engines = flag.String("engines", "swisstm,tinystm,rstm,tl2", "comma-separated engine kinds")
		mixes   = flag.String("mixes", "read-heavy,update-heavy,transfer", "comma-separated workload mixes: read-heavy | update-heavy | transfer | read-only")
		threads = flag.String("threads", "1,2,4", "comma-separated thread sweep")
		keys    = flag.Int("keys", 4096, "key population (store pre-filled with keys 1..n)")
		zipf    = flag.Float64("zipf", 0.99, "zipfian key-popularity skew θ in (0,1); 0 = uniform")
		dur     = flag.Duration("dur", time.Second, "measurement duration per point (unseeded mode)")
		manager = flag.String("cm", "polka", "RSTM contention manager")
		repeats = flag.Int("repeats", 1, "measured repeats per point (summaries report medians)")
		seed    = flag.Uint64("seed", 0, "deterministic mode: seeded RNGs + fixed op count (0 = off)")
		ops     = flag.Uint64("ops", 0, "per-worker op quota (overrides the seeded-mode default of 2000)")
		format  = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir  = flag.String("out", "", "directory for result files (default txkv_runs for csv/jsonl)")
	)
	flag.Parse()
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "txkv: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		*outDir = "txkv_runs"
		fmt.Fprintf(os.Stderr, "txkv: no -out given; writing %s files to %s/\n", *format, *outDir)
	}

	var specs []harness.EngineSpec
	for _, kind := range splitList(*engines) {
		switch kind {
		case "swisstm", "tl2", "tinystm", "rstm":
			specs = append(specs, harness.EngineSpec{Kind: kind, Manager: *manager})
		default:
			fmt.Fprintf(os.Stderr, "txkv: unknown engine %q\n", kind)
			os.Exit(2)
		}
	}
	if *zipf < 0 || *zipf >= 1 {
		fmt.Fprintf(os.Stderr, "txkv: -zipf %v out of range (want 0 for uniform, or θ in (0,1))\n", *zipf)
		os.Exit(2)
	}
	if *keys < 1 {
		fmt.Fprintf(os.Stderr, "txkv: -keys %d must be positive\n", *keys)
		os.Exit(2)
	}
	var mixList []txkv.Mix
	for _, name := range splitList(*mixes) {
		m, ok := txkv.MixByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "txkv: unknown mix %q\n", name)
			os.Exit(2)
		}
		if m.TransferPct > 0 && *keys <= m.TransferKeys {
			fmt.Fprintf(os.Stderr, "txkv: mix %s needs -keys above %d, have %d\n", name, m.TransferKeys, *keys)
			os.Exit(2)
		}
		mixList = append(mixList, m)
	}
	var sweep []int
	for _, part := range splitList(*threads) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "txkv: bad thread count %q\n", part)
			os.Exit(2)
		}
		sweep = append(sweep, n)
	}

	dist := "uniform"
	if *zipf > 0 {
		dist = "zipf"
	}
	var all []results.Record
	runErr := func() error {
		for _, mix := range mixList {
			mix := mix
			wl := fmt.Sprintf("txkv/%s-%s", mix.Name, dist)
			for _, spec := range specs {
				for _, tc := range sweep {
					recs, err := harness.RepeatThroughput(spec,
						func(uint64) harness.Workload {
							return txkv.NewGen(txkv.GenConfig{Mix: mix, Keys: *keys, Zipf: *zipf}).Workload()
						},
						harness.RunConfig{
							Experiment: "txkv", Workload: wl,
							Threads: tc, Duration: *dur, FixedOps: *ops,
							Repeats: *repeats, Seed: *seed,
						})
					all = append(all, recs...)
					if err != nil {
						return fmt.Errorf("%s: %w", wl, err)
					}
				}
			}
		}
		return nil
	}()
	// Persist whatever was measured even when an oracle failed, so the
	// run directory holds the evidence.
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, "txkv", *format, all); werr != nil {
			fmt.Fprintln(os.Stderr, "txkv:", werr)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "txkv:", runErr)
		os.Exit(1)
	}
	for _, a := range results.Aggregate(all) {
		fmt.Printf("workload=%s engine=%s threads=%d repeats=%d throughput=%.0f tx/s (median) abort-rate=%.2f%% checked=%v\n",
			a.Workload, a.Engine, a.Threads, a.Repeats,
			a.Throughput.Median, 100*a.AbortRate.Median, a.AllChecked)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
