// Command rbtree runs the red-black tree microbenchmark (paper Figure 5)
// on a chosen engine and prints throughput and abort statistics,
// optionally persisting structured records (DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/rbtree"
	"swisstm/internal/results"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine   = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads  = flag.Int("threads", 4, "worker threads")
		dur      = flag.Duration("dur", 2*time.Second, "measurement duration")
		keyRange = flag.Int("range", 16384, "key range")
		updates  = flag.Int("updates", 20, "update percentage")
		manager  = flag.String("cm", "polka", "RSTM contention manager")
		policy   = flag.String("policy", "", "SwissTM CM policy: twophase|greedy|timid")
		repeats  = flag.Int("repeats", 1, "measured repeats (summary reports medians)")
		seed     = flag.Uint64("seed", 0, "deterministic mode: seeded RNGs + fixed op count (0 = off)")
		ops      = flag.Uint64("ops", 0, "per-worker op quota (overrides the seeded-mode default of 2000)")
		format   = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir   = flag.String("out", "", "directory for result files (required for csv/jsonl)")
	)
	flag.Parse()
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "rbtree: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		fmt.Fprintf(os.Stderr, "rbtree: -format %s requires -out <dir>\n", *format)
		os.Exit(2)
	}
	spec := harness.EngineSpec{Kind: *engine, Manager: *manager, Policy: *policy}

	mk := func(seed uint64) harness.Workload {
		var tree *rbtree.Tree
		return harness.Workload{
			Setup: func(e stm.STM) error {
				th := e.NewThread(0)
				tree = rbtree.New(th)
				rng := util.NewRand(seed ^ 1)
				for i := 0; i < *keyRange/2; i++ {
					k := stm.Word(rng.Intn(*keyRange) + 1)
					stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, k, k) })
				}
				return nil
			},
			Op: func(th stm.Thread, worker int, rng *util.Rand) {
				k := stm.Word(rng.Intn(*keyRange) + 1)
				r := rng.Intn(100)
				switch {
				case r < *updates/2:
					stm.Atomic(th, func(tx stm.Tx) bool { return tree.Insert(tx, k, k) })
				case r < *updates:
					stm.Atomic(th, func(tx stm.Tx) bool { return tree.Delete(tx, k) })
				default:
					stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { v, _ := tree.Lookup(tx, k); return v })
				}
			},
		}
	}
	recs, err := harness.RepeatThroughput(spec, mk, harness.RunConfig{
		Experiment: "rbtree", Workload: "rbtree",
		Threads: *threads, Duration: *dur, FixedOps: *ops,
		Repeats: *repeats, Seed: *seed,
	})
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, "rbtree", *format, recs); werr != nil {
			fmt.Fprintln(os.Stderr, "rbtree:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbtree:", err)
		os.Exit(1)
	}
	for _, a := range results.Aggregate(recs) {
		fmt.Printf("engine=%s threads=%d repeats=%d ops=%.0f (median) throughput=%.0f tx/s (median) abort-rate=%.2f%%\n",
			a.Engine, a.Threads, a.Repeats, a.Ops.Median,
			a.Throughput.Median, 100*a.AbortRate.Median)
	}
}
