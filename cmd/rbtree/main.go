// Command rbtree runs the red-black tree microbenchmark (paper Figure 5)
// on a chosen engine and prints throughput and abort statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/rbtree"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine   = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm | rstm")
		threads  = flag.Int("threads", 4, "worker threads")
		dur      = flag.Duration("dur", 2*time.Second, "measurement duration")
		keyRange = flag.Int("range", 16384, "key range")
		updates  = flag.Int("updates", 20, "update percentage")
		manager  = flag.String("cm", "polka", "RSTM contention manager")
		policy   = flag.String("policy", "", "SwissTM CM policy: twophase|greedy|timid")
	)
	flag.Parse()
	spec := harness.EngineSpec{Kind: *engine, Manager: *manager, Policy: *policy}

	var tree *rbtree.Tree
	w := harness.Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			tree = rbtree.New(th)
			rng := util.NewRand(1)
			for i := 0; i < *keyRange/2; i++ {
				k := stm.Word(rng.Intn(*keyRange) + 1)
				th.Atomic(func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			k := stm.Word(rng.Intn(*keyRange) + 1)
			r := rng.Intn(100)
			switch {
			case r < *updates/2:
				th.Atomic(func(tx stm.Tx) { tree.Insert(tx, k, k) })
			case r < *updates:
				th.Atomic(func(tx stm.Tx) { tree.Delete(tx, k) })
			default:
				th.Atomic(func(tx stm.Tx) { tree.Lookup(tx, k) })
			}
		},
	}
	res, err := harness.MeasureThroughput(spec, w, *threads, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbtree:", err)
		os.Exit(1)
	}
	fmt.Printf("engine=%s threads=%d ops=%d throughput=%.0f tx/s aborts=%d abort-rate=%.2f%%\n",
		spec.DisplayName(), *threads, res.Ops, res.Throughput(),
		res.Stats.Aborts, 100*res.Stats.AbortRate())
}
