// Command grid runs the txkv server experiment grid described by a JSON
// config (scripts/experiments.json by default): for every experiment it
// sweeps connections × mixes × arrival rates across the configured
// engines, each cell an in-process server on an ephemeral loopback port
// driven over real TCP by the load generator, and merges every cell's
// per-repeat records into ONE CSV pair (grid.csv + grid.summary.csv) —
// the single artifact CI uploads.
//
// The config's shape:
//
//	{
//	  "keys": 1024, "zipf": 0.99, "seed": 1, "repeats": 1, "late_ms": 1,
//	  "engines": ["swisstm", "tl2", "tinystm", "rstm"],
//	  "experiments": [
//	    {"name": "closed-sweep", "mixes": ["transfer"], "conns": [1, 4],
//	     "rates": [0], "ops": 2000}
//	  ]
//	}
//
// A rate of 0 means closed loop; any positive rate is an open-loop cell
// at that fixed arrival rate in ops/sec.
//
// Usage:
//
//	grid                                # scripts/experiments.json → grid_runs/
//	grid -config my.json -out /tmp/g    # custom config and output dir
//	grid -ops 300                       # override every cell's op count (smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
)

type gridConfig struct {
	Keys        int     `json:"keys"`
	Zipf        float64 `json:"zipf"`
	Seed        uint64  `json:"seed"`
	Repeats     int     `json:"repeats"`
	LateMs      float64 `json:"late_ms"`
	Engines     []string
	Experiments []gridExperiment `json:"experiments"`
}

type gridExperiment struct {
	Name  string    `json:"name"`
	Mixes []string  `json:"mixes"`
	Conns []int     `json:"conns"`
	Rates []float64 `json:"rates"`
	Ops   uint64    `json:"ops"`

	// Pipelining and commit coalescing (DESIGN.md §14). Pipeline > 1
	// switches the load clients to pipelined mode with that in-flight
	// window. CoalesceBatch is a grid axis like Conns: each entry is a
	// per-shard batch size for the launched server (0 = coalescing off),
	// defaulting to [0] when absent, so on/off twins of the same cell
	// land in the same CSV. CoalesceWaitUs is the batch wait in µs
	// (default 200).
	Pipeline       int   `json:"pipeline"`
	CoalesceBatch  []int `json:"coalesce_batch"`
	CoalesceWaitUs int   `json:"coalesce_wait_us"`
}

func main() {
	var (
		config  = flag.String("config", "scripts/experiments.json", "experiment grid config")
		outDir  = flag.String("out", "grid_runs", "output directory for the merged CSV artifact")
		manager = flag.String("cm", "polka", "RSTM contention manager")
		opsOvr  = flag.Uint64("ops", 0, "override every cell's op count (0 = use config)")
	)
	flag.Parse()

	cfg, err := loadConfig(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid:", err)
		os.Exit(2)
	}

	cells := 0
	for _, exp := range cfg.Experiments {
		cells += len(cfg.Engines) * len(exp.Mixes) * len(exp.Conns) * len(exp.Rates) *
			len(coalesceAxis(exp)) * cfg.Repeats
	}
	fmt.Printf("grid: %d experiments, %d cells → %s/grid.csv\n", len(cfg.Experiments), cells, *outDir)

	var all []results.Record
	oracleFailures := 0
	done := 0
	for _, exp := range cfg.Experiments {
		ops := exp.Ops
		if *opsOvr > 0 {
			ops = *opsOvr
		}
		for _, kind := range cfg.Engines {
			spec := harness.EngineSpec{Kind: kind, Manager: *manager}
			for _, mname := range exp.Mixes {
				mix, ok := txkv.MixByName(mname)
				if !ok {
					fmt.Fprintf(os.Stderr, "grid: %s: unknown mix %q\n", exp.Name, mname)
					os.Exit(2)
				}
				for _, rate := range exp.Rates {
					dist, mode := "uniform", "closed"
					if cfg.Zipf > 0 {
						dist = "zipf"
					}
					if rate > 0 {
						mode = "open"
					}
					wl := fmt.Sprintf("txkvsrv/%s-%s-%s", mix.Name, dist, mode)
					for _, nc := range exp.Conns {
						for _, cb := range coalesceAxis(exp) {
							for rep := 0; rep < cfg.Repeats; rep++ {
								rec, oerr, err := runCell(cfg, spec, exp, wl, mix, nc, rate, cb, ops, rep)
								if err != nil {
									fmt.Fprintf(os.Stderr, "grid: %s %s %s conns=%d: %v\n", exp.Name, kind, wl, nc, err)
									os.Exit(1)
								}
								all = append(all, rec)
								done++
								fmt.Printf("[%d/%d] %s %s %s conns=%d coalesce=%d rep=%d: tput=%.0f/s p99=%.0fns srv_p99=%dns aborts=%d late=%d\n",
									done, cells, exp.Name, kind, wl, nc, cb, rep,
									rec.Throughput, rec.LatP99Ns, rec.SrvP99Ns, rec.Aborts, rec.LateOps)
								if oerr != nil {
									oracleFailures++
									fmt.Fprintf(os.Stderr, "grid: ORACLE FAILED %s %s %s conns=%d rep=%d: %v\n",
										exp.Name, kind, wl, nc, rep, oerr)
								}
							}
						}
					}
				}
			}
		}
	}

	if err := results.WriteFiles(*outDir, "grid", "csv", all); err != nil {
		fmt.Fprintln(os.Stderr, "grid:", err)
		os.Exit(1)
	}
	fmt.Printf("grid: wrote %d records to %s/grid.csv (+ grid.summary.csv)\n", len(all), *outDir)
	if oracleFailures > 0 {
		fmt.Fprintf(os.Stderr, "grid: %d cell(s) failed their oracles\n", oracleFailures)
		os.Exit(1)
	}
}

// coalesceAxis is an experiment's commit-coalescing sweep: the listed
// batch sizes, or the single "off" cell when the config names none.
func coalesceAxis(exp gridExperiment) []int {
	if len(exp.CoalesceBatch) == 0 {
		return []int{0}
	}
	return exp.CoalesceBatch
}

// runCell launches a fresh in-process server for one grid cell, drives
// it over TCP, and returns the cell's record plus any oracle failure.
func runCell(cfg gridConfig, spec harness.EngineSpec, exp gridExperiment, wl string, mix txkv.Mix, nc int, rate float64, cb int, ops uint64, rep int) (results.Record, error, error) {
	scfg := txkvserver.Config{Engine: spec, Keys: cfg.Keys, CoalesceBatch: cb}
	if exp.CoalesceWaitUs > 0 {
		scfg.CoalesceWait = time.Duration(exp.CoalesceWaitUs) * time.Microsecond
	}
	srv, err := txkvserver.Start("127.0.0.1:0", scfg)
	if err != nil {
		return results.Record{}, nil, fmt.Errorf("launch: %w", err)
	}
	defer srv.Close()

	runSeed := cfg.Seed
	if runSeed != 0 {
		runSeed = harness.DeriveSeed(runSeed, exp.Name+"/"+spec.Kind+"/"+wl, nc*1000+cb, rep)
	}
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr: srv.Addr().String(), Mix: mix, Conns: nc,
		Keys: cfg.Keys, Zipf: cfg.Zipf, Seed: runSeed,
		Ops: ops, Rate: rate,
		LateThreshold: time.Duration(cfg.LateMs * float64(time.Millisecond)),
		Pipeline:      exp.Pipeline,
	})
	if err != nil {
		return results.Record{}, nil, err
	}
	rec := res.Record(exp.Name, wl, spec.DisplayName(), spec.Kind, nc, rep, runSeed)
	rec.Pipeline, rec.CoalesceBatch = exp.Pipeline, cb
	return rec, res.OracleErr, nil
}

func loadConfig(path string) (gridConfig, error) {
	var cfg gridConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("%s: %w", path, err)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	if cfg.LateMs <= 0 {
		cfg.LateMs = 1
	}
	if cfg.Zipf < 0 || cfg.Zipf >= 1 {
		return cfg, fmt.Errorf("%s: zipf %v out of range (want 0 for uniform, or θ in (0,1))", path, cfg.Zipf)
	}
	if len(cfg.Engines) == 0 {
		cfg.Engines = []string{"swisstm", "tl2", "tinystm", "rstm"}
	}
	for _, kind := range cfg.Engines {
		switch kind {
		case "swisstm", "tl2", "tinystm", "rstm":
		default:
			return cfg, fmt.Errorf("%s: unknown engine %q", path, kind)
		}
	}
	if len(cfg.Experiments) == 0 {
		return cfg, fmt.Errorf("%s: no experiments", path)
	}
	for _, exp := range cfg.Experiments {
		if exp.Name == "" || len(exp.Mixes) == 0 || len(exp.Conns) == 0 || len(exp.Rates) == 0 || exp.Ops == 0 {
			return cfg, fmt.Errorf("%s: experiment %q needs name, mixes, conns, rates and ops", path, exp.Name)
		}
	}
	return cfg, nil
}
