// Command obssmoke is the observability smoke gate (`make smoke-obs`,
// DESIGN.md §11): for each engine it starts an in-process txkvserver
// with the admin surface bound to an ephemeral loopback port, applies a
// short contended load over real TCP, then
//
//   - scrapes /metrics and fails when any promised metric family is
//     missing (per-op request counters and latency histograms, per-op ×
//     phase histograms, per-shard conflict counters, engine commit and
//     abort-cause counters, per-transaction distributions), and
//   - fetches /statz and fails when the abort-cause partition is
//     violated (sum of the six causes must equal the abort total), when
//     the validation split disagrees with its parent counter, or when
//     the server-side latency percentiles are missing or non-monotone.
//
// Exit status 0 means every engine passed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
)

// families are the /metrics substrings whose absence fails the gate:
// one representative series per promised metric family.
var families = []string{
	`txkv_requests_total{op="get"}`,
	`txkv_request_ns_bucket{op="get",le=`,
	`txkv_request_ns_sum{op="get"}`,
	`txkv_phase_ns_bucket{op="get",phase="queue",le=`,
	`txkv_phase_ns_bucket{op="transfer",phase="txn",le=`,
	`txkv_shard_conflicts_total{shard=`,
	`stm_commits_total`,
	`stm_ro_commits_total`,
	`stm_aborts_total{cause="lock_conflict"}`,
	`stm_aborts_total{cause="read_validation"}`,
	`stm_txn_retries_bucket{le=`,
	`stm_txn_read_set_entries_sum`,
	`stm_txn_write_set_entries_count`,
}

func main() {
	failures := 0
	for _, kind := range []string{"swisstm", "tl2", "tinystm", "rstm"} {
		if err := run(kind); err != nil {
			fmt.Fprintf(os.Stderr, "obssmoke: %s: %v\n", kind, err)
			failures++
			continue
		}
		fmt.Printf("obssmoke: %s OK\n", kind)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "obssmoke: %d engine(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("smoke-obs OK: /metrics complete and abort partition holds on all engines")
}

func run(kind string) error {
	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine: harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:   512,
		Admin:  "127.0.0.1:0",
	})
	if err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer srv.Close()

	// A contended transfer-heavy load over several connections, so the
	// abort-cause counters actually move.
	if _, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr:  srv.Addr().String(),
		Mix:   txkv.TransferMix,
		Conns: 4, Keys: 512, Ops: 2000, Seed: 1,
	}); err != nil {
		return fmt.Errorf("load run: %w", err)
	}

	base := "http://" + srv.AdminAddr().String()
	body, err := httpGet(base + "/metrics")
	if err != nil {
		return err
	}
	for _, f := range families {
		if !strings.Contains(body, f) {
			return fmt.Errorf("/metrics missing family %q", f)
		}
	}

	zbody, err := httpGet(base + "/statz")
	if err != nil {
		return err
	}
	var z txkvserver.Statz
	if err := json.Unmarshal([]byte(zbody), &z); err != nil {
		return fmt.Errorf("/statz not JSON: %w", err)
	}
	st := z.Stats
	if st.Requests == 0 || st.Commits == 0 {
		return fmt.Errorf("no traffic recorded: %+v", st)
	}
	causes := z.Causes.ReadValidation + z.Causes.LockConflict + z.Causes.CommitValidation +
		z.Causes.CMKill + z.Causes.UserError + z.Causes.ExplicitRestart
	if causes != st.Aborts {
		return fmt.Errorf("abort partition violated: causes sum %d != aborts %d", causes, st.Aborts)
	}
	if st.AbortsValidRead+st.AbortsValidCommit != st.AbortsValid {
		return fmt.Errorf("validation split violated: read %d + commit %d != valid %d",
			st.AbortsValidRead, st.AbortsValidCommit, st.AbortsValid)
	}
	if st.SrvP50Ns == 0 || st.SrvP99Ns < st.SrvP50Ns || st.SrvP999Ns < st.SrvP99Ns {
		return fmt.Errorf("bad server percentiles p50=%d p99=%d p999=%d",
			st.SrvP50Ns, st.SrvP99Ns, st.SrvP999Ns)
	}
	return nil
}

func httpGet(url string) (string, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}
