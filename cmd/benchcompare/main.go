// Command benchcompare diffs two BENCH_PR<n>.json artifacts produced by
// cmd/benchjson, pairing records by (workload, engine) and printing the
// ns/op, allocs/op and aborts/op movement per pair — the one-command way
// to price a PR against the previous artifact (`make bench-compare`).
//
// Workloads or engines present in only one file are listed separately
// rather than silently dropped, so a renamed workload cannot masquerade
// as a perf win.
package main

import (
	"flag"
	"fmt"
	"os"

	"swisstm/internal/results"
)

func load(path string) ([]results.BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return results.ReadBenchJSON(f)
}

func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "   —  "
		}
		return "  new "
	}
	return fmt.Sprintf("%+6.1f%%", (new-old)/old*100)
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchcompare OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRecs, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	newRecs, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	type key struct{ workload, engine string }
	oldBy := map[key]results.BenchRecord{}
	for _, r := range oldRecs {
		oldBy[key{r.Workload, r.Engine}] = r
	}
	fmt.Printf("%-36s %22s %12s %18s\n", "workload/engine", "ns/op old→new", "Δ", "allocs/op old→new")
	matched := map[key]bool{}
	for _, n := range newRecs {
		k := key{n.Workload, n.Engine}
		o, ok := oldBy[k]
		if !ok {
			continue
		}
		matched[k] = true
		fmt.Printf("%-36s %9.1f → %9.1f %12s %7.2f → %7.2f",
			n.Name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp)
		if o.AbortsPerOp > 0 || n.AbortsPerOp > 0 {
			fmt.Printf("   %6.3f → %6.3f aborts/op", o.AbortsPerOp, n.AbortsPerOp)
		}
		fmt.Println()
	}
	for _, n := range newRecs {
		if !matched[key{n.Workload, n.Engine}] {
			fmt.Printf("%-36s only in %s (%.1f ns/op)\n", n.Name, flag.Arg(1), n.NsPerOp)
		}
	}
	for _, o := range oldRecs {
		if !matched[key{o.Workload, o.Engine}] {
			fmt.Printf("%-36s only in %s (%.1f ns/op)\n", o.Name, flag.Arg(0), o.NsPerOp)
		}
	}
}
