// Command txkvserver serves the transactional key-value store over TCP
// (DESIGN.md §10): length-prefixed binary frames, one goroutine per
// connection, every request one v2 transaction against the selected
// engine. It pre-fills keys 1..keys with the starting balance so the
// load harness's balance-conservation oracle has a known baseline, and
// serves until interrupted.
//
// Usage:
//
//	txkvserver -addr 127.0.0.1:7070 -engine swisstm -keys 4096
//	txkvserver -addr :0 -engine rstm -cm polka -threads 16
//	txkvserver -addr :7070 -admin 127.0.0.1:7071   # /metrics, /statz, /debug/pprof/*
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvserver"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "TCP listen address (use :0 for an ephemeral port)")
		engine  = flag.String("engine", "swisstm", "engine kind: swisstm | tl2 | tinystm | rstm")
		manager = flag.String("cm", "polka", "RSTM contention manager")
		keys    = flag.Int("keys", 4096, "pre-filled key population (keys 1..n)")
		balance = flag.Uint64("balance", uint64(txkv.DefaultBalance), "starting value per pre-filled key")
		threads = flag.Int("threads", 8, "engine thread pool size")
		admin   = flag.String("admin", "", "admin HTTP listen address for /metrics, /statz and /debug/pprof (off when empty; bind to loopback — unauthenticated)")
	)
	flag.Parse()
	switch *engine {
	case "swisstm", "tl2", "tinystm", "rstm":
	default:
		fmt.Fprintf(os.Stderr, "txkvserver: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	srv, err := txkvserver.Start(*addr, txkvserver.Config{
		Engine:  harness.EngineSpec{Kind: *engine, Manager: *manager},
		Keys:    *keys,
		Balance: stm.Word(*balance),
		Threads: *threads,
		Admin:   *admin,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("txkvserver: engine=%s keys=%d listening on %s\n", srv.Engine(), *keys, srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf("txkvserver: admin on http://%s (/metrics, /statz, /debug/pprof)\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("txkvserver: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "txkvserver:", err)
		os.Exit(1)
	}
}
