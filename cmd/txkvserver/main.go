// Command txkvserver serves the transactional key-value store over TCP
// (DESIGN.md §10): length-prefixed binary frames, one goroutine per
// connection, every request one v2 transaction against the selected
// engine. It pre-fills keys 1..keys with the starting balance so the
// load harness's balance-conservation oracle has a known baseline, and
// serves until interrupted.
//
// With -wal it keeps a durable commit log (DESIGN.md §12): mutations
// are acknowledged only after their redo record reaches the log, and a
// restart on the same directory replays the log's clean prefix before
// serving. SIGINT/SIGTERM drain gracefully — in-flight requests finish
// and are acked durably before the process exits.
//
// Usage:
//
//	txkvserver -addr 127.0.0.1:7070 -engine swisstm -keys 4096
//	txkvserver -addr :0 -engine rstm -cm polka -threads 16
//	txkvserver -addr :7070 -admin 127.0.0.1:7071   # /metrics, /statz, /debug/pprof/*
//	txkvserver -addr :7070 -wal /var/lib/txkv/wal -fsync group
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvserver"
	"swisstm/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "TCP listen address (use :0 for an ephemeral port)")
		engine   = flag.String("engine", "swisstm", "engine kind: swisstm | tl2 | tinystm | rstm")
		manager  = flag.String("cm", "polka", "RSTM contention manager")
		keys     = flag.Int("keys", 4096, "pre-filled key population (keys 1..n)")
		balance  = flag.Uint64("balance", uint64(txkv.DefaultBalance), "starting value per pre-filled key")
		threads  = flag.Int("threads", 8, "engine thread pool size")
		admin    = flag.String("admin", "", "admin HTTP listen address for /metrics, /statz and /debug/pprof (off when empty; bind to loopback — unauthenticated)")
		walDir   = flag.String("wal", "", "durable commit log directory (off when empty; an existing log is replayed before serving)")
		fsync    = flag.String("fsync", "group", "commit log durability: always | group | none")
		readTO   = flag.Duration("read-timeout", 0, "per-connection idle read timeout (0 = no limit)")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "per-reply write timeout (0 = no limit)")
		portFile = flag.String("portfile", "", "write the bound data address to this file once listening (for harnesses using :0)")
		maxConns = flag.Int("max-conns", 0, "connection cap: excess connections get one Overloaded frame and close (0 = unlimited)")
		maxQueue = flag.Int("max-queue", 0, "admission queue cap: requests arriving at a full queue are shed Overloaded (0 = unlimited)")
		maxWait  = flag.Duration("max-queue-wait", 0, "bound on one request's wait for an engine thread before it is shed Overloaded (0 = unlimited)")
		pipeline = flag.Int("pipeline", 16, "per-connection in-flight request window (1 = strict request/reply)")
		coBatch  = flag.Int("coalesce-batch", 0, "per-shard commit coalescing: max single-key ops per batched transaction (0 = off)")
		coWait   = flag.Duration("coalesce-wait", 200*time.Microsecond, "commit coalescing: max time the first queued op waits for a batch to fill")
	)
	flag.Parse()
	switch *engine {
	case "swisstm", "tl2", "tinystm", "rstm":
	default:
		fmt.Fprintf(os.Stderr, "txkvserver: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	mode, err := wal.ParseSyncMode(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvserver:", err)
		os.Exit(2)
	}

	srv, err := txkvserver.Start(*addr, txkvserver.Config{
		Engine:        harness.EngineSpec{Kind: *engine, Manager: *manager},
		Keys:          *keys,
		Balance:       stm.Word(*balance),
		Threads:       *threads,
		Admin:         *admin,
		WALDir:        *walDir,
		WALSync:       mode,
		ReadTimeout:   *readTO,
		WriteTimeout:  *writeTO,
		MaxConns:      *maxConns,
		MaxQueue:      *maxQueue,
		MaxQueueWait:  *maxWait,
		Pipeline:      *pipeline,
		CoalesceBatch: *coBatch,
		CoalesceWait:  *coWait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("txkvserver: engine=%s keys=%d listening on %s\n", srv.Engine(), *keys, srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf("txkvserver: admin on http://%s (/metrics, /statz, /debug/pprof)\n", a)
	}
	if *walDir != "" {
		info := srv.WalRecovery()
		fmt.Printf("txkvserver: wal dir=%s fsync=%s recovered=%d frames (truncated=%v)\n",
			*walDir, mode, info.Frames, info.Truncated)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(srv.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "txkvserver: portfile:", err)
			srv.Close()
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("txkvserver: draining")
		if err := srv.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "txkvserver:", err)
			os.Exit(1)
		}
	case <-srv.Done():
		// The accept loop died while we were supposed to be serving:
		// report it and exit non-zero instead of lingering uselessly.
		fmt.Fprintln(os.Stderr, "txkvserver: accept:", srv.Err())
		srv.Close()
		os.Exit(1)
	}
}
