// Command paperfigs regenerates the figures and tables of "Stretching
// Transactional Memory" (PLDI 2009). Each experiment prints the series
// the corresponding figure plots (see DESIGN.md §4 for the mapping).
//
// Usage:
//
//	paperfigs -list
//	paperfigs -run fig2 -dur 2s -threads 1,2,4,8
//	paperfigs -run all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"swisstm/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment to run: fig2..fig13, table1, table2, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "small inputs and short measurements (smoke run)")
		dur     = flag.Duration("dur", 0, "duration per throughput point (overrides preset)")
		threads = flag.String("threads", "", "comma-separated thread sweep (overrides preset)")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	opt := experiments.Default(os.Stdout)
	if *quick {
		opt = experiments.Quick(os.Stdout)
	}
	if *dur != 0 {
		opt.Duration = *dur
	}
	if *threads != "" {
		opt.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "paperfigs: bad thread count %q\n", part)
				os.Exit(2)
			}
			opt.Threads = append(opt.Threads, n)
		}
	}

	names := []string{*run}
	if *run == "all" {
		names = experiments.Names
	}
	for _, name := range names {
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		if err := opt.Run(name); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
