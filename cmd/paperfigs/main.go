// Command paperfigs regenerates the figures and tables of "Stretching
// Transactional Memory" (PLDI 2009), plus the repository's own txkv
// key-value-store experiment family (DESIGN.md §6). Each experiment
// prints the series the corresponding figure plots (see DESIGN.md §4
// for the mapping) and can additionally persist the underlying
// per-repeat measurement records as CSV or JSONL, one file pair per
// experiment (DESIGN.md §5).
//
// Usage:
//
//	paperfigs -list
//	paperfigs -run fig2 -dur 2s -threads 1,2,4,8
//	paperfigs -run all -quick
//	paperfigs -run fig2 -quick -repeats 3 -format csv -out paper_runs/smoke
//	paperfigs -run fig5 -quick -seed 42 -repeats 5 -out runs/seeded
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"swisstm/internal/experiments"
	"swisstm/internal/results"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment to run: fig2..fig13, table1, table2, txkv, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "small inputs and short measurements (smoke run)")
		dur     = flag.Duration("dur", 0, "duration per throughput point (overrides preset)")
		threads = flag.String("threads", "", "comma-separated thread sweep (overrides preset)")
		repeats = flag.Int("repeats", 1, "measured repeats per point (text tables report medians)")
		seed    = flag.Uint64("seed", 0, "deterministic mode: seed workload RNGs and measure fixed op counts (0 = off)")
		ops     = flag.Uint64("ops", 0, "per-worker ops per throughput point (overrides the seeded-mode default)")
		format  = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir  = flag.String("out", "", "directory for result files, one per experiment (required for csv/jsonl)")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "paperfigs: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		fmt.Fprintf(os.Stderr, "paperfigs: -format %s requires -out <dir>\n", *format)
		os.Exit(2)
	}

	opt := experiments.Default(os.Stdout)
	if *quick {
		opt = experiments.Quick(os.Stdout)
	}
	if *dur != 0 {
		opt.Duration = *dur
	}
	if *threads != "" {
		opt.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "paperfigs: bad thread count %q\n", part)
				os.Exit(2)
			}
			opt.Threads = append(opt.Threads, n)
		}
	}
	opt.Repeats = *repeats
	opt.Seed = *seed
	opt.FixedOps = *ops

	names := []string{*run}
	if *run == "all" {
		names = experiments.Names
	}
	for _, name := range names {
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		recs, err := opt.Run(name)
		// Persist whatever was measured even when a check failed, so the
		// run directory holds the evidence.
		if *outDir != "" {
			if werr := results.WriteDriverFiles(*outDir, name, *format, recs); werr != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: writing %s results: %v\n", name, werr)
				os.Exit(1)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v (%d records) --\n\n", name, time.Since(start).Round(time.Millisecond), len(recs))
	}
}
