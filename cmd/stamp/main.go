// Command stamp runs one STAMP workload (paper Figure 3) on a chosen
// word-based engine, printing the wall time and abort statistics,
// verifying the application's output against its sequential oracle, and
// optionally persisting structured records (DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func main() {
	var (
		engine  = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm")
		threads = flag.Int("threads", 4, "worker threads")
		name    = flag.String("app", "", "workload: "+strings.Join(stamp.Workloads, ", "))
		scale   = flag.String("scale", "bench", "input scale: test | bench")
		backoff = flag.Bool("backoff", true, "SwissTM post-abort back-off (Figure 11 ablation)")
		repeats = flag.Int("repeats", 1, "measured repeats (summary reports medians)")
		seed    = flag.Uint64("seed", 0, "seed for the worker RNG streams (0 = legacy fixed seeds)")
		format  = flag.String("format", "text", "output format: text | csv | jsonl")
		outDir  = flag.String("out", "", "directory for result files (required for csv/jsonl)")
	)
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !results.KnownFormat(*format) {
		fmt.Fprintf(os.Stderr, "stamp: unknown format %q (want text, csv or jsonl)\n", *format)
		os.Exit(2)
	}
	if *format != "text" && *outDir == "" {
		fmt.Fprintf(os.Stderr, "stamp: -format %s requires -out <dir>\n", *format)
		os.Exit(2)
	}
	sc := stamp.Bench
	if *scale == "test" {
		sc = stamp.Test
	}
	if _, err := stamp.New(*name, sc); err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}
	spec := harness.EngineSpec{Kind: *engine, NoBackoff: !*backoff}
	// STAMP is written against the word API. Fail fast on engines that
	// lack it (object-based RSTM) instead of panicking mid-run — the
	// typed capability check replaces the old stm.ErrWordAPI surprise.
	if !stm.SupportsWordAPI(spec.New()) {
		fmt.Fprintf(os.Stderr, "stamp: engine %q does not support the word API STAMP requires; use swisstm, tl2 or tinystm\n", *engine)
		os.Exit(2)
	}
	mk := func(seed uint64) harness.WorkSpec {
		var app stamp.App
		return harness.WorkSpec{
			Setup: func(e stm.STM) error {
				var err error
				if app, err = stamp.New(*name, sc); err != nil {
					return err
				}
				if err := app.Setup(e); err != nil {
					return err
				}
				app.Bind(*threads)
				return nil
			},
			Work: func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
				app.Work(e, th, worker, t, rng)
			},
			Check: func(e stm.STM) error { return app.Check(e) },
		}
	}
	recs, err := harness.RepeatWork(spec, mk, harness.RunConfig{
		Experiment: "stamp", Workload: "stamp/" + *name,
		Threads: *threads, Repeats: *repeats, Seed: *seed,
	})
	if *outDir != "" {
		if werr := results.WriteDriverFiles(*outDir, "stamp-"+*name, *format, recs); werr != nil {
			fmt.Fprintln(os.Stderr, "stamp:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(1)
	}
	for _, a := range results.Aggregate(recs) {
		fmt.Printf("app=%s engine=%s threads=%d repeats=%d time=%v (median) commits=%.0f aborts-rate=%.2f%% (output verified)\n",
			*name, a.Engine, a.Threads, a.Repeats,
			time.Duration(a.Duration.Median*float64(time.Second)).Round(time.Millisecond),
			a.Ops.Median, 100*a.AbortRate.Median)
	}
}
