// Command stamp runs one STAMP workload (paper Figure 3) on a chosen
// word-based engine, printing the wall time and abort statistics, and
// verifying the application's output against its sequential oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/stamp"
)

func main() {
	var (
		engine  = flag.String("engine", "swisstm", "swisstm | tl2 | tinystm")
		threads = flag.Int("threads", 4, "worker threads")
		name    = flag.String("app", "", "workload: "+strings.Join(stamp.Workloads, ", "))
		scale   = flag.String("scale", "bench", "input scale: test | bench")
		backoff = flag.Bool("backoff", true, "SwissTM post-abort back-off (Figure 11 ablation)")
	)
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc := stamp.Bench
	if *scale == "test" {
		sc = stamp.Test
	}
	app, err := stamp.New(*name, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}
	spec := harness.EngineSpec{Kind: *engine, NoBackoff: !*backoff}
	e := spec.New()
	start := time.Now()
	stats, err := stamp.Run(app, e, *threads)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(1)
	}
	fmt.Printf("app=%s engine=%s threads=%d time=%v commits=%d aborts=%d abort-rate=%.2f%% (output verified)\n",
		*name, spec.DisplayName(), *threads, elapsed.Round(time.Millisecond),
		stats.Commits, stats.Aborts, 100*stats.AbortRate())
}
