// The quickstart example: concurrent bank transfers under SwissTM.
//
// It shows the three steps every program takes: create an engine, give
// each goroutine its own Thread, and wrap shared-memory accesses in
// Atomic blocks. The invariant — money is neither created nor destroyed —
// holds at every point in time, and a concurrent auditor verifies it
// while the transfers run.
package main

import (
	"fmt"
	"sync"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
)

func main() {
	// 1. One engine, shared by everybody.
	engine := swisstm.New(swisstm.Config{ArenaWords: 1 << 16})

	// 2. Build the accounts (thread 0 is the setup thread).
	const accounts = 64
	const initial = 1000
	setup := engine.NewThread(0)
	var acct stm.Handle
	setup.Atomic(func(tx stm.Tx) {
		acct = tx.NewObject(accounts)
		for i := uint32(0); i < accounts; i++ {
			tx.WriteField(acct, i, initial)
		}
	})

	// 3. Hammer it with transfers from four goroutines while an auditor
	// keeps checking the total.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := engine.NewThread(id + 1)
			seed := uint64(id)*2654435761 + 1
			for n := 0; n < 50_000; n++ {
				seed = seed*6364136223846793005 + 1
				from := uint32(seed>>33) % accounts
				to := uint32(seed>>13) % accounts
				th.Atomic(func(tx stm.Tx) {
					bal := tx.ReadField(acct, from)
					if bal == 0 {
						return
					}
					tx.WriteField(acct, from, bal-1)
					tx.WriteField(acct, to, tx.ReadField(acct, to)+1)
				})
			}
		}(w)
	}
	auditor := engine.NewThread(5)
	audits := 0
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum stm.Word
			auditor.Atomic(func(tx stm.Tx) {
				sum = 0
				for i := uint32(0); i < accounts; i++ {
					sum += tx.ReadField(acct, i)
				}
			})
			if sum != accounts*initial {
				panic(fmt.Sprintf("conservation violated: %d", sum))
			}
			audits++
		}
	}()
	wg.Wait()
	close(stop)

	var sum stm.Word
	setup.Atomic(func(tx stm.Tx) {
		for i := uint32(0); i < accounts; i++ {
			sum += tx.ReadField(acct, i)
		}
	})
	stats := setup.Stats()
	_ = stats
	fmt.Printf("200000 transfers done; total = %d (expected %d); %d consistent audits\n",
		sum, accounts*initial, audits)
}
