// The quickstart example: concurrent bank transfers under SwissTM,
// written against the v2 transaction API (DESIGN.md §9).
//
// It shows the four steps every program takes: create an engine, give
// each goroutine its own Thread, wrap shared-memory accesses in atomic
// blocks that *return values* (stm.Atomic / stm.AtomicErr), and declare
// read-only transactions (stm.AtomicRO) so the engine runs its
// read-only fast path. The invariant — money is neither created nor
// destroyed — holds at every point in time, and a concurrent auditor
// verifies it while the transfers run.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
)

var errInsufficient = errors.New("insufficient funds")

func main() {
	// 1. One engine, shared by everybody.
	engine := swisstm.New(swisstm.Config{ArenaWords: 1 << 16})

	// 2. Build the accounts (thread 0 is the setup thread). The
	// allocation transaction returns the handle as a value.
	const accounts = 64
	const initial = 1000
	setup := engine.NewThread(0)
	acct := stm.Atomic(setup, func(tx stm.Tx) stm.Handle {
		h := tx.NewObject(accounts)
		for i := uint32(0); i < accounts; i++ {
			tx.WriteField(h, i, initial)
		}
		return h
	})

	// sumAll is a declared read-only transaction: the body receives a
	// TxRO (writing would not compile) and the engine commits it on the
	// read-only fast path.
	sumAll := func(th stm.Thread) stm.Word {
		return stm.AtomicRO(th, func(tx stm.TxRO) stm.Word {
			var sum stm.Word
			for i := uint32(0); i < accounts; i++ {
				sum += tx.ReadField(acct, i)
			}
			return sum
		})
	}

	// 3. Hammer it with transfers from four goroutines while an auditor
	// keeps checking the total. A transfer that would overdraw returns
	// an error: the transaction rolls back (nothing is written) and the
	// error surfaces to the caller — no panic, no manual undo.
	var overdrafts atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := engine.NewThread(id + 1)
			seed := uint64(id)*2654435761 + 1
			for n := 0; n < 50_000; n++ {
				seed = seed*6364136223846793005 + 1
				from := uint32(seed>>33) % accounts
				to := uint32(seed>>13) % accounts
				amount := stm.Word(seed>>55)%8 + 1
				_, err := stm.AtomicErr(th, func(tx stm.Tx) (stm.Word, error) {
					bal := tx.ReadField(acct, from)
					if bal < amount {
						return 0, errInsufficient
					}
					tx.WriteField(acct, from, bal-amount)
					tx.WriteField(acct, to, tx.ReadField(acct, to)+amount)
					return bal - amount, nil
				})
				if err != nil {
					overdrafts.Add(1)
				}
			}
		}(w)
	}
	auditor := engine.NewThread(5)
	audits := 0
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sum := sumAll(auditor); sum != accounts*initial {
				panic(fmt.Sprintf("conservation violated: %d", sum))
			}
			audits++
		}
	}()
	wg.Wait()
	close(stop)

	sum := sumAll(setup)
	stats := auditor.Stats()
	fmt.Printf("200000 transfers done; total = %d (expected %d); %d rejected overdrafts; %d consistent audits (%d read-only commits)\n",
		sum, accounts*initial, overdrafts.Load(), audits, stats.ROCommits)
	if sum != accounts*initial {
		panic("conservation violated at exit")
	}
}
