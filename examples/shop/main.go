// The shop example is a small reservation service in the style of
// STAMP's vacation: an inventory of items indexed by a transactional
// red-black tree, concurrent customers reserving and returning items,
// and an invariant — stock is conserved — checked live. It demonstrates
// composing a non-trivial transactional data structure (the tree) with
// application logic in a single atomic block.
package main

import (
	"fmt"
	"sync"

	"swisstm/internal/rbtree"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/util"
)

const (
	itTotal uint32 = iota
	itAvail
	itFields
)

func main() {
	engine := swisstm.New(swisstm.Config{ArenaWords: 1 << 20})
	setup := engine.NewThread(0)
	inventory := rbtree.New(setup)

	const items = 512
	const stockPer = 5
	for id := 1; id <= items; id++ {
		id := id
		stm.AtomicVoid(setup, func(tx stm.Tx) {
			it := tx.NewObject(itFields)
			tx.WriteField(it, itTotal, stockPer)
			tx.WriteField(it, itAvail, stockPer)
			inventory.Insert(tx, stm.Word(id), stm.Word(it))
		})
	}

	// Customers reserve an item if available and return it later; each
	// holds at most one item (stored locally).
	var wg sync.WaitGroup
	reservedTotal := make([]int, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := engine.NewThread(id + 1)
			rng := util.NewRand(uint64(id)*17 + 3)
			holding := stm.Handle(0)
			for n := 0; n < 20_000; n++ {
				if holding == 0 {
					key := stm.Word(rng.Intn(items) + 1)
					// The reservation returns the reserved item's handle
					// (0 when out of stock) as the transaction's value.
					holding = stm.Atomic(th, func(tx stm.Tx) stm.Handle {
						v, ok := inventory.Lookup(tx, key)
						if !ok {
							return 0
						}
						it := stm.Handle(v)
						avail := tx.ReadField(it, itAvail)
						if avail == 0 {
							return 0
						}
						tx.WriteField(it, itAvail, avail-1)
						return it
					})
					if holding != 0 {
						reservedTotal[id]++
					}
				} else {
					it := holding
					stm.AtomicVoid(th, func(tx stm.Tx) {
						tx.WriteField(it, itAvail, tx.ReadField(it, itAvail)+1)
					})
					holding = 0
				}
			}
			// Return anything still held so the final audit balances.
			if holding != 0 {
				it := holding
				stm.AtomicVoid(th, func(tx stm.Tx) {
					tx.WriteField(it, itAvail, tx.ReadField(it, itAvail)+1)
				})
			}
		}(c)
	}
	wg.Wait()

	// Audit: every item's stock must be back to its total. The audit is
	// a declared read-only transaction returning both counts as one
	// value.
	audit := stm.AtomicRO(setup, func(tx stm.TxRO) [2]int {
		var bad, total int
		inventory.Visit(tx, func(_, v stm.Word) {
			it := stm.Handle(v)
			total++
			if tx.ReadField(it, itAvail) != tx.ReadField(it, itTotal) {
				bad++
			}
		})
		return [2]int{bad, total}
	})
	bad, total := audit[0], audit[1]
	reservations := 0
	for _, r := range reservedTotal {
		reservations += r
	}
	fmt.Printf("%d items, %d successful reservations, %d stock mismatches after returns\n",
		total, reservations, bad)
	if bad != 0 {
		panic("stock conservation violated")
	}
}
