// The gamesim example reproduces the scenario the paper's introduction
// uses to motivate STMs for large applications: a video-game world of
// thousands of active objects where each update reads and modifies the
// state of several other objects ("a video gameplay simulation can use
// up to 10,000 active interacting game objects, each … causing changes
// to 5–10 other objects on every update").
//
// Each object update is one transaction: it reads its neighbors'
// positions, resolves collisions by pushing neighbors away, and spends
// its energy. Without a TM this needs either a global lock (no
// parallelism) or deadlock-prone fine-grained locking across a dynamic
// neighbor set.
package main

import (
	"fmt"
	"sync"
	"time"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/util"
)

// Game-object fields.
const (
	gX uint32 = iota
	gY
	gVX
	gVY
	gEnergy
	gFields
)

const (
	objects   = 4096
	worldSize = 1 << 16
	neighbors = 8 // objects touched per update (the paper's 5-10)
	frames    = 30
)

func main() {
	engine := swisstm.New(swisstm.Config{ArenaWords: 1 << 20})
	setup := engine.NewThread(0)
	rng := util.NewRand(42)

	objs := make([]stm.Handle, objects)
	for i := range objs {
		x, y := stm.Word(rng.Intn(worldSize)), stm.Word(rng.Intn(worldSize))
		vx, vy := stm.Word(rng.Intn(9)), stm.Word(rng.Intn(9))
		objs[i] = stm.Atomic(setup, func(tx stm.Tx) stm.Handle {
			o := tx.NewObject(gFields)
			tx.WriteField(o, gX, x)
			tx.WriteField(o, gY, y)
			tx.WriteField(o, gVX, vx)
			tx.WriteField(o, gVY, vy)
			tx.WriteField(o, gEnergy, 1000)
			return o
		})
	}

	workers := 4
	start := time.Now()
	var updates uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := engine.NewThread(id + 1)
			r := util.NewRand(uint64(id) + 7)
			n := uint64(0)
			for f := 0; f < frames; f++ {
				// Each worker updates its slice of the world each frame.
				for i := id; i < objects; i += workers {
					self := objs[i]
					stm.AtomicVoid(th, func(tx stm.Tx) {
						x := tx.ReadField(self, gX)
						y := tx.ReadField(self, gY)
						// Interact with a handful of other objects:
						// read their position, push them away a little.
						for k := 0; k < neighbors; k++ {
							other := objs[r.Intn(objects)]
							if other == self {
								continue
							}
							ox := tx.ReadField(other, gX)
							if ox > x {
								tx.WriteField(other, gX, ox+1)
							} else {
								tx.WriteField(other, gX, ox-1)
							}
						}
						// Move self and burn energy.
						tx.WriteField(self, gX, (x+tx.ReadField(self, gVX))%worldSize)
						tx.WriteField(self, gY, (y+tx.ReadField(self, gVY))%worldSize)
						e := tx.ReadField(self, gEnergy)
						if e > 0 {
							tx.WriteField(self, gEnergy, e-1)
						}
					})
					n++
				}
			}
			mu.Lock()
			updates += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Every object must have burned exactly `frames` energy units:
	// updates are atomic, so none can be lost. The audit is a declared
	// read-only transaction.
	bad := stm.AtomicRO(setup, func(tx stm.TxRO) int {
		n := 0
		for _, o := range objs {
			if tx.ReadField(o, gEnergy) != 1000-frames {
				n++
			}
		}
		return n
	})
	fmt.Printf("%d object updates over %d frames in %v (%.0f updates/s), %d inconsistent objects\n",
		updates, frames, elapsed.Round(time.Millisecond),
		float64(updates)/elapsed.Seconds(), bad)
	if bad != 0 {
		panic("atomicity violated")
	}
}
