// The routing example routes a synthetic circuit board with Lee's
// algorithm on top of the STM, comparing SwissTM and TinySTM on the same
// problem — a miniature of the paper's Figure 4 experiment, and a
// demonstration of large transactions (every route reads hundreds of
// cells and writes a track).
package main

import (
	"fmt"
	"sync"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/util"
)

func main() {
	board := leetm.GenBoard("example", 96, 96, 160, 6, 36, 0xd1ce)
	for _, kind := range []string{"swisstm", "tinystm"} {
		spec := harness.EngineSpec{Kind: kind}
		engine := spec.New()
		router := leetm.Setup(engine, board)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := engine.NewThread(id + 1)
				router.Work(engine, th, id, 4, util.NewRand(uint64(id)+1))
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := router.Check(); err != nil {
			panic(err)
		}
		fmt.Printf("%-8s routed %d/%d nets in %v (all tracks verified)\n",
			spec.DisplayName(), router.Routed.Load(), len(board.Nets),
			elapsed.Round(time.Millisecond))
	}
}
