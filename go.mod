module swisstm

go 1.22
