# CI and humans run the same commands: .github/workflows/ci.yml calls
# exactly these targets. See README.md § Development.

GO ?= go

# Engine packages get a dedicated -race pass: they are the lock-level
# concurrent code, and the data-structure stress tests hammer them.
# txkv rides along for its concurrent transfer-invariant test; the
# server stack (wire/server/client) because its tests run many TCP
# connections against one shared engine.
RACE_PKGS := ./internal/swisstm ./internal/tl2 ./internal/tinystm ./internal/rstm ./internal/cm ./internal/txkv ./internal/bench7 ./internal/txkvwire ./internal/txkvserver ./internal/txkvclient ./internal/obs ./internal/wal ./internal/chaos ./internal/coalesce

SMOKE_DIR ?= /tmp/swisstm-smoke

.PHONY: build test race smoke smoke-txkv smoke-server smoke-obs smoke-examples smoke-recover smoke-chaos smoke-coalesce grid fmt vet bench bench-json bench-compare ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' . ./internal/txkv

# bench-json measures per-op hot-path cost (ns/op + allocs/op +
# aborts/op, including the forced-conflict abort tier) of the core
# engine micro-benchmarks and writes the machine-readable perf artifact
# CI accumulates (non-gating; see DESIGN.md §7–§8).
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# bench-compare diffs two bench-json artifacts per engine/workload:
#   make bench-compare BENCH_OLD=BENCH_PR4.json BENCH_NEW=BENCH_PR5.json
BENCH_OLD ?= BENCH_PR5.json
BENCH_NEW ?= BENCH_PR7.json
bench-compare:
	$(GO) run ./cmd/benchcompare $(BENCH_OLD) $(BENCH_NEW)

# smoke regenerates every figure at quick scale, persists the records,
# and fails if any result file is empty or any workload check failed.
smoke:
	rm -rf $(SMOKE_DIR)
	$(GO) run ./cmd/paperfigs -run all -quick -format csv -out $(SMOKE_DIR)
	@for f in $(SMOKE_DIR)/*.csv; do \
		lines=$$(wc -l < "$$f"); \
		if [ "$$lines" -le 1 ]; then echo "empty result file: $$f"; exit 1; fi; \
	done
	@if grep -l 'false$$' $(SMOKE_DIR)/*.summary.csv; then \
		echo "a workload check failed (all_checked=false above)"; exit 1; \
	fi
	@echo "smoke OK: $$(ls $(SMOKE_DIR) | wc -l) result files in $(SMOKE_DIR)"

# smoke-txkv runs a short seeded txkv experiment per engine through the
# dedicated driver (all three headline mixes, correctness oracles
# armed) and fails on empty result files or failed invariant checks.
smoke-txkv:
	rm -rf $(SMOKE_DIR)/txkv
	$(GO) run ./cmd/txkv -threads 1,2 -repeats 2 -seed 1 -ops 200 -keys 1024 -format csv -out $(SMOKE_DIR)/txkv
	@for f in $(SMOKE_DIR)/txkv/*.csv; do \
		lines=$$(wc -l < "$$f"); \
		if [ "$$lines" -le 1 ]; then echo "empty result file: $$f"; exit 1; fi; \
	done
	@if grep -l 'false$$' $(SMOKE_DIR)/txkv/*.summary.csv; then \
		echo "a txkv correctness check failed (all_checked=false above)"; exit 1; \
	fi
	@echo "smoke-txkv OK: all engines, all mixes, oracles green"

# smoke-server exercises the txkv network service end to end: an
# in-process server per engine on an ephemeral loopback port (real TCP),
# driven by the load generator in both closed-loop and open-loop mode
# with the over-the-wire oracles armed (transfer mix → balance
# conservation). Fails on empty result files, missing percentile
# columns, zero percentile values, or a failed oracle.
smoke-server:
	rm -rf $(SMOKE_DIR)/server
	$(GO) run ./cmd/txkvload -launch -engines swisstm,tl2,tinystm,rstm \
		-mixes transfer -conns 2 -ops 400 -keys 512 -seed 1 \
		-format csv -out $(SMOKE_DIR)/server -name closed
	$(GO) run ./cmd/txkvload -launch -engines swisstm,tl2,tinystm,rstm \
		-mixes read-heavy -conns 2 -ops 400 -keys 512 -seed 2 -rate 4000 \
		-format csv -out $(SMOKE_DIR)/server -name open
	@for f in $(SMOKE_DIR)/server/closed.csv $(SMOKE_DIR)/server/open.csv; do \
		lines=$$(wc -l < "$$f"); \
		if [ "$$lines" -le 1 ]; then echo "empty result file: $$f"; exit 1; fi; \
		for col in lat_p50_ns lat_p99_ns lat_p999_ns phase_txn_ns; do \
			idx=$$(head -1 "$$f" | tr ',' '\n' | grep -nx "$$col" | cut -d: -f1); \
			if [ -z "$$idx" ]; then echo "$$f: missing column $$col"; exit 1; fi; \
			if tail -n +2 "$$f" | awk -F, -v i="$$idx" '$$i + 0 <= 0 {exit 1}'; then :; else \
				echo "$$f: zero $$col in a data row"; exit 1; fi; \
		done; \
	done
	@if grep -l 'false$$' $(SMOKE_DIR)/server/*.summary.csv; then \
		echo "a server oracle failed (all_checked=false above)"; exit 1; \
	fi
	@echo "smoke-server OK: all four engines over TCP, closed+open loop, oracles green"

# smoke-obs gates the observability surface (DESIGN.md §11): per engine
# it starts an in-process server with the admin endpoint bound, applies
# a contended load over real TCP, scrapes /metrics, and fails when any
# promised metric family is missing or when /statz shows a violated
# abort-cause partition (sum of causes != total aborts).
smoke-obs:
	$(GO) run ./cmd/obssmoke

# smoke-recover is the kill/recover durability gate (DESIGN.md §12):
# per engine, crashkv SIGKILLs a real txkvserver process mid-load with
# the commit log in group-fsync mode, then fails on a log checksum
# error, a lost acknowledged write, or a restarted server whose state
# disagrees with an independent replay of the log.
smoke-recover:
	$(GO) build -o bin/txkvserver ./cmd/txkvserver
	$(GO) run ./cmd/crashkv -server bin/txkvserver \
		-engines swisstm,tl2,tinystm,rstm -fsync group -warm 200ms

# smoke-chaos is the overload/fault-injection gate (DESIGN.md §13):
# per engine, chaoskv storms a real server through the seeded chaos
# proxy — admission limits armed, open-loop load above capacity,
# truncation/RST/blackhole faults enabled — and fails on a lost
# acknowledged write, an error reply without a typed code, a server
# crash or hung drain, zero sheds (overload never engaged), or an
# unbounded p99 for accepted requests.
smoke-chaos:
	$(GO) run ./cmd/chaoskv -engines swisstm,tl2 -seed 1 -duration 1500ms

# smoke-coalesce is the commit-coalescing + change-feed gate (DESIGN.md
# §14): per engine, pipelined open-loop load with per-shard coalescing
# on and the commit log in group-fsync mode, a feed tailer on every
# shard from sequence 1, and the transfer balance oracle over the same
# wire. Fails on an oracle violation, a lost or duplicated reply, a
# feed subscriber that misses/duplicates/reorders an event or stalls
# after drain, or a /metrics page without the batch-size histogram.
smoke-coalesce:
	$(GO) run ./cmd/coalsmoke

# grid runs the full experiment grid from scripts/experiments.json into
# one merged CSV artifact (override cell size with GRID_OPS, e.g.
# `make grid GRID_OPS=300` for a quick pass).
GRID_DIR ?= grid_runs
GRID_OPS ?= 0
grid:
	$(GO) run ./cmd/grid -config scripts/experiments.json -out $(GRID_DIR) -ops $(GRID_OPS)

# smoke-examples builds and runs every examples/ program to completion.
# The examples are the public face of the transaction API; running them
# in CI means the API surface they exercise (value-returning Atomic,
# AtomicErr, AtomicRO, typed handles) cannot silently rot. Each example
# self-checks its invariant and panics on violation, so a non-zero exit
# fails the gate.
smoke-examples:
	@for d in examples/*/; do \
		echo "running $$d"; \
		$(GO) run ./$$d || exit 1; \
	done
	@echo "smoke-examples OK: all examples ran and self-checked"

ci: fmt vet build test race smoke smoke-txkv smoke-server smoke-obs smoke-examples smoke-recover smoke-chaos smoke-coalesce
