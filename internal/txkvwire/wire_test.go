package txkvwire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"swisstm/internal/util"
)

// errCodes are the valid wire error codes.
var errCodes = []Code{CodeRejected, CodeOverloaded, CodeDeadlineExceeded, CodeDraining, CodeInternal}

// randReq builds a random valid request of the given op.
func randReq(rng *util.Rand, op Op, batchOK bool) Req {
	r := Req{Op: op}
	if batchOK && rng.Intn(4) == 0 {
		// Whole microseconds: the wire resolution, so DeepEqual holds.
		r.TTL = time.Duration(1+rng.Intn(5_000_000)) * time.Microsecond
	}
	switch op {
	case OpGet, OpDelete:
		r.Key = rng.Next()
	case OpPut:
		r.Key, r.Val = rng.Next(), rng.Next()
	case OpCAS:
		r.Key, r.Old, r.Val = rng.Next(), rng.Next(), rng.Next()
	case OpTransfer:
		n := 2 + rng.Intn(MaxTransferKeys-1)
		r.Amount = rng.Next()
		for i := 0; i < n; i++ {
			r.Keys = append(r.Keys, rng.Next())
		}
	case OpSum:
		r.Shard = int32(rng.Intn(64)) - 1
	case OpSubscribe:
		r.Shard = int32(rng.Intn(64)) - 1
		r.From = rng.Next()
	case OpLen, OpStats:
	case OpBatch:
		if !batchOK {
			panic("randReq: nested batch requested")
		}
		n := 1 + rng.Intn(8)
		subOps := []Op{OpGet, OpPut, OpDelete, OpCAS, OpTransfer, OpSum, OpLen}
		for i := 0; i < n; i++ {
			r.Sub = append(r.Sub, randReq(rng, subOps[rng.Intn(len(subOps))], false))
		}
	}
	return r
}

// randReply builds a random valid reply of the given op.
func randReply(rng *util.Rand, op Op, batchOK bool) Reply {
	if rng.Intn(8) == 0 {
		return Reply{
			Op:   op,
			Err:  "synthetic failure " + strings.Repeat("x", 1+rng.Intn(16)),
			Code: errCodes[rng.Intn(len(errCodes))],
		}
	}
	r := Reply{Op: op}
	switch op {
	case OpGet:
		r.Found = rng.Intn(2) == 1
		r.Val = rng.Next()
	case OpPut, OpDelete, OpCAS, OpTransfer:
		r.OK = rng.Intn(2) == 1
	case OpSum, OpLen:
		r.Val = rng.Next()
	case OpSubscribe:
		// Empty Events (a heartbeat or the subscription ack) must round
		// trip as well as a full frame.
		if n := rng.Intn(8); n > 0 {
			for i := 0; i < n; i++ {
				r.Events = append(r.Events, FeedEvent{
					Seq: rng.Next(), Del: rng.Intn(4) == 0,
					Key: rng.Next(), Val: rng.Next(),
				})
			}
		}
	case OpBatch:
		if !batchOK {
			panic("randReply: nested batch requested")
		}
		n := 1 + rng.Intn(8)
		subOps := []Op{OpGet, OpPut, OpDelete, OpCAS, OpTransfer, OpSum, OpLen}
		for i := 0; i < n; i++ {
			r.Sub = append(r.Sub, randReply(rng, subOps[rng.Intn(len(subOps))], false))
		}
	case OpStats:
		r.Stats = &Stats{
			Requests: rng.Next(), ParseNs: rng.Next(), QueueNs: rng.Next(),
			TxnNs: rng.Next(), CommitNs: rng.Next(), ReplyNs: rng.Next(),
			Commits: rng.Next(), Aborts: rng.Next(),
			AbortsWW: rng.Next(), AbortsValid: rng.Next(), AbortsLocked: rng.Next(),
			AbortsKilled: rng.Next(), AbortsExplicit: rng.Next(), AbortsUser: rng.Next(),
			LockAcquireFail: rng.Next(), AbortsValidRead: rng.Next(), AbortsValidCommit: rng.Next(),
			SrvP50Ns: rng.Next(), SrvP99Ns: rng.Next(), SrvP999Ns: rng.Next(),
			WalNs: rng.Next(), WalFrames: rng.Next(), WalBytes: rng.Next(),
			WalRecovered:    rng.Next(),
			CoalesceBatches: rng.Next(), CoalesceItems: rng.Next(),
			FeedEvents: rng.Next(), WalFsyncs: rng.Next(),
		}
	}
	return r
}

var allOps = []Op{OpGet, OpPut, OpDelete, OpCAS, OpTransfer, OpSum, OpLen, OpBatch, OpStats, OpSubscribe}

// TestReqRoundTrip encodes and decodes random requests of every op and
// requires the decoded value to be identical — and every strict prefix
// of the encoding to be rejected.
func TestReqRoundTrip(t *testing.T) {
	rng := util.NewRand(1)
	for _, op := range allOps {
		for rep := 0; rep < 50; rep++ {
			req := randReq(rng, op, true)
			enc, err := AppendReq(nil, req)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			dec, err := DecodeReq(enc)
			if err != nil {
				t.Fatalf("%v: decode: %v", op, err)
			}
			if !reflect.DeepEqual(req, dec) {
				t.Fatalf("%v: round trip mismatch:\n have %+v\n want %+v", op, dec, req)
			}
			for cut := 0; cut < len(enc); cut++ {
				if _, err := DecodeReq(enc[:cut]); err == nil {
					t.Fatalf("%v: %d-byte prefix of %d-byte encoding decoded without error", op, cut, len(enc))
				}
			}
			if _, err := DecodeReq(append(append([]byte(nil), enc...), 0xfe)); err == nil {
				t.Fatalf("%v: trailing byte accepted", op)
			}
		}
	}
}

// TestReplyRoundTrip is the reply-side twin, including error replies.
func TestReplyRoundTrip(t *testing.T) {
	rng := util.NewRand(2)
	for _, op := range allOps {
		for rep := 0; rep < 50; rep++ {
			reply := randReply(rng, op, true)
			enc, err := AppendReply(nil, reply)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			dec, err := DecodeReply(enc)
			if err != nil {
				t.Fatalf("%v: decode: %v", op, err)
			}
			want := reply
			if want.Err != "" {
				// An error reply round-trips only op + code + message.
				want = Reply{Op: reply.Op, Err: reply.Err, Code: reply.Code}
			}
			if !reflect.DeepEqual(want, dec) {
				t.Fatalf("%v: round trip mismatch:\n have %+v\n want %+v", op, dec, want)
			}
			for cut := 0; cut < len(enc); cut++ {
				if _, err := DecodeReply(enc[:cut]); err == nil {
					t.Fatalf("%v: %d-byte prefix accepted", op, cut)
				}
			}
		}
	}
	// The decode-failure reply carries OpInvalid; it must round-trip too.
	enc, err := AppendReply(nil, Reply{Op: OpInvalid, Err: "bad request", Code: CodeRejected})
	if err != nil {
		t.Fatalf("encode OpInvalid error reply: %v", err)
	}
	dec, err := DecodeReply(enc)
	if err != nil || dec.Err != "bad request" || dec.Code != CodeRejected {
		t.Fatalf("OpInvalid error reply round trip: %+v, %v", dec, err)
	}
}

// TestErrorCodeTaxonomy pins the retryable/permanent split: exactly the
// pre-execution shed codes invite a retry.
func TestErrorCodeTaxonomy(t *testing.T) {
	retryable := map[Code]bool{CodeOverloaded: true, CodeDraining: true}
	for _, c := range errCodes {
		if c.Retryable() != retryable[c] {
			t.Errorf("%v.Retryable() = %v, want %v", c, c.Retryable(), retryable[c])
		}
	}
	if CodeNone.Retryable() {
		t.Error("CodeNone must not be retryable")
	}
}

// TestReqTTLRoundTrip pins TTL encoding: sub-microsecond TTLs round up
// (a deadline must never shrink to zero in transit) and the TTL header
// survives every op.
func TestReqTTLRoundTrip(t *testing.T) {
	enc, err := AppendReq(nil, Req{Op: OpLen, TTL: 1500 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeReq(enc)
	if err != nil || dec.TTL != 2*time.Microsecond {
		t.Fatalf("sub-µs TTL: got %v, %v (want 2µs, rounded up)", dec.TTL, err)
	}
	if _, err := AppendReq(nil, Req{Op: OpLen, TTL: MaxTTL + time.Microsecond}); err == nil {
		t.Fatal("oversized TTL accepted")
	}
	if _, err := AppendReq(nil, Req{Op: OpLen, TTL: -time.Second}); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if _, err := AppendReq(nil, Req{
		Op:  OpBatch,
		Sub: []Req{{Op: OpLen, TTL: time.Second}},
	}); err == nil {
		t.Fatal("TTL on a batch sub-request accepted")
	}
}

// TestEncodeRejectsMalformed pins the encoder-side validation.
func TestEncodeRejectsMalformed(t *testing.T) {
	cases := []Req{
		{Op: OpInvalid},
		{Op: opMax},
		{Op: OpTransfer, Keys: []uint64{1}},
		{Op: OpTransfer, Keys: make([]uint64, MaxTransferKeys+1)},
		{Op: OpBatch},
		{Op: OpBatch, Sub: make([]Req, MaxBatch+1)},
		{Op: OpBatch, Sub: []Req{{Op: OpBatch, Sub: []Req{{Op: OpLen}}}}},
		{Op: OpBatch, Sub: []Req{{Op: OpStats}}},
		{Op: OpBatch, Sub: []Req{{Op: OpSubscribe}}},
	}
	for _, req := range cases {
		if _, err := AppendReq(nil, req); err == nil {
			t.Errorf("encode accepted malformed request %+v", req)
		}
	}
	if _, err := AppendReply(nil, Reply{Op: OpStats}); err == nil {
		t.Error("encode accepted stats reply without stats")
	}
	if _, err := AppendReply(nil, Reply{Op: OpBatch}); err == nil {
		t.Error("encode accepted empty batch reply")
	}
	// Typed-error discipline: no untyped errors, no codes on successes.
	if _, err := AppendReply(nil, Reply{Op: OpGet, Err: "boom"}); err == nil {
		t.Error("encode accepted an error reply without a code")
	}
	if _, err := AppendReply(nil, Reply{Op: OpGet, Err: "boom", Code: codeMax}); err == nil {
		t.Error("encode accepted an error reply with an out-of-range code")
	}
	if _, err := AppendReply(nil, Reply{Op: OpGet, Found: true, Code: CodeOverloaded}); err == nil {
		t.Error("encode accepted a success reply carrying an error code")
	}
}

// TestDecodeRejectsMalformed feeds hand-built garbage payloads. Request
// payloads lead with the flags header byte (0 = no TTL).
func TestDecodeRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                           // empty
		{0},                          // header only, no opcode
		{0, byte(opMax), 0, 0},       // unknown op
		{0, byte(OpGet), 1, 2, 3},    // truncated key
		{0, byte(OpBatch), 0, 0},     // zero-length batch
		{0, byte(OpBatch), 255, 255}, // oversized batch count
		{0, byte(OpTransfer), 0, 0, 0, 0, 0, 0, 0, 0, 1, 0}, // one transfer key
		{0xfe, byte(OpLen)},          // unknown flag bits
		{1, 0, 0, 0, 0, byte(OpLen)}, // TTL flag with zero TTL
		{1, 10, 0, 0, byte(OpLen)},   // truncated TTL
	}
	for _, payload := range bad {
		if _, err := DecodeReq(payload); err == nil {
			t.Errorf("decode accepted malformed request payload % x", payload)
		}
	}
	if _, err := DecodeReply([]byte{byte(OpGet), 7}); err == nil {
		t.Error("decode accepted reply with bad status byte")
	}
	if _, err := DecodeReply([]byte{byte(OpGet), 0, 2, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("decode accepted reply with bad bool byte")
	}
	// Error replies must carry a known code.
	if _, err := DecodeReply([]byte{byte(OpGet), 1, 0, 1, 0, 'x'}); err == nil {
		t.Error("decode accepted an error reply with code 0")
	}
	if _, err := DecodeReply([]byte{byte(OpGet), 1, byte(codeMax), 1, 0, 'x'}); err == nil {
		t.Error("decode accepted an error reply with an unknown code")
	}
}

// TestFrameRoundTrip covers the length-prefixed framing layer.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	var scratch []byte
	for _, p := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: % x != % x", got, p)
		}
		scratch = got
	}

	// Oversized length prefix: rejected before any payload read.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	// Truncated payload: io error, not a hang or panic.
	trunc := []byte{8, 0, 0, 0, 1, 2, 3}
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
}
