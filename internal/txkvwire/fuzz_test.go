package txkvwire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeReq asserts the request decoder is total: arbitrary bytes
// either decode or error, and whatever decodes must re-encode and
// decode to the same value (a decoded request is always re-encodable —
// the decoder enforces the same limits as the encoder).
func FuzzDecodeReq(f *testing.F) {
	seed := []Req{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Val: 2},
		{Op: OpDelete, Key: 3},
		{Op: OpCAS, Key: 4, Old: 5, Val: 6},
		{Op: OpTransfer, Amount: 1, Keys: []uint64{7, 8, 9}},
		{Op: OpSum, Shard: -1},
		{Op: OpLen},
		{Op: OpStats},
		{Op: OpBatch, Sub: []Req{{Op: OpPut, Key: 1, Val: 2}, {Op: OpGet, Key: 1}}},
		// Deadline header variants (DESIGN.md §13).
		{Op: OpGet, Key: 42, TTL: 50 * time.Millisecond},
		{Op: OpPut, Key: 1, Val: 2, TTL: time.Microsecond},
		{Op: OpBatch, Sub: []Req{{Op: OpLen}}, TTL: MaxTTL},
	}
	for _, r := range seed {
		enc, err := AppendReq(nil, r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x41})
	f.Add(bytes.Repeat([]byte{byte(OpBatch)}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeReq(data) // must never panic
		if err != nil {
			return
		}
		enc, err := AppendReq(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		again, err := DecodeReq(enc)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		_ = again
	})
}

// FuzzDecodeReply is the reply-side twin.
func FuzzDecodeReply(f *testing.F) {
	seed := []Reply{
		{Op: OpGet, Found: true, Val: 7},
		{Op: OpPut, OK: true},
		{Op: OpTransfer, Err: "insufficient balance", Code: CodeRejected},
		{Op: OpInvalid, Err: "bad request", Code: CodeRejected},
		{Op: OpStats, Stats: &Stats{Requests: 1, ParseNs: 2, Sheds: 3}},
		{Op: OpBatch, Sub: []Reply{{Op: OpGet, Found: false}}},
		// One seed per overload-protection code (DESIGN.md §13).
		{Op: OpPut, Err: "shed: queue full", Code: CodeOverloaded},
		{Op: OpGet, Err: "deadline expired in queue", Code: CodeDeadlineExceeded},
		{Op: OpCAS, Err: "server draining", Code: CodeDraining},
		{Op: OpTransfer, Err: "panic in body", Code: CodeInternal},
	}
	for _, r := range seed {
		enc, err := AppendReply(nil, r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	f.Add([]byte{byte(OpGet), 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		reply, err := DecodeReply(data) // must never panic
		if err != nil {
			return
		}
		if _, err := AppendReply(nil, reply); err != nil {
			t.Fatalf("decoded reply does not re-encode: %+v: %v", reply, err)
		}
	})
}

// FuzzReadFrame asserts the framing layer is total over arbitrary byte
// streams: truncated headers, truncated payloads and oversized length
// prefixes error without panicking, and an accepted frame's payload
// round-trips through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("accepted frame does not re-write: %v", err)
		}
		back, err := ReadFrame(&out, nil)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("frame round trip: %v", err)
		}
	})
}
