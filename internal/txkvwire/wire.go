// Package txkvwire defines the binary wire protocol spoken between the
// txkv network service (internal/txkvserver) and its clients
// (internal/txkvclient): length-prefixed frames carrying one request or
// one reply each, covering the store's full operation surface — point
// ops (Get/Put/Delete/CAS), the multi-key Transfer transaction, shard
// aggregates (Sum/Len), an all-or-nothing Batch that runs many sub-ops
// as one server-side transaction, and a Stats probe exposing the
// server's per-request phase timing counters (DESIGN.md §10).
//
// Framing: every message is a 4-byte little-endian payload length
// followed by the payload. Payloads are capped at MaxFrame; a frame
// announcing more is a protocol error and the connection is dropped.
// A request payload starts with a one-byte flags header (optionally
// followed by a per-request TTL) and then a one-byte opcode; a reply
// payload starts with the opcode. All integers are little-endian fixed
// width. Decoders are total: any truncated, oversized or garbage
// payload yields an error, never a panic — the fuzz targets in this
// package pin that down.
//
// Error replies are typed (DESIGN.md §13): every error carries a Code
// that tells the client whether retrying can help (Overloaded,
// Draining) or never will (Rejected, DeadlineExceeded, Internal). An
// untyped error cannot be encoded, so "the client saw an error it
// cannot classify" is a protocol violation, not a judgment call.
package txkvwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Protocol limits. Encoders refuse to produce frames outside them and
// decoders refuse to accept them, so both ends agree on what is malformed.
const (
	// MaxFrame caps a payload's size in bytes.
	MaxFrame = 1 << 20
	// MaxBatch caps the sub-requests in one batch.
	MaxBatch = 256
	// MaxTransferKeys caps the keys of one transfer.
	MaxTransferKeys = 64
	// MaxErrLen caps an error reply's message in bytes.
	MaxErrLen = 1024
	// MaxTTL caps a request's deadline TTL (the wire carries whole
	// microseconds in a uint32; anything longer is not a deadline).
	MaxTTL = time.Duration(1<<32-1) * time.Microsecond
	// MaxFeedEvents caps the change-feed events in one Subscribe reply
	// frame; a busy feed streams as many frames as it needs.
	MaxFeedEvents = 512
)

// Request payload header flags. Unknown bits are a protocol error, so
// the header can grow without silently misparsing old decoders.
const reqFlagTTL = 1 << 0

// Code classifies an error reply (DESIGN.md §13). The zero value
// CodeNone marks a non-error reply and is invalid on the wire: a
// conforming encoder refuses to emit an error reply without a code.
type Code uint8

const (
	// CodeNone is the zero value of a success reply, never sent in an
	// error reply.
	CodeNone Code = iota
	// CodeRejected is permanent: the request itself is invalid (reserved
	// key, bad shard, malformed payload) or its conditional failed
	// (batch abort). Retrying the same request returns the same answer.
	CodeRejected
	// CodeOverloaded is retryable: admission control shed the request —
	// the queue was full or the bounded queue wait expired — before any
	// transaction ran. Retry after backing off.
	CodeOverloaded
	// CodeDeadlineExceeded is permanent for this request: its deadline
	// expired before a pool thread picked it up. The time budget is the
	// caller's; once spent, re-sending the same budget cannot help.
	CodeDeadlineExceeded
	// CodeDraining is retryable (elsewhere): the server is shutting down
	// gracefully and stopped admitting work. No transaction ran.
	CodeDraining
	// CodeInternal is permanent: a server-side failure (panic out of a
	// transaction body, commit-log append failure, unencodable reply).
	// The op may or may not have applied; it was not acknowledged.
	CodeInternal

	codeMax
)

// Retryable reports whether the error is worth retrying: the server
// shed the request before executing it and expects to recover.
func (c Code) Retryable() bool {
	return c == CodeOverloaded || c == CodeDraining
}

// String names the code for error messages and metric labels.
func (c Code) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeRejected:
		return "rejected"
	case CodeOverloaded:
		return "overloaded"
	case CodeDeadlineExceeded:
		return "deadline_exceeded"
	case CodeDraining:
		return "draining"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// Op identifies a request (and echoes in its reply).
type Op uint8

const (
	// OpInvalid is never sent as a request; replies use it when the
	// request's opcode could not even be decoded.
	OpInvalid Op = iota
	// OpGet reads one key. Reply: Found + Val.
	OpGet
	// OpPut writes Key → Val. Reply: OK (true when newly inserted).
	OpPut
	// OpDelete removes Key. Reply: OK (true when it existed).
	OpDelete
	// OpCAS swaps Key's value Old → Val when it currently equals Old.
	// Reply: OK (true when swapped).
	OpCAS
	// OpTransfer moves Amount from Keys[0] to each of Keys[1:] in one
	// transaction. Reply: OK (true when the transfer applied).
	OpTransfer
	// OpSum sums the values of one shard (Shard ≥ 0) or the whole store
	// (Shard == -1). Reply: Val.
	OpSum
	// OpLen counts the stored keys. Reply: Val.
	OpLen
	// OpBatch runs Sub as one all-or-nothing transaction: a failing
	// conditional sub-op (CAS miss, insufficient transfer, delete of an
	// absent key) rolls the whole batch back and the reply is an error
	// naming the failing index. Reply: Sub.
	OpBatch
	// OpStats returns the server's cumulative request/phase counters.
	// Reply: Stats.
	OpStats
	// OpSubscribe tails one shard's change feed (Shard, From). The
	// server acknowledges with an empty-Events reply, then streams one
	// reply frame per event batch on the same connection until the
	// subscriber disconnects or the server drains (a final error frame
	// with CodeDraining). No further requests are read from a
	// subscribed connection.
	OpSubscribe

	opMax
)

// String names the opcode for error messages and logs.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCAS:
		return "cas"
	case OpTransfer:
		return "transfer"
	case OpSum:
		return "sum"
	case OpLen:
		return "len"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpSubscribe:
		return "subscribe"
	case OpInvalid:
		return "invalid"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Req is one decoded request. Only the fields of its Op are meaningful.
type Req struct {
	Op     Op
	Key    uint64   // Get, Put, Delete, CAS
	Val    uint64   // Put value, CAS new value
	Old    uint64   // CAS expected value
	Amount uint64   // Transfer
	Keys   []uint64 // Transfer: source + destinations
	Shard  int32    // Sum: shard index, -1 = whole store; Subscribe: shard to tail
	Sub    []Req    // Batch sub-requests (no nesting)
	From   uint64   // Subscribe: first feed sequence wanted (0 = from now)

	// TTL is the request's remaining deadline budget when it left the
	// client (0 = none). The server anchors it at decode time: a request
	// still queued for a pool thread when arrival+TTL passes is dropped
	// with CodeDeadlineExceeded instead of executing late. Microsecond
	// wire resolution; top-level requests only (not batch sub-requests).
	TTL time.Duration
}

// Reply is one decoded reply. Err != "" marks an error reply; Code then
// classifies it (always a valid non-None code on the wire) and all
// other fields are zero.
type Reply struct {
	Op    Op
	Err   string
	Code  Code    // error class; CodeNone iff Err == ""
	Found bool    // Get
	Val   uint64  // Get value, Sum, Len
	OK    bool    // Put, Delete, CAS, Transfer
	Sub   []Reply // Batch
	Stats *Stats  // Stats
	// Events carries a Subscribe stream frame's change-feed batch. The
	// subscription ack frame has zero events; stream frames carry
	// 1..MaxFeedEvents each.
	Events []FeedEvent
}

// FeedEvent is one committed mutation in a shard's change feed
// (DESIGN.md §14.4): a write with its post-image value, or a delete.
// Seq is the shard-local commit sequence number, contiguous from 1.
type FeedEvent struct {
	Seq uint64
	Del bool
	Key uint64
	Val uint64 // zero for deletes
}

// Stats is the server's cumulative counter snapshot: flat per-request
// phase nanosecond sums (divide by Requests for means) plus the engine's
// commit/abort totals across the server's thread pool, the raw
// abort-cause taxonomy counters (DESIGN.md §11; they partition Aborts,
// so clients may diff them like every other cumulative field), and the
// server-lifetime request-latency percentiles. The percentile fields
// are point-in-time quantile reads of the server's whole-life latency
// histogram — NOT cumulative, so they must not be diffed; a load run
// wanting run-scoped percentiles reads them from its final snapshot of
// a server started for that run.
type Stats struct {
	Requests uint64 // requests fully served (reply flushed)
	ParseNs  uint64 // frame decode
	QueueNs  uint64 // wait for an engine thread
	TxnNs    uint64 // transaction body (final attempt)
	CommitNs uint64 // begin/commit/retry remainder of the atomic call
	ReplyNs  uint64 // reply encode + write + flush
	WalNs    uint64 // commit-log append (publish → durable; 0 with the WAL off)
	Commits  uint64 // engine transactions committed
	Aborts   uint64 // engine transactions aborted

	// Durable commit log counters (DESIGN.md §12; all zero with the WAL
	// off). Cumulative like the phase sums.
	WalFrames    uint64 // redo frames appended
	WalBytes     uint64 // frame bytes appended
	WalRecovered uint64 // frames replayed by recovery at server start

	// Raw stm.Stats abort-cause counters (their sum equals Aborts).
	AbortsWW        uint64 // eager write/write arbitration losses
	AbortsValid     uint64 // validation failures (read- + commit-time)
	AbortsLocked    uint64 // read of a locked location
	AbortsKilled    uint64 // killed by another thread's contention manager
	AbortsExplicit  uint64 // user-requested Restart
	AbortsUser      uint64 // user-level errors delivered via AtomicErr
	LockAcquireFail uint64 // commit-time lock acquisition conflicts
	// Validation split: AbortsValidRead + AbortsValidCommit == AbortsValid.
	AbortsValidRead   uint64 // failed mid-body (read-time extension/validation)
	AbortsValidCommit uint64 // failed at commit-time validation

	// Server-lifetime request latency percentiles (ns, histogram upper
	// bounds, ≤12.5% relative error). Not cumulative: do not diff.
	SrvP50Ns  uint64
	SrvP99Ns  uint64
	SrvP999Ns uint64

	// Overload-protection counters (DESIGN.md §13). Cumulative.
	Sheds            uint64 // requests shed by admission control (Overloaded + Draining replies)
	DeadlineExceeded uint64 // requests dropped because their deadline expired pre-execution
	ConnsRejected    uint64 // connections refused at the MaxConns limit

	// Commit-coalescing and change-feed counters (DESIGN.md §14; zero
	// with coalescing off, except FeedEvents which every mutating path
	// publishes). Cumulative.
	CoalesceBatches uint64 // batch flushes executed (one engine txn each)
	CoalesceItems   uint64 // single-key ops executed inside flushes
	FeedEvents      uint64 // change-feed events published across all shards
	WalFsyncs       uint64 // commit-log fsync batches (group/always modes)
}

// ErrFrameTooLarge reports a frame length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("txkvwire: frame exceeds MaxFrame")

// ---------------------------------------------------------------------------
// Framing

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is
// large enough. A length prefix above MaxFrame returns ErrFrameTooLarge
// without reading the payload (the caller must drop the connection: the
// stream is no longer frame-aligned).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Request encoding

// AppendReq appends r's payload encoding to dst. It validates the
// request against the protocol limits so a conforming encoder can never
// emit a frame a conforming decoder rejects. The payload leads with a
// one-byte flags header carrying the optional TTL.
func AppendReq(dst []byte, r Req) ([]byte, error) {
	if r.TTL < 0 || r.TTL > MaxTTL {
		return nil, fmt.Errorf("txkvwire: request TTL %v out of range (0..%v)", r.TTL, MaxTTL)
	}
	if r.TTL > 0 {
		dst = append(dst, reqFlagTTL)
		us := uint32((r.TTL + time.Microsecond - 1) / time.Microsecond)
		dst = binary.LittleEndian.AppendUint32(dst, us)
	} else {
		dst = append(dst, 0)
	}
	return appendReq(dst, r, true)
}

func appendReq(dst []byte, r Req, batchOK bool) ([]byte, error) {
	if !batchOK && r.TTL != 0 {
		// The deadline belongs to the whole request; a per-sub-op TTL
		// would be meaningless inside one atomic batch.
		return nil, errors.New("txkvwire: TTL on a batch sub-request")
	}
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpGet, OpDelete:
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
	case OpPut:
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	case OpCAS:
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		dst = binary.LittleEndian.AppendUint64(dst, r.Old)
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	case OpTransfer:
		if len(r.Keys) < 2 || len(r.Keys) > MaxTransferKeys {
			return nil, fmt.Errorf("txkvwire: transfer with %d keys (want 2..%d)", len(r.Keys), MaxTransferKeys)
		}
		dst = binary.LittleEndian.AppendUint64(dst, r.Amount)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Keys)))
		for _, k := range r.Keys {
			dst = binary.LittleEndian.AppendUint64(dst, k)
		}
	case OpSum:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Shard))
	case OpLen, OpStats:
		// opcode only
	case OpSubscribe:
		if !batchOK {
			return nil, errors.New("txkvwire: subscribe inside a batch")
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Shard))
		dst = binary.LittleEndian.AppendUint64(dst, r.From)
	case OpBatch:
		if !batchOK {
			return nil, errors.New("txkvwire: nested batch")
		}
		if len(r.Sub) == 0 || len(r.Sub) > MaxBatch {
			return nil, fmt.Errorf("txkvwire: batch with %d sub-requests (want 1..%d)", len(r.Sub), MaxBatch)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Sub)))
		for _, sub := range r.Sub {
			if sub.Op == OpStats || sub.Op == OpSubscribe {
				return nil, fmt.Errorf("txkvwire: %v inside a batch", sub.Op)
			}
			var err error
			if dst, err = appendReq(dst, sub, false); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("txkvwire: unknown request op %d", r.Op)
	}
	if len(dst) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return dst, nil
}

// DecodeReq decodes one request payload. The whole payload must be
// consumed: trailing bytes are a protocol error.
func DecodeReq(payload []byte) (Req, error) {
	c := cursor{b: payload}
	flags := c.u8()
	if c.err == nil && flags&^byte(reqFlagTTL) != 0 {
		c.fail(fmt.Errorf("txkvwire: unknown request flags %#x", flags))
	}
	var ttl time.Duration
	if c.err == nil && flags&reqFlagTTL != 0 {
		us := c.u32()
		if c.err == nil && us == 0 {
			c.fail(errors.New("txkvwire: TTL flag with zero TTL"))
		}
		ttl = time.Duration(us) * time.Microsecond
	}
	r := decodeReq(&c, true)
	r.TTL = ttl
	if c.err != nil {
		return Req{}, c.err
	}
	if c.off != len(payload) {
		return Req{}, fmt.Errorf("txkvwire: %d trailing bytes after request", len(payload)-c.off)
	}
	return r, nil
}

func decodeReq(c *cursor, batchOK bool) Req {
	r := Req{Op: Op(c.u8())}
	switch r.Op {
	case OpGet, OpDelete:
		r.Key = c.u64()
	case OpPut:
		r.Key, r.Val = c.u64(), c.u64()
	case OpCAS:
		r.Key, r.Old, r.Val = c.u64(), c.u64(), c.u64()
	case OpTransfer:
		r.Amount = c.u64()
		n := int(c.u16())
		if c.err == nil && (n < 2 || n > MaxTransferKeys) {
			c.fail(fmt.Errorf("txkvwire: transfer with %d keys (want 2..%d)", n, MaxTransferKeys))
			return r
		}
		for i := 0; i < n && c.err == nil; i++ {
			r.Keys = append(r.Keys, c.u64())
		}
	case OpSum:
		r.Shard = int32(c.u32())
	case OpLen, OpStats:
		// opcode only
	case OpSubscribe:
		if !batchOK {
			c.fail(errors.New("txkvwire: subscribe inside a batch"))
			return r
		}
		r.Shard = int32(c.u32())
		r.From = c.u64()
	case OpBatch:
		if !batchOK {
			c.fail(errors.New("txkvwire: nested batch"))
			return r
		}
		n := int(c.u16())
		if c.err == nil && (n < 1 || n > MaxBatch) {
			c.fail(fmt.Errorf("txkvwire: batch with %d sub-requests (want 1..%d)", n, MaxBatch))
			return r
		}
		for i := 0; i < n && c.err == nil; i++ {
			sub := decodeReq(c, false)
			if sub.Op == OpStats || sub.Op == OpSubscribe {
				c.fail(fmt.Errorf("txkvwire: %v inside a batch", sub.Op))
				return r
			}
			r.Sub = append(r.Sub, sub)
		}
	default:
		c.fail(fmt.Errorf("txkvwire: unknown request op %d", r.Op))
	}
	return r
}

// ---------------------------------------------------------------------------
// Reply encoding

// AppendReply appends r's payload encoding to dst. Error replies carry
// only the opcode (OpInvalid allowed there), the error code and the
// message; encoding an error without a valid code is refused, so an
// untyped error can never reach the wire.
func AppendReply(dst []byte, r Reply) ([]byte, error) {
	return appendReply(dst, r, true)
}

func appendReply(dst []byte, r Reply, batchOK bool) ([]byte, error) {
	dst = append(dst, byte(r.Op))
	if r.Err != "" {
		if r.Code == CodeNone || r.Code >= codeMax {
			return nil, fmt.Errorf("txkvwire: error reply without a valid code (%d): %q", r.Code, r.Err)
		}
		msg := r.Err
		if len(msg) > MaxErrLen {
			msg = msg[:MaxErrLen]
		}
		dst = append(dst, 1, byte(r.Code))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
		dst = append(dst, msg...)
		return dst, nil
	}
	if r.Code != CodeNone {
		return nil, fmt.Errorf("txkvwire: code %v on a success reply", r.Code)
	}
	dst = append(dst, 0)
	switch r.Op {
	case OpGet:
		dst = appendBool(dst, r.Found)
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	case OpPut, OpDelete, OpCAS, OpTransfer:
		dst = appendBool(dst, r.OK)
	case OpSum, OpLen:
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	case OpBatch:
		if !batchOK {
			return nil, errors.New("txkvwire: nested batch reply")
		}
		if len(r.Sub) == 0 || len(r.Sub) > MaxBatch {
			return nil, fmt.Errorf("txkvwire: batch reply with %d sub-replies (want 1..%d)", len(r.Sub), MaxBatch)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Sub)))
		for _, sub := range r.Sub {
			var err error
			if dst, err = appendReply(dst, sub, false); err != nil {
				return nil, err
			}
		}
	case OpStats:
		if r.Stats == nil {
			return nil, errors.New("txkvwire: stats reply without stats")
		}
		for _, v := range []uint64{
			r.Stats.Requests, r.Stats.ParseNs, r.Stats.QueueNs,
			r.Stats.TxnNs, r.Stats.CommitNs, r.Stats.ReplyNs,
			r.Stats.Commits, r.Stats.Aborts,
			r.Stats.AbortsWW, r.Stats.AbortsValid, r.Stats.AbortsLocked,
			r.Stats.AbortsKilled, r.Stats.AbortsExplicit, r.Stats.AbortsUser,
			r.Stats.LockAcquireFail, r.Stats.AbortsValidRead, r.Stats.AbortsValidCommit,
			r.Stats.SrvP50Ns, r.Stats.SrvP99Ns, r.Stats.SrvP999Ns,
			r.Stats.WalNs, r.Stats.WalFrames, r.Stats.WalBytes, r.Stats.WalRecovered,
			r.Stats.Sheds, r.Stats.DeadlineExceeded, r.Stats.ConnsRejected,
			r.Stats.CoalesceBatches, r.Stats.CoalesceItems,
			r.Stats.FeedEvents, r.Stats.WalFsyncs,
		} {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	case OpSubscribe:
		if len(r.Events) > MaxFeedEvents {
			return nil, fmt.Errorf("txkvwire: subscribe reply with %d events (max %d)", len(r.Events), MaxFeedEvents)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Events)))
		for _, e := range r.Events {
			dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
			dst = appendBool(dst, e.Del)
			dst = binary.LittleEndian.AppendUint64(dst, e.Key)
			dst = binary.LittleEndian.AppendUint64(dst, e.Val)
		}
	default:
		return nil, fmt.Errorf("txkvwire: unknown reply op %d", r.Op)
	}
	if len(dst) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return dst, nil
}

// DecodeReply decodes one reply payload; the whole payload must be
// consumed.
func DecodeReply(payload []byte) (Reply, error) {
	c := cursor{b: payload}
	r := decodeReply(&c, true)
	if c.err != nil {
		return Reply{}, c.err
	}
	if c.off != len(payload) {
		return Reply{}, fmt.Errorf("txkvwire: %d trailing bytes after reply", len(payload)-c.off)
	}
	return r, nil
}

func decodeReply(c *cursor, batchOK bool) Reply {
	r := Reply{Op: Op(c.u8())}
	status := c.u8()
	if c.err != nil {
		return r
	}
	switch status {
	case 1:
		code := Code(c.u8())
		if c.err == nil && (code == CodeNone || code >= codeMax) {
			c.fail(fmt.Errorf("txkvwire: error reply with unknown code %d", code))
			return r
		}
		n := int(c.u16())
		if c.err == nil && (n < 1 || n > MaxErrLen) {
			c.fail(fmt.Errorf("txkvwire: error reply with %d-byte message (want 1..%d)", n, MaxErrLen))
			return r
		}
		r.Code = code
		r.Err = string(c.bytes(n))
		return r
	case 0:
		// fall through to the per-op body
	default:
		c.fail(fmt.Errorf("txkvwire: bad reply status %d", status))
		return r
	}
	switch r.Op {
	case OpGet:
		r.Found = c.bool()
		r.Val = c.u64()
	case OpPut, OpDelete, OpCAS, OpTransfer:
		r.OK = c.bool()
	case OpSum, OpLen:
		r.Val = c.u64()
	case OpBatch:
		if !batchOK {
			c.fail(errors.New("txkvwire: nested batch reply"))
			return r
		}
		n := int(c.u16())
		if c.err == nil && (n < 1 || n > MaxBatch) {
			c.fail(fmt.Errorf("txkvwire: batch reply with %d sub-replies (want 1..%d)", n, MaxBatch))
			return r
		}
		for i := 0; i < n && c.err == nil; i++ {
			r.Sub = append(r.Sub, decodeReply(c, false))
		}
	case OpStats:
		s := &Stats{}
		for _, p := range []*uint64{
			&s.Requests, &s.ParseNs, &s.QueueNs,
			&s.TxnNs, &s.CommitNs, &s.ReplyNs,
			&s.Commits, &s.Aborts,
			&s.AbortsWW, &s.AbortsValid, &s.AbortsLocked,
			&s.AbortsKilled, &s.AbortsExplicit, &s.AbortsUser,
			&s.LockAcquireFail, &s.AbortsValidRead, &s.AbortsValidCommit,
			&s.SrvP50Ns, &s.SrvP99Ns, &s.SrvP999Ns,
			&s.WalNs, &s.WalFrames, &s.WalBytes, &s.WalRecovered,
			&s.Sheds, &s.DeadlineExceeded, &s.ConnsRejected,
			&s.CoalesceBatches, &s.CoalesceItems,
			&s.FeedEvents, &s.WalFsyncs,
		} {
			*p = c.u64()
		}
		if c.err == nil {
			r.Stats = s
		}
	case OpSubscribe:
		n := int(c.u16())
		if c.err == nil && n > MaxFeedEvents {
			c.fail(fmt.Errorf("txkvwire: subscribe reply with %d events (max %d)", n, MaxFeedEvents))
			return r
		}
		for i := 0; i < n && c.err == nil; i++ {
			var e FeedEvent
			e.Seq = c.u64()
			e.Del = c.bool()
			e.Key = c.u64()
			e.Val = c.u64()
			r.Events = append(r.Events, e)
		}
	default:
		c.fail(fmt.Errorf("txkvwire: unknown reply op %d", r.Op))
	}
	return r
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ---------------------------------------------------------------------------
// Bounds-checked decode cursor. Every accessor records the first error
// and returns zero values afterwards, so decoders are straight-line code
// with one error check at the end — and cannot index out of bounds.

type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if len(c.b)-c.off < n {
		c.fail(fmt.Errorf("txkvwire: truncated payload (need %d bytes at offset %d of %d)", n, c.off, len(c.b)))
		return false
	}
	return true
}

func (c *cursor) u8() byte {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) bool() bool {
	v := c.u8()
	if c.err == nil && v > 1 {
		c.fail(fmt.Errorf("txkvwire: bad bool byte %d", v))
	}
	return v == 1
}

func (c *cursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int) []byte {
	if n < 0 || !c.need(n) {
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}
