// Package stmtest is a conformance and stress suite run against every STM
// engine in the repository. It checks the semantic guarantees the paper
// assumes of all four systems (§3.1): atomicity, isolation, opacity
// (transactions never observe inconsistent snapshots), and
// read-your-writes, plus engine liveness under contention. The suite is
// written against the v2 value-returning API (DESIGN.md §9), so it also
// exercises the typed entry points on every engine.
package stmtest

import (
	"sync"
	"testing"
	"testing/quick"

	"swisstm/internal/stm"
)

// Options configures the conformance run for one engine.
type Options struct {
	// WordAPI is true for word-based engines (SwissTM, TL2, TinySTM);
	// object-based RSTM skips word-API tests, as in the paper (STAMP
	// cannot run on RSTM for the same reason).
	WordAPI bool
	// Threads caps the concurrency of the stress tests.
	Threads int
}

// Run executes the full conformance suite. factory must return a fresh
// engine per call.
func Run(t *testing.T, factory func() stm.STM, opts Options) {
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	t.Run("ReadYourWrites", func(t *testing.T) { testReadYourWrites(t, factory()) })
	t.Run("ObjectRoundTrip", func(t *testing.T) { testObjectRoundTrip(t, factory()) })
	t.Run("CommitPublishes", func(t *testing.T) { testCommitPublishes(t, factory()) })
	t.Run("CountersParallel", func(t *testing.T) { testCounters(t, factory(), opts.Threads) })
	t.Run("BankConservation", func(t *testing.T) { testBank(t, factory(), opts.Threads) })
	t.Run("OpacityPairs", func(t *testing.T) { testOpacity(t, factory(), opts.Threads) })
	t.Run("DisjointScaling", func(t *testing.T) { testDisjoint(t, factory(), opts.Threads) })
	t.Run("WriteSkewPrevented", func(t *testing.T) { testNoWriteSkew(t, factory(), opts.Threads) })
	t.Run("QuickModelCheck", func(t *testing.T) { testQuickModel(t, factory) })
	if opts.WordAPI {
		if !stm.SupportsWordAPI(factory()) {
			t.Fatal("options claim word-API support but the engine denies it")
		}
		t.Run("WordAPI", func(t *testing.T) { testWordAPI(t, factory()) })
	} else if stm.SupportsWordAPI(factory()) {
		t.Fatal("options claim no word-API support but the engine reports it")
	}
	t.Run("APIV2", func(t *testing.T) { APIV2Suite(t, factory, opts) })
}

// alloc creates an n-field object outside any transaction by running a
// tiny allocation-only transaction.
func alloc(th stm.Thread, n uint32) stm.Handle {
	return stm.Atomic(th, func(tx stm.Tx) stm.Handle { return tx.NewObject(n) })
}

// readField reads one field in its own read-only transaction.
func readField(th stm.Thread, h stm.Handle, f uint32) stm.Word {
	return stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { return tx.ReadField(h, f) })
}

func testReadYourWrites(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 4)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.WriteField(h, 0, 41)
		tx.WriteField(h, 1, 17)
		if got := tx.ReadField(h, 0); got != 41 {
			t.Fatalf("read-after-write field 0: got %d, want 41", got)
		}
		tx.WriteField(h, 0, 42)
		if got := tx.ReadField(h, 0); got != 42 {
			t.Fatalf("overwrite not visible: got %d, want 42", got)
		}
		if got := tx.ReadField(h, 1); got != 17 {
			t.Fatalf("read-after-write field 1: got %d, want 17", got)
		}
		// Field 2 was never written in this transaction: must read the
		// pre-transaction value (zero) even though fields 0-1 of the same
		// object (possibly the same lock stripe) are written.
		if got := tx.ReadField(h, 2); got != 0 {
			t.Fatalf("unwritten field: got %d, want 0", got)
		}
	})
	if got := readField(th, h, 0); got != 42 {
		t.Fatalf("after commit: got %d, want 42", got)
	}
}

func testObjectRoundTrip(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	const fields = 16
	h := alloc(th, fields)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < fields; i++ {
			tx.WriteField(h, i, stm.Word(i*i+1))
		}
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < fields; i++ {
			if got := tx.ReadField(h, i); got != stm.Word(i*i+1) {
				t.Fatalf("field %d: got %d, want %d", i, got, i*i+1)
			}
		}
	})
}

func testCommitPublishes(t *testing.T, e stm.STM) {
	th0 := e.NewThread(0)
	th1 := e.NewThread(1)
	h := alloc(th0, 1)
	stm.AtomicVoid(th0, func(tx stm.Tx) { tx.WriteField(h, 0, 7) })
	if got := readField(th1, h, 0); got != 7 {
		t.Fatalf("thread 1 read %d, want 7", got)
	}
}

// testCounters hammers a single shared counter from all threads; the final
// value must equal the total number of increments (atomicity + isolation).
func testCounters(t *testing.T, e stm.STM, threads int) {
	th0 := e.NewThread(0)
	h := alloc(th0, 1)
	const perThread = 2000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for n := 0; n < perThread; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					tx.WriteField(h, 0, tx.ReadField(h, 0)+1)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := readField(th0, h, 0); got != stm.Word(threads*perThread) {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
}

// testBank moves money between random accounts; the total must be
// conserved at every observation point.
func testBank(t *testing.T, e stm.STM, threads int) {
	const accounts = 32
	const initial = 1000
	th0 := e.NewThread(0)
	h := alloc(th0, accounts)
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		for i := uint32(0); i < accounts; i++ {
			tx.WriteField(h, i, initial)
		}
	})
	sumAll := func(th stm.Thread) stm.Word {
		// The audit scan is a declared read-only transaction, so the
		// conservation oracle also exercises the RO fast paths.
		return stm.AtomicRO(th, func(tx stm.TxRO) stm.Word {
			var sum stm.Word
			for i := uint32(0); i < accounts; i++ {
				sum += tx.ReadField(h, i)
			}
			return sum
		})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			seed := uint64(id)*2654435761 + 12345
			for n := 0; n < 3000; n++ {
				seed = seed*6364136223846793005 + 1
				from := uint32(seed>>33) % accounts
				to := uint32(seed>>13) % accounts
				stm.AtomicVoid(th, func(tx stm.Tx) {
					bal := tx.ReadField(h, from)
					if bal == 0 {
						return
					}
					tx.WriteField(h, from, bal-1)
					tx.WriteField(h, to, tx.ReadField(h, to)+1)
				})
			}
		}(i)
	}
	// A concurrent auditor keeps summing; every snapshot must conserve the
	// total (atomicity of transfers + opacity of the read-only scan).
	auditor := e.NewThread(threads + 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sum := sumAll(auditor); sum != accounts*initial {
				t.Errorf("mid-run audit: sum = %d, want %d", sum, accounts*initial)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if sum := sumAll(th0); sum != accounts*initial {
		t.Fatalf("final sum = %d, want %d", sum, accounts*initial)
	}
}

// testOpacity updates pairs of words together; a reader inside a
// transaction must never see the two halves differ, even transiently —
// the opacity guarantee of §3.1 (no stale values, no inconsistent reads).
func testOpacity(t *testing.T, e stm.STM, threads int) {
	const pairs = 8
	th0 := e.NewThread(0)
	hs := make([]stm.Handle, pairs)
	for i := range hs {
		hs[i] = alloc(th0, 2)
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			seed := uint64(id+1) * 40503
			for n := 0; n < 2000; n++ {
				seed = seed*6364136223846793005 + 1
				p := hs[seed%pairs]
				if seed&1 == 0 {
					stm.AtomicVoid(th, func(tx stm.Tx) {
						v := tx.ReadField(p, 0) + 1
						tx.WriteField(p, 0, v)
						tx.WriteField(p, 1, v)
					})
				} else {
					a, b := pairRead(th, p)
					if a != b {
						t.Errorf("opacity violation: pair halves %d != %d", a, b)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// pairRead reads both halves of a pair in one read-only transaction.
func pairRead(th stm.Thread, p stm.Handle) (stm.Word, stm.Word) {
	v := stm.AtomicRO(th, func(tx stm.TxRO) [2]stm.Word {
		return [2]stm.Word{tx.ReadField(p, 0), tx.ReadField(p, 1)}
	})
	return v[0], v[1]
}

// testDisjoint runs threads on disjoint objects; nothing conflicts, so all
// work must complete with a final per-thread value intact.
func testDisjoint(t *testing.T, e stm.STM, threads int) {
	th0 := e.NewThread(0)
	hs := make([]stm.Handle, threads)
	for i := range hs {
		hs[i] = alloc(th0, 1)
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for n := 0; n < 5000; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					tx.WriteField(hs[id], 0, tx.ReadField(hs[id], 0)+1)
				})
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < threads; i++ {
		if got := readField(th0, hs[i], 0); got != 5000 {
			t.Fatalf("disjoint counter %d = %d, want 5000", i, got)
		}
	}
}

// testNoWriteSkew checks serializability on the classic write-skew shape:
// two accounts, invariant a+b ≥ 0, each transaction checks the sum then
// withdraws from one side. Under snapshot isolation the invariant breaks;
// under the serializability/opacity all four engines provide, it must hold.
func testNoWriteSkew(t *testing.T, e stm.STM, threads int) {
	th0 := e.NewThread(0)
	h := alloc(th0, 2)
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		tx.WriteField(h, 0, 100)
		tx.WriteField(h, 1, 100)
	})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			side := uint32(id % 2)
			for n := 0; n < 1000; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					a := int64(tx.ReadField(h, 0))
					b := int64(tx.ReadField(h, 1))
					if a+b >= 10 {
						tx.WriteField(h, side, stm.Word(int64(tx.ReadField(h, side))-10))
					}
				})
			}
		}(i)
	}
	wg.Wait()
	a, b := pairRead(th0, h)
	if int64(a)+int64(b) < 0 {
		t.Fatalf("write skew: a+b = %d < 0 (a=%d b=%d)", int64(a)+int64(b), int64(a), int64(b))
	}
}

// testQuickModel drives a fresh engine with random single-threaded
// operation sequences and compares against a map model (testing/quick).
func testQuickModel(t *testing.T, factory func() stm.STM) {
	check := func(ops []uint16) bool {
		e := factory()
		th := e.NewThread(0)
		const slots = 16
		h := alloc(th, slots)
		model := make(map[uint32]stm.Word, slots)
		for _, op := range ops {
			slot := uint32(op) % slots
			val := stm.Word(op >> 4)
			if op&1 == 0 {
				stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, slot, val) })
				model[slot] = val
			} else if got := readField(th, h, slot); got != model[slot] {
				return false
			}
		}
		// Final full scan in one read-only transaction.
		return stm.AtomicRO(th, func(tx stm.TxRO) bool {
			for s := uint32(0); s < slots; s++ {
				if tx.ReadField(h, s) != model[s] {
					return false
				}
			}
			return true
		})
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func testWordAPI(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	base := stm.Atomic(th, func(tx stm.Tx) stm.Addr {
		b := tx.AllocWords(8)
		for i := uint32(0); i < 8; i++ {
			tx.Store(b+i, stm.Word(100+i))
		}
		return b
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < 8; i++ {
			if got := tx.Load(base + i); got != stm.Word(100+i) {
				t.Fatalf("word %d: got %d, want %d", i, got, 100+i)
			}
		}
		tx.Store(base, 999)
		if got := tx.Load(base); got != 999 {
			t.Fatalf("word read-after-write: got %d, want 999", got)
		}
	})
	if got := e.Arena().Load(base); got != 999 {
		t.Fatalf("raw arena read: got %d, want 999", got)
	}
}
