package stmtest

import (
	"testing"

	"swisstm/internal/obs"
	"swisstm/internal/stm"
)

// ZeroAllocSteadyStateObs is ZeroAllocSteadyState with the engine's
// per-transaction telemetry armed: the caller builds e with an
// obs.TxnObs wired into the engine config and passes the same TxnObs
// here. On top of the 0 allocs/op bound it asserts the instrumentation
// actually ran — a commit histogram that stayed empty would mean the
// test silently measured the uninstrumented path.
func ZeroAllocSteadyStateObs(t *testing.T, e stm.STM, o *obs.TxnObs, wordAPI, updates bool) {
	t.Helper()
	ZeroAllocSteadyState(t, e, wordAPI, updates)
	m := o.Merged()
	if m.Retries.Count == 0 {
		t.Errorf("%s: obs enabled but no commits recorded — instrumented path not exercised", e.Name())
	}
	if m.ReadSet.Count != m.Retries.Count || m.WriteSet.Count != m.Retries.Count {
		t.Errorf("%s: obs histograms out of step: retries=%d readset=%d writeset=%d",
			e.Name(), m.Retries.Count, m.ReadSet.Count, m.WriteSet.Count)
	}
}

// AbortCausePartition drives every abort cause the engine can produce
// and asserts the taxonomy partition invariants of DESIGN.md §11 on
// the summed per-thread stats:
//
//	Aborts == Causes().Total()
//	AbortsValid == AbortsValidRead + AbortsValidCommit
//	Aborts == AbortsUnwound + AbortsReturned
//
// The workload mixes contended cross-thread increments (forcing
// conflict aborts of whatever flavors the engine's protocol emits),
// explicit restarts, and user errors. Run under -race via the engine
// packages' dedicated race pass.
func AbortCausePartition(t *testing.T, e stm.STM) {
	t.Helper()
	const (
		threads = 4
		iters   = 300
	)
	handles := stm.Atomic(e.NewThread(0), func(tx stm.Tx) [2]stm.Handle {
		var hs [2]stm.Handle
		for i := range hs {
			hs[i] = tx.NewObject(1)
		}
		return hs
	})

	done := make(chan stm.Stats, threads)
	for w := 0; w < threads; w++ {
		go func(worker int) {
			th := e.NewThread(worker + 1)
			for i := 0; i < iters; i++ {
				// Opposite acquisition orders across workers force
				// conflicts; the engines resolve them differently
				// (eager W/W, locked reads, commit validation, CM
				// kills) — the partition must hold regardless.
				a, b := 0, 1
				if worker%2 == 1 {
					a, b = 1, 0
				}
				stm.AtomicVoid(th, func(tx stm.Tx) {
					va := tx.ReadField(handles[a], 0)
					vb := tx.ReadField(handles[b], 0)
					tx.WriteField(handles[a], 0, va+1)
					tx.WriteField(handles[b], 0, vb+1)
				})
				if i%37 == 0 {
					// Explicit restart on the first attempt only.
					restarted := false
					stm.AtomicVoid(th, func(tx stm.Tx) {
						if !restarted {
							restarted = true
							tx.Restart()
						}
						_ = tx.ReadField(handles[0], 0)
					})
				}
				if i%53 == 0 {
					if _, err := stm.AtomicErr(th, func(tx stm.Tx) (struct{}, error) {
						_ = tx.ReadField(handles[0], 0)
						return struct{}{}, errUser
					}); err != errUser {
						t.Errorf("user error not delivered: %v", err)
					}
				}
			}
			done <- th.Stats()
		}(w)
	}
	var sum stm.Stats
	for w := 0; w < threads; w++ {
		sum.Add(<-done)
	}

	if sum.AbortsExplicit == 0 || sum.AbortsUser == 0 {
		t.Fatalf("%s: workload did not exercise explicit/user aborts: %+v", e.Name(), sum)
	}
	if got := sum.Causes().Total(); got != sum.Aborts {
		t.Errorf("%s: abort-cause partition violated: sum(causes)=%d, Aborts=%d (%+v)",
			e.Name(), got, sum.Aborts, sum.Causes())
	}
	if sum.AbortsValidRead+sum.AbortsValidCommit != sum.AbortsValid {
		t.Errorf("%s: validation split violated: read=%d + commit=%d != valid=%d",
			e.Name(), sum.AbortsValidRead, sum.AbortsValidCommit, sum.AbortsValid)
	}
	if sum.AbortsUnwound+sum.AbortsReturned != sum.Aborts {
		t.Errorf("%s: delivery split violated: unwound=%d + returned=%d != aborts=%d",
			e.Name(), sum.AbortsUnwound, sum.AbortsReturned, sum.Aborts)
	}
}

// errUser is the sentinel user error AbortCausePartition returns from
// transaction bodies.
var errUser = errSentinel("stmtest: user abort")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
