package stmtest

import (
	"testing"

	"swisstm/internal/stm"
)

// ZeroAllocSteadyState asserts the allocation-free transaction lifecycle
// invariant of DESIGN.md §7: once a thread's logs, pools and caches are
// warm, committed transactions allocate nothing. It checks a read-only
// transaction (with re-reads, so the dedup path is exercised) and — when
// updates is true — a small update transaction. Engines whose design
// inherently allocates on writes (RSTM clones objects per acquisition)
// pass updates=false and are only held to the read-only bound.
func ZeroAllocSteadyState(t *testing.T, e stm.STM, wordAPI, updates bool) {
	t.Helper()
	th := e.NewThread(0)

	var roBody, upBody func(stm.Tx)
	if wordAPI {
		var base stm.Addr
		th.Atomic(func(tx stm.Tx) {
			base = tx.AllocWords(16)
			for i := stm.Addr(0); i < 16; i++ {
				tx.Store(base+i, stm.Word(i))
			}
		})
		roBody = func(tx stm.Tx) {
			var sum stm.Word
			for i := stm.Addr(0); i < 8; i++ {
				sum += tx.Load(base + i)
			}
			sum += tx.Load(base) // re-read: dedup cache hit
			_ = sum
		}
		upBody = func(tx stm.Tx) {
			v := tx.Load(base)
			tx.Store(base+1, v+1)
			tx.Store(base+9, v+2)
		}
	} else {
		var obj stm.Handle
		th.Atomic(func(tx stm.Tx) {
			obj = tx.NewObject(8)
			for i := uint32(0); i < 8; i++ {
				tx.WriteField(obj, i, stm.Word(i))
			}
		})
		roBody = func(tx stm.Tx) {
			var sum stm.Word
			for i := uint32(0); i < 8; i++ {
				sum += tx.ReadField(obj, i)
			}
			sum += tx.ReadField(obj, 0)
			_ = sum
		}
		upBody = func(tx stm.Tx) {
			v := tx.ReadField(obj, 0)
			tx.WriteField(obj, 1, v+1)
		}
	}

	// Warm the per-thread logs, write-entry pools and dedup cache.
	for i := 0; i < 100; i++ {
		th.Atomic(roBody)
		if updates {
			th.Atomic(upBody)
		}
	}

	if n := testing.AllocsPerRun(200, func() { th.Atomic(roBody) }); n != 0 {
		t.Errorf("%s: read-only transaction allocates %.1f objects/commit, want 0", e.Name(), n)
	}
	if updates {
		if n := testing.AllocsPerRun(200, func() { th.Atomic(upBody) }); n != 0 {
			t.Errorf("%s: small update transaction allocates %.1f objects/commit, want 0", e.Name(), n)
		}
	}
}

// ZeroAllocLoop extends the steady-state gate to whole benchmark
// operation loops (bench7's pre-bound op tables, for instance): after
// `warm` warm-up calls, `op` must allocate nothing per call. It shares
// ZeroAllocSteadyState's philosophy — warm the per-thread structures
// first, then hold the hot loop to exactly zero.
func ZeroAllocLoop(t *testing.T, name string, warm int, op func()) {
	t.Helper()
	for i := 0; i < warm; i++ {
		op()
	}
	if n := testing.AllocsPerRun(200, op); n != 0 {
		t.Errorf("%s: %.2f allocs/op in steady state, want 0", name, n)
	}
}
