package stmtest

import (
	"testing"

	"swisstm/internal/stm"
)

// ZeroAllocSteadyState asserts the allocation-free transaction lifecycle
// invariant of DESIGN.md §7, now through the v2 value-returning API
// (DESIGN.md §9): once a thread's logs, pools and caches are warm,
// committed transactions allocate nothing. It checks a value-returning
// read-only transaction via both Atomic and the declared-read-only
// AtomicRO fast path (with re-reads, so the dedup path is exercised) and
// — when updates is true — a small update transaction. Engines whose
// design inherently allocates on writes (RSTM clones objects per
// acquisition) pass updates=false and are only held to the read-only
// bound.
func ZeroAllocSteadyState(t *testing.T, e stm.STM, wordAPI, updates bool) {
	t.Helper()
	th := e.NewThread(0)

	var roBody func(stm.Tx) stm.Word
	var roBodyRO func(stm.TxRO) stm.Word
	var upBody func(stm.Tx)
	if wordAPI {
		base := stm.Atomic(th, func(tx stm.Tx) stm.Addr {
			b := tx.AllocWords(16)
			for i := stm.Addr(0); i < 16; i++ {
				tx.Store(b+i, stm.Word(i))
			}
			return b
		})
		roBody = func(tx stm.Tx) stm.Word {
			var sum stm.Word
			for i := stm.Addr(0); i < 8; i++ {
				sum += tx.Load(base + i)
			}
			return sum + tx.Load(base) // re-read: dedup cache hit
		}
		roBodyRO = func(tx stm.TxRO) stm.Word {
			var sum stm.Word
			for i := stm.Addr(0); i < 8; i++ {
				sum += tx.Load(base + i)
			}
			return sum + tx.Load(base)
		}
		upBody = func(tx stm.Tx) {
			v := tx.Load(base)
			tx.Store(base+1, v+1)
			tx.Store(base+9, v+2)
		}
	} else {
		obj := stm.Atomic(th, func(tx stm.Tx) stm.Handle {
			o := tx.NewObject(8)
			for i := uint32(0); i < 8; i++ {
				tx.WriteField(o, i, stm.Word(i))
			}
			return o
		})
		roBody = func(tx stm.Tx) stm.Word {
			var sum stm.Word
			for i := uint32(0); i < 8; i++ {
				sum += tx.ReadField(obj, i)
			}
			return sum + tx.ReadField(obj, 0)
		}
		roBodyRO = func(tx stm.TxRO) stm.Word {
			var sum stm.Word
			for i := uint32(0); i < 8; i++ {
				sum += tx.ReadField(obj, i)
			}
			return sum + tx.ReadField(obj, 0)
		}
		upBody = func(tx stm.Tx) {
			v := tx.ReadField(obj, 0)
			tx.WriteField(obj, 1, v+1)
		}
	}

	// Warm the per-thread logs, write-entry pools and dedup cache.
	var sink stm.Word
	for i := 0; i < 100; i++ {
		sink += stm.Atomic(th, roBody)
		sink += stm.AtomicRO(th, roBodyRO)
		if updates {
			stm.AtomicVoid(th, upBody)
		}
	}
	_ = sink

	if n := testing.AllocsPerRun(200, func() { sink = stm.Atomic(th, roBody) }); n != 0 {
		t.Errorf("%s: read-only Atomic allocates %.1f objects/commit, want 0", e.Name(), n)
	}
	if n := testing.AllocsPerRun(200, func() { sink = stm.AtomicRO(th, roBodyRO) }); n != 0 {
		t.Errorf("%s: declared read-only AtomicRO allocates %.1f objects/commit, want 0", e.Name(), n)
	}
	if updates {
		if n := testing.AllocsPerRun(200, func() { stm.AtomicVoid(th, upBody) }); n != 0 {
			t.Errorf("%s: small update transaction allocates %.1f objects/commit, want 0", e.Name(), n)
		}
	}
}

// ZeroAllocLoop extends the steady-state gate to whole benchmark
// operation loops (bench7's pre-bound op tables, for instance): after
// `warm` warm-up calls, `op` must allocate nothing per call. It shares
// ZeroAllocSteadyState's philosophy — warm the per-thread structures
// first, then hold the hot loop to exactly zero.
func ZeroAllocLoop(t *testing.T, name string, warm int, op func()) {
	t.Helper()
	for i := 0; i < warm; i++ {
		op()
	}
	if n := testing.AllocsPerRun(200, op); n != 0 {
		t.Errorf("%s: %.2f allocs/op in steady state, want 0", name, n)
	}
}
