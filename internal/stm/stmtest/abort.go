package stmtest

import (
	"errors"
	"testing"
	"time"

	"swisstm/internal/stm"
)

// AbortShape selects which deterministic commit-time conflict a
// ForcedAbort injects. Each engine detects a different conflict class on
// its commit path, so the shape must match the engine under test.
type AbortShape int

const (
	// ShapeReadValidation: read stripe S, inject a foreign commit that
	// bumps S, write a private stripe, commit → the commit-time read-set
	// validation fails. Matches the time-based eager engines (SwissTM,
	// TinySTM), whose only commit-detected conflict is validation.
	ShapeReadValidation AbortShape = iota
	// ShapeLockAcquire: buffer a lazy write to S, inject a foreign commit
	// that bumps S, commit → the versioned-lock acquisition finds S newer
	// than the snapshot and fails. Matches TL2, whose lazy design defers
	// every write conflict to commit.
	ShapeLockAcquire
	// ShapeObjectValidation: read object O invisibly, inject a foreign
	// commit that updates O, finish read-only → the commit-time epoch
	// validation fails. Matches RSTM with invisible reads.
	ShapeObjectValidation
)

// ForcedAbort drives exactly one engine-initiated, commit-time abort per
// Op call, deterministically: the victim transaction (thread A) performs
// its accesses, then — still inside its own body — runs a complete
// conflicting transaction on a second engine thread (B), and commits
// into the conflict. Both threads run on the calling goroutine, which is
// legal (Thread forbids concurrent use, not interleaved use from one
// goroutine) and makes the conflict schedule exact rather than
// probabilistic: no cross-goroutine coordination, no flaky sleeps.
//
// The victim's second attempt runs an empty body and commits read-only,
// so every Op is one aborted attempt plus one trivial retry plus one
// injector commit. All bodies are pre-bound: the steady-state Op loop
// performs no allocation of its own (RSTM's injector commit still pays
// the engine's inherent per-update clone/locator allocations).
//
// It uses engine thread ids stm.MaxThreads-1 and stm.MaxThreads-2.
type ForcedAbort struct {
	thA, thB stm.Thread
	attempt  int
	v        stm.Word
	s, p     stm.Addr   // word shapes: shared and private stripes
	obj      stm.Handle // object shape
	body     func(stm.Tx)
	bump     func(stm.Tx)
}

// NewForcedAbort builds the conflict driver on a fresh engine. The
// engine should disable (or minimize) post-abort back-off when Op is
// used for timing, so the measured cost is the abort path itself.
func NewForcedAbort(e stm.STM, shape AbortShape) *ForcedAbort {
	fa := &ForcedAbort{
		thA: e.NewThread(stm.MaxThreads - 1),
		thB: e.NewThread(stm.MaxThreads - 2),
	}
	switch shape {
	case ShapeReadValidation:
		stm.AtomicVoid(fa.thA, func(tx stm.Tx) {
			fa.s = tx.AllocWords(1)
			_ = tx.AllocWords(64) // keep s and p on distinct stripes at any granularity ≤ 64
			fa.p = tx.AllocWords(1)
			tx.Store(fa.s, 1)
			tx.Store(fa.p, 1)
		})
		fa.bump = func(tx stm.Tx) { fa.v++; tx.Store(fa.s, fa.v) }
		fa.body = func(tx stm.Tx) {
			fa.attempt++
			if fa.attempt > 1 {
				return // clean retry: empty read-only commit
			}
			_ = tx.Load(fa.s)
			stm.AtomicVoid(fa.thB, fa.bump) // S moves past the victim's snapshot
			tx.Store(fa.p, fa.v)            // make the victim an updater so commit validates
		}
	case ShapeLockAcquire:
		stm.AtomicVoid(fa.thA, func(tx stm.Tx) {
			fa.s = tx.AllocWords(1)
			tx.Store(fa.s, 1)
		})
		fa.bump = func(tx stm.Tx) { fa.v++; tx.Store(fa.s, fa.v) }
		fa.body = func(tx stm.Tx) {
			fa.attempt++
			if fa.attempt > 1 {
				return
			}
			tx.Store(fa.s, 0)               // buffered lazily; no lock taken
			stm.AtomicVoid(fa.thB, fa.bump) // S's versioned lock moves past the snapshot
		}
	case ShapeObjectValidation:
		stm.AtomicVoid(fa.thA, func(tx stm.Tx) {
			fa.obj = tx.NewObject(2)
			tx.WriteField(fa.obj, 0, 1)
		})
		fa.bump = func(tx stm.Tx) { fa.v++; tx.WriteField(fa.obj, 0, fa.v) }
		fa.body = func(tx stm.Tx) {
			fa.attempt++
			if fa.attempt > 1 {
				return
			}
			_ = tx.ReadField(fa.obj, 0)
			stm.AtomicVoid(fa.thB, fa.bump) // O's committed version moves
		}
	default:
		panic("stmtest: unknown AbortShape")
	}
	return fa
}

// Op runs one forced-abort cycle.
func (fa *ForcedAbort) Op() {
	fa.attempt = 0
	stm.AtomicVoid(fa.thA, fa.body)
}

// Stats returns the victim thread's counters.
func (fa *ForcedAbort) Stats() stm.Stats { return fa.thA.Stats() }

// AbortPathSuite is the conformance suite for the two-tier abort path of
// DESIGN.md §8, run against every engine:
//
//   - engine-initiated commit-time aborts are delivered as checked
//     returns — they never cross a panic/recover (asserted via the
//     AbortsUnwound/AbortsReturned stats split, which attempt/recover
//     and the commit path maintain);
//   - the UnwindAborts ablation really restores the unwinding delivery
//     (so A/B measurements compare the two mechanisms, not two no-ops);
//   - a panic raised by user code inside Atomic propagates unchanged,
//     and the engine releases its locks first (a later transaction on
//     the panicking stripe must not wedge);
//   - Restart() still retries, delivered by unwinding;
//   - the split exactly partitions Aborts.
//
// factory must return a fresh engine per call; mkUnwind must return one
// with the UnwindAborts ablation enabled.
func AbortPathSuite(t *testing.T, factory, mkUnwind func() stm.STM, shape AbortShape) {
	const forced = 50

	t.Run("CommitAbortsReturn", func(t *testing.T) {
		fa := NewForcedAbort(factory(), shape)
		for i := 0; i < forced; i++ {
			fa.Op()
		}
		s := fa.Stats()
		if s.Aborts < forced {
			t.Fatalf("forced-conflict driver aborted %d times, want ≥ %d (shape mismatch?)", s.Aborts, forced)
		}
		if s.AbortsUnwound != 0 {
			t.Errorf("%d aborts crossed panic/recover on the commit path, want 0 (returned %d)",
				s.AbortsUnwound, s.AbortsReturned)
		}
		if s.AbortsReturned != s.Aborts {
			t.Errorf("AbortsReturned = %d, want all %d aborts on the checked path", s.AbortsReturned, s.Aborts)
		}
	})

	t.Run("UnwindAblationUnwinds", func(t *testing.T) {
		fa := NewForcedAbort(mkUnwind(), shape)
		for i := 0; i < forced; i++ {
			fa.Op()
		}
		s := fa.Stats()
		if s.Aborts < forced {
			t.Fatalf("forced-conflict driver aborted %d times, want ≥ %d", s.Aborts, forced)
		}
		if s.AbortsReturned != 0 || s.AbortsUnwound != s.Aborts {
			t.Errorf("ablation delivery: unwound %d returned %d, want all %d unwound",
				s.AbortsUnwound, s.AbortsReturned, s.Aborts)
		}
	})

	t.Run("UserPanicPropagates", func(t *testing.T) {
		e := factory()
		th := e.NewThread(0)
		h := alloc(th, 1)
		boom := errors.New("user bug")
		func() {
			defer func() {
				if r := recover(); r != boom {
					t.Fatalf("recovered %v, want the user panic value", r)
				}
			}()
			stm.AtomicVoid(th, func(tx stm.Tx) {
				tx.WriteField(h, 0, 7) // take the write lock, then blow up
				panic(boom)
			})
		}()
		// The lock must have been released on the way out: a second thread
		// writing the same object would otherwise wedge. Guard with a
		// timeout so a regression fails instead of hanging the suite.
		done := make(chan struct{})
		go func() {
			th2 := e.NewThread(1)
			stm.AtomicVoid(th2, func(tx stm.Tx) { tx.WriteField(h, 0, 8) })
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("write after user panic wedged: engine leaked its lock")
		}
		got := readField(th, h, 0)
		if got != 8 {
			t.Fatalf("object holds %d, want 8 (panicked write must not commit)", got)
		}
	})

	t.Run("RestartRetries", func(t *testing.T) {
		e := factory()
		th := e.NewThread(0)
		h := alloc(th, 1)
		tries := 0
		stm.AtomicVoid(th, func(tx stm.Tx) {
			tries++
			tx.WriteField(h, 0, stm.Word(tries))
			if tries < 3 {
				tx.Restart()
			}
		})
		if tries != 3 {
			t.Fatalf("body ran %d times, want 3", tries)
		}
		got := readField(th, h, 0)
		if got != 3 {
			t.Fatalf("committed %d, want 3 (only the non-restarted attempt)", got)
		}
		s := th.Stats()
		if s.AbortsExplicit != 2 {
			t.Errorf("AbortsExplicit = %d, want 2", s.AbortsExplicit)
		}
		if s.AbortsUnwound < 2 {
			t.Errorf("AbortsUnwound = %d, want ≥ 2 (Restart must unwind the closure)", s.AbortsUnwound)
		}
	})

	t.Run("StatsPartition", func(t *testing.T) {
		e := factory()
		th0 := e.NewThread(0)
		h := alloc(th0, 1)
		// Hammer one counter from several goroutines so both mid-body and
		// commit-time conflicts occur, then check the partition invariant
		// on every thread.
		stats := runCounterHammer(e, h, 4, 2000)
		for i, s := range stats {
			if s.Aborts != s.AbortsUnwound+s.AbortsReturned {
				t.Errorf("thread %d: Aborts=%d ≠ Unwound+Returned=%d+%d",
					i, s.Aborts, s.AbortsUnwound, s.AbortsReturned)
			}
		}
	})
}

// runCounterHammer increments one shared field from workers goroutines
// and returns each worker's final stats.
func runCounterHammer(e stm.STM, h stm.Handle, workers, perWorker int) []stm.Stats {
	stats := make([]stm.Stats, workers)
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			th := e.NewThread(id + 1)
			for n := 0; n < perWorker; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					tx.WriteField(h, 0, tx.ReadField(h, 0)+1)
				})
			}
			stats[id] = th.Stats()
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	return stats
}
