package stmtest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"swisstm/internal/stm"
)

// roOnly implements exactly the read-only method set. Its assignment to
// stm.TxRO below is the compile-time guarantee the v2 API makes: if TxRO
// ever grows a write method, this file stops compiling — misuse of a
// declared read-only transaction is a compile error, not a runtime panic.
type roOnly struct{}

func (roOnly) Load(stm.Addr) stm.Word                { return 0 }
func (roOnly) ReadField(stm.Handle, uint32) stm.Word { return 0 }
func (roOnly) ReadRef(stm.Handle, uint32) stm.Handle { return 0 }
func (roOnly) Restart()                              {}

var _ stm.TxRO = roOnly{}

// APIV2Suite exercises the value-returning transaction API (DESIGN.md §9)
// on one engine: value returns across retries, error propagation with
// locks released and writes rolled back, declared read-only opacity and
// statistics, and the engine-facing Run primitive. It is included in Run
// and also invoked directly by the per-engine -race tests.
func APIV2Suite(t *testing.T, factory func() stm.STM, opts Options) {
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	t.Run("ValueReturn", func(t *testing.T) { testValueReturn(t, factory()) })
	t.Run("ValueAcrossRetries", func(t *testing.T) { testValueAcrossRetries(t, factory()) })
	t.Run("ValueParallel", func(t *testing.T) { testValueParallel(t, factory(), opts.Threads) })
	t.Run("ErrAbortSurfaces", func(t *testing.T) { testErrAbort(t, factory()) })
	t.Run("ErrReleasesLocks", func(t *testing.T) { testErrReleasesLocks(t, factory()) })
	t.Run("ROOpacity", func(t *testing.T) { testROOpacity(t, factory(), opts.Threads) })
	t.Run("ROStats", func(t *testing.T) { testROStats(t, factory()) })
	t.Run("RORestart", func(t *testing.T) { testRORestart(t, factory()) })
	t.Run("RunPrimitive", func(t *testing.T) { testRunPrimitive(t, factory()) })
}

func testValueReturn(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := stm.Atomic(th, func(tx stm.Tx) stm.Handle {
		o := tx.NewObject(2)
		tx.WriteField(o, 0, 11)
		tx.WriteField(o, 1, 31)
		return o
	})
	got := stm.AtomicRO(th, func(tx stm.TxRO) stm.Word {
		return tx.ReadField(h, 0) * tx.ReadField(h, 1)
	})
	if got != 341 {
		t.Fatalf("AtomicRO returned %d, want 341", got)
	}
	v, err := stm.AtomicErr(th, func(tx stm.Tx) (stm.Word, error) {
		tx.WriteField(h, 0, 5)
		return tx.ReadField(h, 0), nil
	})
	if err != nil || v != 5 {
		t.Fatalf("AtomicErr returned (%d, %v), want (5, nil)", v, err)
	}
}

// testValueAcrossRetries forces a deterministic retry (Restart) and
// checks that the returned value is the committed attempt's, not the
// rolled-back one's.
func testValueAcrossRetries(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 1)
	attempts := 0
	got := stm.Atomic(th, func(tx stm.Tx) int {
		attempts++
		tx.WriteField(h, 0, stm.Word(attempts))
		if attempts < 3 {
			tx.Restart()
		}
		return attempts
	})
	if got != 3 {
		t.Fatalf("Atomic returned %d, want the committed attempt's value 3", got)
	}
	if v := readField(th, h, 0); v != 3 {
		t.Fatalf("field holds %d, want 3 (only the final attempt commits)", v)
	}
}

// testValueParallel hammers a counter through the value-returning API;
// the set of returned values must be exactly 1..N (each increment's
// post-value observed exactly once — atomicity of the return value).
func testValueParallel(t *testing.T, e stm.STM, threads int) {
	th0 := e.NewThread(0)
	h := alloc(th0, 1)
	const perThread = 1500
	seen := make([][]stm.Word, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			vals := make([]stm.Word, 0, perThread)
			for n := 0; n < perThread; n++ {
				v := stm.Atomic(th, func(tx stm.Tx) stm.Word {
					nv := tx.ReadField(h, 0) + 1
					tx.WriteField(h, 0, nv)
					return nv
				})
				vals = append(vals, v)
			}
			seen[id] = vals
		}(i)
	}
	wg.Wait()
	total := threads * perThread
	marks := make([]bool, total+1)
	for id, vals := range seen {
		for _, v := range vals {
			if v < 1 || v > stm.Word(total) || marks[v] {
				t.Fatalf("thread %d observed post-value %d twice or out of range", id, v)
			}
			marks[v] = true
		}
	}
	if got := readField(th0, h, 0); got != stm.Word(total) {
		t.Fatalf("counter = %d, want %d", got, total)
	}
}

// testErrAbort checks AtomicErr semantics: the error surfaces without
// retrying, the zero value is returned, and the attempt's writes roll
// back.
func testErrAbort(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 1)
	stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, 10) })
	boom := errors.New("insufficient funds")
	runs := 0
	v, err := stm.AtomicErr(th, func(tx stm.Tx) (stm.Word, error) {
		runs++
		tx.WriteField(h, 0, 99)
		return 42, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want the body's error", err)
	}
	if v != 0 {
		t.Fatalf("value %d alongside error, want zero value", v)
	}
	if runs != 1 {
		t.Fatalf("body ran %d times, want 1 (user errors must not retry)", runs)
	}
	if got := readField(th, h, 0); got != 10 {
		t.Fatalf("field holds %d after error abort, want 10 (write must roll back)", got)
	}
	s := th.Stats()
	if s.AbortsUser != 1 {
		t.Errorf("AbortsUser = %d, want 1", s.AbortsUser)
	}
	if s.Aborts != s.AbortsUnwound+s.AbortsReturned {
		t.Errorf("stats partition broken: Aborts=%d ≠ Unwound+Returned=%d+%d",
			s.Aborts, s.AbortsUnwound, s.AbortsReturned)
	}
	// AtomicROErr propagates too, and can fail without ever writing.
	_, err = stm.AtomicROErr(th, func(tx stm.TxRO) (stm.Word, error) {
		if tx.ReadField(h, 0) == 10 {
			return 0, boom
		}
		return tx.ReadField(h, 0), nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AtomicROErr error %v, want the body's error", err)
	}
}

// testErrReleasesLocks makes the body take a write lock (eager engines
// acquire at encounter time) and then return an error; a second thread
// must be able to write the same object immediately — the rollback
// released every lock.
func testErrReleasesLocks(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 1)
	boom := errors.New("abort after locking")
	if _, err := stm.AtomicErr(th, func(tx stm.Tx) (struct{}, error) {
		tx.WriteField(h, 0, 7) // takes the write lock on eager engines
		return struct{}{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error %v, want the body's error", err)
	}
	done := make(chan struct{})
	go func() {
		th2 := e.NewThread(1)
		stm.AtomicVoid(th2, func(tx stm.Tx) { tx.WriteField(h, 0, 8) })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write after error abort wedged: engine leaked its lock")
	}
	if got := readField(th, h, 0); got != 8 {
		t.Fatalf("object holds %d, want 8 (errored write must not commit)", got)
	}
}

// testROOpacity runs declared read-only pair reads against concurrent
// pair writers: the RO fast paths must still never observe a torn pair.
func testROOpacity(t *testing.T, e stm.STM, threads int) {
	const pairs = 4
	th0 := e.NewThread(0)
	hs := make([]stm.Handle, pairs)
	for i := range hs {
		hs[i] = alloc(th0, 2)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			seed := uint64(id+1) * 77003
			for n := 0; n < 2500; n++ {
				seed = seed*6364136223846793005 + 1
				p := hs[seed%pairs]
				stm.AtomicVoid(th, func(tx stm.Tx) {
					v := tx.ReadField(p, 0) + 1
					tx.WriteField(p, 0, v)
					tx.WriteField(p, 1, v)
				})
			}
		}(i)
	}
	reader := e.NewThread(threads + 1)
	go func() {
		defer close(stop)
		seed := uint64(0xabc)
		for n := 0; n < 20000; n++ {
			seed = seed*6364136223846793005 + 1
			p := hs[seed%pairs]
			pair := stm.AtomicRO(reader, func(tx stm.TxRO) [2]stm.Word {
				return [2]stm.Word{tx.ReadField(p, 0), tx.ReadField(p, 1)}
			})
			if pair[0] != pair[1] {
				t.Errorf("read-only opacity violation: %d != %d", pair[0], pair[1])
				return
			}
		}
	}()
	<-stop
	wg.Wait()
	if s := reader.Stats(); s.ROCommits == 0 {
		t.Error("reader committed no declared read-only transactions")
	}
}

// testROStats pins the read-only fast-path bookkeeping: every AtomicRO
// commit counts in both Commits and ROCommits, and an uncontended
// read-only phase performs no validation passes at all (in particular,
// TL2's read-only commit replays no read log).
func testROStats(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 4)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < 4; i++ {
			tx.WriteField(h, i, stm.Word(i+1))
		}
	})
	before := th.Stats()
	const ro = 50
	for n := 0; n < ro; n++ {
		got := stm.AtomicRO(th, func(tx stm.TxRO) stm.Word {
			var sum stm.Word
			for i := uint32(0); i < 4; i++ {
				sum += tx.ReadField(h, i)
			}
			sum += tx.ReadField(h, 0) // re-read: the dedup/no-log path
			return sum
		})
		if got != 11 {
			t.Fatalf("read-only sum = %d, want 11", got)
		}
	}
	after := th.Stats()
	if d := after.ROCommits - before.ROCommits; d != ro {
		t.Errorf("ROCommits advanced by %d, want %d", d, ro)
	}
	if d := after.Commits - before.Commits; d != ro {
		t.Errorf("Commits advanced by %d, want %d", d, ro)
	}
	if after.Aborts != before.Aborts {
		t.Errorf("uncontended read-only phase aborted %d times", after.Aborts-before.Aborts)
	}
	if d := after.ValidationReads - before.ValidationReads; d != 0 {
		t.Errorf("read-only commits replayed %d read-log entries, want 0", d)
	}
	if d := after.Validations - before.Validations; d != 0 {
		t.Errorf("read-only commits ran %d validation passes, want 0", d)
	}
}

// testRORestart checks Restart through the read-only view.
func testRORestart(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 1)
	stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, 9) })
	tries := 0
	got := stm.AtomicRO(th, func(tx stm.TxRO) stm.Word {
		tries++
		if tries < 3 {
			tx.Restart()
		}
		return tx.ReadField(h, 0)
	})
	if tries != 3 || got != 9 {
		t.Fatalf("tries=%d got=%d, want 3 tries and value 9", tries, got)
	}
	if s := th.Stats(); s.AbortsExplicit < 2 {
		t.Errorf("AbortsExplicit = %d, want ≥ 2", s.AbortsExplicit)
	}
}

// testRunPrimitive drives Thread.Run directly: commits apply, errors
// roll back and surface.
func testRunPrimitive(t *testing.T, e stm.STM) {
	th := e.NewThread(0)
	h := alloc(th, 1)
	if err := th.Run(func(tx stm.Tx) error {
		tx.WriteField(h, 0, 21)
		return nil
	}, stm.ReadWrite); err != nil {
		t.Fatalf("Run: %v", err)
	}
	boom := errors.New("nope")
	if err := th.Run(func(tx stm.Tx) error {
		tx.WriteField(h, 0, 77)
		return boom
	}, stm.ReadWrite); !errors.Is(err, boom) {
		t.Fatalf("Run error %v, want the body's error", err)
	}
	var seen stm.Word
	if err := th.Run(func(tx stm.Tx) error {
		seen = tx.ReadField(h, 0)
		return nil
	}, stm.ReadOnly); err != nil {
		t.Fatalf("Run(ReadOnly): %v", err)
	}
	if seen != 21 {
		t.Fatalf("read %d, want 21 (errored write must not commit)", seen)
	}
}
