// Package stm defines the programming interface shared by every software
// transactional memory engine in this repository: SwissTM (the paper's
// contribution) and the three baselines it is evaluated against (TL2,
// TinySTM, RSTM).
//
// Two access styles are provided, mirroring the paper's setup:
//
//   - The word API (Load/Store on arena addresses) is the native interface
//     of the word-based engines — SwissTM, TL2, TinySTM. STAMP uses it.
//     Object-based RSTM does not implement it; consult SupportsWordAPI
//     before running a word-API workload on an arbitrary engine.
//   - The object API (ReadField/WriteField on opaque handles) is the native
//     interface of object-based RSTM; the word-based engines implement it
//     with a thin wrapper that lays an object out as a contiguous block of
//     words (the approach of "Dividing Transactional Memories by Zero",
//     which the paper uses to run STMBench7 on word-based STMs).
//
// STMBench7, Lee-TM and the red-black tree are written against the object
// API so they run on all four engines, exactly as in the paper.
//
// # Transaction API v2 (DESIGN.md §9)
//
// Application code enters transactions through the package-level generic
// entry points, which return the body's result as a value instead of
// forcing callers to smuggle results out through closure captures:
//
//	sum := stm.Atomic(th, func(tx stm.Tx) stm.Word { ... return sum })
//	v, err := stm.AtomicErr(th, func(tx stm.Tx) (stm.Word, error) { ... })
//	n := stm.AtomicRO(th, func(tx stm.TxRO) int { ... })
//	stm.AtomicVoid(th, func(tx stm.Tx) { ... })
//
// Atomic bodies may run many times (conflicts retry); they must be
// idempotent apart from their transactional effects. An error returned by
// an AtomicErr/AtomicROErr body rolls the transaction back — every lock
// released, no write published — and surfaces to the caller without
// retrying. AtomicRO declares the transaction read-only: the body receives
// a TxRO, so writing is a compile error rather than a runtime panic, and
// every engine exploits the declaration with a cheaper read and commit
// protocol (see DESIGN.md §9.3).
//
// The entry points drive the engine-facing attempt primitives of the
// Thread interface (Begin/Commit/Unwind/AbortUser/Backoff). Keeping the
// retry loop in non-capturing package functions is what makes the v2 API
// allocation-free in steady state: a closure-adapting wrapper would heap-
// allocate per call (stmtest.ZeroAllocSteadyState holds every engine to
// exactly zero).
package stm

import "swisstm/internal/mem"

// Word is one 64-bit unit of transactional data.
type Word = mem.Word

// Addr is a word index into the shared arena (word API).
type Addr = mem.Addr

// Handle is an opaque object reference (object API). For word-based engines
// a handle is the arena address of the object's first field; for RSTM it
// indexes an object table. Handle 0 is the nil reference.
//
// Handle is a defined type (not an alias for uint64) so that handles and
// raw Word values can no longer be mixed silently: storing a reference in
// an object field goes through Tx.WriteRef (or an explicit Word(h)
// conversion), and reading one back through TxRO.ReadRef.
type Handle uint64

// Mode declares, at transaction start, whether the body may write.
type Mode uint8

const (
	// ReadWrite is the general mode: the body gets the full Tx.
	ReadWrite Mode = iota
	// ReadOnly declares that the body performs no writes. Engines use the
	// declaration to skip their write machinery entirely: TL2 commits on
	// its clock sample with no read logging at all, SwissTM and TinySTM
	// skip write-set init, lock acquisition and the write side of commit,
	// RSTM skips acquire/arbitration state (DESIGN.md §9.3).
	ReadOnly
)

// TxRO is the read-only transaction handle: the view an AtomicRO body
// receives. It has no write methods, so writing inside a declared
// read-only transaction is a compile error, not a runtime panic.
// All methods abort the transaction (by panicking with an internal signal
// that the retry loop recovers) when a conflict requires it; user code
// never observes an inconsistent snapshot (opacity).
type TxRO interface {
	// Load reads one arena word (word API). RSTM does not support the
	// word API and panics with ErrWordAPI; gate with SupportsWordAPI.
	Load(a Addr) Word

	// ReadField reads one field of an object (object API, all engines).
	ReadField(h Handle, field uint32) Word
	// ReadRef reads a field that holds an object reference, typed.
	ReadRef(h Handle, field uint32) Handle

	// Restart aborts and retries the transaction immediately (user-level
	// retry, e.g. bounded wait loops in benchmark code).
	Restart()
}

// Tx is the read-write transaction handle passed to Atomic/AtomicErr
// bodies. It extends TxRO with the write and allocation methods.
type Tx interface {
	TxRO

	// Store writes one arena word (word API; see TxRO.Load for RSTM).
	Store(a Addr, v Word)
	// AllocWords reserves n fresh arena words inside the transaction.
	// Allocation is not undone on abort (the arena is a bump allocator);
	// a retried transaction simply allocates fresh words, and the leaked
	// ones are unreachable. This matches the C implementations, whose
	// transactional allocators also leak on abort in the common case.
	AllocWords(n uint32) Addr

	// WriteField writes one field of an object (object API, all engines).
	WriteField(h Handle, field uint32, v Word)
	// WriteRef writes a field that holds an object reference, typed.
	WriteRef(h Handle, field uint32, ref Handle)
	// NewObject allocates a fresh object with the given field count.
	NewObject(fields uint32) Handle
}

// Thread is a per-worker execution context. Each OS-level worker goroutine
// must create its own Thread; Threads are not safe for concurrent use.
//
// Beyond Stats, the interface is the engine-facing attempt machinery the
// package-level entry points (Atomic, AtomicErr, AtomicRO, AtomicVoid,
// RunLoop) drive; application code should not call the primitives
// directly. One transaction is one
//
//	Begin → body → Commit
//
// cycle per attempt, with Unwind triaging panics that interrupt the body,
// Backoff pacing retries and AbortUser rolling back an attempt whose body
// returned an error.
type Thread interface {
	// Run executes body as one transaction in the given mode, retrying on
	// conflicts until it commits or the body returns a non-nil error (the
	// transaction is then rolled back and the error returned). It is the
	// non-generic engine-facing primitive; engines implement it by
	// delegating to RunLoop, and the generic entry points replicate its
	// loop so results flow back without a heap-allocated adapter.
	Run(body func(Tx) error, mode Mode) error

	// Begin starts one attempt in the given mode and returns the
	// transaction handle to run the body against. restart is true when
	// retrying the same logical transaction (contention managers keep
	// their priority state across retries).
	Begin(mode Mode, restart bool) Tx
	// Commit attempts to commit the current attempt. It reports false
	// when the attempt aborted (checked delivery; the caller retries).
	// On success it also performs the engine's post-commit duties.
	Commit() bool
	// Unwind triages a panic value recovered while the body was running.
	// It reports true for the engine's internal rollback signal (the
	// attempt aborted mid-body; the caller retries) after recording the
	// unwound delivery; for a foreign panic it releases any locks the
	// attempt holds and reports false, and the caller must re-panic.
	Unwind(r any) bool
	// AbortUser rolls back the current attempt because the body returned
	// an error: locks released, buffered writes dropped, no retry.
	AbortUser()
	// Backoff performs the engine's post-abort contention back-off
	// between attempts.
	Backoff()

	// Stats returns a snapshot of this thread's commit/abort counters.
	Stats() Stats
}

// STM is a transactional memory engine instance bound to an arena.
type STM interface {
	Name() string
	Arena() *mem.Arena
	// NewThread registers a worker. id must be unique per live thread and
	// < MaxThreads.
	NewThread(id int) Thread
}

// wordAPICapable is implemented by engines that can answer the word-API
// capability question (all four in this repository do).
type wordAPICapable interface {
	SupportsWordAPI() bool
}

// SupportsWordAPI reports whether e implements the word API (Load/Store/
// AllocWords). Word-based engines (SwissTM, TL2, TinySTM) do; object-based
// RSTM does not — the paper cannot run STAMP on RSTM for the same reason
// (§4 footnote 4). Drivers consult this before starting a word-API
// workload so an unsupported engine fails fast with a clear error instead
// of panicking with ErrWordAPI mid-run.
func SupportsWordAPI(e STM) bool {
	if c, ok := e.(wordAPICapable); ok {
		return c.SupportsWordAPI()
	}
	return false
}

// MaxThreads bounds the number of concurrently registered threads. The
// paper's testbed has 8 hardware threads; we leave headroom.
const MaxThreads = 64

// ---------------------------------------------------------------------------
// Entry points. Each replicates the same begin/attempt/commit loop rather
// than adapting the body through a shared closure: an adapter closure (and
// the result variable it captures) would escape through the Thread
// interface and heap-allocate on every call, breaking the zero-allocation
// steady state the engines guarantee.

// Atomic runs body as a read-write transaction, retrying on conflicts
// until it commits, and returns the body's result.
func Atomic[T any](th Thread, body func(Tx) T) T {
	for restart := false; ; restart = true {
		tx := th.Begin(ReadWrite, restart)
		if v, ok := attempt(th, tx, body); ok {
			return v
		}
		th.Backoff()
	}
}

// attempt runs body once inside an already-begun transaction and tries to
// commit. ok=false means the attempt aborted and the caller must retry.
func attempt[T any](th Thread, tx Tx, body func(Tx) T) (v T, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r) // foreign panic; engine released its locks
			}
			ok = false
		}
	}()
	v = body(tx)
	return v, th.Commit()
}

// AtomicErr runs body as a read-write transaction. Conflicts retry as in
// Atomic; a non-nil error from the body rolls the transaction back (locks
// released, writes dropped) and is returned without retrying, alongside
// the zero value.
func AtomicErr[T any](th Thread, body func(Tx) (T, error)) (T, error) {
	for restart := false; ; restart = true {
		tx := th.Begin(ReadWrite, restart)
		v, err, ok := attemptErr(th, tx, body)
		if err != nil {
			th.AbortUser()
			var zero T
			return zero, err
		}
		if ok {
			return v, nil
		}
		th.Backoff()
	}
}

func attemptErr[T any](th Thread, tx Tx, body func(Tx) (T, error)) (v T, err error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r)
			}
			ok = false
			err = nil // an unwound attempt retries; drop any partial error
		}
	}()
	v, err = body(tx)
	if err != nil {
		return v, err, false
	}
	return v, nil, th.Commit()
}

// AtomicRO runs body as a declared read-only transaction and returns its
// result. The body receives a TxRO — no write methods — and the engine
// runs its read-only fast path (DESIGN.md §9.3).
func AtomicRO[T any](th Thread, body func(TxRO) T) T {
	for restart := false; ; restart = true {
		tx := th.Begin(ReadOnly, restart)
		if v, ok := attemptRO(th, tx, body); ok {
			return v
		}
		th.Backoff()
	}
}

func attemptRO[T any](th Thread, tx TxRO, body func(TxRO) T) (v T, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r)
			}
			ok = false
		}
	}()
	v = body(tx)
	return v, th.Commit()
}

// AtomicROErr is AtomicErr for declared read-only transactions.
func AtomicROErr[T any](th Thread, body func(TxRO) (T, error)) (T, error) {
	for restart := false; ; restart = true {
		tx := th.Begin(ReadOnly, restart)
		v, err, ok := attemptROErr(th, tx, body)
		if err != nil {
			th.AbortUser()
			var zero T
			return zero, err
		}
		if ok {
			return v, nil
		}
		th.Backoff()
	}
}

func attemptROErr[T any](th Thread, tx TxRO, body func(TxRO) (T, error)) (v T, err error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r)
			}
			ok = false
			err = nil
		}
	}()
	v, err = body(tx)
	if err != nil {
		return v, err, false
	}
	return v, nil, th.Commit()
}

// AtomicVoid runs a body with no result as a read-write transaction,
// retrying on conflicts until it commits — the shape of the paper's
// classic `atomic { ... }` block.
func AtomicVoid(th Thread, body func(Tx)) {
	for restart := false; ; restart = true {
		tx := th.Begin(ReadWrite, restart)
		if attemptVoid(th, tx, body) {
			return
		}
		th.Backoff()
	}
}

func attemptVoid(th Thread, tx Tx, body func(Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r)
			}
			ok = false
		}
	}()
	body(tx)
	return th.Commit()
}

// RunLoop is the shared implementation of Thread.Run: engines delegate
// their Run method here so the retry protocol lives in exactly one place.
func RunLoop(th Thread, body func(Tx) error, mode Mode) error {
	for restart := false; ; restart = true {
		tx := th.Begin(mode, restart)
		err, ok := attemptRun(th, tx, body)
		if err != nil {
			th.AbortUser()
			return err
		}
		if ok {
			return nil
		}
		th.Backoff()
	}
}

func attemptRun(th Thread, tx Tx, body func(Tx) error) (err error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !th.Unwind(r) {
				panic(r)
			}
			ok = false
			err = nil
		}
	}()
	if err = body(tx); err != nil {
		return err, false
	}
	return nil, th.Commit()
}

// ---------------------------------------------------------------------------

// Stats counts transaction outcomes for one thread.
type Stats struct {
	Commits         uint64 // successfully committed transactions
	ROCommits       uint64 // committed transactions declared read-only (AtomicRO)
	Aborts          uint64 // total rollbacks (all causes)
	AbortsWW        uint64 // write/write conflicts (encounter-time)
	AbortsValid     uint64 // read-set validation / extension failures
	AbortsLocked    uint64 // read or commit hit a locked location (encounter-time)
	AbortsKilled    uint64 // aborted by another transaction's CM decision
	AbortsExplicit  uint64 // user-requested restarts (Tx.Restart)
	AbortsUser      uint64 // rollbacks because an AtomicErr body returned an error
	WaitsCM         uint64 // times the CM told the attacker to wait
	LockAcquireFail uint64 // commit-time lock acquisition failures (lazy engines)

	// Abort delivery split (DESIGN.md §8): every abort reaches the retry
	// loop either as a checked return (commit-path conflicts and user
	// errors; cheap) or by unwinding the user closure via panic/recover
	// (~µs). The two counters partition Aborts exactly: Aborts ==
	// AbortsUnwound + AbortsReturned, which the abort-path tests assert
	// per engine.
	AbortsUnwound  uint64 // aborts delivered by panic/recover (mid-body conflicts, Restart)
	AbortsReturned uint64 // aborts delivered as checked returns (commit-path conflicts, user errors)

	// Validation-failure phase split (DESIGN.md §11): AbortsValid ==
	// AbortsValidRead + AbortsValidCommit, asserted by the abort-cause
	// partition tests per engine. Read-time failures are mid-body —
	// a transactional read (or an opacity guard before an eager write)
	// saw a newer version and the snapshot could not be extended.
	// Commit-time failures are the final validation pass after the
	// body returned.
	AbortsValidRead   uint64 // mid-body read validation / extension failures
	AbortsValidCommit uint64 // commit-time validation failures

	// Hot-path instrumentation (DESIGN.md §7): how long read logs get and
	// how much work validation does, so the read-set dedup win is visible
	// in the structured results, not only in benchstat. Declared read-only
	// transactions on TL2 log no reads at all (DESIGN.md §9.3), so their
	// reads do not appear in ReadsLogged.
	ReadsLogged     uint64 // read-log entries appended (distinct stripes when dedup is on)
	ReadsDeduped    uint64 // transactional reads absorbed by the read-set dedup cache
	Validations     uint64 // read-set validation passes (commit-time + extensions)
	ValidationReads uint64 // read-log entries scanned across all validation passes
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.ROCommits += other.ROCommits
	s.Aborts += other.Aborts
	s.AbortsWW += other.AbortsWW
	s.AbortsValid += other.AbortsValid
	s.AbortsLocked += other.AbortsLocked
	s.AbortsKilled += other.AbortsKilled
	s.AbortsExplicit += other.AbortsExplicit
	s.AbortsUser += other.AbortsUser
	s.WaitsCM += other.WaitsCM
	s.LockAcquireFail += other.LockAcquireFail
	s.AbortsUnwound += other.AbortsUnwound
	s.AbortsReturned += other.AbortsReturned
	s.AbortsValidRead += other.AbortsValidRead
	s.AbortsValidCommit += other.AbortsValidCommit
	s.ReadsLogged += other.ReadsLogged
	s.ReadsDeduped += other.ReadsDeduped
	s.Validations += other.Validations
	s.ValidationReads += other.ValidationReads
}

// AbortRate returns aborts/(commits+aborts), the fraction of transaction
// executions that rolled back.
func (s *Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// AbortCauses is the engine-agnostic abort-cause taxonomy (DESIGN.md
// §11): every abort has exactly one cause, so Total() == Aborts holds
// on every engine (the per-engine partition tests assert it). The six
// causes fold the raw Stats counters as follows:
//
//	ReadValidation   = AbortsValidRead
//	LockConflict     = AbortsWW + AbortsLocked + LockAcquireFail
//	CommitValidation = AbortsValidCommit
//	CMKill           = AbortsKilled
//	UserError        = AbortsUser
//	ExplicitRestart  = AbortsExplicit
type AbortCauses struct {
	ReadValidation   uint64 // mid-body read validation / snapshot extension failed
	LockConflict     uint64 // couldn't acquire a location another txn holds (eager W/W, locked read, commit-time acquire)
	CommitValidation uint64 // final validation pass failed at commit
	CMKill           uint64 // killed by another transaction's contention-manager decision
	UserError        uint64 // AtomicErr body returned an error
	ExplicitRestart  uint64 // user-requested Tx.Restart
}

// Causes maps the raw counters onto the taxonomy.
func (s *Stats) Causes() AbortCauses {
	return AbortCauses{
		ReadValidation:   s.AbortsValidRead,
		LockConflict:     s.AbortsWW + s.AbortsLocked + s.LockAcquireFail,
		CommitValidation: s.AbortsValidCommit,
		CMKill:           s.AbortsKilled,
		UserError:        s.AbortsUser,
		ExplicitRestart:  s.AbortsExplicit,
	}
}

// Total sums the six causes; equal to Stats.Aborts when the partition
// invariant holds.
func (c AbortCauses) Total() uint64 {
	return c.ReadValidation + c.LockConflict + c.CommitValidation +
		c.CMKill + c.UserError + c.ExplicitRestart
}

// RollbackSignal is the panic payload engines use to unwind an aborted
// transaction to its retry loop. It is exported so that engine packages
// share one signal type; user code should never see it.
//
// Since the panic-free abort refactor (DESIGN.md §8) the unwind is
// reserved for the single case that must interrupt user code mid-body: a
// conflict detected inside the user closure (a read or eager write that
// cannot proceed) and user-requested Restart. Conflicts detected on the
// commit path — after the closure has returned — are delivered to the
// retry loop as checked returns and never cross a recover.
type RollbackSignal struct {
	// Explicit marks a user-requested restart (Tx.Restart).
	Explicit bool
}

// SignalRollback and SignalRestart are the pre-allocated, pre-boxed panic
// payloads for the two unwind cases. Engines panic with these shared
// values rather than a fresh RollbackSignal{} so the abort path performs
// no interface boxing; the recover site type-asserts RollbackSignal as
// before.
var (
	SignalRollback any = RollbackSignal{}
	SignalRestart  any = RollbackSignal{Explicit: true}
)

// ErrWordAPI is the panic message RSTM raises when the word API is used
// despite SupportsWordAPI reporting false (a driver bug; drivers must
// gate word-API workloads on the capability check).
const ErrWordAPI = "stm: engine is object-based; word API not supported (see DESIGN.md §3.1)"
