// Package stm defines the programming interface shared by every software
// transactional memory engine in this repository: SwissTM (the paper's
// contribution) and the three baselines it is evaluated against (TL2,
// TinySTM, RSTM).
//
// Two access styles are provided, mirroring the paper's setup:
//
//   - The word API (Load/Store on arena addresses) is the native interface
//     of the word-based engines — SwissTM, TL2, TinySTM. STAMP uses it.
//   - The object API (ReadField/WriteField on opaque handles) is the native
//     interface of object-based RSTM; the word-based engines implement it
//     with a thin wrapper that lays an object out as a contiguous block of
//     words (the approach of "Dividing Transactional Memories by Zero",
//     which the paper uses to run STMBench7 on word-based STMs).
//
// STMBench7, Lee-TM and the red-black tree are written against the object
// API so they run on all four engines, exactly as in the paper.
package stm

import "swisstm/internal/mem"

// Word is one 64-bit unit of transactional data.
type Word = mem.Word

// Addr is a word index into the shared arena (word API).
type Addr = mem.Addr

// Handle is an opaque object reference (object API). For word-based engines
// a handle is the arena address of the object's first field; for RSTM it
// indexes an object table. Handle 0 is the nil reference.
type Handle = uint64

// Tx is the per-transaction access handle passed to atomic blocks. All
// methods abort the transaction (by panicking with an internal signal that
// the enclosing Atomic call recovers) when a conflict requires it; user
// code never observes an inconsistent snapshot (opacity).
type Tx interface {
	// Word API. RSTM does not support it and panics with ErrWordAPI.
	Load(a Addr) Word
	Store(a Addr, v Word)
	// AllocWords reserves n fresh arena words inside the transaction.
	// Allocation is not undone on abort (the arena is a bump allocator);
	// a retried transaction simply allocates fresh words, and the leaked
	// ones are unreachable. This matches the C implementations, whose
	// transactional allocators also leak on abort in the common case.
	AllocWords(n uint32) Addr

	// Object API, supported by every engine.
	ReadField(h Handle, field uint32) Word
	WriteField(h Handle, field uint32, v Word)
	NewObject(fields uint32) Handle

	// Restart aborts and retries the transaction immediately (user-level
	// retry, e.g. bounded wait loops in benchmark code).
	Restart()
}

// Thread is a per-worker execution context. Each OS-level worker goroutine
// must create its own Thread; Threads are not safe for concurrent use.
type Thread interface {
	// Atomic runs body as a transaction, retrying on conflicts until it
	// commits. The body may run many times; it must be idempotent apart
	// from its transactional effects.
	Atomic(body func(tx Tx))
	// Stats returns a snapshot of this thread's commit/abort counters.
	Stats() Stats
}

// STM is a transactional memory engine instance bound to an arena.
type STM interface {
	Name() string
	Arena() *mem.Arena
	// NewThread registers a worker. id must be unique per live thread and
	// < MaxThreads.
	NewThread(id int) Thread
}

// MaxThreads bounds the number of concurrently registered threads. The
// paper's testbed has 8 hardware threads; we leave headroom.
const MaxThreads = 64

// Stats counts transaction outcomes for one thread.
type Stats struct {
	Commits         uint64 // successfully committed transactions
	Aborts          uint64 // total rollbacks (all causes)
	AbortsWW        uint64 // write/write conflicts (encounter-time)
	AbortsValid     uint64 // read-set validation / extension failures
	AbortsLocked    uint64 // read or commit hit a locked location
	AbortsKilled    uint64 // aborted by another transaction's CM decision
	AbortsExplicit  uint64 // user-requested restarts
	WaitsCM         uint64 // times the CM told the attacker to wait
	LockAcquireFail uint64 // commit-time lock acquisition failures (lazy engines)

	// Abort delivery split (DESIGN.md §8): every abort reaches the Atomic
	// retry loop either as a checked return from the commit path (cheap)
	// or by unwinding the user closure via panic/recover (~µs). The two
	// counters partition Aborts exactly: Aborts == AbortsUnwound +
	// AbortsReturned, which the abort-path tests assert per engine.
	AbortsUnwound  uint64 // aborts delivered by panic/recover (mid-body conflicts, Restart)
	AbortsReturned uint64 // aborts delivered as checked returns (commit-path conflicts)

	// Hot-path instrumentation (DESIGN.md §7): how long read logs get and
	// how much work validation does, so the read-set dedup win is visible
	// in the structured results, not only in benchstat.
	ReadsLogged     uint64 // read-log entries appended (distinct stripes when dedup is on)
	ReadsDeduped    uint64 // transactional reads absorbed by the read-set dedup cache
	Validations     uint64 // read-set validation passes (commit-time + extensions)
	ValidationReads uint64 // read-log entries scanned across all validation passes
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.AbortsWW += other.AbortsWW
	s.AbortsValid += other.AbortsValid
	s.AbortsLocked += other.AbortsLocked
	s.AbortsKilled += other.AbortsKilled
	s.AbortsExplicit += other.AbortsExplicit
	s.WaitsCM += other.WaitsCM
	s.LockAcquireFail += other.LockAcquireFail
	s.AbortsUnwound += other.AbortsUnwound
	s.AbortsReturned += other.AbortsReturned
	s.ReadsLogged += other.ReadsLogged
	s.ReadsDeduped += other.ReadsDeduped
	s.Validations += other.Validations
	s.ValidationReads += other.ValidationReads
}

// AbortRate returns aborts/(commits+aborts), the fraction of transaction
// executions that rolled back.
func (s *Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// RollbackSignal is the panic payload engines use to unwind an aborted
// transaction to its Atomic retry loop. It is exported so that engine
// packages share one signal type; user code should never see it.
//
// Since the panic-free abort refactor (DESIGN.md §8) the unwind is
// reserved for the single case that must interrupt user code mid-body: a
// conflict detected inside the user closure (a read or eager write that
// cannot proceed) and user-requested Restart. Conflicts detected on the
// commit path — after the closure has returned — are delivered to the
// retry loop as checked returns and never cross a recover.
type RollbackSignal struct {
	// Explicit marks a user-requested restart (Tx.Restart).
	Explicit bool
}

// SignalRollback and SignalRestart are the pre-allocated, pre-boxed panic
// payloads for the two unwind cases. Engines panic with these shared
// values rather than a fresh RollbackSignal{} so the abort path performs
// no interface boxing; the recover site type-asserts RollbackSignal as
// before.
var (
	SignalRollback any = RollbackSignal{}
	SignalRestart  any = RollbackSignal{Explicit: true}
)

// ErrWordAPI is the panic message RSTM raises when the word API is used.
const ErrWordAPI = "stm: engine is object-based; word API not supported (see DESIGN.md §3.1)"
