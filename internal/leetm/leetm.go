// Package leetm implements the Lee-TM benchmark (Ansari et al., ICA3PP
// 2008): transactional circuit routing with Lee's algorithm. Each
// transaction routes one two-pin net on a shared grid — a large, regular
// transaction that first *reads* many cells (breadth-first expansion
// looking for a free path) and then *writes* a few (laying the track),
// the access pattern the paper uses in Figure 4 and, with an injected
// irregularity, in Figure 8.
//
// The original distribution's "memory" and "main" circuit boards are not
// redistributable; Boards are generated synthetically instead (see
// MemoryBoard and MainBoard) with the same relationship — "main" is
// larger with more and longer nets — as documented in DESIGN.md §2.
//
// Grid cells are 1-field objects ("very simple objects — each can be
// represented as a single integer variable", §2.2), so the benchmark runs
// on object-based RSTM as well as the word-based engines.
package leetm

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Net is one two-pin connection request.
type Net struct {
	ID             int // 1-based; 0 denotes a free cell
	SX, SY, TX, TY int
}

// Board is a routing problem: a grid plus a list of nets. Like the
// original Lee-TM boards, routing uses two layers connected by vias at
// every cell; pins are through-holes blocking both layers.
type Board struct {
	Name string
	W, H int
	Nets []Net
	// IrregularPct, when > 0, adds the paper's §5 irregularity: every
	// routing transaction reads a single shared object Oc, and this
	// percentage of transactions also update it.
	IrregularPct int
}

// GenBoard creates a deterministic synthetic board with n nets whose pins
// are at least minLen and at most maxLen apart (Manhattan distance).
func GenBoard(name string, w, h, n, minLen, maxLen int, seed uint64) Board {
	rng := util.NewRand(seed)
	b := Board{Name: name, W: w, H: h}
	used := map[int]bool{}
	pick := func() (int, int) {
		for {
			x, y := rng.Intn(w), rng.Intn(h)
			if !used[y*w+x] {
				used[y*w+x] = true
				return x, y
			}
		}
	}
	for id := 1; id <= n; id++ {
		for try := 0; ; try++ {
			sx, sy := pick()
			tx, ty := pick()
			d := abs(sx-tx) + abs(sy-ty)
			if d >= minLen && d <= maxLen {
				b.Nets = append(b.Nets, Net{ID: id, SX: sx, SY: sy, TX: tx, TY: ty})
				break
			}
			used[sy*w+sx] = false
			used[ty*w+tx] = false
			if try > 1000 {
				panic("leetm: cannot place net; board too dense")
			}
		}
	}
	return b
}

// MemoryBoard is the stand-in for Lee-TM's "memory" input: a moderately
// sized grid with many short, regular connections (a memory array's bus
// structure).
func MemoryBoard() Board { return GenBoard("memory", 128, 128, 280, 6, 40, 0x11ee) }

// MainBoard is the stand-in for Lee-TM's "main" input: a larger grid with
// more and longer nets, which makes transactions bigger and contention
// higher (the paper's main board behaves the same way relative to
// memory).
func MainBoard() Board { return GenBoard("main", 192, 192, 420, 12, 90, 0x3a1b) }

// Router is a Lee-TM instance bound to an engine.
type Router struct {
	E     stm.STM
	Board Board
	Cells []stm.Handle // W*H grid cell objects, row-major
	Oc    stm.Handle   // the irregularity hot-spot object (Figure 8)

	Routed  atomic.Uint64 // successfully routed nets
	Failed  atomic.Uint64 // nets with no free path (not an error)
	nextNet atomic.Uint64 // work-queue cursor
	flags   []atomic.Bool // per-net routed flag (for verification)
}

// Layers is the number of routing layers (Lee-TM boards have two).
const Layers = 2

// Setup allocates the grid on thread 0.
func Setup(e stm.STM, b Board) *Router {
	r := &Router{E: e, Board: b, Cells: make([]stm.Handle, b.W*b.H*Layers)}
	th := e.NewThread(0)
	// Allocate in row batches to bound transaction size.
	for z := 0; z < Layers; z++ {
		for y := 0; y < b.H; y++ {
			base := (z*b.H + y) * b.W
			stm.AtomicVoid(th, func(tx stm.Tx) {
				for x := 0; x < b.W; x++ {
					r.Cells[base+x] = tx.NewObject(1)
				}
			})
		}
	}
	r.Oc = stm.Atomic(th, func(tx stm.Tx) stm.Handle { return tx.NewObject(1) })
	// Pre-mark every pin with its net id on both layers: pins are
	// through-holes, obstacles to every other net.
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for _, net := range b.Nets {
			for z := 0; z < Layers; z++ {
				off := z * b.W * b.H
				tx.WriteField(r.Cells[off+net.SY*b.W+net.SX], 0, stm.Word(net.ID))
				tx.WriteField(r.Cells[off+net.TY*b.W+net.TX], 0, stm.Word(net.ID))
			}
		}
	})
	r.flags = make([]atomic.Bool, len(b.Nets)+1)
	return r
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// scratch is per-worker non-transactional expansion state, reset by
// generation stamping rather than clearing.
type scratch struct {
	dist []int32
	gen  []int32
	cur  int32
	q    []int32
}

func (r *Router) newScratch() *scratch {
	n := r.Board.W * r.Board.H * Layers
	return &scratch{dist: make([]int32, n), gen: make([]int32, n), q: make([]int32, 0, n)}
}

var dirs = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// neighbors appends c's grid neighbors (4 in-plane + the via to the other
// layer) to buf and returns it.
func (r *Router) neighbors(c int32, buf []int32) []int32 {
	b := r.Board
	plane := int32(b.W * b.H)
	z := c / plane
	rest := c % plane
	cx, cy := int(rest)%b.W, int(rest)/b.W
	for _, dir := range dirs {
		nx, ny := cx+dir[0], cy+dir[1]
		if nx < 0 || ny < 0 || nx >= b.W || ny >= b.H {
			continue
		}
		buf = append(buf, z*plane+int32(ny*b.W+nx))
	}
	buf = append(buf, (1-z)*plane+rest) // via
	return buf
}

// routeOne attempts to route net inside tx. It returns false when no free
// path exists. The expansion reads cell occupancy transactionally (the
// long read phase); the backtrack writes the path (the short write
// phase).
func (r *Router) routeOne(tx stm.Tx, net Net, sc *scratch, rng *util.Rand) bool {
	b := r.Board
	if b.IrregularPct > 0 {
		// The §5 irregularity: everybody reads Oc…
		v := tx.ReadField(r.Oc, 0)
		if int(rng.Next()%100) < b.IrregularPct {
			// …and a fraction also writes it, creating a read/write
			// conflict with every concurrent routing transaction.
			tx.WriteField(r.Oc, 0, v+1)
		}
	}
	sc.cur++
	w := b.W
	src := int32(net.SY*w + net.SX) // pins live on layer 0
	dst := int32(net.TY*w + net.TX)
	sc.q = sc.q[:0]
	sc.q = append(sc.q, src)
	sc.gen[src] = sc.cur
	sc.dist[src] = 0
	found := false
	var nbuf [5]int32
	for head := 0; head < len(sc.q) && !found; head++ {
		c := sc.q[head]
		d := sc.dist[c]
		for _, n := range r.neighbors(c, nbuf[:0]) {
			if sc.gen[n] == sc.cur {
				continue
			}
			sc.gen[n] = sc.cur
			if n == dst {
				sc.dist[n] = d + 1
				found = true
				break
			}
			// The transactional read of the expansion phase. Occupied
			// cells (tracks and other nets' pins) block the wavefront;
			// mark them with a poisoned distance so the backtrack can
			// never step onto one through a stale value. The dst pin on
			// layer 1 is also poisoned here (it carries our own id), so
			// only the true layer-0 dst terminates the search.
			if tx.ReadField(r.Cells[n], 0) != 0 {
				sc.dist[n] = -1
				continue
			}
			sc.dist[n] = d + 1
			sc.q = append(sc.q, n)
		}
	}
	if !found {
		return false
	}
	// Backtrack: walk from dst to src along strictly decreasing distance,
	// writing the net id (the write phase).
	id := stm.Word(net.ID)
	c := dst
	tx.WriteField(r.Cells[dst], 0, id)
	for c != src {
		d := sc.dist[c]
		next := int32(-1)
		for _, n := range r.neighbors(c, nbuf[:0]) {
			if sc.gen[n] == sc.cur && sc.dist[n] == d-1 {
				next = n
				break
			}
		}
		if next < 0 {
			panic("leetm: backtrack lost the wavefront")
		}
		tx.WriteField(r.Cells[next], 0, id)
		c = next
	}
	return true
}

// Work is the fixed-work body: workers pull nets from the shared cursor
// until all are routed. It matches harness.WorkFn.
func (r *Router) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	sc := r.newScratch()
	for {
		i := r.nextNet.Add(1) - 1
		if i >= uint64(len(r.Board.Nets)) {
			return
		}
		net := r.Board.Nets[i]
		ok := stm.Atomic(th, func(tx stm.Tx) bool { return r.routeOne(tx, net, sc, rng) })
		if ok {
			r.Routed.Add(1)
			r.flags[net.ID].Store(true)
		} else {
			r.Failed.Add(1)
		}
	}
}

// Reset clears routing state so the same router can be reused (tests).
func (r *Router) Reset() {
	th := r.E.NewThread(0)
	for i := 0; i < len(r.Cells); i += r.Board.W {
		i := i
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := i; k < i+r.Board.W && k < len(r.Cells); k++ {
				tx.WriteField(r.Cells[k], 0, 0)
			}
		})
	}
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for _, net := range r.Board.Nets {
			for z := 0; z < Layers; z++ {
				off := z * r.Board.W * r.Board.H
				tx.WriteField(r.Cells[off+net.SY*r.Board.W+net.SX], 0, stm.Word(net.ID))
				tx.WriteField(r.Cells[off+net.TY*r.Board.W+net.TX], 0, stm.Word(net.ID))
			}
		}
	})
	r.Routed.Store(0)
	r.Failed.Store(0)
	r.nextNet.Store(0)
	for i := range r.flags {
		r.flags[i].Store(false)
	}
}

// Check verifies the post-conditions: each routed net's pins are
// connected by a path of its own id, and every occupied cell belongs to
// exactly one net (implicit: cells hold one id).
func (r *Router) Check() error {
	th := r.E.NewThread(stm.MaxThreads - 1)
	b := r.Board
	grid := make([]stm.Word, b.W*b.H*Layers)
	// Snapshot in chunks (declared read-only) to keep read sets moderate.
	for i := 0; i < len(grid); i += b.W {
		i := i
		chunk := stm.AtomicRO(th, func(tx stm.TxRO) []stm.Word {
			buf := make([]stm.Word, 0, b.W)
			for k := i; k < i+b.W && k < len(grid); k++ {
				buf = append(buf, tx.ReadField(r.Cells[k], 0))
			}
			return buf
		})
		copy(grid[i:], chunk)
	}
	routed := 0
	for _, net := range b.Nets {
		if !r.flags[net.ID].Load() {
			continue // not routed (no free path); fine
		}
		src := net.SY*b.W + net.SX
		dst := net.TY*b.W + net.TX
		if grid[src] != stm.Word(net.ID) {
			return fmt.Errorf("leetm: net %d's source pin was overwritten", net.ID)
		}
		// BFS over own-id cells, across both layers.
		seen := make(map[int32]bool, 64)
		stack := []int32{int32(src)}
		seen[int32(src)] = true
		ok := false
		var nbuf [5]int32
		for len(stack) > 0 && !ok {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c == int32(dst) {
				ok = true
				break
			}
			for _, n := range r.neighbors(c, nbuf[:0]) {
				if !seen[n] && grid[n] == stm.Word(net.ID) {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		if !ok {
			return fmt.Errorf("leetm: net %d's pins are not connected", net.ID)
		}
		routed++
	}
	if routed != int(r.Routed.Load()) {
		return fmt.Errorf("leetm: %d nets verified routed, %d claimed", routed, r.Routed.Load())
	}
	return nil
}
