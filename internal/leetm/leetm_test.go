package leetm

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
	"swisstm/internal/util"
)

func testBoard() Board { return GenBoard("test", 32, 32, 24, 3, 14, 0xbeef) }

func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.NewPolka()}) },
	}
}

func TestBoardGeneration(t *testing.T) {
	b := testBoard()
	if len(b.Nets) != 24 {
		t.Fatalf("nets = %d, want 24", len(b.Nets))
	}
	pins := map[int]bool{}
	for _, n := range b.Nets {
		for _, p := range []int{n.SY*b.W + n.SX, n.TY*b.W + n.TX} {
			if pins[p] {
				t.Fatalf("pin collision at %d", p)
			}
			pins[p] = true
		}
		d := abs(n.SX-n.TX) + abs(n.SY-n.TY)
		if d < 3 || d > 14 {
			t.Fatalf("net %d length %d out of [3,14]", n.ID, d)
		}
	}
	// Deterministic for a fixed seed.
	b2 := testBoard()
	if b2.Nets[5] != b.Nets[5] {
		t.Fatal("board generation is not deterministic")
	}
}

func TestSequentialRouting(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			r := Setup(factory(), testBoard())
			th := r.E.NewThread(1)
			rng := util.NewRand(3)
			r.Work(r.E, th, 0, 1, rng)
			if r.Routed.Load()+r.Failed.Load() != uint64(len(r.Board.Nets)) {
				t.Fatalf("routed %d + failed %d != %d nets",
					r.Routed.Load(), r.Failed.Load(), len(r.Board.Nets))
			}
			if r.Routed.Load() < uint64(len(r.Board.Nets))/2 {
				t.Fatalf("only %d/%d nets routed; board too dense?",
					r.Routed.Load(), len(r.Board.Nets))
			}
			if err := r.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParallelRouting(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			r := Setup(factory(), testBoard())
			done := make(chan struct{})
			for i := 0; i < 4; i++ {
				go func(id int) {
					th := r.E.NewThread(id + 1)
					r.Work(r.E, th, id, 4, util.NewRand(uint64(id)+1))
					done <- struct{}{}
				}(i)
			}
			for i := 0; i < 4; i++ {
				<-done
			}
			if r.Routed.Load()+r.Failed.Load() != uint64(len(r.Board.Nets)) {
				t.Fatalf("work not conserved")
			}
			if err := r.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIrregularVariant(t *testing.T) {
	b := testBoard()
	b.IrregularPct = 20
	r := Setup(engines()["swisstm"](), b)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func(id int) {
			th := r.E.NewThread(id + 1)
			r.Work(r.E, th, id, 2, util.NewRand(uint64(id)+5))
			done <- struct{}{}
		}(i)
	}
	<-done
	<-done
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// Oc must have been incremented by roughly IrregularPct of committed
	// routing transactions (exact count varies with retries; just require
	// that updates happened).
	th := r.E.NewThread(0)
	oc := stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { return tx.ReadField(r.Oc, 0) })
	if oc == 0 {
		t.Fatal("irregular variant never updated Oc")
	}
}

func TestResetAllowsRerun(t *testing.T) {
	r := Setup(engines()["tinystm"](), testBoard())
	th := r.E.NewThread(1)
	r.Work(r.E, th, 0, 1, util.NewRand(9))
	first := r.Routed.Load()
	r.Reset()
	r.Work(r.E, th, 0, 1, util.NewRand(9))
	if r.Routed.Load() != first {
		t.Fatalf("rerun routed %d, first run %d", r.Routed.Load(), first)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBoardsDiffer(t *testing.T) {
	mem, main := MemoryBoard(), MainBoard()
	if main.W*main.H <= mem.W*mem.H || len(main.Nets) <= len(mem.Nets) {
		t.Fatal("main board must be larger than memory board")
	}
}
