package bench7

import (
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// TestRSTMLazySnapshotRegression is the regression test for a snapshot
// bug in RSTM's lazy-acquire mode: openWriteLazy used to clone objects
// outside the epoch discipline, letting a transaction mix data from two
// snapshots and crash on the torn state (found via the Figure 7
// experiment). See rstm.openWriteLazy.
func TestRSTMLazySnapshotRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stress test")
	}
	cfg := Config{Levels: 3, Fanout: 3, CompPool: 32, AtomicPerComp: 10, ReadOnlyPct: 90}
	for round := 0; round < 3; round++ {
		for _, spec := range []harness.EngineSpec{
			{Kind: "rstm", Acquire: "eager", Manager: "polka"},
			{Kind: "rstm", Acquire: "lazy", Manager: "polka"},
		} {
			var b *Bench
			w := harness.Workload{
				Setup: func(e stm.STM) error { b = Setup(e, cfg); return nil },
				BindOp: func(th stm.Thread, worker int, rng *util.Rand) func() {
					return b.NewOps(th, rng).Op
				},
				Check: func(e stm.STM) error { return b.Check() },
			}
			if _, err := harness.MeasureThroughput(spec, w, 8, 250*time.Millisecond); err != nil {
				t.Fatalf("round %d %s: %v", round, spec.DisplayName(), err)
			}
		}
	}
}
