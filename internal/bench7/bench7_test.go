package bench7

import (
	"sync"
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
	"swisstm/internal/util"
)

// testConfig keeps the structure small so tests stay fast.
func testConfig(roPct int) Config {
	return Config{Levels: 3, Fanout: 3, CompPool: 16, AtomicPerComp: 8,
		ConnPerPart: 3, DocWords: 4, ReadOnlyPct: roPct}
}

func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.NewSerializer()}) },
	}
}

// TestZeroAllocOps extends the allocation-regression gate of
// DESIGN.md §7.2 to the bench7 operation loop itself: with the
// pre-bound per-thread op tables, a warmed 100%-read-only op stream —
// index lookups, graph walks, date queries, long traversals — must
// allocate nothing on the word-based engines, and nothing on RSTM
// either (invisible read-only transactions reuse their attempt
// descriptor). The op dispatch used to build a fresh closure per call,
// the last remaining allocation per operation in this package.
func TestZeroAllocOps(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			b := Setup(factory(), testConfig(100))
			o := b.NewOps(b.E.NewThread(1), util.NewRand(11))
			stmtest.ZeroAllocLoop(t, name+"/bench7-readonly", 300, o.Op)
		})
	}
}

func TestSetupInvariants(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			b := Setup(factory(), testConfig(90))
			if len(b.Bases) != 9 { // fanout^(levels-1) = 3^2
				t.Fatalf("base assemblies = %d, want 9", len(b.Bases))
			}
			if err := b.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEachOperation(t *testing.T) {
	b := Setup(engines()["swisstm"](), testConfig(90))
	o := b.NewOps(b.E.NewThread(1), util.NewRand(5))
	ops := map[string]func(){
		"shortRead":      func() { o.ShortRead() },
		"shortUpdate":    o.ShortUpdate,
		"readComponent":  func() { o.ReadComponent() },
		"updateComp":     o.UpdateComponent,
		"queryDates":     func() { o.QueryDates() },
		"longTraversal":  func() { o.LongTraversal() },
		"longTravUpdate": o.LongTraversalUpdate,
		"structureMod":   o.StructureMod,
	}
	for name, op := range ops {
		for i := 0; i < 10; i++ {
			op()
		}
		if err := b.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestStructureModReplacesComposite(t *testing.T) {
	b := Setup(engines()["swisstm"](), testConfig(90))
	th := b.E.NewThread(1)
	rng := util.NewRand(7)
	// Count live composites before and after: SM removes one and adds one
	// when the slot was occupied, so the total in the index stays equal.
	count := func() int {
		return stm.AtomicRO(th, func(tx stm.TxRO) int {
			return b.CompIdx.RangeCount(tx, 0, ^stm.Word(0)>>1)
		})
	}
	// Note: multiple base-assembly slots may share one composite, in which
	// case replacing one slot removes a composite still referenced
	// elsewhere from the index; Check() would catch that. With distinct
	// slots the count is preserved.
	before := count()
	o := b.NewOps(th, rng)
	for i := 0; i < 5; i++ {
		o.StructureMod()
	}
	after := count()
	if after < before-5 || after > before+5 {
		t.Fatalf("composite count moved from %d to %d", before, after)
	}
}

func TestConcurrentMixedWorkloads(t *testing.T) {
	for name, factory := range engines() {
		for _, ro := range []int{90, 60, 10} {
			name := name
			ro := ro
			t.Run(name+"/"+map[int]string{90: "read", 60: "rw", 10: "write"}[ro], func(t *testing.T) {
				b := Setup(factory(), testConfig(ro))
				var wg sync.WaitGroup
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						o := b.NewOps(b.E.NewThread(id+1), util.NewRand(uint64(id)*77+1))
						for n := 0; n < 120; n++ {
							o.Op()
						}
					}(i)
				}
				wg.Wait()
				if err := b.Check(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
