// Package bench7 implements an STMBench7-style workload (Guerraoui,
// Kapałka, Vitek, EuroSys 2007) — the paper's flagship benchmark for
// complex, mixed transactional workloads (Figures 2, 7, 9, 12; Table 1).
//
// The data structure follows STMBench7's CAD-inspired design:
//
//	Module → ComplexAssembly tree (fanout^levels) → BaseAssemblies,
//	each referencing composite parts from a shared pool; every
//	CompositePart owns a Document and a connected graph of AtomicParts;
//	red-black tree indexes map ids and build dates to parts.
//
// The operation mix spans four orders of magnitude of transaction length —
// from an index lookup touching a dozen words to a full-structure
// traversal touching every atomic part — and three workload mixes are
// provided, matching the paper: read-dominated (90% read-only), read-write
// (60%) and write-dominated (10%).
//
// Relative to the original (which is "many orders of magnitude larger
// than other STM benchmarks"), the default dimensions are scaled to run
// multi-second experiments on a laptop while preserving the shape: a
// deep shared tree, a fat middle layer of shared composite parts, long
// pointer chases, and index updates that conflict with everything.
package bench7

import (
	"fmt"

	"swisstm/internal/rbtree"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Config sizes the structure and selects the workload mix.
type Config struct {
	Levels        int // complex-assembly tree height (≥ 2)
	Fanout        int // children per complex assembly
	CompPool      int // composite parts in the shared pool
	AtomicPerComp int // atomic parts per composite part
	ConnPerPart   int // outgoing connections per atomic part (≤ 3)
	DocWords      int // document payload words
	ReadOnlyPct   int // percentage of read-only operations (90/60/10)
	// PlainReads routes the read-only operation classes through plain
	// stm.Atomic instead of the declared read-only stm.AtomicRO fast
	// path. It exists for the ro-fastpath ablation pair
	// (cmd/benchjson); leave it false.
	PlainReads bool
}

func (c *Config) fill() {
	if c.Levels == 0 {
		c.Levels = 5
	}
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	if c.CompPool == 0 {
		c.CompPool = 128
	}
	if c.AtomicPerComp == 0 {
		c.AtomicPerComp = 20
	}
	if c.ConnPerPart == 0 {
		c.ConnPerPart = 3
	}
	if c.DocWords == 0 {
		c.DocWords = 16
	}
	if c.ReadOnlyPct == 0 {
		c.ReadOnlyPct = 90
	}
}

// Workload mix presets matching the paper's three STMBench7 workloads.
var (
	ReadDominated  = Config{ReadOnlyPct: 90}
	ReadWrite      = Config{ReadOnlyPct: 60}
	WriteDominated = Config{ReadOnlyPct: 10}
)

// Object field layouts. All objects are blocks of stm.Word fields.
const (
	// AtomicPart: id, x, y, buildDate, conn0..conn{K-1}
	apID uint32 = iota
	apX
	apY
	apDate
	apConn0 // + ConnPerPart fields
)

const (
	// CompositePart: id, buildDate, doc, partsArr (object with
	// AtomicPerComp handle fields), rootPart, usedIn reference count
	// (STMBench7 keeps usedIn lists; a count suffices for unlink).
	cpID uint32 = iota
	cpDate
	cpDoc
	cpParts
	cpRoot
	cpUsed
	cpFields
)

const (
	// BaseAssembly: id, level (=1), comp0..comp{compPerBase-1}.
	// The level field sits at the same offset as in ComplexAssembly so
	// the tree walk can type-discriminate nodes.
	baID uint32 = iota
	baLevel
	baComp0
)

const (
	// ComplexAssembly: id, level, sub0..sub{fanout-1}
	caID uint32 = iota
	caLevel
	caSub0
)

// compPerBase is STMBench7's NumCompPerAssembly.
const compPerBase = 3

// counters object fields: next composite id, next atomic part id, next
// build date.
const (
	cntCompID uint32 = iota
	cntPartID
	cntDate
	cntFields
)

// Bench is a constructed STMBench7 instance bound to one engine.
type Bench struct {
	E       stm.STM
	Cfg     Config
	Module  stm.Handle
	PartIdx *rbtree.Tree // atomic-part id → part handle
	CompIdx *rbtree.Tree // composite-part id → composite handle
	DateIdx *rbtree.Tree // build date → composite handle
	Bases   []stm.Handle // base assemblies (structure is fixed; contents mutate)

	counters    stm.Handle
	initialComp int // id range used by lookup operations
	initialPart int
}

// walkScratch is the reusable graph-walk state: a visited set and a DFS
// stack. Each Ops table owns one (the hot path), and Check builds its
// own; both used to come from a fresh Go map and slice per traversal —
// an allocation plus hash-table growth on every operation, ~a quarter of
// a read-dominated operation's time (DESIGN.md §7).
type walkScratch struct {
	seen  *util.HandleSet
	stack []stm.Handle
}

func newWalkScratch(cfg *Config) walkScratch {
	return walkScratch{
		seen:  util.NewHandleSet(cfg.AtomicPerComp),
		stack: make([]stm.Handle, 0, cfg.AtomicPerComp),
	}
}

// Setup builds the structure single-threadedly on thread id 0.
func Setup(e stm.STM, cfg Config) *Bench {
	cfg.fill()
	b := &Bench{E: e, Cfg: cfg}
	th := e.NewThread(0)
	b.PartIdx = rbtree.New(th)
	b.CompIdx = rbtree.New(th)
	b.DateIdx = rbtree.New(th)
	b.counters = stm.Atomic(th, func(tx stm.Tx) stm.Handle { return tx.NewObject(cntFields) })

	// Composite-part pool. Each composite gets its own transaction to
	// keep setup transactions bounded.
	comps := make([]stm.Handle, cfg.CompPool)
	for i := range comps {
		comps[i] = stm.Atomic(th, b.newCompositePart)
	}
	b.initialComp = cfg.CompPool
	b.initialPart = cfg.CompPool * cfg.AtomicPerComp

	// Assembly tree.
	rng := util.NewRand(0xb7)
	var build func(tx stm.Tx, level int) stm.Handle
	id := 0
	build = func(tx stm.Tx, level int) stm.Handle {
		id++
		if level == 1 { // base assembly
			ba := tx.NewObject(uint32(2 + compPerBase))
			tx.WriteField(ba, baID, stm.Word(id))
			tx.WriteField(ba, baLevel, 1)
			for k := 0; k < compPerBase; k++ {
				c := comps[rng.Intn(len(comps))]
				tx.WriteRef(ba, baComp0+uint32(k), c)
				tx.WriteField(c, cpUsed, tx.ReadField(c, cpUsed)+1)
			}
			b.Bases = append(b.Bases, ba)
			return ba
		}
		ca := tx.NewObject(uint32(2 + cfg.Fanout))
		tx.WriteField(ca, caID, stm.Word(id))
		tx.WriteField(ca, caLevel, stm.Word(level))
		for k := 0; k < cfg.Fanout; k++ {
			tx.WriteRef(ca, caSub0+uint32(k), build(tx, level-1))
		}
		return ca
	}
	stm.AtomicVoid(th, func(tx stm.Tx) {
		root := build(tx, cfg.Levels)
		b.Module = tx.NewObject(2)
		tx.WriteField(b.Module, 0, 1) // module id
		tx.WriteRef(b.Module, 1, root)
	})
	return b
}

// newCompositePart creates a composite part with its document and atomic
// part graph, registering it in all indexes.
func (b *Bench) newCompositePart(tx stm.Tx) stm.Handle {
	cfg := &b.Cfg
	compID := tx.ReadField(b.counters, cntCompID) + 1
	tx.WriteField(b.counters, cntCompID, compID)
	date := tx.ReadField(b.counters, cntDate) + 1
	tx.WriteField(b.counters, cntDate, date)

	doc := tx.NewObject(uint32(1 + cfg.DocWords))
	tx.WriteField(doc, 0, compID)
	for w := 0; w < cfg.DocWords; w++ {
		tx.WriteField(doc, uint32(1+w), stm.Word(w)^stm.Word(compID))
	}

	partsArr := tx.NewObject(uint32(cfg.AtomicPerComp))
	parts := make([]stm.Handle, cfg.AtomicPerComp)
	for i := 0; i < cfg.AtomicPerComp; i++ {
		partID := tx.ReadField(b.counters, cntPartID) + 1
		tx.WriteField(b.counters, cntPartID, partID)
		p := tx.NewObject(uint32(4 + cfg.ConnPerPart))
		tx.WriteField(p, apID, partID)
		tx.WriteField(p, apX, partID*31)
		tx.WriteField(p, apY, partID*17)
		tx.WriteField(p, apDate, date)
		parts[i] = p
		tx.WriteRef(partsArr, uint32(i), p)
		b.PartIdx.Insert(tx, partID, stm.Word(p))
	}
	// Ring + chords connection graph: part i connects to i+1, i+2, i+3
	// (mod n) — connected, deterministic, degree ConnPerPart.
	n := cfg.AtomicPerComp
	for i := 0; i < n; i++ {
		for k := 0; k < cfg.ConnPerPart; k++ {
			tx.WriteRef(parts[i], apConn0+uint32(k), parts[(i+k+1)%n])
		}
	}

	comp := tx.NewObject(cpFields)
	tx.WriteField(comp, cpID, compID)
	tx.WriteField(comp, cpDate, date)
	tx.WriteRef(comp, cpDoc, doc)
	tx.WriteRef(comp, cpParts, partsArr)
	tx.WriteRef(comp, cpRoot, parts[0])
	b.CompIdx.Insert(tx, compID, stm.Word(comp))
	b.DateIdx.Insert(tx, date, stm.Word(comp))
	return comp
}

// ---------- Operations ----------
//
// Read-only: ShortRead, ReadComponent, QueryDates, LongTraversal.
// Updates:   ShortUpdate, UpdateComponent, StructureMod,
//            LongTraversalUpdate.
//
// Operations live on a per-thread Ops table: every transaction body and
// graph visitor is a closure built once at NewOps. The old per-call
// shape — each operation capturing its parameters in a fresh closure —
// was the last remaining allocation per bench7 operation; the table
// passes parameters through fields instead, so the steady-state op loop
// allocates nothing (bench7_test.TestZeroAllocOps holds the read-only
// mixes to exactly zero).

// graphWalk visits every atomic part of a composite reachable from its
// root part (bounded DFS over the connection graph, using the caller's
// scratch), calling visit for each distinct part.
func (b *Bench) graphWalk(tx stm.TxRO, comp stm.Handle, ws *walkScratch, visit func(part stm.Handle)) int {
	root := tx.ReadRef(comp, cpRoot)
	if root == 0 {
		return 0
	}
	ws.seen.Reset()
	ws.seen.Add(uint64(root))
	stack := append(ws.stack[:0], root)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(p)
		for k := 0; k < b.Cfg.ConnPerPart; k++ {
			q := tx.ReadRef(p, apConn0+uint32(k))
			if q != 0 && ws.seen.Add(uint64(q)) {
				stack = append(stack, q)
			}
		}
	}
	ws.stack = stack
	return ws.seen.Len()
}

// randomComposite picks a random live composite part via the id index.
func (b *Bench) randomComposite(tx stm.TxRO, rng *util.Rand) (stm.Handle, bool) {
	for try := 0; try < 4; try++ {
		key := stm.Word(rng.Intn(b.initialComp) + 1)
		if h, ok := b.CompIdx.Lookup(tx, key); ok {
			return stm.Handle(h), true
		}
	}
	return 0, false
}

// assemblyWalk traverses the complex-assembly tree from the module root,
// calling visit for every composite referenced by every base assembly.
// Plain method recursion: the self-referential `var walk func(...)`
// closure it replaced allocated on every traversal.
func (b *Bench) assemblyWalk(tx stm.TxRO, visit func(comp stm.Handle)) {
	b.walkAssembly(tx, tx.ReadRef(b.Module, 1), visit)
}

func (b *Bench) walkAssembly(tx stm.TxRO, h stm.Handle, visit func(comp stm.Handle)) {
	level := tx.ReadField(h, caLevel)
	if level <= 1 { // base assembly (field layout: baID, comps...)
		for k := 0; k < compPerBase; k++ {
			comp := tx.ReadRef(h, baComp0+uint32(k))
			if comp != 0 {
				visit(comp)
			}
		}
		return
	}
	for k := 0; k < b.Cfg.Fanout; k++ {
		sub := tx.ReadRef(h, caSub0+uint32(k))
		if sub != 0 {
			b.walkAssembly(tx, sub, visit)
		}
	}
}

// Ops is a per-thread operation table. Each worker goroutine builds one
// over its engine thread and private RNG and drives Op (or the
// individual operations); Ops is not safe for concurrent use, exactly
// like the Thread it wraps.
//
// Every transaction body and graph visitor is a closure built once at
// NewOps, and each read-only operation class has two pre-bound bodies:
// the stm.TxRO one AtomicRO runs (the default) and a plain stm.Tx twin
// for the PlainReads ablation. Results return as values through the v2
// API; parameters still pass through fields so the steady-state op loop
// allocates nothing (bench7_test.TestZeroAllocOps holds the read-only
// mixes to exactly zero).
type Ops struct {
	b   *Bench
	th  stm.Thread
	rng *util.Rand
	ws  walkScratch

	// Parameter slots written by the dispatch methods and the
	// current-transaction rebinds; the pre-bound closures read them.
	tx    stm.Tx   // current update transaction (for update visitors)
	rtx   stm.TxRO // current read transaction (for read visitors)
	key   stm.Word // part/composite id of the short ops
	lo    stm.Word // date-window start
	sum   stm.Word
	total int
	base  stm.Handle // structure-mod target slot
	slot  uint32

	shortRead, readComponent, queryDates, longTraversal         func(stm.TxRO) stm.Word
	shortReadRW, readComponentRW, queryDatesRW, longTraversalRW func(stm.Tx) stm.Word
	shortUpdate, updateComponent, longTravUpdate, structMod     func(stm.Tx)
	visitSum, visitSwap, visitDate                              func(p stm.Handle)
	visitCompCount, visitCompBump                               func(comp stm.Handle)
}

// NewOps builds the pre-bound operation table for one worker thread.
func (b *Bench) NewOps(th stm.Thread, rng *util.Rand) *Ops {
	o := &Ops{b: b, th: th, rng: rng, ws: newWalkScratch(&b.Cfg)}

	o.visitSum = func(p stm.Handle) { o.sum += o.rtx.ReadField(p, apX) }
	o.visitSwap = func(p stm.Handle) {
		x := o.tx.ReadField(p, apX)
		y := o.tx.ReadField(p, apY)
		o.tx.WriteField(p, apX, y)
		o.tx.WriteField(p, apY, x)
	}
	o.visitDate = func(p stm.Handle) { _ = o.rtx.ReadField(p, apDate) }
	o.visitCompCount = func(comp stm.Handle) {
		o.total += b.graphWalk(o.rtx, comp, &o.ws, o.visitDate)
	}
	o.visitCompBump = func(comp stm.Handle) {
		o.tx.WriteField(comp, cpDate, o.tx.ReadField(comp, cpDate)+1)
	}

	o.shortRead = func(tx stm.TxRO) stm.Word {
		if h, ok := b.PartIdx.Lookup(tx, o.key); ok {
			p := stm.Handle(h)
			return tx.ReadField(p, apX) + tx.ReadField(p, apY)
		}
		return 0
	}
	o.shortUpdate = func(tx stm.Tx) {
		if h, ok := b.PartIdx.Lookup(tx, o.key); ok {
			p := stm.Handle(h)
			x := tx.ReadField(p, apX)
			y := tx.ReadField(p, apY)
			tx.WriteField(p, apX, y)
			tx.WriteField(p, apY, x)
		}
	}
	o.readComponent = func(tx stm.TxRO) stm.Word {
		o.rtx = tx
		o.sum = 0
		if comp, ok := b.randomComposite(tx, o.rng); ok {
			b.graphWalk(tx, comp, &o.ws, o.visitSum)
		}
		return o.sum
	}
	o.updateComponent = func(tx stm.Tx) {
		o.tx = tx
		if comp, ok := b.randomComposite(tx, o.rng); ok {
			b.graphWalk(tx, comp, &o.ws, o.visitSwap)
		}
	}
	o.queryDates = func(tx stm.TxRO) stm.Word {
		return stm.Word(b.DateIdx.RangeCount(tx, o.lo, o.lo+16))
	}
	o.longTraversal = func(tx stm.TxRO) stm.Word {
		o.rtx = tx
		o.total = 0
		b.assemblyWalk(tx, o.visitCompCount)
		return stm.Word(o.total)
	}
	o.longTravUpdate = func(tx stm.Tx) {
		o.tx = tx
		b.assemblyWalk(tx, o.visitCompBump)
	}
	o.structMod = func(tx stm.Tx) {
		old := tx.ReadRef(o.base, o.slot)
		if old != 0 {
			// Drop one reference; unregister the composite only when the
			// last base assembly stops using it (shared composites stay).
			used := tx.ReadField(old, cpUsed)
			tx.WriteField(old, cpUsed, used-1)
			if used <= 1 {
				oldID := tx.ReadField(old, cpID)
				oldDate := tx.ReadField(old, cpDate)
				b.CompIdx.Delete(tx, oldID)
				b.DateIdx.Delete(tx, oldDate)
				partsArr := tx.ReadRef(old, cpParts)
				for i := 0; i < b.Cfg.AtomicPerComp; i++ {
					p := tx.ReadRef(partsArr, uint32(i))
					if p != 0 {
						b.PartIdx.Delete(tx, tx.ReadField(p, apID))
					}
				}
			}
		}
		comp := b.newCompositePart(tx)
		tx.WriteField(comp, cpUsed, 1)
		tx.WriteRef(o.base, o.slot, comp)
	}

	// Plain-Atomic twins of the read-only bodies (PlainReads ablation):
	// identical work through the read-write machinery. stm.Tx satisfies
	// stm.TxRO, so each twin is a one-line pre-bound adapter.
	o.shortReadRW = func(tx stm.Tx) stm.Word { return o.shortRead(tx) }
	o.readComponentRW = func(tx stm.Tx) stm.Word { return o.readComponent(tx) }
	o.queryDatesRW = func(tx stm.Tx) stm.Word { return o.queryDates(tx) }
	o.longTraversalRW = func(tx stm.Tx) stm.Word { return o.longTraversal(tx) }
	return o
}

// readOnly dispatches one pre-bound read-only body through AtomicRO (or
// plain Atomic under the PlainReads ablation) and returns its value.
func (o *Ops) readOnly(ro func(stm.TxRO) stm.Word, rw func(stm.Tx) stm.Word) stm.Word {
	if o.b.Cfg.PlainReads {
		return stm.Atomic(o.th, rw)
	}
	return stm.AtomicRO(o.th, ro)
}

// ShortRead looks up a random atomic part by id and returns the sum of
// its coordinates (STMBench7 "short operation" class).
func (o *Ops) ShortRead() stm.Word {
	o.key = stm.Word(o.rng.Intn(o.b.initialPart) + 1)
	return o.readOnly(o.shortRead, o.shortReadRW)
}

// ShortUpdate swaps the coordinates of a random atomic part
// (STMBench7 "short update" class).
func (o *Ops) ShortUpdate() {
	o.key = stm.Word(o.rng.Intn(o.b.initialPart) + 1)
	stm.AtomicVoid(o.th, o.shortUpdate)
}

// ReadComponent walks one composite part's whole atomic-part graph
// read-only and returns the coordinate sum (STMBench7 traversal T1
// restricted to one component).
func (o *Ops) ReadComponent() stm.Word { return o.readOnly(o.readComponent, o.readComponentRW) }

// UpdateComponent walks one composite part's graph swapping coordinates
// (STMBench7 T2b: long-ish update transaction).
func (o *Ops) UpdateComponent() { stm.AtomicVoid(o.th, o.updateComponent) }

// QueryDates scans the build-date index for a random window and returns
// the match count (STMBench7 query class).
func (o *Ops) QueryDates() stm.Word {
	o.lo = stm.Word(o.rng.Intn(o.b.initialComp) + 1)
	return o.readOnly(o.queryDates, o.queryDatesRW)
}

// LongTraversal is STMBench7's long read-only traversal: the whole
// assembly tree, every composite, every atomic part. It returns the
// number of parts visited.
func (o *Ops) LongTraversal() stm.Word { return o.readOnly(o.longTraversal, o.longTraversalRW) }

// LongTraversalUpdate is the long update traversal: it touches every
// composite part's build date through the whole tree.
func (o *Ops) LongTraversalUpdate() { stm.AtomicVoid(o.th, o.longTravUpdate) }

// StructureMod is STMBench7's structural modification: build a fresh
// composite part (graph, document, index entries), unlink a random
// composite from a random base assembly slot and link the new one in.
// The old composite is removed from the id and date indexes (its parts
// are unlinked from the part index), mirroring SM2/SM3.
func (o *Ops) StructureMod() {
	o.base = o.b.Bases[o.rng.Intn(len(o.b.Bases))]
	o.slot = baComp0 + uint32(o.rng.Intn(compPerBase))
	stm.AtomicVoid(o.th, o.structMod)
}

// Op dispatches one operation according to the workload mix; this is the
// function the throughput harness drives.
func (o *Ops) Op() {
	readOnly := o.rng.Intn(100) < o.b.Cfg.ReadOnlyPct
	roll := o.rng.Intn(100)
	if readOnly {
		switch {
		case roll < 40:
			o.ShortRead()
		case roll < 80:
			o.ReadComponent()
		case roll < 95:
			o.QueryDates()
		default:
			o.LongTraversal()
		}
		return
	}
	switch {
	case roll < 40:
		o.ShortUpdate()
	case roll < 80:
		o.UpdateComponent()
	case roll < 95:
		o.StructureMod()
	default:
		o.LongTraversalUpdate()
	}
}

// Check validates the structural invariants after a run: every base
// assembly slot references a composite registered in the id index, every
// composite's graph has exactly AtomicPerComp reachable parts, and each
// part is present in the part index.
func (b *Bench) Check() error {
	th := b.E.NewThread(stm.MaxThreads - 1)
	ws := newWalkScratch(&b.Cfg)
	return stm.AtomicRO(th, func(tx stm.TxRO) error {
		for _, base := range b.Bases {
			for k := 0; k < compPerBase; k++ {
				comp := tx.ReadRef(base, baComp0+uint32(k))
				if comp == 0 {
					return fmt.Errorf("bench7: empty base-assembly slot")
				}
				id := tx.ReadField(comp, cpID)
				if got, ok := b.CompIdx.Lookup(tx, id); !ok || stm.Handle(got) != comp {
					return fmt.Errorf("bench7: composite %d missing from index", id)
				}
				var err error
				n := b.graphWalk(tx, comp, &ws, func(p stm.Handle) {
					pid := tx.ReadField(p, apID)
					if got, ok := b.PartIdx.Lookup(tx, pid); !ok || stm.Handle(got) != p {
						err = fmt.Errorf("bench7: part %d missing from index", pid)
					}
				})
				if err != nil {
					return err
				}
				if n != b.Cfg.AtomicPerComp {
					return fmt.Errorf("bench7: composite %d graph has %d parts, want %d",
						id, n, b.Cfg.AtomicPerComp)
				}
			}
		}
		return nil
	})
}
