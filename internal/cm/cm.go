// Package cm implements the contention managers the paper evaluates with
// RSTM (§2.1): Timid, Polka, Greedy and Serializer. A contention manager
// decides what an *attacker* transaction does when it conflicts with a
// *victim* that currently owns the contended object.
//
// SwissTM's two-phase manager is not here: it is inseparable from the
// engine's write-counting fast path and lives in internal/swisstm.
package cm

import (
	"sync/atomic"

	"swisstm/internal/util"
)

// Decision is a contention manager's verdict for one conflict encounter.
type Decision int

const (
	// AbortSelf: the attacker rolls back and retries.
	AbortSelf Decision = iota
	// AbortOther: the attacker kills the victim and takes the object.
	AbortOther
	// Wait: the attacker backs off and re-examines the conflict.
	Wait
)

// TxState is the per-thread view a manager keeps of a transaction. Fields
// are atomic because victims' states are read by attackers.
type TxState struct {
	// Timestamp orders transactions for Greedy/Serializer (lower = older
	// = higher priority). ^0 means "no timestamp".
	Timestamp atomic.Uint64
	// Opens counts objects opened so far; Polka uses it as the priority.
	Opens atomic.Uint64
}

// NoTimestamp is the Timestamp value of transactions that have none.
const NoTimestamp = ^uint64(0)

// Manager arbitrates conflicts. Implementations must be safe for
// concurrent use: Resolve runs on the attacker's thread while the victim
// runs elsewhere.
type Manager interface {
	Name() string
	// OnStart is called at every transaction begin; restart reports
	// whether this is a retry of an aborted transaction.
	OnStart(tx *TxState, restart bool)
	// OnOpen is called after every successful object open.
	OnOpen(tx *TxState)
	// Resolve decides the attacker's move at the attempt-th consecutive
	// encounter of the same conflict (attempt starts at 0). A Wait
	// decision is followed by WaitBackoff and a re-check.
	Resolve(attacker, victim *TxState, attempt int) Decision
	// WaitBackoff performs the manager's waiting policy after Resolve
	// returned Wait.
	WaitBackoff(rng *util.Rand, attempt int)
}

// Timid always aborts the attacker — the default scheme of TL2 and
// TinySTM, cheap for short transactions and unfair to long ones (§1).
type Timid struct{}

// NewTimid returns the timid manager.
func NewTimid() *Timid { return &Timid{} }

// Name implements Manager.
func (*Timid) Name() string { return "Timid" }

// OnStart implements Manager.
func (*Timid) OnStart(tx *TxState, restart bool) {}

// OnOpen implements Manager.
func (*Timid) OnOpen(tx *TxState) {}

// Resolve implements Manager.
func (*Timid) Resolve(attacker, victim *TxState, attempt int) Decision { return AbortSelf }

// WaitBackoff implements Manager.
func (*Timid) WaitBackoff(rng *util.Rand, attempt int) {}

// Greedy (Guerraoui, Herlihy, Pochon, PODC 2005) gives every transaction a
// unique timestamp at its *first* start, kept across restarts; the
// transaction with the lower timestamp always wins. This makes Greedy
// starvation-free — the property §5 shows matters for long transactions —
// at the cost of a shared counter touched by every transaction
// (Figure 10's weakness on short transactions).
type Greedy struct {
	clock atomic.Uint64
}

// NewGreedy returns a Greedy manager with its own timestamp source.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Manager.
func (*Greedy) Name() string { return "Greedy" }

// OnStart implements Manager.
func (g *Greedy) OnStart(tx *TxState, restart bool) {
	if !restart {
		tx.Timestamp.Store(g.clock.Add(1))
	}
	tx.Opens.Store(0)
}

// OnOpen implements Manager.
func (*Greedy) OnOpen(tx *TxState) {}

// Resolve implements Manager.
func (*Greedy) Resolve(attacker, victim *TxState, attempt int) Decision {
	if attacker.Timestamp.Load() < victim.Timestamp.Load() {
		return AbortOther
	}
	return Wait // the older victim will finish; then the attacker proceeds
}

// WaitBackoff implements Manager.
func (*Greedy) WaitBackoff(rng *util.Rand, attempt int) {
	util.BackoffExp(rng, attempt, 64)
}

// Serializer is Greedy with the timestamp reassigned on every restart, so
// it does not prevent starvation (§2.1) — a restarted transaction becomes
// the youngest and loses again. It was RSTM's best performer on
// STMBench7 in the paper's configuration (§4).
type Serializer struct {
	clock atomic.Uint64
}

// NewSerializer returns a Serializer manager.
func NewSerializer() *Serializer { return &Serializer{} }

// Name implements Manager.
func (*Serializer) Name() string { return "Serializer" }

// OnStart implements Manager.
func (s *Serializer) OnStart(tx *TxState, restart bool) {
	tx.Timestamp.Store(s.clock.Add(1)) // fresh timestamp on every attempt
	tx.Opens.Store(0)
}

// OnOpen implements Manager.
func (*Serializer) OnOpen(tx *TxState) {}

// Resolve implements Manager.
func (*Serializer) Resolve(attacker, victim *TxState, attempt int) Decision {
	if attacker.Timestamp.Load() < victim.Timestamp.Load() {
		return AbortOther
	}
	return Wait
}

// WaitBackoff implements Manager.
func (*Serializer) WaitBackoff(rng *util.Rand, attempt int) {
	util.BackoffExp(rng, attempt, 64)
}

// Polka (Scherer & Scott, PODC 2005) combines Polite's exponential
// back-off with Karma's priority accumulation: a transaction's priority is
// the number of objects it has opened; an attacker waits (with
// exponentially growing intervals, gaining one priority unit per wait)
// and aborts the victim once its effective priority reaches the victim's.
// The paper found it best-in-class on small benchmarks but inferior to
// Greedy on large ones (Figure 9).
type Polka struct{}

// NewPolka returns the Polka manager.
func NewPolka() *Polka { return &Polka{} }

// Name implements Manager.
func (*Polka) Name() string { return "Polka" }

// OnStart implements Manager.
func (*Polka) OnStart(tx *TxState, restart bool) { tx.Opens.Store(0) }

// OnOpen implements Manager.
func (*Polka) OnOpen(tx *TxState) { tx.Opens.Add(1) }

// Resolve implements Manager.
func (*Polka) Resolve(attacker, victim *TxState, attempt int) Decision {
	if attacker.Opens.Load()+uint64(attempt) >= victim.Opens.Load() {
		return AbortOther
	}
	return Wait
}

// WaitBackoff implements Manager.
func (*Polka) WaitBackoff(rng *util.Rand, attempt int) {
	util.BackoffExp(rng, attempt, 128)
}

// ByName returns a fresh manager instance for a configuration string, or
// nil for an unknown name. Managers with internal clocks must not be
// shared between engines, hence the factory.
func ByName(name string) Manager {
	switch name {
	case "timid", "Timid":
		return NewTimid()
	case "greedy", "Greedy":
		return NewGreedy()
	case "serializer", "Serializer":
		return NewSerializer()
	case "polka", "Polka":
		return NewPolka()
	}
	return nil
}
