package cm

import (
	"testing"

	"swisstm/internal/util"
)

func TestTimidAlwaysAbortsSelf(t *testing.T) {
	m := NewTimid()
	var a, v TxState
	for i := 0; i < 5; i++ {
		if d := m.Resolve(&a, &v, i); d != AbortSelf {
			t.Fatalf("timid decision = %v, want AbortSelf", d)
		}
	}
}

func TestGreedyOlderWins(t *testing.T) {
	m := NewGreedy()
	var older, younger TxState
	m.OnStart(&older, false)
	m.OnStart(&younger, false)
	if d := m.Resolve(&older, &younger, 0); d != AbortOther {
		t.Fatalf("older attacker: got %v, want AbortOther", d)
	}
	if d := m.Resolve(&younger, &older, 0); d != Wait {
		t.Fatalf("younger attacker: got %v, want Wait", d)
	}
	// Timestamps persist across restarts: the older transaction keeps
	// winning after it is restarted (starvation freedom).
	m.OnStart(&older, true)
	if d := m.Resolve(&older, &younger, 0); d != AbortOther {
		t.Fatalf("restarted older attacker: got %v, want AbortOther", d)
	}
}

func TestSerializerReassignsTimestamp(t *testing.T) {
	m := NewSerializer()
	var a, b TxState
	m.OnStart(&a, false)
	m.OnStart(&b, false)
	if d := m.Resolve(&a, &b, 0); d != AbortOther {
		t.Fatalf("a should be older initially")
	}
	// After a restart, a becomes the youngest and loses.
	m.OnStart(&a, true)
	if d := m.Resolve(&a, &b, 0); d != Wait {
		t.Fatalf("restarted a should now lose: got %v", d)
	}
}

func TestPolkaPriorityAccumulation(t *testing.T) {
	m := NewPolka()
	var small, big TxState
	m.OnStart(&small, false)
	m.OnStart(&big, false)
	for i := 0; i < 10; i++ {
		m.OnOpen(&big)
	}
	m.OnOpen(&small)
	// The small attacker must first wait...
	if d := m.Resolve(&small, &big, 0); d != Wait {
		t.Fatalf("low-priority attacker should wait, got %v", d)
	}
	// ...but each waiting round adds temporary priority; eventually it
	// kills the victim (Polka's bounded patience).
	if d := m.Resolve(&small, &big, 9); d != AbortOther {
		t.Fatalf("attacker with enough waits should win, got %v", d)
	}
	// A high-priority attacker wins immediately.
	if d := m.Resolve(&big, &small, 0); d != AbortOther {
		t.Fatalf("high-priority attacker should win, got %v", d)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"timid", "greedy", "serializer", "polka"} {
		if m := ByName(name); m == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
	}
	if m := ByName("nope"); m != nil {
		t.Fatalf("ByName(nope) should be nil")
	}
	// Managers with clocks must be independent instances.
	g1, g2 := NewGreedy(), NewGreedy()
	var a, b TxState
	g1.OnStart(&a, false)
	g2.OnStart(&b, false)
	if a.Timestamp.Load() != b.Timestamp.Load() {
		t.Fatal("fresh greedy clocks should both start at 1")
	}
}

func TestWaitBackoffTerminates(t *testing.T) {
	r := util.NewRand(1)
	for _, m := range []Manager{NewGreedy(), NewSerializer(), NewPolka(), NewTimid()} {
		for i := 0; i < 20; i++ {
			m.WaitBackoff(r, i) // must return promptly even for large attempts
		}
	}
}
