package util

import "math"

// Dist draws item indices in [0, N()) — the key-choice distributions of
// the YCSB-style txkv workloads. Implementations are immutable after
// construction and safe for concurrent use: all randomness comes from
// the caller's per-worker Rand, so seeded runs reproduce exactly and
// the transaction hot path never contends on sampler state.
type Dist interface {
	// Next draws one index using r as the randomness source.
	Next(r *Rand) int
	// N is the population size.
	N() int
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int }

// NewUniform returns a uniform distribution over [0, n). n must be > 0.
func NewUniform(n int) Uniform {
	if n <= 0 {
		panic("util: uniform population must be positive")
	}
	return Uniform{n: n}
}

// Next implements Dist.
func (u Uniform) Next(r *Rand) int { return r.Intn(u.n) }

// N implements Dist.
func (u Uniform) N() int { return u.n }

// Zipf draws rank indices from a zipfian distribution over [0, n): rank
// 0 is the hottest item and rank frequencies fall off as 1/(i+1)^theta —
// the standard model for skewed key popularity in key-value workloads
// (YCSB). Construction is O(n); it precomputes the exact inverse CDF
// plus a quantile index, so drawing is O(1) expected with no math.Pow on
// the hot path (the YCSB approximation formula this replaces cost one
// Pow — ~a third of a whole txkv Get — per draw; see DESIGN.md §7).
//
// Hot ranks are the low indices; callers that map ranks straight onto
// key space get their hot keys adjacent. The txkv store hashes keys
// before placement, so no extra scrambling pass is needed there.
type Zipf struct {
	n     int
	theta float64
	cdf   []float64 // cdf[i] = P(rank ≤ i); cdf[n-1] == 1
	qidx  []int32   // qidx[k] = first rank i with cdf[i] ≥ k/zipfQuantiles
}

// zipfQuantiles is the quantile-index resolution: Next narrows a draw to
// an expected O(1) rank range before its final scan.
const zipfQuantiles = 1024

// NewZipf returns a zipfian distribution over [0, n) with skew theta.
// n must be > 0 and theta in (0, 1); theta near 1 is most skewed
// (YCSB's default is 0.99).
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("util: zipf population must be positive")
	}
	if theta <= 0 || theta >= 1 {
		panic("util: zipf skew must be in (0, 1)")
	}
	z := &Zipf{n: n, theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	for i := 0; i < n; i++ {
		z.cdf[i] /= sum
	}
	z.cdf[n-1] = 1 // exact despite rounding
	z.qidx = make([]int32, zipfQuantiles+1)
	rank := int32(0)
	for k := 1; k <= zipfQuantiles; k++ {
		for z.cdf[rank] < float64(k)/zipfQuantiles && int(rank) < n-1 {
			rank++
		}
		z.qidx[k] = rank
	}
	return z
}

// Next implements Dist. The draw is the first rank whose CDF reaches u;
// u ∈ [k/Q, (k+1)/Q) bounds that rank to [qidx[k], qidx[k+1]], so the
// binary search runs over one quantile bucket — O(1) expected.
func (z *Zipf) Next(r *Rand) int {
	u := r.Float64()
	k := int(u * zipfQuantiles)
	lo, hi := int(z.qidx[k]), int(z.qidx[k+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N implements Dist.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }
