package util

import "math"

// Dist draws item indices in [0, N()) — the key-choice distributions of
// the YCSB-style txkv workloads. Implementations are immutable after
// construction and safe for concurrent use: all randomness comes from
// the caller's per-worker Rand, so seeded runs reproduce exactly and
// the transaction hot path never contends on sampler state.
type Dist interface {
	// Next draws one index using r as the randomness source.
	Next(r *Rand) int
	// N is the population size.
	N() int
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int }

// NewUniform returns a uniform distribution over [0, n). n must be > 0.
func NewUniform(n int) Uniform {
	if n <= 0 {
		panic("util: uniform population must be positive")
	}
	return Uniform{n: n}
}

// Next implements Dist.
func (u Uniform) Next(r *Rand) int { return r.Intn(u.n) }

// N implements Dist.
func (u Uniform) N() int { return u.n }

// Zipf draws rank indices from a zipfian distribution over [0, n): rank
// 0 is the hottest item and rank frequencies fall off as 1/(i+1)^theta.
// It is the YCSB generator (Gray et al.'s bounded zipfian via inverted
// CDF approximation), the standard model for skewed key popularity in
// key-value workloads. Construction is O(n) (the harmonic normalizer);
// drawing is O(1).
//
// Hot ranks are the low indices; callers that map ranks straight onto
// key space get their hot keys adjacent. The txkv store hashes keys
// before placement, so no extra scrambling pass is needed there.
type Zipf struct {
	n       int
	theta   float64
	alpha   float64 // 1/(1-theta)
	zetan   float64 // generalized harmonic number H_{n,theta}
	eta     float64
	halfPow float64 // 0.5^theta, the rank-1 threshold
}

// NewZipf returns a zipfian distribution over [0, n) with skew theta.
// n must be > 0 and theta in (0, 1); theta near 1 is most skewed
// (YCSB's default is 0.99).
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("util: zipf population must be positive")
	}
	if theta <= 0 || theta >= 1 {
		panic("util: zipf skew must be in (0, 1)")
	}
	z := &Zipf{n: n, theta: theta, alpha: 1 / (1 - theta)}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.halfPow = math.Pow(0.5, theta)
	return z
}

// Next implements Dist.
func (z *Zipf) Next(r *Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfPow {
		return 1
	}
	i := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if i >= z.n { // guard float rounding at u → 1
		i = z.n - 1
	}
	return i
}

// N implements Dist.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }
