package util

// StripeCache is the per-thread read-set deduplication cache of the
// time-based engines (SwissTM, TinySTM): an open-addressed hash map from
// lock-table stripe index to read-log position. Workloads that traverse
// shared structures (rbtree descents, STMBench7 graph walks) re-read the
// same stripes constantly; without dedup every re-read appends a read-log
// entry and validation cost grows with *total* reads. With the cache a
// transaction logs each stripe once and validation scales with *distinct*
// stripes (DESIGN.md §7).
//
// Slots are epoch-tagged: a slot belongs to the current transaction
// attempt iff its epoch matches the cache's, so Reset between attempts is
// a single counter increment instead of an O(size) wipe. Each slot packs
// epoch and key into one uint64 — a probe is a single 8-byte load and
// compare — and lookup and insert share one probe sequence
// (LookupOrInsert), so the common miss path touches each slot once.
//
// A StripeCache is owned by exactly one thread and is not safe for
// concurrent use — exactly like the transaction descriptor embedding it.
type StripeCache struct {
	slots []uint64 // epoch<<32 | key; stale epoch ⇒ empty
	pos   []uint32 // read-log position, parallel to slots
	mask  uint32
	epoch uint32
	count uint32 // live entries this epoch (load-factor bookkeeping)
}

func scHash(key uint32) uint32 {
	h := key * 0x9e3779b1 // Fibonacci scramble; low bits feed the mask
	return h ^ h>>16
}

// Init sizes the cache. size must be a power of two and should exceed the
// distinct-stripe count of common transactions so steady state never
// grows (an rbtree descent touches a few dozen stripes).
func (c *StripeCache) Init(size int) {
	if size&(size-1) != 0 || size == 0 {
		panic("util: StripeCache size must be a power of two")
	}
	c.slots = make([]uint64, size)
	c.pos = make([]uint32, size)
	c.mask = uint32(size - 1)
	c.Reset() // move off epoch 0 so zero-valued slots read as stale
}

// Reset invalidates every entry, preparing the cache for a new attempt.
func (c *StripeCache) Reset() {
	c.count = 0
	c.epoch++
	if c.epoch == 0 { // wrapped: zero-epoch slots would read as current
		clear(c.slots)
		c.epoch = 1
	}
}

// LookupOrInsert probes for key in one pass. When key is present it
// returns the recorded position and found=true; otherwise it records
// (key, pos) — the caller passes its read-log length and must append the
// matching entry — and returns found=false.
func (c *StripeCache) LookupOrInsert(key, pos uint32) (uint32, bool) {
	target := uint64(c.epoch)<<32 | uint64(key)
	for i := scHash(key) & c.mask; ; i = (i + 1) & c.mask {
		s := c.slots[i]
		if s == target {
			return c.pos[i], true
		}
		if uint32(s>>32) != c.epoch { // stale slot: key is absent
			if c.count >= c.mask-c.mask>>2 { // keep load factor below 3/4
				c.grow()
				c.place(key, pos)
			} else {
				c.slots[i] = target
				c.pos[i] = pos
			}
			c.count++
			return pos, false
		}
	}
}

func (c *StripeCache) place(key, pos uint32) {
	target := uint64(c.epoch)<<32 | uint64(key)
	for i := scHash(key) & c.mask; ; i = (i + 1) & c.mask {
		if uint32(c.slots[i]>>32) != c.epoch {
			c.slots[i] = target
			c.pos[i] = pos
			return
		}
	}
}

// grow doubles the table and migrates the current epoch's entries.
// Growth only happens while a transaction's distinct read set is still
// outgrowing the cache; once warm, transactions allocate nothing here.
func (c *StripeCache) grow() {
	oldSlots, oldPos := c.slots, c.pos
	c.slots = make([]uint64, 2*len(oldSlots))
	c.pos = make([]uint32, 2*len(oldPos))
	c.mask = uint32(len(c.slots) - 1)
	for i, s := range oldSlots {
		if uint32(s>>32) == c.epoch {
			c.place(uint32(s), oldPos[i])
		}
	}
}
