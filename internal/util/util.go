// Package util holds small shared runtime helpers: a fast per-thread PRNG
// and the back-off primitives used by the contention managers.
package util

import (
	"runtime"
	"sync"
)

// Rand is a xorshift64* pseudo-random generator. Each worker thread owns
// one, so random numbers on the transaction hot path never contend on
// shared state (math/rand's global source would).
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (0 is mapped to a fixed
// non-zero constant, since xorshift must not start at 0).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Next returns the next 64 bits of the sequence.
func (r *Rand) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// SpinIterations busy-spins for approximately n loop iterations. It is the
// building block of the back-off schemes: short enough waits must not enter
// the scheduler, which would cost far more than the wait itself.
func SpinIterations(n int) {
	for i := 0; i < n; i++ {
		spinHint()
	}
}

//go:noinline
func spinHint() {}

// BackoffLinear waits a random duration that grows linearly with attempt,
// the randomized linear back-off SwissTM applies after rollbacks
// (Algorithm 2, cm-on-rollback). unit is the per-attempt spin budget.
func BackoffLinear(r *Rand, attempt, unit int) {
	if attempt <= 0 {
		return
	}
	n := r.Intn(attempt*unit + 1)
	// Donate the time slice occasionally so that on oversubscribed hosts a
	// spinning transaction cannot starve the lock holder it waits for.
	if attempt > 4 {
		runtime.Gosched()
	}
	SpinIterations(n)
}

// BackoffExp waits a random duration drawn from an exponentially growing
// window (used by the Polka contention manager's wait intervals). attempt
// is clamped so the window cannot overflow.
func BackoffExp(r *Rand, attempt, unit int) {
	if attempt > 16 {
		attempt = 16
	}
	window := unit << uint(attempt)
	if window <= 0 {
		window = unit
	}
	n := r.Intn(window + 1)
	if attempt > 6 {
		runtime.Gosched()
	}
	SpinIterations(n)
}

// Barrier is a reusable cyclic barrier for iterative parallel phases that
// must stay in lock-step (STAMP's kmeans uses pthread barriers the same
// way).
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	round int
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all n parties have arrived, then releases them all.
func (b *Barrier) Await() {
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
