package util

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give the same sequence")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed must still produce a live sequence")
	}
}

func TestIntnBounds(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandRoughUniformity(t *testing.T) {
	r := NewRand(11)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10*8/10 || b > n/10*12/10 {
			t.Fatalf("bucket %d has %d/%d draws; generator is badly skewed", i, b, n)
		}
	}
}

func TestBackoffTerminates(t *testing.T) {
	r := NewRand(1)
	for attempt := 0; attempt < 30; attempt++ {
		BackoffLinear(r, attempt, 64)
		BackoffExp(r, attempt, 64)
	}
	// Overflow guard: enormous attempts must not wrap into huge spins.
	BackoffExp(r, 1<<30, 64)
}

func TestBarrier(t *testing.T) {
	const parties = 4
	const rounds = 50
	b := NewBarrier(parties)
	counter := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				counter++
				mu.Unlock()
				b.Await()
				// After the barrier, all parties of this round have
				// incremented: counter is a multiple of parties.
				mu.Lock()
				c := counter
				mu.Unlock()
				if c < (r+1)*parties {
					t.Errorf("barrier released early: counter=%d round=%d", c, r)
				}
				b.Await()
			}
		}()
	}
	wg.Wait()
	if counter != parties*rounds {
		t.Fatalf("counter = %d, want %d", counter, parties*rounds)
	}
}
