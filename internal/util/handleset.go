package util

// HandleSet is a reusable open-addressed set of uint64 handles with
// epoch-tagged slots, built for per-operation visited-set tracking in
// graph walks (STMBench7's traversals). A Go map in that position costs
// an allocation plus hash-table growth every operation; a pooled
// HandleSet amortizes to zero allocations and a few loads per visit
// (DESIGN.md §7). Reset is O(1): bumping the epoch invalidates every
// slot. Not safe for concurrent use — pool or thread-own it.
type HandleSet struct {
	keys  []uint64
	epoch []uint32
	cur   uint32
	mask  uint32
	count uint32
}

// NewHandleSet returns a set sized for expected elements (rounded up to
// a power of two with headroom).
func NewHandleSet(expected int) *HandleSet {
	size := 16
	for size < 2*expected {
		size *= 2
	}
	s := &HandleSet{
		keys:  make([]uint64, size),
		epoch: make([]uint32, size),
		mask:  uint32(size - 1),
	}
	s.Reset()
	return s
}

// Reset empties the set.
func (s *HandleSet) Reset() {
	s.count = 0
	s.cur++
	if s.cur == 0 { // wrapped: zero-epoch slots would read as current
		clear(s.epoch)
		s.cur = 1
	}
}

// Add inserts h and reports whether it was absent.
func (s *HandleSet) Add(h uint64) bool {
	x := h * 0x9e3779b97f4a7c15
	for i := uint32(x>>40) & s.mask; ; i = (i + 1) & s.mask {
		if s.epoch[i] != s.cur {
			if s.count >= s.mask-s.mask>>2 {
				s.grow()
				return s.Add(h)
			}
			s.keys[i] = h
			s.epoch[i] = s.cur
			s.count++
			return true
		}
		if s.keys[i] == h {
			return false
		}
	}
}

// Len returns the number of elements added since the last Reset.
func (s *HandleSet) Len() int { return int(s.count) }

func (s *HandleSet) grow() {
	oldKeys, oldEpoch := s.keys, s.epoch
	s.keys = make([]uint64, 2*len(oldKeys))
	s.epoch = make([]uint32, 2*len(oldEpoch))
	s.mask = uint32(len(s.keys) - 1)
	s.count = 0
	cur := s.cur
	s.cur = 1
	clear(s.epoch) // fresh arrays are zero already; keep epochs canonical
	for i := range oldKeys {
		if oldEpoch[i] == cur {
			s.Add(oldKeys[i])
		}
	}
}
