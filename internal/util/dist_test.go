package util

import (
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		d := NewUniform(int(n))
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := d.Next(r)
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBounds(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		d := NewZipf(int(n), 0.99)
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := d.Next(r)
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestZipfDeterministic: the sampler must be a pure function of the
// caller's Rand — same seed and parameters, same index stream.
func TestZipfDeterministic(t *testing.T) {
	za, zb := NewZipf(4096, 0.8), NewZipf(4096, 0.8)
	ra, rb := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a, b := za.Next(ra), zb.Next(rb); a != b {
			t.Fatalf("draw %d: %d != %d (same seed must give the same sequence)", i, a, b)
		}
	}
}

// TestZipfSkew checks the statistical shape at YCSB's default skew:
// rank frequencies fall off steeply and the head dominates.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipf(n, 0.99)
	r := NewRand(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	// The hottest rank should carry ≳ 1/H_{n,θ} ≈ 13% of the mass.
	if counts[0] < draws*8/100 {
		t.Fatalf("rank 0 drawn %d/%d times; zipfian head too light", counts[0], draws)
	}
	// The top 10 ranks carry a large share (theoretically ≈ 39%).
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if top10 < draws*25/100 {
		t.Fatalf("top-10 ranks drawn %d/%d times; distribution not skewed enough", top10, draws)
	}
	// Frequencies decrease with rank (with generous sampling slack).
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("rank frequencies not decreasing: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
}

// TestZipfSkewParameter: larger theta must concentrate more mass on the
// hottest rank.
func TestZipfSkewParameter(t *testing.T) {
	const n, draws = 1000, 100000
	head := func(theta float64) int {
		z := NewZipf(n, theta)
		r := NewRand(11)
		c := 0
		for i := 0; i < draws; i++ {
			if z.Next(r) == 0 {
				c++
			}
		}
		return c
	}
	lo, hi := head(0.5), head(0.99)
	if hi <= lo {
		t.Fatalf("theta=0.99 head count %d not above theta=0.5 head count %d", hi, lo)
	}
}

// TestZipfSmallPopulations: degenerate sizes must stay in bounds.
func TestZipfSmallPopulations(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		z := NewZipf(n, 0.99)
		r := NewRand(3)
		for i := 0; i < 1000; i++ {
			v := z.Next(r)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: draw %d out of range", n, v)
			}
		}
	}
}

func TestUniformRoughlyUniform(t *testing.T) {
	d := NewUniform(10)
	r := NewRand(13)
	const draws = 100000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		counts[d.Next(r)]++
	}
	for i, c := range counts {
		if c < draws/10*8/10 || c > draws/10*12/10 {
			t.Fatalf("bucket %d has %d/%d draws; uniform sampler badly skewed", i, c, draws)
		}
	}
}
