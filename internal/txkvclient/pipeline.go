package txkvclient

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
	"swisstm/internal/util"
)

// Pipelined load mode (LoadConfig.Pipeline > 1): each connection is a
// Pipe with a submitter goroutine issuing the mix and a collector
// goroutine consuming in-order replies, up to Pipeline logical
// operations in flight per connection. The chained-CAS pattern (read
// then conditional swap) keeps its window slot across both round
// trips: the collector submits the CAS the moment the read's reply
// arrives, so the chain costs latency but never an idle window slot.
//
// Error replies with a load-shedding code (Overloaded, Draining,
// DeadlineExceeded) count as errored operations and the run continues
// — open-loop overload is exactly when they appear; retrying inline
// would distort the arrival schedule. Any other error reply fails the
// run.

// plOp tags one logical operation through the pipe.
type plOp struct {
	sched time.Time // open loop: scheduled arrival (zero in closed loop)
	t0    time.Time // first-frame submit time
	chain bool      // this reply is the read phase of a chained CAS
	key   uint64    // chained CAS key
}

// plFin is the submitter's final tag: its reply tells the collector how
// many logical operations to expect in total. It rides a real request
// (Len) submitted after everything else, so the collector can never
// block on an empty pipe after seeing it: every still-incomplete
// operation already has a frame in flight (or the collector itself is
// about to chain one).
type plFin struct {
	n uint64
}

// plWorker is one pipelined load connection.
type plWorker struct {
	cfg    LoadConfig
	p      *Pipe
	rng    *util.Rand
	dist   util.Dist
	shards int
	id     int
	seq    atomic.Uint64 // submitter and collector both mint write values
	tkeys  []uint64
	lat    []int64
	late   uint64
	errOps uint64
}

func newPlWorker(cfg LoadConfig, id int) (*plWorker, error) {
	p, err := DialPipe(cfg.Addr, cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	w := &plWorker{
		cfg:    cfg,
		p:      p,
		rng:    util.NewRand(harness.DeriveSeed(cfg.Seed, "txkvload/"+cfg.Mix.Name, cfg.Conns, id)),
		shards: txkv.ConfigForKeys(cfg.Keys).Shards,
		id:     id,
		lat:    make([]int64, 0, cfg.Ops/uint64(cfg.Conns)+1),
	}
	if cfg.Zipf > 0 {
		w.dist = util.NewZipf(cfg.Keys, cfg.Zipf)
	} else {
		w.dist = util.NewUniform(cfg.Keys)
	}
	if cfg.Mix.TransferPct > 0 {
		w.tkeys = make([]uint64, 0, cfg.Mix.TransferKeys)
	}
	return w, nil
}

func (w *plWorker) key() uint64 { return uint64(w.dist.Next(w.rng) + 1) }

func (w *plWorker) nextVal() uint64 {
	return uint64(w.id+1)<<40 | w.seq.Add(1)
}

// submitOp issues one mix operation's first frame. The TTL, when
// configured, rides every first frame (chained CAS frames inherit no
// TTL: the budget bounded the op's admission, and the swap is the
// tail of an op the server already invested in).
func (w *plWorker) submitOp(sched time.Time) error {
	m := w.cfg.Mix
	po := &plOp{sched: sched, t0: time.Now()}
	req := txkvwire.Req{TTL: w.cfg.Budget}
	last := true
	r := w.rng.Intn(100)
	switch {
	case r < m.ReadPct:
		req.Op, req.Key = txkvwire.OpGet, w.key()
	case r < m.ReadPct+m.UpdatePct:
		req.Op, req.Key, req.Val = txkvwire.OpPut, w.key(), w.nextVal()
	case r < m.ReadPct+m.UpdatePct+m.CASPct:
		// Chained: the read goes out now, the collector submits the CAS
		// (or releases) when the read's reply arrives.
		po.chain = true
		po.key = w.key()
		req.Op, req.Key = txkvwire.OpGet, po.key
		last = false
	case r < m.ReadPct+m.UpdatePct+m.CASPct+m.TransferPct:
		keys := w.tkeys[:0]
		for len(keys) < m.TransferKeys {
			c := w.key()
			dup := false
			for _, e := range keys {
				if e == c {
					dup = true
					break
				}
			}
			if !dup {
				keys = append(keys, c)
			}
		}
		w.tkeys = keys
		req.Op, req.Amount = txkvwire.OpTransfer, 1
		req.Keys = append([]uint64(nil), keys...)
	default: // scan
		req.Op, req.Shard = txkvwire.OpSum, int32(w.rng.Intn(w.shards))
	}
	return w.p.Submit(req, po, true, last)
}

// collect consumes replies until the submitter's final tag has arrived
// and every logical operation before it completed.
func (w *plWorker) collect() error {
	var completed, want uint64
	haveWant := false
	for !haveWant || completed < want {
		tag, _, reply, err := w.p.Recv()
		if err != nil {
			return err
		}
		if fin, ok := tag.(*plFin); ok {
			want, haveWant = fin.n, true
			continue
		}
		po := tag.(*plOp)
		if po.chain {
			po.chain = false
			if reply.Err == "" && reply.Found {
				err := w.p.Submit(txkvwire.Req{
					Op: txkvwire.OpCAS, Key: po.key, Old: reply.Val, Val: w.nextVal(),
				}, po, false, true)
				if err != nil {
					return err
				}
				continue
			}
			w.p.Release() // read missed or was refused: the op ends here
		}
		if reply.Err != "" {
			switch reply.Code {
			case txkvwire.CodeOverloaded, txkvwire.CodeDraining, txkvwire.CodeDeadlineExceeded:
				w.errOps++
			default:
				return fmt.Errorf("txkvclient: pipelined op failed: %s", reply.Err)
			}
		}
		completed++
		from := po.t0
		if !po.sched.IsZero() {
			from = po.sched
		}
		w.lat = append(w.lat, time.Since(from).Nanoseconds())
	}
	return nil
}

// runPipelined drives the whole pipelined run and returns the merged
// per-worker measurements.
func runPipelined(cfg LoadConfig, start time.Time) (lat []int64, lateOps, errOps uint64, err error) {
	workers := make([]*plWorker, cfg.Conns)
	for i := range workers {
		w, werr := newPlWorker(cfg, i)
		if werr != nil {
			for _, p := range workers[:i] {
				p.p.Close()
			}
			return nil, 0, 0, werr
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.p.Close()
		}
	}()

	var runErr atomic.Value
	fail := func(err error) {
		if err != nil {
			runErr.CompareAndSwap(nil, err) // nolint: first error wins
		}
	}

	var tokens chan time.Time
	if cfg.Rate > 0 {
		// Shared open-loop arrival process, as in the synchronous mode.
		tokens = make(chan time.Time, cfg.Ops)
		interval := float64(time.Second) / cfg.Rate
		go func() {
			for i := uint64(0); i < cfg.Ops; i++ {
				sched := start.Add(time.Duration(float64(i) * interval))
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				tokens <- sched
			}
			close(tokens)
		}()
	}

	var wg sync.WaitGroup
	for i, w := range workers {
		quota := cfg.Ops / uint64(cfg.Conns)
		if uint64(i) < cfg.Ops%uint64(cfg.Conns) {
			quota++
		}
		wg.Add(2)
		go func(w *plWorker, quota uint64) { // submitter
			defer wg.Done()
			n := uint64(0)
			if tokens != nil {
				for sched := range tokens {
					if time.Since(sched) > cfg.LateThreshold {
						w.late++
					}
					if err := w.submitOp(sched); err != nil {
						fail(err)
						w.p.Close()
						return
					}
					n++
				}
			} else {
				for ; n < quota; n++ {
					if err := w.submitOp(time.Time{}); err != nil {
						fail(err)
						w.p.Close()
						return
					}
				}
			}
			if err := w.p.Submit(txkvwire.Req{Op: txkvwire.OpLen}, &plFin{n: n}, true, true); err != nil {
				fail(err)
				w.p.Close()
			}
		}(w, quota)
		go func(w *plWorker) { // collector
			defer wg.Done()
			if err := w.collect(); err != nil {
				fail(err)
				w.p.Close()
			}
		}(w)
	}
	wg.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return nil, 0, 0, err
	}

	for _, w := range workers {
		lat = append(lat, w.lat...)
		lateOps += w.late
		errOps += w.errOps
	}
	return lat, lateOps, errOps, nil
}
