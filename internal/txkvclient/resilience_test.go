package txkvclient

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"swisstm/internal/txkvwire"
)

// fakeSrv speaks just enough txkvwire to script failure sequences the
// real server can't produce on demand: drop the connection mid-request,
// reply Overloaded N times, capture the TTL of every attempt.
type fakeSrv struct {
	ln net.Listener

	mu       sync.Mutex
	attempts int
	ttls     []time.Duration
	// script decides each request's fate from its 0-based attempt
	// index; drop=true closes the connection without replying.
	script func(n int, req txkvwire.Req) (reply txkvwire.Reply, drop bool)
}

func newFakeSrv(t *testing.T, script func(n int, req txkvwire.Req) (txkvwire.Reply, bool)) *fakeSrv {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeSrv{ln: ln, script: script}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go f.serve(conn)
		}
	}()
	return f
}

func (f *fakeSrv) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		payload, err := txkvwire.ReadFrame(br, nil)
		if err != nil {
			return
		}
		req, err := txkvwire.DecodeReq(payload)
		if err != nil {
			return
		}
		f.mu.Lock()
		n := f.attempts
		f.attempts++
		f.ttls = append(f.ttls, req.TTL)
		reply, drop := f.script(n, req)
		f.mu.Unlock()
		if drop {
			return
		}
		reply.Op = req.Op
		buf, err := txkvwire.AppendReply(nil, reply)
		if err != nil {
			panic("fakeSrv: unencodable scripted reply: " + err.Error())
		}
		if err := txkvwire.WriteFrame(conn, buf); err != nil {
			return
		}
	}
}

func (f *fakeSrv) seen() (int, []time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts, append([]time.Duration(nil), f.ttls...)
}

func okReply() (txkvwire.Reply, bool) {
	return txkvwire.Reply{OK: true, Found: true, Val: 7}, false
}

func overloadedReply() (txkvwire.Reply, bool) {
	return txkvwire.Reply{Err: "overloaded: scripted", Code: txkvwire.CodeOverloaded}, false
}

func dialFake(t *testing.T, f *fakeSrv, opts Options) *Client {
	t.Helper()
	if opts.Timeout == 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = 100 * time.Microsecond
		opts.BackoffMax = time.Millisecond
	}
	cl, err := DialOptions(f.ln.Addr().String(), opts)
	if err != nil {
		t.Fatalf("dial fake: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestMutationTransportRetryGated pins the exactly-once default: a
// connection dropped mid-Put is NOT retried (the write may have
// committed server-side), while the same failure on a Get retries
// freely, and RetryMutations opts writes back in explicitly.
func TestMutationTransportRetryGated(t *testing.T) {
	drop1 := func(n int, _ txkvwire.Req) (txkvwire.Reply, bool) {
		if n == 0 {
			return txkvwire.Reply{}, true
		}
		return okReply()
	}

	// Default: the lost Put reply surfaces as a transport error.
	f := newFakeSrv(t, drop1)
	cl := dialFake(t, f, Options{MaxRetries: 3})
	if _, err := cl.Put(1, 2); err == nil {
		t.Fatal("dropped Put silently retried with RetryMutations off")
	}
	if n, _ := f.seen(); n != 1 {
		t.Fatalf("server saw %d attempts of a gated mutation, want 1", n)
	}
	if cl.Retries != 0 {
		t.Fatalf("gated mutation recorded %d retries", cl.Retries)
	}

	// Same failure on a read retries transparently.
	f = newFakeSrv(t, drop1)
	cl = dialFake(t, f, Options{MaxRetries: 3})
	if v, found, err := cl.Get(1); err != nil || !found || v != 7 {
		t.Fatalf("read after drop: %d %v %v (want transparent retry)", v, found, err)
	}
	if n, _ := f.seen(); n != 2 {
		t.Fatalf("server saw %d read attempts, want 2", n)
	}

	// RetryMutations accepts at-least-once and retries the Put.
	f = newFakeSrv(t, drop1)
	cl = dialFake(t, f, Options{MaxRetries: 3, RetryMutations: true})
	if ok, err := cl.Put(1, 2); err != nil || !ok {
		t.Fatalf("opted-in Put retry: %v %v", ok, err)
	}
	if cl.Retries == 0 || cl.Reconnects == 0 {
		t.Fatalf("counters: retries=%d reconnects=%d", cl.Retries, cl.Reconnects)
	}
}

// TestShedRetriedForMutations: a typed retryable shed arrives BEFORE
// execution, so even mutations retry it with RetryMutations off — that
// is the entire point of the typed taxonomy.
func TestShedRetriedForMutations(t *testing.T) {
	f := newFakeSrv(t, func(n int, _ txkvwire.Req) (txkvwire.Reply, bool) {
		if n < 2 {
			return overloadedReply()
		}
		return okReply()
	})
	cl := dialFake(t, f, Options{MaxRetries: 3})
	if ok, err := cl.Put(1, 2); err != nil || !ok {
		t.Fatalf("put through sheds: %v %v", ok, err)
	}
	if n, _ := f.seen(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 sheds + success)", n)
	}
	if cl.ShedRetries != 2 {
		t.Fatalf("shed retries = %d, want 2", cl.ShedRetries)
	}
}

// TestPermanentCodeNotRetried: Rejected is the caller's bug; burning
// retry budget on it would just repeat the refusal.
func TestPermanentCodeNotRetried(t *testing.T) {
	f := newFakeSrv(t, func(int, txkvwire.Req) (txkvwire.Reply, bool) {
		return txkvwire.Reply{Err: "rejected: scripted", Code: txkvwire.CodeRejected}, false
	})
	cl := dialFake(t, f, Options{MaxRetries: 5})
	reply, err := cl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1})
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if reply.Code != txkvwire.CodeRejected {
		t.Fatalf("code %v, want Rejected", reply.Code)
	}
	if n, _ := f.seen(); n != 1 {
		t.Fatalf("server saw %d attempts of a permanent failure, want 1", n)
	}
}

// TestCircuitBreaker: consecutive Overloaded replies open the breaker,
// Do then fails fast without touching the network, and the cooldown
// lets a probe through.
func TestCircuitBreaker(t *testing.T) {
	f := newFakeSrv(t, func(int, txkvwire.Req) (txkvwire.Reply, bool) {
		return overloadedReply()
	})
	const cooldown = 50 * time.Millisecond
	cl := dialFake(t, f, Options{BreakerThreshold: 2, BreakerCooldown: cooldown})

	for i := 0; i < 2; i++ {
		reply, err := cl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1})
		if err != nil || reply.Code != txkvwire.CodeOverloaded {
			t.Fatalf("attempt %d: %+v %v", i, reply, err)
		}
	}
	if cl.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", cl.BreakerOpens)
	}
	if _, err := cl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen while open, got %v", err)
	}
	if n, _ := f.seen(); n != 2 {
		t.Fatalf("open breaker let a request through: server saw %d", n)
	}

	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := cl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1}); err != nil {
		t.Fatalf("post-cooldown probe: %v", err)
	}
	if n, _ := f.seen(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (probe after cooldown)", n)
	}
}

// TestBudgetPropagation: each retry advertises the REMAINING budget as
// its wire TTL, so the server never queues work whose client has
// already given up.
func TestBudgetPropagation(t *testing.T) {
	f := newFakeSrv(t, func(n int, _ txkvwire.Req) (txkvwire.Reply, bool) {
		if n == 0 {
			return overloadedReply()
		}
		return okReply()
	})
	const budget = 500 * time.Millisecond
	cl := dialFake(t, f, Options{MaxRetries: 3, Budget: budget, BackoffBase: 5 * time.Millisecond})
	if v, found, err := cl.Get(1); err != nil || !found || v != 7 {
		t.Fatalf("get: %d %v %v", v, found, err)
	}
	_, ttls := f.seen()
	if len(ttls) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(ttls))
	}
	if ttls[0] != budget {
		t.Fatalf("first attempt advertised TTL %v, want the full budget %v", ttls[0], budget)
	}
	if ttls[1] <= 0 || ttls[1] >= ttls[0] {
		t.Fatalf("retry advertised TTL %v, want shrunk but positive (first was %v)", ttls[1], ttls[0])
	}
}
