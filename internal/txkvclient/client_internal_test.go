package txkvclient

import (
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkvserver"
)

// TestRetryReconnects breaks the client's connection out from under it
// and checks the next request transparently redials and succeeds, with
// the resilience counters recording what happened.
func TestRetryReconnects(t *testing.T) {
	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine: harness.EngineSpec{Kind: "swisstm", Manager: "polka"},
		Keys:   64,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	cl, err := DialRetryOptions(srv.Addr().String(), 5*time.Second, Options{
		Timeout:     2 * time.Second,
		MaxRetries:  3,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if _, _, err := cl.Get(1); err != nil {
		t.Fatalf("get before break: %v", err)
	}
	cl.conn.Close() // sever the transport mid-session
	v, found, err := cl.Get(1)
	if err != nil || !found || v != 1000 {
		t.Fatalf("get after break: %d %v %v (want transparent retry)", v, found, err)
	}
	if cl.Retries == 0 || cl.Reconnects == 0 {
		t.Fatalf("resilience counters not recorded: retries=%d reconnects=%d", cl.Retries, cl.Reconnects)
	}

	// Fail-fast clients must keep the old behavior: a severed transport
	// is the caller's problem.
	strict, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial strict: %v", err)
	}
	defer strict.Close()
	strict.conn.Close()
	if _, _, err := strict.Get(1); err == nil {
		t.Fatal("fail-fast client silently retried")
	}
}
