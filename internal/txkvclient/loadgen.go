package txkvclient

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
	"swisstm/internal/util"
)

// LoadConfig parameterizes one load run against a txkv server: one
// workload mix, one connection count, one loop mode.
type LoadConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Mix is the YCSB-style operation mix (internal/txkv's named mixes).
	Mix txkv.Mix
	// Conns is the number of concurrent client connections (default 1).
	Conns int
	// Keys is the key population the server was pre-filled with
	// (default 1024); keys are drawn from 1..Keys.
	Keys int
	// Zipf is the zipfian skew θ in (0,1); 0 selects uniform keys.
	Zipf float64
	// Seed derives the per-connection RNG seeds (0 picks a
	// time-derived seed, i.e. a non-reproducible run).
	Seed uint64
	// Ops is the total operation count across all connections (required).
	Ops uint64
	// Rate switches to open-loop mode: operations arrive at this fixed
	// rate (ops/sec) regardless of completions, and latency is measured
	// from the scheduled arrival — queueing delay included — so
	// saturation shows up as growing latency and late requests instead
	// of being absorbed by closed-loop backpressure. 0 = closed loop.
	Rate float64
	// LateThreshold classifies an operation as late when its dispatch
	// lagged its scheduled arrival by more than this (default 1ms;
	// open-loop mode only).
	LateThreshold time.Duration
	// SkipOracles disables the post-run correctness checks.
	SkipOracles bool
	// Timeout is the per-request deadline on every load connection
	// (0 = none).
	Timeout time.Duration
	// Retries is the per-request retry budget — typed retryable shed
	// replies and transport failures (bounded exponential backoff +
	// reconnect; 0 = fail fast).
	Retries int
	// RetryMutations opts mutations into transport-failure retry
	// (at-least-once); see Options.RetryMutations.
	RetryMutations bool
	// Budget is the per-request deadline budget propagated to the
	// server as the wire TTL (0 = none); see Options.Budget.
	Budget time.Duration
	// Pipeline, when > 1, switches every connection to pipelined mode
	// (pipeline.go): that many logical operations in flight per
	// connection, replies collected in order. Timeout/Retries/
	// RetryMutations are ignored in pipelined mode — shed replies are
	// counted (Result.ErrOps), not retried.
	Pipeline int
}

func (c *LoadConfig) fill() error {
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.LateThreshold == 0 {
		c.LateThreshold = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano()) | 1
	}
	if err := c.Mix.Valid(); err != nil {
		return err
	}
	if c.Ops == 0 {
		return fmt.Errorf("txkvclient: load run needs a total op count")
	}
	if c.Conns < 1 || c.Keys < 1 {
		return fmt.Errorf("txkvclient: bad load config (conns %d, keys %d)", c.Conns, c.Keys)
	}
	if c.Rate < 0 {
		return fmt.Errorf("txkvclient: negative arrival rate %v", c.Rate)
	}
	if c.Pipeline < 0 {
		return fmt.Errorf("txkvclient: negative pipeline window %d", c.Pipeline)
	}
	if c.Mix.TransferPct > 0 && c.Keys <= c.Mix.TransferKeys {
		return fmt.Errorf("txkvclient: mix %s needs more than %d keys, have %d", c.Mix.Name, c.Mix.TransferKeys, c.Keys)
	}
	return nil
}

// Result is one load run's measurement: client-observed latency
// percentiles, open-loop arrival accounting, and the server's phase
// timing/engine counters over the run window.
type Result struct {
	Mode     string // "closed" or "open"
	Ops      uint64 // completed operations
	LateOps  uint64 // open loop: dispatched later than LateThreshold after schedule
	Duration time.Duration

	// Latency percentiles in nanoseconds. Closed loop measures from
	// request send; open loop from scheduled arrival.
	P50Ns, P99Ns, P999Ns float64

	// Offered is the configured arrival rate (0 in closed loop);
	// Achieved is completed ops over the run duration. A gap between
	// them is saturation.
	Offered, Achieved float64

	// Server is the server-side counter delta over the run: phase
	// nanosecond sums, engine commit/abort totals and the raw
	// abort-cause taxonomy. The SrvP*Ns percentile fields are the
	// exception — they are NOT diffed (percentiles of a cumulative
	// histogram don't subtract); they carry the final snapshot's
	// server-lifetime values, which equal the run's own distribution
	// when the server was started for this run (the -launch drivers).
	Server txkvwire.Stats

	// Retries/Reconnects are the client-resilience counters summed
	// across the run's connections: request attempts re-issued after a
	// transport failure, and successful re-dials.
	Retries, Reconnects uint64

	// ErrOps counts operations that completed with a shed reply
	// (Overloaded/Draining/DeadlineExceeded) in pipelined mode, where
	// sheds are counted rather than retried. Always 0 in synchronous
	// mode (there a shed either retries or fails the run).
	ErrOps uint64

	// OracleErr is the armed correctness oracles' verdict (nil = green):
	// key population intact, and — for conserving mixes — the total
	// balance unchanged by the run.
	OracleErr error
}

// PhaseMeanNs returns the server's mean per-request time of one phase
// over the run window.
func phaseMean(sum, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(sum) / float64(requests)
}

// Record folds the result into the repository's record schema
// (DESIGN.md §5, §10) under the given identity columns.
func (r Result) Record(experiment, workload, engine, engineKind string, conns, repeat int, seed uint64) results.Record {
	rec := results.Record{
		Experiment: experiment, Workload: workload,
		Engine: engine, EngineKind: engineKind,
		Threads: conns, Repeat: repeat, Seed: seed,
		DurationSec: r.Duration.Seconds(),
		Ops:         r.Ops,
		Throughput:  r.Achieved,
		Commits:     r.Server.Commits,
		Aborts:      r.Server.Aborts,

		AbortsWW:          r.Server.AbortsWW,
		AbortsValid:       r.Server.AbortsValid,
		AbortsValidRead:   r.Server.AbortsValidRead,
		AbortsValidCommit: r.Server.AbortsValidCommit,
		AbortsLocked:      r.Server.AbortsLocked,
		AbortsKilled:      r.Server.AbortsKilled,
		AbortsExplicit:    r.Server.AbortsExplicit,
		AbortsUser:        r.Server.AbortsUser,
		LockAcquireFail:   r.Server.LockAcquireFail,

		LatP50Ns:  r.P50Ns,
		LatP99Ns:  r.P99Ns,
		LatP999Ns: r.P999Ns,
		SrvP50Ns:  r.Server.SrvP50Ns,
		SrvP99Ns:  r.Server.SrvP99Ns,
		SrvP999Ns: r.Server.SrvP999Ns,

		PhaseParseNs:  phaseMean(r.Server.ParseNs, r.Server.Requests),
		PhaseQueueNs:  phaseMean(r.Server.QueueNs, r.Server.Requests),
		PhaseTxnNs:    phaseMean(r.Server.TxnNs, r.Server.Requests),
		PhaseCommitNs: phaseMean(r.Server.CommitNs, r.Server.Requests),
		PhaseReplyNs:  phaseMean(r.Server.ReplyNs, r.Server.Requests),
		OfferedRate:   r.Offered,
		AchievedRate:  r.Achieved,
		LateOps:       r.LateOps,
		CheckedOK:     r.OracleErr == nil,

		PhaseWalNs:         phaseMean(r.Server.WalNs, r.Server.Requests),
		WalFrames:          r.Server.WalFrames,
		WalBytes:           r.Server.WalBytes,
		WalRecoveredFrames: r.Server.WalRecovered,
		Retries:            r.Retries,
		Reconnects:         r.Reconnects,
		Sheds:              r.Server.Sheds,
		DeadlineExceeded:   r.Server.DeadlineExceeded,

		CoalesceBatches: r.Server.CoalesceBatches,
		CoalesceItems:   r.Server.CoalesceItems,
		FeedEvents:      r.Server.FeedEvents,
		WalFsyncs:       r.Server.WalFsyncs,
	}
	if total := r.Server.Commits + r.Server.Aborts; total > 0 {
		rec.AbortRate = float64(r.Server.Aborts) / float64(total)
	}
	return rec
}

// Run executes one load run. A transport or protocol error aborts the
// run; a failed oracle is reported in Result.OracleErr (the measurement
// itself is still returned, so drivers can persist the evidence).
func Run(cfg LoadConfig) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	res := Result{Mode: "closed", Offered: 0}
	if cfg.Rate > 0 {
		res.Mode = "open"
		res.Offered = cfg.Rate
	}

	// A control connection brackets the run: oracle baselines and the
	// server counter snapshots.
	ctl, err := DialRetry(cfg.Addr, 5*time.Second)
	if err != nil {
		return Result{}, err
	}
	defer ctl.Close()
	var sum0 uint64
	conserving := cfg.Mix.UpdatePct == 0 && cfg.Mix.CASPct == 0
	if !cfg.SkipOracles && conserving {
		if sum0, err = ctl.Sum(-1); err != nil {
			return Result{}, err
		}
	}
	stats0, err := ctl.Stats()
	if err != nil {
		return Result{}, err
	}

	var all []int64
	var start time.Time
	if cfg.Pipeline > 1 {
		start = time.Now()
		lat, lateOps, errOps, err := runPipelined(cfg, start)
		if err != nil {
			return Result{}, err
		}
		res.Duration = time.Since(start)
		all, res.LateOps, res.ErrOps = lat, lateOps, errOps
	} else {
		workers := make([]*ldWorker, cfg.Conns)
		for i := range workers {
			w, err := newLdWorker(cfg, i)
			if err != nil {
				for _, p := range workers[:i] {
					p.cl.Close()
				}
				return Result{}, err
			}
			workers[i] = w
		}
		defer func() {
			for _, w := range workers {
				w.cl.Close()
			}
		}()

		start = time.Now()
		var runErr atomic.Value // first worker error
		fail := func(err error) {
			if err != nil {
				runErr.CompareAndSwap(nil, err) // nolint: first error wins
			}
		}

		var wg sync.WaitGroup
		if cfg.Rate == 0 {
			// Closed loop: each connection issues its quota back to back.
			quota := cfg.Ops / uint64(cfg.Conns)
			extra := cfg.Ops % uint64(cfg.Conns)
			for i, w := range workers {
				n := quota
				if uint64(i) < extra {
					n++
				}
				wg.Add(1)
				go func(w *ldWorker, n uint64) {
					defer wg.Done()
					for j := uint64(0); j < n; j++ {
						t0 := time.Now()
						if err := w.op(); err != nil {
							fail(err)
							return
						}
						w.lat = append(w.lat, time.Since(t0).Nanoseconds())
					}
				}(w, n)
			}
		} else {
			// Open loop: a generator emits arrival tokens at the fixed rate
			// (catching up without re-pacing when it oversleeps, so the
			// arrival schedule is faithful), workers consume them. The
			// channel holds every token, so a saturated fleet never blocks
			// the arrival process — it just grows the queue, which is
			// exactly the latency the scheduled-arrival measurement charges.
			tokens := make(chan time.Time, cfg.Ops)
			interval := float64(time.Second) / cfg.Rate
			go func() {
				for i := uint64(0); i < cfg.Ops; i++ {
					sched := start.Add(time.Duration(float64(i) * interval))
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
					tokens <- sched
				}
				close(tokens)
			}()
			for _, w := range workers {
				wg.Add(1)
				go func(w *ldWorker) {
					defer wg.Done()
					for sched := range tokens {
						if time.Since(sched) > cfg.LateThreshold {
							w.late++
						}
						if err := w.op(); err != nil {
							fail(err)
							return
						}
						w.lat = append(w.lat, time.Since(sched).Nanoseconds())
					}
				}(w)
			}
		}
		wg.Wait()
		res.Duration = time.Since(start)
		if err, _ := runErr.Load().(error); err != nil {
			return Result{}, err
		}

		// Merge per-worker measurements.
		for _, w := range workers {
			all = append(all, w.lat...)
			res.LateOps += w.late
			res.Retries += w.cl.Retries
			res.Reconnects += w.cl.Reconnects
		}
	}
	res.Ops = uint64(len(all))
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50Ns = percentile(all, 0.50)
	res.P99Ns = percentile(all, 0.99)
	res.P999Ns = percentile(all, 0.999)
	if res.Duration > 0 {
		res.Achieved = float64(res.Ops) / res.Duration.Seconds()
	}

	stats1, err := ctl.Stats()
	if err != nil {
		return Result{}, err
	}
	res.Server = txkvwire.Stats{
		Requests: stats1.Requests - stats0.Requests,
		ParseNs:  stats1.ParseNs - stats0.ParseNs,
		QueueNs:  stats1.QueueNs - stats0.QueueNs,
		TxnNs:    stats1.TxnNs - stats0.TxnNs,
		CommitNs: stats1.CommitNs - stats0.CommitNs,
		ReplyNs:  stats1.ReplyNs - stats0.ReplyNs,
		Commits:  stats1.Commits - stats0.Commits,
		Aborts:   stats1.Aborts - stats0.Aborts,

		AbortsWW:          stats1.AbortsWW - stats0.AbortsWW,
		AbortsValid:       stats1.AbortsValid - stats0.AbortsValid,
		AbortsLocked:      stats1.AbortsLocked - stats0.AbortsLocked,
		AbortsKilled:      stats1.AbortsKilled - stats0.AbortsKilled,
		AbortsExplicit:    stats1.AbortsExplicit - stats0.AbortsExplicit,
		AbortsUser:        stats1.AbortsUser - stats0.AbortsUser,
		LockAcquireFail:   stats1.LockAcquireFail - stats0.LockAcquireFail,
		AbortsValidRead:   stats1.AbortsValidRead - stats0.AbortsValidRead,
		AbortsValidCommit: stats1.AbortsValidCommit - stats0.AbortsValidCommit,

		WalNs:     stats1.WalNs - stats0.WalNs,
		WalFrames: stats1.WalFrames - stats0.WalFrames,
		WalBytes:  stats1.WalBytes - stats0.WalBytes,

		Sheds:            stats1.Sheds - stats0.Sheds,
		DeadlineExceeded: stats1.DeadlineExceeded - stats0.DeadlineExceeded,
		ConnsRejected:    stats1.ConnsRejected - stats0.ConnsRejected,

		CoalesceBatches: stats1.CoalesceBatches - stats0.CoalesceBatches,
		CoalesceItems:   stats1.CoalesceItems - stats0.CoalesceItems,
		FeedEvents:      stats1.FeedEvents - stats0.FeedEvents,
		WalFsyncs:       stats1.WalFsyncs - stats0.WalFsyncs,

		// Lifetime percentiles, not diffable — see the Server field doc.
		SrvP50Ns:  stats1.SrvP50Ns,
		SrvP99Ns:  stats1.SrvP99Ns,
		SrvP999Ns: stats1.SrvP999Ns,
		// Set once at server start (the recovery scan), so also lifetime.
		WalRecovered: stats1.WalRecovered,
	}

	if !cfg.SkipOracles {
		res.OracleErr = checkOracles(ctl, cfg, conserving, sum0)
	}
	return res, nil
}

// checkOracles validates post-run state over the wire: the key
// population must be intact (no mix deletes), and a mix without blind
// updates conserves the total balance (transfers move value, never
// create it).
func checkOracles(ctl *Client, cfg LoadConfig, conserving bool, sum0 uint64) error {
	n, err := ctl.Len()
	if err != nil {
		return err
	}
	if n != uint64(cfg.Keys) {
		return fmt.Errorf("txkvclient: oracle: %d keys after run, want %d", n, cfg.Keys)
	}
	if conserving {
		sum1, err := ctl.Sum(-1)
		if err != nil {
			return err
		}
		if sum1 != sum0 {
			return fmt.Errorf("txkvclient: oracle: balance not conserved: total %d, want %d", sum1, sum0)
		}
	}
	return nil
}

// percentile reads the q-quantile from ascending-sorted latencies using
// the nearest-rank definition.
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx])
}

// ldWorker is one load connection: its client, RNG, scratch and
// measurements.
type ldWorker struct {
	cfg    LoadConfig
	cl     *Client
	rng    *util.Rand
	dist   util.Dist
	shards int
	id     int
	seq    uint64
	tkeys  []uint64
	lat    []int64
	late   uint64
}

func newLdWorker(cfg LoadConfig, id int) (*ldWorker, error) {
	cl, err := DialRetryOptions(cfg.Addr, 5*time.Second, Options{
		Timeout:        cfg.Timeout,
		MaxRetries:     cfg.Retries,
		RetryMutations: cfg.RetryMutations,
		Budget:         cfg.Budget,
	})
	if err != nil {
		return nil, err
	}
	w := &ldWorker{
		cfg:    cfg,
		cl:     cl,
		rng:    util.NewRand(harness.DeriveSeed(cfg.Seed, "txkvload/"+cfg.Mix.Name, cfg.Conns, id)),
		shards: txkv.ConfigForKeys(cfg.Keys).Shards,
		id:     id,
		lat:    make([]int64, 0, cfg.Ops/uint64(cfg.Conns)+1),
	}
	if cfg.Zipf > 0 {
		w.dist = util.NewZipf(cfg.Keys, cfg.Zipf)
	} else {
		w.dist = util.NewUniform(cfg.Keys)
	}
	if cfg.Mix.TransferPct > 0 {
		w.tkeys = make([]uint64, 0, cfg.Mix.TransferKeys)
	}
	return w, nil
}

func (w *ldWorker) key() uint64 { return uint64(w.dist.Next(w.rng) + 1) }

// nextVal mints this worker's next globally unique write value, the
// same (worker+1)<<40 | seq encoding the in-process generator uses.
func (w *ldWorker) nextVal() uint64 {
	w.seq++
	return uint64(w.id+1)<<40 | w.seq
}

// op issues one mix operation over the wire — the same op selection as
// txkv.Gen.Op, with each transaction a real request round trip.
func (w *ldWorker) op() error {
	m := w.cfg.Mix
	r := w.rng.Intn(100)
	switch {
	case r < m.ReadPct:
		_, _, err := w.cl.Get(w.key())
		return err
	case r < m.ReadPct+m.UpdatePct:
		_, err := w.cl.Put(w.key(), w.nextVal())
		return err
	case r < m.ReadPct+m.UpdatePct+m.CASPct:
		// Optimistic client pattern: read, then conditional swap — two
		// round trips, two server transactions, one logical operation.
		key := w.key()
		cur, ok, err := w.cl.Get(key)
		if err != nil || !ok {
			return err
		}
		_, err = w.cl.CAS(key, cur, w.nextVal())
		return err
	case r < m.ReadPct+m.UpdatePct+m.CASPct+m.TransferPct:
		keys := w.tkeys[:0]
		for len(keys) < m.TransferKeys {
			c := w.key()
			dup := false
			for _, e := range keys {
				if e == c {
					dup = true
					break
				}
			}
			if !dup {
				keys = append(keys, c)
			}
		}
		w.tkeys = keys
		_, err := w.cl.Transfer(keys, 1)
		return err
	default: // scan
		_, err := w.cl.Sum(w.rng.Intn(w.shards))
		return err
	}
}
