package txkvclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"swisstm/internal/txkvwire"
)

// ErrPipeClosed is returned by Pipe.Submit/Recv after Close.
var ErrPipeClosed = errors.New("txkvclient: pipe closed")

// Pipe is a pipelined connection: up to window logical operations in
// flight at once, replies matched to their requests by order (the
// server replies in request order — DESIGN.md §14.5).
//
// Concurrency contract: one goroutine calls Submit with first=true
// (the submitter), one goroutine calls Recv (the collector). The
// collector may also call Submit with first=false to chain a follow-up
// request onto a logical operation it is holding the window slot for
// (e.g. the CAS after its read), and Release to finish a chained
// operation early without another request.
type Pipe struct {
	conn net.Conn
	br   *bufio.Reader

	// mu serializes frame write + tag enqueue, so the tag FIFO order is
	// exactly the wire order (submitter and chaining collector race).
	mu   sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	tags chan pipeSlot
	sem  chan struct{} // window slots: acquired first-frame, released last-reply

	rbuf []byte

	dead chan struct{}
	once sync.Once
}

type pipeSlot struct {
	tag  any
	last bool
}

// DialPipe connects a pipelined client with the given in-flight
// window (min 1).
func DialPipe(addr string, window int) (*Pipe, error) {
	if window < 1 {
		window = 1
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Pipe{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
		bw:   bufio.NewWriterSize(conn, 4<<10),
		// Each in-flight op has at most one outstanding frame, so the
		// FIFO never holds more than window slots; the slack means an
		// enqueue under mu can never block.
		tags: make(chan pipeSlot, 2*window+8),
		sem:  make(chan struct{}, window),
		dead: make(chan struct{}),
	}, nil
}

// Submit sends one request frame carrying tag. first acquires a window
// slot (blocking while the window is full); last marks the operation's
// final frame — its reply releases the slot. A single-frame operation
// passes first=true, last=true.
func (p *Pipe) Submit(req txkvwire.Req, tag any, first, last bool) error {
	if first {
		select {
		case p.sem <- struct{}{}:
		case <-p.dead:
			return ErrPipeClosed
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	p.wbuf, err = txkvwire.AppendReq(p.wbuf[:0], req)
	if err == nil {
		err = txkvwire.WriteFrame(p.bw, p.wbuf)
	}
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		if first {
			<-p.sem
		}
		return err
	}
	p.tags <- pipeSlot{tag: tag, last: last}
	return nil
}

// Recv reads the next reply in order and returns it with its request's
// tag. A reply marked last releases the operation's window slot. Call
// only while frames are outstanding or a submit is coming (it blocks
// until the next reply).
func (p *Pipe) Recv() (tag any, last bool, reply txkvwire.Reply, err error) {
	var slot pipeSlot
	select {
	case slot = <-p.tags:
	case <-p.dead:
		return nil, false, txkvwire.Reply{}, ErrPipeClosed
	}
	p.rbuf, err = txkvwire.ReadFrame(p.br, p.rbuf)
	if err == nil {
		reply, err = txkvwire.DecodeReply(p.rbuf)
	}
	if err != nil {
		return slot.tag, slot.last, txkvwire.Reply{}, err
	}
	if slot.last {
		<-p.sem
	}
	return slot.tag, slot.last, reply, nil
}

// Release finishes a chained operation without a further request,
// freeing its window slot (the collector's "CAS read missed" path).
func (p *Pipe) Release() { <-p.sem }

// Close tears the pipe down, waking a submitter blocked on the window
// and a collector blocked without outstanding frames.
func (p *Pipe) Close() error {
	p.once.Do(func() { close(p.dead) })
	return p.conn.Close()
}

// ErrFeedClosed is the clean end of a feed subscription: the server
// drained and delivered every event through the final frame.
var ErrFeedClosed = errors.New("txkvclient: feed closed (server draining)")

// Sub is one change-feed subscription (wire op Subscribe): a dedicated
// connection streaming one shard's committed mutations in commit
// order.
type Sub struct {
	conn  net.Conn
	br    *bufio.Reader
	rbuf  []byte
	acked bool
}

// DialSubscribe opens a subscription to shard's change feed starting
// at sequence from (0 = only new events, 1 = from the beginning of the
// retained window). The server acks before streaming; a lagged or
// invalid subscription fails here or at the Next that observes it.
func DialSubscribe(addr string, shard int, from uint64) (*Sub, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	wbuf, err := txkvwire.AppendReq(nil, txkvwire.Req{
		Op: txkvwire.OpSubscribe, Shard: int32(shard), From: from})
	if err == nil {
		err = txkvwire.WriteFrame(conn, wbuf)
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	s := &Sub{conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}
	// First frame is the ack (empty Events, no error).
	if _, err := s.Next(); err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// Next returns the next non-empty batch of feed events, skipping idle
// heartbeat frames. The subscription ends with ErrFeedClosed when the
// server drains; any other error is a lagged cursor, a rejection or a
// transport failure. The returned slice is valid until the next call.
func (s *Sub) Next() ([]txkvwire.FeedEvent, error) {
	for {
		var err error
		s.rbuf, err = txkvwire.ReadFrame(s.br, s.rbuf)
		if err != nil {
			return nil, err
		}
		reply, err := txkvwire.DecodeReply(s.rbuf)
		if err != nil {
			return nil, err
		}
		if reply.Err != "" {
			if reply.Code == txkvwire.CodeDraining {
				return nil, ErrFeedClosed
			}
			return nil, fmt.Errorf("txkvclient: feed: %s", reply.Err)
		}
		if len(reply.Events) > 0 {
			return reply.Events, nil
		}
		if !s.acked {
			// The server's subscription ack: an empty frame before the
			// stream starts. DialSubscribe's probe call returns on it.
			s.acked = true
			return nil, nil
		}
	}
}

// Close drops the subscription.
func (s *Sub) Close() error { return s.conn.Close() }
