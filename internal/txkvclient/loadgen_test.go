package txkvclient_test

import (
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvserver"
)

func startServer(t *testing.T, kind string, keys int) *txkvserver.Server {
	t.Helper()
	srv, err := txkvserver.Start("127.0.0.1:0", txkvserver.Config{
		Engine: harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:   keys,
	})
	if err != nil {
		t.Fatalf("start %s server: %v", kind, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestClosedLoop runs a short seeded closed-loop transfer load and
// checks the measurement is fully populated and the oracles are green.
func TestClosedLoop(t *testing.T) {
	srv := startServer(t, "swisstm", 512)
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr:  srv.Addr().String(),
		Mix:   txkv.TransferMix,
		Conns: 2,
		Keys:  512,
		Zipf:  0.9,
		Seed:  1,
		Ops:   600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Offered != 0 {
		t.Fatalf("mode: %+v", res)
	}
	if res.Ops != 600 {
		t.Fatalf("completed %d ops, want 600", res.Ops)
	}
	if res.OracleErr != nil {
		t.Fatalf("oracle: %v", res.OracleErr)
	}
	if res.P50Ns <= 0 || res.P99Ns < res.P50Ns || res.P999Ns < res.P99Ns {
		t.Fatalf("latency percentiles not ordered/positive: %+v", res)
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved rate %v", res.Achieved)
	}
	// The server saw at least one request per op (CAS ops issue two) and
	// measured non-zero txn and reply phases.
	if res.Server.Requests < res.Ops {
		t.Fatalf("server saw %d requests for %d ops", res.Server.Requests, res.Ops)
	}
	if res.Server.TxnNs == 0 || res.Server.ReplyNs == 0 || res.Server.Commits == 0 {
		t.Fatalf("server phase counters empty: %+v", res.Server)
	}

	rec := res.Record("txkvload", "txkvsrv/transfer-zipf-closed", srv.Engine(), "swisstm", 2, 0, 1)
	if rec.LatP50Ns <= 0 || rec.LatP99Ns <= 0 || rec.LatP999Ns <= 0 {
		t.Fatalf("record percentiles empty: %+v", rec)
	}
	if rec.PhaseTxnNs <= 0 || rec.PhaseReplyNs <= 0 {
		t.Fatalf("record phase means empty: %+v", rec)
	}
	if !rec.CheckedOK || rec.Throughput <= 0 {
		t.Fatalf("record not green: %+v", rec)
	}
}

// TestOpenLoop runs a fixed-arrival-rate load and checks the offered vs
// achieved accounting.
func TestOpenLoop(t *testing.T) {
	srv := startServer(t, "tl2", 256)
	const rate = 2000.0
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr:  srv.Addr().String(),
		Mix:   txkv.ReadHeavy,
		Conns: 2,
		Keys:  256,
		Seed:  7,
		Ops:   400,
		Rate:  rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.Offered != rate {
		t.Fatalf("open-loop accounting: %+v", res)
	}
	if res.Ops != 400 {
		t.Fatalf("completed %d ops, want 400", res.Ops)
	}
	if res.OracleErr != nil {
		t.Fatalf("oracle: %v", res.OracleErr)
	}
	// 400 ops at 2000/s is ~200ms of schedule; the run can't finish
	// faster than the arrival process.
	if res.Duration < 150*time.Millisecond {
		t.Fatalf("open-loop run finished before its schedule: %v", res.Duration)
	}
	if res.Achieved <= 0 || res.Achieved > 1.5*rate {
		t.Fatalf("achieved rate %v implausible for offered %v", res.Achieved, rate)
	}
	rec := res.Record("txkvload", "txkvsrv/read-heavy-uniform-open", srv.Engine(), "tl2", 2, 0, 7)
	if rec.OfferedRate != rate || rec.AchievedRate != res.Achieved {
		t.Fatalf("record rates: %+v", rec)
	}
}

// TestOpenLoopSaturation overloads a single connection with an
// unreachable arrival rate: the achieved rate must fall visibly short
// of offered and late ops must be counted — the saturation visibility
// the open-loop mode exists for.
func TestOpenLoopSaturation(t *testing.T) {
	srv := startServer(t, "tinystm", 256)
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr:          srv.Addr().String(),
		Mix:           txkv.UpdateHeavy,
		Conns:         1,
		Keys:          256,
		Seed:          3,
		Ops:           300,
		Rate:          2_000_000, // far beyond one loopback connection
		LateThreshold: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LateOps == 0 {
		t.Fatalf("no late ops under 2M ops/s on one connection: %+v", res)
	}
	if res.Achieved >= res.Offered {
		t.Fatalf("achieved %v should fall short of offered %v", res.Achieved, res.Offered)
	}
}

// TestOracleCatchesTampering arms the oracles against a store whose
// balance was changed outside the mix: the load run must report it.
func TestOracleCatchesTampering(t *testing.T) {
	srv := startServer(t, "swisstm", 128)
	cl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Deleting a key breaks the population oracle.
	if _, err := cl.Delete(5); err != nil {
		t.Fatal(err)
	}
	res, err := txkvclient.Run(txkvclient.LoadConfig{
		Addr: srv.Addr().String(),
		Mix:  txkv.ReadOnly,
		Keys: 128,
		Seed: 1,
		Ops:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErr == nil {
		t.Fatal("oracle missed a deleted key")
	}
}
