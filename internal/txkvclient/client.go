// Package txkvclient is the client side of the txkv network service:
// a thin synchronous connection type speaking the txkvwire protocol,
// plus the load generator (loadgen.go) that drives the YCSB-style
// workload mixes over real TCP connections in closed-loop and
// open-loop modes and folds the measurements into the results schema.
package txkvclient

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"time"

	"swisstm/internal/txkvwire"
)

// Options tunes a Client's resilience. The zero value is the strict
// fail-fast client: no deadlines, no retries.
type Options struct {
	// Timeout bounds each request round trip (connect + write + read).
	// 0 = wait forever.
	Timeout time.Duration
	// MaxRetries is how many times a request is retried over a fresh
	// connection after a transport failure, with bounded exponential
	// backoff between attempts. Retrying gives at-least-once semantics:
	// when the failure hit after the server executed the request (e.g.
	// a lost reply), the retry applies it again. 0 = fail fast.
	MaxRetries int
	// BackoffBase/BackoffMax bound the backoff: attempt k sleeps a
	// uniformly jittered duration in (0, min(BackoffBase<<k,
	// BackoffMax)]. Defaults 1ms and 100ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (o *Options) fill() {
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
}

// Client is one synchronous connection to a txkv server. It is not safe
// for concurrent use; the load generator opens one Client per worker.
type Client struct {
	addr string
	opts Options
	conn net.Conn
	br   *bufio.Reader
	rbuf []byte
	wbuf []byte

	// Retries counts request attempts re-issued after a transport
	// failure; Reconnects counts successful re-dials. Both are zero for
	// a fail-fast client.
	Retries    uint64
	Reconnects uint64
}

// Dial connects to a txkv server with fail-fast semantics.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects with the given resilience options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.fill()
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, opts: opts, conn: conn, br: bufio.NewReader(conn)}, nil
}

// DialRetry dials with retries until timeout elapses — the readiness
// probe load drivers use right after launching a server.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	return DialRetryOptions(addr, timeout, Options{})
}

// DialRetryOptions is DialRetry with resilience options on the
// resulting client.
func DialRetryOptions(addr string, timeout time.Duration, opts Options) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := DialOptions(addr, opts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("txkvclient: server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its reply. An error reply from the
// server is returned as the reply with Err set, not as a Go error — the
// Go error path is reserved for transport and protocol failures. With
// Options.MaxRetries set, a transport failure re-dials (bounded
// exponential backoff with jitter) and re-issues the request; see the
// at-least-once caveat on Options.
func (c *Client) Do(req txkvwire.Req) (txkvwire.Reply, error) {
	var err error
	c.wbuf, err = txkvwire.AppendReq(c.wbuf[:0], req)
	if err != nil {
		return txkvwire.Reply{}, err // malformed request: retrying can't help
	}
	reply, err := c.roundTrip()
	for attempt := 0; err != nil && attempt < c.opts.MaxRetries; attempt++ {
		c.Retries++
		c.sleepBackoff(attempt)
		if rerr := c.redial(); rerr != nil {
			err = rerr
			continue
		}
		reply, err = c.roundTrip()
	}
	return reply, err
}

// roundTrip writes the encoded request in c.wbuf and reads its reply,
// under the per-request deadline when one is configured.
func (c *Client) roundTrip() (txkvwire.Reply, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := txkvwire.WriteFrame(c.conn, c.wbuf); err != nil {
		return txkvwire.Reply{}, err
	}
	var err error
	c.rbuf, err = txkvwire.ReadFrame(c.br, c.rbuf)
	if err != nil {
		return txkvwire.Reply{}, err
	}
	return txkvwire.DecodeReply(c.rbuf)
}

// redial replaces the connection after a transport failure.
func (c *Client) redial() error {
	c.conn.Close()
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.Reconnects++
	return nil
}

// sleepBackoff sleeps the attempt's jittered backoff: full jitter over
// an exponentially growing, capped window (so a burst of failing
// clients does not reconnect in lockstep).
func (c *Client) sleepBackoff(attempt int) {
	max := c.opts.BackoffMax
	if d := c.opts.BackoffBase << uint(attempt); d < max && d > 0 {
		max = d
	}
	time.Sleep(time.Duration(1 + rand.Int63n(int64(max))))
}

// do is Do plus promotion of server-side error replies to Go errors,
// for the typed convenience methods where an error reply is unexpected.
func (c *Client) do(req txkvwire.Req) (txkvwire.Reply, error) {
	reply, err := c.Do(req)
	if err != nil {
		return reply, err
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("txkvclient: server error: %s", reply.Err)
	}
	return reply, nil
}

// Get reads one key.
func (c *Client) Get(key uint64) (val uint64, found bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpGet, Key: key})
	return reply.Val, reply.Found, err
}

// Put writes key → val, reporting whether the key was newly inserted.
func (c *Client) Put(key, val uint64) (inserted bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpPut, Key: key, Val: val})
	return reply.OK, err
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpDelete, Key: key})
	return reply.OK, err
}

// CAS swaps key's value old → new when it currently equals old.
func (c *Client) CAS(key, old, new uint64) (swapped bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpCAS, Key: key, Old: old, Val: new})
	return reply.OK, err
}

// Transfer atomically moves amount from keys[0] to each of keys[1:].
func (c *Client) Transfer(keys []uint64, amount uint64) (ok bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpTransfer, Keys: keys, Amount: amount})
	return reply.OK, err
}

// Sum sums one shard's values, or the whole store for shard == -1.
func (c *Client) Sum(shard int) (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpSum, Shard: int32(shard)})
	return reply.Val, err
}

// Len counts the stored keys.
func (c *Client) Len() (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpLen})
	return reply.Val, err
}

// Batch runs subs as one all-or-nothing server-side transaction. When
// the batch aborted (a conditional sub-op failed), the abort reason is
// returned as abortErr with the store untouched; transport failures come
// back as err.
func (c *Client) Batch(subs []txkvwire.Req) (replies []txkvwire.Reply, abortErr error, err error) {
	reply, err := c.Do(txkvwire.Req{Op: txkvwire.OpBatch, Sub: subs})
	if err != nil {
		return nil, nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("txkvclient: %s", reply.Err), nil
	}
	return reply.Sub, nil, nil
}

// Stats fetches the server's cumulative request/phase counters.
func (c *Client) Stats() (txkvwire.Stats, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpStats})
	if err != nil {
		return txkvwire.Stats{}, err
	}
	if reply.Stats == nil {
		return txkvwire.Stats{}, fmt.Errorf("txkvclient: stats reply without stats")
	}
	return *reply.Stats, nil
}
