// Package txkvclient is the client side of the txkv network service:
// a thin synchronous connection type speaking the txkvwire protocol,
// plus the load generator (loadgen.go) that drives the YCSB-style
// workload mixes over real TCP connections in closed-loop and
// open-loop modes and folds the measurements into the results schema.
package txkvclient

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"swisstm/internal/txkvwire"
)

// ErrCircuitOpen is returned by Do without touching the network while
// the circuit breaker is open: the server answered Overloaded
// BreakerThreshold times in a row, so the client fails fast for
// BreakerCooldown instead of adding to the pile-up.
var ErrCircuitOpen = errors.New("txkvclient: circuit breaker open (server overloaded)")

// Options tunes a Client's resilience. The zero value is the strict
// fail-fast client: no deadlines, no retries, no breaker.
type Options struct {
	// Timeout bounds each request round trip (connect + write + read).
	// 0 = wait forever.
	Timeout time.Duration
	// MaxRetries is how many times one request may be re-issued, with
	// bounded exponential backoff between attempts. Two distinct
	// failures trigger a retry (DESIGN.md §13):
	//
	//   - a reply with a retryable code (Overloaded, Draining): the
	//     server shed the request BEFORE executing it, so re-issuing is
	//     safe for every op, mutations included;
	//   - a transport failure (connection reset, timeout, torn frame):
	//     the server may have executed the request and only the reply
	//     was lost, so re-issuing a mutation risks applying it twice —
	//     mutations are retried only with RetryMutations set, reads
	//     always.
	//
	// Permanent codes (Rejected, DeadlineExceeded, Internal) are never
	// retried. 0 = fail fast.
	MaxRetries int
	// RetryMutations opts mutating requests (put/delete/cas/transfer
	// and batches containing them) into transport-failure retry,
	// accepting at-least-once semantics. Off by default: a lost reply
	// must not silently re-apply a transfer.
	RetryMutations bool
	// BackoffBase/BackoffMax bound the backoff: attempt k sleeps a
	// uniformly jittered duration in (0, min(BackoffBase<<k,
	// BackoffMax)]. Defaults 1ms and 100ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Budget is the default per-request deadline budget: each Do gets
	// Budget of wall-clock time across ALL its attempts, and every
	// attempt advertises the remaining budget to the server as the wire
	// TTL, so the server stops queueing work the client has already
	// given up on. A request's own TTL, when set, overrides Budget.
	// 0 = no deadline.
	Budget time.Duration
	// BreakerThreshold, when positive, opens the circuit breaker after
	// that many consecutive Overloaded replies: Do then fails fast with
	// ErrCircuitOpen (no network traffic) until BreakerCooldown has
	// passed, after which one probe request is let through — success
	// closes the breaker, another Overloaded re-opens it. 0 = no
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open (default
	// 100ms).
	BreakerCooldown time.Duration
}

func (o *Options) fill() {
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 100 * time.Millisecond
	}
}

// Client is one synchronous connection to a txkv server. It is not safe
// for concurrent use; the load generator opens one Client per worker.
type Client struct {
	addr string
	opts Options
	conn net.Conn
	br   *bufio.Reader
	rbuf []byte
	wbuf []byte

	// breaker state: consecutive Overloaded replies seen, and the time
	// before which Do fails fast. Client is single-goroutine, so plain
	// fields suffice.
	breakerFails int
	breakerUntil time.Time

	// Retries counts re-issued request attempts (shed replies and
	// transport failures alike); Reconnects counts successful re-dials;
	// ShedRetries is the subset of Retries triggered by a typed
	// retryable code; BreakerOpens counts open transitions. All zero
	// for a fail-fast client.
	Retries      uint64
	Reconnects   uint64
	ShedRetries  uint64
	BreakerOpens uint64
}

// Dial connects to a txkv server with fail-fast semantics.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects with the given resilience options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts.fill()
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, opts: opts, conn: conn, br: bufio.NewReader(conn)}, nil
}

// DialRetry dials with retries until timeout elapses — the readiness
// probe load drivers use right after launching a server.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	return DialRetryOptions(addr, timeout, Options{})
}

// DialRetryOptions is DialRetry with resilience options on the
// resulting client.
func DialRetryOptions(addr string, timeout time.Duration, opts Options) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := DialOptions(addr, opts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("txkvclient: server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its reply. An error reply from the
// server is returned as the reply with Err set (and a typed Code), not
// as a Go error — the Go error path is reserved for transport and
// protocol failures, plus ErrCircuitOpen. With Options.MaxRetries set,
// retryable shed replies and (for reads, or with RetryMutations) lost
// connections re-issue the request with full-jitter backoff; the
// remaining deadline budget rides along as the wire TTL.
func (c *Client) Do(req txkvwire.Req) (txkvwire.Reply, error) {
	if c.opts.BreakerThreshold > 0 && time.Now().Before(c.breakerUntil) {
		return txkvwire.Reply{}, ErrCircuitOpen
	}
	// The deadline covers the whole Do — every attempt plus the
	// backoffs between them. A request-level TTL overrides the
	// configured default budget.
	var deadline time.Time
	if req.TTL > 0 {
		deadline = time.Now().Add(req.TTL)
	} else if c.opts.Budget > 0 {
		req.TTL = c.opts.Budget
		deadline = time.Now().Add(c.opts.Budget)
	}
	transportOK := c.opts.RetryMutations || !mutatingReq(req)

	var reply txkvwire.Reply
	var err error
	for attempt := 0; ; attempt++ {
		c.wbuf, err = txkvwire.AppendReq(c.wbuf[:0], req)
		if err != nil {
			return txkvwire.Reply{}, err // malformed request: retrying can't help
		}
		reply, err = c.roundTrip(deadline)
		if err == nil {
			c.breakerNote(reply.Code)
			if !reply.Code.Retryable() {
				return reply, nil
			}
			// Stop retrying when attempts are spent or this reply just
			// tripped the breaker — hammering an overloaded server with
			// the remaining attempts is what the breaker exists to stop.
			if attempt >= c.opts.MaxRetries || c.breakerErr() != nil {
				return reply, nil
			}
			c.ShedRetries++
		} else {
			if attempt >= c.opts.MaxRetries || !transportOK {
				return reply, err
			}
		}
		c.Retries++
		c.sleepBackoff(attempt, deadline)
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				// Budget exhausted: surface whatever the last attempt got.
				return reply, err
			}
			req.TTL = rem
		}
		if err != nil {
			// Transport failures poison the connection; shed replies
			// arrive on a healthy one, so only the former re-dials.
			if rerr := c.redial(); rerr != nil {
				err = rerr
			}
		}
	}
}

// breakerErr reports ErrCircuitOpen while the breaker is open, nil
// otherwise.
func (c *Client) breakerErr() error {
	if c.opts.BreakerThreshold > 0 && time.Now().Before(c.breakerUntil) {
		return ErrCircuitOpen
	}
	return nil
}

// breakerNote feeds one reply code into the breaker: consecutive
// Overloaded replies trip it open for BreakerCooldown; anything else
// closes it.
func (c *Client) breakerNote(code txkvwire.Code) {
	if c.opts.BreakerThreshold <= 0 {
		return
	}
	if code != txkvwire.CodeOverloaded {
		c.breakerFails = 0
		return
	}
	c.breakerFails++
	if c.breakerFails >= c.opts.BreakerThreshold {
		c.breakerUntil = time.Now().Add(c.opts.BreakerCooldown)
		c.breakerFails = 0
		c.BreakerOpens++
	}
}

// mutatingReq reports whether a request (or any batch sub-request)
// writes the store — the ops whose transport-failure retry is gated by
// Options.RetryMutations.
func mutatingReq(req txkvwire.Req) bool {
	switch req.Op {
	case txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS, txkvwire.OpTransfer:
		return true
	case txkvwire.OpBatch:
		for i := range req.Sub {
			if mutatingReq(req.Sub[i]) {
				return true
			}
		}
	}
	return false
}

// roundTrip writes the encoded request in c.wbuf and reads its reply,
// under the tighter of the per-attempt Timeout and the request's
// overall deadline.
func (c *Client) roundTrip(deadline time.Time) (txkvwire.Reply, error) {
	var connDL time.Time
	if c.opts.Timeout > 0 {
		connDL = time.Now().Add(c.opts.Timeout)
	}
	if !deadline.IsZero() && (connDL.IsZero() || deadline.Before(connDL)) {
		connDL = deadline
	}
	if !connDL.IsZero() {
		c.conn.SetDeadline(connDL)
	}
	if err := txkvwire.WriteFrame(c.conn, c.wbuf); err != nil {
		return txkvwire.Reply{}, err
	}
	var err error
	c.rbuf, err = txkvwire.ReadFrame(c.br, c.rbuf)
	if err != nil {
		return txkvwire.Reply{}, err
	}
	return txkvwire.DecodeReply(c.rbuf)
}

// redial replaces the connection after a transport failure.
func (c *Client) redial() error {
	c.conn.Close()
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.Reconnects++
	return nil
}

// sleepBackoff sleeps the attempt's jittered backoff: full jitter over
// an exponentially growing, capped window (so a burst of failing
// clients does not reconnect in lockstep), never past the request's
// deadline.
func (c *Client) sleepBackoff(attempt int, deadline time.Time) {
	max := c.opts.BackoffMax
	if d := c.opts.BackoffBase << uint(attempt); d < max && d > 0 {
		max = d
	}
	d := time.Duration(1 + rand.Int63n(int64(max)))
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < d {
			d = rem
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// do is Do plus promotion of server-side error replies to Go errors,
// for the typed convenience methods where an error reply is unexpected.
func (c *Client) do(req txkvwire.Req) (txkvwire.Reply, error) {
	reply, err := c.Do(req)
	if err != nil {
		return reply, err
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("txkvclient: server error: %s", reply.Err)
	}
	return reply, nil
}

// Get reads one key.
func (c *Client) Get(key uint64) (val uint64, found bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpGet, Key: key})
	return reply.Val, reply.Found, err
}

// Put writes key → val, reporting whether the key was newly inserted.
func (c *Client) Put(key, val uint64) (inserted bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpPut, Key: key, Val: val})
	return reply.OK, err
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpDelete, Key: key})
	return reply.OK, err
}

// CAS swaps key's value old → new when it currently equals old.
func (c *Client) CAS(key, old, new uint64) (swapped bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpCAS, Key: key, Old: old, Val: new})
	return reply.OK, err
}

// Transfer atomically moves amount from keys[0] to each of keys[1:].
func (c *Client) Transfer(keys []uint64, amount uint64) (ok bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpTransfer, Keys: keys, Amount: amount})
	return reply.OK, err
}

// Sum sums one shard's values, or the whole store for shard == -1.
func (c *Client) Sum(shard int) (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpSum, Shard: int32(shard)})
	return reply.Val, err
}

// Len counts the stored keys.
func (c *Client) Len() (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpLen})
	return reply.Val, err
}

// Batch runs subs as one all-or-nothing server-side transaction. When
// the batch aborted (a conditional sub-op failed), the abort reason is
// returned as abortErr with the store untouched; transport failures come
// back as err.
func (c *Client) Batch(subs []txkvwire.Req) (replies []txkvwire.Reply, abortErr error, err error) {
	reply, err := c.Do(txkvwire.Req{Op: txkvwire.OpBatch, Sub: subs})
	if err != nil {
		return nil, nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("txkvclient: %s", reply.Err), nil
	}
	return reply.Sub, nil, nil
}

// Stats fetches the server's cumulative request/phase counters.
func (c *Client) Stats() (txkvwire.Stats, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpStats})
	if err != nil {
		return txkvwire.Stats{}, err
	}
	if reply.Stats == nil {
		return txkvwire.Stats{}, fmt.Errorf("txkvclient: stats reply without stats")
	}
	return *reply.Stats, nil
}
