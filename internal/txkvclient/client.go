// Package txkvclient is the client side of the txkv network service:
// a thin synchronous connection type speaking the txkvwire protocol,
// plus the load generator (loadgen.go) that drives the YCSB-style
// workload mixes over real TCP connections in closed-loop and
// open-loop modes and folds the measurements into the results schema.
package txkvclient

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"swisstm/internal/txkvwire"
)

// Client is one synchronous connection to a txkv server. It is not safe
// for concurrent use; the load generator opens one Client per worker.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	rbuf []byte
	wbuf []byte
}

// Dial connects to a txkv server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// DialRetry dials with retries until timeout elapses — the readiness
// probe load drivers use right after launching a server.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("txkvclient: server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its reply. An error reply from the
// server is returned as the reply with Err set, not as a Go error — the
// Go error path is reserved for transport and protocol failures.
func (c *Client) Do(req txkvwire.Req) (txkvwire.Reply, error) {
	var err error
	c.wbuf, err = txkvwire.AppendReq(c.wbuf[:0], req)
	if err != nil {
		return txkvwire.Reply{}, err
	}
	if err := txkvwire.WriteFrame(c.conn, c.wbuf); err != nil {
		return txkvwire.Reply{}, err
	}
	c.rbuf, err = txkvwire.ReadFrame(c.br, c.rbuf)
	if err != nil {
		return txkvwire.Reply{}, err
	}
	return txkvwire.DecodeReply(c.rbuf)
}

// do is Do plus promotion of server-side error replies to Go errors,
// for the typed convenience methods where an error reply is unexpected.
func (c *Client) do(req txkvwire.Req) (txkvwire.Reply, error) {
	reply, err := c.Do(req)
	if err != nil {
		return reply, err
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("txkvclient: server error: %s", reply.Err)
	}
	return reply, nil
}

// Get reads one key.
func (c *Client) Get(key uint64) (val uint64, found bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpGet, Key: key})
	return reply.Val, reply.Found, err
}

// Put writes key → val, reporting whether the key was newly inserted.
func (c *Client) Put(key, val uint64) (inserted bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpPut, Key: key, Val: val})
	return reply.OK, err
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpDelete, Key: key})
	return reply.OK, err
}

// CAS swaps key's value old → new when it currently equals old.
func (c *Client) CAS(key, old, new uint64) (swapped bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpCAS, Key: key, Old: old, Val: new})
	return reply.OK, err
}

// Transfer atomically moves amount from keys[0] to each of keys[1:].
func (c *Client) Transfer(keys []uint64, amount uint64) (ok bool, err error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpTransfer, Keys: keys, Amount: amount})
	return reply.OK, err
}

// Sum sums one shard's values, or the whole store for shard == -1.
func (c *Client) Sum(shard int) (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpSum, Shard: int32(shard)})
	return reply.Val, err
}

// Len counts the stored keys.
func (c *Client) Len() (uint64, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpLen})
	return reply.Val, err
}

// Batch runs subs as one all-or-nothing server-side transaction. When
// the batch aborted (a conditional sub-op failed), the abort reason is
// returned as abortErr with the store untouched; transport failures come
// back as err.
func (c *Client) Batch(subs []txkvwire.Req) (replies []txkvwire.Reply, abortErr error, err error) {
	reply, err := c.Do(txkvwire.Req{Op: txkvwire.OpBatch, Sub: subs})
	if err != nil {
		return nil, nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("txkvclient: %s", reply.Err), nil
	}
	return reply.Sub, nil, nil
}

// Stats fetches the server's cumulative request/phase counters.
func (c *Client) Stats() (txkvwire.Stats, error) {
	reply, err := c.do(txkvwire.Req{Op: txkvwire.OpStats})
	if err != nil {
		return txkvwire.Stats{}, err
	}
	if reply.Stats == nil {
		return txkvwire.Stats{}, fmt.Errorf("txkvclient: stats reply without stats")
	}
	return *reply.Stats, nil
}
