// Package rstm implements an object-based, obstruction-free software
// transactional memory in the style of RSTM version 3 (Marathe et al.,
// "Lowering the Overhead of Software Transactional Memory", TRANSACT
// 2006), the third baseline of the paper's evaluation.
//
// Unlike the word-based engines, RSTM logs whole objects: each object
// holds an atomic pointer to an immutable locator {owner, old, new}. The
// object's current committed data resolves through the owner's status —
// new if the owner committed, old otherwise. Acquiring an object means
// CASing in a fresh locator whose new-data is a private clone; committing
// means a single CAS of the owner's status word, which atomically makes
// every acquired object's clone the current version. Any transaction can
// abort any other by CASing its status (obstruction freedom); who yields
// is decided by a pluggable contention manager (package cm).
//
// The paper exercises four RSTM variants (§2.1): eager vs lazy
// acquisition and visible vs invisible reads; all four are implemented,
// along with the global-commit-counter validation heuristic that bounds
// the cost of invisible-read revalidation.
//
// Per-object cloning gives RSTM its characteristic cost profile — high
// overhead on small, simple objects (Figures 4 and 5) — which this
// implementation reproduces naturally.
package rstm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"swisstm/internal/cm"
	"swisstm/internal/mem"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// AcquireMode selects when writers acquire objects.
type AcquireMode int

const (
	// Eager acquires at open time (encounter-time W/W detection).
	Eager AcquireMode = iota
	// Lazy acquires at commit time (commit-time W/W detection).
	Lazy
)

func (m AcquireMode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// ReadMode selects whether readers announce themselves.
type ReadMode int

const (
	// Invisible readers validate their own read sets.
	Invisible ReadMode = iota
	// Visible readers register in per-object slots; writers abort them.
	Visible
)

func (m ReadMode) String() string {
	if m == Invisible {
		return "invisible"
	}
	return "visible"
}

// Config parameterizes an RSTM engine.
type Config struct {
	Acquire AcquireMode
	Reads   ReadMode
	// Manager arbitrates conflicts (default: Polka, the paper's default
	// RSTM configuration).
	Manager cm.Manager
	// BackoffUnit scales the post-abort randomized back-off.
	BackoffUnit int
	// UnwindAborts restores panic-delivered commit-time aborts; a
	// measurement ablation only (see the field in package swisstm).
	UnwindAborts bool
	// Obs, when non-nil, collects per-transaction telemetry at commit
	// (see the field in package swisstm; DESIGN.md §11).
	Obs *obs.TxnObs
}

func (c *Config) fill() {
	if c.Manager == nil {
		c.Manager = cm.NewPolka()
	}
	if c.BackoffUnit == 0 {
		c.BackoffUnit = 512
	}
}

const (
	statusActive    = uint32(0)
	statusCommitted = uint32(1)
	statusAborted   = uint32(2)
)

// attempt is one execution attempt of a transaction. Locators reference
// the attempt that installed them, so each retry gets a fresh attempt
// object and stale locators keep resolving against the right status.
type attempt struct {
	status atomic.Uint32
	state  *cm.TxState // the owning thread's persistent CM state
}

// locator is the immutable triple an object points at (DSTM design).
type locator struct {
	owner *attempt // nil for pre-initialized clean objects
	old   []stm.Word
	new   []stm.Word
}

// object is one transactional object.
type object struct {
	loc atomic.Pointer[locator]
	// readers is the visible-reader bitmap: bit i set means thread i
	// currently holds a visible read of this object. stm.MaxThreads (64)
	// fits a word exactly, so writer-vs-reader arbitration is O(popcount)
	// over the set bits — each resolved to an attempt through the
	// engine's visible table — instead of the O(visSlots) pointer-slot
	// scan this replaced, and reader registration is one atomic RMW.
	readers atomic.Uint64
}

// chunking of the object table: chunkBits of index inside a chunk.
const (
	chunkBits = 12
	chunkSize = 1 << chunkBits
	maxChunks = 1 << 14 // 64 Mi objects
)

// Engine is an RSTM instance.
type Engine struct {
	cfg    Config
	next   atomic.Uint64 // next object handle (0 is nil)
	chunks [maxChunks]atomic.Pointer[[chunkSize]object]
	growMu sync.Mutex
	// commits is the global commit counter of RSTM's invisible-read
	// validation heuristic, hardened into a parity lock: even values are
	// stable epochs; a writer makes the counter odd for the short
	// validate-and-flip critical section of its commit. Invisible readers
	// only trust data observed under a stable even value, which makes
	// commit visibility changes atomic with respect to counter changes
	// (plain "validate when the counter moved" has a window in which a
	// reader caches the new counter before the writer's status flip and
	// then misses it — an opacity violation). Padded onto a private cache
	// line: every invisible reader polls it and every writer flips it
	// twice per commit, so sharing a line with the allocator word or the
	// chunk table would put allocator traffic on the hottest line in the
	// engine.
	_       mem.CacheLinePad
	commits mem.PaddedUint64

	// visible publishes each thread's in-flight attempt for the
	// visible-read protocol: an object's reader bitmap names the thread,
	// this table resolves it to the attempt a writer must arbitrate
	// against. A writer that loads a bit may race a completing reader and
	// find the thread's *next* attempt here; killing it causes a spurious
	// retry of that transaction, never a safety violation (the same
	// caveat as SwissTM's kill CAS under descriptor reuse). Slots are
	// padded: each is stored by its own thread but polled by every
	// acquiring writer.
	visible [stm.MaxThreads]paddedAttemptPtr
}

// paddedAttemptPtr keeps per-thread visible-attempt slots on private
// cache lines.
type paddedAttemptPtr struct {
	p atomic.Pointer[attempt]
	_ [mem.CacheLine - 8]byte
}

// orBits sets mask bits in u; clearBits clears them. CAS loops because
// the Go 1.22 toolchain predates atomic.Uint64.Or/And.
func orBits(u *atomic.Uint64, mask uint64) {
	for {
		v := u.Load()
		if v&mask == mask || u.CompareAndSwap(v, v|mask) {
			return
		}
	}
}

func clearBits(u *atomic.Uint64, mask uint64) {
	for {
		v := u.Load()
		if v&mask == 0 || u.CompareAndSwap(v, v&^mask) {
			return
		}
	}
}

// New creates an RSTM engine.
func New(cfg Config) *Engine {
	cfg.fill()
	e := &Engine{cfg: cfg}
	e.next.Store(1) // handle 0 is the nil reference
	return e
}

// Name implements stm.STM.
func (e *Engine) Name() string {
	return fmt.Sprintf("RSTM(%s/%s/%s)", e.cfg.Acquire, e.cfg.Reads, e.cfg.Manager.Name())
}

// Arena implements stm.STM. RSTM is object-based and has no word arena.
func (e *Engine) Arena() *mem.Arena { return nil }

func (e *Engine) object(h stm.Handle) *object {
	if h == 0 || uint64(h) >= e.next.Load() {
		panic(fmt.Sprintf("rstm: invalid object handle %#x (next %#x)", uint64(h), e.next.Load()))
	}
	c := e.chunks[h>>chunkBits].Load()
	if c == nil {
		panic(fmt.Sprintf("rstm: handle %#x points into an unallocated chunk", uint64(h)))
	}
	return &c[h&(chunkSize-1)]
}

// newObject allocates an object with nFields zeroed fields.
func (e *Engine) newObject(nFields uint32) stm.Handle {
	h := stm.Handle(e.next.Add(1) - 1)
	ci := h >> chunkBits
	if ci >= maxChunks {
		panic("rstm: object table exhausted")
	}
	if e.chunks[ci].Load() == nil {
		e.growMu.Lock()
		if e.chunks[ci].Load() == nil {
			e.chunks[ci].Store(new([chunkSize]object))
		}
		e.growMu.Unlock()
	}
	o := e.object(h)
	o.loc.Store(&locator{new: make([]stm.Word, nFields)})
	return h
}

// current resolves a locator to the object's current committed data.
func current(loc *locator) []stm.Word {
	if loc.owner == nil || loc.owner.status.Load() == statusCommitted {
		return loc.new
	}
	return loc.old
}

// readEntry records one invisible read for validation.
type readEntry struct {
	obj  *object
	data []stm.Word // the slice observed; pointer identity is the version
}

// lazyWrite is a privately buffered write of the lazy-acquire variant.
type lazyWrite struct {
	obj   *object
	base  []stm.Word // committed data the clone was taken from
	clone []stm.Word
}

// txn is a per-thread transaction context.
type txn struct {
	e        *Engine
	id       int
	ro       bool // current transaction declared read-only (stm.ReadOnly)
	cur      *attempt
	pub      bool // cur escaped into shared state (locator / reader slot)
	state    cm.TxState
	readSet  []readEntry
	writeSet []*object   // eagerly acquired objects (for bookkeeping)
	lazySet  []lazyWrite // lazy mode: private clones
	visSet   []*object   // objects where we occupy a visible-reader slot
	lastCC   uint64      // commit counter at last validation
	rng      *util.Rand
	succ     int
	// committing marks the window between entering commitRO/commitInner
	// and the next begin, so the shared maybeValidate can attribute a
	// validation failure to the read phase or the commit phase
	// (stm.Stats.AbortsValidRead vs AbortsValidCommit).
	committing bool
	roV        roTx          // pre-allocated read-only view returned by Begin(ReadOnly)
	obsh       *obs.TxnShard // per-thread telemetry shard (nil = obs off)
	stats      stm.Stats
}

// NewThread implements stm.STM.
func (e *Engine) NewThread(id int) stm.Thread {
	if id < 0 || id >= stm.MaxThreads {
		panic("rstm: thread id out of range")
	}
	t := &txn{
		e:   e,
		id:  id,
		rng: util.NewRand(uint64(id)*0x2545f491 + 11),
	}
	t.roV.t = t
	if e.cfg.Obs != nil {
		t.obsh = e.cfg.Obs.Shard(id)
	}
	return t
}

// Stats implements stm.Thread.
func (t *txn) Stats() stm.Stats { return t.stats }

// Run implements stm.Thread: the engine-facing v2 primitive.
func (t *txn) Run(body func(stm.Tx) error, mode stm.Mode) error {
	return stm.RunLoop(t, body, mode)
}

// Begin implements stm.Thread. A declared read-only transaction skips
// the acquire/arbitration state wholesale: no write or lazy sets, and —
// with invisible reads — no contention-manager bookkeeping either, since
// an invisible read-only attempt is never published and so never
// arbitrates against anyone (DESIGN.md §9.3).
func (t *txn) Begin(mode stm.Mode, restart bool) stm.Tx {
	if mode == stm.ReadOnly {
		t.ro = true
		t.beginRO(restart)
		return &t.roV
	}
	t.ro = false
	t.begin(restart)
	return t
}

// Commit implements stm.Thread: try to commit; a failure is delivered as
// a checked return (or by the UnwindAborts measurement ablation's panic).
func (t *txn) Commit() bool {
	var ok bool
	if t.ro {
		ok = t.commitRO()
	} else {
		ok = t.commitInner()
	}
	if ok {
		t.succ = 0
		return true
	}
	if t.e.cfg.UnwindAborts {
		panic(stm.SignalRollback)
	}
	t.stats.AbortsReturned++
	return false
}

// Unwind implements stm.Thread: triage a panic recovered mid-body; a
// foreign panic freezes the attempt and drops visible-reader slots
// before the caller propagates it.
func (t *txn) Unwind(r any) bool {
	if _, rb := r.(stm.RollbackSignal); rb {
		t.stats.AbortsUnwound++
		return true
	}
	t.cur.status.CompareAndSwap(statusActive, statusAborted)
	t.dropVisible()
	return false
}

// AbortUser implements stm.Thread: roll back because the body returned
// an error. Acquired objects revert through the frozen attempt's status
// (stale locators resolve to old data); no retry.
func (t *txn) AbortUser() {
	t.abort(false)
	t.stats.AbortsUser++
	t.stats.AbortsReturned++
	t.succ = 0 // the logical transaction ends here, like a commit
}

// Backoff implements stm.Thread.
func (t *txn) Backoff() {
	t.succ++
	util.BackoffLinear(t.rng, t.succ, t.e.cfg.BackoffUnit)
}

func (t *txn) begin(restart bool) {
	// Reuse the attempt descriptor whenever the previous attempt never
	// published it: locators and the engine's visible table are the only
	// places other threads can obtain the pointer, so an unpublished
	// descriptor is thread-private and resetting its status is invisible
	// to everyone else. Invisible-read transactions that never wrote —
	// the dominant case in read-heavy workloads — therefore run
	// allocation-free in steady state. A published descriptor must stay
	// frozen forever: stale locators keep resolving current data through
	// its final status.
	if t.cur == nil || t.pub {
		t.cur = &attempt{state: &t.state}
		t.pub = false
	} else {
		t.cur.status.Store(statusActive)
	}
	t.readSet = t.readSet[:0]
	t.writeSet = t.writeSet[:0]
	t.lazySet = t.lazySet[:0]
	t.visSet = t.visSet[:0]
	t.committing = false
	t.lastCC = t.e.stableEpoch()
	t.e.cfg.Manager.OnStart(&t.state, restart)
}

// beginRO starts a declared read-only attempt: descriptor reuse/reset and
// a fresh read set. The write and lazy sets stay untouched (nothing reads
// them in read-only mode), the visible set is invariantly empty between
// transactions (dropVisible truncates it on every outcome), and the
// contention manager is only consulted when reads are visible — an
// invisible read-only attempt never arbitrates.
func (t *txn) beginRO(restart bool) {
	if t.cur == nil || t.pub {
		t.cur = &attempt{state: &t.state}
		t.pub = false
	} else {
		t.cur.status.Store(statusActive)
	}
	t.readSet = t.readSet[:0]
	t.committing = false
	t.lastCC = t.e.stableEpoch()
	if t.e.cfg.Reads == Visible {
		t.e.cfg.Manager.OnStart(&t.state, restart)
	}
}

// abort performs the rollback bookkeeping — freeze the attempt, drop
// visible registrations, count the abort — without deciding the delivery
// mechanism: callers either return a checked false up to the retry loop
// or panic with the pre-allocated signal when user code must be
// interrupted.
func (t *txn) abort(explicit bool) {
	t.cur.status.CompareAndSwap(statusActive, statusAborted)
	t.dropVisible()
	t.stats.Aborts++
	if explicit {
		t.stats.AbortsExplicit++
	}
}

// Restart implements stm.Tx: a user-requested retry always unwinds.
func (t *txn) Restart() {
	t.abort(true)
	panic(stm.SignalRestart)
}

// killedAbort reports (and records) a CM kill: true means the
// transaction aborted and the caller must back out.
func (t *txn) killedAbort() bool {
	if t.cur.status.Load() == statusAborted {
		t.stats.AbortsKilled++
		t.abort(false)
		return true
	}
	return false
}

// resolveConflict runs the contention manager until the conflict with the
// owner of loc clears. It returns true when the attacker may retry the
// open (the victim is gone or was aborted) and false when the manager
// decided the attacker dies (the abort is already recorded).
func (t *txn) resolveConflict(owner *attempt) bool {
	for attemptNo := 0; ; attemptNo++ {
		if owner.status.Load() != statusActive {
			return true // victim finished on its own
		}
		switch t.e.cfg.Manager.Resolve(&t.state, owner.state, attemptNo) {
		case cm.AbortSelf:
			t.stats.AbortsWW++
			t.abort(false)
			return false
		case cm.AbortOther:
			owner.status.CompareAndSwap(statusActive, statusAborted)
			return true
		case cm.Wait:
			t.stats.WaitsCM++
			t.e.cfg.Manager.WaitBackoff(t.rng, attemptNo)
			if t.killedAbort() {
				return false
			}
		}
	}
}

// stableEpoch spins until the commit counter holds a stable (even) epoch
// and returns it.
func (e *Engine) stableEpoch() uint64 {
	for {
		cc := e.commits.Load()
		if cc&1 == 0 {
			return cc
		}
		runtime.Gosched() // a writer is inside its flip section
	}
}

// maybeValidate brings the transaction's epoch up to date, revalidating
// the read set whenever the epoch moved. It reports false (abort
// recorded) on validation failure.
func (t *txn) maybeValidate() bool {
	for {
		cc := t.e.commits.Load()
		if cc == t.lastCC {
			return true
		}
		if cc&1 == 1 {
			runtime.Gosched()
			continue
		}
		if !t.validate() {
			t.stats.AbortsValid++
			if t.committing {
				t.stats.AbortsValidCommit++
			} else {
				t.stats.AbortsValidRead++
			}
			t.abort(false)
			return false
		}
		if t.e.commits.Load() != cc {
			continue // a commit landed mid-validation; redo
		}
		t.lastCC = cc
		return true
	}
}

// openRead returns a consistent snapshot of the object's data for
// reading; ok=false means the transaction aborted.
func (t *txn) openRead(o *object) ([]stm.Word, bool) {
	if t.killedAbort() {
		return nil, false
	}
	// Read-after-write through the lazy buffer.
	for i := range t.lazySet {
		if t.lazySet[i].obj == o {
			return t.lazySet[i].clone, true
		}
	}
	loc := o.loc.Load()
	if loc.owner == t.cur {
		return loc.new, true // our own acquired object
	}
	if t.e.cfg.Reads == Visible {
		return t.openReadVisible(o, loc)
	}
	// Invisible read: resolve current data under a stable epoch; an
	// active foreign owner does not conflict yet (its redo clone stays
	// private until it commits).
	for {
		if !t.maybeValidate() {
			return nil, false
		}
		cc := t.lastCC
		loc = o.loc.Load()
		data := current(loc)
		if t.e.commits.Load() != cc {
			continue // a commit raced with the read; resample
		}
		t.readSet = append(t.readSet, readEntry{obj: o, data: data})
		return data, true
	}
}

func (t *txn) openReadVisible(o *object, loc *locator) ([]stm.Word, bool) {
	// Register in the object's reader bitmap first so a racing writer
	// sees us. Publication order matters: the attempt pointer must be in
	// the engine's visible table before our bit can appear, or a writer
	// could resolve the bit to a stale attempt. The first registration of
	// an attempt (empty visSet — bits are only set while in visSet)
	// publishes; later ones reuse the slot.
	bit := uint64(1) << uint(t.id)
	if o.readers.Load()&bit == 0 {
		if len(t.visSet) == 0 {
			t.e.visible[t.id].p.Store(t.cur)
			t.pub = true
		}
		orBits(&o.readers, bit)
		t.visSet = append(t.visSet, o)
	}
	for {
		loc = o.loc.Load()
		if loc.owner == nil || loc.owner == t.cur ||
			loc.owner.status.Load() != statusActive {
			if t.killedAbort() { // a writer may have aborted us while registering
				return nil, false
			}
			return current(loc), true
		}
		// Read/write conflict with an active writer, detected eagerly
		// because we are visible.
		if !t.resolveConflict(loc.owner) {
			return nil, false
		}
	}
}

// openWrite returns a writable clone of the object's data; ok=false
// means the transaction aborted.
func (t *txn) openWrite(o *object) ([]stm.Word, bool) {
	if t.killedAbort() {
		return nil, false
	}
	if t.e.cfg.Acquire == Lazy {
		return t.openWriteLazy(o)
	}
	for {
		loc := o.loc.Load()
		if loc.owner == t.cur {
			return loc.new, true
		}
		if loc.owner != nil && loc.owner.status.Load() == statusActive {
			if !t.resolveConflict(loc.owner) {
				return nil, false
			}
			continue
		}
		data := current(loc)
		clone := make([]stm.Word, len(data))
		copy(clone, data)
		if o.loc.CompareAndSwap(loc, &locator{owner: t.cur, old: data, new: clone}) {
			t.pub = true
			if !t.afterAcquire(o) {
				return nil, false
			}
			t.writeSet = append(t.writeSet, o)
			return clone, true
		}
	}
}

// afterAcquire implements post-acquire duties shared by both modes:
// aborting visible readers and CM/validation bookkeeping. It reports
// false (abort recorded) when the manager decided the writer dies.
func (t *txn) afterAcquire(o *object) bool {
	t.e.cfg.Manager.OnOpen(&t.state)
	if t.e.cfg.Reads == Visible {
		// Writer vs visible readers: walk the set bits of the reader
		// bitmap (skipping our own) and resolve each through the visible
		// table — O(popcount), not O(slots).
		bm := o.readers.Load() &^ (uint64(1) << uint(t.id))
		for bm != 0 {
			i := bits.TrailingZeros64(bm)
			bm &= bm - 1
			r := t.e.visible[i].p.Load()
			if r == nil || r == t.cur || r.status.Load() != statusActive {
				continue
			}
			// Eager read/write conflict: writer vs visible reader.
			switch t.e.cfg.Manager.Resolve(&t.state, r.state, 0) {
			case cm.AbortSelf:
				t.stats.AbortsWW++
				t.abort(false)
				return false
			default:
				// Both AbortOther and Wait kill the reader here: a waiting
				// writer could deadlock against a reader waiting for us,
				// so RSTM's writers always clear visible readers.
				r.status.CompareAndSwap(statusActive, statusAborted)
			}
		}
	}
	if t.e.cfg.Reads == Invisible {
		return t.maybeValidate()
	}
	return true
}

func (t *txn) openWriteLazy(o *object) ([]stm.Word, bool) {
	for i := range t.lazySet {
		if t.lazySet[i].obj == o {
			return t.lazySet[i].clone, true
		}
	}
	// Truly lazy: clone the current committed data without acquiring the
	// object, even if some transaction holds it right now; the
	// write/write conflict, if it persists, surfaces only at commit time
	// (the late detection Figure 6a illustrates). The clone source is
	// routed through openRead: cloning *is* a read, and it must obey the
	// same snapshot discipline (stable epoch + read-set entry), or a
	// transaction could buffer a clone from a newer snapshot than its
	// earlier reads and act on the torn mix before any validation runs.
	data, ok := t.openRead(o)
	if !ok {
		return nil, false
	}
	clone := make([]stm.Word, len(data))
	copy(clone, data)
	t.lazySet = append(t.lazySet, lazyWrite{obj: o, base: data, clone: clone})
	t.e.cfg.Manager.OnOpen(&t.state)
	return clone, true
}

// validate re-checks every invisible read: the object's current data must
// still be the slice we observed.
func (t *txn) validate() bool {
	for i := range t.readSet {
		re := &t.readSet[i]
		loc := re.obj.loc.Load()
		if len(re.data) == 0 {
			continue // zero-field objects have no observable state
		}
		if loc.owner == t.cur {
			// We acquired it after reading; our clone descends from the
			// data we read iff the old pointer matches.
			if (len(loc.old) > 0 && &loc.old[0] == &re.data[0]) ||
				(len(loc.new) > 0 && &loc.new[0] == &re.data[0]) {
				continue
			}
			return false
		}
		cur := current(loc)
		if len(cur) == 0 || &cur[0] != &re.data[0] {
			return false
		}
	}
	return true
}

// commitRO commits a declared read-only transaction: no lazy acquisition,
// no writer detection, no flip section. Invisible reads validate under a
// stable epoch; visible readers may have been killed by a writer, which
// the status CAS detects.
func (t *txn) commitRO() bool {
	t.committing = true
	rs := len(t.readSet) + len(t.visSet)
	if t.e.cfg.Reads == Invisible && len(t.readSet) > 0 {
		if !t.maybeValidate() {
			return false
		}
	}
	if !t.cur.status.CompareAndSwap(statusActive, statusCommitted) {
		t.stats.AbortsKilled++
		t.abort(false)
		return false
	}
	t.dropVisible()
	t.stats.Commits++
	t.stats.ROCommits++
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(rs), 0)
	}
	return true
}

// commitInner finishes the transaction, reporting false when it aborted.
// All aborts detected here — commit-time acquisition conflicts of the
// lazy mode, read-set validation, CM kills landing at commit — take the
// checked return path through Commit; the UnwindAborts ablation restores
// the old panic delivery for A/B measurement.
func (t *txn) commitInner() bool {
	t.committing = true
	rs := len(t.readSet) + len(t.visSet)
	ws := len(t.writeSet) + len(t.lazySet)
	if t.killedAbort() {
		return false
	}
	// Lazy mode: acquire everything now (commit-time W/W detection).
	for i := range t.lazySet {
		lw := &t.lazySet[i]
		for {
			loc := lw.obj.loc.Load()
			if loc.owner == t.cur {
				break
			}
			if loc.owner != nil && loc.owner.status.Load() == statusActive {
				// Never steal from an active owner: arbitrate first.
				if !t.resolveConflict(loc.owner) {
					return false
				}
				continue
			}
			cur := current(loc)
			if len(cur) > 0 && (len(lw.base) == 0 || &cur[0] != &lw.base[0]) {
				// Someone committed a new version since we cloned:
				// our buffered update is stale.
				t.stats.LockAcquireFail++
				t.abort(false)
				return false
			}
			if lw.obj.loc.CompareAndSwap(loc, &locator{owner: t.cur, old: cur, new: lw.clone}) {
				t.pub = true
				if !t.afterAcquire(lw.obj) {
					return false
				}
				break
			}
		}
	}
	writer := len(t.lazySet) > 0 || len(t.writeSet) > 0
	if !writer {
		// Read-only: validate under a stable epoch and finish.
		if t.e.cfg.Reads == Invisible && len(t.readSet) > 0 {
			if !t.maybeValidate() {
				return false
			}
		}
		if !t.cur.status.CompareAndSwap(statusActive, statusCommitted) {
			t.stats.AbortsKilled++
			t.abort(false)
			return false
		}
		t.dropVisible()
		t.stats.Commits++
		if t.obsh != nil {
			t.obsh.RecordCommit(uint64(t.succ), uint64(rs), uint64(ws))
		}
		return true
	}
	// Writer: enter the flip section (counter even→odd), validate, flip,
	// leave (odd→even). The section makes the visibility change atomic
	// with respect to the validation heuristic; two concurrent writers
	// whose read and write sets cross cannot both validate-then-flip.
	for {
		cc := t.e.stableEpoch()
		if t.e.commits.CompareAndSwap(cc, cc+1) {
			break
		}
	}
	ok := t.e.cfg.Reads == Visible || len(t.readSet) == 0 || t.validate()
	flipped := false
	if ok {
		flipped = t.cur.status.CompareAndSwap(statusActive, statusCommitted)
	}
	t.e.commits.Add(1) // leave the flip section (back to even)
	if !ok {
		t.stats.AbortsValid++
		t.stats.AbortsValidCommit++
		t.abort(false)
		return false
	}
	if !flipped {
		t.stats.AbortsKilled++
		t.abort(false)
		return false
	}
	t.dropVisible()
	t.stats.Commits++
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(rs), uint64(ws))
	}
	return true
}

// dropVisible clears our visible-reader registrations: one bit per
// registered object.
func (t *txn) dropVisible() {
	if len(t.visSet) == 0 {
		return
	}
	bit := uint64(1) << uint(t.id)
	for _, o := range t.visSet {
		clearBits(&o.readers, bit)
	}
	t.visSet = t.visSet[:0]
}

// openReadRO is openRead for declared read-only transactions: no lazy
// write-set probe (writes are impossible) and, with invisible reads, no
// kill checks — an unpublished read-only attempt is unreachable by any
// contention manager.
func (t *txn) openReadRO(o *object) ([]stm.Word, bool) {
	if t.e.cfg.Reads == Visible {
		return t.openReadVisible(o, o.loc.Load())
	}
	for {
		if !t.maybeValidate() {
			return nil, false
		}
		cc := t.lastCC
		loc := o.loc.Load()
		data := current(loc)
		if t.e.commits.Load() != cc {
			continue // a commit raced with the read; resample
		}
		t.readSet = append(t.readSet, readEntry{obj: o, data: data})
		return data, true
	}
}

// ReadField implements stm.Tx. A read that cannot proceed must interrupt
// the user closure, so this thin wrapper converts openRead's checked
// abort into the single unwinding panic.
func (t *txn) ReadField(h stm.Handle, field uint32) stm.Word {
	data, ok := t.openRead(t.e.object(h))
	if !ok {
		panic(stm.SignalRollback)
	}
	return data[field]
}

// ReadRef implements stm.Tx.
func (t *txn) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(t.ReadField(h, field))
}

// WriteField implements stm.Tx.
func (t *txn) WriteField(h stm.Handle, field uint32, v stm.Word) {
	data, ok := t.openWrite(t.e.object(h))
	if !ok {
		panic(stm.SignalRollback)
	}
	data[field] = v
}

// WriteRef implements stm.Tx.
func (t *txn) WriteRef(h stm.Handle, field uint32, ref stm.Handle) {
	t.WriteField(h, field, stm.Word(ref))
}

// NewObject implements stm.Tx.
func (t *txn) NewObject(fields uint32) stm.Handle { return t.e.newObject(fields) }

// Load implements stm.Tx. RSTM has no word API (the paper cannot run
// STAMP on RSTM for the same reason, §4 footnote 4); drivers gate on
// stm.SupportsWordAPI, so reaching this panic is a driver bug.
func (t *txn) Load(a stm.Addr) stm.Word { panic(stm.ErrWordAPI) }

// Store implements stm.Tx.
func (t *txn) Store(a stm.Addr, v stm.Word) { panic(stm.ErrWordAPI) }

// AllocWords implements stm.Tx.
func (t *txn) AllocWords(n uint32) stm.Addr { panic(stm.ErrWordAPI) }

// SupportsWordAPI reports the word-API capability (stm.SupportsWordAPI):
// RSTM is object-based and has none.
func (e *Engine) SupportsWordAPI() bool { return false }

// roTx is the transaction view Begin returns for declared read-only
// mode; see the swisstm counterpart for the rationale. Object-API write
// methods are unreachable through TxRO and panic as defense in depth;
// word-API methods panic ErrWordAPI like the read-write view.
type roTx struct{ t *txn }

const errROWrite = "rstm: write inside a declared read-only transaction"

// ReadField implements stm.Tx on the read-only view.
func (r *roTx) ReadField(h stm.Handle, field uint32) stm.Word {
	data, ok := r.t.openReadRO(r.t.e.object(h))
	if !ok {
		panic(stm.SignalRollback)
	}
	return data[field]
}

// ReadRef implements stm.Tx on the read-only view.
func (r *roTx) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(r.ReadField(h, field))
}

// Restart implements stm.Tx on the read-only view.
func (r *roTx) Restart() { r.t.Restart() }

func (r *roTx) Load(stm.Addr) stm.Word                  { panic(stm.ErrWordAPI) }
func (r *roTx) Store(stm.Addr, stm.Word)                { panic(stm.ErrWordAPI) }
func (r *roTx) AllocWords(uint32) stm.Addr              { panic(stm.ErrWordAPI) }
func (r *roTx) WriteField(stm.Handle, uint32, stm.Word) { panic(errROWrite) }
func (r *roTx) WriteRef(stm.Handle, uint32, stm.Handle) { panic(errROWrite) }
func (r *roTx) NewObject(uint32) stm.Handle             { panic(errROWrite) }

var _ stm.STM = (*Engine)(nil)
var _ stm.Thread = (*txn)(nil)
var _ stm.Tx = (*txn)(nil)
var _ stm.Tx = (*roTx)(nil)
