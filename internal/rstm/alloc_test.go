package rstm

import (
	"testing"

	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyStateReadOnly: invisible-read transactions that
// never write reuse their attempt descriptor (it was never published
// through a locator or reader slot), so warm read-only transactions
// allocate nothing. Update transactions are exempt: per-object cloning
// is RSTM's defining cost (the paper's Figures 4 and 5) and each commit
// necessarily allocates clone + locator + attempt.
func TestZeroAllocSteadyStateReadOnly(t *testing.T) {
	e := New(Config{})
	stmtest.ZeroAllocSteadyState(t, e, false, false)
}
