package rstm

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

func TestConformanceVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"eager-invisible-polka", Config{Acquire: Eager, Reads: Invisible, Manager: cm.NewPolka()}},
		{"eager-invisible-timid", Config{Acquire: Eager, Reads: Invisible, Manager: cm.NewTimid()}},
		{"eager-invisible-greedy", Config{Acquire: Eager, Reads: Invisible, Manager: cm.NewGreedy()}},
		{"eager-invisible-serializer", Config{Acquire: Eager, Reads: Invisible, Manager: cm.NewSerializer()}},
		{"eager-visible-polka", Config{Acquire: Eager, Reads: Visible, Manager: cm.NewPolka()}},
		{"lazy-invisible-polka", Config{Acquire: Lazy, Reads: Invisible, Manager: cm.NewPolka()}},
		{"lazy-invisible-timid", Config{Acquire: Lazy, Reads: Invisible, Manager: cm.NewTimid()}},
		{"lazy-visible-timid", Config{Acquire: Lazy, Reads: Visible, Manager: cm.NewTimid()}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := v.cfg
			stmtest.Run(t, func() stm.STM {
				c := cfg
				c.Manager = cm.ByName(cfg.Manager.Name()) // fresh clock per engine
				return New(c)
			}, stmtest.Options{WordAPI: false})
		})
	}
}

func TestWordAPIRejected(t *testing.T) {
	e := New(Config{})
	th := e.NewThread(0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("word API should panic on RSTM")
		}
	}()
	stm.AtomicVoid(th, func(tx stm.Tx) { tx.Load(1) })
}

func TestCloneIsolation(t *testing.T) {
	// A writer's clone must be invisible to a concurrent reader until the
	// status CAS; after abort, the old data must remain current.
	e := New(Config{Acquire: Eager, Reads: Invisible, Manager: cm.NewTimid()})
	th := e.NewThread(0)
	var h stm.Handle
	stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(2) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.WriteField(h, 0, 10)
		tx.WriteField(h, 1, 20)
	})

	// Abort a transaction mid-flight via Restart after writing; the writes
	// must not be visible afterwards.
	tries := 0
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tries++
		if tries == 1 {
			tx.WriteField(h, 0, 999)
			tx.Restart()
		}
	})
	var a, b stm.Word
	stm.AtomicVoid(th, func(tx stm.Tx) {
		a = tx.ReadField(h, 0)
		b = tx.ReadField(h, 1)
	})
	if a != 10 || b != 20 {
		t.Fatalf("aborted write leaked: got (%d,%d), want (10,20)", a, b)
	}
	if tries != 2 {
		t.Fatalf("restart count = %d, want 2", tries)
	}
}

func TestObjectTableGrowth(t *testing.T) {
	e := New(Config{})
	th := e.NewThread(0)
	// Allocate across multiple chunks.
	n := chunkSize + 100
	hs := make([]stm.Handle, 0, n)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := 0; i < n; i++ {
			hs = append(hs, tx.NewObject(1))
		}
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.WriteField(hs[0], 0, 1)
		tx.WriteField(hs[n-1], 0, 2)
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if tx.ReadField(hs[0], 0) != 1 || tx.ReadField(hs[n-1], 0) != 2 {
			t.Error("cross-chunk object state lost")
		}
	})
}
