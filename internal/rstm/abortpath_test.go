package rstm

import (
	"sync"
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

// TestAbortPath runs the two-tier abort-delivery conformance suite
// (DESIGN.md §8) on both acquire modes with invisible reads: commit-time
// epoch-validation failures and lazy acquisition conflicts must return
// through the checked path; conflicts surfacing inside ReadField/
// WriteField and Restart keep unwinding.
func TestAbortPath(t *testing.T) {
	for _, acq := range []AcquireMode{Eager, Lazy} {
		t.Run(acq.String(), func(t *testing.T) {
			mk := func(unwind bool) func() stm.STM {
				return func() stm.STM {
					return New(Config{Acquire: acq, Manager: cm.NewSerializer(), BackoffUnit: 1, UnwindAborts: unwind})
				}
			}
			stmtest.AbortPathSuite(t, mk(false), mk(true), stmtest.ShapeObjectValidation)
		})
	}
}

// TestLazyAcquireAbortReturns pins the checked path for the conflict
// class ShapeObjectValidation cannot reach deterministically: a lazy
// writer whose buffered clone goes stale before commit. The victim
// buffers a write (no acquisition), a full conflicting writer commits a
// newer version mid-body, and the victim's commit-time acquisition must
// fail with LockAcquireFail — delivered as a checked return, never
// across a recover.
func TestLazyAcquireAbortReturns(t *testing.T) {
	e := New(Config{Acquire: Lazy, Manager: cm.NewSerializer(), BackoffUnit: 1})
	thA := e.NewThread(1)
	thB := e.NewThread(2)
	var h stm.Handle
	stm.AtomicVoid(thA, func(tx stm.Tx) { h = tx.NewObject(1) })
	const forced = 50
	for i := 0; i < forced; i++ {
		attempt := 0
		stm.AtomicVoid(thA, func(tx stm.Tx) {
			attempt++
			if attempt > 1 {
				return
			}
			tx.WriteField(h, 0, stm.Word(i)) // buffered lazily, not acquired
			stm.AtomicVoid(thB, func(txb stm.Tx) { txb.WriteField(h, 0, stm.Word(i)+100) })
		})
	}
	s := thA.Stats()
	if s.LockAcquireFail < forced {
		t.Fatalf("LockAcquireFail = %d, want ≥ %d (stale lazy clone must fail commit-time acquisition)",
			s.LockAcquireFail, forced)
	}
	if s.AbortsUnwound != 0 || s.AbortsReturned != s.Aborts {
		t.Errorf("lazy acquisition aborts: unwound %d returned %d of %d, want all returned",
			s.AbortsUnwound, s.AbortsReturned, s.Aborts)
	}
}

// TestReaderBitmapLifecycle checks the visible-reader bitmap directly:
// a visible read sets exactly the reader's thread bit, the bit survives
// for the duration of the transaction, and commit/abort clears it.
func TestReaderBitmapLifecycle(t *testing.T) {
	e := New(Config{Reads: Visible, Manager: cm.NewSerializer()})
	th := e.NewThread(5)
	var h stm.Handle
	stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
	o := e.object(h)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		_ = tx.ReadField(h, 0)
		if got := o.readers.Load(); got != 1<<5 {
			t.Errorf("mid-transaction bitmap = %#x, want bit 5 only", got)
		}
		_ = tx.ReadField(h, 0) // re-read: registration must be idempotent
		if got := o.readers.Load(); got != 1<<5 {
			t.Errorf("after re-read bitmap = %#x, want bit 5 only", got)
		}
	})
	if got := o.readers.Load(); got != 0 {
		t.Errorf("post-commit bitmap = %#x, want 0", got)
	}
}

// TestWriterKillsVisibleReader: an acquiring writer must observe the
// reader's bit, resolve it through the engine's visible table and abort
// the reader — the eager read/write detection visible mode exists for.
// The reader's next access unwinds (mid-body kill), it retries, and its
// bit is gone afterwards.
func TestWriterKillsVisibleReader(t *testing.T) {
	e := New(Config{Reads: Visible, Manager: cm.NewGreedy(), BackoffUnit: 1})
	thR := e.NewThread(1)
	thW := e.NewThread(2)
	var h stm.Handle
	stm.AtomicVoid(thR, func(tx stm.Tx) { h = tx.NewObject(1) })
	attempts := 0
	var got stm.Word
	stm.AtomicVoid(thR, func(tx stm.Tx) {
		attempts++
		_ = tx.ReadField(h, 0)
		if attempts == 1 {
			// A full writer transaction lands while we hold a visible
			// read; its afterAcquire must kill us via the bitmap.
			stm.AtomicVoid(thW, func(txw stm.Tx) { txw.WriteField(h, 0, 42) })
		}
		got = tx.ReadField(h, 0)
	})
	if attempts < 2 {
		t.Fatalf("reader ran %d attempts, want ≥ 2 (writer must have killed attempt 1)", attempts)
	}
	if got != 42 {
		t.Fatalf("reader finally saw %d, want the writer's 42", got)
	}
	s := thR.Stats()
	if s.AbortsKilled == 0 {
		t.Errorf("reader stats record no CM kill: %+v", s)
	}
	if bm := e.object(h).readers.Load(); bm != 0 {
		t.Errorf("bitmap after both transactions = %#x, want 0", bm)
	}
}

// TestVisibleReadersAllThreads registers visible readers from many
// threads at once — well past the 16 slots of the per-object table the
// bitmap replaced — and checks nobody is spuriously rejected and the
// bitmap drains to zero.
func TestVisibleReadersAllThreads(t *testing.T) {
	e := New(Config{Reads: Visible, Manager: cm.NewSerializer()})
	th0 := e.NewThread(0)
	var h stm.Handle
	stm.AtomicVoid(th0, func(tx stm.Tx) { h = tx.NewObject(1) })
	const readers = 32 // > the old visSlots=16 hard cap
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for n := 0; n < 200; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) { _ = tx.ReadField(h, 0) })
			}
		}(i)
	}
	wg.Wait()
	if bm := e.object(h).readers.Load(); bm != 0 {
		t.Errorf("bitmap after all readers finished = %#x, want 0", bm)
	}
}
