package rstm

import (
	"testing"

	"swisstm/internal/obs"
	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyStateObs pins the instrumented hot path: with
// per-transaction telemetry armed, warm read-only commits must still
// allocate nothing (updates are exempt, as in the uninstrumented
// gate: per-object cloning is RSTM's defining cost).
func TestZeroAllocSteadyStateObs(t *testing.T) {
	o := obs.NewTxnObs()
	e := New(Config{Obs: o})
	stmtest.ZeroAllocSteadyStateObs(t, e, o, false, false)
}

// TestAbortCausePartition asserts sum(causes) == Aborts plus the
// validation and delivery splits under a contended multi-thread mix,
// on both acquisition modes (their abort flavors differ: eager W/W
// arbitration vs commit-time stale-clone detection).
func TestAbortCausePartition(t *testing.T) {
	for _, acq := range []AcquireMode{Eager, Lazy} {
		e := New(Config{Acquire: acq, BackoffUnit: 1})
		stmtest.AbortCausePartition(t, e)
	}
}
