package rstm

import (
	"fmt"
	"sync"
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/stm"
)

// TestLinkedStructureStress hammers a shared sorted linked list (insert/
// delete/scan) — pointer-chasing like the red-black tree but simple
// enough that any lost update or torn snapshot is immediately fatal. It
// runs on every acquire/read mode combination.
func TestLinkedStructureStress(t *testing.T) {
	for _, acq := range []AcquireMode{Eager, Lazy} {
		for _, rd := range []ReadMode{Invisible, Visible} {
			name := fmt.Sprintf("%s-%s", acq, rd)
			t.Run(name, func(t *testing.T) {
				e := New(Config{Acquire: acq, Reads: rd, Manager: cm.NewPolka()})
				setup := e.NewThread(0)
				// head object: field 0 = first node handle.
				// node: field 0 = key, field 1 = next.
				var head stm.Handle
				stm.AtomicVoid(setup, func(tx stm.Tx) { head = tx.NewObject(1) })
				const keyRange = 64
				var wg sync.WaitGroup
				stop := false
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						th := e.NewThread(id + 1)
						seed := uint64(id)*0x9e3779b9 + 1
						for n := 0; n < 3000 && !stop; n++ {
							seed = seed*6364136223846793005 + 1
							key := stm.Word(seed>>33)%keyRange + 1
							switch (seed >> 20) % 3 {
							case 0: // insert sorted (no duplicates)
								stm.AtomicVoid(th, func(tx stm.Tx) {
									prev := head
									prevField := uint32(0)
									cur := stm.Handle(tx.ReadField(head, 0))
									for cur != 0 {
										k := tx.ReadField(cur, 0)
										if k == key {
											return
										}
										if k > key {
											break
										}
										prev, prevField = cur, 1
										cur = stm.Handle(tx.ReadField(cur, 1))
									}
									n := tx.NewObject(2)
									tx.WriteField(n, 0, key)
									tx.WriteField(n, 1, stm.Word(cur))
									tx.WriteField(prev, prevField, stm.Word(n))
								})
							case 1: // delete
								stm.AtomicVoid(th, func(tx stm.Tx) {
									prev := head
									prevField := uint32(0)
									cur := stm.Handle(tx.ReadField(head, 0))
									for cur != 0 {
										k := tx.ReadField(cur, 0)
										if k == key {
											tx.WriteField(prev, prevField, tx.ReadField(cur, 1))
											return
										}
										if k > key {
											return
										}
										prev, prevField = cur, 1
										cur = stm.Handle(tx.ReadField(cur, 1))
									}
								})
							case 2: // scan: keys must be strictly ascending
								stm.AtomicVoid(th, func(tx stm.Tx) {
									last := stm.Word(0)
									cur := stm.Handle(tx.ReadField(head, 0))
									hops := 0
									for cur != 0 {
										k := tx.ReadField(cur, 0)
										if k <= last {
											panic(fmt.Sprintf("list order violated: %d after %d", k, last))
										}
										last = k
										cur = stm.Handle(tx.ReadField(cur, 1))
										hops++
										if hops > keyRange+8 {
											panic("list has a cycle")
										}
									}
								})
							}
						}
					}(w)
				}
				wg.Wait()
				stop = true
				// Final scan must be sorted and acyclic.
				stm.AtomicVoid(setup, func(tx stm.Tx) {
					last := stm.Word(0)
					cur := stm.Handle(tx.ReadField(head, 0))
					for cur != 0 {
						k := tx.ReadField(cur, 0)
						if k <= last {
							t.Fatalf("final list unsorted: %d after %d", k, last)
						}
						last = k
						cur = stm.Handle(tx.ReadField(cur, 1))
					}
				})
			})
		}
	}
}
