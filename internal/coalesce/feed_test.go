package coalesce_test

import (
	"strings"
	"testing"
	"time"

	"swisstm/internal/coalesce"
)

// collect drains whatever is ready right now starting at cursor.
func collect(t *testing.T, f *coalesce.Feed, cursor uint64) ([]coalesce.Event, uint64) {
	t.Helper()
	var all []coalesce.Event
	for {
		batch, next, _, _, err := f.Next(cursor, nil, 16)
		if err != nil {
			t.Fatalf("Next(%d): %v", cursor, err)
		}
		if len(batch) == 0 {
			return all, cursor
		}
		all = append(all, batch...)
		cursor = next
	}
}

// TestFeedTicketOrder pins the ticket discipline: a publish ahead of
// its predecessor parks, and sequences come out in ticket order, not
// publish order.
func TestFeedTicketOrder(t *testing.T) {
	f := coalesce.NewFeed(16, nil)
	t1, t2, t3 := f.Reserve(), f.Reserve(), f.Reserve()

	f.Publish(t3, []coalesce.Event{{Key: 30}})
	f.Publish(t2, []coalesce.Event{{Key: 20}, {Key: 21}})
	if got, _ := collect(t, f, 1); len(got) != 0 {
		t.Fatalf("events visible before ticket 1 landed: %v", got)
	}
	f.Publish(t1, []coalesce.Event{{Key: 10}})

	got, _ := collect(t, f, 1)
	wantKeys := []uint64{10, 20, 21, 30}
	if len(got) != len(wantKeys) {
		t.Fatalf("got %d events, want %d", len(got), len(wantKeys))
	}
	for i, e := range got {
		if e.Key != wantKeys[i] || e.Seq != uint64(i)+1 {
			t.Fatalf("event %d: %+v, want key %d seq %d", i, e, wantKeys[i], i+1)
		}
	}
}

// TestFeedAbandonReleasesTicket pins abort handling: an abandoned
// ticket unblocks its successors without leaving a gap in sequences.
func TestFeedAbandonReleasesTicket(t *testing.T) {
	f := coalesce.NewFeed(16, nil)
	t1, t2 := f.Reserve(), f.Reserve()
	f.Publish(t2, []coalesce.Event{{Key: 2}})
	f.Abandon(t1)
	got, _ := collect(t, f, 1)
	if len(got) != 1 || got[0].Key != 2 || got[0].Seq != 1 {
		t.Fatalf("after abandon: %v, want key 2 at seq 1", got)
	}
	// Abandon parked ahead of admit, then land the blocker.
	t3, t4 := f.Reserve(), f.Reserve()
	f.Abandon(t4)
	f.Publish(t3, []coalesce.Event{{Key: 3}})
	got, _ = collect(t, f, 2)
	if len(got) != 1 || got[0].Key != 3 || got[0].Seq != 2 {
		t.Fatalf("after parked abandon: %v, want key 3 at seq 2", got)
	}
}

// TestFeedLaggedSubscriber pins the overflow contract: a cursor behind
// the retained window errors instead of silently skipping events.
func TestFeedLaggedSubscriber(t *testing.T) {
	f := coalesce.NewFeed(4, nil)
	for i := 0; i < 7; i++ {
		f.Publish(f.Reserve(), []coalesce.Event{{Key: uint64(i)}})
	}
	// Seqs 1..7 published, capacity 4 → oldest retained is 4.
	_, _, _, _, err := f.Next(1, nil, 16)
	if err == nil || !strings.Contains(err.Error(), "feed lagged") {
		t.Fatalf("stale cursor: err=%v, want lag error", err)
	}
	got, _ := collect(t, f, 4)
	if len(got) != 4 || got[0].Seq != 4 || got[3].Seq != 7 {
		t.Fatalf("oldest retained window: %v, want seqs 4..7", got)
	}
}

// TestFeedCursorZeroSkipsHistory pins "from now": cursor 0 resolves to
// the next unassigned sequence, delivering only future events.
func TestFeedCursorZeroSkipsHistory(t *testing.T) {
	f := coalesce.NewFeed(16, nil)
	f.Publish(f.Reserve(), []coalesce.Event{{Key: 1}, {Key: 2}})
	batch, next, wait, done, err := f.Next(0, nil, 16)
	if err != nil || done || len(batch) != 0 || wait == nil {
		t.Fatalf("Next(0) over history: batch=%v done=%v err=%v", batch, done, err)
	}
	f.Publish(f.Reserve(), []coalesce.Event{{Key: 3}})
	select {
	case <-wait:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not wake the waiting subscriber")
	}
	got, _ := collect(t, f, next)
	if len(got) != 1 || got[0].Key != 3 {
		t.Fatalf("from-now subscriber saw %v, want only key 3", got)
	}
}

// TestFeedCloseDrainsThenDone pins shutdown: Close wakes waiters,
// remaining events stay readable, and only then does Next report done.
func TestFeedCloseDrainsThenDone(t *testing.T) {
	f := coalesce.NewFeed(16, nil)
	f.Publish(f.Reserve(), []coalesce.Event{{Key: 9}})
	_, _, wait, _, _ := f.Next(2, nil, 16)
	go f.Close()
	select {
	case <-wait:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the waiting subscriber")
	}
	batch, next, _, done, err := f.Next(1, nil, 16)
	if err != nil || done || len(batch) != 1 || batch[0].Key != 9 {
		t.Fatalf("drain after close: batch=%v done=%v err=%v", batch, done, err)
	}
	if _, _, _, done, _ := f.Next(next, nil, 16); !done {
		t.Fatal("fully drained closed feed must report done")
	}
}
