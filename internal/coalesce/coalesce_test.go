package coalesce_test

import (
	"sync"
	"testing"
	"time"

	"swisstm/internal/coalesce"
	"swisstm/internal/harness"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
)

// testRig is one engine + store + coalescer with a private metrics set.
type testRig struct {
	store *txkv.Store
	th    stm.Thread // spare thread for direct store access
	co    *coalesce.Coalescer
	m     *coalesce.Metrics
	feeds []*coalesce.Feed
}

// newRig builds a coalescer over a fresh store with one dedicated
// engine thread per shard. withFeeds attaches a per-shard change feed.
func newRig(t *testing.T, kind string, cfg coalesce.Config, withFeeds bool) *testRig {
	t.Helper()
	e := harness.EngineSpec{Kind: kind, Manager: "polka"}.New()
	th := e.NewThread(0)
	store := txkv.New(th, txkv.ConfigForKeys(256))
	threads := make([]stm.Thread, store.Shards())
	for i := range threads {
		threads[i] = e.NewThread(i + 1)
	}
	m := coalesce.NewMetrics(obs.NewRegistry())
	cfg.Metrics = m
	var feeds []*coalesce.Feed
	if withFeeds {
		feeds = make([]*coalesce.Feed, store.Shards())
		for i := range feeds {
			feeds[i] = coalesce.NewFeed(0, nil)
		}
	}
	co := coalesce.New(store, threads, nil, feeds, cfg)
	return &testRig{store: store, th: th, co: co, m: m, feeds: feeds}
}

// sameShardKeys returns n distinct keys that hash to one shard.
func (r *testRig) sameShardKeys(n int) []stm.Word {
	want := r.store.ShardOf(1)
	keys := []stm.Word{1}
	for k := stm.Word(2); len(keys) < n; k++ {
		if r.store.ShardOf(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func (r *testRig) get(key stm.Word) (stm.Word, bool) {
	type kv struct {
		v  stm.Word
		ok bool
	}
	got := stm.AtomicRO(r.th, func(tx stm.TxRO) kv {
		v, ok := r.store.Get(tx, key)
		return kv{v, ok}
	})
	return got.v, got.ok
}

func (r *testRig) put(key, val stm.Word) {
	stm.AtomicVoid(r.th, func(tx stm.Tx) { r.store.Put(tx, key, val) })
}

// enqueue accepts the item or fails the test.
func (r *testRig) enqueue(t *testing.T, it *coalesce.Item) {
	t.Helper()
	if code, msg := r.co.Enqueue(it); code != 0 {
		t.Fatalf("enqueue refused: %v %q", code, msg)
	}
}

// await reads the item's result or fails after a generous timeout.
func await(t *testing.T, it *coalesce.Item) coalesce.Result {
	t.Helper()
	select {
	case res := <-it.Done():
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("item result never delivered")
		panic("unreachable")
	}
}

// TestBatchSizeTrigger pins the size trigger: with MaxWait effectively
// infinite, a batch flushes exactly when BatchSize items are pending.
func TestBatchSizeTrigger(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 4, MaxWait: time.Hour}, false)
	defer r.co.Close()
	keys := r.sameShardKeys(4)
	items := make([]*coalesce.Item, len(keys))
	for i, k := range keys {
		items[i] = coalesce.NewItem(coalesce.OpPut, k, stm.Word(100+i), 0, time.Time{})
		r.enqueue(t, items[i])
	}
	for i, it := range items {
		if res := await(t, it); res.Err != "" || !res.OK {
			t.Fatalf("item %d: %+v", i, res)
		}
	}
	if got := r.m.Batches.Load(); got != 1 {
		t.Fatalf("flushed %d batches, want 1 (size-triggered)", got)
	}
	if got := r.m.Items.Load(); got != 4 {
		t.Fatalf("executed %d items, want 4", got)
	}
	if h := r.m.BatchSize.Snapshot(); h.Count != 1 || h.Sum != 4 {
		t.Fatalf("batch-size histogram count=%d sum=%d, want 1 batch of 4", h.Count, h.Sum)
	}
}

// TestMaxWaitTrigger pins the time trigger: a lone item flushes once
// MaxWait elapses, well before BatchSize could fill.
func TestMaxWaitTrigger(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 1000, MaxWait: 10 * time.Millisecond}, false)
	defer r.co.Close()
	it := coalesce.NewItem(coalesce.OpPut, 7, 42, 0, time.Time{})
	start := time.Now()
	r.enqueue(t, it)
	if res := await(t, it); res.Err != "" || !res.OK {
		t.Fatalf("lone item: %+v", res)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("flushed after %v, before MaxWait elapsed", waited)
	}
	if got, ok := r.get(7); !ok || got != 42 {
		t.Fatalf("store after flush: %d, %v", got, ok)
	}
}

// TestDrainRefusesPending pins the drain contract (DESIGN.md §14.3):
// items still queued when Close begins complete with Draining, and a
// later Enqueue is refused outright.
func TestDrainRefusesPending(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 1000, MaxWait: time.Hour}, false)
	keys := r.sameShardKeys(2)
	a := coalesce.NewItem(coalesce.OpPut, keys[0], 1, 0, time.Time{})
	b := coalesce.NewItem(coalesce.OpGet, keys[1], 0, 0, time.Time{})
	r.enqueue(t, a)
	r.enqueue(t, b)
	r.co.Close()
	for _, it := range []*coalesce.Item{a, b} {
		res := await(t, it)
		if res.Code != txkvwire.CodeDraining || !res.Shed {
			t.Fatalf("pending item at shutdown: %+v, want shed Draining", res)
		}
	}
	if r.m.Drained.Load() != 2 {
		t.Fatalf("drained counter %d, want 2", r.m.Drained.Load())
	}
	if code, _ := r.co.Enqueue(coalesce.NewItem(coalesce.OpGet, 1, 0, 0, time.Time{})); code != txkvwire.CodeDraining {
		t.Fatalf("enqueue after Close: code %v, want Draining", code)
	}
	if _, ok := r.get(keys[0]); ok {
		t.Fatal("drained put reached the store")
	}
}

// TestPerItemIsolation pins per-item error isolation inside one batch:
// a CAS that misses fails that item only, its neighbours commit.
func TestPerItemIsolation(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 3, MaxWait: time.Hour}, false)
	defer r.co.Close()
	keys := r.sameShardKeys(2)
	r.put(keys[1], 5)

	miss := coalesce.NewItem(coalesce.OpCAS, keys[1], 7, 999, time.Time{}) // expects 999, finds 5
	put := coalesce.NewItem(coalesce.OpPut, keys[0], 42, 0, time.Time{})
	hit := coalesce.NewItem(coalesce.OpCAS, keys[1], 9, 5, time.Time{}) // expects 5: swaps
	for _, it := range []*coalesce.Item{miss, put, hit} {
		r.enqueue(t, it)
	}
	if res := await(t, miss); res.Err != "" || res.OK {
		t.Fatalf("missing CAS: %+v, want OK=false without error", res)
	}
	if res := await(t, put); res.Err != "" || !res.OK {
		t.Fatalf("put next to missing CAS: %+v", res)
	}
	if res := await(t, hit); res.Err != "" || !res.OK {
		t.Fatalf("hitting CAS: %+v", res)
	}
	if r.m.Batches.Load() != 1 {
		t.Fatalf("ran %d batches, want the whole trio in 1", r.m.Batches.Load())
	}
	if v, _ := r.get(keys[0]); v != 42 {
		t.Fatalf("put lost: key %d = %d", keys[0], v)
	}
	if v, _ := r.get(keys[1]); v != 9 {
		t.Fatalf("CAS result: key %d = %d, want 9", keys[1], v)
	}
}

// TestTTLExpiryShedsOnlyExpiredItem is the PR 9 shed-accounting
// regression under coalescing: an item whose deadline passed while
// queued is shed alone with DeadlineExceeded and an exact queue-phase
// time; the rest of its batch executes and commits.
func TestTTLExpiryShedsOnlyExpiredItem(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 1000, MaxWait: 20 * time.Millisecond}, false)
	defer r.co.Close()
	keys := r.sameShardKeys(2)
	expired := coalesce.NewItem(coalesce.OpPut, keys[0], 1, 0, time.Now().Add(time.Millisecond))
	fresh := coalesce.NewItem(coalesce.OpPut, keys[1], 2, 0, time.Now().Add(time.Hour))
	r.enqueue(t, expired)
	r.enqueue(t, fresh)

	res := await(t, expired)
	if res.Code != txkvwire.CodeDeadlineExceeded || !res.Shed {
		t.Fatalf("expired item: %+v, want shed DeadlineExceeded", res)
	}
	if res.QueueNs == 0 {
		t.Fatal("expired item reported no queue time; the queue phase is its time-to-flush")
	}
	if res := await(t, fresh); res.Err != "" || !res.OK {
		t.Fatalf("fresh batch-mate: %+v", res)
	}
	if _, ok := r.get(keys[0]); ok {
		t.Fatal("expired put reached the store")
	}
	if v, _ := r.get(keys[1]); v != 2 {
		t.Fatalf("fresh put lost: %d", v)
	}
	if r.m.Expired.Load() != 1 {
		t.Fatalf("expired counter %d, want 1", r.m.Expired.Load())
	}
	if r.m.Items.Load() != 1 {
		t.Fatalf("items counter %d, want only the fresh item", r.m.Items.Load())
	}
}

// TestQueueFullShedsOverloaded pins the admission bound: the shard
// queue refuses beyond QueueCap with Overloaded while a flush is not
// draining it.
func TestQueueFullShedsOverloaded(t *testing.T) {
	r := newRig(t, "swisstm", coalesce.Config{BatchSize: 1000, MaxWait: time.Hour, QueueCap: 4}, false)
	keys := r.sameShardKeys(6)
	accepted := 0
	sawOverload := false
	for _, k := range keys {
		code, _ := r.co.Enqueue(coalesce.NewItem(coalesce.OpGet, k, 0, 0, time.Time{}))
		switch code {
		case 0:
			accepted++
		case txkvwire.CodeOverloaded:
			sawOverload = true
		default:
			t.Fatalf("unexpected refusal code %v", code)
		}
	}
	// The worker may have pulled up to one item out of the channel, so
	// 4 (cap) or 5 accepts are both legal; 6 never is.
	if !sawOverload || accepted > 5 {
		t.Fatalf("accepted %d of 6 with QueueCap 4 (overload seen: %v)", accepted, sawOverload)
	}
	r.co.Close()
}

// TestCrossEngineFeedReplayMatchesStore drives a mixed concurrent load
// through the coalescer on every engine and checks the headline
// properties end to end: per-shard feeds replay to exactly the store's
// final state with contiguous sequences, and the engine burned far
// fewer commits than items (the whole point of coalescing).
func TestCrossEngineFeedReplayMatchesStore(t *testing.T) {
	for _, kind := range []string{"swisstm", "tl2", "tinystm", "rstm"} {
		t.Run(kind, func(t *testing.T) {
			r := newRig(t, kind, coalesce.Config{BatchSize: 64, MaxWait: 5 * time.Millisecond}, true)
			const (
				producers = 4
				perProd   = 200
				keySpace  = 64
			)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					// Enqueue the whole stream before collecting results so
					// batches actually fill; awaiting each item inline would
					// serialize the shard back to one-item batches.
					items := make([]*coalesce.Item, 0, perProd)
					for i := 0; i < perProd; i++ {
						k := stm.Word(1 + (p*31+i*7)%keySpace)
						var it *coalesce.Item
						switch i % 4 {
						case 0:
							it = coalesce.NewItem(coalesce.OpPut, k, stm.Word(p<<16|i), 0, time.Time{})
						case 1:
							it = coalesce.NewItem(coalesce.OpGet, k, 0, 0, time.Time{})
						case 2:
							it = coalesce.NewItem(coalesce.OpDelete, k, 0, 0, time.Time{})
						default:
							it = coalesce.NewItem(coalesce.OpCAS, k, stm.Word(p<<20|i), stm.Word(i), time.Time{})
						}
						if code, msg := r.co.Enqueue(it); code != 0 {
							t.Errorf("enqueue: %v %q", code, msg)
							return
						}
						items = append(items, it)
					}
					for _, it := range items {
						if res := <-it.Done(); res.Err != "" {
							t.Errorf("item error: %+v", res)
							return
						}
					}
				}(p)
			}
			wg.Wait()
			r.co.Close()
			for _, f := range r.feeds {
				f.Close() // no more flushes: let replay observe "done"
			}
			if t.Failed() {
				return
			}

			items := r.m.Items.Load()
			commits := r.co.Stats().Commits + r.co.Stats().ROCommits
			if items != producers*perProd {
				t.Fatalf("executed %d items, want %d", items, producers*perProd)
			}
			if commits*2 > items {
				t.Fatalf("coalescing never amortized: %d commits for %d items", commits, items)
			}

			// Replay every shard's feed over an empty store image.
			state := make(map[uint64]uint64)
			for sh, f := range r.feeds {
				var cursor uint64 = 1
				dst := make([]coalesce.Event, 0, 128)
				for {
					batch, next, _, done, err := f.Next(cursor, dst, 128)
					if err != nil {
						t.Fatalf("shard %d: %v", sh, err)
					}
					if done {
						break
					}
					if len(batch) == 0 {
						t.Fatalf("shard %d: feed neither ready nor done after close", sh)
					}
					for _, e := range batch {
						if e.Seq != cursor {
							t.Fatalf("shard %d: seq %d at cursor %d", sh, e.Seq, cursor)
						}
						cursor++
						if e.Del {
							delete(state, e.Key)
						} else {
							state[e.Key] = e.Val
						}
					}
					cursor = next
				}
			}
			final := make(map[uint64]uint64)
			for k := stm.Word(1); k <= keySpace; k++ {
				if v, ok := r.get(k); ok {
					final[uint64(k)] = uint64(v)
				}
			}
			if len(state) != len(final) {
				t.Fatalf("replay has %d keys, store has %d", len(state), len(final))
			}
			for k, v := range final {
				if rv, ok := state[k]; !ok || rv != v {
					t.Fatalf("replay diverges at key %d: replay=(%d,%v) store=%d", k, rv, ok, v)
				}
			}
		})
	}
}
