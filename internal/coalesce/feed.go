// Per-shard change feed: an append-only sequence of committed
// mutations, tailable by subscribers (DESIGN.md §14.4).
//
// Ordering uses the same ticket discipline as the commit log
// (DESIGN.md §12): a publisher reserves a ticket inside its
// transaction body — after every read that decides the outcome, so
// ticket order agrees with the engines' commit order for conflicting
// transactions — and publishes its events after the commit. Publishes
// arriving out of ticket order park until their predecessors land, so
// event sequence numbers are assigned in commit order and are
// contiguous per shard.
package coalesce

import (
	"fmt"
	"sync"
	"sync/atomic"

	"swisstm/internal/obs"
)

// Event is one committed mutation in a shard's change feed: a write
// (post-image value) or a delete. Seq is the shard-local commit
// sequence number, contiguous from 1.
type Event struct {
	Seq uint64
	Del bool
	Key uint64
	Val uint64
}

// Feed is one shard's change feed: a bounded ring of recent events
// plus a ticket sequencer admitting publishers in commit order.
// Subscribers that fall more than the ring capacity behind are lagged
// out with an error rather than stalling publishers.
type Feed struct {
	capacity int
	events   *obs.Counter // optional: events published

	last atomic.Uint64 // last ticket handed out

	mu     sync.Mutex
	admit  uint64             // next ticket allowed to append
	parked map[uint64][]Event // out-of-order publishes; nil = abandoned
	next   uint64             // next seq to assign (1-based)
	start  uint64             // oldest seq still retained
	buf    []Event            // ring storage, len == capacity
	wake   chan struct{}      // closed and replaced on every append
	closed bool
}

// DefaultFeedCap bounds each shard's retained event window. At ~32
// bytes per event this is ~128 KiB per shard.
const DefaultFeedCap = 1 << 12

// NewFeed returns an empty feed retaining up to capacity events
// (DefaultFeedCap when capacity <= 0). events, when non-nil, counts
// every published event.
func NewFeed(capacity int, events *obs.Counter) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCap
	}
	return &Feed{
		capacity: capacity,
		events:   events,
		admit:    1,
		parked:   make(map[uint64][]Event),
		next:     1,
		start:    1,
		buf:      make([]Event, capacity),
		wake:     make(chan struct{}),
	}
}

// Reserve draws the next ticket. Call inside the transaction body as
// one of its last steps (after every read that decides the outcome);
// publish or abandon the ticket exactly once after the body returns.
func (f *Feed) Reserve() uint64 { return f.last.Add(1) }

// Publish appends events under tk's position in the commit order,
// assigning contiguous sequence numbers. A publish ahead of its
// predecessors parks (copying events) until they land.
func (f *Feed) Publish(tk uint64, events []Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tk != f.admit {
		cp := make([]Event, len(events))
		copy(cp, events)
		f.parked[tk] = cp
		return
	}
	n := f.appendLocked(events)
	f.admit++
	n += f.drainParkedLocked()
	if n > 0 {
		f.wakeLocked()
	}
}

// Abandon releases tk without events — a retried transaction attempt
// dropping the ticket of the attempt that did not commit.
func (f *Feed) Abandon(tk uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tk != f.admit {
		f.parked[tk] = nil
		return
	}
	f.admit++
	if f.drainParkedLocked() > 0 {
		f.wakeLocked()
	}
}

func (f *Feed) drainParkedLocked() int {
	n := 0
	for {
		ev, ok := f.parked[f.admit]
		if !ok {
			return n
		}
		delete(f.parked, f.admit)
		n += f.appendLocked(ev)
		f.admit++
	}
}

func (f *Feed) appendLocked(events []Event) int {
	for i := range events {
		e := events[i]
		e.Seq = f.next
		f.buf[(f.next-1)%uint64(f.capacity)] = e
		f.next++
	}
	if f.next-f.start > uint64(f.capacity) {
		f.start = f.next - uint64(f.capacity)
	}
	if f.events != nil && len(events) > 0 {
		f.events.Add(uint64(len(events)))
	}
	return len(events)
}

// Next copies up to max ready events with seq >= cursor into dst[:0].
// cursor 0 means "from now" (skip history). The returned next value is
// the cursor for the following call. When no events are ready, batch
// is empty and wait is a channel closed on the next append; done
// additionally reports that the feed is closed and fully delivered. A
// non-nil err means the subscriber lagged: events at cursor were
// already evicted from the ring.
func (f *Feed) Next(cursor uint64, dst []Event, max int) (batch []Event, next uint64, wait <-chan struct{}, done bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cursor == 0 {
		cursor = f.next
	}
	if cursor < f.start {
		return nil, cursor, nil, false,
			fmt.Errorf("feed lagged: cursor %d evicted (oldest retained seq %d)", cursor, f.start)
	}
	batch = dst[:0]
	for cursor < f.next && len(batch) < max {
		batch = append(batch, f.buf[(cursor-1)%uint64(f.capacity)])
		cursor++
	}
	if len(batch) > 0 {
		return batch, cursor, nil, false, nil
	}
	if f.closed {
		return nil, cursor, nil, true, nil
	}
	return nil, cursor, f.wake, false, nil
}

// End returns the next sequence number to be assigned: the feed holds
// exactly the events with seq in [1, End()).
func (f *Feed) End() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Close marks the feed finished and wakes every waiting subscriber;
// Next drains remaining events, then reports done.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.wakeLocked()
}

func (f *Feed) wakeLocked() {
	close(f.wake)
	f.wake = make(chan struct{})
}
