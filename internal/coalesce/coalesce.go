// Package coalesce batches single-key txkv operations into per-shard
// group commits (DESIGN.md §14).
//
// Each shard owns a channel batcher and a dedicated engine thread: the
// batcher absorbs items routed by shard affinity and flushes when
// either batchSize items are pending or maxWait has elapsed since the
// first item of the batch. A flush executes every item of the batch
// inside ONE v2 engine transaction on the shard's worker thread and —
// when anything mutated — publishes ONE commit-log frame and ONE
// change-feed publish for the whole batch, amortizing the engine
// commit, the WAL ticket/fsync path, and the feed sequencing across
// the batch.
//
// Per-item semantics: every item completes its own response channel
// with its individual result. A CAS that misses or a delete of an
// absent key fails that item only — the store's single-key operations
// are total (they report their outcome instead of aborting), so the
// batch transaction always commits and items never observe each
// other's failures. An item whose TTL expires while queued is shed
// alone with DeadlineExceeded; the rest of its batch executes. Items
// pending when the coalescer shuts down complete with Draining.
package coalesce

import (
	"sync"
	"time"

	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
	"swisstm/internal/wal"
)

// Op is the single-key operation class a batcher accepts.
type Op uint8

const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpCAS
)

// Result is one item's individual outcome. Err, when non-empty, is a
// typed failure (Code classifies it); Shed additionally marks items
// refused without executing (TTL expiry, drain). The phase fields
// carry the item's share of its batch: QueueNs is the exact
// enqueue→flush wait, the rest divide the batch's transaction, commit
// and log-publish time by the number of items executed.
type Result struct {
	Val   stm.Word
	Found bool // Get: key present
	OK    bool // Put: inserted; Delete: existed; CAS: swapped
	Err   string
	Code  txkvwire.Code
	Shed  bool

	QueueNs  uint64
	TxnNs    uint64
	CommitNs uint64
	WalNs    uint64
}

// Item is one queued operation. Build with NewItem; read the outcome
// from Done, which delivers exactly one Result per accepted item.
type Item struct {
	Op       Op
	Key      stm.Word
	Val      stm.Word // Put value; CAS new value
	Old      stm.Word // CAS expected value
	Deadline time.Time

	enq  time.Time
	done chan Result
}

// NewItem builds an item. A zero deadline means no TTL.
func NewItem(op Op, key, val, old stm.Word, deadline time.Time) *Item {
	return &Item{Op: op, Key: key, Val: val, Old: old, Deadline: deadline,
		done: make(chan Result, 1)}
}

// Done delivers the item's result once Enqueue accepted it.
func (it *Item) Done() <-chan Result { return it.done }

// Metrics is the coalescer's observability surface; NewMetrics wires
// it into a Registry under the txkv_coalesce_* names.
type Metrics struct {
	Batches   *obs.Counter    // flushes executed
	Items     *obs.Counter    // items executed (excludes shed)
	Expired   *obs.Counter    // items shed by TTL expiry inside a batch
	Drained   *obs.Counter    // items completed with Draining at shutdown
	BatchSize *obs.AtomicHist // items per executed flush
	FlushNs   *obs.AtomicHist // flush duration (txn + commit + log publish)
}

// NewMetrics registers the coalescer metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Batches:   reg.Counter("txkv_coalesce_batches_total"),
		Items:     reg.Counter("txkv_coalesce_items_total"),
		Expired:   reg.Counter("txkv_coalesce_expired_total"),
		Drained:   reg.Counter("txkv_coalesce_drained_total"),
		BatchSize: reg.Histogram("txkv_coalesce_batch_size"),
		FlushNs:   reg.Histogram("txkv_coalesce_flush_ns"),
	}
}

// Config tunes the batchers.
type Config struct {
	// BatchSize flushes a batch once this many items are pending
	// (default 32).
	BatchSize int
	// MaxWait flushes an incomplete batch this long after its first
	// item arrived (default 200µs) — the latency bound a lone item
	// pays for company.
	MaxWait time.Duration
	// QueueCap bounds each shard's pending items; an enqueue beyond
	// it is shed with Overloaded (default max(4×BatchSize, 256)).
	QueueCap int
	// Metrics defaults to a private unregistered set.
	Metrics *Metrics
	// Conflicts, when set, receives the engine aborts each flush
	// burned, attributed to its shard.
	Conflicts func(shard int, aborts uint64)
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Microsecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.BatchSize
		if c.QueueCap < 256 {
			c.QueueCap = 256
		}
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(obs.NewRegistry())
	}
	return c
}

// Coalescer routes single-key items to per-shard batchers. One
// dedicated engine thread and one worker goroutine per shard; items
// for the same shard execute in enqueue order.
type Coalescer struct {
	store *txkv.Store
	log   *wal.Writer // nil = no commit log
	feeds []*Feed     // nil = no change feed; else one per shard
	cfg   Config
	qs    []*shardQ
	wg    sync.WaitGroup
}

type shardQ struct {
	in     chan *Item
	mu     sync.RWMutex
	closed bool

	// statsMu guards a mirror of the worker thread's cumulative engine
	// stats, refreshed after every flush: the thread itself is only
	// safe to read between its transactions, and only its worker may
	// touch it. Stats() lags by at most one in-progress flush.
	statsMu sync.Mutex
	stats   stm.Stats
}

// New starts one batcher per store shard. threads must hold exactly
// store.Shards() engine threads, each used by its shard's worker
// only. log (nil = none) receives one redo frame per mutating flush;
// feeds (nil = none, else one per shard) receive the flush's committed
// mutations.
func New(store *txkv.Store, threads []stm.Thread, log *wal.Writer, feeds []*Feed, cfg Config) *Coalescer {
	if len(threads) != store.Shards() {
		panic("coalesce: need exactly one engine thread per shard")
	}
	if feeds != nil && len(feeds) != store.Shards() {
		panic("coalesce: need exactly one feed per shard")
	}
	c := &Coalescer{store: store, log: log, feeds: feeds, cfg: cfg.withDefaults()}
	c.qs = make([]*shardQ, store.Shards())
	for i := range c.qs {
		c.qs[i] = &shardQ{in: make(chan *Item, c.cfg.QueueCap)}
		c.wg.Add(1)
		go c.worker(i, threads[i])
	}
	return c
}

// Enqueue routes it to its shard's batcher. An empty code means the
// item was accepted and Done will deliver its result; otherwise the
// item was refused immediately (queue full → Overloaded, shutting
// down → Draining) and Done never fires.
func (c *Coalescer) Enqueue(it *Item) (code txkvwire.Code, errMsg string) {
	sh := c.qs[c.store.ShardOf(it.Key)]
	it.enq = time.Now()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.closed {
		return txkvwire.CodeDraining, "server draining"
	}
	select {
	case sh.in <- it:
		return 0, ""
	default:
		return txkvwire.CodeOverloaded, "coalesce queue full"
	}
}

// Stats sums the engine counters of every shard worker's thread (the
// commits/aborts the flush transactions burned). Each worker's mirror
// refreshes after its flushes, so the sum lags by at most the flushes
// in progress; after Close it is exact.
func (c *Coalescer) Stats() stm.Stats {
	var sum stm.Stats
	for _, sh := range c.qs {
		sh.statsMu.Lock()
		sum.Add(sh.stats)
		sh.statsMu.Unlock()
	}
	return sum
}

// Close shuts every batcher down and waits for the workers. Items
// still pending complete with Draining; a flush already in progress
// completes normally.
func (c *Coalescer) Close() {
	for _, sh := range c.qs {
		sh.mu.Lock()
		if !sh.closed {
			sh.closed = true
			close(sh.in)
		}
		sh.mu.Unlock()
	}
	c.wg.Wait()
}

func (sh *shardQ) isClosed() bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.closed
}

// worker owns one shard: gather a batch (first item blocks, then up
// to BatchSize items or MaxWait, whichever first), flush, repeat.
func (c *Coalescer) worker(shard int, th stm.Thread) {
	defer c.wg.Done()
	sh := c.qs[shard]
	fl := &flusher{c: c, shard: shard, th: th}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*Item, 0, c.cfg.BatchSize)
	for {
		it, ok := <-sh.in
		if !ok {
			return
		}
		batch = append(batch[:0], it)
		timer.Reset(c.cfg.MaxWait)
		open, armed := true, true
	gather:
		for open && len(batch) < c.cfg.BatchSize {
			select {
			case it, ok := <-sh.in:
				if !ok {
					break gather
				}
				batch = append(batch, it)
			case <-timer.C:
				open, armed = false, false
			}
		}
		if armed && !timer.Stop() {
			<-timer.C
		}
		// Anything still pending when shutdown began is refused, not
		// executed: the drain contract (DESIGN.md §14.3).
		if sh.isClosed() {
			c.refuse(batch)
			for it := range sh.in {
				c.refuse([]*Item{it})
			}
			return
		}
		fl.flush(batch)
	}
}

func (c *Coalescer) refuse(batch []*Item) {
	for _, it := range batch {
		c.cfg.Metrics.Drained.Inc()
		it.done <- Result{Err: "server draining", Code: txkvwire.CodeDraining, Shed: true,
			QueueNs: uint64(time.Since(it.enq))}
	}
}

// flusher is one worker's reusable flush state.
type flusher struct {
	c     *Coalescer
	shard int
	th    stm.Thread

	live   []*Item
	res    []Result
	redo   []txkv.RedoEntry
	events []Event
	buf    []byte
}

// flush executes one batch as one engine transaction, then publishes
// its redo frame and feed events.
func (fl *flusher) flush(batch []*Item) {
	c, m := fl.c, fl.c.cfg.Metrics
	start := time.Now()

	// TTL expiry inside a batch sheds only the expired item: its
	// deadline passed while it waited for the flush, so its queue
	// phase is exactly the time-to-flush.
	fl.live = fl.live[:0]
	mutating := false
	for _, it := range batch {
		if !it.Deadline.IsZero() && start.After(it.Deadline) {
			m.Expired.Inc()
			it.done <- Result{Err: "deadline exceeded while queued for flush",
				Code: txkvwire.CodeDeadlineExceeded, Shed: true,
				QueueNs: uint64(start.Sub(it.enq))}
			continue
		}
		if it.Op != OpGet {
			mutating = true
		}
		fl.live = append(fl.live, it)
	}
	live := fl.live
	if len(live) == 0 {
		return
	}
	if cap(fl.res) < len(live) {
		fl.res = make([]Result, len(live))
	}
	res := fl.res[:len(live)]
	for i := range res {
		res[i] = Result{}
	}

	var (
		logTk    wal.Ticket
		logLive  bool
		feedTk   uint64
		feedLive bool
		bodyNs   uint64
		feed     *Feed
	)
	if c.feeds != nil {
		feed = c.feeds[fl.shard]
	}
	aborts0 := fl.th.Stats().Aborts
	t0 := time.Now()
	if !mutating {
		stm.AtomicRO(fl.th, func(tx stm.TxRO) int {
			bt := time.Now()
			for i, it := range live {
				res[i].Val, res[i].Found = c.store.Get(tx, it.Key)
			}
			bodyNs = uint64(time.Since(bt))
			return 0
		})
	} else {
		stm.Atomic(fl.th, func(tx stm.Tx) int {
			bt := time.Now()
			// Retried attempt: release the failed attempt's tickets and
			// rebuild its outcome from scratch.
			if logLive {
				c.log.Abandon(logTk)
				logLive = false
			}
			if feedLive {
				feed.Abandon(feedTk)
				feedLive = false
			}
			fl.redo = fl.redo[:0]
			fl.events = fl.events[:0]
			for i, it := range live {
				switch it.Op {
				case OpGet:
					res[i].Val, res[i].Found = c.store.Get(tx, it.Key)
				case OpPut:
					res[i].OK = c.store.Put(tx, it.Key, it.Val)
					fl.redo = append(fl.redo, txkv.RedoEntry{Op: txkv.RedoPut, Key: it.Key, Val: it.Val})
					fl.events = append(fl.events, Event{Key: uint64(it.Key), Val: uint64(it.Val)})
				case OpDelete:
					if res[i].OK = c.store.Delete(tx, it.Key); res[i].OK {
						fl.redo = append(fl.redo, txkv.RedoEntry{Op: txkv.RedoDelete, Key: it.Key})
						fl.events = append(fl.events, Event{Del: true, Key: uint64(it.Key)})
					}
				case OpCAS:
					if res[i].OK = c.store.CAS(tx, it.Key, it.Old, it.Val); res[i].OK {
						fl.redo = append(fl.redo, txkv.RedoEntry{Op: txkv.RedoPut, Key: it.Key, Val: it.Val})
						fl.events = append(fl.events, Event{Key: uint64(it.Key), Val: uint64(it.Val)})
					}
				}
			}
			// Tickets last (DESIGN.md §12): every read deciding the
			// batch's outcome precedes the reservations, so ticket order
			// agrees with commit order.
			if len(fl.redo) > 0 && c.log != nil {
				logTk = c.log.Reserve()
				logLive = true
			}
			if len(fl.events) > 0 && feed != nil {
				feedTk = feed.Reserve()
				feedLive = true
			}
			bodyNs = uint64(time.Since(bt))
			return 0
		})
	}
	txnNs := bodyNs
	commitNs := uint64(time.Since(t0)) - bodyNs
	cur := fl.th.Stats()
	sh := c.qs[fl.shard]
	sh.statsMu.Lock()
	sh.stats = cur
	sh.statsMu.Unlock()
	if c.cfg.Conflicts != nil {
		if d := cur.Aborts - aborts0; d > 0 {
			c.cfg.Conflicts(fl.shard, d)
		}
	}

	// The feed reflects the in-memory commit, which already happened;
	// publish before the durability wait so tailers are not gated on
	// fsync latency.
	if feedLive {
		feed.Publish(feedTk, fl.events)
	}
	var walNs uint64
	var walErr error
	if logLive {
		var buf []byte
		buf, walErr = txkv.AppendRedo(fl.buf[:0], fl.redo)
		fl.buf = buf[:0]
		wt := time.Now()
		if walErr == nil {
			walErr = c.log.Publish(logTk, buf)
		} else {
			c.log.Abandon(logTk)
		}
		walNs = uint64(time.Since(wt))
	}

	m.Batches.Inc()
	m.Items.Add(uint64(len(live)))
	m.BatchSize.Record(uint64(len(live)))
	m.FlushNs.Record(uint64(time.Since(start)))

	n := uint64(len(live))
	for i, it := range live {
		r := res[i]
		if walErr != nil && mutated(it, r) {
			// The batch's frame never became durable: refuse the ack for
			// every item that contributed to it.
			r = Result{Err: "wal: " + walErr.Error(), Code: txkvwire.CodeInternal}
		}
		r.QueueNs = uint64(start.Sub(it.enq))
		r.TxnNs = txnNs / n
		r.CommitNs = commitNs / n
		r.WalNs = walNs / n
		it.done <- r
	}
}

// mutated reports whether the item contributed an entry to its batch's
// redo frame.
func mutated(it *Item, r Result) bool {
	switch it.Op {
	case OpPut:
		return true
	case OpDelete, OpCAS:
		return r.OK
	}
	return false
}
