// Package tl2 implements the TL2 algorithm of Dice, Shalev and Shavit
// ("Transactional Locking II", DISC 2006), the lazy baseline of the paper's
// evaluation (its "TL2 x86" port, GV4 clock variant).
//
// TL2 is word-based and lock-based like SwissTM, but makes the opposite
// conflict-detection choices:
//
//   - Lazy acquisition (commit-time locking): writes are buffered in a
//     private redo log; per-stripe versioned write-locks are taken only
//     during commit. Write/write conflicts therefore surface only at
//     commit time — the behaviour §5 shows wastes the work of long
//     transactions (Figure 6a).
//   - No timestamp extension: a read that observes a version newer than
//     the transaction's read version aborts immediately.
//   - Timid contention management with back-off: on any conflict the
//     attacker aborts itself.
//
// The GV4 optimization is preserved: a writer that increments the global
// clock from rv to rv+1 skips read-set validation, since no other
// transaction can have committed in between.
package tl2

import (
	"math/bits"
	"runtime"
	"slices"
	"sync/atomic"

	"swisstm/internal/mem"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Config parameterizes a TL2 engine.
type Config struct {
	ArenaWords int
	Arena      *mem.Arena
	// StripeWords is the lock granularity in words; 0 selects the
	// 4-word default shared by all word-based engines (see the field's
	// documentation in package swisstm). Must be a power of two ≤ 64.
	StripeWords int
	TableBits   uint
	BackoffUnit int
	// CommitSpin bounds how long the committer spins on a locked stripe
	// before giving up and aborting (the original aborts immediately; a
	// tiny bounded spin reduces convoying on oversubscribed hosts).
	CommitSpin int
	// UnwindAborts restores panic-delivered commit-time aborts; a
	// measurement ablation only (see the field in package swisstm).
	UnwindAborts bool
	// Obs, when non-nil, collects per-transaction telemetry at commit
	// (see the field in package swisstm; DESIGN.md §11).
	Obs *obs.TxnObs
}

func (c *Config) fill() {
	if c.ArenaWords == 0 {
		c.ArenaWords = 1 << 22
	}
	if c.TableBits == 0 {
		c.TableBits = 20
	}
	if c.BackoffUnit == 0 {
		c.BackoffUnit = 512
	}
	if c.CommitSpin == 0 {
		c.CommitSpin = 64
	}
	if c.StripeWords == 0 {
		c.StripeWords = 4
	}
	if c.StripeWords > 64 || c.StripeWords&(c.StripeWords-1) != 0 {
		panic("tl2: StripeWords must be a power of two ≤ 64")
	}
}

// Engine is a TL2 instance. Each lock-table entry is a versioned lock:
// version<<1 when free, owner-tagged odd value when locked. The global
// clock — bumped by every update commit — is padded onto its own cache
// line so clock traffic does not invalidate the read-mostly mapping
// state cached by every reader.
type Engine struct {
	cfg   Config
	arena *mem.Arena
	heap  []atomic.Uint64 // arena backing array, cached for direct indexing
	locks []atomic.Uint64
	shift uint
	mask  uint32

	_     mem.CacheLinePad
	clock mem.PaddedUint64
}

// New creates a TL2 engine.
func New(cfg Config) *Engine {
	cfg.fill()
	a := cfg.Arena
	if a == nil {
		a = mem.NewArena(cfg.ArenaWords)
	}
	n := 1 << cfg.TableBits
	return &Engine{
		cfg:   cfg,
		arena: a,
		heap:  a.Words(),
		locks: make([]atomic.Uint64, n),
		shift: uint(bits.TrailingZeros(uint(cfg.StripeWords))),
		mask:  uint32(n - 1),
	}
}

// Name implements stm.STM.
func (e *Engine) Name() string { return "TL2" }

// Arena implements stm.STM.
func (e *Engine) Arena() *mem.Arena { return e.arena }

func (e *Engine) stripe(a stm.Addr) uint32 { return (a >> e.shift) & e.mask }

// wsEntry is one buffered write (TL2 logs individual words).
type wsEntry struct {
	addr stm.Addr
	val  stm.Word
}

// txn is a TL2 transaction descriptor, one per thread.
type txn struct {
	e         *Engine
	id        int
	ro        bool   // current transaction declared read-only (stm.ReadOnly)
	rv        uint64 // read version (clock snapshot at start)
	readLog   []uint32
	readVer   []uint64
	writes    []wsEntry
	bloom     uint64 // write-set membership filter for read-after-write
	lockSet   []uint32
	lockBloom uint64      // stripe-membership filter over lockSet (commit only)
	saved     []savedLock // pre-lock versions, for release on commit abort
	rng       *util.Rand
	succ      int
	roV       roTx          // pre-allocated read-only view returned by Begin(ReadOnly)
	obsh      *obs.TxnShard // per-thread telemetry shard (nil = obs off)
	stats     stm.Stats
}

// NewThread implements stm.STM.
func (e *Engine) NewThread(id int) stm.Thread {
	if id < 0 || id >= stm.MaxThreads {
		panic("tl2: thread id out of range")
	}
	t := &txn{
		e:       e,
		id:      id,
		readLog: make([]uint32, 0, 1024),
		readVer: make([]uint64, 0, 1024),
		writes:  make([]wsEntry, 0, 256),
		lockSet: make([]uint32, 0, 256),
		saved:   make([]savedLock, 0, 256),
		rng:     util.NewRand(uint64(id)*0x51f15ee1 + 7),
	}
	t.roV.t = t
	if e.cfg.Obs != nil {
		t.obsh = e.cfg.Obs.Shard(id)
	}
	return t
}

// Stats implements stm.Thread.
func (t *txn) Stats() stm.Stats { return t.stats }

// Run implements stm.Thread: the engine-facing v2 primitive.
func (t *txn) Run(body func(stm.Tx) error, mode stm.Mode) error {
	return stm.RunLoop(t, body, mode)
}

// Begin implements stm.Thread. TL2's declared read-only mode is the
// classic one from the TL2 paper: sample the clock and nothing else. No
// read log is kept at all — each read validates against rv on the spot,
// so the whole transaction is consistent at rv by construction and the
// commit needs no validation (DESIGN.md §9.3). The logs are truncated so
// a read-only abort never charges a previous transaction's entries to
// the ReadsLogged counter.
func (t *txn) Begin(mode stm.Mode, restart bool) stm.Tx {
	if mode == stm.ReadOnly {
		t.ro = true
		t.rv = t.e.clock.Load()
		t.readLog = t.readLog[:0]
		t.readVer = t.readVer[:0]
		return &t.roV
	}
	t.ro = false
	t.begin()
	return t
}

// Commit implements stm.Thread.
func (t *txn) Commit() bool {
	var ok bool
	if t.ro {
		ok = t.commitRO()
	} else {
		ok = t.commit()
	}
	if ok {
		t.succ = 0
	}
	return ok
}

// Unwind implements stm.Thread. TL2 holds no locks outside commit, so a
// foreign panic needs no cleanup before the caller propagates it.
func (t *txn) Unwind(r any) bool {
	if _, rb := r.(stm.RollbackSignal); rb {
		t.stats.AbortsUnwound++
		return true
	}
	return false
}

// AbortUser implements stm.Thread: the body returned an error. Writes
// were only buffered (lazy design), so dropping the transaction is pure
// bookkeeping.
func (t *txn) AbortUser() {
	t.abort()
	t.stats.AbortsUser++
	t.stats.AbortsReturned++
	t.succ = 0 // the logical transaction ends here, like a commit
}

// Backoff implements stm.Thread.
func (t *txn) Backoff() {
	t.succ++
	util.BackoffLinear(t.rng, t.succ, t.e.cfg.BackoffUnit)
}

func (t *txn) begin() {
	t.rv = t.e.clock.Load()
	t.readLog = t.readLog[:0]
	t.readVer = t.readVer[:0]
	t.writes = t.writes[:0]
	t.saved = t.saved[:0]
	t.bloom = 0
}

// abort performs the rollback bookkeeping without deciding the delivery
// mechanism (checked return vs unwinding panic); see package swisstm.
func (t *txn) abort() {
	t.stats.Aborts++
	t.stats.ReadsLogged += uint64(len(t.readLog))
}

// commitAbort delivers a commit-time abort as a checked return (or the
// old panic under the UnwindAborts ablation).
func (t *txn) commitAbort() bool {
	t.abort()
	if t.e.cfg.UnwindAborts {
		panic(stm.SignalRollback)
	}
	t.stats.AbortsReturned++
	return false
}

// Restart implements stm.Tx: a user-requested retry always unwinds.
func (t *txn) Restart() {
	t.abort()
	t.stats.AbortsExplicit++
	panic(stm.SignalRestart)
}

func bloomBit(a stm.Addr) uint64 { return 1 << ((uint64(a) * 0x9e3779b97f4a7c15) >> 58) }

// Load implements stm.Tx: the thin wrapper that converts load's checked
// abort into the single unwinding panic (a read conflict must interrupt
// the user closure).
func (t *txn) Load(a stm.Addr) stm.Word {
	v, ok := t.load(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// load implements the TL2 read protocol: write-set lookup for
// read-after-write, then a consistent (lock, value, lock) sample that must
// be unlocked and no newer than rv. ok=false means the transaction
// aborted.
func (t *txn) load(a stm.Addr) (stm.Word, bool) {
	if t.bloom&bloomBit(a) != 0 {
		for i := len(t.writes) - 1; i >= 0; i-- {
			if t.writes[i].addr == a {
				return t.writes[i].val, true
			}
		}
	}
	// Local slice header + length mask: provably in-bounds (no check),
	// one engine dereference.
	locks := t.e.locks
	i := int(a>>t.e.shift) & (len(locks) - 1)
	idx := uint32(i)
	l := &locks[i]
	v1 := l.Load()
	val := t.e.heap[a].Load()
	v2 := l.Load()
	if v1 != v2 || v1&1 == 1 {
		// Locked or changed under us: the timid policy aborts the reader.
		t.stats.AbortsLocked++
		t.abort()
		return 0, false
	}
	if v1>>1 > t.rv {
		// Newer than our snapshot; TL2 has no extension mechanism.
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	t.readLog = append(t.readLog, idx)
	t.readVer = append(t.readVer, v1)
	return val, true
}

// loadRO is the declared-read-only read protocol: a consistent
// (lock, value, lock) sample that must be unlocked and no newer than rv —
// and nothing else. No write-set bloom probe (writes are impossible), no
// read logging (commit never validates; every read is already proven
// consistent at rv). ok=false means the transaction aborted.
func (t *txn) loadRO(a stm.Addr) (stm.Word, bool) {
	locks := t.e.locks
	i := int(a>>t.e.shift) & (len(locks) - 1)
	l := &locks[i]
	v1 := l.Load()
	val := t.e.heap[a].Load()
	v2 := l.Load()
	if v1 != v2 || v1&1 == 1 {
		t.stats.AbortsLocked++
		t.abort()
		return 0, false
	}
	if v1>>1 > t.rv {
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	return val, true
}

// Store implements stm.Tx: lazy buffering, no locks taken.
func (t *txn) Store(a stm.Addr, v stm.Word) {
	b := bloomBit(a)
	if t.bloom&b != 0 {
		for i := len(t.writes) - 1; i >= 0; i-- {
			if t.writes[i].addr == a {
				t.writes[i].val = v
				return
			}
		}
	}
	t.bloom |= b
	t.writes = append(t.writes, wsEntry{addr: a, val: v})
}

// commitRO commits a declared read-only transaction on nothing but the
// clock sample taken at Begin: every read already proved itself ≤ rv and
// unlocked, so there is no read log to replay and no lock to take. This
// is the fast path the v2 API exists to expose — Stats.ValidationReads
// stays untouched, which the API-v2 suite asserts.
func (t *txn) commitRO() bool {
	t.stats.Commits++
	t.stats.ROCommits++
	if t.obsh != nil {
		// TL2 RO keeps no read log, so the read-set size records 0.
		t.obsh.RecordCommit(uint64(t.succ), 0, 0)
	}
	return true
}

// commit implements the TL2 commit protocol. It reports false when the
// transaction aborted; every conflict TL2 detects here — lock-acquire
// failures and read-set validation — takes the checked return path and
// never unwinds.
func (t *txn) commit() bool {
	if len(t.writes) == 0 {
		t.stats.Commits++ // read-only: already validated incrementally
		t.stats.ReadsLogged += uint64(len(t.readLog))
		if t.obsh != nil {
			t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), 0)
		}
		return true
	}
	// Collect the distinct stripes of the write set, in a canonical order
	// so concurrent committers cannot deadlock. sortLockSet is
	// allocation-free, unlike the closure-based sort.Slice (which costs
	// two heap allocations per commit and defeats inlining on the
	// comparison), and the stripe bloom filter makes the ownsStripe
	// check during read validation O(1) for the common miss.
	t.lockSet = t.lockSet[:0]
	t.lockBloom = 0
	for _, w := range t.writes {
		idx := t.e.stripe(w.addr)
		t.lockSet = append(t.lockSet, idx)
		t.lockBloom |= stripeBloomBit(idx)
	}
	sortLockSet(t.lockSet)
	n := 0
	for i, idx := range t.lockSet {
		if i == 0 || idx != t.lockSet[n-1] {
			t.lockSet[n] = idx
			n++
		}
	}
	t.lockSet = t.lockSet[:n]

	// Phase 1: acquire the versioned locks (CAS free→locked).
	lockedVal := uint64(t.id)<<1 | 1
	acquired := 0
	for _, idx := range t.lockSet {
		l := &t.e.locks[idx]
		ok := false
		for spin := 0; spin < t.e.cfg.CommitSpin; spin++ {
			v := l.Load()
			if v&1 == 1 {
				if spin&0xf == 0xf {
					runtime.Gosched()
				}
				continue
			}
			if v>>1 > t.rv {
				break // stripe moved past our snapshot: abort
			}
			if l.CompareAndSwap(v, lockedVal) {
				t.saved = append(t.saved, savedLock{idx: idx, ver: v})
				ok = true
				break
			}
		}
		if !ok {
			t.releaseLocks(acquired)
			t.stats.LockAcquireFail++
			return t.commitAbort()
		}
		acquired++
	}
	// Phase 2: increment the global clock.
	wv := t.e.clock.Add(1)
	// Phase 3: validate the read set (GV4: skip when wv == rv+1).
	if wv != t.rv+1 {
		t.stats.Validations++
		t.stats.ValidationReads += uint64(len(t.readLog))
		for i, idx := range t.readLog {
			v := t.e.locks[idx].Load()
			if v&1 == 1 {
				if v == lockedVal && t.ownsStripe(idx) {
					continue
				}
				t.releaseLocks(acquired)
				t.stats.AbortsValid++
				t.stats.AbortsValidCommit++
				return t.commitAbort()
			}
			if v != t.readVer[i] {
				t.releaseLocks(acquired)
				t.stats.AbortsValid++
				t.stats.AbortsValidCommit++
				return t.commitAbort()
			}
		}
	}
	// Phase 4: write back and release with the new version.
	for _, w := range t.writes {
		t.e.heap[w.addr].Store(w.val)
	}
	newVer := wv << 1
	for _, idx := range t.lockSet {
		t.e.locks[idx].Store(newVer)
	}
	t.stats.Commits++
	t.stats.ReadsLogged += uint64(len(t.readLog))
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), uint64(len(t.writes)))
	}
	return true
}

// savedLock records a stripe's pre-lock version for restoration if the
// commit aborts after acquiring some locks.
type savedLock struct {
	idx uint32
	ver uint64
}

func (t *txn) releaseLocks(acquired int) {
	for i := 0; i < acquired; i++ {
		s := t.saved[i]
		t.e.locks[s.idx].Store(s.ver)
	}
	t.saved = t.saved[:0]
}

// stripeBloomBit maps a stripe index onto the 64-bit lock-set filter.
func stripeBloomBit(idx uint32) uint64 {
	return 1 << ((uint64(idx) * 0x9e3779b97f4a7c15) >> 58)
}

// sortLockSet sorts stripes ascending without allocating: insertion sort
// for the small write sets that dominate (rbtree updates touch a handful
// of stripes), pdqsort via slices.Sort — also allocation-free for uint32
// — beyond that.
func sortLockSet(s []uint32) {
	if len(s) <= 32 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	slices.Sort(s)
}

// ownsStripe reports whether idx is in this commit's lock set: a bloom
// probe rejects almost every foreign stripe in one branch, and the rare
// filter hits fall back to a closure-free binary search of the sorted
// lock set.
func (t *txn) ownsStripe(idx uint32) bool {
	if t.lockBloom&stripeBloomBit(idx) == 0 {
		return false
	}
	lo, hi := 0, len(t.lockSet)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.lockSet[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(t.lockSet) && t.lockSet[lo] == idx
}

// AllocWords implements stm.Tx.
func (t *txn) AllocWords(n uint32) stm.Addr { return t.e.arena.Alloc(n) }

// ReadField implements stm.Tx (object-over-words wrapper).
func (t *txn) ReadField(h stm.Handle, field uint32) stm.Word {
	return t.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx.
func (t *txn) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(t.Load(stm.Addr(h) + field))
}

// WriteField implements stm.Tx.
func (t *txn) WriteField(h stm.Handle, field uint32, v stm.Word) {
	t.Store(stm.Addr(h)+field, v)
}

// WriteRef implements stm.Tx.
func (t *txn) WriteRef(h stm.Handle, field uint32, ref stm.Handle) {
	t.Store(stm.Addr(h)+field, stm.Word(ref))
}

// NewObject implements stm.Tx.
func (t *txn) NewObject(fields uint32) stm.Handle {
	return stm.Handle(t.e.arena.Alloc(fields))
}

// SupportsWordAPI reports the word-API capability (stm.SupportsWordAPI).
func (e *Engine) SupportsWordAPI() bool { return true }

// roTx is the transaction view Begin returns for declared read-only
// mode; see the swisstm counterpart for the rationale. Write methods are
// unreachable through TxRO and panic as defense in depth.
type roTx struct{ t *txn }

const errROWrite = "tl2: write inside a declared read-only transaction"

// Load implements stm.Tx on the read-only view.
func (r *roTx) Load(a stm.Addr) stm.Word {
	v, ok := r.t.loadRO(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// ReadField implements stm.Tx on the read-only view.
func (r *roTx) ReadField(h stm.Handle, field uint32) stm.Word {
	return r.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx on the read-only view.
func (r *roTx) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(r.Load(stm.Addr(h) + field))
}

// Restart implements stm.Tx on the read-only view.
func (r *roTx) Restart() { r.t.Restart() }

func (r *roTx) Store(stm.Addr, stm.Word)                { panic(errROWrite) }
func (r *roTx) AllocWords(uint32) stm.Addr              { panic(errROWrite) }
func (r *roTx) WriteField(stm.Handle, uint32, stm.Word) { panic(errROWrite) }
func (r *roTx) WriteRef(stm.Handle, uint32, stm.Handle) { panic(errROWrite) }
func (r *roTx) NewObject(uint32) stm.Handle             { panic(errROWrite) }

var _ stm.STM = (*Engine)(nil)
var _ stm.Thread = (*txn)(nil)
var _ stm.Tx = (*txn)(nil)
var _ stm.Tx = (*roTx)(nil)
