package tl2

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

// TestAbortPath runs the two-tier abort-delivery conformance suite
// (DESIGN.md §8). TL2 is the engine where the checked tier covers the
// most ground: lazy acquisition defers every write/write conflict to
// commit, so both lock-acquire failures and commit validation return
// without unwinding; only read aborts (no extension mechanism) and
// Restart panic.
func TestAbortPath(t *testing.T) {
	mk := func(unwind bool) func() stm.STM {
		return func() stm.STM {
			return New(Config{ArenaWords: 1 << 16, TableBits: 10, BackoffUnit: 1, UnwindAborts: unwind})
		}
	}
	stmtest.AbortPathSuite(t, mk(false), mk(true), stmtest.ShapeLockAcquire)
}
