package tl2

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

func newEngine() stm.STM {
	return New(Config{ArenaWords: 1 << 16, TableBits: 12})
}

func TestConformance(t *testing.T) {
	stmtest.Run(t, newEngine, stmtest.Options{WordAPI: true})
}

func TestConformanceGranularities(t *testing.T) {
	for _, g := range []uint{0, 2, 6} {
		g := g
		t.Run(map[uint]string{0: "1word", 2: "4words", 6: "64words"}[g], func(t *testing.T) {
			stmtest.Run(t, func() stm.STM {
				return New(Config{ArenaWords: 1 << 16, TableBits: 10, StripeWords: 1 << g})
			}, stmtest.Options{WordAPI: true})
		})
	}
}

func TestWriteSetLookup(t *testing.T) {
	// Lazy engines must find buffered writes through the bloom filter even
	// with many writes hashing to colliding bits.
	e := New(Config{ArenaWords: 1 << 14, TableBits: 10})
	th := e.NewThread(0)
	var base stm.Addr
	th.Atomic(func(tx stm.Tx) { base = tx.AllocWords(512) })
	th.Atomic(func(tx stm.Tx) {
		for i := uint32(0); i < 512; i++ {
			tx.Store(base+i, stm.Word(i)*3)
		}
		for i := uint32(0); i < 512; i++ {
			if got := tx.Load(base + i); got != stm.Word(i)*3 {
				t.Fatalf("word %d: got %d, want %d", i, got, i*3)
			}
		}
		// Overwrite and re-read.
		tx.Store(base+100, 999)
		if got := tx.Load(base + 100); got != 999 {
			t.Fatalf("overwrite lookup failed: got %d", got)
		}
	})
}

func TestGV4SkipsValidation(t *testing.T) {
	// A solo writer's commits must always take the wv == rv+1 fast path:
	// no validation aborts may be counted.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	th.Atomic(func(tx stm.Tx) { base = tx.AllocWords(64) })
	for n := 0; n < 100; n++ {
		th.Atomic(func(tx stm.Tx) {
			for i := uint32(0); i < 16; i++ {
				tx.Store(base+i, tx.Load(base+i)+1)
			}
		})
	}
	if s := th.Stats(); s.Aborts != 0 {
		t.Fatalf("solo writer aborted %d times", s.Aborts)
	}
}

func TestLazyAcquireDefersConflict(t *testing.T) {
	// With lazy acquisition, two overlapping writers only collide at
	// commit; the body itself must never see a lock. We verify by having
	// writer 2 read the location freely while writer 1's transaction is
	// open (single-threaded interleaving via manual staging is not
	// possible through the public API, so this asserts the weaker,
	// still-distinctive property: a store takes no lock).
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	th.Atomic(func(tx stm.Tx) { base = tx.AllocWords(1) })
	th.Atomic(func(tx stm.Tx) {
		tx.Store(base, 5)
		// The stripe's versioned lock must still be free mid-transaction.
		if v := e.locks[e.stripe(base)].Load(); v&1 == 1 {
			t.Fatal("lazy engine locked a stripe before commit")
		}
	})
}
