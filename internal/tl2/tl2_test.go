package tl2

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

func newEngine() stm.STM {
	return New(Config{ArenaWords: 1 << 16, TableBits: 12})
}

func TestConformance(t *testing.T) {
	stmtest.Run(t, newEngine, stmtest.Options{WordAPI: true})
}

func TestConformanceGranularities(t *testing.T) {
	for _, g := range []uint{0, 2, 6} {
		g := g
		t.Run(map[uint]string{0: "1word", 2: "4words", 6: "64words"}[g], func(t *testing.T) {
			stmtest.Run(t, func() stm.STM {
				return New(Config{ArenaWords: 1 << 16, TableBits: 10, StripeWords: 1 << g})
			}, stmtest.Options{WordAPI: true})
		})
	}
}

func TestWriteSetLookup(t *testing.T) {
	// Lazy engines must find buffered writes through the bloom filter even
	// with many writes hashing to colliding bits.
	e := New(Config{ArenaWords: 1 << 14, TableBits: 10})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(512) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < 512; i++ {
			tx.Store(base+i, stm.Word(i)*3)
		}
		for i := uint32(0); i < 512; i++ {
			if got := tx.Load(base + i); got != stm.Word(i)*3 {
				t.Fatalf("word %d: got %d, want %d", i, got, i*3)
			}
		}
		// Overwrite and re-read.
		tx.Store(base+100, 999)
		if got := tx.Load(base + 100); got != 999 {
			t.Fatalf("overwrite lookup failed: got %d", got)
		}
	})
}

func TestGV4SkipsValidation(t *testing.T) {
	// A solo writer's commits must always take the wv == rv+1 fast path:
	// no validation aborts may be counted.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(64) })
	for n := 0; n < 100; n++ {
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for i := uint32(0); i < 16; i++ {
				tx.Store(base+i, tx.Load(base+i)+1)
			}
		})
	}
	if s := th.Stats(); s.Aborts != 0 {
		t.Fatalf("solo writer aborted %d times", s.Aborts)
	}
}

func TestLazyAcquireDefersConflict(t *testing.T) {
	// With lazy acquisition, two overlapping writers only collide at
	// commit; the body itself must never see a lock. We verify by having
	// writer 2 read the location freely while writer 1's transaction is
	// open (single-threaded interleaving via manual staging is not
	// possible through the public API, so this asserts the weaker,
	// still-distinctive property: a store takes no lock).
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(1) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.Store(base, 5)
		// The stripe's versioned lock must still be free mid-transaction.
		if v := e.locks[e.stripe(base)].Load(); v&1 == 1 {
			t.Fatal("lazy engine locked a stripe before commit")
		}
	})
}

// TestReadOnlyNoReadLogReplay pins the declared read-only commit
// protocol under write traffic (DESIGN.md §9.3): TL2 keeps no read log
// in ReadOnly mode, so even when a concurrent writer moves stripes past
// the reader's snapshot — forcing read-time aborts — no validation pass
// ever runs and no read-log entry is ever replayed. The conflict is
// injected deterministically from a second engine thread on the same
// goroutine, stmtest.ForcedAbort style.
func TestReadOnlyNoReadLogReplay(t *testing.T) {
	e := newEngine()
	thR := e.NewThread(0)
	thW := e.NewThread(1)
	addrs := stm.Atomic(thR, func(tx stm.Tx) [2]stm.Addr {
		a := tx.AllocWords(1)
		_ = tx.AllocWords(64) // distinct stripes at any granularity ≤ 64
		b := tx.AllocWords(1)
		tx.Store(a, 1)
		tx.Store(b, 1)
		return [2]stm.Addr{a, b}
	})
	a, b := addrs[0], addrs[1]
	bump := func(tx stm.Tx) { tx.Store(b, tx.Load(b)+1) }
	const cycles = 50
	attempt := 0
	for i := 0; i < cycles; i++ {
		attempt = 0
		got := stm.AtomicRO(thR, func(tx stm.TxRO) stm.Word {
			attempt++
			v := tx.Load(a)
			if attempt == 1 {
				// The injected commit moves b past the reader's snapshot:
				// the next Load must abort the attempt (TL2 has no
				// extension), and the retry sees the new value.
				stm.AtomicVoid(thW, bump)
			}
			return v + tx.Load(b)
		})
		if got == 0 {
			t.Fatal("read-only transaction returned nothing")
		}
		if attempt != 2 {
			t.Fatalf("cycle %d: %d attempts, want 2 (inject must abort the first)", i, attempt)
		}
	}
	s := thR.Stats()
	if s.ROCommits != cycles+0 {
		t.Errorf("ROCommits = %d, want %d", s.ROCommits, cycles)
	}
	if s.AbortsValid != cycles {
		t.Errorf("AbortsValid = %d, want %d (one injected conflict per cycle)", s.AbortsValid, cycles)
	}
	if s.Validations != 0 || s.ValidationReads != 0 {
		t.Errorf("read-only mode ran %d validations replaying %d entries, want 0/0 — TL2 RO keeps no read log",
			s.Validations, s.ValidationReads)
	}
	if s.ReadsLogged != 0 {
		t.Errorf("read-only mode logged %d reads, want 0", s.ReadsLogged)
	}
}
