package tl2

import (
	"testing"

	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyState is the allocation-regression gate of
// DESIGN.md §7. TL2's commit is the interesting path: lock-set
// collection, sorting and acquisition must all run out of the reused
// per-thread buffers (the closure-based sort.Slice it shipped with cost
// two allocations per update commit).
func TestZeroAllocSteadyState(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10})
	stmtest.ZeroAllocSteadyState(t, e, true, true)
}
