package bayes_test

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

// engines is the paper's full line-up; bayes is written against the
// object API, so unlike the word-API STAMP harness it also runs on RSTM.
func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.ByName("polka")}) },
	}
}

// TestCorrectness runs bayes (structure learning: DFS-heavy proposals
// with cycle checks) at Test scale on every engine, sequentially and
// with 4 workers; Check verifies the learned network recovered the
// hidden ground-truth edges and stayed acyclic.
func TestCorrectness(t *testing.T) {
	for ename, factory := range engines() {
		for _, threads := range []int{1, 4} {
			t.Run(ename+"/"+map[int]string{1: "seq", 4: "par"}[threads], func(t *testing.T) {
				app, err := stamp.New("bayes", stamp.Test)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := stamp.Run(app, factory(), threads)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestSeededRunsAgree replays bayes with the same worker seed twice on
// one thread and expects identical commit totals: the proposal stream is
// cursor-partitioned and the RNG stream is derived from the seed.
func TestSeededRunsAgree(t *testing.T) {
	run := func() uint64 {
		app, err := stamp.New("bayes", stamp.Test)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := stamp.RunSeeded(app, engines()["tl2"](), 1, 77)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Commits
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("seeded sequential commit counts differ: %d vs %d", a, b)
	}
}
