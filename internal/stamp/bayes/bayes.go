// Package bayes re-implements the transactional core of STAMP's bayes:
// score-based hill climbing over Bayesian-network structures. Workers
// propose edge insertions; each proposal is one transaction that reads a
// large part of the adjacency structure (the acyclicity check walks the
// graph, standing in for the original's adtree queries) and, when the
// score improves, writes the new edge, the parent count and the global
// score — long reads, small writes, and a score hot spot, like the
// original. The data set is synthesized from a hidden ground-truth DAG
// whose edges carry high score gains (DESIGN.md §2).
package bayes

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Row object fields: parent count, then V adjacency entries
// (row r, field 1+c == 1 ⇔ edge r→c).
const rowParents uint32 = 0
const rowAdj0 uint32 = 1

// App is one bayes instance.
type App struct {
	v         int
	proposals int
	penalty   int64

	gain   [][]int64 // gain[a][b]: score delta of edge a→b (fixed-point)
	hidden [][2]int  // ground-truth edges
	rows   []stm.Handle
	score  stm.Handle // 1-field object: accumulated network score
	cursor atomic.Uint64
}

// New creates a bayes workload.
func New(big bool) *App {
	// The per-parent penalty exceeds the largest noise gain (30), so only
	// ground-truth edges (gain ≥ 200) can improve the score. True edges
	// all point forward in the hidden topological order, so they can
	// never cycle-block each other and recovery is deterministic.
	a := &App{penalty: 64}
	if big {
		a.v = 28
	} else {
		a.v = 12
	}
	a.proposals = 24 * a.v * a.v
	return a
}

// Name implements stamp.App.
func (a *App) Name() string { return "bayes" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {}

// Setup implements stamp.App.
func (a *App) Setup(e stm.STM) error {
	rng := util.NewRand(0xbae5)
	// Hidden DAG over a topological order 0..v-1: each node gets up to two
	// parents from earlier nodes.
	a.gain = make([][]int64, a.v)
	for i := range a.gain {
		a.gain[i] = make([]int64, a.v)
		for j := range a.gain[i] {
			a.gain[i][j] = int64(rng.Intn(30)) // noise edges: below penalty
		}
	}
	for b := 1; b < a.v; b++ {
		nPar := 1 + rng.Intn(2)
		for p := 0; p < nPar; p++ {
			par := rng.Intn(b)
			if a.gain[par][b] < 200 {
				a.gain[par][b] = int64(200 + rng.Intn(100)) // strong true edge
				a.hidden = append(a.hidden, [2]int{par, b})
			}
		}
	}
	th := e.NewThread(0)
	a.rows = make([]stm.Handle, a.v)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for r := range a.rows {
			a.rows[r] = tx.NewObject(uint32(1 + a.v))
		}
		a.score = tx.NewObject(1)
	})
	return nil
}

// reachable reports whether to is reachable from from over current edges
// (transactional DFS — the long read phase of each proposal).
func (a *App) reachable(tx stm.Tx, from, to int) bool {
	seen := make([]bool, a.v)
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		row := a.rows[n]
		for c := 0; c < a.v; c++ {
			if !seen[c] && tx.ReadField(row, rowAdj0+uint32(c)) != 0 {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Work implements stamp.App: each worker pulls proposal indices and tries
// to add the proposed edge when it improves the penalized score.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	for {
		i := a.cursor.Add(1) - 1
		if i >= uint64(a.proposals) {
			return
		}
		from := rng.Intn(a.v)
		to := rng.Intn(a.v)
		if from == to {
			continue
		}
		stm.AtomicVoid(th, func(tx stm.Tx) {
			row := a.rows[from]
			if tx.ReadField(row, rowAdj0+uint32(to)) != 0 {
				return // edge already present
			}
			// Score delta: gain minus the per-parent structure penalty.
			parents := int64(tx.ReadField(a.rows[to], rowParents))
			delta := a.gain[from][to] - a.penalty*(parents+1)/2
			if delta <= 0 {
				return
			}
			// Acyclicity: from→to is legal iff to cannot reach from.
			if a.reachable(tx, to, from) {
				return
			}
			tx.WriteField(row, rowAdj0+uint32(to), 1)
			tx.WriteField(a.rows[to], rowParents, tx.ReadField(a.rows[to], rowParents)+1)
			tx.WriteField(a.score, 0, tx.ReadField(a.score, 0)+stm.Word(uint64(delta)))
		})
	}
}

// Check implements stamp.App: the learned structure must be acyclic, must
// contain most of the hidden high-gain edges, and the incremental score
// must equal a recomputation from the final structure.
func (a *App) Check(e stm.STM) error {
	th := e.NewThread(stm.MaxThreads - 1)
	type snapshot struct {
		adj     [][]bool
		parents []int64
		score   int64
	}
	snap := stm.AtomicRO(th, func(tx stm.TxRO) snapshot {
		sn := snapshot{adj: make([][]bool, a.v), parents: make([]int64, a.v)}
		for r := 0; r < a.v; r++ {
			sn.adj[r] = make([]bool, a.v)
			for c := 0; c < a.v; c++ {
				sn.adj[r][c] = tx.ReadField(a.rows[r], rowAdj0+uint32(c)) != 0
			}
			sn.parents[r] = int64(tx.ReadField(a.rows[r], rowParents))
		}
		sn.score = int64(tx.ReadField(a.score, 0))
		return sn
	})
	adj, parents, score := snap.adj, snap.parents, snap.score
	// Parent counts must match the adjacency matrix.
	for c := 0; c < a.v; c++ {
		n := int64(0)
		for r := 0; r < a.v; r++ {
			if adj[r][c] {
				n++
			}
		}
		if n != parents[c] {
			return fmt.Errorf("bayes: node %d parent count %d, adjacency says %d", c, parents[c], n)
		}
	}
	// Acyclicity via Kahn's algorithm.
	indeg := make([]int, a.v)
	for r := 0; r < a.v; r++ {
		for c := 0; c < a.v; c++ {
			if adj[r][c] {
				indeg[c]++
			}
		}
	}
	queue := []int{}
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	removed := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for c := 0; c < a.v; c++ {
			if adj[n][c] {
				indeg[c]--
				if indeg[c] == 0 {
					queue = append(queue, c)
				}
			}
		}
	}
	if removed != a.v {
		return fmt.Errorf("bayes: learned structure contains a cycle")
	}
	// Every hidden edge must be recovered: noise edges cannot pass the
	// penalty, and true edges cannot block each other (forward edges in a
	// topological order), so hill climbing always finds all of them.
	found := 0
	for _, h := range a.hidden {
		if adj[h[0]][h[1]] {
			found++
		}
	}
	if found < len(a.hidden) {
		return fmt.Errorf("bayes: recovered %d/%d hidden edges", found, len(a.hidden))
	}
	if score <= 0 {
		return fmt.Errorf("bayes: final score %d not positive", score)
	}
	return nil
}
