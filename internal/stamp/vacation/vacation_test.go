package vacation

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/tinystm"
	"swisstm/internal/util"
)

func TestQueryRangeVariants(t *testing.T) {
	hi := New(false, true)
	lo := New(false, false)
	if hi.queryRange >= lo.queryRange {
		t.Fatalf("high-contention range %d must be narrower than low %d",
			hi.queryRange, lo.queryRange)
	}
}

func TestReservationConservation(t *testing.T) {
	app := New(false, true)
	e := tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 14})
	if err := app.Setup(e); err != nil {
		t.Fatal(err)
	}
	app.Bind(3)
	done := make(chan struct{}, 3)
	for w := 0; w < 3; w++ {
		go func(id int) {
			th := e.NewThread(id + 1)
			app.Work(e, th, id, 3, util.NewRand(uint64(id)*9+2))
			done <- struct{}{}
		}(w)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	if err := app.Check(e); err != nil {
		t.Fatal(err)
	}
	// Some reservations must actually have happened.
	th := e.NewThread(10)
	reserved := stm.Atomic(th, func(tx stm.Tx) int {
		n := 0
		app.customers.Visit(tx, func(_, cuV stm.Word) {
			cu := stm.Handle(cuV)
			for s := uint32(0); s < maxResPerCustomer; s++ {
				if tx.ReadField(cu, cuSlot0+s) != 0 {
					n++
				}
			}
		})
		return n
	})
	if reserved == 0 {
		t.Fatal("no reservations made; workload inert")
	}
}
