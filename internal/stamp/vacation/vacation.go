// Package vacation re-implements STAMP's vacation: a travel-reservation
// system whose database is four red-black trees (cars, flights, rooms,
// customers). Each client transaction queries several random resources
// and then reserves, cancels, or (as an administrator) updates prices —
// medium-length transactions over tree lookups with a few writes. The
// high-contention variant narrows the id range the queries hit.
package vacation

import (
	"fmt"

	"swisstm/internal/rbtree"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Resource object fields.
const (
	rsTotal uint32 = iota
	rsAvail
	rsPrice
	rsFields
)

// Customer object fields: bill plus a fixed array of reservation slots
// (table*2^32|id entries, 0 = empty).
const (
	cuBill uint32 = iota
	cuSlot0
	maxResPerCustomer = 8
)

const nTables = 3 // cars, flights, rooms

// App is one vacation instance.
type App struct {
	high       bool
	nResources int
	nCustomers int
	nTasks     int
	queriesPer int
	queryRange int // ids queried fall in [1, queryRange]

	tables    [nTables]*rbtree.Tree
	customers *rbtree.Tree
	cursor    int64
	tasks     chan int
}

// New creates a vacation workload. high narrows the query range to 10% of
// the resources (STAMP's -q parameter), concentrating the contention.
func New(big, high bool) *App {
	a := &App{high: high, queriesPer: 4}
	if big {
		a.nResources, a.nCustomers, a.nTasks = 1024, 256, 8192
	} else {
		a.nResources, a.nCustomers, a.nTasks = 256, 64, 1024
	}
	if high {
		a.queryRange = a.nResources / 10
	} else {
		a.queryRange = a.nResources * 9 / 10
	}
	if a.queryRange < 4 {
		a.queryRange = 4
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string {
	if a.high {
		return "vacation-high"
	}
	return "vacation-low"
}

// Bind implements stamp.App.
func (a *App) Bind(threads int) {
	a.tasks = make(chan int, a.nTasks)
	for i := 0; i < a.nTasks; i++ {
		a.tasks <- i
	}
	close(a.tasks)
}

// Setup implements stamp.App.
func (a *App) Setup(e stm.STM) error {
	th := e.NewThread(0)
	rng := util.NewRand(0xaca7)
	for t := 0; t < nTables; t++ {
		a.tables[t] = rbtree.New(th)
		for id := 1; id <= a.nResources; id++ {
			id := id
			stm.AtomicVoid(th, func(tx stm.Tx) {
				r := tx.NewObject(rsFields)
				total := stm.Word(2 + rng.Intn(6))
				tx.WriteField(r, rsTotal, total)
				tx.WriteField(r, rsAvail, total)
				tx.WriteField(r, rsPrice, stm.Word(100+rng.Intn(400)))
				a.tables[t].Insert(tx, stm.Word(id), stm.Word(r))
			})
		}
	}
	a.customers = rbtree.New(th)
	for c := 1; c <= a.nCustomers; c++ {
		c := c
		stm.AtomicVoid(th, func(tx stm.Tx) {
			cu := tx.NewObject(cuSlot0 + maxResPerCustomer)
			a.customers.Insert(tx, stm.Word(c), stm.Word(cu))
		})
	}
	return nil
}

// Work implements stamp.App: workers drain the task channel; each task is
// one client transaction.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	for range a.tasks {
		switch r := rng.Intn(100); {
		case r < 70:
			a.makeReservation(th, rng)
		case r < 85:
			a.cancelReservation(th, rng)
		default:
			a.updatePrices(th, rng)
		}
	}
}

// makeReservation is STAMP's "make reservation" client: query a few
// random resources per table, pick the cheapest available one, reserve
// it for a random customer.
func (a *App) makeReservation(th stm.Thread, rng *util.Rand) {
	custID := stm.Word(rng.Intn(a.nCustomers) + 1)
	table := rng.Intn(nTables)
	ids := make([]stm.Word, a.queriesPer)
	for i := range ids {
		ids[i] = stm.Word(rng.Intn(a.queryRange) + 1)
	}
	stm.AtomicVoid(th, func(tx stm.Tx) {
		bestID := stm.Word(0)
		var best stm.Handle
		bestPrice := ^stm.Word(0)
		for _, id := range ids {
			v, ok := a.tables[table].Lookup(tx, id)
			if !ok {
				continue
			}
			r := stm.Handle(v)
			if tx.ReadField(r, rsAvail) == 0 {
				continue
			}
			if p := tx.ReadField(r, rsPrice); p < bestPrice {
				bestPrice, bestID, best = p, id, r
			}
		}
		if bestID == 0 {
			return // nothing available: read-only transaction
		}
		cuV, ok := a.customers.Lookup(tx, custID)
		if !ok {
			return
		}
		cu := stm.Handle(cuV)
		// A free reservation slot is required.
		slot := uint32(0)
		for s := uint32(0); s < maxResPerCustomer; s++ {
			if tx.ReadField(cu, cuSlot0+s) == 0 {
				slot = cuSlot0 + s
				break
			}
		}
		if slot == 0 {
			return // customer fully booked
		}
		tx.WriteField(best, rsAvail, tx.ReadField(best, rsAvail)-1)
		tx.WriteField(cu, slot, stm.Word(table)<<32|bestID)
		tx.WriteField(cu, cuBill, tx.ReadField(cu, cuBill)+bestPrice)
	})
}

// cancelReservation drops a random reservation of a random customer.
func (a *App) cancelReservation(th stm.Thread, rng *util.Rand) {
	custID := stm.Word(rng.Intn(a.nCustomers) + 1)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		cuV, ok := a.customers.Lookup(tx, custID)
		if !ok {
			return
		}
		cu := stm.Handle(cuV)
		for s := uint32(0); s < maxResPerCustomer; s++ {
			v := tx.ReadField(cu, cuSlot0+s)
			if v == 0 {
				continue
			}
			table := int(v >> 32)
			id := v & 0xffffffff
			rv, ok := a.tables[table].Lookup(tx, id)
			if !ok {
				return
			}
			r := stm.Handle(rv)
			tx.WriteField(r, rsAvail, tx.ReadField(r, rsAvail)+1)
			tx.WriteField(cu, cuSlot0+s, 0)
			tx.WriteField(cu, cuBill, tx.ReadField(cu, cuBill)-tx.ReadField(r, rsPrice))
			return
		}
	})
}

// updatePrices is the administrator transaction: re-price a few random
// resources in one table.
func (a *App) updatePrices(th stm.Thread, rng *util.Rand) {
	table := rng.Intn(nTables)
	ids := make([]stm.Word, 2)
	for i := range ids {
		ids[i] = stm.Word(rng.Intn(a.queryRange) + 1)
	}
	delta := stm.Word(rng.Intn(50))
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for _, id := range ids {
			if v, ok := a.tables[table].Lookup(tx, id); ok {
				r := stm.Handle(v)
				tx.WriteField(r, rsPrice, 100+delta)
			}
		}
	})
}

// Check implements stamp.App: for every resource,
// available + outstanding-reservations == total.
func (a *App) Check(e stm.STM) error {
	th := e.NewThread(stm.MaxThreads - 1)
	_, err := stm.AtomicErr(th, func(tx stm.Tx) (struct{}, error) {
		var failure error
		reserved := map[[2]stm.Word]stm.Word{} // (table,id) → count
		a.customers.Visit(tx, func(_, cuV stm.Word) {
			cu := stm.Handle(cuV)
			for s := uint32(0); s < maxResPerCustomer; s++ {
				v := tx.ReadField(cu, cuSlot0+s)
				if v != 0 {
					reserved[[2]stm.Word{v >> 32, v & 0xffffffff}]++
				}
			}
		})
		for t := 0; t < nTables; t++ {
			a.tables[t].Visit(tx, func(id, rv stm.Word) {
				r := stm.Handle(rv)
				total := tx.ReadField(r, rsTotal)
				avail := tx.ReadField(r, rsAvail)
				out := reserved[[2]stm.Word{stm.Word(t), id}]
				if avail+out != total {
					failure = fmt.Errorf("vacation: table %d id %d: avail %d + reserved %d != total %d",
						t, id, avail, out, total)
				}
			})
		}
		return struct{}{}, failure
	})
	return err
}
