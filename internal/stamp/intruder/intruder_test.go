package intruder

import (
	"testing"

	"swisstm/internal/swisstm"
	"swisstm/internal/util"
)

func TestFragmentsCoverAllFlows(t *testing.T) {
	app := New(false)
	e := swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14})
	if err := app.Setup(e); err != nil {
		t.Fatal(err)
	}
	perFlow := map[int]int{}
	sums := map[int]uint64{}
	for _, fr := range app.fragments {
		perFlow[fr.flow]++
		sums[fr.flow] += fr.payload
	}
	if len(perFlow) != app.nFlows {
		t.Fatalf("%d flows fragmented, want %d", len(perFlow), app.nFlows)
	}
	for f, n := range perFlow {
		if n < 1 || n > app.maxFrags {
			t.Fatalf("flow %d has %d fragments", f, n)
		}
		if app.oracle[f] != attack(sums[f]) {
			t.Fatalf("oracle mismatch for flow %d", f)
		}
	}
}

func TestDetectionMatchesOracle(t *testing.T) {
	app := New(false)
	e := swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 14})
	if err := app.Setup(e); err != nil {
		t.Fatal(err)
	}
	app.Bind(2)
	done := make(chan struct{}, 2)
	for w := 0; w < 2; w++ {
		go func(id int) {
			th := e.NewThread(id + 1)
			app.Work(e, th, id, 2, util.NewRand(uint64(id)+1))
			done <- struct{}{}
		}(w)
	}
	<-done
	<-done
	if err := app.Check(e); err != nil {
		t.Fatal(err)
	}
}
