// Package intruder re-implements STAMP's intruder: network intrusion
// detection over fragmented flows. Workers repeatedly (1) dequeue a
// fragment from one shared queue — the hot spot the paper points at in
// Figure 11 ("a high number of transactions dequeue elements from a
// single queue") — (2) add it to the per-flow reassembly map, and
// (3) when a flow completes, scan its payload for the attack signature
// and log attacks in a shared list.
package intruder

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stamp/tmds"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Flow-assembly object fields: fragments received, payload checksum
// accumulator (order-independent), and fragment count expected.
const (
	faGot uint32 = iota
	faSum
	faWant
	faFields
)

// App is one intruder instance.
type App struct {
	nFlows    int
	maxFrags  int
	queue     *tmds.Queue
	flows     *tmds.Map // flowID → assembly object
	attacks   *tmds.List
	processed atomic.Uint64
	oracle    map[int]bool // flowID → is attack (sequential ground truth)
	fragments []fragment
}

type fragment struct {
	flow    int
	idx     int
	total   int
	payload uint64
}

// New creates an intruder workload.
func New(big bool) *App {
	a := &App{maxFrags: 6}
	if big {
		a.nFlows = 2048
	} else {
		a.nFlows = 256
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string { return "intruder" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {}

// attack reports whether a completed flow's checksum matches the
// "signature" (a simple predicate standing in for the original's
// string-search detector; the transactional pattern is unchanged).
func attack(sum uint64) bool { return sum%7 == 0 }

// Setup implements stamp.App: build flows, fragment them, shuffle all
// fragments into the shared queue.
func (a *App) Setup(e stm.STM) error {
	rng := util.NewRand(0x1d7)
	a.oracle = make(map[int]bool, a.nFlows)
	for f := 1; f <= a.nFlows; f++ {
		n := 1 + rng.Intn(a.maxFrags)
		var sum uint64
		for i := 0; i < n; i++ {
			p := rng.Next() >> 8
			sum += p
			a.fragments = append(a.fragments, fragment{flow: f, idx: i, total: n, payload: p})
		}
		a.oracle[f] = attack(sum)
	}
	// Shuffle fragments: reassembly must cope with arbitrary arrival.
	for i := len(a.fragments) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		a.fragments[i], a.fragments[j] = a.fragments[j], a.fragments[i]
	}
	th := e.NewThread(0)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		a.queue = tmds.NewQueue(tx)
		a.flows = tmds.NewMap(tx, 512)
		a.attacks = tmds.NewList(tx)
	})
	// Enqueue in batches to bound transaction size.
	const batch = 64
	for i := 0; i < len(a.fragments); i += batch {
		end := i + batch
		if end > len(a.fragments) {
			end = len(a.fragments)
		}
		i := i
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := i; k < end; k++ {
				// The queue carries indexes into a.fragments, which is
				// immutable once setup completes.
				a.queue.Enqueue(tx, stm.Word(k))
			}
		})
	}
	return nil
}

// Work implements stamp.App.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	type dequeued struct {
		idx stm.Word
		ok  bool
	}
	type flowDone struct {
		sum       uint64
		completed bool
	}
	for {
		// Capture phase: one transaction per dequeue (the hot spot).
		dq := stm.Atomic(th, func(tx stm.Tx) dequeued {
			v, ok := a.queue.Dequeue(tx)
			return dequeued{idx: v, ok: ok}
		})
		if !dq.ok {
			return
		}
		fr := a.fragments[dq.idx]
		// Reassembly phase: merge the fragment into its flow object;
		// detection runs when the last fragment lands.
		done := stm.Atomic(th, func(tx stm.Tx) flowDone {
			var fa stm.Handle
			if v, ok := a.flows.Get(tx, stm.Word(fr.flow)); ok {
				fa = stm.Handle(v)
			} else {
				fa = tx.NewObject(faFields)
				tx.WriteField(fa, faWant, stm.Word(fr.total))
				a.flows.Put(tx, stm.Word(fr.flow), stm.Word(fa))
			}
			got := tx.ReadField(fa, faGot) + 1
			sum := tx.ReadField(fa, faSum) + stm.Word(fr.payload)
			tx.WriteField(fa, faGot, got)
			tx.WriteField(fa, faSum, sum)
			if got == tx.ReadField(fa, faWant) {
				return flowDone{sum: uint64(sum), completed: true}
			}
			return flowDone{}
		})
		a.processed.Add(1)
		if done.completed && attack(done.sum) {
			// Detection phase: log the attack.
			stm.AtomicVoid(th, func(tx stm.Tx) {
				a.attacks.Push(tx, stm.Word(fr.flow))
			})
		}
	}
}

// Check implements stamp.App: every fragment processed exactly once and
// the attack list matches the sequential oracle.
func (a *App) Check(e stm.STM) error {
	if got := a.processed.Load(); got != uint64(len(a.fragments)) {
		return fmt.Errorf("intruder: processed %d fragments, want %d", got, len(a.fragments))
	}
	th := e.NewThread(stm.MaxThreads - 1)
	_, err := stm.AtomicErr(th, func(tx stm.Tx) (struct{}, error) {
		var zero struct{}
		if n := a.queue.Len(tx); n != 0 {
			return zero, fmt.Errorf("intruder: %d fragments left in queue", n)
		}
		found := map[stm.Word]bool{}
		a.attacks.Visit(tx, func(v stm.Word) { found[v] = true })
		want := 0
		for f, isAtk := range a.oracle {
			if isAtk {
				want++
				if !found[stm.Word(f)] {
					return zero, fmt.Errorf("intruder: attack flow %d not detected", f)
				}
			} else if found[stm.Word(f)] {
				return zero, fmt.Errorf("intruder: false positive on flow %d", f)
			}
		}
		if len(found) != want {
			return zero, fmt.Errorf("intruder: %d attacks logged, want %d", len(found), want)
		}
		return zero, nil
	})
	return err
}
