package stamp

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

func engines() map[string]func() stm.STM {
	// STAMP runs only on the word-based engines, as in the paper (§4,
	// footnote 4: RSTM's object API is incompatible).
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
	}
}

// TestAllWorkloadsSequential runs every workload at Test scale with one
// worker on every engine and validates its oracle.
func TestAllWorkloadsSequential(t *testing.T) {
	for _, name := range Workloads {
		for ename, factory := range engines() {
			t.Run(name+"/"+ename, func(t *testing.T) {
				app, err := New(name, Test)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := Run(app, factory(), 1)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestAllWorkloadsParallel runs every workload with 4 workers on SwissTM
// and TinySTM (the eager engines exercise the kill/retry paths hardest).
func TestAllWorkloadsParallel(t *testing.T) {
	for _, name := range Workloads {
		for _, ename := range []string{"swisstm", "tinystm", "tl2"} {
			t.Run(name+"/"+ename, func(t *testing.T) {
				app, err := New(name, Test)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(app, engines()[ename](), 4); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nope", Test); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}
