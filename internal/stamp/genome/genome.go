// Package genome re-implements STAMP's genome: gene sequencing by
// (1) deduplicating DNA segments into a transactional hash set,
// (2) matching segment overlaps to link each segment to its successor,
// and (3) rebuilding the gene and comparing it with the original.
// Phases 1 and 2 are the transactional phases; their access pattern —
// hash-table inserts, then claim-flag updates — follows the original.
package genome

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stamp/tmds"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Segment object fields.
const (
	sgCode    uint32 = iota // encoded nucleotide string
	sgNext                  // handle of successor segment (0 = none yet)
	sgClaimed               // 1 when some predecessor claimed this segment
	sgFields
)

// App is one genome instance.
type App struct {
	geneLen int
	segLen  int

	gene     []byte // 0..3 nucleotides
	segCodes []stm.Word

	segSet    *tmds.Map // segment code → segment object handle
	prefixMap *tmds.Map // (segLen-1)-prefix code → segment handle
	segList   *tmds.List
	cursor1   atomic.Uint64 // phase-1 work cursor
	cursor2   atomic.Uint64 // phase-2 work cursor
	phase1    atomic.Int64  // workers still in phase 1
	threads   int
}

// New creates a genome workload.
func New(big bool) *App {
	a := &App{segLen: 16}
	if big {
		a.geneLen = 8192
	} else {
		a.geneLen = 1024
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string { return "genome" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {
	a.threads = threads
	a.phase1.Store(int64(threads))
}

// encode packs gene[i:i+n] into one word (2 bits per nucleotide, n ≤ 31);
// a leading 1 bit keeps distinct lengths from colliding.
func encode(gene []byte, i, n int) stm.Word {
	v := stm.Word(1)
	for k := 0; k < n; k++ {
		v = v<<2 | stm.Word(gene[i+k])
	}
	return v
}

// Setup implements stamp.App: generate a gene whose (segLen-1)-grams are
// unique so that overlap matching reconstructs it exactly.
func (a *App) Setup(e stm.STM) error {
	rng := util.NewRand(0x9e0e)
	for attempt := 0; ; attempt++ {
		a.gene = make([]byte, a.geneLen)
		for i := range a.gene {
			a.gene[i] = byte(rng.Next() & 3)
		}
		grams := make(map[stm.Word]bool, a.geneLen)
		unique := true
		for i := 0; i+a.segLen-1 <= a.geneLen && unique; i++ {
			g := encode(a.gene, i, a.segLen-1)
			if grams[g] {
				unique = false
			}
			grams[g] = true
		}
		if unique {
			break
		}
		if attempt > 20 {
			return fmt.Errorf("genome: cannot generate collision-free gene")
		}
	}
	n := a.geneLen - a.segLen + 1
	a.segCodes = make([]stm.Word, n)
	for i := 0; i < n; i++ {
		a.segCodes[i] = encode(a.gene, i, a.segLen)
	}
	// Shuffle the segments: the sequencer must not rely on input order.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		a.segCodes[i], a.segCodes[j] = a.segCodes[j], a.segCodes[i]
	}
	th := e.NewThread(0)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		a.segSet = tmds.NewMap(tx, 1024)
		a.prefixMap = tmds.NewMap(tx, 1024)
		a.segList = tmds.NewList(tx)
	})
	return nil
}

func prefixOf(code stm.Word, segLen int) stm.Word {
	// Drop the last nucleotide, keeping the leading marker bit.
	return code >> 2
}

func suffixOf(code stm.Word, segLen int) stm.Word {
	// Drop the first nucleotide: clear down to 2*(segLen-1) payload bits,
	// then re-add the marker.
	payloadBits := uint(2 * (segLen - 1))
	mask := (stm.Word(1) << payloadBits) - 1
	return code&mask | 1<<payloadBits
}

// Work implements stamp.App.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	// Phase 1: segment deduplication. One transaction per segment: insert
	// into the segment set and the prefix index.
	for {
		i := a.cursor1.Add(1) - 1
		if i >= uint64(len(a.segCodes)) {
			break
		}
		code := a.segCodes[i]
		stm.AtomicVoid(th, func(tx stm.Tx) {
			if _, dup := a.segSet.Get(tx, code); dup {
				return
			}
			seg := tx.NewObject(sgFields)
			tx.WriteField(seg, sgCode, code)
			a.segSet.Put(tx, code, stm.Word(seg))
			a.prefixMap.Put(tx, prefixOf(code, a.segLen), stm.Word(seg))
			a.segList.Push(tx, stm.Word(seg))
		})
	}
	// All workers must finish phase 1 before matching begins.
	if a.phase1.Add(-1) > 0 {
		for a.phase1.Load() > 0 {
			util.SpinIterations(64)
		}
	}
	// Phase 2: overlap matching. For each unique segment, find the
	// segment whose (segLen-1)-prefix equals our suffix and claim it.
	for {
		i := a.cursor2.Add(1) - 1
		if i >= uint64(len(a.segCodes)) {
			break
		}
		code := a.segCodes[i]
		stm.AtomicVoid(th, func(tx stm.Tx) {
			segW, ok := a.segSet.Get(tx, code)
			if !ok {
				return
			}
			seg := stm.Handle(segW)
			if tx.ReadField(seg, sgNext) != 0 {
				return // a duplicate of this segment already matched
			}
			succW, ok := a.prefixMap.Get(tx, suffixOf(code, a.segLen))
			if !ok {
				return // the gene's last segment has no successor
			}
			succ := stm.Handle(succW)
			if succ == seg {
				return
			}
			if tx.ReadField(succ, sgClaimed) != 0 {
				return // already claimed by its (unique) predecessor
			}
			tx.WriteField(succ, sgClaimed, 1)
			tx.WriteField(seg, sgNext, succW)
		})
	}
}

// Check implements stamp.App: phase 3 (sequential reassembly) must
// reproduce the original gene exactly.
func (a *App) Check(e stm.STM) error {
	th := e.NewThread(stm.MaxThreads - 1)
	rebuilt, err := stm.AtomicErr(th, func(tx stm.Tx) ([]byte, error) {
		// The start segment is the unique unclaimed one.
		start := stm.Handle(0)
		starts := 0
		a.segList.Visit(tx, func(v stm.Word) {
			if tx.ReadField(stm.Handle(v), sgClaimed) == 0 {
				start = stm.Handle(v)
				starts++
			}
		})
		if starts != 1 {
			return nil, fmt.Errorf("genome: %d chain heads, want 1", starts)
		}
		// Decode the first segment fully, then one nucleotide per link.
		out := make([]byte, 0, len(a.gene))
		code := tx.ReadField(start, sgCode)
		for k := a.segLen - 1; k >= 0; k-- {
			out = append(out, byte(code>>(2*uint(k))&3))
		}
		n := start
		for {
			nx := tx.ReadRef(n, sgNext)
			if nx == 0 {
				break
			}
			out = append(out, byte(tx.ReadField(nx, sgCode)&3))
			n = nx
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	if len(rebuilt) != len(a.gene) {
		return fmt.Errorf("genome: rebuilt %d nucleotides, want %d", len(rebuilt), len(a.gene))
	}
	for i := range rebuilt {
		if rebuilt[i] != a.gene[i] {
			return fmt.Errorf("genome: mismatch at %d", i)
		}
	}
	return nil
}
