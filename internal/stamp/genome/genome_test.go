package genome

import (
	"testing"

	"swisstm/internal/swisstm"
)

func TestEncodeOverlap(t *testing.T) {
	gene := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	segLen := 4
	a := encode(gene, 0, segLen) // 0123
	b := encode(gene, 1, segLen) // 1230
	// suffix(a) = gene[1:4] must equal prefix(b) = gene[1:4].
	if suffixOf(a, segLen) != prefixOf(b, segLen) {
		t.Fatalf("overlap codes differ: %b vs %b", suffixOf(a, segLen), prefixOf(b, segLen))
	}
	// Non-adjacent segments must not match by construction here.
	c := encode(gene, 2, segLen)
	if suffixOf(a, segLen) == prefixOf(c, segLen) {
		t.Fatal("false overlap match")
	}
}

func TestEncodeMarkerBitSeparatesLengths(t *testing.T) {
	gene := []byte{0, 0, 0, 0}
	if encode(gene, 0, 3) == encode(gene, 0, 4) {
		t.Fatal("codes of different lengths must differ (marker bit)")
	}
}

func TestSequentialReassembly(t *testing.T) {
	app := New(false)
	e := swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14})
	if err := app.Setup(e); err != nil {
		t.Fatal(err)
	}
	app.Bind(1)
	th := e.NewThread(1)
	app.Work(e, th, 0, 1, nil)
	if err := app.Check(e); err != nil {
		t.Fatal(err)
	}
}
