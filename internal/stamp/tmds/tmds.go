// Package tmds provides the small transactional data structures the STAMP
// applications are built from: a chained hash map, a FIFO queue and a
// linked list, all expressed through the object API (and therefore usable
// on any word-based engine; STAMP does not run on RSTM, matching the
// paper).
package tmds

import (
	"swisstm/internal/stm"
)

// hashKey mixes a key into a bucket index.
func hashKey(k stm.Word, buckets uint32) uint32 {
	h := k * 0x9e3779b97f4a7c15
	return uint32(h>>33) % buckets
}

// Map is a transactional chained hash map from Word keys to Word values.
// The bucket array is one object with one head-handle field per bucket;
// entries are 3-field objects {key, val, next}.
type Map struct {
	buckets stm.Handle
	n       uint32
}

const (
	meKey uint32 = iota
	meVal
	meNext
)

// NewMap allocates a map with n buckets inside tx.
func NewMap(tx stm.Tx, n uint32) *Map {
	return &Map{buckets: tx.NewObject(n), n: n}
}

// Get returns the value stored under k.
func (m *Map) Get(tx stm.Tx, k stm.Word) (stm.Word, bool) {
	b := hashKey(k, m.n)
	e := stm.Handle(tx.ReadField(m.buckets, b))
	for e != 0 {
		if tx.ReadField(e, meKey) == k {
			return tx.ReadField(e, meVal), true
		}
		e = stm.Handle(tx.ReadField(e, meNext))
	}
	return 0, false
}

// Put inserts or overwrites k→v. It reports whether the key was new.
func (m *Map) Put(tx stm.Tx, k, v stm.Word) bool {
	b := hashKey(k, m.n)
	head := stm.Handle(tx.ReadField(m.buckets, b))
	for e := head; e != 0; e = stm.Handle(tx.ReadField(e, meNext)) {
		if tx.ReadField(e, meKey) == k {
			tx.WriteField(e, meVal, v)
			return false
		}
	}
	e := tx.NewObject(3)
	tx.WriteField(e, meKey, k)
	tx.WriteField(e, meVal, v)
	tx.WriteField(e, meNext, stm.Word(head))
	tx.WriteField(m.buckets, b, stm.Word(e))
	return true
}

// PutIfAbsent inserts k→v only when k is missing; it reports whether the
// insert happened.
func (m *Map) PutIfAbsent(tx stm.Tx, k, v stm.Word) bool {
	b := hashKey(k, m.n)
	head := stm.Handle(tx.ReadField(m.buckets, b))
	for e := head; e != 0; e = stm.Handle(tx.ReadField(e, meNext)) {
		if tx.ReadField(e, meKey) == k {
			return false
		}
	}
	e := tx.NewObject(3)
	tx.WriteField(e, meKey, k)
	tx.WriteField(e, meVal, v)
	tx.WriteField(e, meNext, stm.Word(head))
	tx.WriteField(m.buckets, b, stm.Word(e))
	return true
}

// Delete removes k, reporting whether it was present.
func (m *Map) Delete(tx stm.Tx, k stm.Word) bool {
	b := hashKey(k, m.n)
	prev := stm.Handle(0)
	e := stm.Handle(tx.ReadField(m.buckets, b))
	for e != 0 {
		next := stm.Handle(tx.ReadField(e, meNext))
		if tx.ReadField(e, meKey) == k {
			if prev == 0 {
				tx.WriteField(m.buckets, b, stm.Word(next))
			} else {
				tx.WriteField(prev, meNext, stm.Word(next))
			}
			return true
		}
		prev, e = e, next
	}
	return false
}

// Visit calls fn for every key/value pair (iteration order unspecified).
func (m *Map) Visit(tx stm.Tx, fn func(k, v stm.Word)) {
	for b := uint32(0); b < m.n; b++ {
		e := stm.Handle(tx.ReadField(m.buckets, b))
		for e != 0 {
			fn(tx.ReadField(e, meKey), tx.ReadField(e, meVal))
			e = stm.Handle(tx.ReadField(e, meNext))
		}
	}
}

// Queue is a transactional FIFO (linked nodes, head/tail anchor object).
type Queue struct {
	anchor stm.Handle // fields: head, tail, length
}

const (
	qHead uint32 = iota
	qTail
	qLen
)

const (
	qnVal uint32 = iota
	qnNext
)

// NewQueue allocates an empty queue inside tx.
func NewQueue(tx stm.Tx) *Queue {
	return &Queue{anchor: tx.NewObject(3)}
}

// Enqueue appends v.
func (q *Queue) Enqueue(tx stm.Tx, v stm.Word) {
	n := tx.NewObject(2)
	tx.WriteField(n, qnVal, v)
	tail := stm.Handle(tx.ReadField(q.anchor, qTail))
	if tail == 0 {
		tx.WriteField(q.anchor, qHead, stm.Word(n))
	} else {
		tx.WriteField(tail, qnNext, stm.Word(n))
	}
	tx.WriteField(q.anchor, qTail, stm.Word(n))
	tx.WriteField(q.anchor, qLen, tx.ReadField(q.anchor, qLen)+1)
}

// Dequeue removes and returns the head value (ok=false when empty).
func (q *Queue) Dequeue(tx stm.Tx) (stm.Word, bool) {
	head := stm.Handle(tx.ReadField(q.anchor, qHead))
	if head == 0 {
		return 0, false
	}
	next := tx.ReadField(head, qnNext)
	tx.WriteField(q.anchor, qHead, next)
	if next == 0 {
		tx.WriteField(q.anchor, qTail, 0)
	}
	tx.WriteField(q.anchor, qLen, tx.ReadField(q.anchor, qLen)-1)
	return tx.ReadField(head, qnVal), true
}

// Len returns the queue length.
func (q *Queue) Len(tx stm.Tx) int { return int(tx.ReadField(q.anchor, qLen)) }

// List is a transactional singly linked list used as an append-only log.
type List struct {
	anchor stm.Handle // fields: head, length
}

// NewList allocates an empty list inside tx.
func NewList(tx stm.Tx) *List {
	return &List{anchor: tx.NewObject(2)}
}

// Push prepends v.
func (l *List) Push(tx stm.Tx, v stm.Word) {
	n := tx.NewObject(2)
	tx.WriteField(n, 0, v)
	tx.WriteField(n, 1, tx.ReadField(l.anchor, 0))
	tx.WriteField(l.anchor, 0, stm.Word(n))
	tx.WriteField(l.anchor, 1, tx.ReadField(l.anchor, 1)+1)
}

// Len returns the list length.
func (l *List) Len(tx stm.Tx) int { return int(tx.ReadField(l.anchor, 1)) }

// Visit calls fn for each element, newest first.
func (l *List) Visit(tx stm.Tx, fn func(v stm.Word)) {
	n := stm.Handle(tx.ReadField(l.anchor, 0))
	for n != 0 {
		fn(tx.ReadField(n, 0))
		n = stm.Handle(tx.ReadField(n, 1))
	}
}
