package tmds

import (
	"sync"
	"testing"
	"testing/quick"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 18, TableBits: 12}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 18, TableBits: 12}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 18, TableBits: 12}) },
	}
}

func TestMapModel(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			e := factory()
			th := e.NewThread(0)
			check := func(ops []uint16) bool {
				// Fresh map and model per property invocation.
				m := stm.Atomic(th, func(tx stm.Tx) *Map { return NewMap(tx, 16) })
				model := map[stm.Word]stm.Word{}
				for _, op := range ops {
					k := stm.Word(op % 61)
					v := stm.Word(op)
					ok := true
					switch op % 3 {
					case 0:
						fresh := stm.Atomic(th, func(tx stm.Tx) bool { return m.Put(tx, k, v) })
						_, had := model[k]
						ok = fresh == !had
						model[k] = v
					case 1:
						res := stm.Atomic(th, func(tx stm.Tx) [2]stm.Word {
							got, found := m.Get(tx, k)
							f := stm.Word(0)
							if found {
								f = 1
							}
							return [2]stm.Word{got, f}
						})
						got, found := res[0], res[1] == 1
						want, had := model[k]
						ok = found == had && (!found || got == want)
					case 2:
						deleted := stm.Atomic(th, func(tx stm.Tx) bool { return m.Delete(tx, k) })
						_, had := model[k]
						ok = deleted == had
						delete(model, k)
					}
					if !ok {
						return false
					}
				}
				count := 0
				stm.AtomicVoid(th, func(tx stm.Tx) {
					count = 0
					m.Visit(tx, func(k, v stm.Word) { count++ })
				})
				return count == len(model)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	e := engines()["swisstm"]()
	th := e.NewThread(0)
	m := stm.Atomic(th, func(tx stm.Tx) *Map { return NewMap(tx, 4) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if !m.PutIfAbsent(tx, 1, 10) {
			t.Error("first PutIfAbsent should succeed")
		}
		if m.PutIfAbsent(tx, 1, 20) {
			t.Error("second PutIfAbsent should fail")
		}
		if v, _ := m.Get(tx, 1); v != 10 {
			t.Errorf("value overwritten: %d", v)
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	e := engines()["tinystm"]()
	th := e.NewThread(0)
	q := stm.Atomic(th, func(tx stm.Tx) *Queue { return NewQueue(tx) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := stm.Word(1); i <= 10; i++ {
			q.Enqueue(tx, i)
		}
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if q.Len(tx) != 10 {
			t.Fatalf("len = %d", q.Len(tx))
		}
		for i := stm.Word(1); i <= 10; i++ {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
			}
		}
		if _, ok := q.Dequeue(tx); ok {
			t.Fatal("dequeue from empty queue succeeded")
		}
	})
}

// TestQueueConcurrentDrain: N producers + N consumers; every element is
// consumed exactly once.
func TestQueueConcurrentDrain(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			e := factory()
			setup := e.NewThread(0)
			q := stm.Atomic(setup, func(tx stm.Tx) *Queue { return NewQueue(tx) })
			const items = 500
			stm.AtomicVoid(setup, func(tx stm.Tx) {
				for i := 1; i <= items; i++ {
					q.Enqueue(tx, stm.Word(i))
				}
			})
			var mu sync.Mutex
			got := map[stm.Word]int{}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := e.NewThread(id + 1)
					for {
						r := stm.Atomic(th, func(tx stm.Tx) [2]stm.Word {
							v, ok := q.Dequeue(tx)
							if !ok {
								return [2]stm.Word{0, 0}
							}
							return [2]stm.Word{v, 1}
						})
						if r[1] == 0 {
							return
						}
						v := r[0]
						mu.Lock()
						got[v]++
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			if len(got) != items {
				t.Fatalf("consumed %d distinct items, want %d", len(got), items)
			}
			for v, n := range got {
				if n != 1 {
					t.Fatalf("item %d consumed %d times", v, n)
				}
			}
		})
	}
}

func TestListPushVisit(t *testing.T) {
	e := engines()["tl2"]()
	th := e.NewThread(0)
	l := stm.Atomic(th, func(tx stm.Tx) *List { return NewList(tx) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		l.Push(tx, 1)
		l.Push(tx, 2)
		l.Push(tx, 3)
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if l.Len(tx) != 3 {
			t.Fatalf("len = %d", l.Len(tx))
		}
		var order []stm.Word
		l.Visit(tx, func(v stm.Word) { order = append(order, v) })
		if order[0] != 3 || order[1] != 2 || order[2] != 1 {
			t.Fatalf("visit order %v, want [3 2 1]", order)
		}
	})
}
