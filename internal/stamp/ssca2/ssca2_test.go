package ssca2_test

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

// engines is the paper's full line-up; ssca2 is written against the
// object API, so unlike the word-API STAMP harness it also runs on RSTM.
func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.ByName("polka")}) },
	}
}

// TestCorrectness runs ssca2 (graph kernel construction) at Test scale
// on every engine, sequentially and with 4 workers; Check validates the
// constructed adjacency structure against the sequential oracle.
func TestCorrectness(t *testing.T) {
	for ename, factory := range engines() {
		for _, threads := range []int{1, 4} {
			t.Run(ename+"/"+map[int]string{1: "seq", 4: "par"}[threads], func(t *testing.T) {
				app, err := stamp.New("ssca2", stamp.Test)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := stamp.Run(app, factory(), threads)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestRepeatedRunsAgree runs ssca2 twice on one engine and checks the
// commit totals agree on one thread: the workload's task partitioning is
// deterministic, so sequential commit counts must reproduce.
func TestRepeatedRunsAgree(t *testing.T) {
	run := func() uint64 {
		app, err := stamp.New("ssca2", stamp.Test)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := stamp.Run(app, engines()["swisstm"](), 1)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Commits
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sequential commit counts differ: %d vs %d", a, b)
	}
}
