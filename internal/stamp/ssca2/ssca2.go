// Package ssca2 re-implements the transactional kernel of STAMP's ssca2
// (Scalable Synthetic Compact Applications 2): parallel graph
// construction, where every edge insertion appends to the target node's
// adjacency array under a transaction. Transactions are tiny (a handful
// of reads and writes) and conflicts are rare — the workload where STMs
// are mostly measuring their per-access overhead.
package ssca2

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Node object fields: degree, then capacity slots for neighbor ids.
const ndDegree uint32 = 0
const ndSlot0 uint32 = 1

// App is one ssca2 instance.
type App struct {
	nNodes int
	nEdges int
	maxDeg int

	edges  [][2]int // generated edge list
	nodes  []stm.Handle
	cursor atomic.Uint64
}

// New creates an ssca2 workload.
func New(big bool) *App {
	a := &App{maxDeg: 32}
	if big {
		a.nNodes, a.nEdges = 4096, 16384
	} else {
		a.nNodes, a.nEdges = 512, 2048
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string { return "ssca2" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {}

// Setup implements stamp.App: generate an R-MAT-flavoured edge list
// (skewed endpoint distribution, like SSCA2's generator) and allocate
// node objects.
func (a *App) Setup(e stm.STM) error {
	rng := util.NewRand(0x55ca2)
	pick := func() int {
		// Skewed: half the draws land in the first quarter of the ids.
		if rng.Intn(2) == 0 {
			return rng.Intn(a.nNodes / 4)
		}
		return rng.Intn(a.nNodes)
	}
	deg := make([]int, a.nNodes)
	for len(a.edges) < a.nEdges {
		u, v := pick(), pick()
		if u == v || deg[u] >= a.maxDeg {
			continue
		}
		deg[u]++
		a.edges = append(a.edges, [2]int{u, v})
	}
	th := e.NewThread(0)
	a.nodes = make([]stm.Handle, a.nNodes)
	const batch = 128
	for i := 0; i < a.nNodes; i += batch {
		i := i
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := i; k < i+batch && k < a.nNodes; k++ {
				a.nodes[k] = tx.NewObject(uint32(1 + a.maxDeg))
			}
		})
	}
	return nil
}

// Work implements stamp.App: one transaction per edge insertion.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	for {
		i := a.cursor.Add(1) - 1
		if i >= uint64(len(a.edges)) {
			return
		}
		u, v := a.edges[i][0], a.edges[i][1]
		h := a.nodes[u]
		stm.AtomicVoid(th, func(tx stm.Tx) {
			d := tx.ReadField(h, ndDegree)
			tx.WriteField(h, ndSlot0+uint32(d), stm.Word(v))
			tx.WriteField(h, ndDegree, d+1)
		})
	}
}

// Check implements stamp.App: total degree equals the edge count and each
// node's multiset of neighbors matches the input edge list.
func (a *App) Check(e stm.STM) error {
	want := make([]map[int]int, a.nNodes)
	for i := range want {
		want[i] = map[int]int{}
	}
	for _, ed := range a.edges {
		want[ed[0]][ed[1]]++
	}
	th := e.NewThread(stm.MaxThreads - 1)
	total := 0
	for u := 0; u < a.nNodes; u++ {
		u := u
		deg, err := stm.AtomicROErr(th, func(tx stm.TxRO) (int, error) {
			d := int(tx.ReadField(a.nodes[u], ndDegree))
			got := map[int]int{}
			for s := 0; s < d; s++ {
				got[int(tx.ReadField(a.nodes[u], ndSlot0+uint32(s)))]++
			}
			for v, n := range want[u] {
				if got[v] != n {
					return 0, fmt.Errorf("ssca2: node %d neighbor %d count %d, want %d", u, v, got[v], n)
				}
			}
			if len(got) != len(want[u]) {
				return 0, fmt.Errorf("ssca2: node %d has %d distinct neighbors, want %d", u, len(got), len(want[u]))
			}
			return d, nil
		})
		if err != nil {
			return err
		}
		total += deg
	}
	if total != len(a.edges) {
		return fmt.Errorf("ssca2: total degree %d, want %d", total, len(a.edges))
	}
	return nil
}
