// Package labyrinth re-implements STAMP's labyrinth, which "uses the same
// algorithm as Lee-TM" (paper §2.2): transactional path routing on a
// grid. It wraps the Lee router (internal/leetm) with a denser synthetic
// maze than the Lee-TM boards, matching labyrinth's higher-contention
// profile.
package labyrinth

import (
	"fmt"

	"swisstm/internal/leetm"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// App is one labyrinth instance.
type App struct {
	board  leetm.Board
	router *leetm.Router
}

// New creates a labyrinth workload.
func New(big bool) *App {
	if big {
		return &App{board: leetm.GenBoard("labyrinth", 128, 128, 300, 8, 60, 0x1ab1)}
	}
	return &App{board: leetm.GenBoard("labyrinth", 32, 32, 28, 4, 16, 0x1ab1)}
}

// Name implements stamp.App.
func (a *App) Name() string { return "labyrinth" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {}

// Setup implements stamp.App.
func (a *App) Setup(e stm.STM) error {
	a.router = leetm.Setup(e, a.board)
	return nil
}

// Work implements stamp.App.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	a.router.Work(e, th, worker, threads, rng)
}

// Check implements stamp.App.
func (a *App) Check(e stm.STM) error {
	if done := a.router.Routed.Load() + a.router.Failed.Load(); done != uint64(len(a.board.Nets)) {
		return fmt.Errorf("labyrinth: %d nets processed, want %d", done, len(a.board.Nets))
	}
	return a.router.Check()
}
