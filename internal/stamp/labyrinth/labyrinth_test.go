package labyrinth_test

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

// engines is the paper's full line-up; labyrinth is written against the
// object API, so unlike the word-API STAMP harness it also runs on RSTM.
func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.ByName("polka")}) },
	}
}

// TestCorrectness runs labyrinth (3-D maze routing with long, big-
// footprint transactions) at Test scale on every engine, sequentially
// and with 4 workers; Check verifies every routed path is connected,
// in-bounds and non-overlapping.
func TestCorrectness(t *testing.T) {
	for ename, factory := range engines() {
		for _, threads := range []int{1, 4} {
			t.Run(ename+"/"+map[int]string{1: "seq", 4: "par"}[threads], func(t *testing.T) {
				app, err := stamp.New("labyrinth", stamp.Test)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := stamp.Run(app, factory(), threads)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestParallelContentionRetries runs labyrinth with heavy oversubscription
// on the eager engine: long routing transactions over a shared grid must
// still produce a valid maze when aborts occur.
func TestParallelContentionRetries(t *testing.T) {
	app, err := stamp.New("labyrinth", stamp.Test)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := stamp.Run(app, engines()["tinystm"](), 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Commits == 0 {
		t.Fatal("no transactions committed")
	}
}
