// Package stamp ties together the Go re-implementations of the STAMP 0.9.9
// benchmark suite (Cao Minh et al., IISWC 2008) used in the paper's
// Figure 3 (all ten workloads), Figure 11 (intruder) and Table 2.
//
// Every application preserves its original's transactional access pattern
// — what is read, what is written, how long transactions are, and where
// the contention hot spots sit — while generating its input data
// synthetically with fixed seeds (the original input files are not
// redistributable; see DESIGN.md §2). Each app validates its own output
// against a sequential oracle after the run.
package stamp

import (
	"fmt"
	"sync"

	"swisstm/internal/stamp/bayes"
	"swisstm/internal/stamp/genome"
	"swisstm/internal/stamp/intruder"
	"swisstm/internal/stamp/kmeans"
	"swisstm/internal/stamp/labyrinth"
	"swisstm/internal/stamp/ssca2"
	"swisstm/internal/stamp/vacation"
	"swisstm/internal/stamp/yada"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// App is one STAMP workload instance. Apps are single-use: Setup, then
// Bind with the worker count, then Work from every worker, then Check.
type App interface {
	Name() string
	Setup(e stm.STM) error
	// Bind fixes the worker count before the run (kmeans' barrier and
	// vacation's task channel need it; a no-op elsewhere).
	Bind(threads int)
	// Work is the fixed-work body for one worker (harness.WorkFn shape).
	Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand)
	Check(e stm.STM) error
}

// Run executes one workload on engine e with the given worker count and
// returns the aggregated statistics. It is the fixed-work protocol every
// experiment driver uses.
func Run(app App, e stm.STM, threads int) (stm.Stats, error) {
	return RunSeeded(app, e, threads, 0)
}

// RunSeeded is Run with the per-worker RNG streams derived from seed,
// so a seeded run replays the same operation sequences (seed 0 keeps
// the legacy fixed per-worker constants).
func RunSeeded(app App, e stm.STM, threads int, seed uint64) (stm.Stats, error) {
	if err := app.Setup(e); err != nil {
		return stm.Stats{}, fmt.Errorf("%s setup: %w", app.Name(), err)
	}
	app.Bind(threads)
	var wg sync.WaitGroup
	stats := make([]stm.Stats, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			th := e.NewThread(worker + 1)
			app.Work(e, th, worker, threads, util.NewRand(seed^(uint64(worker)*0x9e3779b9+13)))
			stats[worker] = th.Stats()
		}(i)
	}
	wg.Wait()
	var total stm.Stats
	for _, s := range stats {
		total.Add(s)
	}
	if err := app.Check(e); err != nil {
		return total, err
	}
	return total, nil
}

// Scale selects input sizes: Test keeps unit tests fast; Bench is the
// size the experiment drivers use.
type Scale int

const (
	Test Scale = iota
	Bench
)

// Workloads lists the paper's ten STAMP workloads in Figure 3's order.
var Workloads = []string{
	"bayes", "genome", "intruder", "kmeans-high", "kmeans-low",
	"labyrinth", "ssca2", "vacation-high", "vacation-low", "yada",
}

// New constructs a fresh workload instance by name.
func New(name string, scale Scale) (App, error) {
	big := scale == Bench
	switch name {
	case "bayes":
		return bayes.New(big), nil
	case "genome":
		return genome.New(big), nil
	case "intruder":
		return intruder.New(big), nil
	case "kmeans-high":
		return kmeans.New(big, true), nil
	case "kmeans-low":
		return kmeans.New(big, false), nil
	case "labyrinth":
		return labyrinth.New(big), nil
	case "ssca2":
		return ssca2.New(big), nil
	case "vacation-high":
		return vacation.New(big, true), nil
	case "vacation-low":
		return vacation.New(big, false), nil
	case "yada":
		return yada.New(big), nil
	}
	return nil, fmt.Errorf("stamp: unknown workload %q", name)
}
