// Package kmeans re-implements STAMP's kmeans: iterative K-means
// clustering where each point's assignment to its nearest center runs as
// a transaction that updates the shared per-cluster accumulators. The
// high-contention variant uses few clusters (every transaction fights
// over the same handful of accumulator objects); the low-contention
// variant uses many.
package kmeans

import (
	"fmt"
	"sync/atomic"

	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// App is one kmeans instance.
type App struct {
	high    bool
	nPoints int
	dims    int
	k       int
	maxIter int

	points  [][]int64    // immutable input, fixed-point coordinates
	centers [][]int64    // current centers; rewritten between barriers
	acc     []stm.Handle // per-cluster accumulator: fields [count, sum0..sumD-1]
	barrier *util.Barrier
	parties atomic.Int32
	cursor  atomic.Uint64 // point cursor within the current iteration
	moved   atomic.Uint64 // points that changed assignment this iteration
	done    atomic.Bool
	assign  []int32 // current assignment (plain memory; one writer per point)
	initial [][]int64
	iters   int
}

// New creates a kmeans workload. high selects the high-contention variant
// (fewer clusters).
func New(big, high bool) *App {
	a := &App{high: high, dims: 8, maxIter: 12}
	if big {
		a.nPoints = 8192
	} else {
		a.nPoints = 1024
	}
	if high {
		a.k = 4 // few clusters: heavy W/W contention on accumulators
	} else {
		a.k = 24
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string {
	if a.high {
		return "kmeans-high"
	}
	return "kmeans-low"
}

// Setup implements stamp.App: generate clustered points and allocate the
// transactional accumulators.
func (a *App) Setup(e stm.STM) error {
	rng := util.NewRand(0x6b6d)
	a.points = make([][]int64, a.nPoints)
	for i := range a.points {
		p := make([]int64, a.dims)
		c := i % a.k // true cluster
		for d := range p {
			p[d] = int64(c*1000) + int64(rng.Intn(200)) - 100
		}
		a.points[i] = p
	}
	a.centers = make([][]int64, a.k)
	a.initial = make([][]int64, a.k)
	for c := range a.centers {
		ctr := make([]int64, a.dims)
		p := a.points[rng.Intn(a.nPoints)]
		copy(ctr, p)
		a.centers[c] = ctr
		a.initial[c] = append([]int64(nil), ctr...)
	}
	a.assign = make([]int32, a.nPoints)
	for i := range a.assign {
		a.assign[i] = -1
	}
	th := e.NewThread(0)
	a.acc = make([]stm.Handle, a.k)
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for c := range a.acc {
			a.acc[c] = tx.NewObject(uint32(1 + a.dims))
		}
	})
	return nil
}

func (a *App) nearest(p []int64) int {
	best, bestD := 0, int64(1)<<62
	for c := range a.centers {
		var d int64
		for i, v := range p {
			dv := v - a.centers[c][i]
			d += dv * dv
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Work implements stamp.App. All workers iterate in lock-step: assign
// points transactionally, then worker 0 recomputes centers.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	// The first worker to arrive sizes the barrier for this run.
	if a.barrier == nil {
		panic("kmeans: Bind(threads) must be called before Work")
	}
	for iter := 0; ; iter++ {
		if a.done.Load() {
			return
		}
		// Phase 1: each worker claims chunks of points and adds them to
		// their nearest center's accumulator, one transaction per chunk
		// (STAMP's kmeans batches the same way).
		const chunk = 16
		for {
			start := a.cursor.Add(chunk) - chunk
			if start >= uint64(a.nPoints) {
				break
			}
			end := start + chunk
			if end > uint64(a.nPoints) {
				end = uint64(a.nPoints)
			}
			moved := stm.Atomic(th, func(tx stm.Tx) int {
				moved := 0
				for i := start; i < end; i++ {
					p := a.points[i]
					c := a.nearest(p)
					if int32(c) != a.assign[i] {
						moved++
					}
					h := a.acc[c]
					tx.WriteField(h, 0, tx.ReadField(h, 0)+1)
					for d := 0; d < a.dims; d++ {
						f := uint32(1 + d)
						tx.WriteField(h, f, tx.ReadField(h, f)+stm.Word(uint64(p[d])))
					}
				}
				return moved
			})
			// Assignment bookkeeping outside the transaction (plain
			// memory, single writer per point since chunks are disjoint).
			for i := start; i < end; i++ {
				c := a.nearest(a.points[i])
				if int32(c) != a.assign[i] {
					a.assign[i] = int32(c)
				}
			}
			a.moved.Add(uint64(moved))
		}
		a.barrier.Await()
		// Phase 2: worker 0 folds the accumulators into new centers.
		if worker == 0 {
			stm.AtomicVoid(th, func(tx stm.Tx) {
				for c := 0; c < a.k; c++ {
					h := a.acc[c]
					n := int64(tx.ReadField(h, 0))
					if n > 0 {
						for d := 0; d < a.dims; d++ {
							sum := int64(tx.ReadField(h, uint32(1+d)))
							a.centers[c][d] = sum / n
						}
					}
					tx.WriteField(h, 0, 0)
					for d := 0; d < a.dims; d++ {
						tx.WriteField(h, uint32(1+d), 0)
					}
				}
			})
			a.iters = iter + 1
			if a.moved.Load() == 0 || iter+1 >= a.maxIter {
				a.done.Store(true)
			}
			a.moved.Store(0)
			a.cursor.Store(0)
		}
		a.barrier.Await()
	}
}

// Bind fixes the worker count before the run (the barrier needs it).
func (a *App) Bind(threads int) { a.barrier = util.NewBarrier(threads) }

// Check implements stamp.App by replaying Lloyd's iterations sequentially
// from the recorded initial centers. Integer accumulation is commutative,
// so the parallel transactional run must produce *exactly* the same
// centers after the same number of iterations — any divergence means lost
// or duplicated accumulator updates (an atomicity bug).
func (a *App) Check(e stm.STM) error {
	if a.iters == 0 {
		return fmt.Errorf("kmeans: no iterations ran")
	}
	centers := make([][]int64, a.k)
	for c := range centers {
		centers[c] = append([]int64(nil), a.initial[c]...)
	}
	nearest := func(p []int64) int {
		best, bestD := 0, int64(1)<<62
		for c := range centers {
			var d int64
			for i, v := range p {
				dv := v - centers[c][i]
				d += dv * dv
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		return best
	}
	for it := 0; it < a.iters; it++ {
		count := make([]int64, a.k)
		sums := make([][]int64, a.k)
		for c := range sums {
			sums[c] = make([]int64, a.dims)
		}
		for _, p := range a.points {
			c := nearest(p)
			count[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := 0; c < a.k; c++ {
			if count[c] > 0 {
				for d := 0; d < a.dims; d++ {
					centers[c][d] = sums[c][d] / count[c]
				}
			}
		}
	}
	for c := range centers {
		for d := range centers[c] {
			if centers[c][d] != a.centers[c][d] {
				return fmt.Errorf("kmeans: center %d dim %d = %d, oracle %d (after %d iters)",
					c, d, a.centers[c][d], centers[c][d], a.iters)
			}
		}
	}
	return nil
}
