package kmeans_test

import (
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

// engines is the paper's full line-up; kmeans is written against the
// object API, so unlike the word-API STAMP harness it also runs on RSTM.
func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 21, TableBits: 15}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.ByName("polka")}) },
	}
}

// TestVariantsDiffer checks the contention knob: the high-contention
// variant must use fewer clusters than the low-contention one.
func TestVariantsDiffer(t *testing.T) {
	hi, err := stamp.New("kmeans-high", stamp.Test)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := stamp.New("kmeans-low", stamp.Test)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Name() != "kmeans-high" || lo.Name() != "kmeans-low" {
		t.Fatalf("variant names wrong: %q, %q", hi.Name(), lo.Name())
	}
}

// TestCorrectness runs both kmeans variants at Test scale on every
// engine, sequentially and with 4 workers, validating the clustering
// against the app's sequential oracle.
func TestCorrectness(t *testing.T) {
	for _, variant := range []string{"kmeans-high", "kmeans-low"} {
		for ename, factory := range engines() {
			for _, threads := range []int{1, 4} {
				t.Run(variant+"/"+ename+"/"+map[int]string{1: "seq", 4: "par"}[threads], func(t *testing.T) {
					app, err := stamp.New(variant, stamp.Test)
					if err != nil {
						t.Fatal(err)
					}
					stats, err := stamp.Run(app, factory(), threads)
					if err != nil {
						t.Fatal(err)
					}
					if stats.Commits == 0 {
						t.Fatal("no transactions committed")
					}
				})
			}
		}
	}
}
