package yada

import (
	"testing"

	"swisstm/internal/swisstm"
	"swisstm/internal/util"
)

func TestNeighborsShape(t *testing.T) {
	a := New(false)
	// Corner cell: 3 neighbors; edge: 5; interior: 8.
	if got := len(a.neighbors(0)); got != 3 {
		t.Fatalf("corner neighbors = %d, want 3", got)
	}
	if got := len(a.neighbors(1)); got != 5 {
		t.Fatalf("edge neighbors = %d, want 5", got)
	}
	if got := len(a.neighbors(a.w + 1)); got != 8 {
		t.Fatalf("interior neighbors = %d, want 8", got)
	}
}

// TestRefinementTerminates checks the termination argument: total badness
// strictly decreases per cavity refinement, so the queue must drain.
func TestRefinementTerminates(t *testing.T) {
	a := New(false)
	e := swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14})
	if err := a.Setup(e); err != nil {
		t.Fatal(err)
	}
	a.Bind(1)
	th := e.NewThread(1)
	a.Work(e, th, 0, 1, util.NewRand(1))
	if err := a.Check(e); err != nil {
		t.Fatal(err)
	}
}
