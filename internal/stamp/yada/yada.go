// Package yada re-implements the transactional skeleton of STAMP's yada
// (Yet Another Delaunay Application): work-queue-driven mesh refinement.
//
// The original refines a Delaunay triangulation by retriangulating the
// cavity around each "bad" triangle. Full incremental Delaunay geometry
// is orthogonal to the STM behaviour the paper measures, so this version
// keeps yada's transactional shape exactly — pop a bad element from a
// shared queue, read its cavity (the element plus its neighborhood),
// rewrite most of the cavity, and push any newly-bad elements back on the
// queue — over a simpler refinement rule: element "badness" is split
// among its mesh neighbors until every element is below threshold. The
// substitution is documented in DESIGN.md §2.
package yada

import (
	"fmt"

	"swisstm/internal/stamp/tmds"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// App is one yada instance. The mesh is a W×H grid of elements; each
// element is a 2-field object {badness, queued}.
const (
	elBad uint32 = iota
	elQueued
	elFields
)

// App is one yada instance.
type App struct {
	w, h      int
	threshold stm.Word
	seeds     int

	cells []stm.Handle
	queue *tmds.Queue
}

// New creates a yada workload.
func New(big bool) *App {
	a := &App{threshold: 8}
	if big {
		a.w, a.h, a.seeds = 64, 64, 192
	} else {
		a.w, a.h, a.seeds = 24, 24, 40
	}
	return a
}

// Name implements stamp.App.
func (a *App) Name() string { return "yada" }

// Bind implements stamp.App.
func (a *App) Bind(threads int) {}

// Setup implements stamp.App: seed random elements with high badness and
// enqueue them.
func (a *App) Setup(e stm.STM) error {
	th := e.NewThread(0)
	a.cells = make([]stm.Handle, a.w*a.h)
	const batch = 128
	for i := 0; i < len(a.cells); i += batch {
		i := i
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := i; k < i+batch && k < len(a.cells); k++ {
				a.cells[k] = tx.NewObject(elFields)
			}
		})
	}
	rng := util.NewRand(0x9ada)
	stm.AtomicVoid(th, func(tx stm.Tx) { a.queue = tmds.NewQueue(tx) })
	seeded := map[int]bool{}
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for s := 0; s < a.seeds; s++ {
			c := rng.Intn(len(a.cells))
			if seeded[c] {
				continue
			}
			seeded[c] = true
			tx.WriteField(a.cells[c], elBad, a.threshold*stm.Word(4+rng.Intn(60)))
			tx.WriteField(a.cells[c], elQueued, 1)
			a.queue.Enqueue(tx, stm.Word(c))
		}
	})
	return nil
}

func (a *App) neighbors(c int) []int {
	x, y := c%a.w, c/a.w
	out := make([]int, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx >= 0 && ny >= 0 && nx < a.w && ny < a.h {
				out = append(out, ny*a.w+nx)
			}
		}
	}
	return out
}

// Work implements stamp.App: the refinement loop. Each transaction
// processes one bad element's cavity. Refinement terminates because the
// integer division strictly reduces the total badness.
func (a *App) Work(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
	for {
		empty := stm.Atomic(th, func(tx stm.Tx) bool {
			v, ok := a.queue.Dequeue(tx)
			if !ok {
				return true
			}
			c := int(v)
			cell := a.cells[c]
			tx.WriteField(cell, elQueued, 0)
			bad := tx.ReadField(cell, elBad)
			if bad < a.threshold {
				return false // stale queue entry; already refined
			}
			// Retriangulate the cavity: the element keeps a fraction,
			// the rest spills into the neighborhood (reads + writes of
			// the whole cavity, like the original's cavity rebuild).
			nbs := a.neighbors(c)
			share := bad / stm.Word(len(nbs)+2)
			tx.WriteField(cell, elBad, share)
			if share >= a.threshold {
				// Still bad after refinement (very skinny cavity):
				// back on the queue it goes, like the original's
				// re-badded triangles.
				tx.WriteField(cell, elQueued, 1)
				a.queue.Enqueue(tx, stm.Word(c))
			}
			for _, nb := range nbs {
				h := a.cells[nb]
				nb2 := tx.ReadField(h, elBad) + share/2
				tx.WriteField(h, elBad, nb2)
				if nb2 >= a.threshold && tx.ReadField(h, elQueued) == 0 {
					tx.WriteField(h, elQueued, 1)
					a.queue.Enqueue(tx, stm.Word(nb))
				}
			}
			return false
		})
		if empty {
			return
		}
	}
}

// Check implements stamp.App: the queue is empty and no element is bad.
func (a *App) Check(e stm.STM) error {
	th := e.NewThread(stm.MaxThreads - 1)
	if n := stm.Atomic(th, func(tx stm.Tx) int { return a.queue.Len(tx) }); n != 0 {
		return fmt.Errorf("yada: queue still holds %d elements", n)
	}
	var err error
	for i, cell := range a.cells {
		i, cell := i, cell
		stm.AtomicVoid(th, func(tx stm.Tx) {
			if b := tx.ReadField(cell, elBad); b >= a.threshold {
				err = fmt.Errorf("yada: element %d still bad (%d ≥ %d)", i, b, a.threshold)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
