package rbtree

import (
	"fmt"
	"sync"
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// TestBulkTxStress runs bench7's structure-mod shape — transactions that
// delete and insert many keys at once plus a hot-spot counter — against
// concurrent readers on RSTM, with periodic invariant checks.
func TestBulkTxStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stress test")
	}
	for round := 0; round < 5; round++ {
		e := rstm.New(rstm.Config{Acquire: rstm.Eager, Manager: cm.NewPolka()})
		setup := e.NewThread(0)
		tree := New(setup)
		var counter stm.Handle
		stm.AtomicVoid(setup, func(tx stm.Tx) { counter = tx.NewObject(2) })
		const groups = 24
		const perGroup = 10
		for g := 0; g < groups; g++ {
			g := g
			stm.AtomicVoid(setup, func(tx stm.Tx) {
				for i := 0; i < perGroup; i++ {
					tree.Insert(tx, stm.Word(g*1000+i+1), 1)
				}
			})
		}
		var wg sync.WaitGroup
		fail := make(chan string, 16)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						fail <- fmt.Sprint(r)
					}
				}()
				th := e.NewThread(id + 1)
				rng := util.NewRand(uint64(id)*131 + uint64(round) + 1)
				next := stm.Word(1000000 + id*100000)
				for n := 0; n < 1500; n++ {
					if rng.Intn(100) < 20 {
						// SM-like: replace a whole group in one tx.
						g := rng.Intn(groups)
						fresh := next
						next += perGroup
						stm.AtomicVoid(th, func(tx stm.Tx) {
							// Hot-spot counter: every SM transaction
							// conflicts with every other (bench7's id
							// counters do the same).
							tx.WriteField(counter, 0, tx.ReadField(counter, 0)+1)
							for i := 0; i < perGroup; i++ {
								tree.Delete(tx, stm.Word(g*1000+i+1))
							}
							for i := stm.Word(0); i < perGroup; i++ {
								tree.Insert(tx, fresh+i, 1)
							}
							tx.WriteField(counter, 1, tx.ReadField(counter, 1)+1)
						})
					} else {
						k := stm.Word(rng.Intn(groups*1000) + 1)
						stm.AtomicVoid(th, func(tx stm.Tx) { tree.Lookup(tx, k) })
					}
					if n%500 == 499 {
						stm.AtomicVoid(th, func(tx stm.Tx) { tree.CheckInvariants(tx) })
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case msg := <-fail:
			t.Fatalf("round %d: %s", round, msg)
		default:
		}
		stm.AtomicVoid(setup, func(tx stm.Tx) { tree.CheckInvariants(tx) })
	}
}
