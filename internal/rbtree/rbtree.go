// Package rbtree implements the transactional red-black tree
// microbenchmark — the workload with the shortest, simplest transactions
// in the paper's evaluation (Figure 5: range 16384, 20% updates; also
// Figure 10's substrate for the contention-manager ablation).
//
// The tree is written against the object API, so it runs on all four
// engines, including object-based RSTM; each node is one 6-field object.
// The algorithms are the textbook insert/delete with parent pointers and
// rebalancing fix-ups, executed entirely inside the caller's transaction.
package rbtree

import "swisstm/internal/stm"

// Node field indices.
const (
	fKey uint32 = iota
	fVal
	fLeft
	fRight
	fParent
	fColor
	nodeFields
)

const (
	red   stm.Word = 0
	black stm.Word = 1
)

// nilH is the nil node handle.
const nilH stm.Handle = 0

// Tree is a transactional red-black tree mapping uint64 keys to uint64
// values. The root pointer lives in a 1-field holder object so that the
// tree itself is reachable transactionally.
type Tree struct {
	holder stm.Handle
}

// New creates an empty tree using th for the allocation transaction.
func New(th stm.Thread) *Tree {
	return &Tree{holder: stm.Atomic(th, func(tx stm.Tx) stm.Handle { return tx.NewObject(1) })}
}

func (t *Tree) root(tx stm.TxRO) stm.Handle     { return tx.ReadRef(t.holder, 0) }
func (t *Tree) setRoot(tx stm.Tx, h stm.Handle) { tx.WriteRef(t.holder, 0, h) }

// Lookup returns the value stored under key.
func (t *Tree) Lookup(tx stm.TxRO, key stm.Word) (stm.Word, bool) {
	n := t.root(tx)
	for n != nilH {
		k := tx.ReadField(n, fKey)
		switch {
		case key == k:
			return tx.ReadField(n, fVal), true
		case key < k:
			n = tx.ReadRef(n, fLeft)
		default:
			n = tx.ReadRef(n, fRight)
		}
	}
	return 0, false
}

// Min returns the smallest key in the tree (ok=false when empty).
func (t *Tree) Min(tx stm.TxRO) (stm.Word, bool) {
	n := t.root(tx)
	if n == nilH {
		return 0, false
	}
	for {
		l := tx.ReadRef(n, fLeft)
		if l == nilH {
			return tx.ReadField(n, fKey), true
		}
		n = l
	}
}

// RangeCount counts keys in [lo, hi] by in-order traversal — used by the
// STMBench7-style index scans and by tests.
func (t *Tree) RangeCount(tx stm.TxRO, lo, hi stm.Word) int {
	return t.rangeCount(tx, t.root(tx), lo, hi)
}

func (t *Tree) rangeCount(tx stm.TxRO, n stm.Handle, lo, hi stm.Word) int {
	if n == nilH {
		return 0
	}
	k := tx.ReadField(n, fKey)
	cnt := 0
	if lo < k {
		cnt += t.rangeCount(tx, tx.ReadRef(n, fLeft), lo, hi)
	}
	if lo <= k && k <= hi {
		cnt++
	}
	if k < hi {
		cnt += t.rangeCount(tx, tx.ReadRef(n, fRight), lo, hi)
	}
	return cnt
}

// Visit calls fn for every (key, value) pair in ascending key order.
func (t *Tree) Visit(tx stm.TxRO, fn func(k, v stm.Word)) {
	t.visit(tx, t.root(tx), fn)
}

func (t *Tree) visit(tx stm.TxRO, n stm.Handle, fn func(k, v stm.Word)) {
	if n == nilH {
		return
	}
	t.visit(tx, tx.ReadRef(n, fLeft), fn)
	fn(tx.ReadField(n, fKey), tx.ReadField(n, fVal))
	t.visit(tx, tx.ReadRef(n, fRight), fn)
}

// Insert adds key→val, returning false (and updating the value) when the
// key already existed.
func (t *Tree) Insert(tx stm.Tx, key, val stm.Word) bool {
	parent := nilH
	n := t.root(tx)
	for n != nilH {
		k := tx.ReadField(n, fKey)
		if key == k {
			tx.WriteField(n, fVal, val)
			return false
		}
		parent = n
		if key < k {
			n = tx.ReadRef(n, fLeft)
		} else {
			n = tx.ReadRef(n, fRight)
		}
	}
	node := tx.NewObject(nodeFields)
	tx.WriteField(node, fKey, key)
	tx.WriteField(node, fVal, val)
	tx.WriteRef(node, fParent, parent)
	tx.WriteField(node, fColor, red)
	if parent == nilH {
		t.setRoot(tx, node)
	} else if key < tx.ReadField(parent, fKey) {
		tx.WriteRef(parent, fLeft, node)
	} else {
		tx.WriteRef(parent, fRight, node)
	}
	t.insertFixup(tx, node)
	return true
}

func (t *Tree) rotateLeft(tx stm.Tx, x stm.Handle) {
	y := tx.ReadRef(x, fRight)
	yl := tx.ReadRef(y, fLeft)
	tx.WriteRef(x, fRight, yl)
	if yl != nilH {
		tx.WriteRef(yl, fParent, x)
	}
	xp := tx.ReadRef(x, fParent)
	tx.WriteRef(y, fParent, xp)
	if xp == nilH {
		t.setRoot(tx, y)
	} else if tx.ReadRef(xp, fLeft) == x {
		tx.WriteRef(xp, fLeft, y)
	} else {
		tx.WriteRef(xp, fRight, y)
	}
	tx.WriteRef(y, fLeft, x)
	tx.WriteRef(x, fParent, y)
}

func (t *Tree) rotateRight(tx stm.Tx, x stm.Handle) {
	y := tx.ReadRef(x, fLeft)
	yr := tx.ReadRef(y, fRight)
	tx.WriteRef(x, fLeft, yr)
	if yr != nilH {
		tx.WriteRef(yr, fParent, x)
	}
	xp := tx.ReadRef(x, fParent)
	tx.WriteRef(y, fParent, xp)
	if xp == nilH {
		t.setRoot(tx, y)
	} else if tx.ReadRef(xp, fRight) == x {
		tx.WriteRef(xp, fRight, y)
	} else {
		tx.WriteRef(xp, fLeft, y)
	}
	tx.WriteRef(y, fRight, x)
	tx.WriteRef(x, fParent, y)
}

func colorOf(tx stm.TxRO, n stm.Handle) stm.Word {
	if n == nilH {
		return black
	}
	return tx.ReadField(n, fColor)
}

func setColor(tx stm.Tx, n stm.Handle, c stm.Word) {
	if n != nilH {
		tx.WriteField(n, fColor, c)
	}
}

func (t *Tree) insertFixup(tx stm.Tx, z stm.Handle) {
	for {
		zp := tx.ReadRef(z, fParent)
		if zp == nilH || colorOf(tx, zp) == black {
			break
		}
		zpp := tx.ReadRef(zp, fParent)
		if zpp == nilH {
			break
		}
		if tx.ReadRef(zpp, fLeft) == zp {
			u := tx.ReadRef(zpp, fRight) // uncle
			if colorOf(tx, u) == red {
				setColor(tx, zp, black)
				setColor(tx, u, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if tx.ReadRef(zp, fRight) == z {
				z = zp
				t.rotateLeft(tx, z)
				zp = tx.ReadRef(z, fParent)
				zpp = tx.ReadRef(zp, fParent)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.rotateRight(tx, zpp)
		} else {
			u := tx.ReadRef(zpp, fLeft)
			if colorOf(tx, u) == red {
				setColor(tx, zp, black)
				setColor(tx, u, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if tx.ReadRef(zp, fLeft) == z {
				z = zp
				t.rotateRight(tx, z)
				zp = tx.ReadRef(z, fParent)
				zpp = tx.ReadRef(zp, fParent)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.rotateLeft(tx, zpp)
		}
	}
	setColor(tx, t.root(tx), black)
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(tx stm.Tx, key stm.Word) bool {
	z := t.root(tx)
	for z != nilH {
		k := tx.ReadField(z, fKey)
		if key == k {
			break
		}
		if key < k {
			z = tx.ReadRef(z, fLeft)
		} else {
			z = tx.ReadRef(z, fRight)
		}
	}
	if z == nilH {
		return false
	}

	// y is the node physically removed; x its (possibly nil) child that
	// moves up; xParent tracks x's parent since x may be nil.
	y := z
	if tx.ReadRef(z, fLeft) != nilH && tx.ReadRef(z, fRight) != nilH {
		// Two children: splice out the in-order successor instead.
		y = tx.ReadRef(z, fRight)
		for {
			l := tx.ReadRef(y, fLeft)
			if l == nilH {
				break
			}
			y = l
		}
	}
	var x stm.Handle
	if tx.ReadRef(y, fLeft) != nilH {
		x = tx.ReadRef(y, fLeft)
	} else {
		x = tx.ReadRef(y, fRight)
	}
	xParent := tx.ReadRef(y, fParent)
	if x != nilH {
		tx.WriteRef(x, fParent, xParent)
	}
	if xParent == nilH {
		t.setRoot(tx, x)
	} else if tx.ReadRef(xParent, fLeft) == y {
		tx.WriteRef(xParent, fLeft, x)
	} else {
		tx.WriteRef(xParent, fRight, x)
	}
	if y != z {
		// Move successor's payload into z (keys move, nodes stay).
		tx.WriteField(z, fKey, tx.ReadField(y, fKey))
		tx.WriteField(z, fVal, tx.ReadField(y, fVal))
	}
	if colorOf(tx, y) == black {
		t.deleteFixup(tx, x, xParent)
	}
	return true
}

func (t *Tree) deleteFixup(tx stm.Tx, x, xParent stm.Handle) {
	for x != t.root(tx) && colorOf(tx, x) == black {
		if xParent == nilH {
			break
		}
		if tx.ReadRef(xParent, fLeft) == x {
			w := tx.ReadRef(xParent, fRight) // sibling
			if colorOf(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xParent, red)
				t.rotateLeft(tx, xParent)
				w = tx.ReadRef(xParent, fRight)
			}
			if w == nilH {
				x = xParent
				xParent = tx.ReadRef(x, fParent)
				continue
			}
			wl := tx.ReadRef(w, fLeft)
			wr := tx.ReadRef(w, fRight)
			if colorOf(tx, wl) == black && colorOf(tx, wr) == black {
				setColor(tx, w, red)
				x = xParent
				xParent = tx.ReadRef(x, fParent)
				continue
			}
			if colorOf(tx, wr) == black {
				setColor(tx, wl, black)
				setColor(tx, w, red)
				t.rotateRight(tx, w)
				w = tx.ReadRef(xParent, fRight)
			}
			setColor(tx, w, colorOf(tx, xParent))
			setColor(tx, xParent, black)
			setColor(tx, tx.ReadRef(w, fRight), black)
			t.rotateLeft(tx, xParent)
			x = t.root(tx)
			break
		} else {
			w := tx.ReadRef(xParent, fLeft)
			if colorOf(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xParent, red)
				t.rotateRight(tx, xParent)
				w = tx.ReadRef(xParent, fLeft)
			}
			if w == nilH {
				x = xParent
				xParent = tx.ReadRef(x, fParent)
				continue
			}
			wl := tx.ReadRef(w, fLeft)
			wr := tx.ReadRef(w, fRight)
			if colorOf(tx, wr) == black && colorOf(tx, wl) == black {
				setColor(tx, w, red)
				x = xParent
				xParent = tx.ReadRef(x, fParent)
				continue
			}
			if colorOf(tx, wl) == black {
				setColor(tx, wr, black)
				setColor(tx, w, red)
				t.rotateLeft(tx, w)
				w = tx.ReadRef(xParent, fLeft)
			}
			setColor(tx, w, colorOf(tx, xParent))
			setColor(tx, xParent, black)
			setColor(tx, tx.ReadRef(w, fLeft), black)
			t.rotateRight(tx, xParent)
			x = t.root(tx)
			break
		}
	}
	setColor(tx, x, black)
}

// CheckInvariants walks the whole tree inside tx and reports the node
// count. It panics with a descriptive message when a red-black or BST
// invariant is violated (tests only).
func (t *Tree) CheckInvariants(tx stm.TxRO) int {
	root := t.root(tx)
	if root == nilH {
		return 0
	}
	if colorOf(tx, root) != black {
		panic("rbtree: root is red")
	}
	count, _ := t.check(tx, root, nilH, 0, ^stm.Word(0))
	return count
}

func (t *Tree) check(tx stm.TxRO, n, parent stm.Handle, lo, hi stm.Word) (count, blackHeight int) {
	if n == nilH {
		return 0, 1
	}
	if tx.ReadRef(n, fParent) != parent {
		panic("rbtree: bad parent pointer")
	}
	k := tx.ReadField(n, fKey)
	if k < lo || k > hi {
		panic("rbtree: BST order violated")
	}
	c := colorOf(tx, n)
	l := tx.ReadRef(n, fLeft)
	r := tx.ReadRef(n, fRight)
	if c == red && (colorOf(tx, l) == red || colorOf(tx, r) == red) {
		panic("rbtree: red node with red child")
	}
	var lc, lb, rc, rb int
	if k > 0 {
		lc, lb = t.check(tx, l, n, lo, k-1)
	} else {
		lc, lb = t.check(tx, l, n, lo, 0)
	}
	rc, rb = t.check(tx, r, n, k+1, hi)
	if lb != rb {
		panic("rbtree: black height mismatch")
	}
	bh := lb
	if c == black {
		bh++
	}
	return lc + rc + 1, bh
}
