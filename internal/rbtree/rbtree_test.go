package rbtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
)

func engines() map[string]func() stm.STM {
	return map[string]func() stm.STM{
		"swisstm": func() stm.STM { return swisstm.New(swisstm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tl2":     func() stm.STM { return tl2.New(tl2.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"tinystm": func() stm.STM { return tinystm.New(tinystm.Config{ArenaWords: 1 << 20, TableBits: 14}) },
		"rstm":    func() stm.STM { return rstm.New(rstm.Config{Manager: cm.NewPolka()}) },
	}
}

func TestBasicOps(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			e := factory()
			th := e.NewThread(0)
			tree := New(th)
			stm.AtomicVoid(th, func(tx stm.Tx) {
				if !tree.Insert(tx, 5, 50) {
					t.Error("insert 5 reported existing")
				}
				tree.Insert(tx, 3, 30)
				tree.Insert(tx, 8, 80)
				if v, ok := tree.Lookup(tx, 3); !ok || v != 30 {
					t.Errorf("lookup 3 = (%d,%v)", v, ok)
				}
				if _, ok := tree.Lookup(tx, 4); ok {
					t.Error("lookup 4 should miss")
				}
				if tree.Insert(tx, 5, 55) {
					t.Error("insert 5 again should report existing")
				}
				if v, _ := tree.Lookup(tx, 5); v != 55 {
					t.Error("value not updated")
				}
				if !tree.Delete(tx, 3) {
					t.Error("delete 3 failed")
				}
				if _, ok := tree.Lookup(tx, 3); ok {
					t.Error("3 still present after delete")
				}
				if tree.Delete(tx, 3) {
					t.Error("double delete succeeded")
				}
				tree.CheckInvariants(tx)
			})
		})
	}
}

// TestModelSequential compares the tree against a map model under long
// random operation sequences, checking red-black invariants throughout.
func TestModelSequential(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			e := factory()
			th := e.NewThread(0)
			tree := New(th)
			model := map[stm.Word]stm.Word{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				key := stm.Word(rng.Intn(200) + 1)
				val := stm.Word(rng.Intn(1000))
				switch rng.Intn(3) {
				case 0:
					stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, key, val) })
					model[key] = val
				case 1:
					var got bool
					stm.AtomicVoid(th, func(tx stm.Tx) { got = tree.Delete(tx, key) })
					_, want := model[key]
					if got != want {
						t.Fatalf("op %d: delete(%d) = %v, model %v", i, key, got, want)
					}
					delete(model, key)
				case 2:
					var gv stm.Word
					var gok bool
					stm.AtomicVoid(th, func(tx stm.Tx) { gv, gok = tree.Lookup(tx, key) })
					wv, wok := model[key]
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("op %d: lookup(%d) = (%d,%v), model (%d,%v)", i, key, gv, gok, wv, wok)
					}
				}
				if i%500 == 0 {
					stm.AtomicVoid(th, func(tx stm.Tx) {
						if n := tree.CheckInvariants(tx); n != len(model) {
							t.Fatalf("op %d: size %d, model %d", i, n, len(model))
						}
					})
				}
			}
			stm.AtomicVoid(th, func(tx stm.Tx) {
				if n := tree.CheckInvariants(tx); n != len(model) {
					t.Fatalf("final size %d, model %d", n, len(model))
				}
				for k, v := range model {
					if gv, ok := tree.Lookup(tx, k); !ok || gv != v {
						t.Fatalf("final lookup(%d) = (%d,%v), want (%d,true)", k, gv, ok, v)
					}
				}
			})
		})
	}
}

// TestQuickInsertDelete is a property-based check (testing/quick): for any
// random key multiset, inserting then deleting every key leaves an empty,
// invariant-respecting tree.
func TestQuickInsertDelete(t *testing.T) {
	factory := engines()["swisstm"]
	check := func(keys []uint16) bool {
		e := factory()
		th := e.NewThread(0)
		tree := New(th)
		seen := map[stm.Word]bool{}
		for _, k := range keys {
			key := stm.Word(k) + 1
			var fresh bool
			stm.AtomicVoid(th, func(tx stm.Tx) { fresh = tree.Insert(tx, key, key*2) })
			if fresh == seen[key] {
				return false
			}
			seen[key] = true
		}
		ok := true
		stm.AtomicVoid(th, func(tx stm.Tx) {
			if tree.CheckInvariants(tx) != len(seen) {
				ok = false
			}
		})
		if !ok {
			return false
		}
		for k := range seen {
			var deleted bool
			stm.AtomicVoid(th, func(tx stm.Tx) { deleted = tree.Delete(tx, k) })
			if !deleted {
				return false
			}
			stm.AtomicVoid(th, func(tx stm.Tx) { tree.CheckInvariants(tx) })
		}
		final := -1
		stm.AtomicVoid(th, func(tx stm.Tx) { final = tree.CheckInvariants(tx) })
		return final == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixed runs the paper's microbenchmark shape (lookups +
// inserts + deletes) on every engine and validates the invariants at the
// end — the correctness side of Figure 5.
func TestConcurrentMixed(t *testing.T) {
	for name, factory := range engines() {
		t.Run(name, func(t *testing.T) {
			e := factory()
			setup := e.NewThread(0)
			tree := New(setup)
			const keyRange = 512
			stm.AtomicVoid(setup, func(tx stm.Tx) {
				for k := stm.Word(1); k <= keyRange; k += 2 {
					tree.Insert(tx, k, k)
				}
			})
			var wg sync.WaitGroup
			threads := 4
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := e.NewThread(id + 1)
					rng := rand.New(rand.NewSource(int64(id) + 7))
					for n := 0; n < 1500; n++ {
						key := stm.Word(rng.Intn(keyRange) + 1)
						switch rng.Intn(10) {
						case 0:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, key, key) })
						case 1:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Delete(tx, key) })
						default:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Lookup(tx, key) })
						}
					}
				}(i)
			}
			wg.Wait()
			stm.AtomicVoid(setup, func(tx stm.Tx) { tree.CheckInvariants(tx) })
		})
	}
}
