package rbtree

import (
	"fmt"
	"sync"
	"testing"

	"swisstm/internal/cm"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
)

// TestRSTMHighContention hammers a small tree on every RSTM variant with
// periodic invariant checks — a regression test for snapshot consistency
// bugs that only structural workloads expose.
func TestRSTMHighContention(t *testing.T) {
	for _, acq := range []rstm.AcquireMode{rstm.Eager, rstm.Lazy} {
		acq := acq
		t.Run(fmt.Sprint(acq), func(t *testing.T) {
			e := rstm.New(rstm.Config{Acquire: acq, Manager: cm.NewPolka()})
			setup := e.NewThread(0)
			tree := New(setup)
			const keyRange = 48
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := e.NewThread(id + 1)
					seed := uint64(id)*2654435761 + 17
					for n := 0; n < 4000; n++ {
						seed = seed*6364136223846793005 + 1
						key := stm.Word(seed>>33)%keyRange + 1
						switch (seed >> 13) % 4 {
						case 0:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, key, key) })
						case 1:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Delete(tx, key) })
						default:
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.Lookup(tx, key) })
						}
						if n%1000 == 999 {
							stm.AtomicVoid(th, func(tx stm.Tx) { tree.CheckInvariants(tx) })
						}
					}
				}(w)
			}
			wg.Wait()
			stm.AtomicVoid(setup, func(tx stm.Tx) { tree.CheckInvariants(tx) })
		})
	}
}
