package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func startProxy(t *testing.T, target string, plan Plan) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", target, plan)
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFaithfulRelay: the zero plan is a plain TCP relay.
func TestFaithfulRelay(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Plan{})
	c := dialProxy(t, p)

	msg := bytes.Repeat([]byte("roundtrip"), 100)
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted through faithful relay")
	}
	if st := p.Stats(); st.Conns != 1 || st.Truncates+st.RSTs+st.Blackholes != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestLatencyShaping: each direction adds Plan.Latency per chunk, so an
// echo round trip takes at least twice that.
func TestLatencyShaping(t *testing.T) {
	ln := echoServer(t)
	const lat = 30 * time.Millisecond
	p := startProxy(t, ln.Addr().String(), Plan{Latency: lat})
	c := dialProxy(t, p)

	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < 2*lat {
		t.Fatalf("round trip %v faster than two one-way latencies %v", d, 2*lat)
	}
}

// TestBandwidthThrottle: serialization delay scales with chunk size.
func TestBandwidthThrottle(t *testing.T) {
	ln := echoServer(t)
	// 10 kB/s: a 2 kB message costs ≥200ms each way.
	p := startProxy(t, ln.Addr().String(), Plan{BandwidthBps: 10_000})
	c := dialProxy(t, p)

	msg := bytes.Repeat([]byte{0xab}, 2000)
	start := time.Now()
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < 300*time.Millisecond {
		t.Fatalf("2 kB echo at 10 kB/s took only %v", d)
	}
}

// TestTruncate: with p=1 and a fixed fire offset, the connection dies
// after exactly fireAfter forwarded bytes — mid-stream.
func TestTruncate(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Plan{
		TruncateProb: 1, FireAfterMin: 10, FireAfterMax: 10,
	})
	c := dialProxy(t, p)

	if _, err := c.Write(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.Copy(io.Discard, c)
	if err == nil && n >= 100 {
		t.Fatalf("full 100-byte echo survived a 10-byte truncation (read %d)", n)
	}
	if n > 10 {
		t.Fatalf("read %d echoed bytes, fault was scheduled at 10 total", n)
	}
	if st := p.Stats(); st.Truncates != 1 {
		t.Fatalf("want 1 truncate, got %+v", st)
	}
}

// TestRST: the client observes a hard error, not a clean EOF.
func TestRST(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Plan{
		RSTProb: 1, FireAfterMin: 1, FireAfterMax: 1,
	})
	c := dialProxy(t, p)

	if _, err := c.Write([]byte("doomed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The 6-byte write crosses the 1-byte fire offset, so the shared
	// forwarded-byte budget is spent before anything can echo back:
	// the client must see a failure (RST, or EOF where the FIN/RST
	// race is platform-dependent) and zero payload.
	n, err := io.Copy(io.Discard, c)
	if err == nil && n > 0 {
		t.Fatalf("read %d bytes through a connection reset at byte 1", n)
	}
	if st := p.Stats(); st.RSTs != 1 {
		t.Fatalf("want 1 rst, got %+v", st)
	}
}

// TestBlackhole: the connection stays open but nothing comes back —
// only the client's own deadline saves it.
func TestBlackhole(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Plan{
		BlackholeProb: 1, FireAfterMin: 1, FireAfterMax: 1,
	})
	c := dialProxy(t, p)

	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("want read timeout through blackhole, got n=%d err=%v", n, err)
	}
	if st := p.Stats(); st.Blackholes != 1 {
		t.Fatalf("want 1 blackhole, got %+v", st)
	}
}

// TestDeterminism: the same plan resolves the same per-connection
// schedule, and a different seed diverges somewhere.
func TestDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, TruncateProb: 0.3, RSTProb: 0.3, BlackholeProb: 0.3, FireAfterMax: 1 << 16}
	if err := plan.fill(); err != nil {
		t.Fatal(err)
	}
	other := plan
	other.Seed = 43
	if err := other.fill(); err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := uint64(0); i < 64; i++ {
		a, b := plan.decide(i), plan.decide(i)
		if a != b {
			t.Fatalf("conn %d: same seed resolved different plans %+v vs %+v", i, a, b)
		}
		if plan.decide(i) != other.decide(i) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("seeds 42 and 43 resolved identical schedules for 64 connections")
	}
}

// TestPlanValidation: malformed plans are rejected.
func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{TruncateProb: 0.6, RSTProb: 0.6},
		{TruncateProb: -0.1},
		{Latency: -time.Second},
		{FireAfterMin: 10, FireAfterMax: 5},
	}
	for i, pl := range bad {
		if err := pl.fill(); err == nil {
			t.Fatalf("plan %d accepted: %+v", i, pl)
		}
	}
}

// TestProxyCloseUnblocks: Close severs even a blackholed pair and
// returns promptly.
func TestProxyCloseUnblocks(t *testing.T) {
	ln := echoServer(t)
	p := startProxy(t, ln.Addr().String(), Plan{BlackholeProb: 1, FireAfterMax: 1})
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("stuck")); err != nil {
		t.Fatalf("write: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("proxy Close hung on a blackholed connection")
	}
}
