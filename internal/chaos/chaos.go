// Package chaos is a seeded, deterministic TCP fault-injection proxy
// (DESIGN.md §13). It sits between a client and a real server and
// applies a scripted per-connection fault plan: added latency,
// bandwidth throttling, mid-stream truncation (cutting inside a wire
// frame), hard resets (RST) and blackholes (the connection stays open
// but silently stops forwarding).
//
// Determinism: every random decision for connection i is drawn from an
// RNG seeded by (Plan.Seed, i), so a run with the same seed and the
// same connection arrival order injects the same faults at the same
// byte offsets. Connection arrival order itself is scheduling-
// dependent; the guarantee is per-index reproducibility, which is what
// the chaoskv harness keys its oracle on.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swisstm/internal/harness"
)

// Plan scripts the faults for every connection through a Proxy. The
// zero value forwards faithfully (no latency, no faults) — a plain TCP
// relay.
type Plan struct {
	// Seed derives every per-connection RNG; two proxies with the same
	// Seed and Plan inject identical fault schedules. A zero seed is
	// replaced by 1 so "forgot to seed" is still deterministic.
	Seed uint64

	// Latency is added once per forwarded chunk in each direction —
	// a crude one-way propagation delay. Jitter adds a uniformly drawn
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps, when positive, throttles each direction to roughly
	// this many bytes per second (chunks are delayed by size/rate).
	BandwidthBps int

	// Per-connection fault probabilities, evaluated once at accept
	// time; at most one fault arms per connection. The probabilities
	// must sum to at most 1.
	//
	//   Truncate:  after FireAfter forwarded bytes the connection is
	//              closed mid-stream, typically inside a frame.
	//   RST:       as Truncate, but with SO_LINGER=0 so the client
	//              sees a hard connection reset, not a clean FIN.
	//   Blackhole: after FireAfter forwarded bytes the proxy keeps
	//              both sockets open but forwards nothing more — the
	//              peer that only a timeout can save.
	TruncateProb  float64
	RSTProb       float64
	BlackholeProb float64
	// FireAfterMin/Max bound the fault's trigger offset: the total
	// bytes (both directions) forwarded before it fires, drawn
	// uniformly from [Min, Max]. Defaults to [0, 4096] when both are
	// zero.
	FireAfterMin int
	FireAfterMax int
}

func (p *Plan) fill() error {
	if p.Seed == 0 {
		p.Seed = 1
	}
	sum := p.TruncateProb + p.RSTProb + p.BlackholeProb
	if p.TruncateProb < 0 || p.RSTProb < 0 || p.BlackholeProb < 0 || sum > 1 {
		return fmt.Errorf("chaos: fault probabilities out of range (sum %.3f)", sum)
	}
	if p.Latency < 0 || p.Jitter < 0 || p.BandwidthBps < 0 {
		return fmt.Errorf("chaos: negative shaping parameter")
	}
	if p.FireAfterMin < 0 || p.FireAfterMax < p.FireAfterMin {
		return fmt.Errorf("chaos: bad fire-after window [%d, %d]", p.FireAfterMin, p.FireAfterMax)
	}
	if p.FireAfterMin == 0 && p.FireAfterMax == 0 {
		p.FireAfterMax = 4096
	}
	return nil
}

// faultKind is the per-connection fault drawn at accept time.
type faultKind int

const (
	faultNone faultKind = iota
	faultTruncate
	faultRST
	faultBlackhole
)

func (k faultKind) String() string {
	switch k {
	case faultTruncate:
		return "truncate"
	case faultRST:
		return "rst"
	case faultBlackhole:
		return "blackhole"
	}
	return "none"
}

// connPlan is one connection's resolved schedule.
type connPlan struct {
	kind      faultKind
	fireAfter int64 // total forwarded bytes before kind fires
}

// decide resolves the plan for connection index idx — one RNG draw
// sequence per (seed, idx), independent of every other connection.
func (p *Plan) decide(idx uint64) connPlan {
	rng := rand.New(rand.NewSource(int64(harness.DeriveSeed(p.Seed, "chaos/conn", int(idx), 0))))
	cp := connPlan{kind: faultNone}
	u := rng.Float64()
	switch {
	case u < p.TruncateProb:
		cp.kind = faultTruncate
	case u < p.TruncateProb+p.RSTProb:
		cp.kind = faultRST
	case u < p.TruncateProb+p.RSTProb+p.BlackholeProb:
		cp.kind = faultBlackhole
	}
	cp.fireAfter = int64(p.FireAfterMin)
	if w := p.FireAfterMax - p.FireAfterMin; w > 0 {
		cp.fireAfter += int64(rng.Intn(w + 1))
	}
	return cp
}

// Stats are the proxy's cumulative fault counters.
type Stats struct {
	Conns      uint64 // connections accepted
	Truncates  uint64 // connections cut mid-stream
	RSTs       uint64 // connections hard-reset
	Blackholes uint64 // connections blackholed
}

// Proxy is one listening fault-injection relay in front of a target
// address.
type Proxy struct {
	plan   Plan
	target string
	ln     net.Listener

	connIdx    atomic.Uint64
	truncates  atomic.Uint64
	rsts       atomic.Uint64
	blackholes atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy listening on addr (e.g. "127.0.0.1:0") relaying
// to target with the given plan.
func New(addr, target string, plan Plan) (*Proxy, error) {
	if err := plan.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{plan: plan, target: target, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's bound listen address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats returns the cumulative fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:      p.connIdx.Load(),
		Truncates:  p.truncates.Load(),
		RSTs:       p.rsts.Load(),
		Blackholes: p.blackholes.Load(),
	}
}

// Close stops accepting, severs every live connection (blackholed ones
// included) and waits for the relay goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.connIdx.Add(1) - 1
		p.wg.Add(1)
		go p.relay(conn, idx)
	}
}

// track registers c for teardown on Close; it reports false (and closes
// c) when the proxy is already closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay runs one proxied connection: dial the target, then pump both
// directions through the shaping/fault pipeline until either side
// closes or the armed fault kills the pair.
func (p *Proxy) relay(client net.Conn, idx uint64) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	defer func() { p.untrack(client); client.Close() }()

	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(server) {
		return
	}
	defer func() { p.untrack(server); server.Close() }()

	cp := p.plan.decide(idx)
	st := &connState{proxy: p, plan: cp}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(st, client, server, idx, 0)
	}()
	go func() {
		defer wg.Done()
		p.pump(st, server, client, idx, 1)
	}()
	wg.Wait()
}

// connState is the fault bookkeeping shared by a connection's two pump
// directions.
type connState struct {
	proxy     *Proxy
	plan      connPlan
	forwarded atomic.Int64 // total bytes forwarded, both directions
	blackhole atomic.Bool  // set once the blackhole fault fires
	fireOnce  sync.Once
}

// budget reports how many of n bytes may still be forwarded before the
// armed fault fires, firing it when the allowance runs out. It returns
// n unchanged for unarmed connections.
func (st *connState) budget(n int) (allowed int, fired bool) {
	if st.plan.kind == faultNone {
		return n, false
	}
	total := st.forwarded.Add(int64(n))
	if over := total - st.plan.fireAfter; over > 0 {
		allowed = n - int(over)
		if allowed < 0 {
			allowed = 0
		}
		return allowed, true
	}
	return n, false
}

// fire applies the connection's fault exactly once. Truncate and RST
// sever both sockets (RST with SO_LINGER=0 on both, so each peer sees
// a reset); blackhole just raises the flag — the pumps keep reading
// and discard everything from then on.
func (st *connState) fire(client, server net.Conn) {
	st.fireOnce.Do(func() {
		switch st.plan.kind {
		case faultTruncate:
			st.proxy.truncates.Add(1)
			client.Close()
			server.Close()
		case faultRST:
			st.proxy.rsts.Add(1)
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			if tc, ok := server.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			client.Close()
			server.Close()
		case faultBlackhole:
			st.proxy.blackholes.Add(1)
			st.blackhole.Store(true)
		}
	})
}

// pump forwards src → dst with latency/bandwidth shaping and the armed
// fault applied at its byte offset. dir (0 = client→server) salts the
// jitter RNG so the two directions draw independent, reproducible
// sequences.
func (p *Proxy) pump(st *connState, src, dst net.Conn, idx uint64, dir int) {
	rng := rand.New(rand.NewSource(int64(harness.DeriveSeed(p.plan.Seed, "chaos/jitter", int(idx), dir))))
	buf := make([]byte, 4<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.shapeDelay(rng, n); d > 0 {
				time.Sleep(d)
			}
			allowed, fired := st.budget(n)
			if st.blackhole.Load() {
				allowed = 0 // swallow silently, keep the sockets open
			}
			if allowed > 0 {
				if _, werr := dst.Write(buf[:allowed]); werr != nil {
					return
				}
			}
			if fired {
				st.fire(src, dst)
				if st.plan.kind != faultBlackhole {
					return // sockets are gone
				}
			}
		}
		if err != nil {
			// Half-close toward the target so a graceful client FIN still
			// drains the server's replies; a blackholed pair just parks
			// until Close or the peers give up.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// shapeDelay computes one chunk's added delay: fixed latency, jittered
// uniformly, plus the bandwidth-throttle serialization time.
func (p *Proxy) shapeDelay(rng *rand.Rand, n int) time.Duration {
	d := p.plan.Latency
	if j := p.plan.Jitter; j > 0 {
		d += time.Duration(rng.Int63n(int64(j)))
	}
	if bps := p.plan.BandwidthBps; bps > 0 {
		d += time.Duration(float64(n) / float64(bps) * float64(time.Second))
	}
	return d
}

// String renders the plan for harness logs.
func (p Plan) String() string {
	return fmt.Sprintf("seed=%d lat=%v jitter=%v bw=%dB/s p(trunc)=%.2f p(rst)=%.2f p(hole)=%.2f fire=[%d,%d]",
		p.Seed, p.Latency, p.Jitter, p.BandwidthBps,
		p.TruncateProb, p.RSTProb, p.BlackholeProb, p.FireAfterMin, p.FireAfterMax)
}
