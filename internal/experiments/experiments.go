// Package experiments reproduces every figure and table of the paper's
// evaluation (§4 and §5). Each experiment is a function that runs the
// relevant workloads across engines and thread counts and prints the same
// rows/series the paper plots; cmd/paperfigs and the repository-root
// benchmarks drive them. The experiment ↔ module map lives in DESIGN.md §4.
package experiments

import (
	"fmt"
	"io"
	"time"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/rbtree"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Options tunes experiment size so the same code serves quick smoke runs
// and full paper-shaped sweeps.
type Options struct {
	Out      io.Writer
	Duration time.Duration // per throughput point
	Threads  []int         // thread sweep
	Scale    stamp.Scale   // STAMP input scale
	Bench7   bench7.Config // structure dimensions (mix is set per run)
	RBRange  int           // red-black tree key range (paper: 16384)
	RBUpdate int           // update percentage (paper: 20)
}

// Default returns full-shape options (minutes of runtime).
func Default(out io.Writer) Options {
	return Options{
		Out:      out,
		Duration: 2 * time.Second,
		Threads:  []int{1, 2, 4, 8},
		Scale:    stamp.Bench,
		RBRange:  16384,
		RBUpdate: 20,
	}
}

// Quick returns options that finish in tens of seconds (CI/smoke).
func Quick(out io.Writer) Options {
	return Options{
		Out:      out,
		Duration: 300 * time.Millisecond,
		Threads:  []int{1, 2, 4},
		Scale:    stamp.Test,
		Bench7:   bench7.Config{Levels: 3, Fanout: 3, CompPool: 32, AtomicPerComp: 10},
		RBRange:  1024,
		RBUpdate: 20,
	}
}

// fourEngines is the paper's headline engine line-up. RSTM uses the
// Serializer CM for STMBench7 ("as this gave the best performing RSTM
// configuration in STMBench7", §4) and Polka elsewhere (the default).
func fourEngines(rstmManager string) []harness.EngineSpec {
	return []harness.EngineSpec{
		{Kind: "swisstm"},
		{Kind: "tinystm"},
		{Kind: "rstm", Manager: rstmManager, Label: "RSTM"},
		{Kind: "tl2"},
	}
}

// bench7Workload adapts a bench7 mix to the throughput harness.
func (o Options) bench7Workload(mix int) harness.Workload {
	cfg := o.Bench7
	cfg.ReadOnlyPct = mix
	var b *bench7.Bench
	return harness.Workload{
		Setup: func(e stm.STM) error {
			b = bench7.Setup(e, cfg)
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			b.Op(th, rng)
		},
		Check: func(e stm.STM) error { return b.Check() },
	}
}

// rbWorkload is the Figure 5/10 microbenchmark: lookups/inserts/removals
// over a pre-filled tree.
func (o Options) rbWorkload() harness.Workload {
	var tree *rbtree.Tree
	keyRange := o.RBRange
	updPct := o.RBUpdate
	return harness.Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			tree = rbtree.New(th)
			rng := util.NewRand(0x5eed)
			// Pre-fill to half occupancy, as customary for this bench.
			for i := 0; i < keyRange/2; i++ {
				k := stm.Word(rng.Intn(keyRange) + 1)
				th.Atomic(func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			k := stm.Word(rng.Intn(keyRange) + 1)
			r := rng.Intn(100)
			switch {
			case r < updPct/2:
				th.Atomic(func(tx stm.Tx) { tree.Insert(tx, k, k) })
			case r < updPct:
				th.Atomic(func(tx stm.Tx) { tree.Delete(tx, k) })
			default:
				th.Atomic(func(tx stm.Tx) { tree.Lookup(tx, k) })
			}
		},
		Check: func(e stm.STM) error {
			th := e.NewThread(0)
			var err error
			th.Atomic(func(tx stm.Tx) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("rbtree invariant: %v", r)
					}
				}()
				tree.CheckInvariants(tx)
			})
			return err
		},
	}
}

// throughputSeries sweeps threads for each spec on workload w and returns
// one series per spec (throughput in tx/s).
func (o Options) throughputSeries(specs []harness.EngineSpec, mk func() harness.Workload) ([]harness.Series, error) {
	series := make([]harness.Series, len(specs))
	for i, spec := range specs {
		series[i] = harness.Series{Name: spec.DisplayName(), Points: map[int]float64{}}
		for _, tc := range o.Threads {
			res, err := harness.MeasureThroughput(spec, mk(), tc, o.Duration)
			if err != nil {
				return nil, fmt.Errorf("%s @%d: %w", spec.DisplayName(), tc, err)
			}
			series[i].Points[tc] = res.Throughput()
		}
	}
	return series, nil
}

// Fig2 — STMBench7 throughput: 4 STMs × 3 workload mixes × thread sweep.
func (o Options) Fig2() error {
	for _, mix := range []struct {
		name string
		ro   int
	}{{"read-dominated", 90}, {"read-write", 60}, {"write-dominated", 10}} {
		specs := fourEngines("serializer")
		series, err := o.throughputSeries(specs, func() harness.Workload { return o.bench7Workload(mix.ro) })
		if err != nil {
			return err
		}
		fmt.Fprintln(o.Out, harness.FormatFigure(
			"Figure 2: STMBench7 "+mix.name+" workload", "throughput [tx/s]", o.Threads, series))
	}
	return nil
}

// stampDuration runs one STAMP workload on one engine spec and returns
// the wall time.
func (o Options) stampDuration(name string, spec harness.EngineSpec, threads int) (time.Duration, error) {
	app, err := stamp.New(name, o.Scale)
	if err != nil {
		return 0, err
	}
	e := spec.New()
	start := time.Now()
	if _, err := stamp.Run(app, e, threads); err != nil {
		return 0, fmt.Errorf("%s on %s: %w", name, spec.DisplayName(), err)
	}
	return time.Since(start), nil
}

// Fig3 — STAMP: speedup of SwissTM over TL2 and TinySTM (speedup − 1),
// per workload, for 1, 2, 4, 8 threads.
func (o Options) Fig3() error {
	threads := []int{1, 2, 4, 8}
	if len(o.Threads) < 4 {
		threads = o.Threads
	}
	for _, baseline := range []string{"tl2", "tinystm"} {
		fmt.Fprintf(o.Out, "# Figure 3: SwissTM vs %s on STAMP (speedup - 1; positive = SwissTM faster)\n", baseline)
		fmt.Fprintf(o.Out, "%-16s", "workload")
		for _, tc := range threads {
			fmt.Fprintf(o.Out, "%10dthr", tc)
		}
		fmt.Fprintln(o.Out)
		for _, wl := range stamp.Workloads {
			fmt.Fprintf(o.Out, "%-16s", wl)
			for _, tc := range threads {
				dSwiss, err := o.stampDuration(wl, harness.EngineSpec{Kind: "swisstm"}, tc)
				if err != nil {
					return err
				}
				dBase, err := o.stampDuration(wl, harness.EngineSpec{Kind: baseline}, tc)
				if err != nil {
					return err
				}
				fmt.Fprintf(o.Out, "%13.2f", dBase.Seconds()/dSwiss.Seconds()-1)
			}
			fmt.Fprintln(o.Out)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// leeDuration routes one board on one engine and returns the wall time.
func leeDuration(board leetm.Board, spec harness.EngineSpec, threads int) (time.Duration, error) {
	var r *leetm.Router
	res, err := harness.MeasureWork(spec,
		func(e stm.STM) error { r = leetm.Setup(e, board); return nil },
		func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
			r.Work(e, th, worker, t, rng)
		},
		func(e stm.STM) error { return r.Check() },
		threads)
	if err != nil {
		return 0, err
	}
	return res.Duration, nil
}

// Fig4 — Lee-TM execution time: SwissTM, TinySTM, RSTM on the memory and
// main boards (the paper could not run TL2 on Lee-TM; we mirror the
// line-up).
func (o Options) Fig4() error {
	for _, board := range []leetm.Board{leetm.MemoryBoard(), leetm.MainBoard()} {
		specs := []harness.EngineSpec{{Kind: "rstm", Manager: "polka", Label: "RSTM"}, {Kind: "tinystm"}, {Kind: "swisstm"}}
		series := make([]harness.Series, len(specs))
		for i, spec := range specs {
			series[i] = harness.Series{Name: spec.DisplayName(), Points: map[int]float64{}}
			for _, tc := range o.Threads {
				d, err := leeDuration(board, spec, tc)
				if err != nil {
					return err
				}
				series[i].Points[tc] = d.Seconds()
			}
		}
		fmt.Fprintln(o.Out, harness.FormatFigure(
			"Figure 4: Lee-TM "+board.Name+" board", "duration [s]", o.Threads, series))
	}
	return nil
}

// Fig5 — red-black tree throughput, 4 STMs, range 16384, 20% updates.
func (o Options) Fig5() error {
	series, err := o.throughputSeries(fourEngines("polka"), o.rbWorkload)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		fmt.Sprintf("Figure 5: red-black tree (range %d, %d%% updates)", o.RBRange, o.RBUpdate),
		"throughput [tx/s]", o.Threads, series))
	return nil
}

// Fig7 — eager vs lazy conflict detection in read-dominated STMBench7:
// TinySTM (eager), RSTM eager, RSTM lazy, TL2 (lazy).
func (o Options) Fig7() error {
	specs := []harness.EngineSpec{
		{Kind: "tinystm", Label: "TinySTM (eager)"},
		{Kind: "rstm", Acquire: "eager", Manager: "polka", Label: "RSTM eager"},
		{Kind: "rstm", Acquire: "lazy", Manager: "polka", Label: "RSTM lazy"},
		{Kind: "tl2", Label: "TL2 (lazy)"},
	}
	series, err := o.throughputSeries(specs, func() harness.Workload { return o.bench7Workload(90) })
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 7: eager vs lazy conflict detection, read-dominated STMBench7",
		"throughput [tx/s]", o.Threads, series))
	return nil
}

// Fig8 — "irregular" Lee-TM: SwissTM vs TinySTM with R ∈ {0, 5, 20}% of
// transactions updating the shared object Oc.
func (o Options) Fig8() error {
	board := leetm.MemoryBoard()
	series := []harness.Series{}
	for _, spec := range []harness.EngineSpec{{Kind: "swisstm"}, {Kind: "tinystm"}} {
		for _, r := range []int{0, 5, 20} {
			b := board
			b.IrregularPct = r
			s := harness.Series{
				Name:   fmt.Sprintf("%s %d%%", spec.DisplayName(), r),
				Points: map[int]float64{},
			}
			for _, tc := range o.Threads {
				d, err := leeDuration(b, spec, tc)
				if err != nil {
					return err
				}
				s.Points[tc] = d.Seconds()
			}
			series = append(series, s)
		}
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 8: irregular Lee-TM (memory board), SwissTM vs TinySTM",
		"duration [s]", o.Threads, series))
	return nil
}

// Fig9 — Polka vs Greedy contention managers in RSTM on read-dominated
// STMBench7.
func (o Options) Fig9() error {
	specs := []harness.EngineSpec{
		{Kind: "rstm", Manager: "greedy", Label: "RSTM Greedy"},
		{Kind: "rstm", Manager: "polka", Label: "RSTM Polka"},
	}
	series, err := o.throughputSeries(specs, func() harness.Workload { return o.bench7Workload(90) })
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 9: Polka vs Greedy (RSTM), read-dominated STMBench7",
		"throughput [tx/s]", o.Threads, series))
	return nil
}

// Fig10 — SwissTM's two-phase CM vs plain Greedy on the red-black tree:
// Greedy's shared startup counter costs short transactions dearly.
func (o Options) Fig10() error {
	specs := []harness.EngineSpec{
		{Kind: "swisstm", Label: "Two-phase"},
		{Kind: "swisstm", Policy: "greedy", Label: "Greedy"},
	}
	series, err := o.throughputSeries(specs, o.rbWorkload)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 10: two-phase vs Greedy CM (SwissTM), red-black tree",
		"throughput [tx/s]", o.Threads, series))
	return nil
}

// Fig11 — back-off vs no back-off (SwissTM) on STAMP intruder.
func (o Options) Fig11() error {
	specs := []harness.EngineSpec{
		{Kind: "swisstm", NoBackoff: true, Label: "No backoff"},
		{Kind: "swisstm", Label: "Linear backoff"},
	}
	series := make([]harness.Series, len(specs))
	for i, spec := range specs {
		series[i] = harness.Series{Name: spec.DisplayName(), Points: map[int]float64{}}
		for _, tc := range o.Threads {
			d, err := o.stampDuration("intruder", spec, tc)
			if err != nil {
				return err
			}
			series[i].Points[tc] = d.Seconds()
		}
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 11: back-off vs no back-off (SwissTM), STAMP intruder",
		"duration [s]", o.Threads, series))
	return nil
}

// Fig12 — speedup (−1) of the two-phase CM over timid in SwissTM on the
// three STMBench7 mixes.
func (o Options) Fig12() error {
	series := []harness.Series{}
	for _, mix := range []struct {
		name string
		ro   int
	}{{"read", 90}, {"read/write", 60}, {"write", 10}} {
		s := harness.Series{Name: mix.name, Points: map[int]float64{}}
		for _, tc := range o.Threads {
			two, err := harness.MeasureThroughput(
				harness.EngineSpec{Kind: "swisstm"}, o.bench7Workload(mix.ro), tc, o.Duration)
			if err != nil {
				return err
			}
			timid, err := harness.MeasureThroughput(
				harness.EngineSpec{Kind: "swisstm", Policy: "timid"}, o.bench7Workload(mix.ro), tc, o.Duration)
			if err != nil {
				return err
			}
			s.Points[tc] = two.Throughput()/timid.Throughput() - 1
		}
		series = append(series, s)
	}
	fmt.Fprintln(o.Out, harness.FormatFigure(
		"Figure 12: two-phase vs timid CM speedup-1 (SwissTM), STMBench7",
		"speedup - 1", o.Threads, series))
	return nil
}

// granularities lists the sweep of Figure 13 in words per stripe. The
// paper sweeps 2^2..2^8 *bytes* with 32-bit words, i.e. 1..64 words;
// with this repository's 64-bit words the same word counts are
// 2^0..2^6 words ≡ 2^3..2^9 bytes.
var granularities = []uint{0, 1, 2, 3, 4, 5, 6}

// benchmarkScore measures one benchmark's figure of merit (throughput,
// higher = better) for a SwissTM engine with the given granularity.
type benchmarkScore struct {
	name string
	run  func(gran uint) (float64, error)
}

func (o Options) granBenchmarks(threads int) []benchmarkScore {
	mk := func(g uint) harness.EngineSpec {
		return harness.EngineSpec{Kind: "swisstm", StripeWordsLog2: g}
	}
	scores := []benchmarkScore{}
	for _, wl := range stamp.Workloads {
		wl := wl
		scores = append(scores, benchmarkScore{name: wl, run: func(g uint) (float64, error) {
			d, err := o.stampDuration(wl, mk(g), threads)
			if err != nil {
				return 0, err
			}
			return 1 / d.Seconds(), nil
		}})
	}
	scores = append(scores, benchmarkScore{name: "red-black tree", run: func(g uint) (float64, error) {
		res, err := harness.MeasureThroughput(mk(g), o.rbWorkload(), threads, o.Duration)
		if err != nil {
			return 0, err
		}
		return res.Throughput(), nil
	}})
	for _, board := range []leetm.Board{leetm.MemoryBoard(), leetm.MainBoard()} {
		board := board
		scores = append(scores, benchmarkScore{name: "Lee-TM " + board.Name, run: func(g uint) (float64, error) {
			d, err := leeDuration(board, mk(g), threads)
			if err != nil {
				return 0, err
			}
			return 1 / d.Seconds(), nil
		}})
	}
	for _, mix := range []struct {
		name string
		ro   int
	}{{"STMBench7 read", 90}, {"STMBench7 read-write", 60}, {"STMBench7 write", 10}} {
		mix := mix
		scores = append(scores, benchmarkScore{name: mix.name, run: func(g uint) (float64, error) {
			res, err := harness.MeasureThroughput(mk(g), o.bench7Workload(mix.ro), threads, o.Duration)
			if err != nil {
				return 0, err
			}
			return res.Throughput(), nil
		}})
	}
	return scores
}

// Fig13 — average speedup (−1) of each lock granularity against all the
// others, across all benchmarks, at 8 threads (or the sweep's maximum).
func (o Options) Fig13() error {
	threads := o.Threads[len(o.Threads)-1]
	benches := o.granBenchmarks(threads)
	// score[g][b] = figure of merit for granularity g on benchmark b.
	score := make(map[uint][]float64, len(granularities))
	for _, g := range granularities {
		for _, b := range benches {
			v, err := b.run(g)
			if err != nil {
				return fmt.Errorf("fig13 %s gran 2^%d: %w", b.name, g, err)
			}
			score[g] = append(score[g], v)
		}
	}
	fmt.Fprintf(o.Out, "# Figure 13: average speedup-1 per lock granularity vs all others (%d threads)\n", threads)
	fmt.Fprintf(o.Out, "# granularity axis: words/stripe (paper: 2^2..2^8 bytes at 4B words; here 64-bit words)\n")
	fmt.Fprintf(o.Out, "%-18s%14s\n", "words/stripe", "avg speedup-1")
	for _, g := range granularities {
		sum := 0.0
		for bi := range benches {
			others := []float64{}
			for _, g2 := range granularities {
				if g2 != g {
					others = append(others, score[g2][bi])
				}
			}
			sum += harness.GeoMeanSpeedup(score[g][bi], others)
		}
		fmt.Fprintf(o.Out, "%-18s%14.3f\n", fmt.Sprintf("%d", 1<<g), sum/float64(len(benches)))
	}
	fmt.Fprintln(o.Out)
	return nil
}

// Table1 — effectiveness of STM design-choice combinations on the mixed
// (read-write) STMBench7 workload: the paper's qualitative ranking,
// quantified as throughput at the sweep's top thread count.
func (o Options) Table1() error {
	threads := o.Threads[len(o.Threads)-1]
	rows := []struct {
		label string
		spec  harness.EngineSpec
	}{
		{"lazy/invisible/any (TL2-like)", harness.EngineSpec{Kind: "rstm", Acquire: "lazy", Manager: "polka"}},
		{"eager/visible/any", harness.EngineSpec{Kind: "rstm", Acquire: "eager", Reads: "visible", Manager: "polka"}},
		{"eager/invisible/Polka", harness.EngineSpec{Kind: "rstm", Acquire: "eager", Manager: "polka"}},
		{"eager/invisible/timid", harness.EngineSpec{Kind: "rstm", Acquire: "eager", Manager: "timid"}},
		{"mixed/invisible/timid", harness.EngineSpec{Kind: "swisstm", Policy: "timid"}},
		{"mixed/invisible/2-phase (SwissTM)", harness.EngineSpec{Kind: "swisstm"}},
	}
	fmt.Fprintf(o.Out, "# Table 1: design-choice combinations on read-write STMBench7 (%d threads)\n", threads)
	fmt.Fprintf(o.Out, "%-36s%16s\n", "acquire/reads/CM", "throughput tx/s")
	for _, row := range rows {
		res, err := harness.MeasureThroughput(row.spec, o.bench7Workload(60), threads, o.Duration)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", row.label, err)
		}
		fmt.Fprintf(o.Out, "%-36s%16.1f\n", row.label, res.Throughput())
	}
	fmt.Fprintln(o.Out)
	return nil
}

// Table2 — per-benchmark relative speedups (−1) between three lock
// granularities: 4 words vs 1 word vs 16 words per stripe (the paper's
// 2^4 vs 2^2 vs 2^6 bytes with 32-bit words).
func (o Options) Table2() error {
	threads := o.Threads[len(o.Threads)-1]
	benches := o.granBenchmarks(threads)
	fmt.Fprintf(o.Out, "# Table 2: lock granularity comparison (%d threads; speedup-1)\n", threads)
	fmt.Fprintf(o.Out, "%-22s%12s%12s%12s\n", "benchmark", "4w vs 1w", "4w vs 16w", "1w vs 16w")
	sums := [3]float64{}
	for _, b := range benches {
		v1, err := b.run(0) // 1 word
		if err != nil {
			return err
		}
		v4, err := b.run(2) // 4 words (the paper's pick)
		if err != nil {
			return err
		}
		v16, err := b.run(4) // 16 words (cache-line-ish)
		if err != nil {
			return err
		}
		c := [3]float64{v4/v1 - 1, v4/v16 - 1, v1/v16 - 1}
		for i := range sums {
			sums[i] += c[i]
		}
		fmt.Fprintf(o.Out, "%-22s%12.2f%12.2f%12.2f\n", b.name, c[0], c[1], c[2])
	}
	n := float64(len(benches))
	fmt.Fprintf(o.Out, "%-22s%12.2f%12.2f%12.2f\n\n", "Average", sums[0]/n, sums[1]/n, sums[2]/n)
	return nil
}

// Names lists the runnable experiments.
var Names = []string{
	"fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "table1", "table2",
}

// Run dispatches one experiment by name.
func (o Options) Run(name string) error {
	switch name {
	case "fig2":
		return o.Fig2()
	case "fig3":
		return o.Fig3()
	case "fig4":
		return o.Fig4()
	case "fig5":
		return o.Fig5()
	case "fig7":
		return o.Fig7()
	case "fig8":
		return o.Fig8()
	case "fig9":
		return o.Fig9()
	case "fig10":
		return o.Fig10()
	case "fig11":
		return o.Fig11()
	case "fig12":
		return o.Fig12()
	case "fig13":
		return o.Fig13()
	case "table1":
		return o.Table1()
	case "table2":
		return o.Table2()
	}
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
}
