// Package experiments reproduces every figure and table of the paper's
// evaluation (§4 and §5), plus the repository's own txkv key-value
// store family (DESIGN.md §6). Each experiment is a function that runs
// the relevant workloads across engines and thread counts, returns the
// structured per-repeat measurement records, and renders the same
// rows/series the paper plots from those records; cmd/paperfigs and the
// repository-root benchmarks drive them. The experiment ↔ module map
// lives in DESIGN.md §4; the record schema in DESIGN.md §5.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"swisstm/internal/bench7"
	"swisstm/internal/harness"
	"swisstm/internal/leetm"
	"swisstm/internal/rbtree"
	"swisstm/internal/results"
	"swisstm/internal/stamp"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Options tunes experiment size so the same code serves quick smoke runs
// and full paper-shaped sweeps.
type Options struct {
	Out      io.Writer
	Duration time.Duration // per throughput point (fixed-time mode)
	Threads  []int         // thread sweep
	Scale    stamp.Scale   // STAMP input scale
	Bench7   bench7.Config // structure dimensions (mix is set per run)
	RBRange  int           // red-black tree key range (paper: 16384)
	RBUpdate int           // update percentage (paper: 20)
	KVKeys   int           // txkv key population (default 1024)
	KVZipf   float64       // txkv zipfian skew θ (default 0.99)
	Repeats  int           // measured repeats per point (0 or 1 = single run)
	Seed     uint64        // non-zero = deterministic mode: seeded RNGs + fixed-ops points
	FixedOps uint64        // per-worker ops per throughput point (0 = harness.DefaultFixedOps when seeded)
}

// Default returns full-shape options (minutes of runtime).
func Default(out io.Writer) Options {
	return Options{
		Out:      out,
		Duration: 2 * time.Second,
		Threads:  []int{1, 2, 4, 8},
		Scale:    stamp.Bench,
		RBRange:  16384,
		RBUpdate: 20,
		KVKeys:   16384,
		KVZipf:   0.99,
		Repeats:  1,
	}
}

// Quick returns options that finish in tens of seconds (CI/smoke).
func Quick(out io.Writer) Options {
	return Options{
		Out:      out,
		Duration: 300 * time.Millisecond,
		Threads:  []int{1, 2, 4},
		Scale:    stamp.Test,
		Bench7:   bench7.Config{Levels: 3, Fanout: 3, CompPool: 32, AtomicPerComp: 10},
		RBRange:  1024,
		RBUpdate: 20,
		KVKeys:   1024,
		KVZipf:   0.99,
		Repeats:  1,
	}
}

// runCfg assembles the harness run configuration for one experiment point.
func (o Options) runCfg(experiment, workload string, threads int) harness.RunConfig {
	return harness.RunConfig{
		Experiment: experiment,
		Workload:   workload,
		Threads:    threads,
		Duration:   o.Duration,
		FixedOps:   o.FixedOps,
		Repeats:    o.Repeats,
		Seed:       o.Seed,
	}
}

// emit renders one text block to Out (a no-op when records-only).
func (o Options) emit(block string) {
	if o.Out != nil {
		fmt.Fprintln(o.Out, block)
	}
}

// fourEngines is the paper's headline engine line-up. RSTM uses the
// Serializer CM for STMBench7 ("as this gave the best performing RSTM
// configuration in STMBench7", §4) and Polka elsewhere (the default).
func fourEngines(rstmManager string) []harness.EngineSpec {
	return []harness.EngineSpec{
		{Kind: "swisstm"},
		{Kind: "tinystm"},
		{Kind: "rstm", Manager: rstmManager, Label: "RSTM"},
		{Kind: "tl2"},
	}
}

// bench7Workload adapts a bench7 mix to the throughput harness.
func (o Options) bench7Workload(mix int) harness.Workload {
	cfg := o.Bench7
	cfg.ReadOnlyPct = mix
	var b *bench7.Bench
	return harness.Workload{
		Setup: func(e stm.STM) error {
			b = bench7.Setup(e, cfg)
			return nil
		},
		BindOp: func(th stm.Thread, worker int, rng *util.Rand) func() {
			return b.NewOps(th, rng).Op
		},
		Check: func(e stm.STM) error { return b.Check() },
	}
}

// rbWorkload is the Figure 5/10 microbenchmark: lookups/inserts/removals
// over a pre-filled tree. seed feeds the pre-fill RNG so seeded runs
// rebuild the identical tree (0 keeps the legacy fixed pre-fill).
func (o Options) rbWorkload(seed uint64) harness.Workload {
	var tree *rbtree.Tree
	keyRange := o.RBRange
	updPct := o.RBUpdate
	return harness.Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			tree = rbtree.New(th)
			rng := util.NewRand(seed ^ 0x5eed)
			// Pre-fill to half occupancy, as customary for this bench.
			for i := 0; i < keyRange/2; i++ {
				k := stm.Word(rng.Intn(keyRange) + 1)
				stm.AtomicVoid(th, func(tx stm.Tx) { tree.Insert(tx, k, k) })
			}
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			k := stm.Word(rng.Intn(keyRange) + 1)
			r := rng.Intn(100)
			switch {
			case r < updPct/2:
				stm.Atomic(th, func(tx stm.Tx) bool { return tree.Insert(tx, k, k) })
			case r < updPct:
				stm.Atomic(th, func(tx stm.Tx) bool { return tree.Delete(tx, k) })
			default:
				// Lookups are declared read-only: the microbenchmark's 80%
				// read share rides each engine's RO fast path.
				stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { v, _ := tree.Lookup(tx, k); return v })
			}
		},
		Check: func(e stm.STM) error {
			th := e.NewThread(0)
			return stm.AtomicRO(th, func(tx stm.TxRO) (err error) {
				defer func() {
					if r := recover(); r != nil {
						if _, rb := r.(stm.RollbackSignal); rb {
							panic(r) // engine retry signal, not an invariant failure
						}
						err = fmt.Errorf("rbtree invariant: %v", r)
					}
				}()
				tree.CheckInvariants(tx)
				return nil
			})
		},
	}
}

// stampWorkSpec adapts one STAMP workload to the fixed-work harness.
func (o Options) stampWorkSpec(name string, threads int) func(seed uint64) harness.WorkSpec {
	return func(seed uint64) harness.WorkSpec {
		var app stamp.App
		return harness.WorkSpec{
			Setup: func(e stm.STM) error {
				var err error
				if app, err = stamp.New(name, o.Scale); err != nil {
					return err
				}
				if err := app.Setup(e); err != nil {
					return err
				}
				app.Bind(threads)
				return nil
			},
			Work: func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
				app.Work(e, th, worker, t, rng)
			},
			Check: func(e stm.STM) error { return app.Check(e) },
		}
	}
}

// leeWorkSpec adapts a Lee-TM board to the fixed-work harness.
func leeWorkSpec(board leetm.Board) func(seed uint64) harness.WorkSpec {
	return func(seed uint64) harness.WorkSpec {
		var r *leetm.Router
		return harness.WorkSpec{
			Setup: func(e stm.STM) error { r = leetm.Setup(e, board); return nil },
			Work: func(e stm.STM, th stm.Thread, worker, t int, rng *util.Rand) {
				r.Work(e, th, worker, t, rng)
			},
			Check: func(e stm.STM) error { return r.Check() },
		}
	}
}

// throughputRecords sweeps threads for each spec on the workload built
// by mk and returns every per-repeat record.
func (o Options) throughputRecords(experiment, workload string, specs []harness.EngineSpec, mk func(seed uint64) harness.Workload) ([]results.Record, error) {
	var recs []results.Record
	for _, spec := range specs {
		for _, tc := range o.Threads {
			r, err := harness.RepeatThroughput(spec, mk, o.runCfg(experiment, workload, tc))
			recs = append(recs, r...)
			if err != nil {
				return recs, fmt.Errorf("%s %s: %w", experiment, workload, err)
			}
		}
	}
	return recs, nil
}

// workRecords sweeps threads for each spec on the fixed-work benchmark
// built by mk (re-invoked per (threads, repeat) so state is fresh).
func (o Options) workRecords(experiment, workload string, specs []harness.EngineSpec, mk func(threads int) func(seed uint64) harness.WorkSpec) ([]results.Record, error) {
	var recs []results.Record
	for _, spec := range specs {
		for _, tc := range o.Threads {
			r, err := harness.RepeatWork(spec, mk(tc), o.runCfg(experiment, workload, tc))
			recs = append(recs, r...)
			if err != nil {
				return recs, fmt.Errorf("%s %s: %w", experiment, workload, err)
			}
		}
	}
	return recs, nil
}

// metricThroughput and metricDuration pick the figure value out of one
// aggregated point (medians, so repeats are outlier-robust).
func metricThroughput(a results.Agg) float64 { return a.Throughput.Median }
func metricDuration(a results.Agg) float64   { return a.Duration.Median }

// medianSeries folds records into one figure series per engine label,
// in first-appearance order, with one point per thread count.
func medianSeries(recs []results.Record, metric func(results.Agg) float64) []harness.Series {
	idx := map[string]int{}
	series := []harness.Series{}
	for _, a := range results.Aggregate(recs) {
		i, ok := idx[a.Engine]
		if !ok {
			i = len(series)
			idx[a.Engine] = i
			series = append(series, harness.Series{Name: a.Engine, Points: map[int]float64{}})
		}
		series[i].Points[a.Threads] = metric(a)
	}
	return series
}

// aggIndex maps (workload, engine, threads) → aggregated point, for the
// renderers that compute cross-engine ratios (speedup tables).
func aggIndex(recs []results.Record) map[string]results.Agg {
	m := map[string]results.Agg{}
	for _, a := range results.Aggregate(recs) {
		m[fmt.Sprintf("%s|%s|%d", a.Workload, a.Engine, a.Threads)] = a
	}
	return m
}

// Fig2 — STMBench7 throughput: 4 STMs × 3 workload mixes × thread sweep.
func (o Options) Fig2() ([]results.Record, error) {
	var all []results.Record
	for _, mix := range []struct {
		name string
		ro   int
	}{{"read-dominated", 90}, {"read-write", 60}, {"write-dominated", 10}} {
		recs, err := o.throughputRecords("fig2", "stmbench7/"+mix.name, fourEngines("serializer"),
			func(seed uint64) harness.Workload { return o.bench7Workload(mix.ro) })
		all = append(all, recs...)
		if err != nil {
			return all, err
		}
		o.emit(harness.FormatFigure(
			"Figure 2: STMBench7 "+mix.name+" workload", "throughput [tx/s]",
			o.Threads, medianSeries(recs, metricThroughput)))
	}
	return all, nil
}

// fig3Threads is the paper's STAMP sweep; shrunk to the configured sweep
// when it is narrower (quick mode).
func (o Options) fig3Threads() []int {
	threads := []int{1, 2, 4, 8}
	if len(o.Threads) < 4 {
		threads = o.Threads
	}
	return threads
}

// Fig3 — STAMP: speedup of SwissTM over TL2 and TinySTM (speedup − 1),
// per workload, for 1, 2, 4, 8 threads. Each engine is measured once
// per point; both baseline tables are rendered from the same records.
func (o Options) Fig3() ([]results.Record, error) {
	threads := o.fig3Threads()
	specs := []harness.EngineSpec{{Kind: "swisstm"}, {Kind: "tl2"}, {Kind: "tinystm"}}
	var all []results.Record
	for _, wl := range stamp.Workloads {
		for _, spec := range specs {
			for _, tc := range threads {
				recs, err := harness.RepeatWork(spec, o.stampWorkSpec(wl, tc), o.runCfg("fig3", "stamp/"+wl, tc))
				all = append(all, recs...)
				if err != nil {
					return all, err
				}
			}
		}
	}
	o.renderFig3(all, threads)
	return all, nil
}

func (o Options) renderFig3(recs []results.Record, threads []int) {
	if o.Out == nil {
		return
	}
	agg := aggIndex(recs)
	for _, baseline := range []struct{ kind, engine string }{{"tl2", "TL2"}, {"tinystm", "TinySTM"}} {
		fmt.Fprintf(o.Out, "# Figure 3: SwissTM vs %s on STAMP (speedup - 1; positive = SwissTM faster)\n", baseline.kind)
		fmt.Fprintf(o.Out, "%-16s", "workload")
		for _, tc := range threads {
			fmt.Fprintf(o.Out, "%10dthr", tc)
		}
		fmt.Fprintln(o.Out)
		for _, wl := range stamp.Workloads {
			fmt.Fprintf(o.Out, "%-16s", wl)
			for _, tc := range threads {
				swiss := agg[fmt.Sprintf("stamp/%s|SwissTM|%d", wl, tc)]
				base := agg[fmt.Sprintf("stamp/%s|%s|%d", wl, baseline.engine, tc)]
				if swiss.Duration.Median <= 0 {
					fmt.Fprintf(o.Out, "%13s", "-")
					continue
				}
				fmt.Fprintf(o.Out, "%13.2f", base.Duration.Median/swiss.Duration.Median-1)
			}
			fmt.Fprintln(o.Out)
		}
		fmt.Fprintln(o.Out)
	}
}

// Fig4 — Lee-TM execution time: SwissTM, TinySTM, RSTM on the memory and
// main boards (the paper could not run TL2 on Lee-TM; we mirror the
// line-up).
func (o Options) Fig4() ([]results.Record, error) {
	specs := []harness.EngineSpec{{Kind: "rstm", Manager: "polka", Label: "RSTM"}, {Kind: "tinystm"}, {Kind: "swisstm"}}
	var all []results.Record
	for _, board := range []leetm.Board{leetm.MemoryBoard(), leetm.MainBoard()} {
		board := board
		recs, err := o.workRecords("fig4", "leetm/"+board.Name, specs,
			func(threads int) func(uint64) harness.WorkSpec { return leeWorkSpec(board) })
		all = append(all, recs...)
		if err != nil {
			return all, err
		}
		o.emit(harness.FormatFigure(
			"Figure 4: Lee-TM "+board.Name+" board", "duration [s]",
			o.Threads, medianSeries(recs, metricDuration)))
	}
	return all, nil
}

// Fig5 — red-black tree throughput, 4 STMs, range 16384, 20% updates.
func (o Options) Fig5() ([]results.Record, error) {
	recs, err := o.throughputRecords("fig5", "rbtree", fourEngines("polka"), o.rbWorkload)
	if err != nil {
		return recs, err
	}
	o.emit(harness.FormatFigure(
		fmt.Sprintf("Figure 5: red-black tree (range %d, %d%% updates)", o.RBRange, o.RBUpdate),
		"throughput [tx/s]", o.Threads, medianSeries(recs, metricThroughput)))
	return recs, nil
}

// Fig7 — eager vs lazy conflict detection in read-dominated STMBench7:
// TinySTM (eager), RSTM eager, RSTM lazy, TL2 (lazy).
func (o Options) Fig7() ([]results.Record, error) {
	specs := []harness.EngineSpec{
		{Kind: "tinystm", Label: "TinySTM (eager)"},
		{Kind: "rstm", Acquire: "eager", Manager: "polka", Label: "RSTM eager"},
		{Kind: "rstm", Acquire: "lazy", Manager: "polka", Label: "RSTM lazy"},
		{Kind: "tl2", Label: "TL2 (lazy)"},
	}
	recs, err := o.throughputRecords("fig7", "stmbench7/read-dominated", specs,
		func(seed uint64) harness.Workload { return o.bench7Workload(90) })
	if err != nil {
		return recs, err
	}
	o.emit(harness.FormatFigure(
		"Figure 7: eager vs lazy conflict detection, read-dominated STMBench7",
		"throughput [tx/s]", o.Threads, medianSeries(recs, metricThroughput)))
	return recs, nil
}

// Fig8 — "irregular" Lee-TM: SwissTM vs TinySTM with R ∈ {0, 5, 20}% of
// transactions updating the shared object Oc.
func (o Options) Fig8() ([]results.Record, error) {
	board := leetm.MemoryBoard()
	var all []results.Record
	for _, base := range []harness.EngineSpec{{Kind: "swisstm"}, {Kind: "tinystm"}} {
		for _, r := range []int{0, 5, 20} {
			b := board
			b.IrregularPct = r
			spec := base
			spec.Label = fmt.Sprintf("%s %d%%", base.DisplayName(), r)
			recs, err := o.workRecords("fig8", "leetm/memory-irregular", []harness.EngineSpec{spec},
				func(threads int) func(uint64) harness.WorkSpec { return leeWorkSpec(b) })
			all = append(all, recs...)
			if err != nil {
				return all, err
			}
		}
	}
	o.emit(harness.FormatFigure(
		"Figure 8: irregular Lee-TM (memory board), SwissTM vs TinySTM",
		"duration [s]", o.Threads, medianSeries(all, metricDuration)))
	return all, nil
}

// Fig9 — Polka vs Greedy contention managers in RSTM on read-dominated
// STMBench7.
func (o Options) Fig9() ([]results.Record, error) {
	specs := []harness.EngineSpec{
		{Kind: "rstm", Manager: "greedy", Label: "RSTM Greedy"},
		{Kind: "rstm", Manager: "polka", Label: "RSTM Polka"},
	}
	recs, err := o.throughputRecords("fig9", "stmbench7/read-dominated", specs,
		func(seed uint64) harness.Workload { return o.bench7Workload(90) })
	if err != nil {
		return recs, err
	}
	o.emit(harness.FormatFigure(
		"Figure 9: Polka vs Greedy (RSTM), read-dominated STMBench7",
		"throughput [tx/s]", o.Threads, medianSeries(recs, metricThroughput)))
	return recs, nil
}

// Fig10 — SwissTM's two-phase CM vs plain Greedy on the red-black tree:
// Greedy's shared startup counter costs short transactions dearly.
func (o Options) Fig10() ([]results.Record, error) {
	specs := []harness.EngineSpec{
		{Kind: "swisstm", Label: "Two-phase"},
		{Kind: "swisstm", Policy: "greedy", Label: "Greedy"},
	}
	recs, err := o.throughputRecords("fig10", "rbtree", specs, o.rbWorkload)
	if err != nil {
		return recs, err
	}
	o.emit(harness.FormatFigure(
		"Figure 10: two-phase vs Greedy CM (SwissTM), red-black tree",
		"throughput [tx/s]", o.Threads, medianSeries(recs, metricThroughput)))
	return recs, nil
}

// Fig11 — back-off vs no back-off (SwissTM) on STAMP intruder.
func (o Options) Fig11() ([]results.Record, error) {
	specs := []harness.EngineSpec{
		{Kind: "swisstm", NoBackoff: true, Label: "No backoff"},
		{Kind: "swisstm", Label: "Linear backoff"},
	}
	recs, err := o.workRecords("fig11", "stamp/intruder", specs,
		func(threads int) func(uint64) harness.WorkSpec { return o.stampWorkSpec("intruder", threads) })
	if err != nil {
		return recs, err
	}
	o.emit(harness.FormatFigure(
		"Figure 11: back-off vs no back-off (SwissTM), STAMP intruder",
		"duration [s]", o.Threads, medianSeries(recs, metricDuration)))
	return recs, nil
}

// Fig12 — speedup (−1) of the two-phase CM over timid in SwissTM on the
// three STMBench7 mixes.
func (o Options) Fig12() ([]results.Record, error) {
	specs := []harness.EngineSpec{
		{Kind: "swisstm"},
		{Kind: "swisstm", Policy: "timid"},
	}
	var all []results.Record
	mixes := []struct {
		name string
		ro   int
	}{{"read", 90}, {"read/write", 60}, {"write", 10}}
	for _, mix := range mixes {
		recs, err := o.throughputRecords("fig12", "stmbench7/"+mix.name, specs,
			func(seed uint64) harness.Workload { return o.bench7Workload(mix.ro) })
		all = append(all, recs...)
		if err != nil {
			return all, err
		}
	}
	if o.Out != nil {
		agg := aggIndex(all)
		series := []harness.Series{}
		for _, mix := range mixes {
			s := harness.Series{Name: mix.name, Points: map[int]float64{}}
			for _, tc := range o.Threads {
				two := agg[fmt.Sprintf("stmbench7/%s|SwissTM|%d", mix.name, tc)]
				timid := agg[fmt.Sprintf("stmbench7/%s|SwissTM(timid)|%d", mix.name, tc)]
				if timid.Throughput.Median > 0 {
					s.Points[tc] = two.Throughput.Median/timid.Throughput.Median - 1
				}
			}
			series = append(series, s)
		}
		o.emit(harness.FormatFigure(
			"Figure 12: two-phase vs timid CM speedup-1 (SwissTM), STMBench7",
			"speedup - 1", o.Threads, series))
	}
	return all, nil
}

// granularities lists the sweep of Figure 13 in words per stripe. The
// paper sweeps 2^2..2^8 *bytes* with 32-bit words, i.e. 1..64 words;
// with this repository's 64-bit words the same word counts are
// 2^0..2^6 words ≡ 2^3..2^9 bytes.
var granularities = []uint{0, 1, 2, 3, 4, 5, 6}

// granLabel names one granularity's SwissTM configuration in records.
func granLabel(g uint) string { return fmt.Sprintf("SwissTM %dw/stripe", 1<<g) }

// granBench is one benchmark of the Figure 13 / Table 2 granularity
// sweep: run measures it under one granularity and returns the records.
type granBench struct {
	name      string // display name in tables
	workload  string // record workload tag
	fixedWork bool   // merit = 1/duration (else throughput)
	run       func(g uint) ([]results.Record, error)
}

func (o Options) granBenchmarks(experiment string, threads int) []granBench {
	mk := func(g uint) harness.EngineSpec {
		return harness.EngineSpec{Kind: "swisstm", StripeWords: 1 << g, Label: granLabel(g)}
	}
	benches := []granBench{}
	for _, wl := range stamp.Workloads {
		wl := wl
		benches = append(benches, granBench{name: wl, workload: "stamp/" + wl, fixedWork: true,
			run: func(g uint) ([]results.Record, error) {
				return harness.RepeatWork(mk(g), o.stampWorkSpec(wl, threads), o.runCfg(experiment, "stamp/"+wl, threads))
			}})
	}
	benches = append(benches, granBench{name: "red-black tree", workload: "rbtree",
		run: func(g uint) ([]results.Record, error) {
			return harness.RepeatThroughput(mk(g), o.rbWorkload, o.runCfg(experiment, "rbtree", threads))
		}})
	for _, board := range []leetm.Board{leetm.MemoryBoard(), leetm.MainBoard()} {
		board := board
		benches = append(benches, granBench{name: "Lee-TM " + board.Name, workload: "leetm/" + board.Name, fixedWork: true,
			run: func(g uint) ([]results.Record, error) {
				return harness.RepeatWork(mk(g), leeWorkSpec(board), o.runCfg(experiment, "leetm/"+board.Name, threads))
			}})
	}
	for _, mix := range []struct {
		name string
		ro   int
	}{{"STMBench7 read", 90}, {"STMBench7 read-write", 60}, {"STMBench7 write", 10}} {
		mix := mix
		wl := "stmbench7/" + strings.ReplaceAll(strings.TrimPrefix(mix.name, "STMBench7 "), " ", "-")
		benches = append(benches, granBench{name: mix.name, workload: wl,
			run: func(g uint) ([]results.Record, error) {
				return harness.RepeatThroughput(mk(g),
					func(seed uint64) harness.Workload { return o.bench7Workload(mix.ro) },
					o.runCfg(experiment, wl, threads))
			}})
	}
	return benches
}

// merit extracts one benchmark's figure of merit (higher = better) for
// one granularity from that run's records.
func (b granBench) merit(recs []results.Record) float64 {
	aggs := results.Aggregate(recs)
	if len(aggs) == 0 {
		return 0
	}
	a := aggs[0]
	if b.fixedWork {
		if a.Duration.Median <= 0 {
			return 0
		}
		return 1 / a.Duration.Median
	}
	return a.Throughput.Median
}

// granSweep measures every benchmark under every granularity in grans,
// returning all records plus merit[granularity][benchmark index].
func (o Options) granSweep(experiment string, grans []uint, threads int) ([]results.Record, map[uint][]float64, error) {
	benches := o.granBenchmarks(experiment, threads)
	var all []results.Record
	score := make(map[uint][]float64, len(grans))
	for _, g := range grans {
		for _, b := range benches {
			recs, err := b.run(g)
			all = append(all, recs...)
			if err != nil {
				return all, score, fmt.Errorf("%s %s gran 2^%d: %w", experiment, b.name, g, err)
			}
			score[g] = append(score[g], b.merit(recs))
		}
	}
	return all, score, nil
}

// Fig13 — average speedup (−1) of each lock granularity against all the
// others, across all benchmarks, at 8 threads (or the sweep's maximum).
func (o Options) Fig13() ([]results.Record, error) {
	threads := o.Threads[len(o.Threads)-1]
	all, score, err := o.granSweep("fig13", granularities, threads)
	if err != nil {
		return all, err
	}
	if o.Out != nil {
		nBench := len(score[granularities[0]])
		fmt.Fprintf(o.Out, "# Figure 13: average speedup-1 per lock granularity vs all others (%d threads)\n", threads)
		fmt.Fprintf(o.Out, "# granularity axis: words/stripe (paper: 2^2..2^8 bytes at 4B words; here 64-bit words)\n")
		fmt.Fprintf(o.Out, "%-18s%14s\n", "words/stripe", "avg speedup-1")
		for _, g := range granularities {
			sum := 0.0
			for bi := 0; bi < nBench; bi++ {
				others := []float64{}
				for _, g2 := range granularities {
					if g2 != g {
						others = append(others, score[g2][bi])
					}
				}
				sum += harness.GeoMeanSpeedup(score[g][bi], others)
			}
			fmt.Fprintf(o.Out, "%-18s%14.3f\n", fmt.Sprintf("%d", 1<<g), sum/float64(nBench))
		}
		fmt.Fprintln(o.Out)
	}
	return all, nil
}

// Table1 — effectiveness of STM design-choice combinations on the mixed
// (read-write) STMBench7 workload: the paper's qualitative ranking,
// quantified as throughput at the sweep's top thread count.
func (o Options) Table1() ([]results.Record, error) {
	threads := o.Threads[len(o.Threads)-1]
	specs := []harness.EngineSpec{
		{Kind: "rstm", Acquire: "lazy", Manager: "polka", Label: "lazy/invisible/any (TL2-like)"},
		{Kind: "rstm", Acquire: "eager", Reads: "visible", Manager: "polka", Label: "eager/visible/any"},
		{Kind: "rstm", Acquire: "eager", Manager: "polka", Label: "eager/invisible/Polka"},
		{Kind: "rstm", Acquire: "eager", Manager: "timid", Label: "eager/invisible/timid"},
		{Kind: "swisstm", Policy: "timid", Label: "mixed/invisible/timid"},
		{Kind: "swisstm", Label: "mixed/invisible/2-phase (SwissTM)"},
	}
	var all []results.Record
	for _, spec := range specs {
		recs, err := harness.RepeatThroughput(spec,
			func(seed uint64) harness.Workload { return o.bench7Workload(60) },
			o.runCfg("table1", "stmbench7/read-write", threads))
		all = append(all, recs...)
		if err != nil {
			return all, fmt.Errorf("table1 %s: %w", spec.DisplayName(), err)
		}
	}
	if o.Out != nil {
		fmt.Fprintf(o.Out, "# Table 1: design-choice combinations on read-write STMBench7 (%d threads)\n", threads)
		fmt.Fprintf(o.Out, "%-36s%16s\n", "acquire/reads/CM", "throughput tx/s")
		for _, a := range results.Aggregate(all) {
			fmt.Fprintf(o.Out, "%-36s%16.1f\n", a.Engine, a.Throughput.Median)
		}
		fmt.Fprintln(o.Out)
	}
	return all, nil
}

// table2Grans are Table 2's three granularities: 1, 4 and 16 words per
// stripe (the paper's 2^2, 2^4 and 2^6 bytes with 32-bit words).
var table2Grans = []uint{0, 2, 4}

// Table2 — per-benchmark relative speedups (−1) between three lock
// granularities: 4 words vs 1 word vs 16 words per stripe.
func (o Options) Table2() ([]results.Record, error) {
	threads := o.Threads[len(o.Threads)-1]
	all, score, err := o.granSweep("table2", table2Grans, threads)
	if err != nil {
		return all, err
	}
	if o.Out != nil {
		benches := o.granBenchmarks("table2", threads)
		fmt.Fprintf(o.Out, "# Table 2: lock granularity comparison (%d threads; speedup-1)\n", threads)
		fmt.Fprintf(o.Out, "%-22s%12s%12s%12s\n", "benchmark", "4w vs 1w", "4w vs 16w", "1w vs 16w")
		sums := [3]float64{}
		for bi, b := range benches {
			v1, v4, v16 := score[0][bi], score[2][bi], score[4][bi]
			ratio := func(a, b float64) float64 {
				if b <= 0 {
					return 0
				}
				return a/b - 1
			}
			c := [3]float64{ratio(v4, v1), ratio(v4, v16), ratio(v1, v16)}
			for i := range sums {
				sums[i] += c[i]
			}
			fmt.Fprintf(o.Out, "%-22s%12.2f%12.2f%12.2f\n", b.name, c[0], c[1], c[2])
		}
		n := float64(len(benches))
		fmt.Fprintf(o.Out, "%-22s%12.2f%12.2f%12.2f\n\n", "Average", sums[0]/n, sums[1]/n, sums[2]/n)
	}
	return all, nil
}

// Names lists the runnable experiments.
var Names = []string{
	"fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "table1", "table2",
	"txkv",
}

// Run dispatches one experiment by name, returning its per-repeat
// records (also on error: whatever was measured before the failure).
func (o Options) Run(name string) ([]results.Record, error) {
	switch name {
	case "fig2":
		return o.Fig2()
	case "fig3":
		return o.Fig3()
	case "fig4":
		return o.Fig4()
	case "fig5":
		return o.Fig5()
	case "fig7":
		return o.Fig7()
	case "fig8":
		return o.Fig8()
	case "fig9":
		return o.Fig9()
	case "fig10":
		return o.Fig10()
	case "fig11":
		return o.Fig11()
	case "fig12":
		return o.Fig12()
	case "fig13":
		return o.Fig13()
	case "table1":
		return o.Table1()
	case "table2":
		return o.Table2()
	case "txkv":
		return o.TxKV()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
}
