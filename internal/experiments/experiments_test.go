package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns options small enough for unit tests.
func tiny(out *bytes.Buffer) Options {
	o := Quick(out)
	o.Duration = 50 * time.Millisecond
	o.Threads = []int{1, 2}
	return o
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Run("fig6"); err == nil {
		t.Fatal("fig6 is a diagram, not an experiment; expected an error")
	}
}

// TestSmokeLightweight exercises the cheap experiments end to end and
// checks they emit the expected headers and series.
func TestSmokeLightweight(t *testing.T) {
	cases := map[string][]string{
		"fig5":   {"Figure 5", "SwissTM", "TL2", "TinySTM", "RSTM"},
		"fig9":   {"Figure 9", "Greedy", "Polka"},
		"fig10":  {"Figure 10", "Two-phase", "Greedy"},
		"table1": {"Table 1", "mixed/invisible/2-phase"},
	}
	for name, wants := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tiny(&buf).Run(name); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestSmokeFixedWork exercises one fixed-work experiment (Figure 11's
// intruder ablation) at test scale.
func TestSmokeFixedWork(t *testing.T) {
	var buf bytes.Buffer
	o := tiny(&buf)
	if err := o.Run("fig11"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "back-off") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}
