package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"swisstm/internal/results"
)

// tiny returns options small enough for unit tests.
func tiny(out *bytes.Buffer) Options {
	o := Quick(out)
	o.Duration = 50 * time.Millisecond
	o.Threads = []int{1, 2}
	return o
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := tiny(&buf).Run("fig6"); err == nil {
		t.Fatal("fig6 is a diagram, not an experiment; expected an error")
	}
}

// TestSmokeLightweight exercises the cheap experiments end to end and
// checks they emit the expected headers and series and return records.
func TestSmokeLightweight(t *testing.T) {
	cases := map[string][]string{
		"fig5":   {"Figure 5", "SwissTM", "TL2", "TinySTM", "RSTM"},
		"fig9":   {"Figure 9", "Greedy", "Polka"},
		"fig10":  {"Figure 10", "Two-phase", "Greedy"},
		"table1": {"Table 1", "mixed/invisible/2-phase"},
	}
	for name, wants := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			recs, err := tiny(&buf).Run(name)
			if err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
			if len(recs) == 0 {
				t.Fatal("experiment returned no records")
			}
			for _, r := range recs {
				if r.Experiment != name {
					t.Fatalf("record tagged %q, want %q", r.Experiment, name)
				}
				if r.Workload == "" || r.Engine == "" || r.EngineKind == "" {
					t.Fatalf("record missing identity fields: %+v", r)
				}
				if !r.CheckedOK {
					t.Fatalf("record failed its check: %+v", r)
				}
			}
		})
	}
}

// TestSmokeTxKV runs the txkv family at test scale in seeded fixed-ops
// mode and checks the rendered figures, record tagging and oracles.
func TestSmokeTxKV(t *testing.T) {
	var buf bytes.Buffer
	o := tiny(&buf)
	o.KVKeys = 256
	o.Seed = 5
	o.FixedOps = 150
	recs, err := o.Run("txkv")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"TxKV read-heavy (zipfian", "TxKV transfer", "TxKV read-heavy (uniform", "SwissTM", "TL2", "TinySTM", "RSTM"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// 4 engines × 5 workloads × 2 thread counts.
	if len(recs) != 4*5*2 {
		t.Fatalf("want 40 records, got %d", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Workload] = true
		if r.Experiment != "txkv" || !r.CheckedOK || r.Ops == 0 {
			t.Fatalf("bad txkv record: %+v", r)
		}
	}
	for _, wl := range []string{"txkv/read-heavy-zipf", "txkv/update-heavy-zipf", "txkv/transfer-zipf", "txkv/read-only-zipf", "txkv/read-heavy-uniform"} {
		if !seen[wl] {
			t.Errorf("no records for workload %s (have %v)", wl, seen)
		}
	}
}

// TestSmokeFixedWork exercises one fixed-work experiment (Figure 11's
// intruder ablation) at test scale.
func TestSmokeFixedWork(t *testing.T) {
	var buf bytes.Buffer
	o := tiny(&buf)
	recs, err := o.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "back-off") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
	// Two specs × two thread counts, one repeat each.
	if len(recs) != 4 {
		t.Fatalf("want 4 records, got %d", len(recs))
	}
	for _, r := range recs {
		if r.Workload != "stamp/intruder" || r.DurationSec <= 0 || r.Ops == 0 {
			t.Fatalf("bad fixed-work record: %+v", r)
		}
	}
}

// TestRepeatsAggregateInRendering runs fig10 with 3 repeats and checks
// each point carries all repeats while the rendered table stays one row
// per thread count.
func TestRepeatsAggregateInRendering(t *testing.T) {
	var buf bytes.Buffer
	o := tiny(&buf)
	o.Threads = []int{1}
	o.Repeats = 3
	o.Seed = 99 // fixed-ops mode keeps the test fast and deterministic
	o.FixedOps = 200
	recs, err := o.Run("fig10")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*3 { // 2 specs × 3 repeats
		t.Fatalf("want 6 records, got %d", len(recs))
	}
	aggs := results.Aggregate(recs)
	if len(aggs) != 2 {
		t.Fatalf("want 2 aggregated points, got %d", len(aggs))
	}
	for _, a := range aggs {
		if a.Repeats != 3 {
			t.Fatalf("aggregated point has %d repeats, want 3: %+v", a.Repeats, a)
		}
	}
}

// TestSeededRunsReproduceOps is the acceptance check: two seeded runs
// must produce identical per-repeat Ops counts on one thread.
func TestSeededRunsReproduceOps(t *testing.T) {
	run := func() []results.Record {
		o := tiny(new(bytes.Buffer))
		o.Threads = []int{1}
		o.Repeats = 2
		o.Seed = 4242
		o.FixedOps = 150
		recs, err := o.Run("fig9")
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Ops != b[i].Ops {
			t.Fatalf("record %d: Ops %d != %d (seeded runs must reproduce)", i, a[i].Ops, b[i].Ops)
		}
		if a[i].Seed == 0 {
			t.Fatal("seeded run recorded seed 0")
		}
	}
}
