// The txkv experiment family: the transactional key-value store under
// YCSB-style server traffic (DESIGN.md §6). Unlike the paper figures,
// this family is a forward-looking workload axis from the ROADMAP —
// skewed key popularity, mixed point/multi-key/scan transactions —
// run across all four engines like everything else in the pipeline.
package experiments

import (
	"fmt"

	"swisstm/internal/harness"
	"swisstm/internal/results"
	"swisstm/internal/txkv"
)

// txkvWorkloads assembles the measured (tag, generator-config) points:
// the three headline mixes plus read-only under zipfian popularity,
// and one uniform-popularity point to expose the skew axis.
func (o Options) txkvWorkloads() []struct {
	tag string
	cfg txkv.GenConfig
} {
	keys := o.KVKeys
	if keys == 0 {
		keys = 1024
	}
	theta := o.KVZipf
	if theta == 0 {
		theta = 0.99
	}
	type wl = struct {
		tag string
		cfg txkv.GenConfig
	}
	var wls []wl
	for _, mix := range txkv.Mixes {
		wls = append(wls, wl{
			tag: "txkv/" + mix.Name + "-zipf",
			cfg: txkv.GenConfig{Mix: mix, Keys: keys, Zipf: theta},
		})
	}
	wls = append(wls, wl{
		tag: "txkv/" + txkv.ReadHeavy.Name + "-uniform",
		cfg: txkv.GenConfig{Mix: txkv.ReadHeavy, Keys: keys},
	})
	return wls
}

// TxKV — transactional KV store throughput: 4 engines × the YCSB-style
// mixes × thread sweep, with the balance and last-write oracles armed
// on every run.
func (o Options) TxKV() ([]results.Record, error) {
	var all []results.Record
	for _, wl := range o.txkvWorkloads() {
		cfg := wl.cfg
		recs, err := o.throughputRecords("txkv", wl.tag, fourEngines("polka"),
			func(seed uint64) harness.Workload { return txkv.NewGen(cfg).Workload() })
		all = append(all, recs...)
		if err != nil {
			return all, err
		}
		dist := "uniform"
		if cfg.Zipf > 0 {
			dist = fmt.Sprintf("zipfian θ=%.2f", cfg.Zipf)
		}
		o.emit(harness.FormatFigure(
			fmt.Sprintf("TxKV %s (%s, %d keys)", cfg.Mix.Name, dist, cfg.Keys),
			"throughput [tx/s]", o.Threads, medianSeries(recs, metricThroughput)))
	}
	return all, nil
}
