// Package swisstm implements SwissTM, the lock- and word-based software
// transactional memory of Dragojević, Guerraoui and Kapałka, "Stretching
// Transactional Memory" (PLDI 2009) — the paper's primary contribution.
//
// SwissTM's two distinctive design choices (paper §3):
//
//  1. Mixed conflict detection. Write/write conflicts are detected eagerly:
//     a writer acquires a stripe's w-lock at its first write, so a second
//     writer notices immediately and the contention manager arbitrates.
//     Read/write conflicts are detected lazily: reads are invisible and a
//     transaction may read a stripe whose w-lock is held, because the
//     writer's redo log keeps memory unchanged until commit. A global
//     commit counter plus timestamp extension keeps validation cheap.
//
//  2. A two-phase contention manager. Transactions start in the first
//     phase with conceptual priority ∞ and abort themselves on any
//     write/write conflict (the cheap "timid" policy, touching no shared
//     state). Upon their Wn-th write they enter the second phase and draw a
//     Greedy timestamp from a shared counter; among second-phase
//     transactions the older wins, and any second-phase transaction wins
//     against a first-phase one. Rolled-back transactions wait a
//     randomized linear back-off before retrying.
//
// The implementation follows Algorithm 1 and Algorithm 2 of the paper
// line by line; the mapping of memory words to lock-table entries is the
// paper's Figure 1 (shift by the stripe size, mask by the table size).
package swisstm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"swisstm/internal/mem"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// CMPolicy selects the contention-management scheme used on write/write
// conflicts. The paper's SwissTM uses TwoPhase; Greedy and Timid exist to
// reproduce the ablations of §5 (Figures 10 and 12).
type CMPolicy int

const (
	// TwoPhase is the paper's two-phase manager (Algorithm 2).
	TwoPhase CMPolicy = iota
	// Greedy assigns every transaction a Greedy timestamp at its first
	// start, including short ones (Figure 10's strawman).
	Greedy
	// Timid always aborts the attacker (the TL2/TinySTM default,
	// Figure 12's baseline).
	Timid
)

func (p CMPolicy) String() string {
	switch p {
	case TwoPhase:
		return "two-phase"
	case Greedy:
		return "greedy"
	default:
		return "timid"
	}
}

// Config parameterizes an Engine.
type Config struct {
	// ArenaWords is the transactional heap capacity in 64-bit words.
	ArenaWords int
	// Arena optionally supplies a pre-built arena (shared setup);
	// when non-nil ArenaWords is ignored.
	Arena *mem.Arena
	// StripeWords is the number of consecutive words covered by one
	// lock-table entry. The paper's default granularity is 4 words
	// (Table 2 shows it strikes the best balance), and 0 selects that
	// default — the seed's log2-encoded field silently defaulted to
	// 1-word stripes, contradicting its own documentation and tripling
	// read-log traffic on object traversals. Must be a power of two ≤ 64
	// (stripe write masks are 64-bit); pass 1 for word granularity.
	StripeWords int
	// TableBits is log2 of the lock-table entry count (paper: 22).
	TableBits uint
	// Policy is the contention-management scheme (default TwoPhase).
	Policy CMPolicy
	// Wn is the write count at which a two-phase transaction enters its
	// second (Greedy) phase. The paper sets 10.
	Wn int
	// NoBackoff disables the randomized linear back-off after rollbacks
	// (Figure 11's ablation).
	NoBackoff bool
	// BackoffUnit is the spin budget multiplied by the successive-abort
	// count when backing off.
	BackoffUnit int
	// UnwindAborts restores the pre-refactor abort delivery: commit-time
	// conflicts unwind via panic/recover instead of returning through the
	// checked path (DESIGN.md §8). It exists purely as a measurement
	// ablation — the abort-path microbenchmark runs each engine with and
	// without it to price the panic — and must stay off otherwise.
	UnwindAborts bool
	// PrivatizationSafe enables the quiescence scheme sketched in the
	// paper's §6: every committing update transaction waits until all
	// transactions that started before its commit have validated,
	// committed or aborted. Afterwards, data made private by the commit
	// (e.g. an unlinked node) can be accessed non-transactionally with no
	// risk of a belated redo-log write-back or a zombie reader. The paper
	// predicts (and the ablation benchmark confirms) a significant cost.
	PrivatizationSafe bool
	// Obs, when non-nil, collects per-transaction distribution telemetry
	// (retry count, read-/write-set sizes) into per-thread shards at
	// commit (DESIGN.md §11). Off (nil) by default; the instrumented
	// path costs a handful of plain increments and no allocations.
	Obs *obs.TxnObs
}

func (c *Config) fill() {
	if c.ArenaWords == 0 {
		c.ArenaWords = 1 << 22
	}
	if c.TableBits == 0 {
		c.TableBits = 20
	}
	if c.Wn == 0 {
		c.Wn = 10
	}
	if c.BackoffUnit == 0 {
		c.BackoffUnit = 512
	}
	if c.StripeWords == 0 {
		c.StripeWords = 4
	}
	if c.StripeWords > 64 || c.StripeWords&(c.StripeWords-1) != 0 {
		panic("swisstm: StripeWords must be a power of two ≤ 64")
	}
}

const (
	rLocked  = uint64(1) // r-lock value while its owner is committing
	infinity = ^uint64(0)
)

// wEntry is a write-log entry covering one lock-table stripe: the redo
// values for the words of that stripe this transaction has written. The
// stripe's w-lock points at its owner's wEntry, which makes the lock table
// itself the write-set lookup structure (as in the C implementation).
type wEntry struct {
	owner      atomic.Pointer[txn] // read by other threads; everything else is owner-private
	lockIdx    uint32
	base       stm.Addr // first word of the primary stripe
	mask       uint64   // bit i set ⇒ vals[i] holds the new value of base+i
	vals       []stm.Word
	savedRLock uint64 // r-lock value saved while locked at commit
	// overflow holds writes to *aliased* stripes: distinct memory regions
	// that map to the same lock-table entry (the table is a hash of the
	// address space, Figure 1). Aliasing is rare with paper-sized tables
	// but must be correct at any table size.
	overflow []wsPair
}

// wsPair is one buffered aliased write.
type wsPair struct {
	addr stm.Addr
	val  stm.Word
}

// rEntry is a read-log entry: the raw (unlocked) r-lock value observed.
type rEntry struct {
	lockIdx uint32
	rlock   uint64 // version<<1 as read
}

// Engine is a SwissTM instance: an arena plus its lock table and global
// counters. Field order is cache-line-aware: the read-mostly mapping
// state (heap slice, lock-table slices, shift/mask) sits together and is
// never written after New, while the two global counters — the hottest
// write-shared words in the system — are each padded onto a private line
// so a committer bumping commitTS does not invalidate the line holding
// greedyTS (or the mapping state) in every other core's cache.
type Engine struct {
	cfg     Config
	arena   *mem.Arena
	heap    []atomic.Uint64          // arena backing array, cached for direct indexing
	rlocks  []atomic.Uint64          // version<<1 when unlocked; 1 when locked
	wlocks  []atomic.Pointer[wEntry] // nil when unlocked
	shift   uint
	mask    uint32
	stripeW uint32 // words per stripe

	_        mem.CacheLinePad
	commitTS mem.PaddedUint64 // global commit counter (Algorithm 1)
	greedyTS mem.PaddedUint64 // Greedy timestamp source (Algorithm 2)
	// activity publishes each thread's in-flight snapshot timestamp + 1
	// (0 = no transaction running); used by the quiescence scheme. One
	// padded slot per thread: each slot is stored by exactly one thread
	// but polled by every committer, so unpadded slots false-share
	// heavily under PrivatizationSafe (see BenchmarkActivitySlotLayout).
	activity [stm.MaxThreads]mem.PaddedUint64
}

// New creates a SwissTM engine.
func New(cfg Config) *Engine {
	cfg.fill()
	a := cfg.Arena
	if a == nil {
		a = mem.NewArena(cfg.ArenaWords)
	}
	n := 1 << cfg.TableBits
	return &Engine{
		cfg:     cfg,
		arena:   a,
		heap:    a.Words(),
		rlocks:  make([]atomic.Uint64, n),
		wlocks:  make([]atomic.Pointer[wEntry], n),
		shift:   uint(bits.TrailingZeros(uint(cfg.StripeWords))),
		mask:    uint32(n - 1),
		stripeW: uint32(cfg.StripeWords),
	}
}

// Name implements stm.STM.
func (e *Engine) Name() string {
	if e.cfg.Policy != TwoPhase {
		return fmt.Sprintf("SwissTM(%s)", e.cfg.Policy)
	}
	return "SwissTM"
}

// Arena implements stm.STM.
func (e *Engine) Arena() *mem.Arena { return e.arena }

// stripe returns the lock-table index for addr (Figure 1's mapping).
func (e *Engine) stripe(a stm.Addr) uint32 { return (a >> e.shift) & e.mask }

// stripeBase returns the first address covered by the same stripe as a.
func (e *Engine) stripeBase(a stm.Addr) stm.Addr { return a &^ (e.stripeW - 1) }

// txn is a transaction descriptor. One descriptor per thread is reused
// across that thread's transactions.
type txn struct {
	e         *Engine
	id        int
	ro        bool // current transaction declared read-only (stm.ReadOnly)
	validTS   uint64
	cmTS      atomic.Uint64 // ∞ in phase one; Greedy timestamp in phase two
	status    atomic.Uint32 // 0 active, 1 killed by another transaction's CM
	readLog   []rEntry
	writeLog  []*wEntry
	pool      []*wEntry
	poolIdx   int
	rc        util.StripeCache // read-set dedup cache (DESIGN.md §7)
	rng       *util.Rand
	succ      int           // successive aborts of the current logical transaction
	quiesceTS uint64        // commit timestamp to quiesce on (privatization safety)
	roV       roTx          // pre-allocated read-only view returned by Begin(ReadOnly)
	obsh      *obs.TxnShard // per-thread telemetry shard (nil = obs off)
	stats     stm.Stats
}

// NewThread implements stm.STM.
func (e *Engine) NewThread(id int) stm.Thread {
	if id < 0 || id >= stm.MaxThreads {
		panic("swisstm: thread id out of range")
	}
	t := &txn{
		e:        e,
		id:       id,
		readLog:  make([]rEntry, 0, 1024),
		writeLog: make([]*wEntry, 0, 256),
		rng:      util.NewRand(uint64(id)*0x9e3779b9 + 1),
	}
	t.roV.t = t
	t.rc.Init(1024)
	t.cmTS.Store(infinity)
	if e.cfg.Obs != nil {
		t.obsh = e.cfg.Obs.Shard(id)
	}
	return t
}

// Stats implements stm.Thread.
func (t *txn) Stats() stm.Stats { return t.stats }

// Run implements stm.Thread: the engine-facing v2 primitive.
func (t *txn) Run(body func(stm.Tx) error, mode stm.Mode) error {
	return stm.RunLoop(t, body, mode)
}

// Begin implements stm.Thread: start one attempt in the given mode. A
// declared read-only transaction gets the pre-allocated roTx view, whose
// method set runs the read-only protocol with no mode branches on the
// read-write fast path.
func (t *txn) Begin(mode stm.Mode, restart bool) stm.Tx {
	if mode == stm.ReadOnly {
		t.ro = true
		t.beginRO()
		return &t.roV
	}
	t.ro = false
	t.begin(restart)
	return t
}

// Commit implements stm.Thread: try to commit the current attempt, and on
// success perform the post-commit duties (retry-counter reset and, under
// PrivatizationSafe, deactivation + quiescence).
func (t *txn) Commit() bool {
	var ok bool
	if t.ro {
		ok = t.commitRO()
	} else {
		ok = t.commit()
	}
	if ok {
		t.succ = 0
		if t.e.cfg.PrivatizationSafe {
			t.e.activity[t.id].Store(0)
			if t.quiesceTS != 0 {
				t.e.quiesce(t.id, t.quiesceTS)
				t.quiesceTS = 0
			}
		}
	}
	return ok
}

// Unwind implements stm.Thread: triage a panic recovered mid-body. The
// rollback signal marks an already-bookkept abort; anything else is a
// foreign panic (bug in user code, arena exhaustion) — release write
// locks so other threads are not wedged and let the caller propagate it.
func (t *txn) Unwind(r any) bool {
	if _, rb := r.(stm.RollbackSignal); rb {
		t.stats.AbortsUnwound++
		return true
	}
	t.releaseWLocks()
	if t.e.cfg.PrivatizationSafe {
		t.e.activity[t.id].Store(0)
	}
	return false
}

// AbortUser implements stm.Thread: roll back because the body returned an
// error. Locks released, buffered writes dropped, no retry; the checked
// delivery keeps the AbortsUnwound/AbortsReturned partition exact.
func (t *txn) AbortUser() {
	t.abort()
	t.stats.AbortsUser++
	t.stats.AbortsReturned++
	t.succ = 0 // the logical transaction ends here, like a commit
	if t.e.cfg.PrivatizationSafe {
		t.e.activity[t.id].Store(0)
	}
}

// Backoff implements stm.Thread: cm-on-rollback (Algorithm 2 line 11) —
// randomized linear back-off proportional to the successive-abort count.
func (t *txn) Backoff() {
	if t.e.cfg.PrivatizationSafe {
		t.e.activity[t.id].Store(0)
	}
	t.succ++
	if !t.e.cfg.NoBackoff {
		util.BackoffLinear(t.rng, t.succ, t.e.cfg.BackoffUnit)
	}
}

// quiesce waits until every other thread's in-flight transaction either
// finished or has validated at a snapshot no older than ts (§6's scheme).
func (e *Engine) quiesce(self int, ts uint64) {
	for i := range e.activity {
		if i == self {
			continue
		}
		for spin := 0; ; spin++ {
			v := e.activity[i].Load()
			if v == 0 || v > ts {
				break
			}
			if spin&0x3f == 0x3f {
				runtime.Gosched()
			}
		}
	}
}

// begin is Algorithm 1's start: snapshot the commit counter, then
// cm-start (Algorithm 2 lines 1-2: a fresh transaction resets its
// timestamp to ∞; a restarted one keeps it, preserving Greedy's
// starvation-freedom for long transactions).
func (t *txn) begin(restart bool) {
	t.validTS = t.e.commitTS.Load()
	if t.e.cfg.PrivatizationSafe {
		t.e.activity[t.id].Store(t.validTS + 1)
	}
	t.status.Store(0)
	t.readLog = t.readLog[:0]
	t.writeLog = t.writeLog[:0]
	t.poolIdx = 0
	t.rc.Reset()
	if !restart {
		switch t.e.cfg.Policy {
		case Greedy:
			t.cmTS.Store(t.e.greedyTS.Add(1))
		default:
			t.cmTS.Store(infinity)
		}
	}
}

// beginRO starts a declared read-only attempt (DESIGN.md §9.3): snapshot
// the commit counter, reset the read log and dedup cache — and nothing
// else. The write log is invariantly empty between transactions (commit
// and abort both truncate it), a read-only transaction never installs a
// w-lock so no CM can kill it (status and cmTS stay untouched), and the
// write-entry pool cursor only matters to writers.
func (t *txn) beginRO() {
	t.validTS = t.e.commitTS.Load()
	if t.e.cfg.PrivatizationSafe {
		t.e.activity[t.id].Store(t.validTS + 1)
	}
	t.readLog = t.readLog[:0]
	t.rc.Reset()
}

func (t *txn) killed() bool { return t.status.Load() != 0 }

// Load implements stm.Tx. A read that cannot proceed must interrupt the
// user closure, so this thin wrapper converts load's checked abort into
// the single unwinding panic (the pre-allocated signal).
func (t *txn) Load(a stm.Addr) stm.Word {
	v, ok := t.load(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// load implements Algorithm 1's read-word. ok=false means the
// transaction aborted (bookkeeping already done by abort()).
func (t *txn) load(a stm.Addr) (stm.Word, bool) {
	if t.killed() {
		t.stats.AbortsKilled++
		t.abort()
		return 0, false
	}
	// Index the lock table through a local slice header masked by its own
	// length: the compiler proves the access in bounds (no check) and the
	// engine pointer is dereferenced once.
	rlocks := t.e.rlocks
	i := int(a>>t.e.shift) & (len(rlocks) - 1)
	idx := uint32(i)
	// The w-lock lookup exists only for read-after-write; a transaction
	// that has written nothing cannot own any w-lock, so read-only
	// transactions skip the shared-table probe entirely.
	if len(t.writeLog) != 0 {
		if we := t.e.wlocks[idx].Load(); we != nil && we.owner.Load() == t {
			// Read-after-write: return the value from our own write log
			// (line 6). Unwritten words of an owned stripe are stable in
			// memory because we hold the w-lock.
			if v, ok := we.get(a); ok {
				return v, true
			}
			return t.e.heap[a].Load(), true
		}
	}
	// Consistent double-read of r-lock around the data word (lines 8-15).
	rl := &rlocks[i]
	var v1 uint64
	var val stm.Word
	for spin := 0; ; spin++ {
		v1 = rl.Load()
		if v1 == rLocked {
			// The owner is committing this stripe; it will release
			// momentarily. Reading would be inconsistent, so wait.
			if spin&0x3f == 0x3f {
				if t.killed() {
					t.stats.AbortsKilled++
					t.abort()
					return 0, false
				}
				runtime.Gosched()
			}
			continue
		}
		val = t.e.heap[a].Load()
		if rl.Load() == v1 {
			break
		}
	}
	// Read-set dedup: a stripe already in the read log needs no second
	// entry. If the observed r-lock still matches the logged one the read
	// is consistent with the first; if it moved, the first read is stale,
	// every future extension would fail on its entry, and the only
	// difference from logging a duplicate is that we abort now instead of
	// at the next validation (see dedup_test.go for the equivalence
	// argument). validate()/extend() therefore scale with *distinct*
	// stripes, not total reads. Consecutive reads of one stripe — field
	// walks over one object — are caught by comparing against the newest
	// log entry before touching the hash cache.
	if n := len(t.readLog); n != 0 && t.readLog[n-1].lockIdx == idx {
		if t.readLog[n-1].rlock == v1 {
			t.stats.ReadsDeduped++
			return val, true
		}
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	if pos, found := t.rc.LookupOrInsert(idx, uint32(len(t.readLog))); found {
		if t.readLog[pos].rlock == v1 {
			t.stats.ReadsDeduped++
			return val, true
		}
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	t.readLog = append(t.readLog, rEntry{lockIdx: idx, rlock: v1})
	if v1>>1 > t.validTS && !t.extend() {
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	return val, true
}

// loadRO is the declared-read-only read protocol: the consistent
// double-read plus dedup/extension of load, minus the write-log probe (a
// read-only transaction owns no w-lock) and minus the kill checks (no
// w-lock means no CM ever targets us). ok=false means the transaction
// aborted.
func (t *txn) loadRO(a stm.Addr) (stm.Word, bool) {
	rlocks := t.e.rlocks
	i := int(a>>t.e.shift) & (len(rlocks) - 1)
	idx := uint32(i)
	rl := &rlocks[i]
	var v1 uint64
	var val stm.Word
	for spin := 0; ; spin++ {
		v1 = rl.Load()
		if v1 == rLocked {
			if spin&0x3f == 0x3f {
				runtime.Gosched()
			}
			continue
		}
		val = t.e.heap[a].Load()
		if rl.Load() == v1 {
			break
		}
	}
	// Same read-set dedup discipline as load (DESIGN.md §7).
	if n := len(t.readLog); n != 0 && t.readLog[n-1].lockIdx == idx {
		if t.readLog[n-1].rlock == v1 {
			t.stats.ReadsDeduped++
			return val, true
		}
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	if pos, found := t.rc.LookupOrInsert(idx, uint32(len(t.readLog))); found {
		if t.readLog[pos].rlock == v1 {
			t.stats.ReadsDeduped++
			return val, true
		}
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	t.readLog = append(t.readLog, rEntry{lockIdx: idx, rlock: v1})
	if v1>>1 > t.validTS && !t.extend() {
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return 0, false
	}
	return val, true
}

// Store implements stm.Tx; like Load it converts store's checked abort
// into the unwinding signal, since an eager write conflict interrupts
// the user closure.
func (t *txn) Store(a stm.Addr, v stm.Word) {
	if !t.store(a, v) {
		panic(stm.SignalRollback)
	}
}

// store implements Algorithm 1's write-word: eager w-lock acquisition
// (write/write conflicts surface immediately), redo-log buffering
// (read/write conflicts stay invisible until commit). ok=false means the
// transaction aborted.
func (t *txn) store(a stm.Addr, v stm.Word) bool {
	if t.killed() {
		t.stats.AbortsKilled++
		t.abort()
		return false
	}
	idx := t.e.stripe(a)
	wl := &t.e.wlocks[idx]
	if we := wl.Load(); we != nil && we.owner.Load() == t {
		we.set(a, v)
		return true
	}
	for spin := 0; ; spin++ {
		we := wl.Load()
		if we != nil {
			if we.owner.Load() == t {
				we.set(a, v)
				return true
			}
			// Write/write conflict: ask the contention manager
			// (Algorithm 1 line 26).
			if t.cmShouldAbort(we.owner.Load()) {
				t.stats.AbortsWW++
				t.abort()
				return false
			}
			// CM said wait for the owner to finish.
			if t.killed() {
				t.stats.AbortsKilled++
				t.abort()
				return false
			}
			if spin&0x3f == 0x3f {
				runtime.Gosched()
			}
			continue
		}
		entry := t.newEntry(idx, t.e.stripeBase(a))
		entry.set(a, v)
		if wl.CompareAndSwap(nil, entry) {
			t.writeLog = append(t.writeLog, entry)
			break
		}
		t.poolIdx-- // CAS lost; return the entry to the pool
	}
	// Opacity guard (lines 31-32): if the stripe moved past our snapshot
	// we must revalidate before continuing.
	if rv := t.e.rlocks[idx].Load(); rv != rLocked && rv>>1 > t.validTS && !t.extend() {
		t.stats.AbortsValid++
		t.stats.AbortsValidRead++
		t.abort()
		return false
	}
	t.cmOnWrite()
	return true
}

// commit implements Algorithm 1's commit. It reports false when the
// transaction aborted; commit-time conflicts take the checked return
// path and never unwind (DESIGN.md §8).
func (t *txn) commit() bool {
	if t.killed() {
		t.stats.AbortsKilled++
		return t.commitAbort()
	}
	if len(t.writeLog) == 0 { // read-only fast path (line 35)
		t.stats.Commits++
		t.stats.ReadsLogged += uint64(len(t.readLog))
		if t.obsh != nil {
			t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), 0)
		}
		return true
	}
	// Lock the r-locks of all written stripes so readers cannot observe a
	// partially written state.
	for _, we := range t.writeLog {
		rl := &t.e.rlocks[we.lockIdx]
		we.savedRLock = rl.Load() // unlocked: only the w-lock owner locks it
		rl.Store(rLocked)
	}
	ts := t.e.commitTS.Add(1)
	if ts > t.validTS+1 && !t.validate() {
		for _, we := range t.writeLog {
			t.e.rlocks[we.lockIdx].Store(we.savedRLock)
		}
		t.stats.AbortsValid++
		t.stats.AbortsValidCommit++
		return t.commitAbort()
	}
	newRLock := ts << 1
	for _, we := range t.writeLog {
		m := we.mask
		for m != 0 {
			i := uint(bits.TrailingZeros64(m))
			t.e.heap[we.base+stm.Addr(i)].Store(we.vals[i])
			m &= m - 1
		}
		for _, p := range we.overflow {
			t.e.heap[p.addr].Store(p.val)
		}
		t.e.rlocks[we.lockIdx].Store(newRLock)
		t.e.wlocks[we.lockIdx].Store(nil)
	}
	ws := len(t.writeLog)
	// Truncate the write log here rather than at the next begin: the log
	// is then invariantly empty between transactions, which is what lets
	// beginRO skip write-set init entirely (a stale log would make a later
	// read-only abort release stripes it does not own).
	t.writeLog = t.writeLog[:0]
	if t.e.cfg.PrivatizationSafe {
		t.quiesceTS = ts // quiesce after the descriptor is deactivated
	}
	t.stats.Commits++
	t.stats.ReadsLogged += uint64(len(t.readLog))
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), uint64(ws))
	}
	return true
}

// commitRO commits a declared read-only transaction: every read was
// validated (and extended) incrementally, no lock is held and no CM can
// have killed us, so there is nothing left to check or publish.
func (t *txn) commitRO() bool {
	t.stats.Commits++
	t.stats.ROCommits++
	t.stats.ReadsLogged += uint64(len(t.readLog))
	if t.obsh != nil {
		t.obsh.RecordCommit(uint64(t.succ), uint64(len(t.readLog)), 0)
	}
	return true
}

// validate re-checks every read-log entry (Algorithm 1 lines 50-53).
func (t *txn) validate() bool {
	t.stats.Validations++
	t.stats.ValidationReads += uint64(len(t.readLog))
	for i := range t.readLog {
		re := &t.readLog[i]
		cur := t.e.rlocks[re.lockIdx].Load()
		if cur == re.rlock {
			continue
		}
		// Changed or locked: still fine if we are the one holding it
		// (we locked our own written stripes at commit).
		if cur == rLocked {
			if we := t.e.wlocks[re.lockIdx].Load(); we != nil && we.owner.Load() == t {
				continue
			}
		}
		return false
	}
	return true
}

// extend is Algorithm 1's extend: revalidate, then advance valid-ts.
func (t *txn) extend() bool {
	ts := t.e.commitTS.Load()
	if t.validate() {
		t.validTS = ts
		if t.e.cfg.PrivatizationSafe {
			// Publish the new snapshot so quiescing committers older
			// than it stop waiting for us.
			t.e.activity[t.id].Store(ts + 1)
		}
		return true
	}
	return false
}

// abort performs the rollback bookkeeping — release write locks, count
// the abort — without deciding the delivery mechanism: callers either
// return a checked false up to the retry loop or panic with the
// pre-allocated signal when user code must be interrupted.
func (t *txn) abort() {
	t.releaseWLocks()
	t.stats.Aborts++
	t.stats.ReadsLogged += uint64(len(t.readLog))
}

// commitAbort delivers a commit-time abort as a checked return. The
// UnwindAborts ablation restores the old panic delivery so the abort-path
// microbenchmark can price the difference.
func (t *txn) commitAbort() bool {
	t.abort()
	if t.e.cfg.UnwindAborts {
		panic(stm.SignalRollback)
	}
	t.stats.AbortsReturned++
	return false
}

func (t *txn) releaseWLocks() {
	for _, we := range t.writeLog {
		t.e.wlocks[we.lockIdx].Store(nil)
	}
	t.writeLog = t.writeLog[:0]
}

// Restart implements stm.Tx: a user-requested retry always unwinds (it
// must escape the user closure).
func (t *txn) Restart() {
	t.abort()
	t.stats.AbortsExplicit++
	panic(stm.SignalRestart)
}

// cmShouldAbort is Algorithm 2's cm-should-abort: true means the attacker
// (t) must abort itself; false means it should wait for owner to finish
// (after the owner has been killed, when the attacker has priority).
func (t *txn) cmShouldAbort(owner *txn) bool {
	switch t.e.cfg.Policy {
	case Timid:
		return true
	default: // TwoPhase and Greedy share the arbitration rule
		myTS := t.cmTS.Load()
		if myTS == infinity {
			return true // phase one: abort self (line 6)
		}
		if owner == nil {
			return false
		}
		if owner.cmTS.Load() < myTS {
			return true // older owner wins (line 8)
		}
		// We have priority: kill the owner and wait for it to release
		// (line 9). The CAS may hit a later transaction of the same
		// thread (descriptor reuse); that only causes a spurious retry
		// of that transaction, never a safety violation.
		owner.status.CompareAndSwap(0, 1)
		t.stats.WaitsCM++
		return false
	}
}

// cmOnWrite is Algorithm 2's cm-on-write: upon the Wn-th write the
// transaction enters the second phase and draws a Greedy timestamp.
func (t *txn) cmOnWrite() {
	if t.e.cfg.Policy != TwoPhase {
		return
	}
	if t.cmTS.Load() == infinity && len(t.writeLog) == t.e.cfg.Wn {
		t.cmTS.Store(t.e.greedyTS.Add(1))
	}
}

// newEntry takes a write-log entry from the per-thread pool.
func (t *txn) newEntry(idx uint32, base stm.Addr) *wEntry {
	if t.poolIdx == len(t.pool) {
		t.pool = append(t.pool, &wEntry{vals: make([]stm.Word, t.e.stripeW)})
	}
	we := t.pool[t.poolIdx]
	t.poolIdx++
	we.owner.Store(t)
	we.lockIdx = idx
	we.base = base
	we.mask = 0
	we.overflow = we.overflow[:0]
	return we
}

func (we *wEntry) set(a stm.Addr, v stm.Word) {
	if off := a - we.base; off < stm.Addr(len(we.vals)) {
		we.mask |= 1 << off
		we.vals[off] = v
		return
	}
	for i := range we.overflow {
		if we.overflow[i].addr == a {
			we.overflow[i].val = v
			return
		}
	}
	we.overflow = append(we.overflow, wsPair{addr: a, val: v})
}

// get returns the buffered value for a, or ok=false when this entry holds
// no write for it (the caller may then read memory: it owns the lock).
func (we *wEntry) get(a stm.Addr) (stm.Word, bool) {
	if off := a - we.base; off < stm.Addr(len(we.vals)) {
		if we.mask&(1<<off) != 0 {
			return we.vals[off], true
		}
		return 0, false
	}
	for i := range we.overflow {
		if we.overflow[i].addr == a {
			return we.overflow[i].val, true
		}
	}
	return 0, false
}

// AllocWords implements stm.Tx.
func (t *txn) AllocWords(n uint32) stm.Addr { return t.e.arena.Alloc(n) }

// Object API: an object is a contiguous block of words (DESIGN.md §3.1).

// ReadField implements stm.Tx.
func (t *txn) ReadField(h stm.Handle, field uint32) stm.Word {
	return t.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx.
func (t *txn) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(t.Load(stm.Addr(h) + field))
}

// WriteField implements stm.Tx.
func (t *txn) WriteField(h stm.Handle, field uint32, v stm.Word) {
	t.Store(stm.Addr(h)+field, v)
}

// WriteRef implements stm.Tx.
func (t *txn) WriteRef(h stm.Handle, field uint32, ref stm.Handle) {
	t.Store(stm.Addr(h)+field, stm.Word(ref))
}

// NewObject implements stm.Tx.
func (t *txn) NewObject(fields uint32) stm.Handle {
	return stm.Handle(t.e.arena.Alloc(fields))
}

// SupportsWordAPI reports the word-API capability (stm.SupportsWordAPI).
func (e *Engine) SupportsWordAPI() bool { return true }

// roTx is the transaction view Begin returns for declared read-only mode:
// its read methods run the loadRO fast path (no write-log probe, no kill
// checks) with zero mode branches on either path. The write methods exist
// only to satisfy stm.Tx — they are unreachable through the TxRO the
// AtomicRO entry points expose, and panic as defense in depth.
type roTx struct{ t *txn }

const errROWrite = "swisstm: write inside a declared read-only transaction"

// Load implements stm.Tx on the read-only view.
func (r *roTx) Load(a stm.Addr) stm.Word {
	v, ok := r.t.loadRO(a)
	if !ok {
		panic(stm.SignalRollback)
	}
	return v
}

// ReadField implements stm.Tx on the read-only view.
func (r *roTx) ReadField(h stm.Handle, field uint32) stm.Word {
	return r.Load(stm.Addr(h) + field)
}

// ReadRef implements stm.Tx on the read-only view.
func (r *roTx) ReadRef(h stm.Handle, field uint32) stm.Handle {
	return stm.Handle(r.Load(stm.Addr(h) + field))
}

// Restart implements stm.Tx on the read-only view.
func (r *roTx) Restart() { r.t.Restart() }

func (r *roTx) Store(stm.Addr, stm.Word)                { panic(errROWrite) }
func (r *roTx) AllocWords(uint32) stm.Addr              { panic(errROWrite) }
func (r *roTx) WriteField(stm.Handle, uint32, stm.Word) { panic(errROWrite) }
func (r *roTx) WriteRef(stm.Handle, uint32, stm.Handle) { panic(errROWrite) }
func (r *roTx) NewObject(uint32) stm.Handle             { panic(errROWrite) }

var _ stm.STM = (*Engine)(nil)
var _ stm.Thread = (*txn)(nil)
var _ stm.Tx = (*txn)(nil)
var _ stm.Tx = (*roTx)(nil)
