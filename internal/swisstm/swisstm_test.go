package swisstm

import (
	"sync"
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

func newEngine() stm.STM {
	return New(Config{ArenaWords: 1 << 16, TableBits: 12})
}

func TestConformance(t *testing.T) {
	stmtest.Run(t, newEngine, stmtest.Options{WordAPI: true})
}

func TestConformanceTimidCM(t *testing.T) {
	stmtest.Run(t, func() stm.STM {
		return New(Config{ArenaWords: 1 << 16, TableBits: 12, Policy: Timid})
	}, stmtest.Options{WordAPI: true})
}

func TestConformanceGreedyCM(t *testing.T) {
	stmtest.Run(t, func() stm.STM {
		return New(Config{ArenaWords: 1 << 16, TableBits: 12, Policy: Greedy})
	}, stmtest.Options{WordAPI: true})
}

func TestConformanceNoBackoff(t *testing.T) {
	stmtest.Run(t, func() stm.STM {
		return New(Config{ArenaWords: 1 << 16, TableBits: 12, NoBackoff: true})
	}, stmtest.Options{WordAPI: true})
}

func TestConformanceGranularities(t *testing.T) {
	for _, g := range []uint{0, 2, 6} {
		g := g
		t.Run(map[uint]string{0: "1word", 2: "4words", 6: "64words"}[g], func(t *testing.T) {
			stmtest.Run(t, func() stm.STM {
				return New(Config{ArenaWords: 1 << 16, TableBits: 10, StripeWords: 1 << g})
			}, stmtest.Options{WordAPI: true})
		})
	}
}

func TestStripeMapping(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 10, TableBits: 8, StripeWords: 4})
	// Four consecutive words share a stripe; the fifth does not (Figure 1).
	if e.stripe(0) != e.stripe(3) {
		t.Fatalf("words 0 and 3 should share a stripe")
	}
	if e.stripe(3) == e.stripe(4) {
		t.Fatalf("words 3 and 4 should be in different stripes")
	}
	if e.stripeBase(7) != 4 {
		t.Fatalf("stripeBase(7) = %d, want 4", e.stripeBase(7))
	}
	// Mapping wraps modulo the table size rather than overflowing.
	big := stm.Addr(1<<9 - 1)
	if int(e.stripe(big)) >= 1<<8 {
		t.Fatalf("stripe index out of table range")
	}
}

func TestFalseConflictSameStripe(t *testing.T) {
	// Two words in the same stripe conflict (false conflict, §3.3): both
	// transactions must still execute correctly, one after the other.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8, StripeWords: 4})
	th0 := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th0, func(tx stm.Tx) { base = tx.AllocWords(4) })
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for n := 0; n < 2000; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					a := stm.Addr(uint32(base) + uint32(id)) // distinct words, same stripe
					tx.Store(a, tx.Load(a)+1)
				})
			}
		}(i)
	}
	wg.Wait()
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		if got := tx.Load(base); got != 2000 {
			t.Errorf("word 0: got %d, want 2000", got)
		}
		if got := tx.Load(base + 1); got != 2000 {
			t.Errorf("word 1: got %d, want 2000", got)
		}
	})
}

func TestTwoPhasePromotion(t *testing.T) {
	// A transaction that performs Wn writes must enter phase two (acquire
	// a finite Greedy timestamp); one with Wn-1 writes must not.
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8, Wn: 4})
	th := e.NewThread(0).(*txn)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(64) })

	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < 3; i++ {
			tx.Store(base+i*8, 1) // distinct stripes at default granularity
		}
		if th.cmTS.Load() != infinity {
			t.Errorf("phase-two entered after 3 writes with Wn=4")
		}
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for i := uint32(0); i < 4; i++ {
			tx.Store(base+i*8, 1)
		}
		if th.cmTS.Load() == infinity {
			t.Errorf("still phase-one after Wn=4 writes")
		}
	})
	// A fresh (non-restart) transaction resets to phase one.
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if th.cmTS.Load() != infinity {
			t.Errorf("cm-ts not reset at fresh start")
		}
	})
}

func TestKilledVictimRetries(t *testing.T) {
	// A long phase-two transaction must win against short phase-two
	// transactions that started later, and everything must still commit.
	e := New(Config{ArenaWords: 1 << 14, TableBits: 10, Wn: 1})
	th0 := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th0, func(tx stm.Tx) { base = tx.AllocWords(256) })
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for n := 0; n < 300; n++ {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					// Touch a window of stripes so transactions overlap.
					for k := uint32(0); k < 16; k++ {
						a := base + stm.Addr((uint32(n)+k*4)%256)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
		}(i)
	}
	wg.Wait()
	var sum stm.Word
	stm.AtomicVoid(th0, func(tx stm.Tx) {
		for i := uint32(0); i < 256; i++ {
			sum += tx.Load(base + i)
		}
	})
	if sum != 3*300*16 {
		t.Fatalf("sum = %d, want %d", sum, 3*300*16)
	}
}

func TestStatsCounting(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var h stm.Handle
	stm.AtomicVoid(th, func(tx stm.Tx) { h = tx.NewObject(1) })
	for i := 0; i < 10; i++ {
		stm.AtomicVoid(th, func(tx stm.Tx) { tx.WriteField(h, 0, stm.Word(i)) })
	}
	s := th.Stats()
	if s.Commits != 11 {
		t.Fatalf("commits = %d, want 11", s.Commits)
	}
	if s.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 (single thread)", s.Aborts)
	}
}

func TestForeignPanicReleasesLocks(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(1) })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		stm.AtomicVoid(th, func(tx stm.Tx) {
			tx.Store(base, 1)
			panic("user bug")
		})
	}()
	// The write lock must have been released: another thread can write.
	th2 := e.NewThread(1)
	done := make(chan struct{})
	go func() {
		stm.AtomicVoid(th2, func(tx stm.Tx) { tx.Store(base, 2) })
		close(done)
	}()
	<-done
	if got := e.Arena().Load(base); got != 2 {
		t.Fatalf("arena value = %d, want 2", got)
	}
}
