package swisstm

import (
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

// TestAbortPath runs the two-tier abort-delivery conformance suite
// (DESIGN.md §8): SwissTM's commit-time validation failures must return
// through the checked path, never across a recover; mid-body conflicts
// and Restart must keep unwinding; user panics must propagate with the
// write locks released.
func TestAbortPath(t *testing.T) {
	mk := func(unwind bool) func() stm.STM {
		return func() stm.STM {
			return New(Config{ArenaWords: 1 << 16, TableBits: 10, NoBackoff: true, UnwindAborts: unwind})
		}
	}
	stmtest.AbortPathSuite(t, mk(false), mk(true), stmtest.ShapeReadValidation)
}

// TestAbortPathTimid repeats the forced-conflict check under the timid
// CM, whose mid-body self-aborts exercise the unwinding tier heavily in
// the StatsPartition hammer.
func TestAbortPathTimid(t *testing.T) {
	mk := func(unwind bool) func() stm.STM {
		return func() stm.STM {
			return New(Config{ArenaWords: 1 << 16, TableBits: 10, Policy: Timid, NoBackoff: true, UnwindAborts: unwind})
		}
	}
	stmtest.AbortPathSuite(t, mk(false), mk(true), stmtest.ShapeReadValidation)
}
