package swisstm

import (
	"testing"

	"swisstm/internal/stm/stmtest"
)

// TestZeroAllocSteadyState is the allocation-regression gate of
// DESIGN.md §7: warm transactions must not allocate, on the default
// configuration and with the quiescence scheme armed.
func TestZeroAllocSteadyState(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10})
	stmtest.ZeroAllocSteadyState(t, e, true, true)
}

func TestZeroAllocSteadyStatePrivatizationSafe(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 16, TableBits: 10, PrivatizationSafe: true})
	stmtest.ZeroAllocSteadyState(t, e, true, true)
}
