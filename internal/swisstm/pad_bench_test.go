package swisstm

import (
	"sync/atomic"
	"testing"

	"swisstm/internal/mem"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// BenchmarkActivitySlotLayout is the false-sharing ablation behind the
// padded activity array: it reproduces the quiescence access pattern —
// every worker stores its own slot per transaction while committers scan
// all slots — on the old unpadded layout and on the padded one the
// engine now uses. The "shared" variant packs eight slots per cache
// line, so every slot store invalidates the line for seven other cores.
func BenchmarkActivitySlotLayout(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		var slots [stm.MaxThreads]atomic.Uint64
		benchSlots(b, func(i int) *atomic.Uint64 { return &slots[i] })
	})
	b.Run("padded", func(b *testing.B) {
		var slots [stm.MaxThreads]mem.PaddedUint64
		benchSlots(b, func(i int) *atomic.Uint64 { return &slots[i].Uint64 })
	})
}

func benchSlots(b *testing.B, slot func(int) *atomic.Uint64) {
	var tid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := int(tid.Add(1)) % stm.MaxThreads
		mine := slot(id)
		n := uint64(0)
		for pb.Next() {
			n++
			mine.Store(n) // begin: publish snapshot
			if n&0xf == 0 {
				// Committer path: scan every slot (quiesce).
				for i := 0; i < stm.MaxThreads; i++ {
					slot(i).Load()
				}
			}
			mine.Store(0) // end: deactivate
		}
	})
}

// BenchmarkPrivatizationSafeReadHeavy complements the ablation at engine
// level: a read-heavy rbtree-free workload (plain counters) with the
// quiescence scheme armed, the configuration where activity-slot traffic
// dominates. Compare against a run with PrivatizationSafe=false to price
// the whole scheme, or against a pre-padding build to price false
// sharing alone.
func BenchmarkPrivatizationSafeReadHeavy(b *testing.B) {
	for _, safe := range []bool{false, true} {
		name := "unsafe"
		if safe {
			name = "quiescence"
		}
		b.Run(name, func(b *testing.B) {
			e := New(Config{ArenaWords: 1 << 16, TableBits: 12, PrivatizationSafe: safe})
			setup := e.NewThread(0)
			var words [64]stm.Addr
			stm.AtomicVoid(setup, func(tx stm.Tx) {
				for i := range words {
					words[i] = tx.AllocWords(1)
					tx.Store(words[i], 1)
				}
			})
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(tid.Add(1)) % stm.MaxThreads
				th := e.NewThread(id)
				rng := util.NewRand(uint64(id)*31 + 7)
				for pb.Next() {
					if rng.Intn(100) < 5 {
						w := words[rng.Intn(len(words))]
						stm.AtomicVoid(th, func(tx stm.Tx) { tx.Store(w, tx.Load(w)+1) })
					} else {
						stm.AtomicVoid(th, func(tx stm.Tx) {
							var sum stm.Word
							for _, w := range words[:16] {
								sum += tx.Load(w)
							}
							_ = sum
						})
					}
				}
			})
		})
	}
}
