package swisstm

import (
	"testing"

	"swisstm/internal/stm"
)

// TestAliasedStripes forces many distinct memory regions onto one
// lock-table entry (tiny table) and checks that read-after-write, commit
// write-back and isolation all survive the aliasing.
func TestAliasedStripes(t *testing.T) {
	// 16-entry table, 4-word stripes: addresses 64 apart alias.
	e := New(Config{ArenaWords: 1 << 14, TableBits: 4, StripeWords: 4})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) { base = tx.AllocWords(4096) })
	stm.AtomicVoid(th, func(tx stm.Tx) {
		// All of these hit the same lock entry (stride = table*stripe).
		for i := stm.Addr(0); i < 20; i++ {
			tx.Store(base+i*64, stm.Word(i)+100)
		}
		for i := stm.Addr(0); i < 20; i++ {
			if got := tx.Load(base + i*64); got != stm.Word(i)+100 {
				t.Fatalf("read-after-write alias %d: got %d", i, got)
			}
		}
		// Overwrite one aliased slot.
		tx.Store(base+5*64, 999)
		if got := tx.Load(base + 5*64); got != 999 {
			t.Fatalf("aliased overwrite lost: got %d", got)
		}
	})
	// Committed values must all be in memory.
	for i := stm.Addr(0); i < 20; i++ {
		want := stm.Word(i) + 100
		if i == 5 {
			want = 999
		}
		if got := e.Arena().Load(base + i*64); got != want {
			t.Fatalf("post-commit alias %d: got %d, want %d", i, got, want)
		}
	}
}

// TestAliasedUnwrittenRead checks that a read of an unwritten word in an
// aliased region owned by the same transaction returns memory, not a
// buffered value.
func TestAliasedUnwrittenRead(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 14, TableBits: 4, StripeWords: 4})
	th := e.NewThread(0)
	var base stm.Addr
	stm.AtomicVoid(th, func(tx stm.Tx) {
		base = tx.AllocWords(4096)
		tx.Store(base+128, 7) // pre-existing committed value below
	})
	stm.AtomicVoid(th, func(tx stm.Tx) {
		tx.Store(base, 1) // acquires the lock entry that also covers base+128
		if got := tx.Load(base + 128); got != 7 {
			t.Fatalf("unwritten aliased word: got %d, want 7", got)
		}
	})
}
