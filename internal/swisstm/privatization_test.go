package swisstm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swisstm/internal/stm"
	"swisstm/internal/stm/stmtest"
)

// TestConformancePrivatizationSafe runs the standard conformance suite
// with the quiescence scheme enabled.
func TestConformancePrivatizationSafe(t *testing.T) {
	stmtest.Run(t, func() stm.STM {
		return New(Config{ArenaWords: 1 << 16, TableBits: 12, PrivatizationSafe: true})
	}, stmtest.Options{WordAPI: true})
}

// TestPrivatizationSafety exercises the §6 pattern: a thread unlinks a
// node transactionally and then works on it with raw (non-transactional)
// accesses. With quiescence, no concurrent transaction's redo write-back
// can land on the privatized node afterwards; the raw value must stick.
func TestPrivatizationSafety(t *testing.T) {
	const rounds = 300
	e := New(Config{ArenaWords: 1 << 14, TableBits: 10, PrivatizationSafe: true})
	setup := e.NewThread(0)
	var head stm.Addr // holds the address of the current node (0 = none)
	stm.AtomicVoid(setup, func(tx stm.Tx) {
		head = tx.AllocWords(1)
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Attackers: transactionally increment whatever node is published.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for !stop.Load() {
				stm.AtomicVoid(th, func(tx stm.Tx) {
					n := stm.Addr(tx.Load(head))
					if n != 0 {
						tx.Store(n, tx.Load(n)+1)
					}
				})
			}
		}(w)
	}

	// Privatizer: publish a node, let attackers hit it, unlink it, then
	// use it non-transactionally. The raw value must never be clobbered
	// by a late transactional write-back.
	priv := e.NewThread(5)
	clobbered := 0
	for r := 0; r < rounds; r++ {
		var node stm.Addr
		stm.AtomicVoid(priv, func(tx stm.Tx) {
			node = tx.AllocWords(1)
			tx.Store(head, stm.Word(node))
		})
		// Give the attackers a moment to open transactions on the node.
		for i := 0; i < 50; i++ {
			_ = e.Arena().Load(head)
		}
		stm.AtomicVoid(priv, func(tx stm.Tx) {
			tx.Store(head, 0) // unlink: node is now private
		})
		// After the privatizing commit (plus quiescence), raw access to
		// the node must be safe.
		e.Arena().Store(node, 999_999)
		for i := 0; i < 100; i++ {
			if e.Arena().Load(node) != 999_999 {
				clobbered++
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if clobbered != 0 {
		t.Fatalf("privatized node clobbered in %d/%d rounds", clobbered, rounds)
	}
}

// TestQuiesceWaitsForSnapshot pins the quiescence rule itself: a commit
// must not return while another thread's transaction still runs on an
// older snapshot, and must return once that transaction finishes.
func TestQuiesceWaitsForSnapshot(t *testing.T) {
	e := New(Config{ArenaWords: 1 << 12, TableBits: 8, PrivatizationSafe: true})
	setup := e.NewThread(0)
	var a stm.Addr
	stm.AtomicVoid(setup, func(tx stm.Tx) { a = tx.AllocWords(1) })

	inTx := make(chan struct{})
	release := make(chan struct{})
	go func() {
		th := e.NewThread(1)
		stm.AtomicVoid(th, func(tx stm.Tx) {
			_ = tx.Load(a) // open a snapshot, then linger
			select {
			case <-inTx:
			default:
				close(inTx)
			}
			<-release
		})
	}()
	<-inTx
	committed := make(chan struct{})
	go func() {
		th := e.NewThread(2)
		stm.AtomicVoid(th, func(tx stm.Tx) { tx.Store(a, 7) })
		close(committed)
	}()
	time.Sleep(100 * time.Millisecond) // let the writer reach its quiescence wait
	select {
	case <-committed:
		t.Fatal("writer returned before the lingering reader finished (no quiescence)")
	default:
	}
	close(release)
	<-committed // must now complete
}
