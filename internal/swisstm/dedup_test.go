package swisstm

import (
	"sync"
	"testing"

	"swisstm/internal/stm"
)

// newDedupEngine builds a small engine with 4-word stripes so several
// addresses share one lock-table entry.
func newDedupEngine() *Engine {
	return New(Config{ArenaWords: 1 << 12, TableBits: 8, StripeWords: 4})
}

// TestDedupLogsStripeOnce: re-reading a stripe — same word or sibling
// words — must append exactly one read-log entry.
func TestDedupLogsStripeOnce(t *testing.T) {
	e := newDedupEngine()
	th := e.NewThread(0)
	tx0 := th.(*txn)
	base := e.arena.Alloc(8) // spans two 4-word stripes
	stm.AtomicVoid(th, func(tx stm.Tx) {
		for rep := 0; rep < 10; rep++ {
			tx.Load(base)     // stripe A
			tx.Load(base + 1) // stripe A again (sibling word)
			tx.Load(base + 4) // stripe B
		}
		if got := len(tx0.readLog); got != 2 {
			t.Errorf("read log has %d entries, want 2 (one per distinct stripe)", got)
		}
	})
	s := th.Stats()
	if s.ReadsLogged != 2 {
		t.Errorf("ReadsLogged = %d, want 2", s.ReadsLogged)
	}
	if s.ReadsDeduped != 28 {
		t.Errorf("ReadsDeduped = %d, want 28 (30 reads, 2 logged)", s.ReadsDeduped)
	}
}

// TestDedupDoesNotMaskConflict: a conflicting commit between the first
// and second read of one stripe must still abort the reader — the dedup
// hit may only be taken when the observed r-lock matches the logged one.
// (Equivalence with the pre-dedup engine: a duplicate entry with the
// newer r-lock would force extend(), whose validation of the stale first
// entry fails, aborting at the same point.)
func TestDedupDoesNotMaskConflict(t *testing.T) {
	e := newDedupEngine()
	thA := e.NewThread(0)
	thB := e.NewThread(1)
	addr := e.arena.Alloc(1)
	e.arena.Store(addr, 1)

	attempts := 0
	var first, second stm.Word
	stm.AtomicVoid(thA, func(tx stm.Tx) {
		attempts++
		first = tx.Load(addr)
		if attempts == 1 {
			// Inject a conflicting commit from another thread while the
			// stripe is already in A's read log.
			stm.AtomicVoid(thB, func(txB stm.Tx) { txB.Store(addr, 2) })
		}
		second = tx.Load(addr)
	})
	if attempts != 2 {
		t.Fatalf("transaction ran %d attempts, want 2 (abort + clean retry)", attempts)
	}
	if first != second || first != 2 {
		t.Fatalf("committed attempt saw %d then %d, want consistent 2", first, second)
	}
	if s := thA.Stats(); s.AbortsValid == 0 {
		t.Errorf("expected the injected conflict to count as a validation abort, got %+v", s)
	}
}

// TestDedupOpacityUnderContention hammers re-reads of two invariant-
// linked words from several threads while writers update them, under
// -race. Every transaction re-reads both words twice; dedup must never
// let the two samples disagree (opacity), and the pair must always
// satisfy the writers' invariant x == y.
func TestDedupOpacityUnderContention(t *testing.T) {
	e := newDedupEngine()
	setup := e.NewThread(0)
	x := e.arena.Alloc(1)
	y := e.arena.Alloc(5) // a different stripe than x
	stm.AtomicVoid(setup, func(tx stm.Tx) {
		tx.Store(x, 0)
		tx.Store(y, 0)
	})

	const workers = 4
	const txns = 2000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.NewThread(id + 1)
			for i := 0; i < txns; i++ {
				if id%2 == 0 {
					stm.AtomicVoid(th, func(tx stm.Tx) {
						v := tx.Load(x)
						tx.Store(x, v+1)
						tx.Store(y, v+1)
					})
					continue
				}
				var bad string
				stm.AtomicVoid(th, func(tx stm.Tx) {
					bad = ""
					a1, b1 := tx.Load(x), tx.Load(y)
					a2, b2 := tx.Load(x), tx.Load(y) // dedup hits
					if a1 != a2 || b1 != b2 {
						bad = "re-read disagreed with first read"
					} else if a1 != b1 {
						bad = "invariant x == y violated inside a transaction"
					}
				})
				if bad != "" {
					select {
					case errs <- bad:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
