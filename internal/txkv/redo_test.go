package txkv_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/wal"
)

func TestRedoRoundTrip(t *testing.T) {
	records := [][]txkv.RedoEntry{
		{{Op: txkv.RedoInit, Key: 512, Val: 1000}},
		{{Op: txkv.RedoPut, Key: 7, Val: 77}},
		{{Op: txkv.RedoDelete, Key: 7}},
		{{Op: txkv.RedoTransfer, Amount: 5, Keys: []stm.Word{1, 2, 3}}},
		{ // a batch: several entries in one atomic record
			{Op: txkv.RedoPut, Key: 1, Val: 10},
			{Op: txkv.RedoDelete, Key: 2},
			{Op: txkv.RedoTransfer, Amount: 1, Keys: []stm.Word{3, 4}},
		},
	}
	for i, entries := range records {
		buf, err := txkv.AppendRedo(nil, entries)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := txkv.DecodeRedo(buf)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("record %d: round trip\n got %+v\nwant %+v", i, got, entries)
		}
	}
}

func TestRedoDecodeRejectsMalformedInput(t *testing.T) {
	valid, _ := txkv.AppendRedo(nil, []txkv.RedoEntry{{Op: txkv.RedoPut, Key: 1, Val: 2}})
	bad := [][]byte{
		{},                   // no count
		{0, 0},               // zero entries
		{1, 0},               // one entry, no body
		{1, 0, 99},           // unknown op
		valid[:len(valid)-1], // truncated entry
		append(valid[:len(valid):len(valid)], 0xff), // trailing garbage
	}
	for i, b := range bad {
		if _, err := txkv.DecodeRedo(b); err == nil {
			t.Fatalf("case %d: DecodeRedo accepted %x", i, b)
		}
	}
	if _, err := txkv.AppendRedo(nil, nil); err == nil {
		t.Fatal("AppendRedo accepted an empty record")
	}
}

// appendRecord encodes and durably appends one redo record.
func appendRecord(t *testing.T, w *wal.Writer, entries []txkv.RedoEntry) {
	t.Helper()
	buf, err := txkv.AppendRedo(nil, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(buf); err != nil {
		t.Fatal(err)
	}
}

func TestReplayWALRebuildsStore(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		dir := t.TempDir()
		const keys, balance = 64, 100
		w, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoInit, Key: keys, Val: balance}})
		appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoPut, Key: 3, Val: 333}})
		appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoTransfer, Amount: 10, Keys: []stm.Word{1, 2, 4}}})
		appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoDelete, Key: 5}})
		appendRecord(t, w, []txkv.RedoEntry{ // batch is atomic
			{Op: txkv.RedoPut, Key: 6, Val: 60},
			{Op: txkv.RedoPut, Key: 200, Val: 60},
		})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		th := e.NewThread(0)
		s, info, err := txkv.ReplayWAL(wal.OSFS{}, dir, th)
		if err != nil {
			t.Fatalf("ReplayWAL: %v", err)
		}
		if s == nil || info.Frames != 5 || info.Truncated {
			t.Fatalf("replay info = %+v (store nil: %v)", info, s == nil)
		}

		want := map[stm.Word]stm.Word{3: 333, 1: balance - 20, 2: balance + 10, 4: balance + 10, 6: 60, 200: 60}
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k, v := range want {
				got, ok := s.Get(tx, k)
				if !ok || got != v {
					t.Fatalf("replayed Get(%d) = %d,%v; want %d", k, got, ok, v)
				}
			}
			if _, ok := s.Get(tx, 5); ok {
				t.Fatal("deleted key 5 survived replay")
			}
			// 64 seeded − 1 deleted + 1 inserted (3 and 6 overwrote seeds).
			if got, wantLen := s.Len(tx), keys-1+1; got != wantLen {
				t.Fatalf("replayed Len = %d, want %d", got, wantLen)
			}
		})
	})
}

func TestReplayEmptyAndMissingLog(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th := e.NewThread(0)
		s, info, err := txkv.ReplayWAL(wal.OSFS{}, filepath.Join(t.TempDir(), "never-created"), th)
		if err != nil || s != nil || info.Frames != 0 {
			t.Fatalf("missing dir: store=%v info=%+v err=%v", s, info, err)
		}
	})
}

func TestReplayRejectsLogWithoutInit(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoPut, Key: 1, Val: 1}})
	w.Close()
	spec := engineSpecs[0]
	th := spec.New().NewThread(0)
	if _, _, err := txkv.ReplayWAL(wal.OSFS{}, dir, th); err == nil ||
		!strings.Contains(err.Error(), "init record") {
		t.Fatalf("replay of init-less log: %v", err)
	}
}

func TestReplayDivergenceFails(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoInit, Key: 8, Val: 10}})
	appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoDelete, Key: 999}}) // never existed
	w.Close()
	spec := engineSpecs[0]
	th := spec.New().NewThread(0)
	if _, _, err := txkv.ReplayWAL(wal.OSFS{}, dir, th); err == nil ||
		!strings.Contains(err.Error(), "diverged") {
		t.Fatalf("replay of diverged log: %v", err)
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoInit, Key: 8, Val: 10}})
	appendRecord(t, w, []txkv.RedoEntry{{Op: txkv.RedoPut, Key: 1, Val: 11}})
	w.Close()

	// Crash garbage after the last clean frame.
	names, err := os.ReadDir(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segment listing: %v %v", names, err)
	}
	p := filepath.Join(dir, names[len(names)-1].Name())
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()

	spec := engineSpecs[0]
	th := spec.New().NewThread(0)
	s, info, err := txkv.ReplayWAL(wal.OSFS{}, dir, th)
	if err != nil || s == nil {
		t.Fatalf("replay of torn log: %v", err)
	}
	if !info.Truncated || info.Frames != 2 {
		t.Fatalf("replay info = %+v, want 2 clean frames + truncated", info)
	}
	stm.AtomicVoid(th, func(tx stm.Tx) {
		if v, ok := s.Get(tx, 1); !ok || v != 11 {
			t.Fatalf("clean-prefix Get(1) = %d,%v", v, ok)
		}
	})
}
