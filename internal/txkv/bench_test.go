package txkv_test

import (
	"sync/atomic"
	"testing"

	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/txkv"
	"swisstm/internal/util"
)

// Hot-path micro-benchmarks for the KV operations on SwissTM, so
// regressions in the store layout or the engine's object-API wrapper
// show up in `go test -bench` history (root bench_test.go conventions:
// parallel workers, per-worker engine threads and RNGs).

const benchKeys = 4096

func benchStore(b *testing.B) (stm.STM, *txkv.Store) {
	b.Helper()
	e := swisstm.New(swisstm.Config{ArenaWords: 1 << 22, TableBits: 18})
	th := e.NewThread(0)
	s := txkv.New(th, txkv.ConfigForKeys(benchKeys))
	for base := 1; base <= benchKeys; base += 256 {
		end := base + 256
		if end > benchKeys+1 {
			end = benchKeys + 1
		}
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := base; k < end; k++ {
				s.Put(tx, stm.Word(k), stm.Word(k))
			}
		})
	}
	return e, s
}

// benchParallel runs op on all workers, each with its own engine thread
// and private RNG.
func benchParallel(b *testing.B, e stm.STM, op func(th stm.Thread, rng *util.Rand)) {
	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(tid.Add(1))
		th := e.NewThread(id)
		rng := util.NewRand(uint64(id)*977 + 13)
		for pb.Next() {
			op(th, rng)
		}
	})
}

func BenchmarkTxKVGetSwissTM(b *testing.B) {
	e, s := benchStore(b)
	zipf := util.NewZipf(benchKeys, 0.99)
	benchParallel(b, e, func(th stm.Thread, rng *util.Rand) {
		k := stm.Word(zipf.Next(rng) + 1)
		stm.AtomicVoid(th, func(tx stm.Tx) { s.Get(tx, k) })
	})
}

func BenchmarkTxKVPutSwissTM(b *testing.B) {
	e, s := benchStore(b)
	zipf := util.NewZipf(benchKeys, 0.99)
	benchParallel(b, e, func(th stm.Thread, rng *util.Rand) {
		k := stm.Word(zipf.Next(rng) + 1)
		stm.AtomicVoid(th, func(tx stm.Tx) { s.Put(tx, k, k) })
	})
}

func BenchmarkTxKVCASSwissTM(b *testing.B) {
	e, s := benchStore(b)
	zipf := util.NewZipf(benchKeys, 0.99)
	benchParallel(b, e, func(th stm.Thread, rng *util.Rand) {
		k := stm.Word(zipf.Next(rng) + 1)
		var cur stm.Word
		var ok bool
		stm.AtomicVoid(th, func(tx stm.Tx) { cur, ok = s.Get(tx, k) })
		if ok {
			stm.AtomicVoid(th, func(tx stm.Tx) { s.CAS(tx, k, cur, cur+1) })
		}
	})
}

func BenchmarkTxKVTransferSwissTM(b *testing.B) {
	e, s := benchStore(b)
	zipf := util.NewZipf(benchKeys, 0.99)
	benchParallel(b, e, func(th stm.Thread, rng *util.Rand) {
		buf := [4]stm.Word{}
		n := 0
		for n < len(buf) {
			c := stm.Word(zipf.Next(rng) + 1)
			dup := false
			for _, e := range buf[:n] {
				if e == c {
					dup = true
					break
				}
			}
			if !dup {
				buf[n] = c
				n++
			}
		}
		stm.AtomicVoid(th, func(tx stm.Tx) { s.Transfer(tx, buf[:], 1) })
	})
}

func BenchmarkTxKVScanShardSwissTM(b *testing.B) {
	e, s := benchStore(b)
	benchParallel(b, e, func(th stm.Thread, rng *util.Rand) {
		sh := rng.Intn(s.Shards())
		stm.AtomicVoid(th, func(tx stm.Tx) { s.SumShard(tx, sh) })
	})
}
