package txkv

import (
	"encoding/binary"
	"fmt"

	"swisstm/internal/stm"
	"swisstm/internal/wal"
)

// Redo records (DESIGN.md §12): each WAL frame carries one redo
// record — the logical effect of one acknowledged, committed txkv
// transaction. A record is a short list of entries so that an
// all-or-nothing batch is one frame (one atomic replay unit).
//
// Record payload layout (little-endian):
//
//	[ count u16 | entry... ]
//
// Entry layouts by op byte:
//
//	RedoInit:     [ op u8 | keys u64 | balance u64 ]
//	RedoPut:      [ op u8 | key u64 | val u64 ]
//	RedoDelete:   [ op u8 | key u64 ]
//	RedoTransfer: [ op u8 | amount u64 | nkeys u16 | key u64 ... ]
//
// RedoInit is only valid as the single entry of frame 1: it records
// the baseline population (keys 1..keys at balance each) that the
// server seeded before serving, so replay reconstructs state without
// any out-of-band configuration. A successful CAS is logged as a
// RedoPut of its post-image; failed operations and reads log nothing.

// RedoOp identifies a redo entry kind.
type RedoOp uint8

const (
	// RedoInit seeds keys 1..Key with value Val each (frame 1 only).
	RedoInit RedoOp = iota + 1
	// RedoPut sets Key → Val.
	RedoPut
	// RedoDelete removes Key (which must be present at replay).
	RedoDelete
	// RedoTransfer moves Amount from Keys[0] to each of Keys[1:].
	RedoTransfer
)

// RedoEntry is one logical mutation inside a redo record. Key/Val
// double as keys/balance for RedoInit.
type RedoEntry struct {
	Op     RedoOp
	Key    stm.Word
	Val    stm.Word
	Amount stm.Word
	Keys   []stm.Word
}

// MaxRedoEntries bounds the entries in one record (mirrors the wire
// protocol's batch cap).
const MaxRedoEntries = 256

// AppendRedo encodes entries onto dst and returns the extended slice.
func AppendRedo(dst []byte, entries []RedoEntry) ([]byte, error) {
	if len(entries) == 0 || len(entries) > MaxRedoEntries {
		return nil, fmt.Errorf("txkv: redo record with %d entries (want 1..%d)", len(entries), MaxRedoEntries)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = append(dst, byte(e.Op))
		switch e.Op {
		case RedoInit, RedoPut:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Key))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Val))
		case RedoDelete:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Key))
		case RedoTransfer:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Amount))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Keys)))
			for _, k := range e.Keys {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(k))
			}
		default:
			return nil, fmt.Errorf("txkv: redo entry with unknown op %d", e.Op)
		}
	}
	return dst, nil
}

// redoCursor is a bounds-checked decoder (the txkvwire cursor idiom):
// accessors record the first error and return zeros afterwards, so
// DecodeRedo is straight-line and cannot index out of bounds.
type redoCursor struct {
	b   []byte
	off int
	err error
}

func (c *redoCursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *redoCursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if len(c.b)-c.off < n {
		c.fail(fmt.Errorf("txkv: truncated redo record (need %d bytes at offset %d of %d)", n, c.off, len(c.b)))
		return false
	}
	return true
}

func (c *redoCursor) u8() byte {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *redoCursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *redoCursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// DecodeRedo decodes one record. It never panics on arbitrary bytes
// and rejects trailing garbage.
func DecodeRedo(payload []byte) ([]RedoEntry, error) {
	c := &redoCursor{b: payload}
	n := int(c.u16())
	if c.err == nil && (n < 1 || n > MaxRedoEntries) {
		c.fail(fmt.Errorf("txkv: redo record with %d entries (want 1..%d)", n, MaxRedoEntries))
	}
	var entries []RedoEntry
	for i := 0; i < n && c.err == nil; i++ {
		var e RedoEntry
		e.Op = RedoOp(c.u8())
		switch e.Op {
		case RedoInit, RedoPut:
			e.Key = stm.Word(c.u64())
			e.Val = stm.Word(c.u64())
		case RedoDelete:
			e.Key = stm.Word(c.u64())
		case RedoTransfer:
			e.Amount = stm.Word(c.u64())
			nk := int(c.u16())
			if !c.need(8 * nk) {
				break
			}
			e.Keys = make([]stm.Word, nk)
			for j := range e.Keys {
				e.Keys[j] = stm.Word(c.u64())
			}
		default:
			c.fail(fmt.Errorf("txkv: redo entry %d has unknown op %d", i, e.Op))
		}
		if c.err == nil {
			entries = append(entries, e)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(payload) {
		return nil, fmt.Errorf("txkv: %d trailing bytes after redo record", len(payload)-c.off)
	}
	return entries, nil
}

// initChunk bounds the keys seeded per prefill transaction, keeping
// the allocation transactions short on every engine.
const initChunk = 256

// NewInitialized builds a store sized for keys and seeds keys 1..keys
// with balance each — the server's baseline population and the replay
// meaning of RedoInit.
func NewInitialized(th stm.Thread, keys int, balance stm.Word) *Store {
	s := New(th, ConfigForKeys(keys))
	for lo := 1; lo <= keys; lo += initChunk {
		hi := lo + initChunk - 1
		if hi > keys {
			hi = keys
		}
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := lo; k <= hi; k++ {
				s.Put(tx, stm.Word(k), balance)
			}
		})
	}
	return s
}

// ApplyRedo replays one redo record as a single transaction. A
// mutation the log says succeeded but the store rejects (deleting an
// absent key, an impossible transfer) is divergence — the log prefix
// no longer describes this store — and fails the replay.
func (s *Store) ApplyRedo(th stm.Thread, entries []RedoEntry) error {
	_, err := stm.AtomicErr(th, func(tx stm.Tx) (struct{}, error) {
		for i := range entries {
			e := &entries[i]
			switch e.Op {
			case RedoPut:
				s.Put(tx, e.Key, e.Val)
			case RedoDelete:
				if !s.Delete(tx, e.Key) {
					return struct{}{}, fmt.Errorf("txkv: redo delete of absent key %d (log diverged from store)", e.Key)
				}
			case RedoTransfer:
				if !s.Transfer(tx, e.Keys, e.Amount) {
					return struct{}{}, fmt.Errorf("txkv: redo transfer of %d over %v failed (log diverged from store)", e.Amount, e.Keys)
				}
			default:
				return struct{}{}, fmt.Errorf("txkv: redo entry with op %d is not replayable mid-log", e.Op)
			}
		}
		return struct{}{}, nil
	})
	return err
}

// ReplayWAL recovers the log in dir and replays its clean prefix into
// a fresh store on th's engine. It returns a nil store when the log
// holds no frames (a fresh directory: the caller seeds and logs
// RedoInit itself). A log whose first frame is not a RedoInit record,
// or whose records diverge from the rebuilt store, is an error — the
// log does not describe a txkv history.
func ReplayWAL(fs wal.FS, dir string, th stm.Thread) (*Store, wal.RecoverInfo, error) {
	var s *Store
	info, err := wal.Recover(fs, dir, func(lsn uint64, payload []byte) error {
		entries, err := DecodeRedo(payload)
		if err != nil {
			return fmt.Errorf("frame %d: %w", lsn, err)
		}
		if s == nil {
			if len(entries) != 1 || entries[0].Op != RedoInit {
				return fmt.Errorf("frame %d: log does not begin with an init record", lsn)
			}
			s = NewInitialized(th, int(entries[0].Key), entries[0].Val)
			return nil
		}
		if err := s.ApplyRedo(th, entries); err != nil {
			return fmt.Errorf("frame %d: %w", lsn, err)
		}
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	return s, info, nil
}
