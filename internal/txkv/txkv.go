// Package txkv is a sharded transactional key-value store — the
// server-traffic workload family of the evaluation. The paper argues
// SwissTM targets workloads "larger and more complex" than
// microbenchmarks; an in-memory KV store with mixed point operations,
// multi-key transactions and iteration-based aggregate reads is exactly
// the mixed short/long-transaction regime its two-phase contention
// manager is built for.
//
// The store is written entirely against the engine-agnostic object API
// (DESIGN.md §3.1) in its v2 typed form — read paths take stm.TxRO, so
// they compose into declared read-only transactions (stm.AtomicRO) and
// run on every engine's read-only fast path. Layout (DESIGN.md §6):
//
//   - The key space is hashed (splitmix64 finalizer) onto Shards open-
//     addressed slot tables. The shard/slot directory is built once at
//     setup and immutable afterwards, so it lives in plain Go memory
//     and costs no read-set entries.
//   - Each slot is one 2-field object {key, value}. A Get probes the
//     linear-probe sequence reading one key field per hop — replacing
//     the earlier one-entry-object-per-hop bucket chains, whose Get
//     cost head + 2 dependent transactional reads per chain hop
//     (ROADMAP open item). At the ≤ 50% load factor ConfigForKeys
//     provisions, a hit costs ~1-2 key probes plus the value read.
//   - Updates write only the slot's value field; inserts claim an
//     empty or tombstoned slot; deletes write the tombstone key. Slot
//     objects are never unlinked, so the directory never changes shape
//     and two transactions conflict only when their probe paths cross
//     the same slot objects (or lock stripes, on word-based engines).
package txkv

import "swisstm/internal/stm"

// Slot object field indices.
const (
	sKey uint32 = iota
	sVal
	slotFields
)

const (
	// emptyKey marks a never-used slot: a probe may stop here.
	emptyKey stm.Word = 0
	// tombKey marks a deleted slot: a probe must continue past it, and
	// an insert may reuse it. Keys are application data, so the two
	// sentinels are reserved values (documented on Put).
	tombKey stm.Word = ^stm.Word(0)
)

// Config sizes the store. Both dimensions must be powers of two.
type Config struct {
	// Shards is the number of shards (aggregate/scan unit). Default 16.
	Shards int
	// Slots is the number of open-addressed slots per shard. Default 64.
	// The shard is full when every slot is claimed; Put panics on
	// overflow, so provision with ConfigForKeys (≤ 50% load) for the
	// expected population.
	Slots int
}

func (c *Config) fill() {
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Slots == 0 {
		c.Slots = 64
	}
	if c.Shards&(c.Shards-1) != 0 || c.Slots&(c.Slots-1) != 0 {
		panic("txkv: Shards and Slots must be powers of two")
	}
}

// ConfigForKeys sizes a store for an expected population of keys at no
// more than quarter-full shards on average across 16 shards (and at
// least 16 slots per shard), which keeps linear-probe sequences short
// (~1 key read per Get) and makes per-shard overflow — keys hash to
// shards, so an unlucky shard can receive more than its share —
// vanishingly unlikely. Overflow is still possible in principle for an
// adversarial key population; Put then panics rather than degrading
// silently, so size generously for untrusted key sets.
func ConfigForKeys(keys int) Config {
	c := Config{Shards: 16, Slots: 16}
	for c.Shards*c.Slots < 4*keys {
		c.Slots <<= 1
	}
	return c
}

// Store is a transactional hash map from uint64 keys to uint64 values.
// All operations run inside the caller's transaction, so any sequence
// of them composes into one atomic multi-key transaction; the read-only
// operations accept stm.TxRO and therefore also compose into declared
// read-only transactions. The Store struct itself is immutable after
// New and safe to share across worker threads.
//
// Keys must avoid the two reserved sentinel values 0 and ^uint64(0).
type Store struct {
	shards int
	slots  int
	// table[shard][slot] is the handle of that slot's 2-field object.
	// Written once during New, read-only afterwards.
	table [][]stm.Handle
}

// New builds an empty store using th for the allocation transactions.
func New(th stm.Thread, cfg Config) *Store {
	cfg.fill()
	s := &Store{shards: cfg.Shards, slots: cfg.Slots}
	s.table = make([][]stm.Handle, cfg.Shards)
	for si := range s.table {
		row := make([]stm.Handle, cfg.Slots)
		// One allocation-only transaction per shard keeps transactions
		// bounded; fresh objects cannot conflict with anything.
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for bi := range row {
				row[bi] = tx.NewObject(slotFields)
			}
		})
		s.table[si] = row
	}
	return s
}

// Shards returns the shard count (the unit SumShard iterates).
func (s *Store) Shards() int { return s.shards }

// ShardOf returns the shard index key hashes to. It exposes the
// internal placement read-only so callers can attribute per-shard
// telemetry (the server's conflict counters, DESIGN.md §11) and,
// later, route by affinity — without being able to perturb it.
func (s *Store) ShardOf(key stm.Word) int { return int(mix(key)) & (s.shards - 1) }

// mix is the splitmix64 finalizer: avalanches key bits so that hot
// zipfian ranks and sequential key populations scatter across shards
// and probe start points.
func mix(k stm.Word) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// row returns key's shard row and probe start slot.
func (s *Store) row(key stm.Word) ([]stm.Handle, int) {
	h := mix(key)
	return s.table[int(h)&(s.shards-1)], int(h>>32) & (s.slots - 1)
}

// find walks key's linear-probe sequence, returning the slot holding
// key (0 when absent). Each hop costs exactly one transactional read of
// the slot's key field — the dependent-read chain the bucket-chain
// layout paid twice over.
func (s *Store) find(tx stm.TxRO, row []stm.Handle, start int, key stm.Word) stm.Handle {
	if key == emptyKey || key == tombKey {
		return 0 // sentinel keys are never stored
	}
	mask := s.slots - 1
	for i := 0; i < s.slots; i++ {
		slot := row[(start+i)&mask]
		switch tx.ReadField(slot, sKey) {
		case key:
			return slot
		case emptyKey:
			return 0 // never-used slot terminates the probe sequence
		}
	}
	return 0 // every slot claimed or tombstoned
}

// Get returns the value stored under key.
func (s *Store) Get(tx stm.TxRO, key stm.Word) (stm.Word, bool) {
	row, start := s.row(key)
	slot := s.find(tx, row, start, key)
	if slot == 0 {
		return 0, false
	}
	return tx.ReadField(slot, sVal), true
}

// Put sets key → val, returning true when the key was newly inserted
// (false when an existing value was overwritten). It panics when key is
// a reserved sentinel (0 or ^uint64(0)) or the shard is full — both are
// configuration errors, not runtime conditions (size with
// ConfigForKeys).
func (s *Store) Put(tx stm.Tx, key, val stm.Word) bool {
	if key == emptyKey || key == tombKey {
		panic("txkv: key collides with a reserved sentinel value")
	}
	row, start := s.row(key)
	mask := s.slots - 1
	free := stm.Handle(0) // first reusable slot seen (tombstone or empty)
	for i := 0; i < s.slots; i++ {
		slot := row[(start+i)&mask]
		switch tx.ReadField(slot, sKey) {
		case key:
			// Read the value before overwriting it. The read makes a
			// blind overwrite a read-modify-write, so two conflicting
			// Puts cannot both validate: the engines' commit order for
			// them is then observable at the point the body ends, which
			// is what lets the WAL's ticket sequencer log mutations in
			// commit order (DESIGN.md §12).
			tx.ReadField(slot, sVal)
			tx.WriteField(slot, sVal, val)
			return false
		case tombKey:
			if free == 0 {
				free = slot
			}
		case emptyKey:
			if free == 0 {
				free = slot
			}
			i = s.slots // probe sequence ends at a never-used slot
		}
	}
	if free == 0 {
		panic("txkv: shard full (size the store with ConfigForKeys)")
	}
	tx.WriteField(free, sKey, key)
	tx.WriteField(free, sVal, val)
	return true
}

// Delete removes key, returning whether it was present. The slot is
// tombstoned: probe sequences continue past it, inserts may reuse it.
func (s *Store) Delete(tx stm.Tx, key stm.Word) bool {
	row, start := s.row(key)
	slot := s.find(tx, row, start, key)
	if slot == 0 {
		return false
	}
	tx.WriteField(slot, sKey, tombKey)
	return true
}

// CAS replaces key's value with newv only when it currently equals
// oldv. It returns false — writing nothing — when the key is absent or
// holds a different value.
func (s *Store) CAS(tx stm.Tx, key, oldv, newv stm.Word) bool {
	row, start := s.row(key)
	slot := s.find(tx, row, start, key)
	if slot == 0 || tx.ReadField(slot, sVal) != oldv {
		return false
	}
	tx.WriteField(slot, sVal, newv)
	return true
}

// Transfer atomically moves amount from keys[0] to each of keys[1:]
// (debiting amount × (len(keys)−1) from the source) — the multi-key
// transaction class of the workload mixes. It returns false, writing
// nothing, when fewer than two keys are given, keys repeat, any key is
// absent, or the source balance is insufficient. The sum over all keys
// is invariant either way, which the cross-engine balance checks
// exploit.
func (s *Store) Transfer(tx stm.Tx, keys []stm.Word, amount stm.Word) bool {
	if len(keys) < 2 {
		return false
	}
	for i, k := range keys {
		for _, prior := range keys[:i] {
			if prior == k {
				return false
			}
		}
	}
	debit := amount * stm.Word(len(keys)-1)
	// Locate every slot once; the write pass reuses the handles, so a
	// transfer over k keys probes each shard a single time.
	slots := make([]stm.Handle, len(keys))
	vals := make([]stm.Word, len(keys))
	for i, k := range keys {
		row, start := s.row(k)
		slot := s.find(tx, row, start, k)
		if slot == 0 {
			return false
		}
		slots[i] = slot
		vals[i] = tx.ReadField(slot, sVal)
	}
	if vals[0] < debit {
		return false
	}
	tx.WriteField(slots[0], sVal, vals[0]-debit)
	for i := 1; i < len(slots); i++ {
		tx.WriteField(slots[i], sVal, vals[i]+amount)
	}
	return true
}

// ForEachShard calls fn for every (key, value) pair in one shard,
// stopping early when fn returns false. One key read per slot; the
// value is read only for live slots.
func (s *Store) ForEachShard(tx stm.TxRO, shard int, fn func(k, v stm.Word) bool) bool {
	for _, slot := range s.table[shard] {
		k := tx.ReadField(slot, sKey)
		if k == emptyKey || k == tombKey {
			continue
		}
		if !fn(k, tx.ReadField(slot, sVal)) {
			return false
		}
	}
	return true
}

// ForEach calls fn for every (key, value) pair in the store, stopping
// early when fn returns false. Iteration order is the hash layout, not
// key order.
func (s *Store) ForEach(tx stm.TxRO, fn func(k, v stm.Word) bool) {
	for si := 0; si < s.shards; si++ {
		if !s.ForEachShard(tx, si, fn) {
			return
		}
	}
}

// SumShard returns the sum of all values in one shard — the bounded
// iteration aggregate the scan ops issue (a long read-only
// transaction over ~1/Shards of the store).
func (s *Store) SumShard(tx stm.TxRO, shard int) stm.Word {
	var sum stm.Word
	s.ForEachShard(tx, shard, func(_, v stm.Word) bool { sum += v; return true })
	return sum
}

// SumAll returns the sum of every value — the whole-store aggregate
// used by the balance-invariant checks.
func (s *Store) SumAll(tx stm.TxRO) stm.Word {
	var sum stm.Word
	s.ForEach(tx, func(_, v stm.Word) bool { sum += v; return true })
	return sum
}

// Len counts the stored keys.
func (s *Store) Len(tx stm.TxRO) int {
	n := 0
	s.ForEach(tx, func(_, _ stm.Word) bool { n++; return true })
	return n
}
