// Package txkv is a sharded transactional key-value store — the
// server-traffic workload family of the evaluation. The paper argues
// SwissTM targets workloads "larger and more complex" than
// microbenchmarks; an in-memory KV store with mixed point operations,
// multi-key transactions and iteration-based aggregate reads is exactly
// the mixed short/long-transaction regime its two-phase contention
// manager is built for.
//
// The store is written entirely against the engine-agnostic object API
// (DESIGN.md §3.1), so it runs unmodified on SwissTM, TL2, TinySTM and
// object-based RSTM. Layout (DESIGN.md §6):
//
//   - The key space is hashed (splitmix64 finalizer) onto Shards ×
//     Buckets chains. The shard/bucket directory is built once at
//     setup and immutable afterwards, so it lives in plain Go memory
//     and costs no read-set entries.
//   - Each bucket is one 1-field holder object containing the chain
//     head, so two transactions conflict only when they touch the same
//     bucket (object-granularity engines) or the same lock stripe
//     (word-based engines).
//   - Each entry is one 3-field object {key, value, next}. Updates
//     write only the entry's value field; inserts link a fresh entry
//     at the chain head; deletes unlink (the bump-allocator arena
//     leaks the node, as all engines here leak on abort — see
//     stm.Tx.AllocWords).
package txkv

import "swisstm/internal/stm"

// Entry object field indices.
const (
	eKey uint32 = iota
	eVal
	eNext
	entryFields
)

// nilH is the nil entry handle.
const nilH stm.Handle = 0

// Config sizes the store. Both dimensions must be powers of two.
type Config struct {
	// Shards is the number of shards (aggregate/scan unit). Default 16.
	Shards int
	// Buckets is the number of hash buckets per shard. Default 64.
	Buckets int
}

func (c *Config) fill() {
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Buckets == 0 {
		c.Buckets = 64
	}
	if c.Shards&(c.Shards-1) != 0 || c.Buckets&(c.Buckets-1) != 0 {
		panic("txkv: Shards and Buckets must be powers of two")
	}
}

// ConfigForKeys sizes a store for an expected population of keys at
// roughly four keys per bucket across 16 shards.
func ConfigForKeys(keys int) Config {
	c := Config{Shards: 16, Buckets: 1}
	for c.Shards*c.Buckets*4 < keys {
		c.Buckets <<= 1
	}
	return c
}

// Store is a transactional hash map from uint64 keys to uint64 values.
// All operations run inside the caller's transaction, so any sequence
// of them composes into one atomic multi-key transaction. The Store
// struct itself is immutable after New and safe to share across worker
// threads.
type Store struct {
	shards  int
	buckets int
	// heads[shard][bucket] is the handle of that bucket's 1-field chain
	// head holder. Written once during New, read-only afterwards.
	heads [][]stm.Handle
}

// New builds an empty store using th for the allocation transactions.
func New(th stm.Thread, cfg Config) *Store {
	cfg.fill()
	s := &Store{shards: cfg.Shards, buckets: cfg.Buckets}
	s.heads = make([][]stm.Handle, cfg.Shards)
	for si := range s.heads {
		row := make([]stm.Handle, cfg.Buckets)
		// One allocation-only transaction per shard keeps transactions
		// bounded; fresh objects cannot conflict with anything.
		th.Atomic(func(tx stm.Tx) {
			for bi := range row {
				row[bi] = tx.NewObject(1)
			}
		})
		s.heads[si] = row
	}
	return s
}

// Shards returns the shard count (the unit SumShard iterates).
func (s *Store) Shards() int { return s.shards }

// mix is the splitmix64 finalizer: avalanches key bits so that hot
// zipfian ranks and sequential key populations scatter across shards
// and buckets.
func mix(k stm.Word) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// head returns the bucket holder handle for key.
func (s *Store) head(key stm.Word) stm.Handle {
	h := mix(key)
	return s.heads[int(h)&(s.shards-1)][int(h>>32)&(s.buckets-1)]
}

// find walks key's bucket chain, returning the entry holding key and
// its predecessor (both nilH when absent / first in chain).
func (s *Store) find(tx stm.Tx, holder stm.Handle, key stm.Word) (entry, prev stm.Handle) {
	e := tx.ReadField(holder, 0)
	for e != nilH {
		if tx.ReadField(e, eKey) == key {
			return e, prev
		}
		prev = e
		e = tx.ReadField(e, eNext)
	}
	return nilH, nilH
}

// Get returns the value stored under key.
func (s *Store) Get(tx stm.Tx, key stm.Word) (stm.Word, bool) {
	e, _ := s.find(tx, s.head(key), key)
	if e == nilH {
		return 0, false
	}
	return tx.ReadField(e, eVal), true
}

// Put sets key → val, returning true when the key was newly inserted
// (false when an existing value was overwritten).
func (s *Store) Put(tx stm.Tx, key, val stm.Word) bool {
	holder := s.head(key)
	e, _ := s.find(tx, holder, key)
	if e != nilH {
		tx.WriteField(e, eVal, val)
		return false
	}
	n := tx.NewObject(entryFields)
	tx.WriteField(n, eKey, key)
	tx.WriteField(n, eVal, val)
	tx.WriteField(n, eNext, tx.ReadField(holder, 0))
	tx.WriteField(holder, 0, n)
	return true
}

// Delete removes key, returning whether it was present.
func (s *Store) Delete(tx stm.Tx, key stm.Word) bool {
	holder := s.head(key)
	e, prev := s.find(tx, holder, key)
	if e == nilH {
		return false
	}
	next := tx.ReadField(e, eNext)
	if prev == nilH {
		tx.WriteField(holder, 0, next)
	} else {
		tx.WriteField(prev, eNext, next)
	}
	return true
}

// CAS replaces key's value with newv only when it currently equals
// oldv. It returns false — writing nothing — when the key is absent or
// holds a different value.
func (s *Store) CAS(tx stm.Tx, key, oldv, newv stm.Word) bool {
	e, _ := s.find(tx, s.head(key), key)
	if e == nilH || tx.ReadField(e, eVal) != oldv {
		return false
	}
	tx.WriteField(e, eVal, newv)
	return true
}

// Transfer atomically moves amount from keys[0] to each of keys[1:]
// (debiting amount × (len(keys)−1) from the source) — the multi-key
// transaction class of the workload mixes. It returns false, writing
// nothing, when fewer than two keys are given, keys repeat, any key is
// absent, or the source balance is insufficient. The sum over all keys
// is invariant either way, which the cross-engine balance checks
// exploit.
func (s *Store) Transfer(tx stm.Tx, keys []stm.Word, amount stm.Word) bool {
	if len(keys) < 2 {
		return false
	}
	for i, k := range keys {
		for _, prior := range keys[:i] {
			if prior == k {
				return false
			}
		}
	}
	debit := amount * stm.Word(len(keys)-1)
	// Locate every entry once; the write pass reuses the handles, so a
	// transfer over k keys walks each chain a single time.
	entries := make([]stm.Handle, len(keys))
	vals := make([]stm.Word, len(keys))
	for i, k := range keys {
		e, _ := s.find(tx, s.head(k), k)
		if e == nilH {
			return false
		}
		entries[i] = e
		vals[i] = tx.ReadField(e, eVal)
	}
	if vals[0] < debit {
		return false
	}
	tx.WriteField(entries[0], eVal, vals[0]-debit)
	for i := 1; i < len(entries); i++ {
		tx.WriteField(entries[i], eVal, vals[i]+amount)
	}
	return true
}

// ForEachShard calls fn for every (key, value) pair in one shard,
// stopping early when fn returns false.
func (s *Store) ForEachShard(tx stm.Tx, shard int, fn func(k, v stm.Word) bool) bool {
	for _, holder := range s.heads[shard] {
		e := tx.ReadField(holder, 0)
		for e != nilH {
			if !fn(tx.ReadField(e, eKey), tx.ReadField(e, eVal)) {
				return false
			}
			e = tx.ReadField(e, eNext)
		}
	}
	return true
}

// ForEach calls fn for every (key, value) pair in the store, stopping
// early when fn returns false. Iteration order is the hash layout, not
// key order.
func (s *Store) ForEach(tx stm.Tx, fn func(k, v stm.Word) bool) {
	for si := 0; si < s.shards; si++ {
		if !s.ForEachShard(tx, si, fn) {
			return
		}
	}
}

// SumShard returns the sum of all values in one shard — the bounded
// iteration aggregate the scan ops issue (a long read-only
// transaction over ~1/Shards of the store).
func (s *Store) SumShard(tx stm.Tx, shard int) stm.Word {
	var sum stm.Word
	s.ForEachShard(tx, shard, func(_, v stm.Word) bool { sum += v; return true })
	return sum
}

// SumAll returns the sum of every value — the whole-store aggregate
// used by the balance-invariant checks.
func (s *Store) SumAll(tx stm.Tx) stm.Word {
	var sum stm.Word
	s.ForEach(tx, func(_, v stm.Word) bool { sum += v; return true })
	return sum
}

// Len counts the stored keys.
func (s *Store) Len(tx stm.Tx) int {
	n := 0
	s.ForEach(tx, func(_, _ stm.Word) bool { n++; return true })
	return n
}
