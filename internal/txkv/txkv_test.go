package txkv_test

import (
	"sync"
	"testing"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/util"
)

// engineSpecs is the four-engine line-up every txkv test runs on.
var engineSpecs = []harness.EngineSpec{
	{Kind: "swisstm"},
	{Kind: "tl2"},
	{Kind: "tinystm"},
	{Kind: "rstm"},
}

// forEachEngine runs fn as a subtest per engine with a fresh instance.
func forEachEngine(t *testing.T, fn func(t *testing.T, e stm.STM)) {
	for _, spec := range engineSpecs {
		spec := spec
		t.Run(spec.DisplayName(), func(t *testing.T) { fn(t, spec.New()) })
	}
}

// smallCfg forces long probe sequences: 2 shards × 64 slots run at
// ~80% load with the 100-key tests, so probes regularly cross claimed
// and tombstoned slots.
var smallCfg = txkv.Config{Shards: 2, Slots: 64}

func TestBasicOps(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th := e.NewThread(0)
		s := txkv.New(th, smallCfg)
		const n = 100
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := stm.Word(1); k <= n; k++ {
				if !s.Put(tx, k, k*10) {
					t.Fatalf("Put(%d) reported existing key on first insert", k)
				}
			}
		})
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := stm.Word(1); k <= n; k++ {
				v, ok := s.Get(tx, k)
				if !ok || v != k*10 {
					t.Fatalf("Get(%d) = %d,%v; want %d,true", k, v, ok, k*10)
				}
			}
			if _, ok := s.Get(tx, n+1); ok {
				t.Fatal("Get of absent key returned ok")
			}
			if got := s.Len(tx); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
		})
		// Overwrite.
		stm.AtomicVoid(th, func(tx stm.Tx) {
			if s.Put(tx, 7, 777) {
				t.Fatal("Put of existing key reported a fresh insert")
			}
			if v, _ := s.Get(tx, 7); v != 777 {
				t.Fatalf("overwritten value = %d, want 777", v)
			}
		})
		// Delete every even key (head, middle and tail positions in the
		// 4 chains), then verify membership.
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := stm.Word(2); k <= n; k += 2 {
				if !s.Delete(tx, k) {
					t.Fatalf("Delete(%d) missed a present key", k)
				}
			}
			if s.Delete(tx, n+1) {
				t.Fatal("Delete of absent key reported success")
			}
		})
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := stm.Word(1); k <= n; k++ {
				_, ok := s.Get(tx, k)
				if want := k%2 == 1; ok != want {
					t.Fatalf("after deletes, Get(%d) present=%v, want %v", k, ok, want)
				}
			}
			if got := s.Len(tx); got != n/2 {
				t.Fatalf("Len after deletes = %d, want %d", got, n/2)
			}
		})
	})
}

func TestCAS(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th := e.NewThread(0)
		s := txkv.New(th, smallCfg)
		stm.AtomicVoid(th, func(tx stm.Tx) {
			s.Put(tx, 1, 10)
			if s.CAS(tx, 1, 11, 20) {
				t.Fatal("CAS with wrong expectation succeeded")
			}
			if v, _ := s.Get(tx, 1); v != 10 {
				t.Fatalf("failed CAS wrote: value = %d, want 10", v)
			}
			if !s.CAS(tx, 1, 10, 20) {
				t.Fatal("CAS with right expectation failed")
			}
			if v, _ := s.Get(tx, 1); v != 20 {
				t.Fatalf("value after CAS = %d, want 20", v)
			}
			if s.CAS(tx, 2, 0, 1) {
				t.Fatal("CAS on absent key succeeded")
			}
		})
	})
}

func TestTransferSemantics(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th := e.NewThread(0)
		s := txkv.New(th, smallCfg)
		stm.AtomicVoid(th, func(tx stm.Tx) {
			s.Put(tx, 1, 10)
			s.Put(tx, 2, 0)
			s.Put(tx, 3, 0)
			if !s.Transfer(tx, []stm.Word{1, 2, 3}, 3) {
				t.Fatal("funded transfer failed")
			}
			for k, want := range map[stm.Word]stm.Word{1: 4, 2: 3, 3: 3} {
				if v, _ := s.Get(tx, k); v != want {
					t.Fatalf("after transfer, key %d = %d, want %d", k, v, want)
				}
			}
			if s.Transfer(tx, []stm.Word{1, 2, 3}, 3) {
				t.Fatal("underfunded transfer succeeded")
			}
			if s.Transfer(tx, []stm.Word{1, 2, 2}, 1) {
				t.Fatal("transfer with duplicate keys succeeded")
			}
			if s.Transfer(tx, []stm.Word{1, 99}, 1) {
				t.Fatal("transfer touching an absent key succeeded")
			}
			if s.Transfer(tx, []stm.Word{1}, 1) {
				t.Fatal("single-key transfer succeeded")
			}
			if got := s.SumAll(tx); got != 10 {
				t.Fatalf("sum after no-op transfers = %d, want 10", got)
			}
		})
	})
}

func TestSumShardPartitionsSumAll(t *testing.T) {
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th := e.NewThread(0)
		s := txkv.New(th, txkv.Config{Shards: 4, Slots: 128})
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := stm.Word(1); k <= 200; k++ {
				s.Put(tx, k, k)
			}
		})
		stm.AtomicVoid(th, func(tx stm.Tx) {
			var byShard stm.Word
			for si := 0; si < s.Shards(); si++ {
				byShard += s.SumShard(tx, si)
			}
			if all := s.SumAll(tx); byShard != all {
				t.Fatalf("shard sums total %d, SumAll %d", byShard, all)
			}
			if want := stm.Word(200 * 201 / 2); byShard != want {
				t.Fatalf("total %d, want %d", byShard, want)
			}
		})
	})
}

// TestTransferInvariantConcurrent is the cross-engine balance oracle:
// workers hammer multi-key transfers (plus interleaved scans) on a
// small skewed key space and the total balance must come out exact.
// The Makefile runs this package under -race, so it doubles as the
// engine-level data-race probe for the KV path.
func TestTransferInvariantConcurrent(t *testing.T) {
	const (
		workers = 4
		keys    = 64
		opsEach = 2000
	)
	forEachEngine(t, func(t *testing.T, e stm.STM) {
		th0 := e.NewThread(0)
		s := txkv.New(th0, txkv.Config{Shards: 4, Slots: 32})
		stm.AtomicVoid(th0, func(tx stm.Tx) {
			for k := stm.Word(1); k <= keys; k++ {
				s.Put(tx, k, 100)
			}
		})
		zipf := util.NewZipf(keys, 0.9)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := e.NewThread(w + 1)
				rng := util.NewRand(uint64(w)*31 + 7)
				buf := make([]stm.Word, 0, 3)
				for i := 0; i < opsEach; i++ {
					if i%64 == 63 { // interleave long aggregate readers
						stm.AtomicVoid(th, func(tx stm.Tx) { s.SumShard(tx, rng.Intn(s.Shards())) })
						continue
					}
					buf = buf[:0]
					for len(buf) < 3 {
						c := stm.Word(zipf.Next(rng) + 1)
						dup := false
						for _, e := range buf {
							if e == c {
								dup = true
								break
							}
						}
						if !dup {
							buf = append(buf, c)
						}
					}
					stm.AtomicVoid(th, func(tx stm.Tx) { s.Transfer(tx, buf, 1) })
				}
			}(w)
		}
		wg.Wait()
		stm.AtomicVoid(th0, func(tx stm.Tx) {
			if got, want := s.SumAll(tx), stm.Word(keys*100); got != want {
				t.Fatalf("balance invariant broken: total %d, want %d", got, want)
			}
			if n := s.Len(tx); n != keys {
				t.Fatalf("key population changed: %d, want %d", n, keys)
			}
		})
	})
}

// TestGenMixesChecked runs every named mix end to end through the
// harness on every engine and requires the post-run oracles to pass.
func TestGenMixesChecked(t *testing.T) {
	for _, mix := range txkv.Mixes {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			for _, spec := range engineSpecs {
				spec := spec
				t.Run(spec.DisplayName(), func(t *testing.T) {
					mk := func(seed uint64) harness.Workload {
						return txkv.NewGen(txkv.GenConfig{Mix: mix, Keys: 256, Zipf: 0.9}).Workload()
					}
					recs, err := harness.RepeatThroughput(spec, mk, harness.RunConfig{
						Experiment: "txkv-test", Workload: "txkv/" + mix.Name,
						Threads: 4, FixedOps: 500, Repeats: 1, Seed: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range recs {
						if !r.CheckedOK || r.Ops != 4*500 {
							t.Fatalf("bad record: %+v", r)
						}
					}
				})
			}
		})
	}
}

// TestGenSeededDeterminism: two seeded single-thread runs must leave
// bit-identical stores and identical op counts — the reproducibility
// half of the acceptance criteria.
func TestGenSeededDeterminism(t *testing.T) {
	snapshot := func() (map[stm.Word]stm.Word, uint64) {
		var (
			g   *txkv.Gen
			eng stm.STM
		)
		mk := func(seed uint64) harness.Workload {
			g = txkv.NewGen(txkv.GenConfig{Mix: txkv.UpdateHeavy, Keys: 128, Zipf: 0.99})
			w := g.Workload()
			setup := w.Setup
			w.Setup = func(e stm.STM) error { eng = e; return setup(e) }
			return w
		}
		recs, err := harness.RepeatThroughput(harness.EngineSpec{Kind: "swisstm"}, mk, harness.RunConfig{
			Experiment: "txkv-test", Workload: "txkv/update-heavy",
			Threads: 1, FixedOps: 400, Repeats: 1, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		final := stm.AtomicRO(eng.NewThread(0), func(tx stm.TxRO) map[stm.Word]stm.Word {
			m := map[stm.Word]stm.Word{}
			g.Store().ForEach(tx, func(k, v stm.Word) bool { m[k] = v; return true })
			return m
		})
		return final, recs[0].Ops
	}
	finalA, opsA := snapshot()
	finalB, opsB := snapshot()
	if opsA != opsB {
		t.Fatalf("seeded runs measured different op counts: %d vs %d", opsA, opsB)
	}
	if len(finalA) != len(finalB) {
		t.Fatalf("seeded runs left %d vs %d keys", len(finalA), len(finalB))
	}
	for k, v := range finalA {
		if finalB[k] != v {
			t.Fatalf("seeded runs diverged at key %d: %#x vs %#x", k, v, finalB[k])
		}
	}
}

func TestMixesValid(t *testing.T) {
	for _, m := range txkv.Mixes {
		if err := m.Valid(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, ok := txkv.MixByName("read-heavy"); !ok {
		t.Error("MixByName missed read-heavy")
	}
	if _, ok := txkv.MixByName("nope"); ok {
		t.Error("MixByName resolved an unknown mix")
	}
}
