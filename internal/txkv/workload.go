// YCSB-style workload generation over the store: named read/update
// operation mixes with uniform or zipfian key popularity, plus the two
// cross-engine correctness oracles — the total-balance invariant under
// multi-key transfers and the per-key last-write check under updates.
package txkv

import (
	"fmt"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/util"
)

// Mix is one operation mix in percent of issued operations; the
// percentages must sum to 100 (Valid checks).
type Mix struct {
	Name        string
	ReadPct     int // point Get
	UpdatePct   int // blind Put of a fresh value
	CASPct      int // optimistic read-then-CAS (two transactions)
	TransferPct int // multi-key balance transfer
	ScanPct     int // one-shard aggregate sum (long read-only transaction)
	// TransferKeys is the number of distinct keys per transfer (≥ 2;
	// defaulted to 4 when a transfer share is configured).
	TransferKeys int
}

// The named mixes. ReadHeavy and UpdateHeavy are the YCSB B and A
// analogues (with a small scan/CAS share to exercise the long-reader
// and conditional-write classes); ReadOnly is YCSB C; TransferMix is
// the multi-key atomic-transaction mix whose total balance the
// invariant checks pin down.
var (
	ReadOnly    = Mix{Name: "read-only", ReadPct: 100}
	ReadHeavy   = Mix{Name: "read-heavy", ReadPct: 93, UpdatePct: 5, ScanPct: 2}
	UpdateHeavy = Mix{Name: "update-heavy", ReadPct: 48, UpdatePct: 42, CASPct: 10}
	TransferMix = Mix{Name: "transfer", ReadPct: 78, TransferPct: 20, ScanPct: 2, TransferKeys: 4}
)

// Mixes lists the named mixes in driver/experiment order.
var Mixes = []Mix{ReadHeavy, UpdateHeavy, TransferMix, ReadOnly}

// MixByName resolves a named mix.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Valid reports whether the mix percentages are sane.
func (m Mix) Valid() error {
	total := m.ReadPct + m.UpdatePct + m.CASPct + m.TransferPct + m.ScanPct
	if total != 100 {
		return fmt.Errorf("txkv: mix %q percentages sum to %d, want 100", m.Name, total)
	}
	if m.TransferPct > 0 && m.TransferKeys == 1 {
		return fmt.Errorf("txkv: mix %q transfers need ≥ 2 keys", m.Name)
	}
	return nil
}

// DefaultBalance is the per-key starting value; with transfers moving
// one unit among TransferKeys keys it leaves ample headroom before a
// source key runs dry (insufficient-balance transfers commit as
// no-ops, preserving the invariant either way).
const DefaultBalance stm.Word = 1000

// GenConfig parameterizes one generator instance.
type GenConfig struct {
	Mix Mix
	// Keys is the key population; the store is pre-filled with keys
	// 1..Keys. Default 1024.
	Keys int
	// Zipf is the zipfian skew θ in (0, 1); 0 selects uniform key
	// choice.
	Zipf float64
	// PlainReads routes the read-only operation classes (point Get,
	// scan, the CAS read) through plain stm.Atomic instead of the
	// declared read-only stm.AtomicRO fast path. It exists for the
	// ro-fastpath ablation pair (cmd/benchjson); leave it false.
	PlainReads bool
	// Balance is the per-key starting value (default DefaultBalance).
	Balance stm.Word
	// Store overrides the store dimensions (default ConfigForKeys(Keys)).
	Store Config
}

func (c *GenConfig) fill() error {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Keys < 0 {
		return fmt.Errorf("txkv: negative key population %d", c.Keys)
	}
	if c.Balance == 0 {
		c.Balance = DefaultBalance
	}
	if c.Store == (Config{}) {
		c.Store = ConfigForKeys(c.Keys)
	}
	if c.Mix.TransferPct > 0 && c.Mix.TransferKeys == 0 {
		c.Mix.TransferKeys = 4
	}
	if c.Mix.TransferPct > 0 && c.Mix.TransferKeys >= c.Keys {
		return fmt.Errorf("txkv: %d transfer keys need a key population above %d, have %d", c.Mix.TransferKeys, c.Mix.TransferKeys, c.Keys)
	}
	return c.Mix.Valid()
}

// Gen binds a mix to one store instance and produces the harness
// workload driving it. A Gen carries per-run oracle state (per-worker
// last committed writes), so build a fresh one per measured run — the
// harness mk(seed) contract does exactly that.
type Gen struct {
	cfg   GenConfig
	dist  util.Dist
	store *Store
	// lastWrite[w] maps key → the last value worker w committed to it.
	// Written only by worker w during the run, read single-threaded by
	// Check after the workers join.
	lastWrite []map[stm.Word]stm.Word
	seq       []uint64     // per-worker write sequence numbers
	tkeys     [][]stm.Word // per-worker transfer key scratch buffers
}

// NewGen builds a generator; it panics on invalid configuration (the
// configs in this repository are static).
func NewGen(cfg GenConfig) *Gen {
	if err := cfg.fill(); err != nil {
		panic(err)
	}
	g := &Gen{
		cfg:       cfg,
		lastWrite: make([]map[stm.Word]stm.Word, stm.MaxThreads),
		seq:       make([]uint64, stm.MaxThreads),
		tkeys:     make([][]stm.Word, stm.MaxThreads),
	}
	if cfg.Zipf > 0 {
		g.dist = util.NewZipf(cfg.Keys, cfg.Zipf)
	} else {
		g.dist = util.NewUniform(cfg.Keys)
	}
	for w := range g.lastWrite {
		g.lastWrite[w] = map[stm.Word]stm.Word{}
		if cfg.Mix.TransferPct > 0 {
			g.tkeys[w] = make([]stm.Word, 0, cfg.Mix.TransferKeys)
		}
	}
	return g
}

// Store returns the bound store (nil before Setup ran).
func (g *Gen) Store() *Store { return g.store }

// Workload adapts the generator to the harness contract.
func (g *Gen) Workload() harness.Workload {
	return harness.Workload{Setup: g.Setup, Op: g.Op, Check: g.Check}
}

// Setup builds the store on e and pre-fills keys 1..Keys with the
// starting balance, in bounded-size transactions.
func (g *Gen) Setup(e stm.STM) error {
	th := e.NewThread(0)
	g.store = New(th, g.cfg.Store)
	const chunk = 256
	for base := 1; base <= g.cfg.Keys; base += chunk {
		end := base + chunk
		if end > g.cfg.Keys+1 {
			end = g.cfg.Keys + 1
		}
		stm.AtomicVoid(th, func(tx stm.Tx) {
			for k := base; k < end; k++ {
				g.store.Put(tx, stm.Word(k), g.cfg.Balance)
			}
		})
	}
	return nil
}

// key draws one key from the configured popularity distribution.
func (g *Gen) key(rng *util.Rand) stm.Word {
	return stm.Word(g.dist.Next(rng) + 1)
}

// nextVal mints worker w's next globally unique write value:
// (w+1) << 40 | seq. Uniqueness is what makes the last-write check
// sound, and the encoding keeps written values disjoint from starting
// balances.
func (g *Gen) nextVal(worker int) stm.Word {
	g.seq[worker]++
	return stm.Word(worker+1)<<40 | stm.Word(g.seq[worker])
}

// Op issues one operation on the worker's thread — the harness
// throughput unit.
func (g *Gen) Op(th stm.Thread, worker int, rng *util.Rand) {
	m := g.cfg.Mix
	r := rng.Intn(100)
	switch {
	case r < m.ReadPct:
		key := g.key(rng)
		g.get(th, key)
	case r < m.ReadPct+m.UpdatePct:
		key := g.key(rng)
		val := g.nextVal(worker)
		stm.Atomic(th, func(tx stm.Tx) bool { return g.store.Put(tx, key, val) })
		g.lastWrite[worker][key] = val
	case r < m.ReadPct+m.UpdatePct+m.CASPct:
		// Optimistic client pattern: read in one transaction, then
		// conditionally swap in a second. The CAS observes failures
		// when another worker slipped a write in between.
		key := g.key(rng)
		cur, ok := g.get(th, key)
		if !ok {
			return
		}
		val := g.nextVal(worker)
		swapped := stm.Atomic(th, func(tx stm.Tx) bool { return g.store.CAS(tx, key, cur, val) })
		if swapped {
			g.lastWrite[worker][key] = val
		}
	case r < m.ReadPct+m.UpdatePct+m.CASPct+m.TransferPct:
		keys := g.transferKeys(worker, rng)
		stm.Atomic(th, func(tx stm.Tx) bool { return g.store.Transfer(tx, keys, 1) })
	default: // scan
		shard := rng.Intn(g.store.Shards())
		g.scan(th, shard)
	}
}

// getResult carries a point read's outcome out of its transaction as one
// value (the v2 API returns results instead of closure captures).
type getResult struct {
	val stm.Word
	ok  bool
}

// get issues one point read, declared read-only unless the PlainReads
// ablation is on.
func (g *Gen) get(th stm.Thread, key stm.Word) (stm.Word, bool) {
	var r getResult
	if g.cfg.PlainReads {
		r = stm.Atomic(th, func(tx stm.Tx) getResult {
			v, ok := g.store.Get(tx, key)
			return getResult{v, ok}
		})
	} else {
		r = stm.AtomicRO(th, func(tx stm.TxRO) getResult {
			v, ok := g.store.Get(tx, key)
			return getResult{v, ok}
		})
	}
	return r.val, r.ok
}

// scan issues one shard-aggregate read, declared read-only unless the
// PlainReads ablation is on.
func (g *Gen) scan(th stm.Thread, shard int) stm.Word {
	if g.cfg.PlainReads {
		return stm.Atomic(th, func(tx stm.Tx) stm.Word { return g.store.SumShard(tx, shard) })
	}
	return stm.AtomicRO(th, func(tx stm.TxRO) stm.Word { return g.store.SumShard(tx, shard) })
}

// transferKeys draws TransferKeys distinct keys into the worker's
// scratch buffer (zipfian draws repeat often; resample duplicates).
func (g *Gen) transferKeys(worker int, rng *util.Rand) []stm.Word {
	keys := g.tkeys[worker][:0]
	for len(keys) < g.cfg.Mix.TransferKeys {
		c := g.key(rng)
		dup := false
		for _, e := range keys {
			if e == c {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, c)
		}
	}
	g.tkeys[worker] = keys
	return keys
}

// Check validates the post-run state against the mix's oracles:
//
//   - Population: no mix deletes, so exactly keys 1..Keys must be
//     present.
//   - Balance invariant (pure transfer mixes): transfers conserve the
//     sum of all values, so it must still equal Keys × Balance.
//   - Last-write check (update mixes without transfers): each key's
//     final value must be the starting balance or some worker's last
//     committed write to it. The globally last write to a key is, for
//     whichever worker issued it, also that worker's last write — so
//     the per-worker last-write sets form a sound candidate set.
func (g *Gen) Check(e stm.STM) error {
	th := e.NewThread(0)
	final := stm.AtomicRO(th, func(tx stm.TxRO) map[stm.Word]stm.Word {
		m := make(map[stm.Word]stm.Word, g.cfg.Keys)
		g.store.ForEach(tx, func(k, v stm.Word) bool { m[k] = v; return true })
		return m
	})
	if len(final) != g.cfg.Keys {
		return fmt.Errorf("txkv: %d keys after run, want %d", len(final), g.cfg.Keys)
	}
	for k := 1; k <= g.cfg.Keys; k++ {
		if _, ok := final[stm.Word(k)]; !ok {
			return fmt.Errorf("txkv: key %d lost", k)
		}
	}
	m := g.cfg.Mix
	if m.TransferPct > 0 && m.UpdatePct == 0 && m.CASPct == 0 {
		want := stm.Word(g.cfg.Keys) * g.cfg.Balance
		var sum stm.Word
		for _, v := range final {
			sum += v
		}
		if sum != want {
			return fmt.Errorf("txkv: balance invariant broken: total %d, want %d", sum, want)
		}
	}
	if (m.UpdatePct > 0 || m.CASPct > 0) && m.TransferPct == 0 {
		for k, v := range final {
			if v == g.cfg.Balance {
				continue // never overwritten
			}
			found := false
			for w := range g.lastWrite {
				if g.lastWrite[w][k] == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("txkv: key %d holds %#x, which no worker last wrote", k, v)
			}
		}
	}
	return nil
}
