package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketLayout pins the bucket math: indices are monotone,
// contiguous, and every value lands inside its bucket's bounds.
func TestBucketLayout(t *testing.T) {
	if BucketIndex(0) != 0 {
		t.Fatalf("BucketIndex(0) = %d", BucketIndex(0))
	}
	// Exact buckets below 2*subCount.
	for v := uint64(0); v < 16; v++ {
		if BucketIndex(v) != int(v) {
			t.Fatalf("BucketIndex(%d) = %d, want exact", v, BucketIndex(v))
		}
	}
	// Every bucket's bounds round-trip through BucketIndex.
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if BucketIndex(lo) != i {
			t.Fatalf("bucket %d: BucketIndex(lower=%d) = %d", i, lo, BucketIndex(lo))
		}
		if BucketIndex(hi) != i {
			t.Fatalf("bucket %d: BucketIndex(upper=%d) = %d", i, hi, BucketIndex(hi))
		}
		if i > 0 && lo != BucketUpper(i-1)+1 {
			t.Fatalf("bucket %d not contiguous: lower=%d, prev upper=%d", i, lo, BucketUpper(i-1))
		}
		// Relative bucket width ≤ 12.5% of the lower bound.
		if lo >= 16 && hi != ^uint64(0) && float64(hi-lo+1) > float64(lo)/subCount+1 {
			t.Fatalf("bucket %d too wide: [%d,%d]", i, lo, hi)
		}
	}
	// Max-bucket overflow: the largest value maps to the last bucket.
	if got := BucketIndex(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("BucketIndex(MaxUint64) = %d, want %d", got, NumBuckets-1)
	}
}

// TestHistEdgeCases covers zero, max-bucket overflow, and quantiles
// on degenerate inputs.
func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	h.Record(0)
	if h.Count != 1 || h.Sum != 0 || h.Buckets[0] != 1 {
		t.Fatalf("after Record(0): %+v", h.Count)
	}
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("quantile of all-zero = %d, want 0", got)
	}
	// Overflowing value lands in (and is reported from) the last bucket.
	h.Record(math.MaxUint64)
	if h.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("MaxUint64 not in last bucket")
	}
	if got := h.Quantile(1); got != math.MaxUint64 {
		t.Fatalf("p100 = %d, want MaxUint64", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("p25 = %d, want 0", got)
	}
}

// TestQuantileMonotone pins that Quantile is monotone in q and always
// an upper bound for the true quantile.
func TestQuantileMonotone(t *testing.T) {
	var h Hist
	vals := []uint64{1, 3, 17, 17, 90, 1000, 12345, 999999, 1 << 40}
	for _, v := range vals {
		h.Record(v)
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantile not monotone: q=%.2f got %d < prev %d", q, got, prev)
		}
		prev = got
	}
	// p50 of 9 values is the 5th (=90); the bucket upper bound may
	// exceed it by at most 12.5%.
	p50 := h.Quantile(0.5)
	if p50 < 90 || float64(p50) > 90*1.125+1 {
		t.Fatalf("p50 = %d, want ≈90 (≤12.5%% high)", p50)
	}
}

// TestShardMerge covers merge of per-thread shards: the fold must
// equal a histogram that saw every observation.
func TestShardMerge(t *testing.T) {
	o := NewTxnObs()
	var want Hist
	for id := 0; id < 4; id++ {
		sh := o.Shard(id)
		for k := 0; k < 100; k++ {
			v := uint64(id*1000 + k*7)
			sh.Retries.Record(v)
			want.Record(v)
		}
	}
	// Same id twice returns the same shard.
	if o.Shard(2) != o.Shard(2) {
		t.Fatalf("Shard not idempotent")
	}
	m := o.Merged()
	if m.Retries != want {
		t.Fatalf("merged shards != direct histogram: count %d vs %d, sum %d vs %d",
			m.Retries.Count, want.Count, m.Retries.Sum, want.Sum)
	}
}

// TestHistSubDiff pins the snapshot/diff API: h.Sub(old) yields the
// delta, clamped at zero for series that went backwards (torn reads).
func TestHistSubDiff(t *testing.T) {
	var a, b Hist
	a.Record(5)
	b = a
	a.Record(100)
	a.Sub(&b)
	if a.Count != 1 || a.Sum != 100 || a.Buckets[BucketIndex(100)] != 1 {
		t.Fatalf("diff wrong: count=%d sum=%d", a.Count, a.Sum)
	}
	// Clamp: subtracting a larger snapshot yields zero, not wraparound.
	var small Hist
	small.Record(1)
	big := small
	big.Record(1)
	small.Sub(&big)
	if small.Count != 0 || small.Sum != 0 {
		t.Fatalf("clamped diff wrong: %d %d", small.Count, small.Sum)
	}
}

// TestAtomicHistConcurrent hammers an AtomicHist from many goroutines
// while snapshots are taken, pinning the documented diff-tolerance:
// every field is monotone across successive snapshots and the final
// snapshot is exact.
func TestAtomicHistConcurrent(t *testing.T) {
	var h AtomicHist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				h.Record(uint64(w*per + k))
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()
	var prev Hist
	for {
		s := h.Snapshot()
		if s.Count < prev.Count || s.Sum < prev.Sum {
			t.Fatalf("snapshot went backwards: count %d<%d or sum %d<%d",
				s.Count, prev.Count, s.Sum, prev.Sum)
		}
		prev = s
		select {
		case <-stop:
			final := h.Snapshot()
			if final.Count != workers*per {
				t.Fatalf("final count = %d, want %d", final.Count, workers*per)
			}
			var sum uint64
			for i := range final.Buckets {
				sum += final.Buckets[i]
			}
			if sum != final.Count {
				t.Fatalf("Count %d != sum(Buckets) %d", final.Count, sum)
			}
			return
		default:
		}
	}
}

// TestRegistrySnapshotDiff exercises registry gather, lookup, and
// snapshot subtraction.
func TestRegistrySnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", Label{"op", "get"})
	hh := r.Histogram("lat_ns", Label{"op", "get"})
	r.RegisterCollector(func(s *Snapshot) {
		s.AddCounter("collected_total", nil, 7)
	})

	c.Add(3)
	hh.Record(100)
	s0 := r.Gather()
	c.Add(2)
	hh.Record(200)
	s1 := r.Gather()

	if v, ok := s1.Counter("req_total", Label{"op", "get"}); !ok || v != 5 {
		t.Fatalf("counter lookup: %d %v", v, ok)
	}
	if _, ok := s1.Counter("req_total", Label{"op", "put"}); ok {
		t.Fatalf("lookup matched wrong labels")
	}
	if v, ok := s1.Counter("collected_total"); !ok || v != 7 {
		t.Fatalf("collector series: %d %v", v, ok)
	}
	d := s1.Sub(s0)
	if v, _ := d.Counter("req_total", Label{"op", "get"}); v != 2 {
		t.Fatalf("diffed counter = %d, want 2", v)
	}
	dh, ok := d.Histogram("lat_ns", Label{"op", "get"})
	if !ok || dh.Count != 1 || dh.Sum != 200 {
		t.Fatalf("diffed hist: %v count=%d sum=%d", ok, dh.Count, dh.Sum)
	}
}

// TestWritePrometheus pins the exposition format: TYPE headers,
// cumulative le buckets ending in +Inf, _sum/_count, label escaping.
func TestWritePrometheus(t *testing.T) {
	s := &Snapshot{}
	s.AddCounter("aborts_total", []Label{{"cause", "cm-kill"}}, 4)
	var h Hist
	h.Record(3)
	h.Record(40)
	s.AddHist("lat_ns", []Label{{"op", "get"}}, h)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aborts_total counter",
		`aborts_total{cause="cm-kill"} 4`,
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{op="get",le="3"} 1`,
		`lat_ns_bucket{op="get",le="+Inf"} 2`,
		`lat_ns_sum{op="get"} 43`,
		`lat_ns_count{op="get"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: the le="63" boundary (end of 40's octave group,
	// [32,63]) must include both observations.
	if !strings.Contains(out, `lat_ns_bucket{op="get",le="63"} 2`) {
		t.Fatalf("missing cumulative 63 bucket in:\n%s", out)
	}
}
