package obs

import "sync"

// Label is one key=value metric label.
type Label struct {
	Key, Value string
}

// Metric is one named series in a Snapshot: either a counter value or
// a histogram, never both.
type Metric struct {
	Name   string
	Labels []Label
	Value  uint64 // counter value (Hist == nil)
	Hist   *Hist  // histogram data, owned by the snapshot
}

// Snapshot is a point-in-time copy of a metric set. Snapshots are
// plain data: they can be diffed (Sub), queried, and rendered to
// Prometheus text long after the live metrics have moved on.
type Snapshot struct {
	Metrics []Metric
}

// AddCounter appends a counter series.
func (s *Snapshot) AddCounter(name string, labels []Label, v uint64) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Labels: labels, Value: v})
}

// AddHist appends a histogram series (copies h).
func (s *Snapshot) AddHist(name string, labels []Label, h Hist) {
	c := h
	s.Metrics = append(s.Metrics, Metric{Name: name, Labels: labels, Hist: &c})
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the value of the named counter series, or false if
// absent.
func (s *Snapshot) Counter(name string, labels ...Label) (uint64, bool) {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Hist == nil && m.Name == name && labelsEqual(m.Labels, labels) {
			return m.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram series, or false if absent.
func (s *Snapshot) Histogram(name string, labels ...Label) (*Hist, bool) {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Hist != nil && m.Name == name && labelsEqual(m.Labels, labels) {
			return m.Hist, true
		}
	}
	return nil, false
}

// Sub returns s minus prev, series by series (matched on name+labels,
// clamped at zero). Series absent from prev pass through unchanged —
// so diffing against an older snapshot that predates a series is
// well-defined.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for i := range s.Metrics {
		m := s.Metrics[i]
		if m.Hist != nil {
			h := *m.Hist
			if ph, ok := prev.Histogram(m.Name, m.Labels...); ok {
				h.Sub(ph)
			}
			m.Hist = &h
		} else if pv, ok := prev.Counter(m.Name, m.Labels...); ok {
			m.Value = clampSub(m.Value, pv)
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

type regCounter struct {
	name   string
	labels []Label
	c      *Counter
}

type regHist struct {
	name   string
	labels []Label
	h      *AtomicHist
}

// Registry owns a set of live metrics and produces Snapshots. Two
// kinds of members:
//
//   - Owned counters/histograms created via Counter/Histogram: live
//     lock-free objects the caller records into; gathered with atomic
//     loads at snapshot time.
//   - Collectors registered via RegisterCollector: callbacks that
//     append externally-owned data (e.g. quiesced engine stats) to
//     the snapshot. Collector cost and consistency are the
//     collector's business — the server's collector drains the worker
//     pool before reading engine-thread state.
//
// Registration takes a lock; recording into registered metrics never
// does.
type Registry struct {
	mu         sync.Mutex
	counters   []regCounter
	hists      []regHist
	collectors []func(*Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a new counter series. Each call
// creates a distinct series; callers keep the returned handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	c := new(Counter)
	r.mu.Lock()
	r.counters = append(r.counters, regCounter{name, labels, c})
	r.mu.Unlock()
	return c
}

// Histogram registers and returns a new atomic histogram series.
func (r *Registry) Histogram(name string, labels ...Label) *AtomicHist {
	h := new(AtomicHist)
	r.mu.Lock()
	r.hists = append(r.hists, regHist{name, labels, h})
	r.mu.Unlock()
	return h
}

// RegisterCollector adds a callback invoked on every Gather.
func (r *Registry) RegisterCollector(fn func(*Snapshot)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Gather snapshots every registered metric, then runs the collectors.
func (r *Registry) Gather() *Snapshot {
	r.mu.Lock()
	counters := r.counters
	hists := r.hists
	collectors := r.collectors
	r.mu.Unlock()

	s := &Snapshot{}
	for _, rc := range counters {
		s.AddCounter(rc.name, rc.labels, rc.c.Load())
	}
	for _, rh := range hists {
		s.AddHist(rh.name, rh.labels, rh.h.Snapshot())
	}
	for _, fn := range collectors {
		fn(s)
	}
	return s
}
