package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text
// exposition format. Counters become `<name>{labels} <value>`;
// histograms become cumulative `<name>_bucket{...,le="..."}` series
// plus `_sum` and `_count`.
//
// Histogram buckets are coarsened on the way out: the internal
// 496-bucket layout is folded to one `le` per octave boundary (the
// inclusive upper edge of each power-of-two group), and emission
// stops at the first boundary covering every observation (the rest
// collapse into `+Inf`). That keeps a scrape at ~a dozen lines per
// histogram with ≤2× boundary resolution, while quantiles computed
// from the full-resolution Snapshot keep the 12.5% bucket error.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	// Group series by name so each family gets one # TYPE header.
	names := make([]string, 0, len(s.Metrics))
	byName := make(map[string][]*Metric, len(s.Metrics))
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)

	for _, name := range names {
		family := byName[name]
		typ := "counter"
		if family[0].Hist != nil {
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, m := range family {
			var err error
			if m.Hist != nil {
				err = writeHist(w, m)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %d\n", m.Name, labelString(m.Labels, "", ""), m.Value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, m *Metric) error {
	h := m.Hist
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.Buckets[i]
		upper := BucketUpper(i)
		// Octave boundary: the last bucket before the width doubles
		// (upper+1 is a power of two), i.e. the end of each group.
		if upper != ^uint64(0) && (upper+1)&upper != 0 {
			continue
		}
		if upper == ^uint64(0) {
			break // final group folds into +Inf below
		}
		le := fmt.Sprintf("%d", upper)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, labelString(m.Labels, "le", le), cum); err != nil {
			return err
		}
		if cum == h.Count {
			break // every observation covered; rest is +Inf
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.Name, labelString(m.Labels, "le", "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, labelString(m.Labels, "", ""), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels, "", ""), h.Count)
	return err
}

// labelString renders {k="v",...}, appending an extra label (used for
// le) when extraKey is non-empty. Returns "" for no labels at all.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
