package obs

import "sync/atomic"

// AtomicHist is the concurrent flavor of Hist: recording is two
// uncontended-CAS-free atomic adds (bucket + sum), so it is lock-free
// and allocation-free from any number of goroutines.
//
// Snapshot is deliberately diff-tolerant rather than globally
// consistent: each field is read with an individual atomic load, so a
// snapshot taken under concurrent recording may observe a bucket
// increment without the matching sum increment (or vice versa). Every
// field is monotone non-decreasing, so diffs of two snapshots are
// still per-field exact, and Count is derived from the bucket loads
// so that Count == sum(Buckets) holds in every snapshot by
// construction.
type AtomicHist struct {
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *AtomicHist) Record(v uint64) {
	h.buckets[BucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram into a plain Hist. See the type doc
// for the consistency contract.
func (h *AtomicHist) Snapshot() Hist {
	var s Hist
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// Counter is a lock-free monotone counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }
