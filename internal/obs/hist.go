// Package obs is the repo-wide observability layer: lock-free
// log-scaled latency/size histograms, labeled counters behind a
// registry, a snapshot/diff API, and a Prometheus-text exposition
// writer. See DESIGN.md §11.
//
// Two histogram flavors cover the two write-side regimes:
//
//   - Hist is a plain (non-atomic) single-writer histogram. It is the
//     engine-side building block: each engine thread owns one shard
//     (TxnShard) and bumps plain counters exactly like the existing
//     stm.Stats fields, so the instrumented commit path stays free of
//     atomics and allocations. Reading a Hist is only defined while
//     its writer is quiescent — the same contract as stm.Thread.Stats.
//
//   - AtomicHist is a lock-free concurrent histogram (atomic adds).
//     It is the server-side building block, where many connection
//     goroutines record into the same per-op/per-phase histogram and
//     a scrape may happen at any time.
//
// Bucket layout (shared by both flavors): HdrHistogram-style
// log-linear buckets with subBits=3 — values below 16 get exact
// unit-width buckets, and every power-of-two octave above that is
// split into 8 sub-buckets, bounding relative error at 12.5%. The
// full uint64 range maps onto NumBuckets (496) buckets, so recording
// can never miss: overflowing values land in the last bucket.
package obs

import "math/bits"

const (
	subBits  = 3
	subCount = 1 << subBits // 8 sub-buckets per octave

	// NumBuckets covers all of uint64: 2*subCount exact buckets for
	// v < 2*subCount, then (63-subBits)*subCount log-linear buckets.
	NumBuckets = (63-subBits)*subCount + 2*subCount // 496
)

// BucketIndex maps a value to its bucket. Values below 2*subCount map
// exactly; above that, bucket width doubles every octave.
func BucketIndex(v uint64) int {
	if v < 2*subCount {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 - subBits // >= 1 here
	mantissa := int((v >> exp) & (subCount - 1))
	return int(exp)<<subBits + subCount + mantissa
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) uint64 {
	if i < 2*subCount {
		return uint64(i)
	}
	exp := uint(i>>subBits) - 1
	mantissa := uint64(i & (subCount - 1))
	return (subCount + mantissa) << exp
}

// BucketUpper returns the inclusive upper bound of bucket i. The last
// bucket absorbs every overflowing value, so its upper bound is the
// maximum uint64.
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return ^uint64(0)
	}
	return BucketLower(i+1) - 1
}

// Hist is a fixed-size log-scaled histogram with plain (non-atomic)
// counters. Single writer; readers must wait for the writer to
// quiesce (see package doc). The zero value is ready to use.
type Hist struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Record adds one observation. Plain increments: no atomics, no
// allocation, no branches beyond the bucket math.
func (h *Hist) Record(v uint64) {
	h.Buckets[BucketIndex(v)]++
	h.Count++
	h.Sum += v
}

// Add merges o into h bucket-by-bucket (used to fold per-thread
// shards into one distribution).
func (h *Hist) Add(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Sub subtracts an earlier snapshot o from h, clamping at zero so a
// diff across a torn window never goes negative (see
// AtomicHist.Snapshot for when that can happen).
func (h *Hist) Sub(o *Hist) {
	h.Count = clampSub(h.Count, o.Count)
	h.Sum = clampSub(h.Sum, o.Sum)
	for i := range h.Buckets {
		h.Buckets[i] = clampSub(h.Buckets[i], o.Buckets[i])
	}
}

func clampSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of
// the recorded values: the inclusive upper edge of the bucket holding
// the rank-⌈q·Count⌉ observation. Monotone in q by construction.
// Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank = ceil(q*Count), at least 1.
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the arithmetic mean of recorded values (0 if empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
