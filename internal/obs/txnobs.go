package obs

import "sync"

// MaxShards mirrors stm.MaxThreads: one shard per engine thread id.
// (obs deliberately has no repo-internal imports; the engines assert
// the correspondence where they wire a TxnObs in.)
const MaxShards = 64

// TxnShard holds one engine thread's per-transaction distributions.
// Single writer (the owning engine thread); read only while the
// thread is quiescent — the same contract as stm.Thread.Stats.
type TxnShard struct {
	// Retries is the per-committed-transaction retry count: how many
	// aborted attempts preceded the commit (0 for first-try commits).
	Retries Hist
	// ReadSet and WriteSet are the read-/write-set sizes (entries
	// logged) of committed transactions. Engines that keep no read
	// log on a given path (TL2 declared read-only) record 0.
	ReadSet  Hist
	WriteSet Hist
}

// RecordCommit records one committed transaction on the hot path:
// nine plain increments plus bucket math, no atomics, no allocation.
func (s *TxnShard) RecordCommit(retries, readSet, writeSet uint64) {
	s.Retries.Record(retries)
	s.ReadSet.Record(readSet)
	s.WriteSet.Record(writeSet)
}

// TxnObs is the per-engine-instance collection point for TxnShards:
// one shard per thread id, allocated lazily at thread creation so
// memory scales with threads actually used.
type TxnObs struct {
	mu     sync.Mutex
	shards [MaxShards]*TxnShard
}

// NewTxnObs returns an empty TxnObs.
func NewTxnObs() *TxnObs { return &TxnObs{} }

// Shard returns thread id's shard, allocating it on first use. Called
// from engine NewThread (not the hot path). Panics on an out-of-range
// id, mirroring the engines' own thread-id checks.
func (o *TxnObs) Shard(id int) *TxnShard {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shards[id] == nil {
		o.shards[id] = new(TxnShard)
	}
	return o.shards[id]
}

// TxnSummary is the fold of all shards of one TxnObs.
type TxnSummary struct {
	Retries  Hist
	ReadSet  Hist
	WriteSet Hist
}

// Merged folds every allocated shard into one summary. The caller
// must have quiesced the owning threads (e.g. the server drains its
// worker pool first, exactly as it does for stm stats).
func (o *TxnObs) Merged() TxnSummary {
	o.mu.Lock()
	shards := o.shards
	o.mu.Unlock()
	var m TxnSummary
	for _, s := range shards {
		if s == nil {
			continue
		}
		m.Retries.Add(&s.Retries)
		m.ReadSet.Add(&s.ReadSet)
		m.WriteSet.Add(&s.WriteSet)
	}
	return m
}
