package txkvserver

import (
	"net"
	"strings"
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvwire"
)

// startLimited boots a server with admission limits for the overload
// tests: one engine thread so a single slow request occupies the whole
// pool, and a key population big enough that a max-size batch of
// full-store scans holds it for tens of milliseconds at least.
func startLimited(t *testing.T, kind string, cfg Config) (*Server, *txkvclient.Client) {
	t.Helper()
	cfg.Engine = harness.EngineSpec{Kind: kind, Manager: "polka"}
	if cfg.Keys == 0 {
		// Sized so slowBatch occupies the thread for tens of
		// milliseconds to a few seconds; rstm's object indirection
		// makes its scans an order of magnitude slower, so it gets a
		// smaller store to keep the suite fast.
		if kind == "rstm" {
			cfg.Keys = 512
		} else {
			cfg.Keys = 4096
		}
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	srv, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("start %s server: %v", kind, err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := txkvclient.DialRetry(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

// slowBatch is a max-size batch of full-store scans: the longest
// engine occupancy one request can buy.
func slowBatch() txkvwire.Req {
	sub := make([]txkvwire.Req, txkvwire.MaxBatch)
	for i := range sub {
		sub[i] = txkvwire.Req{Op: txkvwire.OpSum, Shard: -1}
	}
	return txkvwire.Req{Op: txkvwire.OpBatch, Sub: sub}
}

// occupyThread sends slowBatch on its own connection and returns a
// channel carrying the eventual transport error. It waits until the
// pool is actually empty (the batch borrowed the only engine thread)
// before returning, so callers can queue behind it deterministically.
func occupyThread(t *testing.T, srv *Server) <-chan error {
	t.Helper()
	occ, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial occupier: %v", err)
	}
	t.Cleanup(func() { occ.Close() })
	done := make(chan error, 1)
	go func() {
		_, err := occ.Do(slowBatch())
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.pool) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("occupier never borrowed the engine thread")
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

// waitQueued polls until n requests are waiting for an engine thread.
func waitQueued(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d queued requests (have %d)", n, srv.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainRepliesDrainingToQueued pins the drain-vs-queue contract on
// every engine: a request waiting in the admission queue when Drain
// starts gets a typed retryable Draining reply instead of hanging for
// an engine thread that will never come, while the in-flight request
// that holds the thread finishes normally.
func TestDrainRepliesDrainingToQueued(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			srv, _ := startLimited(t, kind, Config{})
			occDone := occupyThread(t, srv)

			qcl, err := txkvclient.Dial(srv.Addr().String())
			if err != nil {
				t.Fatalf("dial queued client: %v", err)
			}
			defer qcl.Close()
			type res struct {
				reply txkvwire.Reply
				err   error
			}
			qdone := make(chan res, 1)
			go func() {
				reply, err := qcl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1})
				qdone <- res{reply, err}
			}()
			waitQueued(t, srv, 1)

			if err := srv.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			r := <-qdone
			if r.err != nil {
				t.Fatalf("queued request's transport failed: %v (want a Draining reply)", r.err)
			}
			if r.reply.Code != txkvwire.CodeDraining {
				t.Fatalf("queued request got code %v (%q), want Draining", r.reply.Code, r.reply.Err)
			}
			if !r.reply.Code.Retryable() {
				t.Fatal("Draining must be retryable — the client should just go elsewhere")
			}
			if err := <-occDone; err != nil {
				t.Fatalf("in-flight batch did not survive the drain: %v", err)
			}
		})
	}
}

// TestShedQueueWaitRecordsQueueTime pins the queue-phase accounting
// for shed requests: a request shed by the wait bound must contribute
// its real queue time to the QueueNs phase sum (the pre-admission
// timestamping bug this PR fixes) and must not touch the txn phase it
// never reached.
func TestShedQueueWaitRecordsQueueTime(t *testing.T) {
	const wait = 5 * time.Millisecond
	srv, _ := startLimited(t, "swisstm", Config{MaxQueueWait: wait})
	occDone := occupyThread(t, srv)

	s0 := srv.m.snapshot()
	cl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	reply, err := cl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1})
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if reply.Code != txkvwire.CodeOverloaded || !strings.Contains(reply.Err, "queue wait") {
		t.Fatalf("want an Overloaded queue-wait shed, got code %v (%q)", reply.Code, reply.Err)
	}

	// The metrics record lands after the reply is flushed; poll for it.
	var s1 txkvwire.Stats
	deadline := time.Now().Add(5 * time.Second)
	for {
		s1 = srv.m.snapshot()
		if s1.Sheds > s0.Sheds || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s1.Sheds != s0.Sheds+1 {
		t.Fatalf("sheds %d -> %d, want one queue-wait shed", s0.Sheds, s1.Sheds)
	}
	if d := s1.QueueNs - s0.QueueNs; d < uint64(wait.Nanoseconds())*4/5 {
		t.Fatalf("shed request recorded only %dns of queue time, waited %v", d, wait)
	}
	if s1.TxnNs != s0.TxnNs {
		t.Fatal("shed request recorded txn time it never spent")
	}
	<-occDone
}

// TestShedQueueFull: with the queue at its occupancy cap, the next
// request is refused immediately with Overloaded, and the request
// already queued is still served once the thread frees up.
func TestShedQueueFull(t *testing.T) {
	srv, _ := startLimited(t, "tl2", Config{MaxQueue: 1})
	occDone := occupyThread(t, srv)

	qcl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer qcl.Close()
	type res struct {
		reply txkvwire.Reply
		err   error
	}
	qdone := make(chan res, 1)
	go func() {
		reply, err := qcl.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 1})
		qdone <- res{reply, err}
	}()
	waitQueued(t, srv, 1)

	over, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial overflow client: %v", err)
	}
	defer over.Close()
	t0 := time.Now()
	reply, err := over.Do(txkvwire.Req{Op: txkvwire.OpGet, Key: 2})
	if err != nil {
		t.Fatalf("overflow do: %v", err)
	}
	if reply.Code != txkvwire.CodeOverloaded || !strings.Contains(reply.Err, "queue full") {
		t.Fatalf("want an Overloaded queue-full shed, got code %v (%q)", reply.Code, reply.Err)
	}
	// An occupancy shed must not burn the wait bound: it is immediate.
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("queue-full shed took %v, want immediate refusal", d)
	}

	if err := <-occDone; err != nil {
		t.Fatalf("occupier: %v", err)
	}
	r := <-qdone
	if r.err != nil || r.reply.Err != "" || !r.reply.Found {
		t.Fatalf("queued request not served after thread freed: %+v / %v", r.reply, r.err)
	}
}

// TestDeadlineExceededWaiting: a request whose TTL expires while it
// waits for an engine thread is dropped with the permanent
// DeadlineExceeded code — the client has already given up, executing
// it would be wasted work.
func TestDeadlineExceededWaiting(t *testing.T) {
	srv, _ := startLimited(t, "tinystm", Config{})
	occDone := occupyThread(t, srv)

	// Raw frames: the resilient client stops waiting once the TTL
	// budget is spent (correctly — the reply is useless to it), but the
	// test wants to observe the typed reply itself.
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	frame, err := txkvwire.AppendReq(nil, txkvwire.Req{Op: txkvwire.OpGet, Key: 1, TTL: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := txkvwire.WriteFrame(raw, frame); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf, err := txkvwire.ReadFrame(raw, nil)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	reply, err := txkvwire.DecodeReply(buf)
	if err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	if reply.Code != txkvwire.CodeDeadlineExceeded || !strings.Contains(reply.Err, "deadline") {
		t.Fatalf("want DeadlineExceeded, got code %v (%q)", reply.Code, reply.Err)
	}
	if reply.Code.Retryable() {
		t.Fatal("DeadlineExceeded must be permanent: the budget is spent, retrying is useless")
	}

	var st txkvwire.Stats
	deadline := time.Now().Add(5 * time.Second)
	for st = srv.m.snapshot(); st.DeadlineExceeded == 0 && time.Now().Before(deadline); st = srv.m.snapshot() {
		time.Sleep(time.Millisecond)
	}
	if st.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded counter = %d, want 1", st.DeadlineExceeded)
	}
	<-occDone
}

// TestMaxConnsRejected: a connection beyond the cap gets exactly one
// typed Overloaded frame and a close — never a silent hang.
func TestMaxConnsRejected(t *testing.T) {
	srv, ctl := startLimited(t, "swisstm", Config{Keys: 64, MaxConns: 1})
	// ctl holds the one allowed slot; the next dial must be refused.
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, err := txkvwire.ReadFrame(raw, nil)
	if err != nil {
		t.Fatalf("read rejection frame: %v", err)
	}
	reply, err := txkvwire.DecodeReply(buf)
	if err != nil {
		t.Fatalf("decode rejection: %v", err)
	}
	if reply.Code != txkvwire.CodeOverloaded || !strings.Contains(reply.Err, "connection limit") {
		t.Fatalf("want Overloaded connection rejection, got code %v (%q)", reply.Code, reply.Err)
	}
	if _, err := txkvwire.ReadFrame(raw, nil); err == nil {
		t.Fatal("rejected connection stayed open after the refusal frame")
	}

	st, err := ctl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.ConnsRejected != 1 {
		t.Fatalf("conns_rejected = %d, want 1", st.ConnsRejected)
	}
}

// TestTotalIsPhaseSum pins the per-request accounting identity at the
// metrics layer: the total histogram records exactly the sum of the
// six phase sums, so per-phase time can never leak out of (or
// double-count into) the end-to-end figure.
func TestTotalIsPhaseSum(t *testing.T) {
	m := newMetrics(4)
	m.record(txkvwire.OpGet, 1, 20, 300, 4000, 50_000, 600_000)
	om := &m.ops[int(txkvwire.OpGet)]
	var phases uint64
	for p := 0; p < phaseCount; p++ {
		h := om.phase[p].Snapshot()
		phases += h.Sum
	}
	tot := om.total.Snapshot()
	if want := uint64(1 + 20 + 300 + 4000 + 50_000 + 600_000); tot.Sum != want || phases != want {
		t.Fatalf("total=%d phases=%d, want both %d", tot.Sum, phases, want)
	}
	st := m.snapshot()
	if got := st.ParseNs + st.QueueNs + st.TxnNs + st.CommitNs + st.WalNs + st.ReplyNs; got != 654_321 {
		t.Fatalf("snapshot phase sum %d, want 654321", got)
	}
}
