package txkvserver

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvwire"
)

// TestNoTornFrames pipelines many requests on one connection without
// reading a single reply, then drains the replies through a
// deliberately tiny buffered reader. Every reply frame must decode
// cleanly and arrive in request order — a torn frame (length prefix
// split from its payload, or interleaved writes) would desynchronize
// the stream and fail the decode immediately.
func TestNoTornFrames(t *testing.T) {
	srv, _ := startServer(t, "swisstm", 256)

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	const n = 500
	var out []byte
	for i := 0; i < n; i++ {
		var payload []byte
		payload, err = txkvwire.AppendReq(nil, txkvwire.Req{Op: txkvwire.OpGet, Key: uint64(1 + i%256)})
		if err != nil {
			t.Fatalf("encode req %d: %v", i, err)
		}
		frame := make([]byte, 0, len(payload)+4)
		frame = append(frame, byte(len(payload)), byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24))
		frame = append(frame, payload...)
		out = append(out, frame...)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatalf("pipeline write: %v", err)
	}

	// A 7-byte reader buffer guarantees frame headers and payloads are
	// observed split across reads, so any server-side tearing shows up.
	r := &slowReader{r: conn}
	var fbuf []byte
	for i := 0; i < n; i++ {
		fbuf, err = txkvwire.ReadFrame(r, fbuf)
		if err != nil {
			t.Fatalf("reply %d: read frame: %v", i, err)
		}
		rep, err := txkvwire.DecodeReply(fbuf)
		if err != nil {
			t.Fatalf("reply %d: decode: %v", i, err)
		}
		if rep.Op != txkvwire.OpGet || rep.Err != "" {
			t.Fatalf("reply %d: unexpected reply %+v", i, rep)
		}
	}
}

// slowReader returns at most 7 bytes per Read call.
type slowReader struct{ r io.Reader }

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > 7 {
		p = p[:7]
	}
	return s.r.Read(p)
}

// TestConcurrentStatsSnapshot hammers the store from several
// connections while a separate connection polls the Stats op, and
// asserts the documented diff-tolerance contract: every cumulative
// field is monotone non-decreasing across successive snapshots even
// though recording never pauses.
func TestConcurrentStatsSnapshot(t *testing.T) {
	srv, cl := startServer(t, "swisstm", 256)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := txkvclient.Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			defer c.Close()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := 1 + (seed*1000003+i)%256
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(uint64(g))
	}

	var prev txkvwire.Stats
	for i := 0; i < 50; i++ {
		st, err := cl.Stats()
		if err != nil {
			t.Fatalf("stats poll %d: %v", i, err)
		}
		mono := func(name string, now, before uint64) {
			if now < before {
				t.Fatalf("poll %d: %s went backwards: %d -> %d", i, name, before, now)
			}
		}
		mono("Requests", st.Requests, prev.Requests)
		mono("ParseNs", st.ParseNs, prev.ParseNs)
		mono("QueueNs", st.QueueNs, prev.QueueNs)
		mono("TxnNs", st.TxnNs, prev.TxnNs)
		mono("CommitNs", st.CommitNs, prev.CommitNs)
		mono("ReplyNs", st.ReplyNs, prev.ReplyNs)
		mono("Commits", st.Commits, prev.Commits)
		mono("Aborts", st.Aborts, prev.Aborts)
		prev = st
	}
	close(stop)
	wg.Wait()
	if prev.Requests == 0 || prev.Commits == 0 {
		t.Fatalf("no traffic observed: %+v", prev)
	}
}

// TestAdminEndpoints starts a server with the admin surface bound,
// applies real load, and checks /metrics exposes every metric family
// the tentpole promises, /statz upholds the abort-cause partition, and
// the pprof index answers.
func TestAdminEndpoints(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{
		Engine: harness.EngineSpec{Kind: "swisstm", Manager: "polka"},
		Keys:   256,
		Admin:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("start server with admin: %v", err)
	}
	defer srv.Close()
	if srv.AdminAddr() == nil {
		t.Fatal("admin listener not bound")
	}

	cl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	for i := uint64(1); i <= 300; i++ {
		k := 1 + i%256
		if i%4 == 0 {
			if _, err := cl.Put(k, i); err != nil {
				t.Fatalf("put: %v", err)
			}
		} else if _, _, err := cl.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if _, err := cl.Transfer([]uint64{1, 2, 3}, 1); err != nil {
		t.Fatalf("transfer: %v", err)
	}

	base := "http://" + srv.AdminAddr().String()
	body := httpGet(t, base+"/metrics")
	for _, family := range []string{
		"txkv_requests_total{op=\"get\"}",
		"txkv_request_ns_bucket{op=\"get\",le=",
		"txkv_phase_ns_bucket{op=\"get\",phase=\"queue\",le=",
		"txkv_shard_conflicts_total{shard=",
		"stm_commits_total",
		"stm_aborts_total{cause=\"lock_conflict\"}",
		"stm_txn_retries_bucket{le=",
		"stm_txn_read_set_entries_sum",
		"stm_txn_write_set_entries_count",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	var z Statz
	if err := json.Unmarshal([]byte(httpGet(t, base+"/statz")), &z); err != nil {
		t.Fatalf("/statz not JSON: %v", err)
	}
	if z.Engine == "" || z.Stats.Requests == 0 {
		t.Fatalf("empty /statz: %+v", z)
	}
	causeSum := z.Causes.ReadValidation + z.Causes.LockConflict + z.Causes.CommitValidation +
		z.Causes.CMKill + z.Causes.UserError + z.Causes.ExplicitRestart
	if causeSum != z.Stats.Aborts {
		t.Fatalf("abort-cause partition violated: causes sum %d, aborts %d", causeSum, z.Stats.Aborts)
	}
	if z.Stats.SrvP50Ns == 0 || z.Stats.SrvP99Ns < z.Stats.SrvP50Ns {
		t.Fatalf("bad server percentiles: %+v", z.Stats)
	}

	if pi := httpGet(t, base+"/debug/pprof/"); !strings.Contains(pi, "goroutine") {
		t.Errorf("pprof index looks wrong: %.80s", pi)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
