// Package txkvserver serves the transactional key-value store
// (internal/txkv) over TCP: length-prefixed binary frames
// (internal/txkvwire), one goroutine per connection, every request
// executed as one v2 transaction (stm.Atomic for writes, stm.AtomicRO
// for the read-only ops) against a shared engine-backed store, on any
// of the four engines.
//
// Engine threads are pooled: stm.Thread is per-worker state and
// stm.MaxThreads bounds how many can exist, so the server owns a small
// fixed pool and each request borrows a thread for exactly its
// transaction. The wait for a free thread is the request's queue phase
// — under saturation it is where latency accumulates, and the flat
// per-request phase counters (parse/queue/txn/commit/reply, DESIGN.md
// §10) make that visible through the Stats op instead of folding it
// into one opaque service time.
package txkvserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"swisstm/internal/coalesce"
	"swisstm/internal/harness"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
	"swisstm/internal/wal"
)

// Config describes one server instance.
type Config struct {
	// Engine selects and configures the backing engine.
	Engine harness.EngineSpec
	// Keys pre-fills the store with keys 1..Keys (default 1024).
	Keys int
	// Balance is the starting value per pre-filled key (default
	// txkv.DefaultBalance) — the unit of the balance-conservation oracle.
	Balance stm.Word
	// Threads sizes the engine thread pool (default 8, capped at
	// stm.MaxThreads).
	Threads int
	// Admin, when non-empty, is a second listen address serving the
	// HTTP observability surface (DESIGN.md §11): GET /metrics
	// (Prometheus text), /statz (JSON stats snapshot) and
	// /debug/pprof/* (CPU/heap/block profiles). Off by default: the
	// admin surface is unauthenticated, so bind it to loopback.
	Admin string
	// WALDir, when non-empty, turns on the durable commit log
	// (DESIGN.md §12): mutations are acknowledged only after their redo
	// record is in the log, and Start replays any existing log in the
	// directory before serving (the recovered population overrides
	// Keys/Balance).
	WALDir string
	// WALSync selects the log's durability mode (default
	// wal.SyncGroup); ignored without WALDir.
	WALSync wal.SyncMode
	// WALFS overrides the log's filesystem (fault injection in tests);
	// nil means the real one.
	WALFS wal.FS
	// ReadTimeout, when positive, bounds the wait for the next request
	// frame on an idle connection; the connection is dropped on expiry.
	// Zero means wait forever (the load-gen default: its connections
	// are legitimately idle between phases).
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds each reply write so a client
	// that stops reading cannot pin a connection goroutine forever.
	WriteTimeout time.Duration

	// Admission control (DESIGN.md §13). All three default to 0 =
	// unbounded, the pre-admission behavior: dispatch blocks on the
	// thread pool forever and accept never refuses.
	//
	// MaxConns caps live client connections; excess connections get one
	// Overloaded error frame and are closed.
	MaxConns int
	// MaxQueue caps requests waiting for an engine thread across all
	// connections; a request arriving at a full queue is shed with
	// Overloaded instead of joining it.
	MaxQueue int
	// MaxQueueWait bounds how long one request may wait for an engine
	// thread before it is shed with Overloaded.
	MaxQueueWait time.Duration

	// Pipeline is the per-connection in-flight request window (DESIGN.md
	// §14.5): a reader goroutine admits up to this many decoded requests
	// concurrently while a writer goroutine sends replies in request
	// order. Default 16; 1 restores strictly serial per-connection
	// service.
	Pipeline int

	// CoalesceBatch, when positive, turns on per-shard commit coalescing
	// (DESIGN.md §14): single-key ops are routed to per-shard batchers
	// that execute up to CoalesceBatch items as ONE engine transaction
	// and ONE commit-log frame. Requires Threads + store shards ≤
	// stm.MaxThreads (each shard gets a dedicated engine thread).
	CoalesceBatch int
	// CoalesceWait is the batcher's max wait before flushing an
	// incomplete batch (default 200µs); ignored with coalescing off.
	CoalesceWait time.Duration
	// FeedCap is the per-shard change-feed ring capacity (default
	// coalesce.DefaultFeedCap). The feed is always on: every committed
	// mutation is published, whichever path executed it.
	FeedCap int
}

func (c *Config) fill() error {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Keys < 1 {
		return fmt.Errorf("txkvserver: bad key population %d", c.Keys)
	}
	if c.Balance == 0 {
		c.Balance = txkv.DefaultBalance
	}
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Threads < 1 || c.Threads > stm.MaxThreads {
		return fmt.Errorf("txkvserver: thread pool size %d out of range 1..%d", c.Threads, stm.MaxThreads)
	}
	if c.Pipeline == 0 {
		c.Pipeline = 16
	}
	if c.Pipeline < 1 {
		return fmt.Errorf("txkvserver: pipeline window %d out of range (want ≥ 1)", c.Pipeline)
	}
	if c.CoalesceWait == 0 {
		c.CoalesceWait = 200 * time.Microsecond
	}
	return nil
}

// Server is one listening txkv service instance.
type Server struct {
	cfg    Config
	ln     net.Listener
	eng    stm.STM
	store  *txkv.Store
	pool   chan *worker
	m      *metrics
	txnObs *obs.TxnObs

	wal     *wal.Writer     // nil when the commit log is off
	walM    *wal.Metrics    // non-nil iff wal is
	walInfo wal.RecoverInfo // what Start's recovery scan found

	co         *coalesce.Coalescer // nil with coalescing off
	coM        *coalesce.Metrics   // non-nil iff co is
	feeds      []*coalesce.Feed    // one change feed per store shard, always on
	feedEvents *obs.Counter        // txkv_feed_events_total

	adminLn  net.Listener
	adminSrv *http.Server

	// draining tells connection loops to stop picking up new requests;
	// set by Drain before it stamps immediate read deadlines. drainc is
	// its channel twin, closed at the same moment, so a request already
	// waiting in the admission queue can select on it and answer
	// Draining instead of hanging until a thread frees up.
	draining atomic.Bool
	drainc   chan struct{}
	queued   atomic.Int64  // requests currently waiting for a pool thread
	fatal    chan struct{} // closed when the accept loop dies unexpectedly

	// statsMu serializes drainStats: a stats snapshot empties the whole
	// thread pool, so two concurrent snapshots would deadlock splitting it.
	statsMu sync.Mutex

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    bool
	acceptErr error
	wg        sync.WaitGroup
	// subWg tracks connections that became feed subscribers: they
	// outlive the request plane (wg) and are released only after the
	// feeds close, so a drain can flush the request plane first and
	// still hand subscribers every committed event before goodbye.
	subWg sync.WaitGroup
}

// worker is one pooled engine thread.
type worker struct {
	th stm.Thread
}

// Start builds the engine, pre-fills the store and begins serving on
// addr (e.g. "127.0.0.1:0" for an ephemeral loopback port).
func Start(addr string, cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Engine.Kind == "" {
		return nil, errors.New("txkvserver: no engine kind configured")
	}
	// Arm per-transaction telemetry on the server's own engine instance
	// (the spec is a value copy, so this clobbers nothing outside it).
	txnObs := obs.NewTxnObs()
	cfg.Engine.TxnObs = txnObs
	if cfg.WALDir != "" && cfg.WALFS == nil {
		cfg.WALFS = wal.OSFS{}
	}
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine.New(),
		txnObs: txnObs,
		pool:   make(chan *worker, cfg.Threads),
		conns:  make(map[net.Conn]struct{}),
		drainc: make(chan struct{}),
		fatal:  make(chan struct{}),
	}
	for i := 0; i < cfg.Threads; i++ {
		s.pool <- &worker{th: s.eng.NewThread(i)}
	}

	// Build the store on a pool thread: from the commit log's clean
	// prefix when one exists (the log, not the flags, defines the
	// recovered population), from the Keys/Balance baseline otherwise —
	// in bounded transactions, so the balance-conservation oracle has a
	// known starting sum.
	w := <-s.pool
	if cfg.WALDir != "" {
		store, info, err := txkv.ReplayWAL(cfg.WALFS, cfg.WALDir, w.th)
		if err != nil {
			return nil, fmt.Errorf("txkvserver: wal recovery: %w", err)
		}
		s.store, s.walInfo = store, info
	}
	recovered := s.store != nil
	if !recovered {
		s.store = txkv.NewInitialized(w.th, cfg.Keys, cfg.Balance)
	}
	s.pool <- w

	s.m = newMetrics(s.store.Shards())
	s.m.reg.RegisterCollector(s.collectEngine)

	// Change feeds are always on: every mutating path publishes its
	// committed mutations, so subscribers see one consistent per-shard
	// stream whichever path (pooled or coalesced) executed the write.
	s.feedEvents = s.m.reg.Counter("txkv_feed_events_total")
	s.feeds = make([]*coalesce.Feed, s.store.Shards())
	for i := range s.feeds {
		s.feeds[i] = coalesce.NewFeed(cfg.FeedCap, s.feedEvents)
	}

	if cfg.WALDir != "" {
		s.walM = wal.NewMetrics(s.m.reg)
		wr, err := wal.Open(wal.Options{
			Dir: cfg.WALDir, FS: cfg.WALFS, Sync: cfg.WALSync, Metrics: s.walM,
		})
		if err != nil {
			return nil, fmt.Errorf("txkvserver: wal open: %w", err)
		}
		s.wal = wr
		if !recovered {
			// Frame 1 of a fresh log records the baseline population, so
			// replay needs no out-of-band configuration. Durable before
			// the first client is accepted, whatever the sync mode.
			if err := s.logInit(); err != nil {
				wr.Close()
				return nil, fmt.Errorf("txkvserver: wal init record: %w", err)
			}
		}
	}

	if cfg.CoalesceBatch > 0 {
		shards := s.store.Shards()
		if cfg.Threads+shards > stm.MaxThreads {
			if s.wal != nil {
				s.wal.Close()
			}
			return nil, fmt.Errorf("txkvserver: coalescing needs %d pool + %d shard threads > stm.MaxThreads (%d)",
				cfg.Threads, shards, stm.MaxThreads)
		}
		// Dedicated engine threads for the shard workers, above the
		// pool's 0..Threads-1 range.
		threads := make([]stm.Thread, shards)
		for i := range threads {
			threads[i] = s.eng.NewThread(cfg.Threads + i)
		}
		s.coM = coalesce.NewMetrics(s.m.reg)
		s.co = coalesce.New(s.store, threads, s.wal, s.feeds, coalesce.Config{
			BatchSize: cfg.CoalesceBatch,
			MaxWait:   cfg.CoalesceWait,
			Metrics:   s.coM,
			Conflicts: s.m.recordConflicts,
		})
	}

	if cfg.Admin != "" {
		if err := s.startAdmin(cfg.Admin); err != nil {
			if s.co != nil {
				s.co.Close()
			}
			if s.wal != nil {
				s.wal.Close()
			}
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.adminSrv != nil {
			s.adminSrv.Close()
		}
		if s.co != nil {
			s.co.Close()
		}
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// logInit durably appends the log's init record (frame 1).
func (s *Server) logInit() error {
	buf, err := txkv.AppendRedo(nil, []txkv.RedoEntry{
		{Op: txkv.RedoInit, Key: stm.Word(s.cfg.Keys), Val: s.cfg.Balance},
	})
	if err != nil {
		return err
	}
	if err := s.wal.Append(buf); err != nil {
		return err
	}
	return s.wal.Sync()
}

// WalRecovery reports what Start's recovery scan found (the zero
// value when the commit log is off or the directory was fresh).
func (s *Server) WalRecovery() wal.RecoverInfo { return s.walInfo }

// Done is closed when the server dies on its own — the accept loop
// failing while the server is not shutting down. Err then reports why.
func (s *Server) Done() <-chan struct{} { return s.fatal }

// Err returns the accept-loop error that closed Done, if any.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptErr
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Engine returns the display name of the backing engine.
func (s *Server) Engine() string { return s.eng.Name() }

// Close stops accepting, closes every live connection immediately
// (in-flight requests are abandoned) and waits for the connection
// goroutines; with the commit log on it then flushes and closes the
// log, so every previously acknowledged write is durable.
func (s *Server) Close() error { return s.shutdown(false) }

// Drain is the graceful twin of Close: stop accepting, let each
// connection finish the request it is serving (and ack it durably),
// then stop reading further requests, flush and sync the commit log,
// and return. A drained shutdown loses no acknowledged operation.
func (s *Server) Drain() error { return s.shutdown(true) }

func (s *Server) shutdown(drain bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	if s.adminSrv != nil {
		s.adminSrv.Close()
	}
	if drain {
		// Flag first, then stamp immediate read deadlines: a connection
		// blocked on its next frame wakes with a timeout and exits; one
		// mid-request finishes, sees the flag at the loop top and exits.
		// (serveConn re-checks the flag after re-arming its deadline, so
		// this order cannot strand a connection on a fresh timeout.)
		// Closing drainc wakes requests already waiting in the admission
		// queue: they reply Draining instead of hanging for a thread.
		s.draining.Store(true)
		close(s.drainc)
		now := time.Now()
		for c := range s.conns {
			c.SetReadDeadline(now)
		}
	} else {
		close(s.drainc)
		for c := range s.conns {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Request plane quiet: every accepted request completed (pending
	// coalesced items flushed — their replies gate the goroutines wg
	// just waited for). Stop the batchers, then close the feeds so
	// subscriber connections flush their remaining events, send a final
	// Draining frame and exit.
	if s.co != nil {
		s.co.Close()
	}
	for _, f := range s.feeds {
		f.Close()
	}
	s.subWg.Wait()
	if s.wal != nil {
		// All connection goroutines are done: every acknowledged write
		// has been published. Close drains and syncs the log.
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Expected when Close/Drain tears the listener down; anything
			// else is fatal — surface it so the process can exit non-zero
			// instead of serving nothing forever.
			s.mu.Lock()
			if !s.closed && s.acceptErr == nil {
				s.acceptErr = err
				close(s.fatal)
			}
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.m.connsRejected.Inc()
			// Tell the client why before hanging up, off the accept path
			// so a slow-reading reject cannot stall admission.
			go rejectConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// rejectConn answers a connection over the MaxConns cap: one Overloaded
// error frame (so a code-aware client backs off and retries rather than
// seeing an opaque hangup), then close. Bounded by a write deadline —
// a client that never reads cannot pin the goroutine.
func rejectConn(conn net.Conn) {
	defer conn.Close()
	obuf, err := txkvwire.AppendReply(nil, txkvwire.Reply{
		Op: txkvwire.OpInvalid, Err: "overloaded: connection limit reached", Code: txkvwire.CodeOverloaded,
	})
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	bw := bufio.NewWriterSize(conn, 256)
	if txkvwire.WriteFrame(bw, obuf) == nil {
		bw.Flush()
	}
}

// inflight is one pipelined request's slot in a connection's reply
// order: the reader fills it (directly for decode errors and subscribe
// takeovers, via a dispatch goroutine otherwise) and closes done; the
// writer waits on done and sends the reply. Replies always go out in
// request order because slots travel a FIFO channel.
type inflight struct {
	op      txkvwire.Op
	parseNs uint64
	done    chan struct{}

	// Filled before done closes.
	reply                           txkvwire.Reply
	queueNs, txnNs, commitNs, walNs uint64

	// Non-nil: this slot converts the connection into a feed
	// subscriber once the writer reaches it (all earlier replies out).
	sub *txkvwire.Req
}

// serveConn runs one pipelined connection (DESIGN.md §14.5): a reader
// goroutine decodes frames and launches up to Config.Pipeline requests
// concurrently; this goroutine writes the replies back in request
// order. The in-flight window is bounded by a semaphore acquired at
// decode and released at reply, so a connection can keep the engine
// busy without a round-trip per request but cannot queue unboundedly.
//
// Replies go through a per-connection bufio.Writer flushed whenever the
// reply queue goes empty (and before blocking on a slow request), so a
// reply's 4-byte length prefix and payload always reach the socket in
// one Write — a concurrent reader never observes a torn frame — and
// back-to-back pipelined replies coalesce into one syscall.
func (s *Server) serveConn(conn net.Conn) {
	isSub := false
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if isSub {
			s.subWg.Done() // wg slot was handed off at subscribe takeover
		} else {
			s.wg.Done()
		}
	}()
	window := s.cfg.Pipeline
	order := make(chan *inflight, window)
	sem := make(chan struct{}, window)
	subc := make(chan bool, 1)
	go func() { subc <- s.connWriter(conn, order, sem) }()
	s.connReader(conn, order, sem)
	close(order)
	isSub = <-subc
}

// connReader reads and decodes frames, admitting each into the
// in-flight window. It returns when the client goes away, the server
// drains, or the connection becomes a feed subscriber (per the wire
// contract no further requests are read after a subscribe).
func (s *Server) connReader(conn net.Conn, order chan<- *inflight, sem chan struct{}) {
	br := newConnReader(conn)
	var fbuf []byte
	for {
		if s.draining.Load() {
			return // drained: the previous request was the last one read
		}
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		if s.draining.Load() {
			return // re-check: the re-armed deadline must not outlive a drain
		}
		payload, err := txkvwire.ReadFrame(br, fbuf)
		if err != nil {
			return // client went away, read timed out or framing broke
		}
		fbuf = payload

		t0 := time.Now()
		req, derr := txkvwire.DecodeReq(payload)
		// Blocks while the window is full: each slot holds one token
		// from decode to reply, so order (capacity = window) never
		// blocks below and the reader exerts back-pressure on the wire.
		sem <- struct{}{}
		fl := &inflight{op: txkvwire.OpInvalid, parseNs: uint64(time.Since(t0).Nanoseconds()),
			done: make(chan struct{})}
		if derr != nil {
			fl.reply = txkvwire.Reply{Op: txkvwire.OpInvalid, Err: derr.Error(), Code: txkvwire.CodeRejected}
			close(fl.done)
			order <- fl
			continue
		}
		fl.op = req.Op
		if req.Op == txkvwire.OpSubscribe {
			if req.Shard < 0 || int(req.Shard) >= s.store.Shards() {
				fl.reply = txkvwire.Reply{Op: req.Op, Code: txkvwire.CodeRejected,
					Err: fmt.Sprintf("subscribe: shard %d out of range (store has %d)", req.Shard, s.store.Shards())}
				close(fl.done)
				order <- fl
				continue
			}
			r := req
			fl.sub = &r
			close(fl.done)
			order <- fl
			return // the writer takes the connection over
		}
		// The deadline clock starts at arrival (frame decoded), not
		// at client send: the TTL is a budget for server-side work,
		// and the wire carries a duration precisely so that clock
		// skew between client and server cannot distort it.
		var deadline time.Time
		if req.TTL > 0 {
			deadline = t0.Add(req.TTL)
		}
		if s.co != nil {
			switch req.Op {
			case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
				// Enqueue here, on the reader goroutine, so this
				// connection's ops land in the shard queues in request
				// order — pipelined read-your-writes (DESIGN.md §14.5).
				// Only the wait for the flush moves off-thread.
				if err := s.validate(req, true); err != nil {
					fl.reply = txkvwire.Reply{Op: req.Op, Err: err.Error(), Code: txkvwire.CodeRejected}
					close(fl.done)
				} else if it, refusal, ok := s.enqueueCoalesced(req, deadline); !ok {
					fl.reply = refusal
					close(fl.done)
				} else {
					go func() {
						fl.reply, fl.queueNs, fl.txnNs, fl.commitNs, fl.walNs = s.awaitCoalesced(req.Op, it)
						close(fl.done)
					}()
				}
				order <- fl
				continue
			}
		}
		go func() {
			fl.reply, fl.queueNs, fl.txnNs, fl.commitNs, fl.walNs = s.dispatch(req, deadline)
			close(fl.done)
		}()
		order <- fl
	}
}

// connWriter sends replies in request order, then (for a subscriber
// takeover) streams the change feed. It reports whether the wg→subWg
// handoff happened, and never returns before every in-flight dispatch
// has finished — a write error switches to draining the slots (wait,
// release, discard) so no dispatch goroutine outlives the connection's
// wait-group slot.
func (s *Server) connWriter(conn net.Conn, order <-chan *inflight, sem <-chan struct{}) (handed bool) {
	bw := bufio.NewWriterSize(conn, 4<<10)
	var obuf []byte
	failed := false
	for fl := range order {
		select {
		case <-fl.done:
		default:
			// The next reply in order is not ready: push buffered
			// replies to the client before blocking on it.
			if !failed && bw.Flush() != nil {
				failed = true
				conn.Close()
			}
			<-fl.done
		}
		<-sem
		if failed {
			continue
		}
		if fl.sub != nil {
			// Every earlier reply is out: release the request-plane wg
			// slot (Add before Done keeps shutdown's subWg.Wait
			// race-free) and stream until the feed closes or the client
			// goes away. Remaining slots, if any, are discarded.
			s.subWg.Add(1)
			s.wg.Done()
			handed = true
			r0 := time.Now()
			if s.writeReply(conn, bw, &obuf, txkvwire.Reply{Op: txkvwire.OpSubscribe}, true) {
				s.m.record(fl.op, fl.parseNs, 0, 0, 0, 0, uint64(time.Since(r0).Nanoseconds()))
				s.streamFeed(conn, bw, int(fl.sub.Shard), fl.sub.From)
			}
			failed = true
			conn.Close()
			continue
		}
		r0 := time.Now()
		if !s.writeReply(conn, bw, &obuf, fl.reply, len(order) == 0) {
			failed = true
			conn.Close()
			continue
		}
		replyNs := uint64(time.Since(r0).Nanoseconds())
		s.m.record(fl.op, fl.parseNs, fl.queueNs, fl.txnNs, fl.commitNs, fl.walNs, replyNs)
	}
	if !failed {
		bw.Flush()
	}
	return handed
}

// writeReply encodes and writes one reply frame, flushing when asked.
// False means the connection is broken.
func (s *Server) writeReply(conn net.Conn, bw *bufio.Writer, obuf *[]byte, reply txkvwire.Reply, flush bool) bool {
	buf, err := txkvwire.AppendReply((*obuf)[:0], reply)
	if err != nil {
		// An unencodable reply is a server bug; degrade to an error
		// frame rather than silently dropping the connection.
		buf, _ = txkvwire.AppendReply((*obuf)[:0], txkvwire.Reply{
			Op: reply.Op, Err: "internal: unencodable reply", Code: txkvwire.CodeInternal})
	}
	*obuf = buf
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if txkvwire.WriteFrame(bw, buf) != nil {
		return false
	}
	if flush && bw.Flush() != nil {
		return false
	}
	return true
}

// dispatch validates the request, borrows a pool thread (bounded by
// the admission limits and the request's deadline) and executes the
// transaction, returning the reply and the queue/txn/commit/wal phase
// times. The commit-log publish happens after the worker is back in
// the pool: a group fsync blocks only this connection's goroutine,
// never an engine thread.
//
// Every exit path — shed, expired, executed — reports its queue time,
// so txkv_phase_ns{phase="queue"} covers rejected admissions too and
// total stays the phase sum by construction (DESIGN.md §13).
func (s *Server) dispatch(req txkvwire.Req, deadline time.Time) (reply txkvwire.Reply, queueNs, txnNs, commitNs, walNs uint64) {
	if err := s.validate(req, true); err != nil {
		return txkvwire.Reply{Op: req.Op, Err: err.Error(), Code: txkvwire.CodeRejected}, 0, 0, 0, 0
	}
	if req.Op == txkvwire.OpStats {
		// Stats needs no engine thread: it drains the pool itself to
		// read the per-thread counters race-free. It also skips
		// admission — the observability plane must answer precisely
		// when the serving plane is saturated.
		return s.statsReply(), 0, 0, 0, 0
	}
	if s.co != nil {
		switch req.Op {
		case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
			// Single-key ops ride the per-shard batchers instead of the
			// thread pool; their admission bound is the shard queue.
			return s.dispatchCoalesced(req, deadline)
		}
	}
	q0 := time.Now()
	w, code, msg, queueFull := s.admit(q0, deadline)
	queueNs = uint64(time.Since(q0).Nanoseconds())
	if w == nil {
		s.m.recordShed(code, queueFull)
		return txkvwire.Reply{Op: req.Op, Err: msg, Code: code}, queueNs, 0, 0, 0
	}
	abortsBefore := w.th.Stats().Aborts
	var pend pendingLog
	pf := getPendingFeed()
	reply, txnNs, commitNs = s.execute(w, req, &pend, pf)
	// Attribute this request's engine aborts to the shard its (first)
	// key hashes to — the per-shard conflict heat map (DESIGN.md §11).
	// Safe while we hold the worker: the thread is quiescent between
	// its transactions, and only the borrower touches it.
	if d := w.th.Stats().Aborts - abortsBefore; d > 0 {
		s.m.recordConflicts(s.reqShard(req), d)
	}
	s.pool <- w
	// Feed first, then log: the feed reflects the in-memory commit,
	// which already happened, so tailers are not gated on fsync.
	pf.publish(s)
	putPendingFeed(pf)
	if pend.live {
		walNs = s.publishWAL(&pend, req, &reply)
	}
	return reply, queueNs, txnNs, commitNs, walNs
}

// admit borrows an engine thread subject to the admission bounds
// (DESIGN.md §13): the request's deadline, Config.MaxQueue and
// Config.MaxQueueWait, and an in-progress drain. On refusal it returns
// a nil worker plus the typed code and message for the shed reply;
// queueFull distinguishes the occupancy shed from the wait-limit shed
// for the reason-labeled counter.
func (s *Server) admit(now, deadline time.Time) (w *worker, code txkvwire.Code, msg string, queueFull bool) {
	if !deadline.IsZero() && !now.Before(deadline) {
		return nil, txkvwire.CodeDeadlineExceeded, "deadline expired before execution", false
	}
	// Fast path: a free thread admits immediately. The queue bounds
	// waiters, not throughput, so occupancy is only checked when the
	// request would actually wait.
	select {
	case w = <-s.pool:
		return w, 0, "", false
	default:
	}
	n := s.queued.Add(1)
	defer s.queued.Add(-1)
	if max := s.cfg.MaxQueue; max > 0 && n > int64(max) {
		return nil, txkvwire.CodeOverloaded, "overloaded: admission queue full", true
	}
	// Wait bounded by whichever of MaxQueueWait and the deadline bites
	// first; the code reports which bound fired. No bound and no
	// deadline means wait indefinitely (but never through a drain).
	wait := s.cfg.MaxQueueWait
	code, msg = txkvwire.CodeOverloaded, "overloaded: queue wait limit exceeded"
	if !deadline.IsZero() {
		if d := time.Until(deadline); wait == 0 || d < wait {
			if d <= 0 {
				return nil, txkvwire.CodeDeadlineExceeded, "deadline expired waiting for an engine thread", false
			}
			wait, code, msg = d, txkvwire.CodeDeadlineExceeded, "deadline expired waiting for an engine thread"
		}
	}
	var timec <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timec = t.C
	}
	select {
	case w = <-s.pool:
		return w, 0, "", false
	case <-timec:
		return nil, code, msg, false
	case <-s.drainc:
		return nil, txkvwire.CodeDraining, "draining: server shutting down", false
	}
}

// reqShard maps a request to the store shard its first key hashes to,
// or −1 for requests that touch many shards (sum/len/batch) and so
// belong in the "multi" conflict bucket.
func (s *Server) reqShard(req txkvwire.Req) int {
	switch req.Op {
	case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
		return s.store.ShardOf(stm.Word(req.Key))
	case txkvwire.OpTransfer:
		if len(req.Keys) > 0 {
			return s.store.ShardOf(stm.Word(req.Keys[0]))
		}
	}
	return -1
}

// validate rejects requests that the store defines as configuration
// errors (it panics on them) before any transaction starts: reserved
// sentinel keys and out-of-range shard indices.
func (s *Server) validate(req txkvwire.Req, batchOK bool) error {
	badKey := func(k uint64) bool {
		return k == uint64(0) || k == ^uint64(0)
	}
	switch req.Op {
	case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
		if badKey(req.Key) {
			return fmt.Errorf("%s: key %d is reserved", req.Op, req.Key)
		}
	case txkvwire.OpTransfer:
		for _, k := range req.Keys {
			if badKey(k) {
				return fmt.Errorf("transfer: key %d is reserved", k)
			}
		}
	case txkvwire.OpSum:
		if req.Shard < -1 || int(req.Shard) >= s.store.Shards() {
			return fmt.Errorf("sum: shard %d out of range (store has %d)", req.Shard, s.store.Shards())
		}
	case txkvwire.OpBatch:
		if !batchOK {
			return errors.New("batch: nested batch")
		}
		for i, sub := range req.Sub {
			if err := s.validate(sub, false); err != nil {
				return fmt.Errorf("batch[%d]: %w", i, err)
			}
		}
	}
	return nil
}

// execute runs one validated request as one transaction on the borrowed
// thread. txnNs is the body duration of the final (committing) attempt;
// commitNs is the rest of the atomic call — begin, commit, and any
// aborted attempts with their back-off.
//
// Commit-log ordering: each mutating body abandons the previous
// attempt's log slot on entry (pend.drop — an aborted attempt must not
// hold its place in the log) and reserves a fresh slot as its LAST
// step iff the mutation will commit (pend.reserve — after the body's
// transactional reads, so ticket order matches commit order for
// conflicting transactions; DESIGN.md §12). The caller publishes the
// surviving slot after returning the worker to the pool.
func (s *Server) execute(w *worker, req txkvwire.Req, pend *pendingLog, pf *pendingFeed) (reply txkvwire.Reply, txnNs, commitNs uint64) {
	defer func() {
		// A foreign panic out of a transaction body (e.g. a shard
		// overflowing on Put) has already rolled the attempt back and
		// released its locks (stm.Thread.Unwind); surface it as an error
		// reply instead of tearing the whole server down. Any log or
		// feed slot the dead attempt reserved must be released with it.
		if r := recover(); r != nil {
			pend.drop(s)
			pf.drop(s)
			reply = txkvwire.Reply{Op: req.Op, Err: fmt.Sprintf("%s: %v", req.Op, r), Code: txkvwire.CodeInternal}
		}
	}()

	var bodyNs int64
	a0 := time.Now()
	switch req.Op {
	case txkvwire.OpGet:
		type getRes struct {
			val   stm.Word
			found bool
		}
		res := stm.AtomicRO(w.th, func(tx stm.TxRO) getRes {
			b0 := time.Now()
			v, ok := s.store.Get(tx, stm.Word(req.Key))
			bodyNs = time.Since(b0).Nanoseconds()
			return getRes{v, ok}
		})
		reply = txkvwire.Reply{Op: req.Op, Found: res.found, Val: uint64(res.val)}
	case txkvwire.OpPut:
		ins := stm.Atomic(w.th, func(tx stm.Tx) bool {
			pend.drop(s)
			pf.drop(s)
			b0 := time.Now()
			ok := s.store.Put(tx, stm.Word(req.Key), stm.Word(req.Val))
			pf.add(s, coalesce.Event{Key: req.Key, Val: req.Val})
			bodyNs = time.Since(b0).Nanoseconds()
			pend.reserve(s, true)
			pf.reserve(s)
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ins}
	case txkvwire.OpDelete:
		ex := stm.Atomic(w.th, func(tx stm.Tx) bool {
			pend.drop(s)
			pf.drop(s)
			b0 := time.Now()
			ok := s.store.Delete(tx, stm.Word(req.Key))
			if ok {
				pf.add(s, coalesce.Event{Del: true, Key: req.Key})
			}
			bodyNs = time.Since(b0).Nanoseconds()
			pend.reserve(s, ok)
			pf.reserve(s)
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ex}
	case txkvwire.OpCAS:
		sw := stm.Atomic(w.th, func(tx stm.Tx) bool {
			pend.drop(s)
			pf.drop(s)
			b0 := time.Now()
			ok := s.store.CAS(tx, stm.Word(req.Key), stm.Word(req.Old), stm.Word(req.Val))
			if ok {
				pf.add(s, coalesce.Event{Key: req.Key, Val: req.Val})
			}
			bodyNs = time.Since(b0).Nanoseconds()
			pend.reserve(s, ok)
			pf.reserve(s)
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: sw}
	case txkvwire.OpTransfer:
		keys := make([]stm.Word, len(req.Keys))
		for i, k := range req.Keys {
			keys[i] = stm.Word(k)
		}
		ok := stm.Atomic(w.th, func(tx stm.Tx) bool {
			pend.drop(s)
			pf.drop(s)
			b0 := time.Now()
			ok := s.store.Transfer(tx, keys, stm.Word(req.Amount))
			if ok {
				// The feed carries post-images; read them back inside
				// the same transaction (read-own-write is exact).
				for _, k := range keys {
					v, _ := s.store.Get(tx, k)
					pf.add(s, coalesce.Event{Key: uint64(k), Val: uint64(v)})
				}
			}
			bodyNs = time.Since(b0).Nanoseconds()
			pend.reserve(s, ok)
			pf.reserve(s)
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ok}
	case txkvwire.OpSum:
		sum := stm.AtomicRO(w.th, func(tx stm.TxRO) stm.Word {
			b0 := time.Now()
			var v stm.Word
			if req.Shard < 0 {
				v = s.store.SumAll(tx)
			} else {
				v = s.store.SumShard(tx, int(req.Shard))
			}
			bodyNs = time.Since(b0).Nanoseconds()
			return v
		})
		reply = txkvwire.Reply{Op: req.Op, Val: uint64(sum)}
	case txkvwire.OpLen:
		n := stm.AtomicRO(w.th, func(tx stm.TxRO) int {
			b0 := time.Now()
			v := s.store.Len(tx)
			bodyNs = time.Since(b0).Nanoseconds()
			return v
		})
		reply = txkvwire.Reply{Op: req.Op, Val: uint64(n)}
	case txkvwire.OpBatch:
		reply = s.executeBatch(w, req, &bodyNs, pend, pf)
	default:
		return txkvwire.Reply{Op: req.Op, Err: "unhandled op", Code: txkvwire.CodeInternal}, 0, 0
	}
	totalNs := time.Since(a0).Nanoseconds()
	txnNs = uint64(bodyNs)
	if rest := totalNs - bodyNs; rest > 0 {
		commitNs = uint64(rest)
	}
	return reply, txnNs, commitNs
}

// errBatchAbort distinguishes the all-or-nothing batch rollback from
// engine errors.
var errBatchAbort = errors.New("batch aborted")

// executeBatch runs every sub-request inside ONE transaction. A failing
// conditional sub-op (CAS miss, insufficient/invalid transfer, delete of
// an absent key) returns an error from the body, which rolls the whole
// transaction back — no sub-op's write survives — and surfaces as an
// error reply naming the failing index.
func (s *Server) executeBatch(w *worker, req txkvwire.Req, bodyNs *int64, pend *pendingLog, pf *pendingFeed) txkvwire.Reply {
	subs, err := stm.AtomicErr(w.th, func(tx stm.Tx) ([]txkvwire.Reply, error) {
		pend.drop(s)
		pf.drop(s)
		b0 := time.Now()
		defer func() { *bodyNs = time.Since(b0).Nanoseconds() }()
		mutated := false
		subs := make([]txkvwire.Reply, len(req.Sub))
		for i, sub := range req.Sub {
			mutated = mutated || mutates(sub.Op)
			switch sub.Op {
			case txkvwire.OpGet:
				v, ok := s.store.Get(tx, stm.Word(sub.Key))
				subs[i] = txkvwire.Reply{Op: sub.Op, Found: ok, Val: uint64(v)}
			case txkvwire.OpPut:
				ins := s.store.Put(tx, stm.Word(sub.Key), stm.Word(sub.Val))
				pf.add(s, coalesce.Event{Key: sub.Key, Val: sub.Val})
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: ins}
			case txkvwire.OpDelete:
				if !s.store.Delete(tx, stm.Word(sub.Key)) {
					return nil, fmt.Errorf("%w at index %d: delete: key %d absent", errBatchAbort, i, sub.Key)
				}
				pf.add(s, coalesce.Event{Del: true, Key: sub.Key})
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpCAS:
				if !s.store.CAS(tx, stm.Word(sub.Key), stm.Word(sub.Old), stm.Word(sub.Val)) {
					return nil, fmt.Errorf("%w at index %d: cas: key %d not at expected value", errBatchAbort, i, sub.Key)
				}
				pf.add(s, coalesce.Event{Key: sub.Key, Val: sub.Val})
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpTransfer:
				keys := make([]stm.Word, len(sub.Keys))
				for j, k := range sub.Keys {
					keys[j] = stm.Word(k)
				}
				if !s.store.Transfer(tx, keys, stm.Word(sub.Amount)) {
					return nil, fmt.Errorf("%w at index %d: transfer failed", errBatchAbort, i)
				}
				for _, k := range keys {
					v, _ := s.store.Get(tx, k)
					pf.add(s, coalesce.Event{Key: uint64(k), Val: uint64(v)})
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpSum:
				var v stm.Word
				if sub.Shard < 0 {
					v = s.store.SumAll(tx)
				} else {
					v = s.store.SumShard(tx, int(sub.Shard))
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, Val: uint64(v)}
			case txkvwire.OpLen:
				subs[i] = txkvwire.Reply{Op: sub.Op, Val: uint64(s.store.Len(tx))}
			default:
				return nil, fmt.Errorf("%w at index %d: op %s not allowed in batch", errBatchAbort, i, sub.Op)
			}
		}
		// Reaching here means every conditional sub-op succeeded, so
		// "contains a mutating sub-op" is exactly "this commit must be
		// logged" — one slot for the whole atomic batch.
		pend.reserve(s, mutated)
		pf.reserve(s)
		return subs, nil
	})
	if err != nil {
		// Batch aborts are all client-condition failures (CAS miss,
		// absent delete, failing transfer): retrying verbatim would hit
		// the same condition, so they are permanent Rejected.
		return txkvwire.Reply{Op: req.Op, Err: err.Error(), Code: txkvwire.CodeRejected}
	}
	return txkvwire.Reply{Op: req.Op, Sub: subs}
}

// drainStats sums the engine counters across the whole thread pool
// plus the coalescer's shard workers. It drains the pool so every
// thread is idle while its counters are read (stm.Thread.Stats is not
// safe to call concurrently with the thread's own transactions);
// requests queued behind the drain simply see one long queue phase.
// statsMu serializes concurrent drains — two of them would each hold
// part of the pool and deadlock waiting for the rest.
func (s *Server) drainStats() stm.Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	ws := make([]*worker, cap(s.pool))
	for i := range ws {
		ws[i] = <-s.pool
	}
	var sum stm.Stats
	for _, w := range ws {
		sum.Add(w.th.Stats())
	}
	for _, w := range ws {
		s.pool <- w
	}
	if s.co != nil {
		sum.Add(s.co.Stats())
	}
	return sum
}

// statsSnapshot builds the full wire Stats: phase sums and latency
// percentiles from the metrics registry, engine totals and the raw
// abort-cause taxonomy from the drained thread pool.
func (s *Server) statsSnapshot() txkvwire.Stats {
	st := s.m.snapshot()
	es := s.drainStats()
	st.Commits = es.Commits
	st.Aborts = es.Aborts
	st.AbortsWW = es.AbortsWW
	st.AbortsValid = es.AbortsValid
	st.AbortsLocked = es.AbortsLocked
	st.AbortsKilled = es.AbortsKilled
	st.AbortsExplicit = es.AbortsExplicit
	st.AbortsUser = es.AbortsUser
	st.LockAcquireFail = es.LockAcquireFail
	st.AbortsValidRead = es.AbortsValidRead
	st.AbortsValidCommit = es.AbortsValidCommit
	if s.walM != nil {
		st.WalFrames = s.walM.Frames.Load()
		st.WalBytes = s.walM.Bytes.Load()
		st.WalRecovered = s.walM.Recovered.Load()
		st.WalFsyncs = s.walM.FsyncNs.Snapshot().Count
	}
	if s.coM != nil {
		st.CoalesceBatches = s.coM.Batches.Load()
		st.CoalesceItems = s.coM.Items.Load()
	}
	st.FeedEvents = s.feedEvents.Load()
	return st
}

// statsReply answers the wire Stats op.
func (s *Server) statsReply() txkvwire.Reply {
	st := s.statsSnapshot()
	return txkvwire.Reply{Op: txkvwire.OpStats, Stats: &st}
}
