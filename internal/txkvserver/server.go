// Package txkvserver serves the transactional key-value store
// (internal/txkv) over TCP: length-prefixed binary frames
// (internal/txkvwire), one goroutine per connection, every request
// executed as one v2 transaction (stm.Atomic for writes, stm.AtomicRO
// for the read-only ops) against a shared engine-backed store, on any
// of the four engines.
//
// Engine threads are pooled: stm.Thread is per-worker state and
// stm.MaxThreads bounds how many can exist, so the server owns a small
// fixed pool and each request borrows a thread for exactly its
// transaction. The wait for a free thread is the request's queue phase
// — under saturation it is where latency accumulates, and the flat
// per-request phase counters (parse/queue/txn/commit/reply, DESIGN.md
// §10) make that visible through the Stats op instead of folding it
// into one opaque service time.
package txkvserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
)

// Config describes one server instance.
type Config struct {
	// Engine selects and configures the backing engine.
	Engine harness.EngineSpec
	// Keys pre-fills the store with keys 1..Keys (default 1024).
	Keys int
	// Balance is the starting value per pre-filled key (default
	// txkv.DefaultBalance) — the unit of the balance-conservation oracle.
	Balance stm.Word
	// Threads sizes the engine thread pool (default 8, capped at
	// stm.MaxThreads).
	Threads int
	// Admin, when non-empty, is a second listen address serving the
	// HTTP observability surface (DESIGN.md §11): GET /metrics
	// (Prometheus text), /statz (JSON stats snapshot) and
	// /debug/pprof/* (CPU/heap/block profiles). Off by default: the
	// admin surface is unauthenticated, so bind it to loopback.
	Admin string
}

func (c *Config) fill() error {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Keys < 1 {
		return fmt.Errorf("txkvserver: bad key population %d", c.Keys)
	}
	if c.Balance == 0 {
		c.Balance = txkv.DefaultBalance
	}
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Threads < 1 || c.Threads > stm.MaxThreads {
		return fmt.Errorf("txkvserver: thread pool size %d out of range 1..%d", c.Threads, stm.MaxThreads)
	}
	return nil
}

// Server is one listening txkv service instance.
type Server struct {
	cfg    Config
	ln     net.Listener
	eng    stm.STM
	store  *txkv.Store
	pool   chan *worker
	m      *metrics
	txnObs *obs.TxnObs

	adminLn  net.Listener
	adminSrv *http.Server

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// worker is one pooled engine thread.
type worker struct {
	th stm.Thread
}

// Start builds the engine, pre-fills the store and begins serving on
// addr (e.g. "127.0.0.1:0" for an ephemeral loopback port).
func Start(addr string, cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Engine.Kind == "" {
		return nil, errors.New("txkvserver: no engine kind configured")
	}
	// Arm per-transaction telemetry on the server's own engine instance
	// (the spec is a value copy, so this clobbers nothing outside it).
	txnObs := obs.NewTxnObs()
	cfg.Engine.TxnObs = txnObs
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine.New(),
		txnObs: txnObs,
		pool:   make(chan *worker, cfg.Threads),
		conns:  make(map[net.Conn]struct{}),
	}
	for i := 0; i < cfg.Threads; i++ {
		s.pool <- &worker{th: s.eng.NewThread(i)}
	}

	// Pre-fill keys 1..Keys in bounded transactions on a pool thread, so
	// the balance-conservation oracle has a known starting sum.
	w := <-s.pool
	s.store = txkv.New(w.th, txkv.ConfigForKeys(cfg.Keys))
	const chunk = 256
	for base := 1; base <= cfg.Keys; base += chunk {
		end := base + chunk
		if end > cfg.Keys+1 {
			end = cfg.Keys + 1
		}
		stm.AtomicVoid(w.th, func(tx stm.Tx) {
			for k := base; k < end; k++ {
				s.store.Put(tx, stm.Word(k), cfg.Balance)
			}
		})
	}
	s.pool <- w

	s.m = newMetrics(s.store.Shards())
	s.m.reg.RegisterCollector(s.collectEngine)

	if cfg.Admin != "" {
		if err := s.startAdmin(cfg.Admin); err != nil {
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.adminSrv != nil {
			s.adminSrv.Close()
		}
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Engine returns the display name of the backing engine.
func (s *Server) Engine() string { return s.eng.Name() }

// Close stops accepting, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	if s.adminSrv != nil {
		s.adminSrv.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// serveConn runs one connection: read frame → decode → borrow thread →
// transaction → reply, measuring each phase. Requests on one connection
// are served in order; concurrency comes from concurrent connections.
//
// Replies go through a per-connection bufio.Writer flushed once per
// frame, so a reply's 4-byte length prefix and payload always reach the
// socket in one Write — a concurrent reader never observes a torn
// frame, and header+payload coalesce into one syscall.
func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	br := newConnReader(conn)
	bw := bufio.NewWriterSize(conn, 4<<10)
	var fbuf, obuf []byte
	for {
		payload, err := txkvwire.ReadFrame(br, fbuf)
		if err != nil {
			return // client went away or framing broke; drop the connection
		}
		fbuf = payload

		t0 := time.Now()
		req, derr := txkvwire.DecodeReq(payload)
		parseNs := uint64(time.Since(t0).Nanoseconds())

		var reply txkvwire.Reply
		var queueNs, txnNs, commitNs uint64
		op := txkvwire.OpInvalid
		if derr != nil {
			reply = txkvwire.Reply{Op: txkvwire.OpInvalid, Err: derr.Error()}
		} else {
			op = req.Op
			reply, queueNs, txnNs, commitNs = s.dispatch(req)
		}

		r0 := time.Now()
		obuf = obuf[:0]
		obuf, err = txkvwire.AppendReply(obuf, reply)
		if err != nil {
			// An unencodable reply is a server bug; degrade to an error
			// frame rather than silently dropping the connection.
			obuf, _ = txkvwire.AppendReply(obuf[:0], txkvwire.Reply{Op: req.Op, Err: "internal: unencodable reply"})
		}
		if err := txkvwire.WriteFrame(bw, obuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		replyNs := uint64(time.Since(r0).Nanoseconds())

		s.m.record(op, parseNs, queueNs, txnNs, commitNs, replyNs)
	}
}

// dispatch validates the request, borrows a pool thread and executes the
// transaction, returning the reply and the queue/txn/commit phase times.
func (s *Server) dispatch(req txkvwire.Req) (reply txkvwire.Reply, queueNs, txnNs, commitNs uint64) {
	if err := s.validate(req, true); err != nil {
		return txkvwire.Reply{Op: req.Op, Err: err.Error()}, 0, 0, 0
	}
	if req.Op == txkvwire.OpStats {
		// Stats needs no engine thread: it drains the pool itself to
		// read the per-thread counters race-free.
		return s.statsReply(), 0, 0, 0
	}
	q0 := time.Now()
	w := <-s.pool
	queueNs = uint64(time.Since(q0).Nanoseconds())
	abortsBefore := w.th.Stats().Aborts
	reply, txnNs, commitNs = s.execute(w, req)
	// Attribute this request's engine aborts to the shard its (first)
	// key hashes to — the per-shard conflict heat map (DESIGN.md §11).
	// Safe while we hold the worker: the thread is quiescent between
	// its transactions, and only the borrower touches it.
	if d := w.th.Stats().Aborts - abortsBefore; d > 0 {
		s.m.recordConflicts(s.reqShard(req), d)
	}
	s.pool <- w
	return reply, queueNs, txnNs, commitNs
}

// reqShard maps a request to the store shard its first key hashes to,
// or −1 for requests that touch many shards (sum/len/batch) and so
// belong in the "multi" conflict bucket.
func (s *Server) reqShard(req txkvwire.Req) int {
	switch req.Op {
	case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
		return s.store.ShardOf(stm.Word(req.Key))
	case txkvwire.OpTransfer:
		if len(req.Keys) > 0 {
			return s.store.ShardOf(stm.Word(req.Keys[0]))
		}
	}
	return -1
}

// validate rejects requests that the store defines as configuration
// errors (it panics on them) before any transaction starts: reserved
// sentinel keys and out-of-range shard indices.
func (s *Server) validate(req txkvwire.Req, batchOK bool) error {
	badKey := func(k uint64) bool {
		return k == uint64(0) || k == ^uint64(0)
	}
	switch req.Op {
	case txkvwire.OpGet, txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS:
		if badKey(req.Key) {
			return fmt.Errorf("%s: key %d is reserved", req.Op, req.Key)
		}
	case txkvwire.OpTransfer:
		for _, k := range req.Keys {
			if badKey(k) {
				return fmt.Errorf("transfer: key %d is reserved", k)
			}
		}
	case txkvwire.OpSum:
		if req.Shard < -1 || int(req.Shard) >= s.store.Shards() {
			return fmt.Errorf("sum: shard %d out of range (store has %d)", req.Shard, s.store.Shards())
		}
	case txkvwire.OpBatch:
		if !batchOK {
			return errors.New("batch: nested batch")
		}
		for i, sub := range req.Sub {
			if err := s.validate(sub, false); err != nil {
				return fmt.Errorf("batch[%d]: %w", i, err)
			}
		}
	}
	return nil
}

// execute runs one validated request as one transaction on the borrowed
// thread. txnNs is the body duration of the final (committing) attempt;
// commitNs is the rest of the atomic call — begin, commit, and any
// aborted attempts with their back-off.
func (s *Server) execute(w *worker, req txkvwire.Req) (reply txkvwire.Reply, txnNs, commitNs uint64) {
	defer func() {
		// A foreign panic out of a transaction body (e.g. a shard
		// overflowing on Put) has already rolled the attempt back and
		// released its locks (stm.Thread.Unwind); surface it as an error
		// reply instead of tearing the whole server down.
		if r := recover(); r != nil {
			reply = txkvwire.Reply{Op: req.Op, Err: fmt.Sprintf("%s: %v", req.Op, r)}
		}
	}()

	var bodyNs int64
	a0 := time.Now()
	switch req.Op {
	case txkvwire.OpGet:
		type getRes struct {
			val   stm.Word
			found bool
		}
		res := stm.AtomicRO(w.th, func(tx stm.TxRO) getRes {
			b0 := time.Now()
			v, ok := s.store.Get(tx, stm.Word(req.Key))
			bodyNs = time.Since(b0).Nanoseconds()
			return getRes{v, ok}
		})
		reply = txkvwire.Reply{Op: req.Op, Found: res.found, Val: uint64(res.val)}
	case txkvwire.OpPut:
		ins := stm.Atomic(w.th, func(tx stm.Tx) bool {
			b0 := time.Now()
			ok := s.store.Put(tx, stm.Word(req.Key), stm.Word(req.Val))
			bodyNs = time.Since(b0).Nanoseconds()
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ins}
	case txkvwire.OpDelete:
		ex := stm.Atomic(w.th, func(tx stm.Tx) bool {
			b0 := time.Now()
			ok := s.store.Delete(tx, stm.Word(req.Key))
			bodyNs = time.Since(b0).Nanoseconds()
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ex}
	case txkvwire.OpCAS:
		sw := stm.Atomic(w.th, func(tx stm.Tx) bool {
			b0 := time.Now()
			ok := s.store.CAS(tx, stm.Word(req.Key), stm.Word(req.Old), stm.Word(req.Val))
			bodyNs = time.Since(b0).Nanoseconds()
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: sw}
	case txkvwire.OpTransfer:
		keys := make([]stm.Word, len(req.Keys))
		for i, k := range req.Keys {
			keys[i] = stm.Word(k)
		}
		ok := stm.Atomic(w.th, func(tx stm.Tx) bool {
			b0 := time.Now()
			ok := s.store.Transfer(tx, keys, stm.Word(req.Amount))
			bodyNs = time.Since(b0).Nanoseconds()
			return ok
		})
		reply = txkvwire.Reply{Op: req.Op, OK: ok}
	case txkvwire.OpSum:
		sum := stm.AtomicRO(w.th, func(tx stm.TxRO) stm.Word {
			b0 := time.Now()
			var v stm.Word
			if req.Shard < 0 {
				v = s.store.SumAll(tx)
			} else {
				v = s.store.SumShard(tx, int(req.Shard))
			}
			bodyNs = time.Since(b0).Nanoseconds()
			return v
		})
		reply = txkvwire.Reply{Op: req.Op, Val: uint64(sum)}
	case txkvwire.OpLen:
		n := stm.AtomicRO(w.th, func(tx stm.TxRO) int {
			b0 := time.Now()
			v := s.store.Len(tx)
			bodyNs = time.Since(b0).Nanoseconds()
			return v
		})
		reply = txkvwire.Reply{Op: req.Op, Val: uint64(n)}
	case txkvwire.OpBatch:
		reply = s.executeBatch(w, req, &bodyNs)
	default:
		return txkvwire.Reply{Op: req.Op, Err: "unhandled op"}, 0, 0
	}
	totalNs := time.Since(a0).Nanoseconds()
	txnNs = uint64(bodyNs)
	if rest := totalNs - bodyNs; rest > 0 {
		commitNs = uint64(rest)
	}
	return reply, txnNs, commitNs
}

// errBatchAbort distinguishes the all-or-nothing batch rollback from
// engine errors.
var errBatchAbort = errors.New("batch aborted")

// executeBatch runs every sub-request inside ONE transaction. A failing
// conditional sub-op (CAS miss, insufficient/invalid transfer, delete of
// an absent key) returns an error from the body, which rolls the whole
// transaction back — no sub-op's write survives — and surfaces as an
// error reply naming the failing index.
func (s *Server) executeBatch(w *worker, req txkvwire.Req, bodyNs *int64) txkvwire.Reply {
	subs, err := stm.AtomicErr(w.th, func(tx stm.Tx) ([]txkvwire.Reply, error) {
		b0 := time.Now()
		defer func() { *bodyNs = time.Since(b0).Nanoseconds() }()
		subs := make([]txkvwire.Reply, len(req.Sub))
		for i, sub := range req.Sub {
			switch sub.Op {
			case txkvwire.OpGet:
				v, ok := s.store.Get(tx, stm.Word(sub.Key))
				subs[i] = txkvwire.Reply{Op: sub.Op, Found: ok, Val: uint64(v)}
			case txkvwire.OpPut:
				ins := s.store.Put(tx, stm.Word(sub.Key), stm.Word(sub.Val))
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: ins}
			case txkvwire.OpDelete:
				if !s.store.Delete(tx, stm.Word(sub.Key)) {
					return nil, fmt.Errorf("%w at index %d: delete: key %d absent", errBatchAbort, i, sub.Key)
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpCAS:
				if !s.store.CAS(tx, stm.Word(sub.Key), stm.Word(sub.Old), stm.Word(sub.Val)) {
					return nil, fmt.Errorf("%w at index %d: cas: key %d not at expected value", errBatchAbort, i, sub.Key)
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpTransfer:
				keys := make([]stm.Word, len(sub.Keys))
				for j, k := range sub.Keys {
					keys[j] = stm.Word(k)
				}
				if !s.store.Transfer(tx, keys, stm.Word(sub.Amount)) {
					return nil, fmt.Errorf("%w at index %d: transfer failed", errBatchAbort, i)
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, OK: true}
			case txkvwire.OpSum:
				var v stm.Word
				if sub.Shard < 0 {
					v = s.store.SumAll(tx)
				} else {
					v = s.store.SumShard(tx, int(sub.Shard))
				}
				subs[i] = txkvwire.Reply{Op: sub.Op, Val: uint64(v)}
			case txkvwire.OpLen:
				subs[i] = txkvwire.Reply{Op: sub.Op, Val: uint64(s.store.Len(tx))}
			default:
				return nil, fmt.Errorf("%w at index %d: op %s not allowed in batch", errBatchAbort, i, sub.Op)
			}
		}
		return subs, nil
	})
	if err != nil {
		return txkvwire.Reply{Op: req.Op, Err: err.Error()}
	}
	return txkvwire.Reply{Op: req.Op, Sub: subs}
}

// drainStats sums the engine counters across the whole thread pool. It
// drains the pool so every thread is idle while its counters are read
// (stm.Thread.Stats is not safe to call concurrently with the thread's
// own transactions); requests queued behind the drain simply see one
// long queue phase.
func (s *Server) drainStats() stm.Stats {
	ws := make([]*worker, cap(s.pool))
	for i := range ws {
		ws[i] = <-s.pool
	}
	var sum stm.Stats
	for _, w := range ws {
		sum.Add(w.th.Stats())
	}
	for _, w := range ws {
		s.pool <- w
	}
	return sum
}

// statsSnapshot builds the full wire Stats: phase sums and latency
// percentiles from the metrics registry, engine totals and the raw
// abort-cause taxonomy from the drained thread pool.
func (s *Server) statsSnapshot() txkvwire.Stats {
	st := s.m.snapshot()
	es := s.drainStats()
	st.Commits = es.Commits
	st.Aborts = es.Aborts
	st.AbortsWW = es.AbortsWW
	st.AbortsValid = es.AbortsValid
	st.AbortsLocked = es.AbortsLocked
	st.AbortsKilled = es.AbortsKilled
	st.AbortsExplicit = es.AbortsExplicit
	st.AbortsUser = es.AbortsUser
	st.LockAcquireFail = es.LockAcquireFail
	st.AbortsValidRead = es.AbortsValidRead
	st.AbortsValidCommit = es.AbortsValidCommit
	return st
}

// statsReply answers the wire Stats op.
func (s *Server) statsReply() txkvwire.Reply {
	st := s.statsSnapshot()
	return txkvwire.Reply{Op: txkvwire.OpStats, Stats: &st}
}
