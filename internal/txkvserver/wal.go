package txkvserver

import (
	"sync"
	"time"

	"swisstm/internal/stm"
	"swisstm/internal/txkv"
	"swisstm/internal/txkvwire"
	"swisstm/internal/wal"
)

// WAL integration (DESIGN.md §12). A mutating request's redo record
// must land in the log in the engines' commit order, but the log
// append happens outside the transaction. The bridge is a ticket:
// the transaction body draws a log slot as its LAST step — after
// every transactional read — so for any two conflicting transactions
// the second committer's ticket postdates the first's commit, and
// ticket order equals commit order. Aborted attempts re-enter the
// body and must release the previous attempt's slot first, or the
// in-order log writer would stall forever waiting for it.

// pendingLog carries a request's reserved log slot from the
// transaction body (reserve) to the publish point in dispatch, after
// the engine thread has been returned to the pool — an fsync must
// never hold a pooled thread hostage.
type pendingLog struct {
	tk   wal.Ticket
	live bool
}

// drop abandons an unpublished slot: at the top of a (re-)executed
// transaction body, and on any path where the reserved slot will not
// be published (failed op, panic out of the body).
func (p *pendingLog) drop(s *Server) {
	if p.live {
		s.wal.Abandon(p.tk)
		p.live = false
	}
}

// reserve draws this attempt's slot iff the WAL is on and the attempt
// will commit a mutation (ok). Must be the body's last step.
func (p *pendingLog) reserve(s *Server, ok bool) {
	if ok && s.wal != nil {
		p.tk = s.wal.Reserve()
		p.live = true
	}
}

// redoBufs pools redo-record encode buffers across requests.
var redoBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// publishWAL encodes the request's logical effect and publishes it at
// the reserved slot, waiting out the group fsync when the sync mode
// demands one. On failure the reply is rewritten to an error: the
// client must treat the op as not acknowledged (it may or may not
// have applied in memory; it is not durable).
func (s *Server) publishWAL(pend *pendingLog, req txkvwire.Req, reply *txkvwire.Reply) uint64 {
	t0 := time.Now()
	entries := redoForReply(req, reply, nil)
	if len(entries) == 0 {
		pend.drop(s)
		return uint64(time.Since(t0).Nanoseconds())
	}
	bufp := redoBufs.Get().(*[]byte)
	buf, err := txkv.AppendRedo((*bufp)[:0], entries)
	if err == nil {
		pend.live = false
		err = s.wal.Publish(pend.tk, buf)
		*bufp = buf
	} else {
		pend.drop(s)
	}
	redoBufs.Put(bufp)
	if err != nil {
		// Internal, not retryable: the mutation may have applied in
		// memory, so a blind retry could double-apply it.
		*reply = txkvwire.Reply{Op: req.Op, Err: "wal: " + err.Error(), Code: txkvwire.CodeInternal}
	}
	return uint64(time.Since(t0).Nanoseconds())
}

// redoForReply derives the redo entries of a successfully executed
// request from its request/reply pair: exactly the mutations the
// reply acknowledges, in batch order. Failed conditionals and reads
// contribute nothing; a successful CAS logs its post-image as a put.
func redoForReply(req txkvwire.Req, reply *txkvwire.Reply, dst []txkv.RedoEntry) []txkv.RedoEntry {
	if reply.Err != "" {
		return dst
	}
	switch req.Op {
	case txkvwire.OpPut:
		dst = append(dst, txkv.RedoEntry{Op: txkv.RedoPut, Key: stm.Word(req.Key), Val: stm.Word(req.Val)})
	case txkvwire.OpDelete:
		if reply.OK {
			dst = append(dst, txkv.RedoEntry{Op: txkv.RedoDelete, Key: stm.Word(req.Key)})
		}
	case txkvwire.OpCAS:
		if reply.OK {
			dst = append(dst, txkv.RedoEntry{Op: txkv.RedoPut, Key: stm.Word(req.Key), Val: stm.Word(req.Val)})
		}
	case txkvwire.OpTransfer:
		if reply.OK {
			keys := make([]stm.Word, len(req.Keys))
			for i, k := range req.Keys {
				keys[i] = stm.Word(k)
			}
			dst = append(dst, txkv.RedoEntry{Op: txkv.RedoTransfer, Amount: stm.Word(req.Amount), Keys: keys})
		}
	case txkvwire.OpBatch:
		for i := range req.Sub {
			dst = redoForReply(req.Sub[i], &reply.Sub[i], dst)
		}
	}
	return dst
}

// mutates reports whether a batch sub-op that reached this point
// mutated the store: conditional sub-ops abort the whole batch on
// failure, so mere arrival means success for them.
func mutates(op txkvwire.Op) bool {
	switch op {
	case txkvwire.OpPut, txkvwire.OpDelete, txkvwire.OpCAS, txkvwire.OpTransfer:
		return true
	}
	return false
}
