package txkvserver

import (
	"net"
	"strings"
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvwire"
)

var engineKinds = []string{"swisstm", "tl2", "tinystm", "rstm"}

func startServer(t *testing.T, kind string, keys int) (*Server, *txkvclient.Client) {
	t.Helper()
	srv, err := Start("127.0.0.1:0", Config{
		Engine: harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:   keys,
	})
	if err != nil {
		t.Fatalf("start %s server: %v", kind, err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := txkvclient.DialRetry(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

// TestServeAllEngines exercises every request type over real TCP on all
// four engines.
func TestServeAllEngines(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			const keys = 256
			_, cl := startServer(t, kind, keys)

			v, found, err := cl.Get(1)
			if err != nil || !found || v != 1000 {
				t.Fatalf("get pre-filled key: %d, %v, %v", v, found, err)
			}
			if _, found, _ := cl.Get(keys + 100); found {
				t.Fatal("get of absent key reported found")
			}
			ins, err := cl.Put(keys+1, 42)
			if err != nil || !ins {
				t.Fatalf("put fresh key: %v, %v", ins, err)
			}
			if v, _, _ := cl.Get(keys + 1); v != 42 {
				t.Fatalf("put did not stick: %d", v)
			}
			sw, err := cl.CAS(keys+1, 42, 43)
			if err != nil || !sw {
				t.Fatalf("cas hit: %v, %v", sw, err)
			}
			if sw, _ := cl.CAS(keys+1, 42, 44); sw {
				t.Fatal("cas with stale expected value swapped")
			}
			ex, err := cl.Delete(keys + 1)
			if err != nil || !ex {
				t.Fatalf("delete: %v, %v", ex, err)
			}
			n, err := cl.Len()
			if err != nil || n != keys {
				t.Fatalf("len: %d, %v (want %d)", n, err, keys)
			}
			ok, err := cl.Transfer([]uint64{1, 2, 3}, 5)
			if err != nil || !ok {
				t.Fatalf("transfer: %v, %v", ok, err)
			}
			sum, err := cl.Sum(-1)
			if err != nil || sum != keys*1000 {
				t.Fatalf("sum after transfer: %d, %v (want %d)", sum, err, keys*1000)
			}
			if v, _, _ := cl.Get(1); v != 1000-2*5 {
				t.Fatalf("transfer source balance %d, want %d", v, 1000-2*5)
			}

			// Reserved sentinel keys are rejected before any transaction.
			if _, err := cl.Put(0, 1); err == nil || !strings.Contains(err.Error(), "reserved") {
				t.Fatalf("put of reserved key 0: %v", err)
			}
			if _, err := cl.Sum(10_000); err == nil || !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("sum of bad shard: %v", err)
			}

			st, err := cl.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.Requests == 0 || st.Commits == 0 {
				t.Fatalf("stats counters empty: %+v", st)
			}
			if st.TxnNs == 0 || st.ReplyNs == 0 {
				t.Fatalf("phase counters empty: %+v", st)
			}
		})
	}
}

// TestBatchAtomicCommit runs a multi-op batch and checks all its writes
// landed together.
func TestBatchAtomicCommit(t *testing.T) {
	_, cl := startServer(t, "swisstm", 128)
	replies, abortErr, err := cl.Batch([]txkvwire.Req{
		{Op: txkvwire.OpPut, Key: 200, Val: 7},
		{Op: txkvwire.OpCAS, Key: 1, Old: 1000, Val: 1001},
		{Op: txkvwire.OpGet, Key: 200},
	})
	if err != nil || abortErr != nil {
		t.Fatalf("batch: %v / %v", abortErr, err)
	}
	if len(replies) != 3 || !replies[0].OK || !replies[1].OK || !replies[2].Found || replies[2].Val != 7 {
		t.Fatalf("batch replies: %+v", replies)
	}
	if v, _, _ := cl.Get(1); v != 1001 {
		t.Fatalf("batched cas not visible: %d", v)
	}
}

// TestBatchAbortRollsBack sends a batch whose write succeeds and whose
// later CAS fails: the all-or-nothing transaction must roll the write
// back, leaving the store byte-for-byte unchanged.
func TestBatchAbortRollsBack(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			const keys = 128
			_, cl := startServer(t, kind, keys)
			sum0, _ := cl.Sum(-1)
			len0, _ := cl.Len()

			replies, abortErr, err := cl.Batch([]txkvwire.Req{
				{Op: txkvwire.OpPut, Key: 500, Val: 99},        // fresh insert — would grow the store
				{Op: txkvwire.OpPut, Key: 1, Val: 77},          // overwrite — would break the sum
				{Op: txkvwire.OpCAS, Key: 2, Old: 123, Val: 9}, // fails: key 2 holds 1000
			})
			if err != nil {
				t.Fatalf("transport: %v", err)
			}
			if abortErr == nil || !strings.Contains(abortErr.Error(), "index 2") {
				t.Fatalf("batch abort error: %v (replies %+v)", abortErr, replies)
			}

			if _, found, _ := cl.Get(500); found {
				t.Fatal("rolled-back insert is visible")
			}
			if v, _, _ := cl.Get(1); v != 1000 {
				t.Fatalf("rolled-back overwrite is visible: %d", v)
			}
			if sum1, _ := cl.Sum(-1); sum1 != sum0 {
				t.Fatalf("sum changed across aborted batch: %d != %d", sum1, sum0)
			}
			if len1, _ := cl.Len(); len1 != len0 {
				t.Fatalf("len changed across aborted batch: %d != %d", len1, len0)
			}
		})
	}
}

// TestKillConnMidBatch writes a frame header announcing a large batch
// payload, sends only part of it, and kills the connection. The server
// must not execute anything and the store must be unchanged.
func TestKillConnMidBatch(t *testing.T) {
	srv, cl := startServer(t, "tl2", 128)
	sum0, _ := cl.Sum(-1)
	len0, _ := cl.Len()

	// A real batch of writes, truncated mid-payload.
	var batch txkvwire.Req
	batch.Op = txkvwire.OpBatch
	for k := uint64(1); k <= 64; k++ {
		batch.Sub = append(batch.Sub, txkvwire.Req{Op: txkvwire.OpPut, Key: 1000 + k, Val: k})
	}
	payload, err := txkvwire.AppendReq(nil, batch)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hdr := []byte{byte(len(payload)), byte(len(payload) >> 8), byte(len(payload) >> 16), byte(len(payload) >> 24)}
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(payload[:len(payload)/2]); err != nil {
		t.Fatal(err)
	}
	raw.Close() // mid-frame: the server's frame read fails, no request runs

	// Give the server a moment to observe the dropped connection, then
	// verify nothing changed.
	time.Sleep(20 * time.Millisecond)
	if sum1, _ := cl.Sum(-1); sum1 != sum0 {
		t.Fatalf("sum changed after mid-batch kill: %d != %d", sum1, sum0)
	}
	if len1, _ := cl.Len(); len1 != len0 {
		t.Fatalf("len changed after mid-batch kill: %d != %d", len1, len0)
	}
	if _, found, _ := cl.Get(1001); found {
		t.Fatal("truncated batch's write is visible")
	}
}

// TestGarbageFrameGetsErrorReply sends a well-framed but undecodable
// payload and expects an error reply (and a still-usable connection).
func TestGarbageFrameGetsErrorReply(t *testing.T) {
	srv, _ := startServer(t, "tinystm", 64)
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := txkvwire.WriteFrame(raw, []byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	buf, err := txkvwire.ReadFrame(raw, nil)
	if err != nil {
		t.Fatalf("read error reply: %v", err)
	}
	reply, err := txkvwire.DecodeReply(buf)
	if err != nil || reply.Err == "" {
		t.Fatalf("expected error reply, got %+v, %v", reply, err)
	}
	// The connection survives a decode error: frame alignment is intact.
	good, _ := txkvwire.AppendReq(nil, txkvwire.Req{Op: txkvwire.OpLen})
	if err := txkvwire.WriteFrame(raw, good); err != nil {
		t.Fatal(err)
	}
	buf, err = txkvwire.ReadFrame(raw, nil)
	if err != nil {
		t.Fatalf("read after decode error: %v", err)
	}
	reply, err = txkvwire.DecodeReply(buf)
	if err != nil || reply.Err != "" || reply.Val != 64 {
		t.Fatalf("len after decode error: %+v, %v", reply, err)
	}
}

// TestConcurrentConnections hammers one server from many connections
// under the transfer mix shape and checks the balance invariant held —
// the server-side analogue of the in-process transfer oracle.
func TestConcurrentConnections(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			const keys = 256
			srv, ctl := startServer(t, kind, keys)
			const conns = 4
			const opsPerConn = 150
			errc := make(chan error, conns)
			for c := 0; c < conns; c++ {
				go func(c int) {
					cl, err := txkvclient.Dial(srv.Addr().String())
					if err != nil {
						errc <- err
						return
					}
					defer cl.Close()
					for i := 0; i < opsPerConn; i++ {
						a := uint64(1 + (c*opsPerConn+i)%keys)
						b := a%keys + 1
						if a == b {
							continue
						}
						if _, err := cl.Transfer([]uint64{a, b}, 1); err != nil {
							errc <- err
							return
						}
					}
					errc <- nil
				}(c)
			}
			for c := 0; c < conns; c++ {
				if err := <-errc; err != nil {
					t.Fatal(err)
				}
			}
			sum, err := ctl.Sum(-1)
			if err != nil || sum != keys*1000 {
				t.Fatalf("balance not conserved: %d, %v (want %d)", sum, err, keys*1000)
			}
		})
	}
}
