package txkvserver

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"swisstm/internal/obs"
	"swisstm/internal/stm"
	"swisstm/internal/txkvwire"
)

// startAdmin binds the HTTP observability listener (Config.Admin):
//
//	GET /metrics        Prometheus text exposition of every registry
//	                    series — per-op request counters and latency
//	                    histograms, per-op×phase histograms, per-shard
//	                    conflict counters, engine commit/abort-cause
//	                    counters and per-transaction distributions.
//	GET /statz          the wire Stats snapshot plus the folded
//	                    abort-cause taxonomy, as JSON.
//	GET /debug/pprof/*  the standard Go profiles (CPU, heap, block,
//	                    mutex, goroutine, trace).
//
// The pprof handlers are mounted on the server's own mux — not
// http.DefaultServeMux — so importing net/http/pprof elsewhere can
// never leak profiles onto the data port.
func (s *Server) startAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.adminLn = ln
	s.adminSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.adminSrv.Serve(ln) // returns on Close
	}()
	return nil
}

// AdminAddr returns the bound admin listen address, or nil when the
// admin surface is disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.m.reg.Gather()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, snap)
}

// Statz is the JSON shape of /statz: the same snapshot the wire Stats
// op returns, plus the engine name and the six-cause fold so scripted
// checks (the smoke-obs gate) can assert the abort partition without
// re-deriving it.
type Statz struct {
	Engine string            `json:"engine"`
	Stats  txkvwire.Stats    `json:"stats"`
	Causes stm.AbortCauses   `json:"causes"`
	Obs    map[string]uint64 `json:"txn_obs"` // committed-txn distribution counts/means
	Wal    *WalStatz         `json:"wal,omitempty"`
}

// WalStatz reports the commit log's configuration and what the start-
// up recovery scan found; the crash/recover oracle reads it to check
// the restarted server against the log it replayed.
type WalStatz struct {
	Dir             string `json:"dir"`
	Mode            string `json:"mode"`
	RecoveredFrames uint64 `json:"recovered_frames"`
	RecoveredBytes  uint64 `json:"recovered_bytes"`
	LastLSN         uint64 `json:"last_lsn"`
	Segments        int    `json:"segments"`
	Truncated       bool   `json:"truncated"`
	TruncateReason  string `json:"truncate_reason,omitempty"`
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	st := s.statsSnapshot()
	es := stm.Stats{
		AbortsWW: st.AbortsWW, AbortsValid: st.AbortsValid,
		AbortsLocked: st.AbortsLocked, AbortsKilled: st.AbortsKilled,
		AbortsExplicit: st.AbortsExplicit, AbortsUser: st.AbortsUser,
		LockAcquireFail: st.LockAcquireFail,
		AbortsValidRead: st.AbortsValidRead, AbortsValidCommit: st.AbortsValidCommit,
	}
	sum := s.txnObs.Merged()
	z := Statz{
		Engine: s.eng.Name(),
		Stats:  st,
		Causes: es.Causes(),
		Obs: map[string]uint64{
			"commits_observed": sum.Retries.Count,
			"retries_p99":      sum.Retries.Quantile(0.99),
			"read_set_p99":     sum.ReadSet.Quantile(0.99),
			"write_set_p99":    sum.WriteSet.Quantile(0.99),
		},
	}
	if s.wal != nil {
		z.Wal = &WalStatz{
			Dir:             s.cfg.WALDir,
			Mode:            s.cfg.WALSync.String(),
			RecoveredFrames: s.walInfo.Frames,
			RecoveredBytes:  s.walInfo.Bytes,
			LastLSN:         s.walInfo.LastLSN,
			Segments:        s.walInfo.Segments,
			Truncated:       s.walInfo.Truncated,
			TruncateReason:  s.walInfo.Reason,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(z)
}

// collectEngine is the registry collector for /metrics: it drains the
// worker pool (the same quiesce the Stats op performs) and appends the
// engine-level series to the snapshot.
func (s *Server) collectEngine(snap *obs.Snapshot) {
	es := s.drainStats()
	snap.AddCounter("stm_commits_total", nil, es.Commits)
	snap.AddCounter("stm_ro_commits_total", nil, es.ROCommits)
	c := es.Causes()
	cause := func(name string, v uint64) {
		snap.AddCounter("stm_aborts_total", []obs.Label{{Key: "cause", Value: name}}, v)
	}
	cause("read_validation", c.ReadValidation)
	cause("lock_conflict", c.LockConflict)
	cause("commit_validation", c.CommitValidation)
	cause("cm_kill", c.CMKill)
	cause("user_error", c.UserError)
	cause("explicit_restart", c.ExplicitRestart)

	sum := s.txnObs.Merged()
	snap.AddHist("stm_txn_retries", nil, sum.Retries)
	snap.AddHist("stm_txn_read_set_entries", nil, sum.ReadSet)
	snap.AddHist("stm_txn_write_set_entries", nil, sum.WriteSet)
}
