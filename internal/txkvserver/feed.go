package txkvserver

import (
	"bufio"
	"net"
	"sync"
	"time"

	"swisstm/internal/coalesce"
	"swisstm/internal/stm"
	"swisstm/internal/txkvwire"
)

// Change-feed integration (DESIGN.md §14.4). Every committed mutation
// is published to its shard's feed in commit order, whichever path
// executed it: the coalescer publishes its own flushes, and the pooled
// request path carries its events through a pendingFeed — the feed
// twin of pendingLog, with the same ticket discipline. A body collects
// its events as it mutates, reserves one feed ticket per touched shard
// as its LAST step (after every outcome-deciding read), and dispatch
// publishes after the commit. Aborted attempts abandon their tickets
// at body re-entry, exactly like the log slot.

// pendingFeed accumulates one request's feed events and per-shard
// ticket reservations across transaction attempts.
type pendingFeed struct {
	events []coalesce.Event
	shards []int      // shards[i] is the shard of events[i]
	slots  []feedSlot // one reserved ticket per distinct shard
}

type feedSlot struct {
	shard int
	tk    uint64
}

var feedPendPool = sync.Pool{New: func() any { return &pendingFeed{} }}

func getPendingFeed() *pendingFeed { return feedPendPool.Get().(*pendingFeed) }

func putPendingFeed(p *pendingFeed) {
	p.reset()
	feedPendPool.Put(p)
}

func (p *pendingFeed) reset() {
	p.events = p.events[:0]
	p.shards = p.shards[:0]
	p.slots = p.slots[:0]
}

// drop abandons the previous attempt's tickets and clears its events:
// at the top of a (re-)executed body and on a panic out of it.
func (p *pendingFeed) drop(s *Server) {
	for _, sl := range p.slots {
		s.feeds[sl.shard].Abandon(sl.tk)
	}
	p.reset()
}

// add records one committed-if-we-commit mutation. Call only for
// mutations the current attempt actually applied.
func (p *pendingFeed) add(s *Server, e coalesce.Event) {
	p.events = append(p.events, e)
	p.shards = append(p.shards, s.store.ShardOf(stm.Word(e.Key)))
}

// reserve draws one ticket per distinct touched shard, in first-touch
// order. Must be the body's last step (ticket order = commit order).
func (p *pendingFeed) reserve(s *Server) {
	for _, sh := range p.shards {
		have := false
		for _, sl := range p.slots {
			if sl.shard == sh {
				have = true
				break
			}
		}
		if !have {
			p.slots = append(p.slots, feedSlot{shard: sh, tk: s.feeds[sh].Reserve()})
		}
	}
}

// publish hands each shard its events at the reserved ticket. Call
// after the transaction committed; a no-op when nothing was reserved.
func (p *pendingFeed) publish(s *Server) {
	for _, sl := range p.slots {
		var evs []coalesce.Event
		for i, sh := range p.shards {
			if sh == sl.shard {
				evs = append(evs, p.events[i])
			}
		}
		s.feeds[sl.shard].Publish(sl.tk, evs)
	}
	p.reset()
}

// enqueueCoalesced builds the batcher item for a single-key op and
// hands it to its shard's queue. Call on the connection's reader
// goroutine: the enqueue order into each shard queue is then exactly
// the connection's request order, which is what makes pipelined
// read-your-writes hold (DESIGN.md §14.5) — a dispatch goroutine per
// request would race same-connection ops into the queue. Enqueue never
// blocks (a full queue sheds), so the reader stays responsive.
// ok=false means the request was refused and reply is the shed reply.
func (s *Server) enqueueCoalesced(req txkvwire.Req, deadline time.Time) (it *coalesce.Item, reply txkvwire.Reply, ok bool) {
	var op coalesce.Op
	switch req.Op {
	case txkvwire.OpGet:
		op = coalesce.OpGet
	case txkvwire.OpPut:
		op = coalesce.OpPut
	case txkvwire.OpDelete:
		op = coalesce.OpDelete
	case txkvwire.OpCAS:
		op = coalesce.OpCAS
	}
	it = coalesce.NewItem(op, stm.Word(req.Key), stm.Word(req.Val), stm.Word(req.Old), deadline)
	if code, msg := s.co.Enqueue(it); code != 0 {
		s.m.recordShed(code, code == txkvwire.CodeOverloaded)
		return nil, txkvwire.Reply{Op: req.Op, Err: msg, Code: code}, false
	}
	return it, txkvwire.Reply{}, true
}

// awaitCoalesced waits for an enqueued item's individual result. The
// batcher's flush reports the item's phase share (queue = exact
// time-to-flush, txn/commit/wal = the batch's divided among its
// items), so the server-side phase accounting stays comparable with
// the pooled path.
func (s *Server) awaitCoalesced(op txkvwire.Op, it *coalesce.Item) (reply txkvwire.Reply, queueNs, txnNs, commitNs, walNs uint64) {
	res := <-it.Done()
	if res.Err != "" {
		if res.Shed {
			s.m.recordShed(res.Code, false)
		}
		return txkvwire.Reply{Op: op, Err: res.Err, Code: res.Code},
			res.QueueNs, res.TxnNs, res.CommitNs, res.WalNs
	}
	return txkvwire.Reply{Op: op, Found: res.Found, Val: uint64(res.Val), OK: res.OK},
		res.QueueNs, res.TxnNs, res.CommitNs, res.WalNs
}

// dispatchCoalesced is enqueue + await in one call, for paths that do
// not need the reader-ordered split.
func (s *Server) dispatchCoalesced(req txkvwire.Req, deadline time.Time) (reply txkvwire.Reply, queueNs, txnNs, commitNs, walNs uint64) {
	it, refusal, ok := s.enqueueCoalesced(req, deadline)
	if !ok {
		return refusal, 0, 0, 0, 0
	}
	return s.awaitCoalesced(req.Op, it)
}

// feedHeartbeat is how often an idle feed stream sends an empty Events
// frame: keeps dead-subscriber detection bounded (the write fails) and
// tells a live client the stream is merely quiet.
const feedHeartbeat = 500 * time.Millisecond

// streamFeed tails one shard's change feed onto the connection until
// the feed closes (drain: remaining events, then a Draining error
// frame), the subscriber falls out of the retention window (a Rejected
// error frame), or the client goes away. from is the first sequence
// wanted; 0 means "from now".
func (s *Server) streamFeed(conn net.Conn, bw *bufio.Writer, shard int, from uint64) {
	f := s.feeds[shard]
	cursor := from
	evbuf := make([]coalesce.Event, 0, txkvwire.MaxFeedEvents)
	wire := make([]txkvwire.FeedEvent, 0, txkvwire.MaxFeedEvents)
	var obuf []byte
	hb := time.NewTimer(feedHeartbeat)
	defer hb.Stop()
	for {
		batch, next, wait, done, err := f.Next(cursor, evbuf, txkvwire.MaxFeedEvents)
		cursor = next
		if err != nil {
			s.writeReply(conn, bw, &obuf, txkvwire.Reply{
				Op: txkvwire.OpSubscribe, Err: err.Error(), Code: txkvwire.CodeRejected}, true)
			return
		}
		if len(batch) > 0 {
			wire = wire[:0]
			for _, e := range batch {
				wire = append(wire, txkvwire.FeedEvent{Seq: e.Seq, Del: e.Del, Key: e.Key, Val: e.Val})
			}
			if !s.writeReply(conn, bw, &obuf, txkvwire.Reply{Op: txkvwire.OpSubscribe, Events: wire}, true) {
				return
			}
			continue
		}
		if done {
			s.writeReply(conn, bw, &obuf, txkvwire.Reply{
				Op: txkvwire.OpSubscribe, Err: "draining: feed closed", Code: txkvwire.CodeDraining}, true)
			return
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(feedHeartbeat)
		select {
		case <-wait:
		case <-hb.C:
			// Idle heartbeat: an empty Events frame. Its write failing
			// is how a dead subscriber is detected and released.
			if !s.writeReply(conn, bw, &obuf, txkvwire.Reply{Op: txkvwire.OpSubscribe}, true) {
				return
			}
		}
	}
}
