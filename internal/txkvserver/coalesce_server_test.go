package txkvserver

import (
	"errors"
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/stm"
	"swisstm/internal/txkvclient"
	"swisstm/internal/txkvwire"
)

// startCoalesced boots a server with the per-shard batchers on.
func startCoalesced(t *testing.T, kind string, keys int, cfg Config) *Server {
	t.Helper()
	cfg.Engine = harness.EngineSpec{Kind: kind, Manager: "polka"}
	cfg.Keys = keys
	if cfg.CoalesceBatch == 0 {
		cfg.CoalesceBatch = 8
	}
	srv, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("start %s server: %v", kind, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestPipelinedRepliesInOrder pins the pipelining contract (DESIGN.md
// §14.5): many requests in flight on one connection, replies in exactly
// request order.
func TestPipelinedRepliesInOrder(t *testing.T) {
	srv := startCoalesced(t, "swisstm", 256, Config{Pipeline: 8, CoalesceWait: 100 * time.Microsecond})
	p, err := txkvclient.DialPipe(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 64
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			// Interleave writes and reads so replies cross batcher flushes.
			req := txkvwire.Req{Op: txkvwire.OpPut, Key: uint64(1 + i%32), Val: uint64(i)}
			if i%3 == 2 {
				// Read back the key the Put two requests earlier wrote.
				req = txkvwire.Req{Op: txkvwire.OpGet, Key: uint64(1 + (i-2)%32)}
			}
			if err := p.Submit(req, i, true, true); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		tag, last, reply, err := p.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if tag.(int) != i || !last {
			t.Fatalf("reply %d carries tag %v (last=%v): replies out of request order", i, tag, last)
		}
		if reply.Err != "" {
			t.Fatalf("reply %d: %s", i, reply.Err)
		}
		if reply.Op == txkvwire.OpGet && i >= 2 {
			// The Get at i reads the Put from i-2 on the same key; in-order
			// execution of a pipelined connection makes the value exact.
			if !reply.Found || reply.Val != uint64(i-2) {
				t.Fatalf("pipelined get %d saw (%d, %v), want value %d", i, reply.Val, reply.Found, i-2)
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("submit: %v", err)
	}
}

// TestCoalescedOpsOverWire drives every single-key op through the
// batchers over real TCP and checks results are indistinguishable from
// the pooled path while the stats prove batching actually happened.
func TestCoalescedOpsOverWire(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			srv := startCoalesced(t, kind, 128, Config{Pipeline: 16, CoalesceWait: 200 * time.Microsecond})
			p, err := txkvclient.DialPipe(srv.Addr().String(), 16)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			const n = 200
			errc := make(chan error, 1)
			go func() {
				for i := 0; i < n; i++ {
					k := uint64(1 + i%64)
					var req txkvwire.Req
					switch i % 4 {
					case 0:
						req = txkvwire.Req{Op: txkvwire.OpPut, Key: k, Val: uint64(i)}
					case 1:
						req = txkvwire.Req{Op: txkvwire.OpGet, Key: k}
					case 2:
						req = txkvwire.Req{Op: txkvwire.OpCAS, Key: k, Old: uint64(i), Val: 1}
					default:
						req = txkvwire.Req{Op: txkvwire.OpDelete, Key: 100 + k}
					}
					if err := p.Submit(req, i, true, true); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
			for i := 0; i < n; i++ {
				if _, _, reply, err := p.Recv(); err != nil || reply.Err != "" {
					t.Fatalf("reply %d: %v / %q", i, err, reply.Err)
				}
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}

			cl, err := txkvclient.Dial(srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			st, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.CoalesceBatches == 0 || st.CoalesceItems < st.CoalesceBatches {
				t.Fatalf("batchers idle: %d batches / %d items", st.CoalesceBatches, st.CoalesceItems)
			}
			if st.CoalesceItems != n {
				t.Fatalf("coalesced %d items, want every one of the %d single-key ops", st.CoalesceItems, n)
			}
		})
	}
}

// TestSubscribeStreamsCommitsInOrder tails one shard's change feed over
// the wire while writing to it, then drains the server: the subscriber
// must see every mutation of its shard exactly once, in commit order,
// and then the clean end-of-feed.
func TestSubscribeStreamsCommitsInOrder(t *testing.T) {
	srv := startCoalesced(t, "tl2", 64, Config{Pipeline: 8, CoalesceWait: 100 * time.Microsecond})
	// Pick the shard of key 1 and collect every key landing there.
	shard := srv.store.ShardOf(1)
	var keys []uint64
	for k := stm.Word(1); len(keys) < 4; k++ {
		if srv.store.ShardOf(k) == shard {
			keys = append(keys, uint64(k))
		}
	}

	sub, err := txkvclient.DialSubscribe(srv.Addr().String(), shard, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	cl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Two writes per key, then one delete: 3 events per key in a known
	// per-key order (cross-key interleaving is the server's to choose).
	for _, k := range keys {
		if _, err := cl.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Put(k, k*10+1); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	go srv.Drain()

	var events []txkvwire.FeedEvent
	for {
		batch, err := sub.Next()
		if errors.Is(err, txkvclient.ErrFeedClosed) {
			break
		}
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		events = append(events, batch...)
	}
	if len(events) != 3*len(keys) {
		t.Fatalf("subscriber saw %d events, want %d (3 per key)", len(events), 3*len(keys))
	}
	perKey := make(map[uint64]int)
	for i, e := range events {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("event %d has seq %d: lost, duplicated or reordered", i, e.Seq)
		}
		switch perKey[e.Key] {
		case 0:
			if e.Del || e.Val != e.Key*10 {
				t.Fatalf("key %d event 0: %+v, want first put", e.Key, e)
			}
		case 1:
			if e.Del || e.Val != e.Key*10+1 {
				t.Fatalf("key %d event 1: %+v, want second put", e.Key, e)
			}
		case 2:
			if !e.Del {
				t.Fatalf("key %d event 2: %+v, want delete", e.Key, e)
			}
		default:
			t.Fatalf("key %d saw a fourth event: %+v", e.Key, e)
		}
		perKey[e.Key]++
	}
}

// TestTTLExpiredInBatchShedsOnlyThatItem is the over-the-wire half of
// the PR 9 shed-accounting regression: with coalescing on, a request
// whose TTL expires while queued for its flush is shed alone with
// DeadlineExceeded; its batch-mates commit normally.
func TestTTLExpiredInBatchShedsOnlyThatItem(t *testing.T) {
	// A long gather window guarantees the 1µs TTL expires in-queue.
	srv := startCoalesced(t, "swisstm", 64,
		Config{Pipeline: 8, CoalesceBatch: 1000, CoalesceWait: 50 * time.Millisecond})
	p, err := txkvclient.DialPipe(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	shard := srv.store.ShardOf(1)
	var other uint64
	for k := stm.Word(2); other == 0; k++ {
		if srv.store.ShardOf(k) == shard {
			other = uint64(k)
		}
	}
	if err := p.Submit(txkvwire.Req{Op: txkvwire.OpPut, Key: 1, Val: 7, TTL: time.Microsecond}, "doomed", true, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(txkvwire.Req{Op: txkvwire.OpPut, Key: other, Val: 8}, "live", true, true); err != nil {
		t.Fatal(err)
	}

	tag, _, reply, err := p.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if tag != "doomed" || reply.Code != txkvwire.CodeDeadlineExceeded {
		t.Fatalf("expired request: tag=%v reply=%+v, want DeadlineExceeded", tag, reply)
	}
	tag, _, reply, err = p.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if tag != "live" || reply.Err != "" {
		t.Fatalf("batch-mate of expired request: tag=%v reply=%+v", tag, reply)
	}

	cl, err := txkvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if v, _, _ := cl.Get(1); v == 7 {
		t.Fatal("expired put reached the store")
	}
	if v, _, _ := cl.Get(other); v != 8 {
		t.Fatalf("live put lost: %d", v)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded counter %d, want 1", st.DeadlineExceeded)
	}
}
