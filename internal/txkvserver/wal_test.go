package txkvserver

import (
	"net"
	"sync"
	"testing"
	"time"

	"swisstm/internal/harness"
	"swisstm/internal/txkvclient"
	"swisstm/internal/wal"
)

// startWALServer starts a server with the commit log on. The caller
// owns shutdown (restart tests close explicitly, mid-test).
func startWALServer(t *testing.T, kind, dir string, mode wal.SyncMode, keys int) (*Server, *txkvclient.Client) {
	t.Helper()
	srv, err := Start("127.0.0.1:0", Config{
		Engine:  harness.EngineSpec{Kind: kind, Manager: "polka"},
		Keys:    keys,
		WALDir:  dir,
		WALSync: mode,
	})
	if err != nil {
		t.Fatalf("start %s server with wal: %v", kind, err)
	}
	cl, err := txkvclient.DialRetry(srv.Addr().String(), 5*time.Second)
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	return srv, cl
}

// TestWALRestartRecovery shuts a logging server down and restarts it
// on the same directory with a different (ignored) Keys flag: the
// recovered state must be the log's — every acknowledged mutation,
// and nothing from the failed or read-only ops that log nothing.
func TestWALRestartRecovery(t *testing.T) {
	for _, kind := range engineKinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			const keys = 64
			srv, cl := startWALServer(t, kind, dir, wal.SyncGroup, keys)

			if _, err := cl.Put(keys+1, 42); err != nil {
				t.Fatalf("put: %v", err)
			}
			if sw, err := cl.CAS(1, 1000, 1001); err != nil || !sw {
				t.Fatalf("cas hit: %v %v", sw, err)
			}
			if sw, err := cl.CAS(2, 9999, 1); err != nil || sw {
				t.Fatalf("cas miss should fail cleanly: %v %v", sw, err)
			}
			if ex, err := cl.Delete(3); err != nil || !ex {
				t.Fatalf("delete: %v %v", ex, err)
			}
			if ex, err := cl.Delete(keys + 50); err != nil || ex {
				t.Fatalf("delete of absent key: %v %v", ex, err)
			}
			if ok, err := cl.Transfer([]uint64{4, 5, 6}, 7); err != nil || !ok {
				t.Fatalf("transfer: %v %v", ok, err)
			}
			sumBefore, err := cl.Sum(-1)
			if err != nil {
				t.Fatalf("sum: %v", err)
			}
			cl.Close()
			if err := srv.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Restart on the same log; Keys=8 must be overridden by it.
			srv2, cl2 := startWALServer(t, kind, dir, wal.SyncGroup, 8)
			defer srv2.Close()
			defer cl2.Close()
			if info := srv2.WalRecovery(); info.Frames < 5 || info.Truncated {
				t.Fatalf("recovery info = %+v, want >=5 clean frames", info)
			}
			checks := map[uint64]uint64{
				uint64(keys + 1): 42,
				1:                1001,
				2:                1000, // CAS miss logged nothing
				4:                1000 - 2*7,
				5:                1000 + 7,
			}
			for k, want := range checks {
				if v, found, err := cl2.Get(k); err != nil || !found || v != want {
					t.Fatalf("recovered Get(%d) = %d,%v,%v; want %d", k, v, found, err, want)
				}
			}
			if _, found, _ := cl2.Get(3); found {
				t.Fatal("deleted key 3 came back after recovery")
			}
			if sum, err := cl2.Sum(-1); err != nil || sum != sumBefore {
				t.Fatalf("recovered sum %d, want %d (err %v)", sum, sumBefore, err)
			}
			st, err := cl2.Stats()
			if err != nil || st.WalRecovered == 0 {
				t.Fatalf("recovered-frame counter empty after replay: %+v %v", st, err)
			}
		})
	}
}

// TestWALFramesMatchAckedMutations pins what gets logged: one frame
// per acknowledged mutating request (plus the init frame), none for
// reads or failed conditionals.
func TestWALFramesMatchAckedMutations(t *testing.T) {
	dir := t.TempDir()
	srv, cl := startWALServer(t, "swisstm", dir, wal.SyncGroup, 32)
	defer srv.Close()
	defer cl.Close()

	if _, err := cl.Put(40, 1); err != nil {
		t.Fatal(err)
	}
	cl.Get(1)       // read: no frame
	cl.CAS(1, 7, 8) // miss: no frame
	cl.Delete(999)  // absent: no frame
	if _, err := cl.Sum(-1); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Frame 1 is the init record, frame 2 the put.
	if st.WalFrames != 2 {
		t.Fatalf("WalFrames = %d, want 2 (init + one put)", st.WalFrames)
	}
	if st.WalBytes == 0 || st.WalNs == 0 {
		t.Fatalf("wal byte/latency counters empty: %+v", st)
	}
}

// TestDrainLosesNoAckedOps hammers a draining server from several
// connections and checks, after a restart on the same log, that every
// acknowledged put survived — the graceful-shutdown half of the
// durability contract (the crash half is cmd/crashkv's).
func TestDrainLosesNoAckedOps(t *testing.T) {
	dir := t.TempDir()
	const clients = 4
	srv, cl := startWALServer(t, "tl2", dir, wal.SyncGroup, 32)
	cl.Close()

	lastAcked := make([]uint64, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := txkvclient.DialRetry(srv.Addr().String(), 5*time.Second)
			if err != nil {
				t.Errorf("client %d: dial: %v", g, err)
				return
			}
			defer cl.Close()
			key := uint64(100 + g)
			for v := uint64(1); ; v++ {
				if _, err := cl.Put(key, v); err != nil {
					return // drained out from under us; stop at the last ack
				}
				lastAcked[g] = v
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	srv2, cl2 := startWALServer(t, "tl2", dir, wal.SyncGroup, 32)
	defer srv2.Close()
	defer cl2.Close()
	for g := 0; g < clients; g++ {
		if lastAcked[g] == 0 {
			t.Fatalf("client %d never got an ack; drain raced the whole run", g)
		}
		v, found, err := cl2.Get(uint64(100 + g))
		if err != nil || !found {
			t.Fatalf("client %d: recovered Get: %v %v", g, found, err)
		}
		// A drained shutdown serves every in-flight request to
		// completion, so the recovered value is exactly the last ack.
		if v != lastAcked[g] {
			t.Fatalf("client %d: recovered %d, last acked %d", g, v, lastAcked[g])
		}
	}
}

// TestWALPublishFailureUnacksWrite poisons the log with an injected
// fsync error and checks the client sees an error (not a false ack)
// and the server stays up for reads.
func TestWALPublishFailureUnacksWrite(t *testing.T) {
	dir := t.TempDir()
	// Syncs 1..3 happen at startup (segment create, init append, init
	// barrier); sync 4 is the first put's.
	ffs := &wal.FaultFS{Base: wal.OSFS{}, FailSync: 4}
	srv, err := Start("127.0.0.1:0", Config{
		Engine:  harness.EngineSpec{Kind: "swisstm", Manager: "polka"},
		Keys:    16,
		WALDir:  dir,
		WALSync: wal.SyncAlways,
		WALFS:   ffs,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	cl, err := txkvclient.DialRetry(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if _, err := cl.Put(20, 1); err == nil {
		t.Fatal("put acked despite failed log append")
	}
	if _, err := cl.Put(21, 1); err == nil {
		t.Fatal("put acked on a poisoned log")
	}
	if v, found, err := cl.Get(1); err != nil || !found || v != 1000 {
		t.Fatalf("reads should survive a poisoned log: %d %v %v", v, found, err)
	}
}

// TestReadTimeoutDropsIdleConn pins Config.ReadTimeout: an idle
// connection is closed once no frame arrives within the window.
func TestReadTimeoutDropsIdleConn(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{
		Engine:      harness.EngineSpec{Kind: "swisstm", Manager: "polka"},
		Keys:        16,
		ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open past the read timeout")
	}
}

// TestAcceptErrorSurfaces kills the listener out from under a live
// server and checks Done fires with a non-nil Err — the hook main
// uses to exit non-zero instead of serving nothing forever.
func TestAcceptErrorSurfaces(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{
		Engine: harness.EngineSpec{Kind: "swisstm", Manager: "polka"},
		Keys:   16,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()
	srv.ln.Close() // simulate the listener dying while the server runs
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("accept failure did not close Done")
	}
	if srv.Err() == nil {
		t.Fatal("Done closed with nil Err")
	}
}
