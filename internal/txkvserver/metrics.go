package txkvserver

import (
	"bufio"
	"net"
	"sync/atomic"

	"swisstm/internal/txkvwire"
)

// metrics holds the server's flat per-request phase counters: plain
// nanosecond sums plus a request count, the shape the related audit-log
// service records per request and the results schema averages into
// phase_*_ns columns (DESIGN.md §10). Atomic adds keep the hot path
// lock-free; the counters are cumulative for the server's lifetime, so
// a load run diffs two snapshots.
type metrics struct {
	requests atomic.Uint64
	parseNs  atomic.Uint64
	queueNs  atomic.Uint64
	txnNs    atomic.Uint64
	commitNs atomic.Uint64
	replyNs  atomic.Uint64
}

func (m *metrics) record(parse, queue, txn, commit, reply uint64) {
	m.requests.Add(1)
	m.parseNs.Add(parse)
	m.queueNs.Add(queue)
	m.txnNs.Add(txn)
	m.commitNs.Add(commit)
	m.replyNs.Add(reply)
}

// snapshot reads the counters into the wire Stats shape (the engine
// commit/abort totals are filled in by the caller).
func (m *metrics) snapshot() txkvwire.Stats {
	return txkvwire.Stats{
		Requests: m.requests.Load(),
		ParseNs:  m.parseNs.Load(),
		QueueNs:  m.queueNs.Load(),
		TxnNs:    m.txnNs.Load(),
		CommitNs: m.commitNs.Load(),
		ReplyNs:  m.replyNs.Load(),
	}
}

// newConnReader wraps the connection for frame reads. Replies are
// written unbuffered (one WriteFrame per reply is two small writes on a
// loopback TCP socket with default NODELAY), but reads are buffered so
// a frame header and body coalesce into one syscall under pipelining.
func newConnReader(c net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(c, 16<<10)
}
