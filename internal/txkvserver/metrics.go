package txkvserver

import (
	"bufio"
	"net"

	"swisstm/internal/obs"
	"swisstm/internal/txkvwire"
)

// phase indices into opMetrics.phase. The request pipeline is measured
// in six disjoint phases (DESIGN.md §10, §12): frame decode, wait for
// an engine thread, transaction body (final attempt), begin/commit/
// retry remainder, commit-log append (zero with the WAL off), and
// reply encode+write+flush.
const (
	phaseParse = iota
	phaseQueue
	phaseTxn
	phaseCommit
	phaseWal
	phaseReply
	phaseCount
)

var phaseNames = [phaseCount]string{"parse", "queue", "txn", "commit", "wal", "reply"}

// opCount sizes the per-op metric tables: wire opcodes are contiguous
// from OpInvalid (decode failures land there).
const opCount = int(txkvwire.OpSubscribe) + 1

// opMetrics is one op type's pre-resolved metric handles. Handles are
// looked up once at server start so the request path does no
// name/label matching — recording is a handful of atomic adds.
type opMetrics struct {
	requests *obs.Counter
	total    *obs.AtomicHist
	phase    [phaseCount]*obs.AtomicHist
}

// metrics is the server's observability surface: per-op-type request
// counters and latency histograms (total and per phase) plus per-shard
// conflict counters, all owned by one obs.Registry so the admin
// /metrics endpoint can render everything the request path records.
//
// Everything here is cumulative for the server's lifetime and recorded
// lock-free; a load run diffs two snapshots. Snapshots are
// diff-tolerant rather than globally consistent (see snapshot).
type metrics struct {
	reg *obs.Registry
	ops [opCount]opMetrics
	// shardConflicts[i] counts engine aborts attributed to requests
	// whose (first) key hashes to shard i; the extra last entry counts
	// aborts of multi-shard requests (sum/len/batch and key-less ops),
	// labeled shard="multi".
	shardConflicts []*obs.Counter

	// Admission-control outcomes (DESIGN.md §13). A shed is a request
	// turned away before it borrowed an engine thread; the reason label
	// says which bound fired. Deadline expiries and connection-cap
	// rejections are counted separately — they are not capacity sheds.
	shedQueueFull    *obs.Counter // txkv_sheds_total{reason="queue_full"}
	shedQueueWait    *obs.Counter // txkv_sheds_total{reason="queue_wait"}
	shedDraining     *obs.Counter // txkv_sheds_total{reason="draining"}
	deadlineExceeded *obs.Counter // txkv_deadline_exceeded_total
	connsRejected    *obs.Counter // txkv_conns_rejected_total
}

func newMetrics(shards int) *metrics {
	m := &metrics{reg: obs.NewRegistry()}
	for op := 0; op < opCount; op++ {
		name := txkvwire.Op(op).String()
		m.ops[op].requests = m.reg.Counter("txkv_requests_total", obs.Label{Key: "op", Value: name})
		m.ops[op].total = m.reg.Histogram("txkv_request_ns", obs.Label{Key: "op", Value: name})
		for p := 0; p < phaseCount; p++ {
			m.ops[op].phase[p] = m.reg.Histogram("txkv_phase_ns",
				obs.Label{Key: "op", Value: name}, obs.Label{Key: "phase", Value: phaseNames[p]})
		}
	}
	m.shardConflicts = make([]*obs.Counter, shards+1)
	for i := 0; i < shards; i++ {
		m.shardConflicts[i] = m.reg.Counter("txkv_shard_conflicts_total",
			obs.Label{Key: "shard", Value: shardName(i)})
	}
	m.shardConflicts[shards] = m.reg.Counter("txkv_shard_conflicts_total",
		obs.Label{Key: "shard", Value: "multi"})
	m.shedQueueFull = m.reg.Counter("txkv_sheds_total", obs.Label{Key: "reason", Value: "queue_full"})
	m.shedQueueWait = m.reg.Counter("txkv_sheds_total", obs.Label{Key: "reason", Value: "queue_wait"})
	m.shedDraining = m.reg.Counter("txkv_sheds_total", obs.Label{Key: "reason", Value: "draining"})
	m.deadlineExceeded = m.reg.Counter("txkv_deadline_exceeded_total")
	m.connsRejected = m.reg.Counter("txkv_conns_rejected_total")
	return m
}

// recordShed counts one admission rejection by its wire code: sheds
// (Overloaded split by which bound fired, Draining) and deadline
// expiries feed separate counters because a deadline miss is the
// client's budget running out, not the server refusing capacity.
func (m *metrics) recordShed(code txkvwire.Code, queueFull bool) {
	switch {
	case code == txkvwire.CodeDraining:
		m.shedDraining.Inc()
	case code == txkvwire.CodeDeadlineExceeded:
		m.deadlineExceeded.Inc()
	case queueFull:
		m.shedQueueFull.Inc()
	default:
		m.shedQueueWait.Inc()
	}
}

// shardName formats a shard index without fmt (called only at init,
// but keeps the package's metric setup dependency-light).
func shardName(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// record logs one fully served request of type op with its six phase
// durations (ns). The total histogram records the phase sum, so
// per-op totals and phase splits agree by construction.
func (m *metrics) record(op txkvwire.Op, parse, queue, txn, commit, wal, reply uint64) {
	om := &m.ops[int(op)]
	om.requests.Inc()
	om.phase[phaseParse].Record(parse)
	om.phase[phaseQueue].Record(queue)
	om.phase[phaseTxn].Record(txn)
	om.phase[phaseCommit].Record(commit)
	om.phase[phaseWal].Record(wal)
	om.phase[phaseReply].Record(reply)
	om.total.Record(parse + queue + txn + commit + wal + reply)
}

// recordConflicts attributes n engine aborts to shard (−1 = the
// multi-shard bucket). Called only when n > 0, so conflict-free
// requests touch no extra cache line.
func (m *metrics) recordConflicts(shard int, n uint64) {
	if shard < 0 || shard >= len(m.shardConflicts)-1 {
		shard = len(m.shardConflicts) - 1
	}
	m.shardConflicts[shard].Add(n)
}

// snapshot folds the per-op histograms into the flat wire Stats shape
// (phase sums + request count) and fills the server-lifetime latency
// percentiles from the merged total histogram. The engine counters are
// filled in by the caller.
//
// Consistency: each histogram/counter is read with individual atomic
// loads while recording continues, so a snapshot may observe some of a
// request's phase sums without its Requests increment (or vice versa)
// — skew is bounded by the requests in flight at snapshot time. Every
// field is monotone non-decreasing, so diffing two snapshots is
// per-field exact and per-request means converge over any window that
// dwarfs the in-flight count; the concurrent-snapshot test pins the
// monotonicity half of this contract. (The previous flat-counter
// implementation had the same torn window but left it undocumented.)
func (m *metrics) snapshot() txkvwire.Stats {
	var st txkvwire.Stats
	var total obs.Hist
	for op := 0; op < opCount; op++ {
		om := &m.ops[op]
		st.Requests += om.requests.Load()
		ph := [phaseCount]obs.Hist{}
		for p := 0; p < phaseCount; p++ {
			ph[p] = om.phase[p].Snapshot()
		}
		st.ParseNs += ph[phaseParse].Sum
		st.QueueNs += ph[phaseQueue].Sum
		st.TxnNs += ph[phaseTxn].Sum
		st.CommitNs += ph[phaseCommit].Sum
		st.WalNs += ph[phaseWal].Sum
		st.ReplyNs += ph[phaseReply].Sum
		t := om.total.Snapshot()
		total.Add(&t)
	}
	st.SrvP50Ns = total.Quantile(0.50)
	st.SrvP99Ns = total.Quantile(0.99)
	st.SrvP999Ns = total.Quantile(0.999)
	st.Sheds = m.shedQueueFull.Load() + m.shedQueueWait.Load() + m.shedDraining.Load()
	st.DeadlineExceeded = m.deadlineExceeded.Load()
	st.ConnsRejected = m.connsRejected.Load()
	return st
}

// newConnReader wraps the connection for frame reads: a frame header
// and body coalesce into one syscall under pipelining. (Replies are
// buffered symmetrically by serveConn's per-connection writer.)
func newConnReader(c net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(c, 16<<10)
}
