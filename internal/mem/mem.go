// Package mem provides the flat transactional word arena that stands in for
// the raw C heap of the original SwissTM implementation.
//
// Go's garbage collector rules out instrumenting arbitrary addresses, so
// every STM engine in this repository operates on a single preallocated
// arena of 64-bit words. An address (Addr) is simply a word index; the
// engines map addresses onto lock-table stripes with the shift-and-mask
// scheme of the paper's Figure 1.
//
// All word accesses are atomic so that the invisible-read protocols of the
// engines (which read data words while concurrent committers write them)
// are well-defined under the Go memory model.
package mem

import (
	"fmt"
	"sync/atomic"
)

// CacheLine is the assumed coherence granularity. 64 bytes is correct for
// every x86-64 and almost every arm64 part; padding to it prevents false
// sharing of logically independent hot words (DESIGN.md §7).
const CacheLine = 64

// CacheLinePad is inserted between struct fields to push the next field
// onto its own cache line.
type CacheLinePad struct{ _ [CacheLine]byte }

// PaddedUint64 is an atomic.Uint64 followed by enough padding that
// adjacent PaddedUint64s (e.g. array slots owned by different threads)
// sit a full cache line apart. Go only guarantees 8-byte alignment, so
// when the enclosing allocation is not line-aligned a slot may straddle
// two lines and neighbors share the boundary line — the padding bounds
// false sharing to at most that boundary rather than eliminating it
// outright. Engines use it for their global clocks and per-thread
// activity slots, which are written from different cores at high rates.
type PaddedUint64 struct {
	atomic.Uint64
	_ [CacheLine - 8]byte
}

// Word is the unit of transactional storage: one 64-bit machine word.
type Word = uint64

// Addr is a word index into an Arena. Address 0 is valid but, by
// convention, allocation starts at 1 so that 0 can serve as a nil handle.
type Addr = uint32

// Arena is a fixed-capacity flat array of transactional words with a
// lock-free bump allocator. It is the shared "heap" all transactions
// operate on.
type Arena struct {
	words []atomic.Uint64
	next  atomic.Uint64 // next free word index
}

// NewArena returns an arena with capacity for capWords words.
// Word index 0 is reserved (the nil handle), so usable capacity is
// capWords-1 words.
func NewArena(capWords int) *Arena {
	if capWords < 2 {
		capWords = 2
	}
	a := &Arena{words: make([]atomic.Uint64, capWords)}
	a.next.Store(1) // reserve index 0 as nil
	return a
}

// Alloc reserves n contiguous words and returns the address of the first.
// It never returns 0. Alloc panics if the arena is exhausted: benchmarks
// size their arenas up front, and exhaustion is a configuration error, not
// a runtime condition to handle.
func (a *Arena) Alloc(n uint32) Addr {
	if n == 0 {
		n = 1
	}
	base := a.next.Add(uint64(n)) - uint64(n)
	if base+uint64(n) > uint64(len(a.words)) {
		panic(fmt.Sprintf("mem: arena exhausted (cap %d words, want %d more)", len(a.words), n))
	}
	return Addr(base)
}

// Load reads the word at addr atomically (non-transactional access; used by
// engine internals and single-threaded setup code).
func (a *Arena) Load(addr Addr) Word { return a.words[addr].Load() }

// Store writes the word at addr atomically (non-transactional access).
func (a *Arena) Store(addr Addr, v Word) { a.words[addr].Store(v) }

// Words exposes the backing word array so engines can index the heap
// directly on their hot paths. Going through the slice header cached in
// the engine struct saves one pointer dereference per transactional
// access compared to calling a.Load/a.Store (arena pointer → slice
// header → element), and the engine-side accesses inline fully. The
// slice must only be accessed with atomic operations.
func (a *Arena) Words() []atomic.Uint64 { return a.words }

// Cap returns the arena capacity in words.
func (a *Arena) Cap() int { return len(a.words) }

// Used returns the number of words allocated so far (including the reserved
// word 0).
func (a *Arena) Used() int { return int(a.next.Load()) }
