package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocSequential(t *testing.T) {
	a := NewArena(128)
	x := a.Alloc(4)
	y := a.Alloc(4)
	if x == 0 {
		t.Fatal("Alloc returned the reserved nil address")
	}
	if y < x+4 {
		t.Fatalf("allocations overlap: x=%d y=%d", x, y)
	}
	if a.Used() != 9 { // 1 reserved + 8
		t.Fatalf("Used = %d, want 9", a.Used())
	}
	if a.Cap() != 128 {
		t.Fatalf("Cap = %d, want 128", a.Cap())
	}
}

func TestAllocZeroCountsAsOne(t *testing.T) {
	a := NewArena(16)
	x := a.Alloc(0)
	y := a.Alloc(1)
	if y == x {
		t.Fatal("zero-size allocation did not reserve a word")
	}
}

func TestExhaustionPanics(t *testing.T) {
	a := NewArena(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	a.Alloc(100)
}

func TestLoadStore(t *testing.T) {
	a := NewArena(32)
	addr := a.Alloc(2)
	a.Store(addr, 42)
	a.Store(addr+1, 43)
	if a.Load(addr) != 42 || a.Load(addr+1) != 43 {
		t.Fatal("load/store round trip failed")
	}
}

// TestQuickAllocNonOverlap: property — any sequence of allocation sizes
// yields pairwise disjoint, in-bounds ranges.
func TestQuickAllocNonOverlap(t *testing.T) {
	check := func(sizes []uint8) bool {
		a := NewArena(1 << 16)
		prevEnd := Addr(1)
		for _, sz := range sizes {
			n := uint32(sz%64) + 1
			base := a.Alloc(n)
			if base < prevEnd {
				return false
			}
			prevEnd = base + Addr(n)
		}
		return int(prevEnd) <= a.Cap()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAlloc: the bump allocator must hand out disjoint blocks
// under contention.
func TestConcurrentAlloc(t *testing.T) {
	a := NewArena(1 << 16)
	const workers, per = 8, 100
	blocks := make([][]Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				blocks[id] = append(blocks[id], a.Alloc(7))
			}
		}(w)
	}
	wg.Wait()
	seen := map[Addr]bool{}
	for _, bs := range blocks {
		for _, b := range bs {
			for k := Addr(0); k < 7; k++ {
				if seen[b+k] {
					t.Fatalf("word %d allocated twice", b+k)
				}
				seen[b+k] = true
			}
		}
	}
}
