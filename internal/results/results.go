// Package results is the machine-readable measurement layer of the
// experiment pipeline. Every experiment run produces one Record per
// (engine, workload, threads, repeat) point; records are written as CSV
// or JSONL (one file per experiment, see DESIGN.md §5 for the schema)
// and aggregated across repeats into summary rows (median/mean/stddev/
// min/max) that the paper-style text tables and the CI smoke gate read.
package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"swisstm/internal/stm"
)

// Record is one measured run: a single repeat of one engine on one
// workload at one thread count. Fields mirror the CSV/JSONL schema
// documented in DESIGN.md §5; keep the three in sync.
type Record struct {
	Experiment  string  `json:"experiment"`   // e.g. "fig2", "table1", "stamp"
	Workload    string  `json:"workload"`     // e.g. "stmbench7/read-dominated", "stamp/intruder"
	Engine      string  `json:"engine"`       // display name, e.g. "SwissTM", "RSTM(lazy/polka)"
	EngineKind  string  `json:"engine_kind"`  // "swisstm" | "tl2" | "tinystm" | "rstm"
	Threads     int     `json:"threads"`      // worker count
	Repeat      int     `json:"repeat"`       // 0-based repeat index
	Seed        uint64  `json:"seed"`         // per-run derived seed (0 = nondeterministic mode)
	DurationSec float64 `json:"duration_sec"` // wall time of the measured phase
	Ops         uint64  `json:"ops"`          // committed operations
	Throughput  float64 `json:"throughput"`   // ops per second

	// Full stm.Stats breakdown, aggregated across worker threads.
	Commits     uint64 `json:"commits"`
	ROCommits   uint64 `json:"ro_commits"` // commits of declared read-only transactions (DESIGN.md §9)
	Aborts      uint64 `json:"aborts"`
	AbortsWW    uint64 `json:"aborts_ww"`
	AbortsValid uint64 `json:"aborts_valid"`
	// Validation-failure phase split (DESIGN.md §11):
	// AbortsValidRead + AbortsValidCommit == AbortsValid.
	AbortsValidRead   uint64 `json:"aborts_valid_read"`
	AbortsValidCommit uint64 `json:"aborts_valid_commit"`
	AbortsLocked      uint64 `json:"aborts_locked"`
	AbortsKilled      uint64 `json:"aborts_killed"`
	AbortsExplicit    uint64 `json:"aborts_explicit"`
	AbortsUser        uint64 `json:"aborts_user"` // AtomicErr bodies returning errors (DESIGN.md §9)
	WaitsCM           uint64 `json:"waits_cm"`
	LockAcquireFail   uint64 `json:"lock_acquire_fail"`

	// Abort delivery split (DESIGN.md §8): checked-return commit-path
	// aborts vs panic/recover unwinds out of the user closure. Together
	// they partition Aborts.
	AbortsUnwound  uint64 `json:"aborts_unwound"`
	AbortsReturned uint64 `json:"aborts_returned"`

	// Hot-path instrumentation (DESIGN.md §7): read-log growth and
	// validation extent, so read-set dedup wins are quantified in the
	// results pipeline rather than only in benchstat.
	ReadsLogged     uint64 `json:"reads_logged"`
	ReadsDeduped    uint64 `json:"reads_deduped"`
	Validations     uint64 `json:"validations"`
	ValidationReads uint64 `json:"validation_reads"`

	// Network-service latency/load profile (DESIGN.md §10), populated
	// by the txkv load harness; zero for in-process experiment runs.
	// Latency percentiles are client-observed nanoseconds (closed loop:
	// from request send; open loop: from scheduled arrival, queueing
	// delay included). Phase columns are the server's mean per-request
	// nanoseconds in each service phase.
	LatP50Ns  float64 `json:"lat_p50_ns"`
	LatP99Ns  float64 `json:"lat_p99_ns"`
	LatP999Ns float64 `json:"lat_p999_ns"`
	// Server-side request-latency percentiles (ns), read from the
	// server's /metrics histograms at the end of the run. They cover the
	// server's whole lifetime, so they equal the run's own distribution
	// only when the server was launched for the run (-launch mode);
	// zero for in-process runs.
	SrvP50Ns      uint64  `json:"srv_p50_ns"`
	SrvP99Ns      uint64  `json:"srv_p99_ns"`
	SrvP999Ns     uint64  `json:"srv_p999_ns"`
	PhaseParseNs  float64 `json:"phase_parse_ns"`
	PhaseQueueNs  float64 `json:"phase_queue_ns"`
	PhaseTxnNs    float64 `json:"phase_txn_ns"`
	PhaseCommitNs float64 `json:"phase_commit_ns"`
	PhaseReplyNs  float64 `json:"phase_reply_ns"`
	// OfferedRate is the open-loop arrival rate in ops/sec (0 = closed
	// loop); AchievedRate is completed ops over the run duration. A gap
	// between them, or a non-zero LateOps count, is saturation made
	// visible rather than absorbed by closed-loop backpressure.
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	LateOps      uint64  `json:"late_ops"`

	AbortRate float64 `json:"abort_rate"` // aborts / (commits + aborts)
	CheckedOK bool    `json:"checked_ok"` // post-run validation outcome

	// Durable-commit-log profile (DESIGN.md §12), populated by the txkv
	// load harness when the server runs with -wal; zero otherwise.
	// PhaseWalNs is the server's mean per-request time spent appending
	// to (and, under -fsync group/always, waiting on) the commit log.
	PhaseWalNs         float64 `json:"phase_wal_ns"`
	WalFrames          uint64  `json:"wal_frames"`           // redo records appended over the run
	WalBytes           uint64  `json:"wal_bytes"`            // log bytes written over the run
	WalRecoveredFrames uint64  `json:"wal_recovered_frames"` // frames replayed at server start

	// Client-resilience counters (DESIGN.md §10): per-request retries
	// after transport failures and successful reconnects, summed across
	// the load generator's connections.
	Retries    uint64 `json:"retries"`
	Reconnects uint64 `json:"reconnects"`

	// Admission-control counters (DESIGN.md §13), diffed over the run
	// window from the server's Stats: requests shed before execution
	// (queue full, queue wait limit, draining) and requests dropped
	// because their deadline budget expired server-side.
	Sheds            uint64 `json:"sheds"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`

	// Pipelining/coalescing profile (DESIGN.md §14), populated by the
	// txkv load harness: the run's client config (per-connection
	// pipeline window, coalesce batch size; 0 = off) and the server-side
	// deltas over the run window — coalesced flushes and the items they
	// absorbed, change-feed events published, and commit-log fsyncs
	// (the group-commit amortization evidence: with coalescing on,
	// commits/op and fsyncs/op drop at equal offered rate).
	Pipeline        int    `json:"pipeline"`
	CoalesceBatch   int    `json:"coalesce_batch"`
	CoalesceBatches uint64 `json:"coalesce_batches"`
	CoalesceItems   uint64 `json:"coalesce_items"`
	FeedEvents      uint64 `json:"feed_events"`
	WalFsyncs       uint64 `json:"wal_fsyncs"`
}

// SetStats copies the full per-run statistics breakdown into r.
func (r *Record) SetStats(s stm.Stats) {
	r.Commits = s.Commits
	r.ROCommits = s.ROCommits
	r.Aborts = s.Aborts
	r.AbortsWW = s.AbortsWW
	r.AbortsValid = s.AbortsValid
	r.AbortsValidRead = s.AbortsValidRead
	r.AbortsValidCommit = s.AbortsValidCommit
	r.AbortsLocked = s.AbortsLocked
	r.AbortsKilled = s.AbortsKilled
	r.AbortsExplicit = s.AbortsExplicit
	r.AbortsUser = s.AbortsUser
	r.WaitsCM = s.WaitsCM
	r.LockAcquireFail = s.LockAcquireFail
	r.AbortsUnwound = s.AbortsUnwound
	r.AbortsReturned = s.AbortsReturned
	r.ReadsLogged = s.ReadsLogged
	r.ReadsDeduped = s.ReadsDeduped
	r.Validations = s.Validations
	r.ValidationReads = s.ValidationReads
	r.AbortRate = s.AbortRate()
}

// header is the CSV column order; it must match record()'s field order.
var header = []string{
	"experiment", "workload", "engine", "engine_kind", "threads", "repeat",
	"seed", "duration_sec", "ops", "throughput",
	"commits", "ro_commits", "aborts", "aborts_ww", "aborts_valid",
	"aborts_valid_read", "aborts_valid_commit", "aborts_locked",
	"aborts_killed", "aborts_explicit", "aborts_user", "waits_cm", "lock_acquire_fail",
	"aborts_unwound", "aborts_returned",
	"reads_logged", "reads_deduped", "validations", "validation_reads",
	"lat_p50_ns", "lat_p99_ns", "lat_p999_ns",
	"srv_p50_ns", "srv_p99_ns", "srv_p999_ns",
	"phase_parse_ns", "phase_queue_ns", "phase_txn_ns", "phase_commit_ns", "phase_reply_ns",
	"offered_rate", "achieved_rate", "late_ops",
	"abort_rate", "checked_ok",
	"phase_wal_ns", "wal_frames", "wal_bytes", "wal_recovered_frames",
	"retries", "reconnects",
	"sheds", "deadline_exceeded",
	"pipeline", "coalesce_batch", "coalesce_batches", "coalesce_items",
	"feed_events", "wal_fsyncs",
}

func (r Record) row() []string {
	return []string{
		r.Experiment, r.Workload, r.Engine, r.EngineKind,
		strconv.Itoa(r.Threads), strconv.Itoa(r.Repeat),
		strconv.FormatUint(r.Seed, 10),
		strconv.FormatFloat(r.DurationSec, 'g', -1, 64),
		strconv.FormatUint(r.Ops, 10),
		strconv.FormatFloat(r.Throughput, 'g', -1, 64),
		strconv.FormatUint(r.Commits, 10),
		strconv.FormatUint(r.ROCommits, 10),
		strconv.FormatUint(r.Aborts, 10),
		strconv.FormatUint(r.AbortsWW, 10),
		strconv.FormatUint(r.AbortsValid, 10),
		strconv.FormatUint(r.AbortsValidRead, 10),
		strconv.FormatUint(r.AbortsValidCommit, 10),
		strconv.FormatUint(r.AbortsLocked, 10),
		strconv.FormatUint(r.AbortsKilled, 10),
		strconv.FormatUint(r.AbortsExplicit, 10),
		strconv.FormatUint(r.AbortsUser, 10),
		strconv.FormatUint(r.WaitsCM, 10),
		strconv.FormatUint(r.LockAcquireFail, 10),
		strconv.FormatUint(r.AbortsUnwound, 10),
		strconv.FormatUint(r.AbortsReturned, 10),
		strconv.FormatUint(r.ReadsLogged, 10),
		strconv.FormatUint(r.ReadsDeduped, 10),
		strconv.FormatUint(r.Validations, 10),
		strconv.FormatUint(r.ValidationReads, 10),
		strconv.FormatFloat(r.LatP50Ns, 'g', -1, 64),
		strconv.FormatFloat(r.LatP99Ns, 'g', -1, 64),
		strconv.FormatFloat(r.LatP999Ns, 'g', -1, 64),
		strconv.FormatUint(r.SrvP50Ns, 10),
		strconv.FormatUint(r.SrvP99Ns, 10),
		strconv.FormatUint(r.SrvP999Ns, 10),
		strconv.FormatFloat(r.PhaseParseNs, 'g', -1, 64),
		strconv.FormatFloat(r.PhaseQueueNs, 'g', -1, 64),
		strconv.FormatFloat(r.PhaseTxnNs, 'g', -1, 64),
		strconv.FormatFloat(r.PhaseCommitNs, 'g', -1, 64),
		strconv.FormatFloat(r.PhaseReplyNs, 'g', -1, 64),
		strconv.FormatFloat(r.OfferedRate, 'g', -1, 64),
		strconv.FormatFloat(r.AchievedRate, 'g', -1, 64),
		strconv.FormatUint(r.LateOps, 10),
		strconv.FormatFloat(r.AbortRate, 'g', -1, 64),
		strconv.FormatBool(r.CheckedOK),
		strconv.FormatFloat(r.PhaseWalNs, 'g', -1, 64),
		strconv.FormatUint(r.WalFrames, 10),
		strconv.FormatUint(r.WalBytes, 10),
		strconv.FormatUint(r.WalRecoveredFrames, 10),
		strconv.FormatUint(r.Retries, 10),
		strconv.FormatUint(r.Reconnects, 10),
		strconv.FormatUint(r.Sheds, 10),
		strconv.FormatUint(r.DeadlineExceeded, 10),
		strconv.Itoa(r.Pipeline),
		strconv.Itoa(r.CoalesceBatch),
		strconv.FormatUint(r.CoalesceBatches, 10),
		strconv.FormatUint(r.CoalesceItems, 10),
		strconv.FormatUint(r.FeedEvents, 10),
		strconv.FormatUint(r.WalFsyncs, 10),
	}
}

// WriteCSV writes recs as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range recs {
		if err := cw.Write(r.row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL writes recs as JSON Lines: one object per line.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a CSV previously written by WriteCSV. It is the
// round-trip used by tests and by external tooling that post-processes
// run directories.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("results: empty CSV")
	}
	if len(rows[0]) != len(header) || rows[0][0] != header[0] {
		return nil, fmt.Errorf("results: unexpected CSV header %v", rows[0])
	}
	recs := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("results: row has %d columns, want %d", len(row), len(header))
		}
		var rec Record
		rec.Experiment, rec.Workload, rec.Engine, rec.EngineKind = row[0], row[1], row[2], row[3]
		var perr error
		keep := func(err error) {
			if err != nil && perr == nil {
				perr = err
			}
		}
		ints := func(s string) int { n, err := strconv.Atoi(s); keep(err); return n }
		u64 := func(s string) uint64 { n, err := strconv.ParseUint(s, 10, 64); keep(err); return n }
		f64 := func(s string) float64 { f, err := strconv.ParseFloat(s, 64); keep(err); return f }
		rec.Threads, rec.Repeat = ints(row[4]), ints(row[5])
		rec.Seed = u64(row[6])
		rec.DurationSec = f64(row[7])
		rec.Ops = u64(row[8])
		rec.Throughput = f64(row[9])
		rec.Commits, rec.ROCommits = u64(row[10]), u64(row[11])
		rec.Aborts = u64(row[12])
		rec.AbortsWW, rec.AbortsValid = u64(row[13]), u64(row[14])
		rec.AbortsValidRead, rec.AbortsValidCommit = u64(row[15]), u64(row[16])
		rec.AbortsLocked, rec.AbortsKilled = u64(row[17]), u64(row[18])
		rec.AbortsExplicit, rec.AbortsUser = u64(row[19]), u64(row[20])
		rec.WaitsCM = u64(row[21])
		rec.LockAcquireFail = u64(row[22])
		rec.AbortsUnwound, rec.AbortsReturned = u64(row[23]), u64(row[24])
		rec.ReadsLogged, rec.ReadsDeduped = u64(row[25]), u64(row[26])
		rec.Validations, rec.ValidationReads = u64(row[27]), u64(row[28])
		rec.LatP50Ns, rec.LatP99Ns, rec.LatP999Ns = f64(row[29]), f64(row[30]), f64(row[31])
		rec.SrvP50Ns, rec.SrvP99Ns, rec.SrvP999Ns = u64(row[32]), u64(row[33]), u64(row[34])
		rec.PhaseParseNs, rec.PhaseQueueNs = f64(row[35]), f64(row[36])
		rec.PhaseTxnNs, rec.PhaseCommitNs, rec.PhaseReplyNs = f64(row[37]), f64(row[38]), f64(row[39])
		rec.OfferedRate, rec.AchievedRate = f64(row[40]), f64(row[41])
		rec.LateOps = u64(row[42])
		rec.AbortRate = f64(row[43])
		switch row[44] {
		case "true":
			rec.CheckedOK = true
		case "false":
			rec.CheckedOK = false
		default:
			keep(fmt.Errorf("bad checked_ok value %q", row[44]))
		}
		rec.PhaseWalNs = f64(row[45])
		rec.WalFrames, rec.WalBytes = u64(row[46]), u64(row[47])
		rec.WalRecoveredFrames = u64(row[48])
		rec.Retries, rec.Reconnects = u64(row[49]), u64(row[50])
		rec.Sheds, rec.DeadlineExceeded = u64(row[51]), u64(row[52])
		rec.Pipeline, rec.CoalesceBatch = ints(row[53]), ints(row[54])
		rec.CoalesceBatches, rec.CoalesceItems = u64(row[55]), u64(row[56])
		rec.FeedEvents, rec.WalFsyncs = u64(row[57]), u64(row[58])
		if perr != nil {
			return nil, fmt.Errorf("results: data row %d: %w", i+1, perr)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Summary is a distribution over the repeats of one metric.
type Summary struct {
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes the five-number summary of vals (sample stddev).
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s := Summary{Min: sorted[0], Max: sorted[len(sorted)-1]}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	for _, v := range sorted {
		s.Mean += v
	}
	s.Mean /= float64(len(sorted))
	if len(sorted) > 1 {
		var ss float64
		for _, v := range sorted {
			d := v - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Agg is one aggregated point: all repeats of (experiment, workload,
// engine, threads) folded into distribution summaries.
type Agg struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"`
	EngineKind string  `json:"engine_kind"`
	Threads    int     `json:"threads"`
	Repeats    int     `json:"repeats"`
	Throughput Summary `json:"throughput"`
	Duration   Summary `json:"duration_sec"`
	Ops        Summary `json:"ops"`
	AbortRate  Summary `json:"abort_rate"`
	AllChecked bool    `json:"all_checked"` // every repeat passed its post-run check
}

// Aggregate groups recs by (experiment, workload, engine, threads) and
// summarizes each group, preserving first-appearance order.
func Aggregate(recs []Record) []Agg {
	type key struct {
		exp, wl, eng string
		threads      int
	}
	order := []key{}
	groups := map[key][]Record{}
	for _, r := range recs {
		k := key{r.Experiment, r.Workload, r.Engine, r.Threads}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	aggs := make([]Agg, 0, len(order))
	for _, k := range order {
		g := groups[k]
		a := Agg{
			Experiment: k.exp, Workload: k.wl, Engine: k.eng,
			EngineKind: g[0].EngineKind, Threads: k.threads,
			Repeats: len(g), AllChecked: true,
		}
		var tp, dur, ops, ar []float64
		for _, r := range g {
			tp = append(tp, r.Throughput)
			dur = append(dur, r.DurationSec)
			ops = append(ops, float64(r.Ops))
			ar = append(ar, r.AbortRate)
			if !r.CheckedOK {
				a.AllChecked = false
			}
		}
		a.Throughput = Summarize(tp)
		a.Duration = Summarize(dur)
		a.Ops = Summarize(ops)
		a.AbortRate = Summarize(ar)
		aggs = append(aggs, a)
	}
	return aggs
}

// aggHeader is the summary-CSV column order; it must match Agg.row().
var aggHeader = []string{
	"experiment", "workload", "engine", "engine_kind", "threads", "repeats",
	"throughput_median", "throughput_mean", "throughput_stddev",
	"throughput_min", "throughput_max",
	"duration_sec_median", "ops_median", "abort_rate_median",
	"all_checked",
}

func (a Agg) row() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	return []string{
		a.Experiment, a.Workload, a.Engine, a.EngineKind,
		strconv.Itoa(a.Threads), strconv.Itoa(a.Repeats),
		f(a.Throughput.Median), f(a.Throughput.Mean), f(a.Throughput.Stddev),
		f(a.Throughput.Min), f(a.Throughput.Max),
		strconv.FormatFloat(a.Duration.Median, 'f', 6, 64),
		f(a.Ops.Median), strconv.FormatFloat(a.AbortRate.Median, 'f', 6, 64),
		strconv.FormatBool(a.AllChecked),
	}
}

// WriteAggCSV writes aggregated rows as CSV with a header row.
func WriteAggCSV(w io.Writer, aggs []Agg) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(aggHeader); err != nil {
		return err
	}
	for _, a := range aggs {
		if err := cw.Write(a.row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggJSONL writes aggregated rows as JSON Lines.
func WriteAggJSONL(w io.Writer, aggs []Agg) error {
	enc := json.NewEncoder(w)
	for _, a := range aggs {
		if err := enc.Encode(a); err != nil {
			return err
		}
	}
	return nil
}

// BenchRecord is one micro-benchmark measurement: the per-operation
// cost profile (ns/op, allocations) of one engine on one workload, as
// produced by cmd/benchjson for the perf-trajectory artifact
// (BENCH_PR<n>.json) CI accumulates. It deliberately measures hot-path
// cost, not parallel throughput — Record covers the latter.
type BenchRecord struct {
	Name        string  `json:"name"`     // benchmark id, e.g. "rbtree-lookup/SwissTM"
	Workload    string  `json:"workload"` // e.g. "rbtree-lookup"
	Engine      string  `json:"engine"`   // display name
	EngineKind  string  `json:"engine_kind"`
	Ops         int     `json:"ops"`           // measured iterations
	NsPerOp     float64 `json:"ns_per_op"`     // median across repeats
	AllocsPerOp float64 `json:"allocs_per_op"` // median across repeats
	BytesPerOp  float64 `json:"bytes_per_op"`  // median across repeats
	Repeats     int     `json:"repeats"`

	// Abort-path profile (PR 4): how many rollbacks each operation
	// caused and what one abort costs. NsPerAbort is NsPerOp scaled by
	// the abort rate; on the forced-conflict workload (exactly one
	// commit-time abort per op) it is directly the per-abort round trip,
	// and the (unwind) engine variants price the old panic delivery
	// against the checked return. Zero when the workload never aborts.
	AbortsPerOp float64 `json:"aborts_per_op,omitempty"`
	NsPerAbort  float64 `json:"ns_per_abort,omitempty"`

	// Read-only fast-path evidence (ro-fastpath tier, DESIGN.md §9.3):
	// the share of commits that went through the declared read-only
	// protocol and how many read-log entries validation replayed per op
	// (0 on the RO rows — TL2's read-only commit replays nothing).
	ROCommitsPerOp       float64 `json:"ro_commits_per_op,omitempty"`
	ValidationReadsPerOp float64 `json:"validation_reads_per_op,omitempty"`

	// Commit-log price (wal tier, DESIGN.md §12): latency quantiles
	// from the log writer's own histograms over the whole run. AppendNs
	// is Publish-call-to-durable and only recorded by the waiting sync
	// modes, so the fsync-none twin reports zeros here and its cost
	// shows up in NsPerOp instead.
	WalAppendP50Ns uint64 `json:"wal_append_p50_ns,omitempty"`
	WalAppendP99Ns uint64 `json:"wal_append_p99_ns,omitempty"`
	WalFsyncP99Ns  uint64 `json:"wal_fsync_p99_ns,omitempty"`

	// Coalescing amortization evidence (coalesce tier, DESIGN.md §14):
	// engine commits and commit-log fsyncs per completed operation at a
	// fixed offered rate. The on/off twins at the same rate show the
	// group-commit win directly.
	CommitsPerOp float64 `json:"commits_per_op,omitempty"`
	FsyncsPerOp  float64 `json:"fsyncs_per_op,omitempty"`
}

// WriteBenchJSON writes recs as one JSON document (an array), the
// BENCH_PR<n>.json format.
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// ReadBenchJSON parses a document written by WriteBenchJSON.
func ReadBenchJSON(r io.Reader) ([]BenchRecord, error) {
	var recs []BenchRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("results: bad bench JSON: %w", err)
	}
	return recs, nil
}

// KnownFormat reports whether format is a recognized -format value, so
// drivers can reject typos before running a long measurement.
func KnownFormat(format string) bool {
	switch format {
	case "text", "csv", "jsonl":
		return true
	}
	return false
}

// WriteDriverFiles persists a driver run for its -format flag: "text"
// (whose human-readable output already went to stdout) writes CSV
// files, otherwise the format itself.
func WriteDriverFiles(dir, name, format string, recs []Record) error {
	if format == "text" {
		format = "csv"
	}
	return WriteFiles(dir, name, format, recs)
}

// WriteFiles writes one experiment's records under dir in the given
// format ("csv" or "jsonl"): <name>.<ext> holds the per-repeat records
// and <name>.summary.<ext> the aggregated rows — the paper_runs-style
// layout one directory per invocation, one file pair per experiment.
func WriteFiles(dir, name, format string, recs []Record) error {
	if format != "csv" && format != "jsonl" {
		return fmt.Errorf("results: unknown format %q (want csv or jsonl)", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	aggs := Aggregate(recs)
	if format == "csv" {
		if err := write(filepath.Join(dir, name+".csv"), func(w io.Writer) error {
			return WriteCSV(w, recs)
		}); err != nil {
			return err
		}
		return write(filepath.Join(dir, name+".summary.csv"), func(w io.Writer) error {
			return WriteAggCSV(w, aggs)
		})
	}
	if err := write(filepath.Join(dir, name+".jsonl"), func(w io.Writer) error {
		return WriteJSONL(w, recs)
	}); err != nil {
		return err
	}
	return write(filepath.Join(dir, name+".summary.jsonl"), func(w io.Writer) error {
		return WriteAggJSONL(w, aggs)
	})
}
