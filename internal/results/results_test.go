package results

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swisstm/internal/stm"
)

func sample() []Record {
	mk := func(engine string, threads, repeat int, tput float64, ops uint64, ok bool) Record {
		r := Record{
			Experiment: "fig2", Workload: "stmbench7/read-dominated",
			Engine: engine, EngineKind: strings.ToLower(engine),
			Threads: threads, Repeat: repeat, Seed: 42,
			DurationSec: 0.5, Ops: ops, Throughput: tput, CheckedOK: ok,
		}
		r.SetStats(stm.Stats{Commits: ops, Aborts: ops / 10})
		return r
	}
	return []Record{
		mk("SwissTM", 1, 0, 100, 50, true),
		mk("SwissTM", 1, 1, 300, 150, true),
		mk("SwissTM", 1, 2, 200, 100, true),
		mk("SwissTM", 2, 0, 400, 200, true),
		mk("TL2", 1, 0, 80, 40, false),
	}
}

func TestSetStats(t *testing.T) {
	var r Record
	r.SetStats(stm.Stats{Commits: 90, Aborts: 10, AbortsWW: 4, WaitsCM: 7})
	if r.Commits != 90 || r.Aborts != 10 || r.AbortsWW != 4 || r.WaitsCM != 7 {
		t.Fatalf("stats not copied: %+v", r)
	}
	if math.Abs(r.AbortRate-0.1) > 1e-9 {
		t.Fatalf("abort rate = %v, want 0.1", r.AbortRate)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d changed:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong header should fail")
	}
	// Corrupt one numeric cell: the row must be rejected, not zeroed.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()[:1]); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), ",50,", ",5x0,", 1)
	if corrupted == buf.String() {
		t.Fatal("test setup: ops column not found")
	}
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Error("corrupt numeric cell should fail, not parse as zero")
	}
	bogusBool := strings.Replace(buf.String(), ",true", ",yes", 1)
	if _, err := ReadCSV(strings.NewReader(bogusBool)); err == nil {
		t.Error("bad checked_ok value should fail")
	}
}

func TestKnownFormat(t *testing.T) {
	for _, f := range []string{"text", "csv", "jsonl"} {
		if !KnownFormat(f) {
			t.Errorf("%q should be known", f)
		}
	}
	for _, f := range []string{"", "xml", "json", "CSV"} {
		if KnownFormat(f) {
			t.Errorf("%q should be rejected", f)
		}
	}
}

func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sample()) {
		t.Fatalf("want one line per record, got %d lines", len(lines))
	}
	var r Record
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatal(err)
	}
	if r.Engine != "SwissTM" || r.Throughput != 100 {
		t.Fatalf("first line decoded wrong: %+v", r)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{100, 300, 200})
	if s.Median != 200 || s.Mean != 200 || s.Min != 100 || s.Max != 300 {
		t.Fatalf("odd-length summary wrong: %+v", s)
	}
	if math.Abs(s.Stddev-100) > 1e-9 {
		t.Fatalf("sample stddev = %v, want 100", s.Stddev)
	}
	if even := Summarize([]float64{1, 2, 3, 4}); even.Median != 2.5 {
		t.Fatalf("even-length median = %v, want 2.5", even.Median)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary should be zero: %+v", z)
	}
	if one := Summarize([]float64{7}); one.Stddev != 0 || one.Median != 7 {
		t.Fatalf("single-sample summary wrong: %+v", one)
	}
}

func TestAggregate(t *testing.T) {
	aggs := Aggregate(sample())
	// Groups: SwissTM@1 (3 repeats), SwissTM@2, TL2@1 — in first-appearance order.
	if len(aggs) != 3 {
		t.Fatalf("want 3 groups, got %d: %+v", len(aggs), aggs)
	}
	a := aggs[0]
	if a.Engine != "SwissTM" || a.Threads != 1 || a.Repeats != 3 {
		t.Fatalf("first group wrong: %+v", a)
	}
	if a.Throughput.Median != 200 {
		t.Fatalf("median throughput = %v, want 200", a.Throughput.Median)
	}
	if !a.AllChecked {
		t.Fatal("all SwissTM repeats passed their check")
	}
	if aggs[2].Engine != "TL2" || aggs[2].AllChecked {
		t.Fatalf("TL2 group should have AllChecked=false: %+v", aggs[2])
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFiles(dir, "fig2", "csv", sample()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sample()) {
		t.Fatalf("per-repeat CSV has %d records, want %d", len(recs), len(sample()))
	}
	sum, err := os.ReadFile(filepath.Join(dir, "fig2.summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(sum)), "\n")
	if len(lines) != 1+3 { // header + 3 aggregated points
		t.Fatalf("summary CSV has %d lines, want 4:\n%s", len(lines), sum)
	}
	if !strings.Contains(lines[0], "throughput_median") || !strings.Contains(lines[0], "abort_rate_median") {
		t.Fatalf("summary header missing required columns: %s", lines[0])
	}

	if err := WriteFiles(dir, "fig2", "jsonl", sample()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.jsonl", "fig2.summary.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if err := WriteFiles(dir, "x", "xml", nil); err == nil {
		t.Error("unknown format should fail")
	}
}
