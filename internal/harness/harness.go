// Package harness runs the paper's experiments: it constructs engines
// from declarative specs, drives fixed-time (throughput) and fixed-work
// (makespan) workloads across thread sweeps, aggregates commit/abort
// statistics, and formats the series the paper's figures and tables plot.
package harness

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"swisstm/internal/cm"
	"swisstm/internal/obs"
	"swisstm/internal/results"
	"swisstm/internal/rstm"
	"swisstm/internal/stm"
	"swisstm/internal/swisstm"
	"swisstm/internal/tinystm"
	"swisstm/internal/tl2"
	"swisstm/internal/util"
)

// EngineSpec declaratively describes an engine configuration; it is the
// unit the experiment drivers sweep over.
type EngineSpec struct {
	// Kind is one of "swisstm", "tl2", "tinystm", "rstm".
	Kind string
	// Label overrides the display name (defaults to the engine name).
	Label string
	// ArenaWords sizes the word arena (word-based engines).
	ArenaWords int
	// StripeWords sets the lock granularity in words (word-based
	// engines); 0 selects the engines' 4-word default.
	StripeWords int
	// TableBits sizes the lock table (word-based engines).
	TableBits uint
	// Policy is SwissTM's CM: "twophase" (default), "greedy", "timid".
	Policy string
	// NoBackoff disables SwissTM's post-abort back-off.
	NoBackoff bool
	// BackoffUnit overrides the engines' post-abort back-off spin unit
	// (0 keeps each engine's default). The abort-path microbenchmark
	// pins it to 1 so the measured cost is abort delivery, not back-off.
	BackoffUnit int
	// Acquire is RSTM's mode: "eager" (default) or "lazy".
	Acquire string
	// Reads is RSTM's read mode: "invisible" (default) or "visible".
	Reads string
	// Manager is RSTM's CM: "polka" (default), "greedy", "serializer",
	// "timid".
	Manager string
	// UnwindAborts selects the engines' panic-delivery ablation for
	// commit-time aborts (measurement only; see swisstm.Config).
	UnwindAborts bool
	// TxnObs, when non-nil, turns on the engines' per-transaction
	// telemetry (retry/read-set/write-set histograms, DESIGN.md §11);
	// the caller keeps the pointer to scrape it. Specs are copied by
	// value, so give each engine instance its own TxnObs.
	TxnObs *obs.TxnObs
}

// DisplayName returns the label used in tables.
func (s EngineSpec) DisplayName() string {
	if s.Label != "" {
		return s.Label
	}
	switch s.Kind {
	case "swisstm":
		if s.Policy != "" && s.Policy != "twophase" {
			return "SwissTM(" + s.Policy + ")"
		}
		return "SwissTM"
	case "tl2":
		return "TL2"
	case "tinystm":
		return "TinySTM"
	case "rstm":
		parts := []string{}
		if s.Acquire != "" {
			parts = append(parts, s.Acquire)
		}
		if s.Reads != "" {
			parts = append(parts, s.Reads)
		}
		if s.Manager != "" {
			parts = append(parts, s.Manager)
		}
		if len(parts) == 0 {
			return "RSTM"
		}
		return "RSTM(" + strings.Join(parts, "/") + ")"
	}
	return s.Kind
}

// New builds a fresh engine for the spec.
func (s EngineSpec) New() stm.STM {
	arena := s.ArenaWords
	if arena == 0 {
		arena = 1 << 22
	}
	table := s.TableBits
	if table == 0 {
		table = 18
	}
	switch s.Kind {
	case "swisstm":
		pol := swisstm.TwoPhase
		switch s.Policy {
		case "greedy":
			pol = swisstm.Greedy
		case "timid":
			pol = swisstm.Timid
		}
		return swisstm.New(swisstm.Config{
			ArenaWords:   arena,
			StripeWords:  s.StripeWords,
			TableBits:    table,
			Policy:       pol,
			NoBackoff:    s.NoBackoff,
			BackoffUnit:  s.BackoffUnit,
			UnwindAborts: s.UnwindAborts,
			Obs:          s.TxnObs,
		})
	case "tl2":
		return tl2.New(tl2.Config{
			ArenaWords:   arena,
			StripeWords:  s.StripeWords,
			TableBits:    table,
			BackoffUnit:  s.BackoffUnit,
			UnwindAborts: s.UnwindAborts,
			Obs:          s.TxnObs,
		})
	case "tinystm":
		return tinystm.New(tinystm.Config{
			ArenaWords:   arena,
			StripeWords:  s.StripeWords,
			TableBits:    table,
			BackoffUnit:  s.BackoffUnit,
			UnwindAborts: s.UnwindAborts,
			Obs:          s.TxnObs,
		})
	case "rstm":
		acq := rstm.Eager
		if s.Acquire == "lazy" {
			acq = rstm.Lazy
		}
		rd := rstm.Invisible
		if s.Reads == "visible" {
			rd = rstm.Visible
		}
		mgr := s.Manager
		if mgr == "" {
			mgr = "polka"
		}
		return rstm.New(rstm.Config{
			Acquire: acq, Reads: rd, Manager: cm.ByName(mgr),
			BackoffUnit: s.BackoffUnit, UnwindAborts: s.UnwindAborts,
			Obs: s.TxnObs,
		})
	}
	panic("harness: unknown engine kind " + s.Kind)
}

// Result is the outcome of one measured run.
type Result struct {
	Spec      EngineSpec
	Threads   int
	Ops       uint64        // committed operations
	Duration  time.Duration // wall time of the measured phase
	Stats     stm.Stats     // aggregated across worker threads
	CheckedOK bool          // post-run validation outcome (if any)
}

// Throughput returns committed operations per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// ToRecord bridges a Result into the structured results schema.
func (r Result) ToRecord(experiment, workload string, repeat int, seed uint64) results.Record {
	rec := results.Record{
		Experiment:  experiment,
		Workload:    workload,
		Engine:      r.Spec.DisplayName(),
		EngineKind:  r.Spec.Kind,
		Threads:     r.Threads,
		Repeat:      repeat,
		Seed:        seed,
		DurationSec: r.Duration.Seconds(),
		Ops:         r.Ops,
		Throughput:  r.Throughput(),
		CheckedOK:   r.CheckedOK,
	}
	rec.SetStats(r.Stats)
	return rec
}

// DeriveSeed mixes a base seed with a label and the run point's thread
// count and repeat index, so every run gets a distinct but reproducible
// RNG stream. A zero base yields zero: seed 0 means "nondeterministic
// mode" throughout the pipeline and derived seeds must preserve that.
func DeriveSeed(base uint64, label string, threads, repeat int) uint64 {
	if base == 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", label, threads, repeat)
	x := base ^ h.Sum64()
	// splitmix64 finalizer: avalanche the combined bits.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // never collapse a seeded run into nondeterministic mode
	}
	return x
}

// workerSeed derives the RNG seed for one worker of one run. With base
// seed 0 it reproduces the legacy per-worker constants, keeping
// unseeded runs byte-identical to the pre-pipeline behavior.
func workerSeed(base uint64, worker int) uint64 {
	if base == 0 {
		return uint64(worker)*0x9e3779b97f4a7c15 + 0xabcdef
	}
	return DeriveSeed(base, "worker", worker, 0)
}

// Workload binds a benchmark to an engine instance: Setup builds the
// shared data (single-threaded), Op executes one operation on the worker's
// thread, and Check optionally validates post-conditions.
type Workload struct {
	// Setup builds the benchmark state on e, using thread id 0.
	Setup func(e stm.STM) error
	// Op runs a single operation; worker is the worker index (≥ 1 because
	// id 0 belongs to setup), rng is worker-private.
	Op func(th stm.Thread, worker int, rng *util.Rand)
	// BindOp, when non-nil, takes precedence over Op: it is called once
	// per worker at start and returns that worker's operation closure.
	// Workloads whose operations need per-thread pre-bound state (e.g.
	// bench7's op tables, which exist so the steady-state loop allocates
	// nothing) bind it here instead of rebuilding it every call.
	BindOp func(th stm.Thread, worker int, rng *util.Rand) func()
	// Check, if non-nil, validates invariants after the run.
	Check func(e stm.STM) error
}

// measureCfg parameterizes one measured run.
type measureCfg struct {
	threads  int
	dur      time.Duration // fixed-time budget (ignored when fixedOps > 0)
	fixedOps uint64        // per-worker op quota; > 0 selects fixed-ops mode
	seed     uint64        // base RNG seed; 0 = legacy nondeterministic seeding
}

// MeasureThroughput runs w on a fresh engine with the given worker count
// for approximately dur, returning ops/second (fixed-time mode; used by
// STMBench7 and the red-black tree experiments).
func MeasureThroughput(spec EngineSpec, w Workload, threads int, dur time.Duration) (Result, error) {
	return measureThroughput(spec, w, measureCfg{threads: threads, dur: dur})
}

// MeasureThroughputOps runs w with a fixed per-worker operation quota
// instead of a time budget: every worker performs exactly opsPerWorker
// operations and the elapsed wall time yields the throughput. Because
// the op count is part of the configuration rather than a race against
// the clock, seeded runs are reproducible bit-for-bit (identical Ops on
// one thread; identical per-worker op streams at any thread count).
func MeasureThroughputOps(spec EngineSpec, w Workload, threads int, opsPerWorker, seed uint64) (Result, error) {
	return measureThroughput(spec, w, measureCfg{threads: threads, fixedOps: opsPerWorker, seed: seed})
}

func measureThroughput(spec EngineSpec, w Workload, cfg measureCfg) (Result, error) {
	e := spec.New()
	if err := w.Setup(e); err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	var (
		threads = cfg.threads
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		counts  = make([]uint64, threads)
		stats   = make([]stm.Stats, threads)
	)
	start := time.Now()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			th := e.NewThread(worker + 1)
			rng := util.NewRand(workerSeed(cfg.seed, worker))
			op := func() { w.Op(th, worker, rng) }
			if w.BindOp != nil {
				op = w.BindOp(th, worker, rng)
			}
			var n uint64
			for {
				if cfg.fixedOps > 0 {
					if n == cfg.fixedOps {
						break
					}
				} else {
					select {
					case <-stop:
						counts[worker] = n
						stats[worker] = th.Stats()
						return
					default:
					}
				}
				op()
				n++
			}
			counts[worker] = n
			stats[worker] = th.Stats()
		}(i)
	}
	if cfg.fixedOps == 0 {
		time.Sleep(cfg.dur)
		close(stop)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{Spec: spec, Threads: threads, Duration: elapsed, CheckedOK: true}
	for i := 0; i < threads; i++ {
		res.Ops += counts[i]
		res.Stats.Add(stats[i])
	}
	if w.Check != nil {
		if err := w.Check(e); err != nil {
			res.CheckedOK = false
			return res, fmt.Errorf("post-run check: %w", err)
		}
	}
	return res, nil
}

// WorkFn performs a fixed unit of work, partitioned internally among
// workers (e.g. a shared work queue); it must return when the work is
// exhausted.
type WorkFn func(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand)

// WorkSpec bundles the phases of a fixed-work benchmark run.
type WorkSpec struct {
	// Setup builds the benchmark state on e, using thread id 0.
	Setup func(e stm.STM) error
	// Work is the fixed-work body executed by every worker.
	Work WorkFn
	// Check, if non-nil, validates invariants after the run.
	Check func(e stm.STM) error
}

// MeasureWork runs a fixed-work benchmark (Lee-TM, STAMP): all routes /
// tasks are processed exactly once and the wall time is reported.
func MeasureWork(spec EngineSpec, setup func(e stm.STM) error, work WorkFn, check func(e stm.STM) error, threads int) (Result, error) {
	return measureWork(spec, WorkSpec{Setup: setup, Work: work, Check: check}, measureCfg{threads: threads})
}

func measureWork(spec EngineSpec, ws WorkSpec, cfg measureCfg) (Result, error) {
	e := spec.New()
	threads := cfg.threads
	if ws.Setup != nil {
		if err := ws.Setup(e); err != nil {
			return Result{}, fmt.Errorf("setup: %w", err)
		}
	}
	var wg sync.WaitGroup
	stats := make([]stm.Stats, threads)
	start := time.Now()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			th := e.NewThread(worker + 1)
			var rng *util.Rand
			if cfg.seed == 0 {
				rng = util.NewRand(uint64(worker)*0x2545f4914f6cdd1d + 99)
			} else {
				rng = util.NewRand(DeriveSeed(cfg.seed, "work", worker, 0))
			}
			ws.Work(e, th, worker, threads, rng)
			stats[worker] = th.Stats()
		}(i)
	}
	wg.Wait()
	res := Result{Spec: spec, Threads: threads, Duration: time.Since(start), CheckedOK: true}
	for i := 0; i < threads; i++ {
		res.Stats.Add(stats[i])
		res.Ops += stats[i].Commits
	}
	if ws.Check != nil {
		if err := ws.Check(e); err != nil {
			res.CheckedOK = false
			return res, fmt.Errorf("post-run check: %w", err)
		}
	}
	return res, nil
}

// DefaultFixedOps is the per-worker op quota a seeded throughput run
// uses when the caller did not pick one: deterministic runs must count
// ops, not time, so RepeatThroughput applies this default whenever
// Seed is set but FixedOps is not.
const DefaultFixedOps = 2000

// RunConfig describes one experiment point for the repeat-aware
// entry points: which (experiment, workload) the records are tagged
// with, how many repeats to take, and how each run is measured.
type RunConfig struct {
	Experiment string
	Workload   string
	Threads    int
	Duration   time.Duration // per-repeat time budget (fixed-time mode)
	FixedOps   uint64        // per-worker op quota; > 0 selects fixed-ops mode
	Repeats    int           // number of measured repeats (min 1)
	Seed       uint64        // base seed; 0 = nondeterministic mode
}

// pointSeed derives the per-repeat seed for one run of cfg on spec.
func (cfg RunConfig) pointSeed(spec EngineSpec, repeat int) uint64 {
	label := cfg.Experiment + "|" + cfg.Workload + "|" + spec.DisplayName()
	return DeriveSeed(cfg.Seed, label, cfg.Threads, repeat)
}

// RepeatThroughput measures cfg.Repeats runs of the workload built by
// mk (called once per repeat with that repeat's derived seed, so
// workload-internal RNGs — e.g. the red-black tree pre-fill — follow
// the seed too) and returns one Record per repeat. On error the records
// measured so far are returned alongside it, so a failing check still
// leaves an audit trail in the output files.
func RepeatThroughput(spec EngineSpec, mk func(seed uint64) Workload, cfg RunConfig) ([]results.Record, error) {
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	fixedOps := cfg.FixedOps
	if fixedOps == 0 && cfg.Seed != 0 {
		fixedOps = DefaultFixedOps
	}
	recs := make([]results.Record, 0, repeats)
	for rep := 0; rep < repeats; rep++ {
		seed := cfg.pointSeed(spec, rep)
		res, err := measureThroughput(spec, mk(seed), measureCfg{
			threads: cfg.Threads, dur: cfg.Duration, fixedOps: fixedOps, seed: seed,
		})
		if res.Threads != 0 || err == nil { // setup failures have no measurement to record
			recs = append(recs, res.ToRecord(cfg.Experiment, cfg.Workload, rep, seed))
		}
		if err != nil {
			return recs, fmt.Errorf("%s @%d threads repeat %d: %w", spec.DisplayName(), cfg.Threads, rep, err)
		}
	}
	return recs, nil
}

// RepeatWork is RepeatThroughput for fixed-work benchmarks: mk builds a
// fresh WorkSpec per repeat from that repeat's derived seed.
func RepeatWork(spec EngineSpec, mk func(seed uint64) WorkSpec, cfg RunConfig) ([]results.Record, error) {
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	recs := make([]results.Record, 0, repeats)
	for rep := 0; rep < repeats; rep++ {
		seed := cfg.pointSeed(spec, rep)
		res, err := measureWork(spec, mk(seed), measureCfg{threads: cfg.Threads, seed: seed})
		if res.Threads != 0 || err == nil {
			recs = append(recs, res.ToRecord(cfg.Experiment, cfg.Workload, rep, seed))
		}
		if err != nil {
			return recs, fmt.Errorf("%s @%d threads repeat %d: %w", spec.DisplayName(), cfg.Threads, rep, err)
		}
	}
	return recs, nil
}

// Series is one line of a figure: a metric per thread count.
type Series struct {
	Name   string
	Points map[int]float64
}

// FormatFigure renders series as the paper's figures' data: one row per
// thread count, one column per series.
func FormatFigure(title, metric string, threadCounts []int, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# metric: %s\n", title, metric)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	b.WriteByte('\n')
	for _, tc := range threadCounts {
		fmt.Fprintf(&b, "%-8d", tc)
		for _, s := range series {
			v, ok := s.Points[tc]
			if !ok {
				fmt.Fprintf(&b, "%22s", "-")
				continue
			}
			fmt.Fprintf(&b, "%22.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SpeedupTable renders "A vs B" relative speedups (speedup − 1, as the
// paper's Figure 3 and Table 2 report them).
func SpeedupTable(title string, rows []string, cols []string, cell func(row, col string) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (speedup - 1)\n%-18s", title, "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s", r)
		for _, c := range cols {
			fmt.Fprintf(&b, "%14.2f", cell(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMeanSpeedup returns the average of pairwise speedups-minus-one used
// by Figure 13 (average speedup of one configuration against the others).
func GeoMeanSpeedup(mine float64, others []float64) float64 {
	if len(others) == 0 || mine <= 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, o := range others {
		if o > 0 {
			sum += mine/o - 1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ThreadCounts is the paper's sweep: 1..8 threads.
var ThreadCounts = []int{1, 2, 3, 4, 5, 6, 7, 8}

// SortSpecs orders specs deterministically for stable output.
func SortSpecs(specs []EngineSpec) {
	sort.Slice(specs, func(i, j int) bool {
		return specs[i].DisplayName() < specs[j].DisplayName()
	})
}
