package harness

import (
	"strings"
	"testing"
	"time"

	"swisstm/internal/stm"
	"swisstm/internal/util"
)

func TestEngineSpecFactory(t *testing.T) {
	cases := []struct {
		spec EngineSpec
		name string
	}{
		{EngineSpec{Kind: "swisstm"}, "SwissTM"},
		{EngineSpec{Kind: "swisstm", Policy: "timid"}, "SwissTM(timid)"},
		{EngineSpec{Kind: "tl2"}, "TL2"},
		{EngineSpec{Kind: "tinystm"}, "TinySTM"},
		{EngineSpec{Kind: "rstm", Acquire: "lazy", Manager: "greedy"}, "RSTM(lazy/greedy)"},
		{EngineSpec{Kind: "rstm", Label: "RSTM"}, "RSTM"},
	}
	for _, c := range cases {
		if got := c.spec.DisplayName(); got != c.name {
			t.Errorf("DisplayName(%+v) = %q, want %q", c.spec, got, c.name)
		}
		e := c.spec.New()
		if e == nil {
			t.Fatalf("New(%+v) returned nil", c.spec)
		}
		// Every engine must run a trivial transaction.
		th := e.NewThread(0)
		var h stm.Handle
		th.Atomic(func(tx stm.Tx) {
			h = tx.NewObject(1)
			tx.WriteField(h, 0, 5)
		})
		th.Atomic(func(tx stm.Tx) {
			if tx.ReadField(h, 0) != 5 {
				t.Errorf("%s: lost write", c.spec.DisplayName())
			}
		})
	}
}

func TestUnknownEngineKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown engine kind")
		}
	}()
	EngineSpec{Kind: "nope"}.New()
}

func TestMeasureThroughputCountsOps(t *testing.T) {
	var h stm.Handle
	w := Workload{
		Setup: func(e stm.STM) error {
			th := e.NewThread(0)
			th.Atomic(func(tx stm.Tx) { h = tx.NewObject(1) })
			return nil
		},
		Op: func(th stm.Thread, worker int, rng *util.Rand) {
			th.Atomic(func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
		},
	}
	res, err := MeasureThroughput(EngineSpec{Kind: "swisstm"}, w, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Throughput() == 0 {
		t.Fatal("no operations measured")
	}
	if res.Stats.Commits < res.Ops {
		t.Fatalf("commits %d < ops %d (each op commits ≥ once)", res.Stats.Commits, res.Ops)
	}
}

func TestMeasureWorkConservation(t *testing.T) {
	// Fixed-work: all tasks processed exactly once across workers.
	const tasks = 1000
	var h stm.Handle
	cursor := make(chan int, tasks)
	for i := 0; i < tasks; i++ {
		cursor <- i
	}
	close(cursor)
	res, err := MeasureWork(EngineSpec{Kind: "tinystm"},
		func(e stm.STM) error {
			th := e.NewThread(0)
			th.Atomic(func(tx stm.Tx) { h = tx.NewObject(1) })
			return nil
		},
		func(e stm.STM, th stm.Thread, worker, threads int, rng *util.Rand) {
			for range cursor {
				th.Atomic(func(tx stm.Tx) { tx.WriteField(h, 0, tx.ReadField(h, 0)+1) })
			}
		},
		func(e stm.STM) error {
			th := e.NewThread(10)
			var got stm.Word
			th.Atomic(func(tx stm.Tx) { got = tx.ReadField(h, 0) })
			if got != tasks {
				t.Errorf("processed %d tasks, want %d", got, tasks)
			}
			return nil
		},
		3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CheckedOK {
		t.Fatal("check did not run")
	}
}

func TestFormatFigure(t *testing.T) {
	out := FormatFigure("Test", "tx/s", []int{1, 2},
		[]Series{{Name: "A", Points: map[int]float64{1: 10, 2: 20}},
			{Name: "B", Points: map[int]float64{1: 5}}})
	for _, want := range []string{"# Test", "tx/s", "A", "B", "10.00", "20.00", "5.00", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// 2× faster than one peer, equal to another: mean of (1.0, 0.0) = 0.5.
	if got := GeoMeanSpeedup(2, []float64{1, 2}); got != 0.5 {
		t.Fatalf("GeoMeanSpeedup = %v, want 0.5", got)
	}
	if got := GeoMeanSpeedup(0, []float64{1}); got != 0 {
		t.Fatalf("zero merit should give 0, got %v", got)
	}
	if got := GeoMeanSpeedup(1, nil); got != 0 {
		t.Fatalf("no peers should give 0, got %v", got)
	}
}
